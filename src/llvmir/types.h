#ifndef KEQ_LLVMIR_TYPES_H
#define KEQ_LLVMIR_TYPES_H

/**
 * @file
 * The LLVM IR type subset of Section 4.2: integer types i1/i8/i16/i32/i64,
 * arbitrarily nested array and struct types, pointers to all of these, and
 * void (for function returns).
 *
 * Types are interned in a TypeContext, so Type pointers compare with ==.
 * Following the paper's memory model simplification, aggregate layout is
 * packed: a struct field's offset is the sum of the preceding field sizes
 * (no alignment padding), and our semantics rejects programs relying on
 * alignment.
 */

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace keq::llvmir {

class TypeContext;

/** An interned LLVM IR type. */
class Type
{
  public:
    enum class Kind : uint8_t { Void, Integer, Pointer, Array, Struct };

    Kind kind() const { return kind_; }
    bool isVoid() const { return kind_ == Kind::Void; }
    bool isInteger() const { return kind_ == Kind::Integer; }
    bool isPointer() const { return kind_ == Kind::Pointer; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isStruct() const { return kind_ == Kind::Struct; }
    /** Integer or pointer: representable as a bitvector value. */
    bool isFirstClass() const { return isInteger() || isPointer(); }

    /** Bit width; integers only. */
    unsigned bitWidth() const { return bitWidth_; }

    /** Pointee type; pointers only. */
    const Type *pointee() const { return pointee_; }

    /** Element type; arrays only. */
    const Type *elementType() const { return element_; }
    /** Element count; arrays only. */
    uint64_t arrayLength() const { return length_; }

    /** Field types; structs only. */
    const std::vector<const Type *> &fields() const { return fields_; }

    /** Size in bytes when stored in memory (packed layout). */
    uint64_t sizeInBytes() const { return size_; }

    /** Byte offset of struct field @p index (packed layout). */
    uint64_t fieldOffset(unsigned index) const;

    /** Textual rendering, e.g. "[8 x i8]*". */
    std::string toString() const;

    /**
     * Width of the bitvector representing a value of this type: the bit
     * width for integers, 64 for pointers.
     */
    unsigned valueBits() const;

    /** Construct via TypeContext only (public for container use). */
    Type() = default;

  private:
    friend class TypeContext;

    Kind kind_ = Kind::Void;
    unsigned bitWidth_ = 0;
    const Type *pointee_ = nullptr;
    const Type *element_ = nullptr;
    uint64_t length_ = 0;
    std::vector<const Type *> fields_;
    uint64_t size_ = 0;
};

/** Interns types; owns their storage. One per module. */
class TypeContext
{
  public:
    TypeContext();
    TypeContext(const TypeContext &) = delete;
    TypeContext &operator=(const TypeContext &) = delete;

    const Type *voidType() const { return void_; }
    /** Integer type; width must be one of 1, 8, 16, 32, 64. */
    const Type *intType(unsigned bits);
    const Type *pointerTo(const Type *pointee);
    const Type *arrayOf(const Type *element, uint64_t length);
    const Type *structOf(std::vector<const Type *> fields);

  private:
    Type *allocate();

    std::deque<Type> storage_;
    const Type *void_;
    std::vector<const Type *> interned_;
};

} // namespace keq::llvmir

#endif // KEQ_LLVMIR_TYPES_H
