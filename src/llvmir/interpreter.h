#ifndef KEQ_LLVMIR_INTERPRETER_H
#define KEQ_LLVMIR_INTERPRETER_H

/**
 * @file
 * Concrete reference interpreter for the LLVM IR subset.
 *
 * Used by the differential tests: for a given translation, the LLVM
 * interpreter and the Virtual x86 interpreter must agree on return value,
 * memory effects, call/return traces, and trap behaviour. Any divergence
 * between them is exactly what the translation validator must also catch.
 */

#include <functional>
#include <vector>

#include "src/llvmir/ir.h"
#include "src/memory/concrete_memory.h"
#include "src/sem/symbolic_state.h" // for ErrorKind
#include "src/support/apint.h"

namespace keq::llvmir {

/** Handler for calls to functions not defined in the module. */
using ExternalCallHandler = std::function<support::ApInt(
    const std::string &callee, const std::vector<support::ApInt> &args)>;

/** How an interpretation ended. */
enum class ExecOutcome : uint8_t {
    Returned,  ///< Normal return.
    Trapped,   ///< Reached an undefined-behaviour error state.
    StepLimit, ///< Exceeded the step budget (likely non-termination).
};

/** Final state of an interpretation. */
struct ExecResult
{
    ExecOutcome outcome = ExecOutcome::StepLimit;
    support::ApInt value;                          ///< Returned only.
    sem::ErrorKind error = sem::ErrorKind::None;   ///< Trapped only.
    /** Sequence of "callee(arg,..)=ret" strings, for trace comparison. */
    std::vector<std::string> callTrace;
    size_t steps = 0;
};

/** Interprets functions of one module against a concrete memory. */
class Interpreter
{
  public:
    /**
     * @param module Parsed and verified module.
     * @param memory Concrete memory whose layout already contains the
     *               module's allocations (see populateLayout).
     */
    Interpreter(const Module &module, mem::ConcreteMemory &memory);

    /** Installs a handler for external calls (default: return 0). */
    void setExternalHandler(ExternalCallHandler handler);

    /** Runs @p fn on @p args with a step budget. */
    ExecResult run(const Function &fn,
                   const std::vector<support::ApInt> &args,
                   size_t max_steps = 100000);

  private:
    struct Frame;

    support::ApInt evalValue(const Frame &frame, const Value &value) const;
    ExecResult runInternal(const Function &fn,
                           const std::vector<support::ApInt> &args,
                           size_t &budget,
                           std::vector<std::string> &call_trace);

    const Module &module_;
    mem::ConcreteMemory &memory_;
    ExternalCallHandler external_;
};

} // namespace keq::llvmir

#endif // KEQ_LLVMIR_INTERPRETER_H
