#ifndef KEQ_LLVMIR_IR_H
#define KEQ_LLVMIR_IR_H

/**
 * @file
 * In-memory representation of the LLVM IR subset (Section 4.2).
 *
 * Instruction coverage: integer arithmetic and bitwise operators, integer
 * and pointer comparisons, casts (zext/sext/trunc, ptrtoint/inttoptr,
 * bitcast), getelementptr over arbitrarily nested arrays/structs, loads,
 * stores, alloca, phi, select, branches, calls, returns and unreachable.
 */

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/llvmir/types.h"
#include "src/support/apint.h"

namespace keq::llvmir {

/** Integer comparison predicates of the icmp instruction. */
enum class ICmpPred : uint8_t {
    Eq, Ne, Ult, Ule, Ugt, Uge, Slt, Sle, Sgt, Sge,
};

const char *icmpPredName(ICmpPred pred);

/** An SSA operand: literal constant, local %var, or global @name. */
struct Value
{
    enum class Kind : uint8_t { Const, Var, Global };

    Kind kind = Kind::Const;
    const Type *type = nullptr;
    support::ApInt constant; ///< Kind::Const only.
    std::string name;        ///< %var or @global name (with sigil).

    static Value
    makeConst(const Type *type, support::ApInt constant)
    {
        return {Kind::Const, type, constant, {}};
    }

    static Value
    makeVar(const Type *type, std::string name)
    {
        return {Kind::Var, type, {}, std::move(name)};
    }

    static Value
    makeGlobal(const Type *type, std::string name)
    {
        return {Kind::Global, type, {}, std::move(name)};
    }

    bool isConst() const { return kind == Kind::Const; }
    bool isVar() const { return kind == Kind::Var; }
    bool isGlobal() const { return kind == Kind::Global; }

    std::string toString() const;
};

/** Instruction opcodes of the supported subset. */
enum class Opcode : uint8_t {
    // Integer arithmetic.
    Add, Sub, Mul, UDiv, SDiv, URem, SRem,
    // Bitwise.
    And, Or, Xor, Shl, LShr, AShr,
    // Comparisons.
    ICmp,
    // Casts.
    ZExt, SExt, Trunc, PtrToInt, IntToPtr, Bitcast,
    // Memory.
    GetElementPtr, Load, Store, Alloca,
    // SSA / data flow.
    Phi, Select,
    // Control flow.
    Br, CondBr, Switch, Ret, Call, Unreachable,
};

const char *opcodeName(Opcode op);

/** One phi incoming edge. */
struct PhiIncoming
{
    Value value;
    std::string block;
};

/**
 * A single instruction. One struct covers all opcodes; opcode-specific
 * fields are documented inline and unused fields stay default.
 */
struct Instruction
{
    Opcode op = Opcode::Unreachable;

    /** Result variable name including '%'; empty for non-producing ops. */
    std::string result;
    /** Result type (or stored value type for Store; pointee for Load). */
    const Type *type = nullptr;

    /** Generic operands (binops: lhs/rhs; store: value, pointer; ...). */
    std::vector<Value> operands;

    ICmpPred pred = ICmpPred::Eq; ///< ICmp only.
    bool nsw = false;             ///< Add/Sub/Mul: no-signed-wrap UB flag.
    bool nuw = false;             ///< Add/Sub/Mul: no-unsigned-wrap UB flag.

    std::vector<PhiIncoming> incoming; ///< Phi only.

    std::string target1; ///< Br: target; CondBr: true; Switch: default.
    std::string target2; ///< CondBr: false target.

    /** Switch only: (case value, target block) in source order. */
    std::vector<std::pair<support::ApInt, std::string>> switchCases;

    /**
     * GetElementPtr: the source element type being indexed. Alloca: the
     * allocated type. Load/Store: the accessed type (== `type`).
     */
    const Type *sourceType = nullptr;

    std::string callee;     ///< Call only (with '@').
    std::string callSiteId; ///< Call only; assigned "cs0", "cs1", ...

    bool isTerminator() const;
    std::string toString() const;
};

/** A basic block: a label plus a nonempty instruction list. */
struct BasicBlock
{
    std::string name; ///< Without sigil, e.g. "entry", "for.cond".
    std::vector<Instruction> insts;

    const Instruction &
    terminator() const
    {
        return insts.back();
    }

    /** Successor block names (0, 1 or 2 of them). */
    std::vector<std::string> successors() const;
};

/** A function parameter. */
struct Parameter
{
    const Type *type = nullptr;
    std::string name; ///< With '%'.
};

/** A function definition (or declaration when blocks is empty). */
struct Function
{
    std::string name; ///< With '@'.
    const Type *returnType = nullptr;
    std::vector<Parameter> params;
    std::vector<BasicBlock> blocks;

    bool isDeclaration() const { return blocks.empty(); }
    const BasicBlock &entry() const { return blocks.front(); }
    const BasicBlock *findBlock(const std::string &name) const;

    /** Total instruction count (the paper's code-size metric). */
    size_t instructionCount() const;

    std::string toString() const;
};

/** A global variable (we model externals: name + value type). */
struct GlobalVariable
{
    std::string name; ///< With '@'.
    const Type *valueType = nullptr;
};

/** A module: types, globals and functions. */
struct Module
{
    std::shared_ptr<TypeContext> types = std::make_shared<TypeContext>();
    std::vector<GlobalVariable> globals;
    std::vector<Function> functions;

    Function *findFunction(const std::string &name);
    const Function *findFunction(const std::string &name) const;
    const GlobalVariable *findGlobal(const std::string &name) const;

    std::string toString() const;
};

} // namespace keq::llvmir

#endif // KEQ_LLVMIR_IR_H
