#ifndef KEQ_LLVMIR_COVERAGE_H
#define KEQ_LLVMIR_COVERAGE_H

/**
 * @file
 * The IR-construct coverage ledger (DESIGN.md §12).
 *
 * A validation campaign is only as trustworthy as the IR it actually
 * exercised: "60/60 validated" says nothing if the 60 programs never
 * contained a struct GEP or an i8 store. CoverageMap records, per
 * llvmir::Opcode, per ICmpPred, and per structural *shape* (nested
 * GEPs, select chains, phi webs, narrow memory traffic, division trap
 * edges), how often a construct appeared in the modules that flowed
 * through a harness. Both the fuzz campaign (`keq-fuzz --stats`) and
 * the conformance runner (`keq-conformance`) carry one, and the
 * conformance ctest fails when any supported opcode is uncovered —
 * coverage claims are asserted, not assumed.
 *
 * The ledger is a plain counter array: merging is commutative and
 * associative, so parallel campaigns can merge per-iteration maps in
 * any grouping and still report deterministic totals.
 */

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/llvmir/ir.h"

namespace keq {

/** Number of llvmir::Opcode enumerators (Add .. Unreachable). */
inline constexpr size_t kOpcodeCount =
    static_cast<size_t>(llvmir::Opcode::Unreachable) + 1;

/** Number of llvmir::ICmpPred enumerators (Eq .. Sge). */
inline constexpr size_t kICmpPredCount =
    static_cast<size_t>(llvmir::ICmpPred::Sge) + 1;

/**
 * Structural shapes the plain opcode histogram cannot distinguish:
 * a GEP is only interesting *because* it steps through a struct field
 * or a nested aggregate, a load only because it is byte-granular.
 */
enum class CoverageShape : uint8_t {
    GepStructField,  ///< GEP with at least one struct-field step.
    GepArrayIndex,   ///< GEP with at least one array-element step.
    GepNested,       ///< GEP descending >= 2 aggregate levels.
    SelectChain,     ///< >= 2 selects in one function.
    PhiWeb,          ///< Phi with >= 3 incomings, or >= 2 phis/block.
    NarrowLoad,      ///< Load of i1/i8/i16.
    NarrowStore,     ///< Store of i1/i8/i16.
    DivRegisterDivisor,    ///< udiv/sdiv/urem/srem by a non-constant.
    SignedDivOverflowEdge, ///< sdiv/srem by constant -1 (INT_MIN edge).
    SwitchManyCases, ///< Switch with >= 3 non-default cases.
    WrapFlag,        ///< Any nsw/nuw-flagged arithmetic.
};

inline constexpr size_t kCoverageShapeCount =
    static_cast<size_t>(CoverageShape::WrapFlag) + 1;

const char *coverageShapeName(CoverageShape shape);

/** Opcode/predicate/shape occurrence counters over a set of modules. */
class CoverageMap
{
  public:
    /** Records every instruction of every defined function. */
    void recordModule(const llvmir::Module &module);
    /** Records one function's instructions. */
    void recordFunction(const llvmir::Function &fn);
    /** Adds @p other's counters into this map. */
    void merge(const CoverageMap &other);

    uint64_t opcodeCount(llvmir::Opcode op) const;
    uint64_t predCount(llvmir::ICmpPred pred) const;
    uint64_t shapeCount(CoverageShape shape) const;
    /** Total instructions recorded (sum of opcode counters). */
    uint64_t totalInstructions() const;

    /** Supported opcodes never recorded (empty = full coverage). */
    std::vector<llvmir::Opcode> uncoveredOpcodes() const;
    std::vector<llvmir::ICmpPred> uncoveredPreds() const;
    std::vector<CoverageShape> uncoveredShapes() const;

    /** Every opcode, predicate and shape seen at least once? */
    bool complete() const;

    /**
     * Human-facing ledger: one line per dimension, uncovered entries
     * called out by name so a failing coverage gate tells you exactly
     * which construct to add to the corpus.
     */
    std::string report() const;

    /**
     * Single-line "op:NAME=N ... pred:NAME=N ... shape:NAME=N" form for
     * checkpoint journals; entries with zero count are omitted.
     * deserialize accepts any subset/order and ignores unknown names
     * (forward compatibility across ledger extensions).
     */
    std::string serialize() const;
    static bool deserialize(std::string_view text, CoverageMap &out);

    bool operator==(const CoverageMap &other) const;

  private:
    std::array<uint64_t, kOpcodeCount> opcodes_{};
    std::array<uint64_t, kICmpPredCount> preds_{};
    std::array<uint64_t, kCoverageShapeCount> shapes_{};
};

} // namespace keq

#endif // KEQ_LLVMIR_COVERAGE_H
