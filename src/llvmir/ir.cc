#include "src/llvmir/ir.h"

#include <algorithm>
#include <sstream>

#include "src/support/diagnostics.h"

namespace keq::llvmir {

const char *
icmpPredName(ICmpPred pred)
{
    switch (pred) {
      case ICmpPred::Eq: return "eq";
      case ICmpPred::Ne: return "ne";
      case ICmpPred::Ult: return "ult";
      case ICmpPred::Ule: return "ule";
      case ICmpPred::Ugt: return "ugt";
      case ICmpPred::Uge: return "uge";
      case ICmpPred::Slt: return "slt";
      case ICmpPred::Sle: return "sle";
      case ICmpPred::Sgt: return "sgt";
      case ICmpPred::Sge: return "sge";
    }
    return "?";
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::UDiv: return "udiv";
      case Opcode::SDiv: return "sdiv";
      case Opcode::URem: return "urem";
      case Opcode::SRem: return "srem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::LShr: return "lshr";
      case Opcode::AShr: return "ashr";
      case Opcode::ICmp: return "icmp";
      case Opcode::ZExt: return "zext";
      case Opcode::SExt: return "sext";
      case Opcode::Trunc: return "trunc";
      case Opcode::PtrToInt: return "ptrtoint";
      case Opcode::IntToPtr: return "inttoptr";
      case Opcode::Bitcast: return "bitcast";
      case Opcode::GetElementPtr: return "getelementptr";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Alloca: return "alloca";
      case Opcode::Phi: return "phi";
      case Opcode::Select: return "select";
      case Opcode::Br: return "br";
      case Opcode::CondBr: return "br";
      case Opcode::Switch: return "switch";
      case Opcode::Ret: return "ret";
      case Opcode::Call: return "call";
      case Opcode::Unreachable: return "unreachable";
    }
    return "?";
}

std::string
Value::toString() const
{
    switch (kind) {
      case Kind::Const:
        return constant.toSignedString();
      case Kind::Var:
      case Kind::Global:
        return name;
    }
    return "?";
}

bool
Instruction::isTerminator() const
{
    return op == Opcode::Br || op == Opcode::CondBr ||
           op == Opcode::Switch || op == Opcode::Ret ||
           op == Opcode::Unreachable;
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    if (!result.empty())
        os << result << " = ";
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::UDiv:
      case Opcode::SDiv:
      case Opcode::URem:
      case Opcode::SRem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr:
        os << opcodeName(op);
        if (nuw)
            os << " nuw";
        if (nsw)
            os << " nsw";
        os << " " << type->toString() << " " << operands[0].toString()
           << ", " << operands[1].toString();
        break;
      case Opcode::ICmp:
        os << "icmp " << icmpPredName(pred) << " "
           << operands[0].type->toString() << " "
           << operands[0].toString() << ", " << operands[1].toString();
        break;
      case Opcode::ZExt:
      case Opcode::SExt:
      case Opcode::Trunc:
      case Opcode::PtrToInt:
      case Opcode::IntToPtr:
      case Opcode::Bitcast:
        os << opcodeName(op) << " " << operands[0].type->toString() << " "
           << operands[0].toString() << " to " << type->toString();
        break;
      case Opcode::GetElementPtr:
        os << "getelementptr " << sourceType->toString() << ", "
           << operands[0].type->toString() << " "
           << operands[0].toString();
        for (size_t i = 1; i < operands.size(); ++i) {
            os << ", " << operands[i].type->toString() << " "
               << operands[i].toString();
        }
        break;
      case Opcode::Load:
        os << "load " << type->toString() << ", "
           << operands[0].type->toString() << " "
           << operands[0].toString();
        break;
      case Opcode::Store:
        os << "store " << operands[0].type->toString() << " "
           << operands[0].toString() << ", "
           << operands[1].type->toString() << " "
           << operands[1].toString();
        break;
      case Opcode::Alloca:
        os << "alloca " << sourceType->toString();
        break;
      case Opcode::Phi:
        os << "phi " << type->toString();
        for (size_t i = 0; i < incoming.size(); ++i) {
            os << (i == 0 ? " " : ", ") << "[ "
               << incoming[i].value.toString() << ", %"
               << incoming[i].block << " ]";
        }
        break;
      case Opcode::Select:
        os << "select i1 " << operands[0].toString() << ", "
           << type->toString() << " " << operands[1].toString() << ", "
           << type->toString() << " " << operands[2].toString();
        break;
      case Opcode::Br:
        os << "br label %" << target1;
        break;
      case Opcode::CondBr:
        os << "br i1 " << operands[0].toString() << ", label %" << target1
           << ", label %" << target2;
        break;
      case Opcode::Switch:
        os << "switch " << operands[0].type->toString() << " "
           << operands[0].toString() << ", label %" << target1 << " [";
        for (const auto &[value, target] : switchCases) {
            os << " " << operands[0].type->toString() << " "
               << value.toSignedString() << ", label %" << target;
        }
        os << " ]";
        break;
      case Opcode::Ret:
        os << "ret";
        if (operands.empty())
            os << " void";
        else
            os << " " << operands[0].type->toString() << " "
               << operands[0].toString();
        break;
      case Opcode::Call:
        os << "call " << type->toString() << " " << callee << "(";
        for (size_t i = 0; i < operands.size(); ++i) {
            if (i > 0)
                os << ", ";
            os << operands[i].type->toString() << " "
               << operands[i].toString();
        }
        os << ")";
        break;
      case Opcode::Unreachable:
        os << "unreachable";
        break;
    }
    return os.str();
}

std::vector<std::string>
BasicBlock::successors() const
{
    KEQ_ASSERT(!insts.empty(), "block without instructions");
    const Instruction &term = terminator();
    switch (term.op) {
      case Opcode::Br:
        return {term.target1};
      case Opcode::CondBr:
        return {term.target1, term.target2};
      case Opcode::Switch: {
        std::vector<std::string> out{term.target1};
        for (const auto &[value, target] : term.switchCases) {
            if (std::find(out.begin(), out.end(), target) == out.end())
                out.push_back(target);
        }
        return out;
      }
      default:
        return {};
    }
}

const BasicBlock *
Function::findBlock(const std::string &name) const
{
    for (const BasicBlock &block : blocks) {
        if (block.name == name)
            return &block;
    }
    return nullptr;
}

size_t
Function::instructionCount() const
{
    size_t count = 0;
    for (const BasicBlock &block : blocks)
        count += block.insts.size();
    return count;
}

std::string
Function::toString() const
{
    std::ostringstream os;
    os << "define " << returnType->toString() << " " << name << "(";
    for (size_t i = 0; i < params.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << params[i].type->toString() << " " << params[i].name;
    }
    os << ") {\n";
    for (const BasicBlock &block : blocks) {
        os << block.name << ":\n";
        for (const Instruction &inst : block.insts)
            os << "  " << inst.toString() << "\n";
    }
    os << "}\n";
    return os.str();
}

Function *
Module::findFunction(const std::string &name)
{
    for (Function &fn : functions) {
        if (fn.name == name)
            return &fn;
    }
    return nullptr;
}

const Function *
Module::findFunction(const std::string &name) const
{
    for (const Function &fn : functions) {
        if (fn.name == name)
            return &fn;
    }
    return nullptr;
}

const GlobalVariable *
Module::findGlobal(const std::string &name) const
{
    for (const GlobalVariable &global : globals) {
        if (global.name == name)
            return &global;
    }
    return nullptr;
}

std::string
Module::toString() const
{
    std::ostringstream os;
    for (const GlobalVariable &global : globals) {
        os << global.name << " = external global "
           << global.valueType->toString() << "\n";
    }
    if (!globals.empty())
        os << "\n";
    for (const Function &fn : functions)
        os << fn.toString() << "\n";
    return os.str();
}

} // namespace keq::llvmir
