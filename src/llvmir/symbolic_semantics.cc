#include "src/llvmir/symbolic_semantics.h"

#include "src/sem/sync_point.h"
#include "src/support/diagnostics.h"

namespace keq::llvmir {

using sem::ErrorKind;
using sem::Status;
using sem::SymbolicState;
using smt::Kind;
using smt::Term;
using support::ApInt;

SymbolicSemantics::SymbolicSemantics(const Module &module,
                                     smt::TermFactory &factory,
                                     const mem::MemoryLayout &layout)
    : module_(module), factory_(factory), symMem_(factory, layout)
{}

const Function &
SymbolicSemantics::function(const std::string &name) const
{
    const Function *fn = module_.findFunction(name);
    KEQ_ASSERT(fn != nullptr && !fn->isDeclaration(),
               "unknown function " + name);
    return *fn;
}

const Instruction &
SymbolicSemantics::currentInst(const SymbolicState &state) const
{
    const Function &fn = function(state.function);
    const BasicBlock *block = fn.findBlock(state.block);
    KEQ_ASSERT(block != nullptr, "unknown block " + state.block);
    KEQ_ASSERT(state.instIndex < block->insts.size(),
               "instruction index out of range");
    return block->insts[state.instIndex];
}

Term
SymbolicSemantics::evalValue(SymbolicState &state, const std::string &fn,
                             const Value &value)
{
    switch (value.kind) {
      case Value::Kind::Const:
        return factory_.bvConst(value.constant);
      case Value::Kind::Var: {
        auto it = state.env.find(value.name);
        if (it != state.env.end())
            return it->second;
        // Havoc an unbound use: sound over-approximation (see
        // sem::Semantics contract).
        Term fresh = factory_.freshVar(
            "havoc." + fn + "." + value.name,
            smt::Sort::bitVec(value.type->valueBits()));
        state.env[value.name] = fresh;
        return fresh;
      }
      case Value::Kind::Global: {
        const mem::MemoryObject *object =
            symMem_.layout().find(value.name);
        KEQ_ASSERT(object != nullptr, "unknown global " + value.name);
        return factory_.bvConst(64, object->base);
      }
    }
    KEQ_ASSERT(false, "evalValue: bad kind");
    return {};
}

sem::SymbolicState
SymbolicSemantics::makeState(const sem::StateSeed &seed,
                             std::map<std::string, smt::Term> env,
                             smt::Term memory, smt::Term path_cond)
{
    const Function &fn = function(seed.function);
    SymbolicState state;
    state.status = Status::Running;
    state.function = seed.function;
    state.block = seed.block.empty() ? fn.entry().name : seed.block;
    state.cameFrom = seed.cameFrom;
    state.instIndex = 0;
    state.env = std::move(env);
    state.memory = memory;
    state.pathCond = path_cond;

    if (!seed.afterCallSiteId.empty()) {
        // Position immediately after the call site with the given id.
        bool found = false;
        for (const BasicBlock &block : fn.blocks) {
            for (size_t i = 0; i < block.insts.size(); ++i) {
                const Instruction &inst = block.insts[i];
                if (inst.op == Opcode::Call &&
                    inst.callSiteId == seed.afterCallSiteId) {
                    state.block = block.name;
                    state.instIndex = i + 1;
                    found = true;
                }
            }
        }
        KEQ_ASSERT(found, "unknown call site " + seed.afterCallSiteId);
    }
    return state;
}

unsigned
SymbolicSemantics::registerWidth(const std::string &function_name,
                                 const std::string &reg) const
{
    const Function &fn = function(function_name);
    if (reg == sem::kReturnValueName)
        return fn.returnType->isVoid() ? 0 : fn.returnType->valueBits();
    for (const Parameter &param : fn.params) {
        if (param.name == reg)
            return param.type->valueBits();
    }
    for (const BasicBlock &block : fn.blocks) {
        for (const Instruction &inst : block.insts) {
            if (inst.result == reg) {
                KEQ_ASSERT(inst.type != nullptr && !inst.type->isVoid(),
                           "register without type: " + reg);
                return inst.type->valueBits();
            }
        }
    }
    KEQ_ASSERT(false, "unknown LLVM register " + reg + " in " +
                          function_name);
    return 0;
}

void
SymbolicSemantics::bindRegister(sem::SymbolicState &state,
                                const std::string &function_name,
                                const std::string &reg, smt::Term value)
{
    KEQ_ASSERT(reg != sem::kReturnValueName,
               "cannot bind the return-value pseudo register");
    KEQ_ASSERT(value.sort().isBitVec() &&
                   value.sort().width() ==
                       registerWidth(function_name, reg),
               "bindRegister width mismatch for " + reg);
    state.env[reg] = value;
}

smt::Term
SymbolicSemantics::readRegister(sem::SymbolicState &state,
                                const std::string &function_name,
                                const std::string &reg)
{
    if (reg == sem::kReturnValueName) {
        KEQ_ASSERT(state.status == Status::Exited,
                   "$ret read on non-exited state");
        return state.result;
    }
    auto it = state.env.find(reg);
    if (it != state.env.end())
        return it->second;
    smt::Term fresh = factory_.freshVar(
        "havoc." + function_name + "." + reg,
        smt::Sort::bitVec(registerWidth(function_name, reg)));
    state.env[reg] = fresh;
    return fresh;
}

std::vector<sem::SymbolicState>
SymbolicSemantics::step(const sem::SymbolicState &state_in)
{
    KEQ_ASSERT(state_in.status == Status::Running,
               "step on non-running state");
    SymbolicState state = state_in; // successors start as a copy
    const Function &fn = function(state.function);
    const Instruction &inst = currentInst(state);
    smt::TermFactory &tf = factory_;

    auto errorState = [&](ErrorKind kind, Term condition) {
        SymbolicState err = state;
        err.status = Status::Error;
        err.errorKind = kind;
        err.pathCond = tf.mkAnd(state_in.pathCond, condition);
        return err;
    };

    auto advance = [&](SymbolicState s) {
        ++s.instIndex;
        return s;
    };

    switch (inst.op) {
      case Opcode::Phi: {
        // Execute the whole phi group of this block in one parallel step.
        const BasicBlock *block = fn.findBlock(state.block);
        std::map<std::string, Term> updates;
        size_t i = state.instIndex;
        for (; i < block->insts.size() &&
               block->insts[i].op == Opcode::Phi;
             ++i) {
            const Instruction &phi = block->insts[i];
            bool found = false;
            for (const PhiIncoming &incoming : phi.incoming) {
                if (incoming.block == state.cameFrom) {
                    updates[phi.result] =
                        evalValue(state, fn.name, incoming.value);
                    found = true;
                    break;
                }
            }
            KEQ_ASSERT(found,
                       "phi without incoming for %" + state.cameFrom);
        }
        for (auto &[name, term] : updates)
            state.env[name] = term;
        state.instIndex = i;
        return {state};
      }

      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul: {
        Term a = evalValue(state, fn.name, inst.operands[0]);
        Term b = evalValue(state, fn.name, inst.operands[1]);
        Kind kind = inst.op == Opcode::Add   ? Kind::BvAdd
                    : inst.op == Opcode::Sub ? Kind::BvSub
                                             : Kind::BvMul;
        Term result = tf.bvBinOp(kind, a, b);
        std::vector<SymbolicState> successors;
        Term ok = tf.trueTerm();
        if (inst.nsw || inst.nuw) {
            unsigned w = a.sort().width();
            Term overflow = tf.falseTerm();
            if (inst.nsw) {
                // Signed overflow: sign-extend to 2w and compare.
                Term wide = tf.bvBinOp(kind, tf.sext(a, 2 * w),
                                       tf.sext(b, 2 * w));
                overflow = tf.mkOr(
                    overflow,
                    tf.mkNot(tf.mkEq(wide, tf.sext(result, 2 * w))));
            }
            if (inst.nuw) {
                Term wide = tf.bvBinOp(kind, tf.zext(a, 2 * w),
                                       tf.zext(b, 2 * w));
                overflow = tf.mkOr(
                    overflow,
                    tf.mkNot(tf.mkEq(wide, tf.zext(result, 2 * w))));
            }
            ok = tf.mkNot(overflow);
            if (!overflow.isFalse()) {
                successors.push_back(
                    errorState(ErrorKind::SignedOverflow, overflow));
            }
        }
        state.env[inst.result] = result;
        state.pathCond = tf.mkAnd(state.pathCond, ok);
        if (!state.pathCond.isFalse())
            successors.push_back(advance(state));
        return successors;
      }

      case Opcode::UDiv:
      case Opcode::SDiv:
      case Opcode::URem:
      case Opcode::SRem: {
        Term a = evalValue(state, fn.name, inst.operands[0]);
        Term b = evalValue(state, fn.name, inst.operands[1]);
        unsigned w = a.sort().width();
        std::vector<SymbolicState> successors;
        Term zero = tf.bvConst(w, 0);
        Term div_by_zero = tf.mkEq(b, zero);
        if (!div_by_zero.isFalse()) {
            successors.push_back(
                errorState(ErrorKind::DivByZero, div_by_zero));
        }
        Term ok = tf.mkNot(div_by_zero);
        bool is_signed =
            inst.op == Opcode::SDiv || inst.op == Opcode::SRem;
        if (is_signed) {
            Term overflow = tf.mkAnd(
                tf.mkEq(a, tf.bvConst(ApInt::signedMin(w))),
                tf.mkEq(b, tf.bvConst(ApInt::allOnes(w))));
            if (!overflow.isFalse()) {
                successors.push_back(errorState(
                    ErrorKind::SignedOverflow,
                    tf.mkAnd(ok, overflow)));
            }
            ok = tf.mkAnd(ok, tf.mkNot(overflow));
        }
        Kind kind = inst.op == Opcode::UDiv   ? Kind::BvUDiv
                    : inst.op == Opcode::SDiv ? Kind::BvSDiv
                    : inst.op == Opcode::URem ? Kind::BvURem
                                              : Kind::BvSRem;
        state.env[inst.result] = tf.bvBinOp(kind, a, b);
        state.pathCond = tf.mkAnd(state.pathCond, ok);
        if (!state.pathCond.isFalse())
            successors.push_back(advance(state));
        return successors;
      }

      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr: {
        Term a = evalValue(state, fn.name, inst.operands[0]);
        Term b = evalValue(state, fn.name, inst.operands[1]);
        Kind kind = inst.op == Opcode::And   ? Kind::BvAnd
                    : inst.op == Opcode::Or  ? Kind::BvOr
                    : inst.op == Opcode::Xor ? Kind::BvXor
                    : inst.op == Opcode::Shl ? Kind::BvShl
                    : inst.op == Opcode::LShr ? Kind::BvLShr
                                              : Kind::BvAShr;
        state.env[inst.result] = tf.bvBinOp(kind, a, b);
        return {advance(state)};
      }

      case Opcode::ICmp: {
        Term a = evalValue(state, fn.name, inst.operands[0]);
        Term b = evalValue(state, fn.name, inst.operands[1]);
        Term cond;
        switch (inst.pred) {
          case ICmpPred::Eq: cond = tf.mkEq(a, b); break;
          case ICmpPred::Ne: cond = tf.mkNot(tf.mkEq(a, b)); break;
          case ICmpPred::Ult: cond = tf.bvUlt(a, b); break;
          case ICmpPred::Ule: cond = tf.bvUle(a, b); break;
          case ICmpPred::Ugt: cond = tf.bvUgt(a, b); break;
          case ICmpPred::Uge: cond = tf.bvUge(a, b); break;
          case ICmpPred::Slt: cond = tf.bvSlt(a, b); break;
          case ICmpPred::Sle: cond = tf.bvSle(a, b); break;
          case ICmpPred::Sgt: cond = tf.bvSgt(a, b); break;
          case ICmpPred::Sge: cond = tf.bvSge(a, b); break;
        }
        state.env[inst.result] = tf.mkIte(cond, tf.bvConst(1, 1),
                                          tf.bvConst(1, 0));
        return {advance(state)};
      }

      case Opcode::ZExt:
        state.env[inst.result] =
            tf.zext(evalValue(state, fn.name, inst.operands[0]),
                    inst.type->valueBits());
        return {advance(state)};
      case Opcode::SExt:
        state.env[inst.result] =
            tf.sext(evalValue(state, fn.name, inst.operands[0]),
                    inst.type->valueBits());
        return {advance(state)};
      case Opcode::Trunc:
        state.env[inst.result] =
            tf.trunc(evalValue(state, fn.name, inst.operands[0]),
                     inst.type->valueBits());
        return {advance(state)};
      case Opcode::PtrToInt: {
        Term p = evalValue(state, fn.name, inst.operands[0]);
        unsigned bits = inst.type->valueBits();
        state.env[inst.result] = bits <= p.sort().width()
                                     ? tf.trunc(p, bits)
                                     : tf.zext(p, bits);
        return {advance(state)};
      }
      case Opcode::IntToPtr: {
        Term v = evalValue(state, fn.name, inst.operands[0]);
        state.env[inst.result] =
            v.sort().width() < 64 ? tf.zext(v, 64) : v;
        return {advance(state)};
      }
      case Opcode::Bitcast:
        state.env[inst.result] =
            evalValue(state, fn.name, inst.operands[0]);
        return {advance(state)};

      case Opcode::GetElementPtr: {
        Term address = evalValue(state, fn.name, inst.operands[0]);
        const Type *current = inst.sourceType;
        for (size_t i = 1; i < inst.operands.size(); ++i) {
            Term index = evalValue(state, fn.name, inst.operands[i]);
            unsigned iw = index.sort().width();
            Term wide = iw < 64 ? tf.sext(index, 64) : index;
            if (i == 1) {
                Term scale = tf.bvConst(64, current->sizeInBytes());
                address = tf.bvAdd(address, tf.bvMul(wide, scale));
            } else if (current->isArray()) {
                Term scale = tf.bvConst(
                    64, current->elementType()->sizeInBytes());
                address = tf.bvAdd(address, tf.bvMul(wide, scale));
                current = current->elementType();
            } else {
                KEQ_ASSERT(current->isStruct(), "gep into scalar");
                KEQ_ASSERT(inst.operands[i].isConst(),
                           "struct gep index must be constant");
                uint64_t field = inst.operands[i].constant.zext();
                address = tf.bvAdd(
                    address,
                    tf.bvConst(
                        64, current->fieldOffset(
                                static_cast<unsigned>(field))));
                current = current->fields()[field];
            }
        }
        state.env[inst.result] = address;
        return {advance(state)};
      }

      case Opcode::Load: {
        Term address = evalValue(state, fn.name, inst.operands[0]);
        unsigned size = static_cast<unsigned>(inst.type->sizeInBytes());
        mem::AccessCheck check = symMem_.checkAccess(address, size);
        std::vector<SymbolicState> successors;
        if (!check.inBounds.isTrue()) {
            successors.push_back(errorState(
                ErrorKind::OutOfBounds, tf.mkNot(check.inBounds)));
        }
        if (!check.inBounds.isFalse()) {
            Term loaded = symMem_.read(state.memory, address, size);
            state.env[inst.result] =
                tf.trunc(loaded, inst.type->valueBits());
            state.pathCond = tf.mkAnd(state.pathCond, check.inBounds);
            successors.push_back(advance(state));
        }
        return successors;
      }

      case Opcode::Store: {
        Term value = evalValue(state, fn.name, inst.operands[0]);
        Term address = evalValue(state, fn.name, inst.operands[1]);
        unsigned size = static_cast<unsigned>(inst.type->sizeInBytes());
        mem::AccessCheck check = symMem_.checkAccess(address, size);
        std::vector<SymbolicState> successors;
        if (!check.inBounds.isTrue()) {
            successors.push_back(errorState(
                ErrorKind::OutOfBounds, tf.mkNot(check.inBounds)));
        }
        if (!check.inBounds.isFalse()) {
            Term wide = tf.zext(value, size * 8);
            state.memory =
                symMem_.write(state.memory, address, wide, size);
            state.pathCond = tf.mkAnd(state.pathCond, check.inBounds);
            successors.push_back(advance(state));
        }
        return successors;
      }

      case Opcode::Alloca: {
        const mem::MemoryObject *object =
            symMem_.layout().find(fn.name + "/" + inst.result);
        KEQ_ASSERT(object != nullptr,
                   "alloca slot missing from layout: " + inst.result);
        state.env[inst.result] = tf.bvConst(64, object->base);
        return {advance(state)};
      }

      case Opcode::Select: {
        Term cond = evalValue(state, fn.name, inst.operands[0]);
        Term a = evalValue(state, fn.name, inst.operands[1]);
        Term b = evalValue(state, fn.name, inst.operands[2]);
        state.env[inst.result] =
            tf.mkIte(tf.mkEq(cond, tf.bvConst(1, 1)), a, b);
        return {advance(state)};
      }

      case Opcode::Br: {
        state.cameFrom = state.block;
        state.block = inst.target1;
        state.instIndex = 0;
        return {state};
      }

      case Opcode::CondBr: {
        Term cond = evalValue(state, fn.name, inst.operands[0]);
        Term taken = tf.mkEq(cond, tf.bvConst(1, 1));
        std::vector<SymbolicState> successors;
        if (!taken.isFalse()) {
            SymbolicState t = state;
            t.pathCond = tf.mkAnd(state.pathCond, taken);
            t.cameFrom = state.block;
            t.block = inst.target1;
            t.instIndex = 0;
            successors.push_back(std::move(t));
        }
        if (!taken.isTrue()) {
            SymbolicState f = state;
            f.pathCond = tf.mkAnd(state.pathCond, tf.mkNot(taken));
            f.cameFrom = state.block;
            f.block = inst.target2;
            f.instIndex = 0;
            successors.push_back(std::move(f));
        }
        return successors;
      }

      case Opcode::Switch: {
        Term selector = evalValue(state, fn.name, inst.operands[0]);
        std::vector<SymbolicState> successors;
        // Sequential case tests, mirroring the CMP/JE chain the ISel
        // pass emits, so the two languages' path conditions hash-cons
        // to identical terms.
        Term no_match = tf.trueTerm();
        for (const auto &[value, target] : inst.switchCases) {
            Term hit = tf.mkEq(selector, tf.bvConst(value));
            Term cond = tf.mkAnd(no_match, hit);
            if (!cond.isFalse()) {
                SymbolicState taken = state;
                taken.pathCond = tf.mkAnd(state.pathCond, cond);
                taken.cameFrom = state.block;
                taken.block = target;
                taken.instIndex = 0;
                successors.push_back(std::move(taken));
            }
            no_match = tf.mkAnd(no_match, tf.mkNot(hit));
        }
        if (!no_match.isFalse()) {
            SymbolicState fallback = state;
            fallback.pathCond = tf.mkAnd(state.pathCond, no_match);
            fallback.cameFrom = state.block;
            fallback.block = inst.target1;
            fallback.instIndex = 0;
            if (!fallback.pathCond.isFalse())
                successors.push_back(std::move(fallback));
        }
        return successors;
      }

      case Opcode::Ret: {
        state.status = Status::Exited;
        if (!inst.operands.empty())
            state.result = evalValue(state, fn.name, inst.operands[0]);
        return {state};
      }

      case Opcode::Call: {
        state.status = Status::AtCall;
        state.callee = inst.callee;
        state.callSiteId = inst.callSiteId;
        for (const Value &operand : inst.operands) {
            state.callArgs.push_back(
                evalValue(state, fn.name, operand));
        }
        return {state};
      }

      case Opcode::Unreachable:
        return {errorState(ErrorKind::Unreachable, tf.trueTerm())};
    }
    KEQ_ASSERT(false, "step: unhandled opcode");
    return {};
}

} // namespace keq::llvmir
