#include "src/llvmir/cfg_adapter.h"

namespace keq::llvmir {

analysis::Cfg
buildCfg(const Function &fn)
{
    analysis::Cfg cfg;
    for (const BasicBlock &block : fn.blocks)
        cfg.addBlock(block.name);
    for (const BasicBlock &block : fn.blocks) {
        size_t from = cfg.indexOf(block.name);
        for (const std::string &succ : block.successors())
            cfg.addEdge(from, cfg.indexOf(succ));
    }
    return cfg;
}

void
instUseDef(const Instruction &inst, std::set<std::string> &use,
           std::set<std::string> &def)
{
    if (inst.op != Opcode::Phi) {
        for (const Value &operand : inst.operands) {
            if (operand.isVar())
                use.insert(operand.name);
        }
    }
    if (!inst.result.empty())
        def.insert(inst.result);
}

std::vector<analysis::BlockUseDef>
useDefFacts(const Function &fn, const analysis::Cfg &cfg)
{
    std::vector<analysis::BlockUseDef> facts(cfg.numBlocks());
    for (const BasicBlock &block : fn.blocks) {
        analysis::BlockUseDef &fact = facts[cfg.indexOf(block.name)];
        std::set<std::string> local_defs;
        for (const Instruction &inst : block.insts) {
            if (inst.op == Opcode::Phi) {
                for (const PhiIncoming &incoming : inst.incoming) {
                    if (incoming.value.isVar()) {
                        fact.phiUse[cfg.indexOf(incoming.block)].insert(
                            incoming.value.name);
                    }
                }
            }
            std::set<std::string> use, def;
            instUseDef(inst, use, def);
            for (const std::string &name : use) {
                if (!local_defs.count(name))
                    fact.use.insert(name);
            }
            for (const std::string &name : def) {
                local_defs.insert(name);
                fact.def.insert(name);
            }
        }
    }
    return facts;
}

} // namespace keq::llvmir
