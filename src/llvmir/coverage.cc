#include "src/llvmir/coverage.h"

#include <sstream>

namespace keq {

using llvmir::ICmpPred;
using llvmir::Opcode;

const char *
coverageShapeName(CoverageShape shape)
{
    switch (shape) {
    case CoverageShape::GepStructField: return "gep-struct-field";
    case CoverageShape::GepArrayIndex: return "gep-array-index";
    case CoverageShape::GepNested: return "gep-nested";
    case CoverageShape::SelectChain: return "select-chain";
    case CoverageShape::PhiWeb: return "phi-web";
    case CoverageShape::NarrowLoad: return "narrow-load";
    case CoverageShape::NarrowStore: return "narrow-store";
    case CoverageShape::DivRegisterDivisor:
        return "div-register-divisor";
    case CoverageShape::SignedDivOverflowEdge:
        return "signed-div-overflow-edge";
    case CoverageShape::SwitchManyCases: return "switch-many-cases";
    case CoverageShape::WrapFlag: return "wrap-flag";
    }
    return "?";
}

namespace {

/**
 * Ledger key for an opcode. llvmir::opcodeName prints both Br and
 * CondBr as "br" (assembly spelling); the ledger needs the two
 * distinguished or serialize/deserialize would alias their counters.
 */
const char *
coverageOpcodeName(Opcode op)
{
    return op == Opcode::CondBr ? "condbr" : llvmir::opcodeName(op);
}

bool
isDivision(Opcode op)
{
    return op == Opcode::UDiv || op == Opcode::SDiv ||
           op == Opcode::URem || op == Opcode::SRem;
}

/** Narrow means below register word granularity: i1, i8, i16. */
bool
isNarrowAccess(const llvmir::Type *type)
{
    return type != nullptr && type->isInteger() && type->bitWidth() <= 16;
}

} // namespace

void
CoverageMap::recordModule(const llvmir::Module &module)
{
    for (const llvmir::Function &fn : module.functions)
        if (!fn.isDeclaration())
            recordFunction(fn);
}

void
CoverageMap::recordFunction(const llvmir::Function &fn)
{
    auto shape = [this](CoverageShape s) {
        ++shapes_[static_cast<size_t>(s)];
    };
    size_t selects = 0;
    for (const llvmir::BasicBlock &block : fn.blocks) {
        size_t phis_in_block = 0;
        for (const llvmir::Instruction &inst : block.insts) {
            ++opcodes_[static_cast<size_t>(inst.op)];
            switch (inst.op) {
            case Opcode::ICmp:
                ++preds_[static_cast<size_t>(inst.pred)];
                break;
            case Opcode::GetElementPtr: {
                // Walk the index list the way address computation does:
                // the first index steps over the base pointer, every
                // further one descends one aggregate level.
                const llvmir::Type *current = inst.sourceType;
                size_t aggregate_steps = 0;
                bool struct_step = false, array_step = false;
                for (size_t i = 2;
                     i < inst.operands.size() && current != nullptr;
                     ++i) {
                    if (current->isArray()) {
                        array_step = true;
                        ++aggregate_steps;
                        current = current->elementType();
                    } else if (current->isStruct()) {
                        struct_step = true;
                        ++aggregate_steps;
                        const llvmir::Value &index = inst.operands[i];
                        uint64_t field =
                            index.isConst() ? index.constant.zext() : 0;
                        current = field < current->fields().size()
                                      ? current->fields()[field]
                                      : nullptr;
                    } else {
                        current = nullptr;
                    }
                }
                if (struct_step)
                    shape(CoverageShape::GepStructField);
                if (array_step)
                    shape(CoverageShape::GepArrayIndex);
                if (aggregate_steps >= 2)
                    shape(CoverageShape::GepNested);
                break;
            }
            case Opcode::Load:
                if (isNarrowAccess(inst.type))
                    shape(CoverageShape::NarrowLoad);
                break;
            case Opcode::Store:
                if (isNarrowAccess(inst.type))
                    shape(CoverageShape::NarrowStore);
                break;
            case Opcode::Phi:
                ++phis_in_block;
                if (inst.incoming.size() >= 3 || phis_in_block >= 2)
                    shape(CoverageShape::PhiWeb);
                break;
            case Opcode::Select:
                ++selects;
                break;
            case Opcode::Switch:
                if (inst.switchCases.size() >= 3)
                    shape(CoverageShape::SwitchManyCases);
                break;
            default:
                break;
            }
            if (isDivision(inst.op) && inst.operands.size() >= 2) {
                const llvmir::Value &divisor = inst.operands[1];
                if (!divisor.isConst())
                    shape(CoverageShape::DivRegisterDivisor);
                else if ((inst.op == Opcode::SDiv ||
                          inst.op == Opcode::SRem) &&
                         divisor.constant.isAllOnes())
                    shape(CoverageShape::SignedDivOverflowEdge);
            }
            if (inst.nsw || inst.nuw)
                shape(CoverageShape::WrapFlag);
        }
    }
    if (selects >= 2)
        shape(CoverageShape::SelectChain);
}

void
CoverageMap::merge(const CoverageMap &other)
{
    for (size_t i = 0; i < opcodes_.size(); ++i)
        opcodes_[i] += other.opcodes_[i];
    for (size_t i = 0; i < preds_.size(); ++i)
        preds_[i] += other.preds_[i];
    for (size_t i = 0; i < shapes_.size(); ++i)
        shapes_[i] += other.shapes_[i];
}

uint64_t
CoverageMap::opcodeCount(Opcode op) const
{
    return opcodes_[static_cast<size_t>(op)];
}

uint64_t
CoverageMap::predCount(ICmpPred pred) const
{
    return preds_[static_cast<size_t>(pred)];
}

uint64_t
CoverageMap::shapeCount(CoverageShape shape) const
{
    return shapes_[static_cast<size_t>(shape)];
}

uint64_t
CoverageMap::totalInstructions() const
{
    uint64_t total = 0;
    for (uint64_t count : opcodes_)
        total += count;
    return total;
}

std::vector<Opcode>
CoverageMap::uncoveredOpcodes() const
{
    std::vector<Opcode> missing;
    for (size_t i = 0; i < opcodes_.size(); ++i)
        if (opcodes_[i] == 0)
            missing.push_back(static_cast<Opcode>(i));
    return missing;
}

std::vector<ICmpPred>
CoverageMap::uncoveredPreds() const
{
    std::vector<ICmpPred> missing;
    for (size_t i = 0; i < preds_.size(); ++i)
        if (preds_[i] == 0)
            missing.push_back(static_cast<ICmpPred>(i));
    return missing;
}

std::vector<CoverageShape>
CoverageMap::uncoveredShapes() const
{
    std::vector<CoverageShape> missing;
    for (size_t i = 0; i < shapes_.size(); ++i)
        if (shapes_[i] == 0)
            missing.push_back(static_cast<CoverageShape>(i));
    return missing;
}

bool
CoverageMap::complete() const
{
    return uncoveredOpcodes().empty() && uncoveredPreds().empty() &&
           uncoveredShapes().empty();
}

std::string
CoverageMap::report() const
{
    std::ostringstream out;
    out << "coverage ledger: " << totalInstructions()
        << " instructions recorded\n";
    auto section = [&out](const char *title, auto count, auto name,
                          size_t entries) {
        out << "  " << title << ":";
        std::vector<std::string> missing;
        for (size_t i = 0; i < entries; ++i) {
            uint64_t n = count(i);
            if (n == 0)
                missing.push_back(name(i));
            else
                out << " " << name(i) << "=" << n;
        }
        out << "\n";
        if (!missing.empty()) {
            out << "  " << title << " UNCOVERED:";
            for (const std::string &m : missing)
                out << " " << m;
            out << "\n";
        }
    };
    section(
        "opcodes",
        [this](size_t i) { return opcodes_[i]; },
        [](size_t i) {
            return coverageOpcodeName(static_cast<Opcode>(i));
        },
        kOpcodeCount);
    section(
        "icmp preds",
        [this](size_t i) { return preds_[i]; },
        [](size_t i) {
            return llvmir::icmpPredName(static_cast<ICmpPred>(i));
        },
        kICmpPredCount);
    section(
        "shapes",
        [this](size_t i) { return shapes_[i]; },
        [](size_t i) {
            return coverageShapeName(static_cast<CoverageShape>(i));
        },
        kCoverageShapeCount);
    return out.str();
}

std::string
CoverageMap::serialize() const
{
    std::ostringstream out;
    bool first = true;
    auto emit = [&](const char *prefix, const char *name, uint64_t n) {
        if (n == 0)
            return;
        if (!first)
            out << ' ';
        first = false;
        out << prefix << ':' << name << '=' << n;
    };
    for (size_t i = 0; i < kOpcodeCount; ++i)
        emit("op", coverageOpcodeName(static_cast<Opcode>(i)),
             opcodes_[i]);
    for (size_t i = 0; i < kICmpPredCount; ++i)
        emit("pred", llvmir::icmpPredName(static_cast<ICmpPred>(i)),
             preds_[i]);
    for (size_t i = 0; i < kCoverageShapeCount; ++i)
        emit("shape", coverageShapeName(static_cast<CoverageShape>(i)),
             shapes_[i]);
    return out.str();
}

bool
CoverageMap::deserialize(std::string_view text, CoverageMap &out)
{
    CoverageMap map;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t end = text.find(' ', pos);
        std::string_view entry =
            text.substr(pos, end == std::string_view::npos ? end
                                                           : end - pos);
        pos = end == std::string_view::npos ? text.size() : end + 1;
        if (entry.empty())
            continue;
        size_t colon = entry.find(':');
        size_t eq = entry.rfind('=');
        if (colon == std::string_view::npos ||
            eq == std::string_view::npos || eq <= colon)
            return false;
        std::string_view kind = entry.substr(0, colon);
        std::string_view name = entry.substr(colon + 1, eq - colon - 1);
        uint64_t count = 0;
        std::string_view digits = entry.substr(eq + 1);
        if (digits.empty())
            return false;
        for (char c : digits) {
            if (c < '0' || c > '9')
                return false;
            count = count * 10 + static_cast<uint64_t>(c - '0');
        }
        // Unknown names are skipped, not rejected: an old journal must
        // stay loadable after the ledger grows a dimension.
        if (kind == "op") {
            for (size_t i = 0; i < kOpcodeCount; ++i) {
                if (name ==
                    coverageOpcodeName(static_cast<Opcode>(i))) {
                    map.opcodes_[i] += count;
                    break;
                }
            }
        } else if (kind == "pred") {
            for (size_t i = 0; i < kICmpPredCount; ++i) {
                if (name ==
                    llvmir::icmpPredName(static_cast<ICmpPred>(i))) {
                    map.preds_[i] += count;
                    break;
                }
            }
        } else if (kind == "shape") {
            for (size_t i = 0; i < kCoverageShapeCount; ++i) {
                if (name == coverageShapeName(
                                static_cast<CoverageShape>(i))) {
                    map.shapes_[i] += count;
                    break;
                }
            }
        } else {
            return false;
        }
    }
    out = map;
    return true;
}

bool
CoverageMap::operator==(const CoverageMap &other) const
{
    return opcodes_ == other.opcodes_ && preds_ == other.preds_ &&
           shapes_ == other.shapes_;
}

} // namespace keq
