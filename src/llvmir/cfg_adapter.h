#ifndef KEQ_LLVMIR_CFG_ADAPTER_H
#define KEQ_LLVMIR_CFG_ADAPTER_H

/**
 * @file
 * Adapters from LLVM IR functions to the generic CFG analyses.
 */

#include "src/analysis/cfg.h"
#include "src/llvmir/ir.h"

namespace keq::llvmir {

/** Builds the generic CFG of @p fn (blocks in source order). */
analysis::Cfg buildCfg(const Function &fn);

/**
 * Per-block use/def facts for SSA liveness. Uses are upward-exposed
 * (a use after a same-block def does not count); phi reads are attributed
 * to the incoming edge per the analysis::BlockUseDef contract.
 */
std::vector<analysis::BlockUseDef> useDefFacts(const Function &fn,
                                               const analysis::Cfg &cfg);

/**
 * Uses and defs of one non-phi instruction (for the intra-block backward
 * scans around call sites).
 */
void instUseDef(const Instruction &inst, std::set<std::string> &use,
                std::set<std::string> &def);

} // namespace keq::llvmir

#endif // KEQ_LLVMIR_CFG_ADAPTER_H
