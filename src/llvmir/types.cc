#include "src/llvmir/types.h"

#include "src/support/diagnostics.h"

namespace keq::llvmir {

uint64_t
Type::fieldOffset(unsigned index) const
{
    KEQ_ASSERT(isStruct() && index < fields_.size(),
               "fieldOffset: bad struct field");
    uint64_t offset = 0;
    for (unsigned i = 0; i < index; ++i)
        offset += fields_[i]->sizeInBytes();
    return offset;
}

std::string
Type::toString() const
{
    switch (kind_) {
      case Kind::Void:
        return "void";
      case Kind::Integer:
        return "i" + std::to_string(bitWidth_);
      case Kind::Pointer:
        return pointee_->toString() + "*";
      case Kind::Array:
        return "[" + std::to_string(length_) + " x " +
               element_->toString() + "]";
      case Kind::Struct: {
        std::string out = "{";
        for (size_t i = 0; i < fields_.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += fields_[i]->toString();
        }
        return out + "}";
      }
    }
    return "?";
}

unsigned
Type::valueBits() const
{
    if (isInteger())
        return bitWidth_;
    KEQ_ASSERT(isPointer(), "valueBits: not a first-class type");
    return 64;
}

TypeContext::TypeContext()
{
    Type *v = allocate();
    v->kind_ = Type::Kind::Void;
    void_ = v;
}

Type *
TypeContext::allocate()
{
    storage_.emplace_back();
    return &storage_.back();
}

const Type *
TypeContext::intType(unsigned bits)
{
    KEQ_ASSERT(bits == 1 || bits == 8 || bits == 16 || bits == 32 ||
                   bits == 64,
               "unsupported integer width i" + std::to_string(bits));
    for (const Type *t : interned_) {
        if (t->isInteger() && t->bitWidth() == bits)
            return t;
    }
    Type *t = allocate();
    t->kind_ = Type::Kind::Integer;
    t->bitWidth_ = bits;
    t->size_ = (bits + 7) / 8;
    interned_.push_back(t);
    return t;
}

const Type *
TypeContext::pointerTo(const Type *pointee)
{
    for (const Type *t : interned_) {
        if (t->isPointer() && t->pointee() == pointee)
            return t;
    }
    Type *t = allocate();
    t->kind_ = Type::Kind::Pointer;
    t->pointee_ = pointee;
    t->size_ = 8;
    interned_.push_back(t);
    return t;
}

const Type *
TypeContext::arrayOf(const Type *element, uint64_t length)
{
    for (const Type *t : interned_) {
        if (t->isArray() && t->elementType() == element &&
            t->arrayLength() == length) {
            return t;
        }
    }
    Type *t = allocate();
    t->kind_ = Type::Kind::Array;
    t->element_ = element;
    t->length_ = length;
    t->size_ = element->sizeInBytes() * length;
    interned_.push_back(t);
    return t;
}

const Type *
TypeContext::structOf(std::vector<const Type *> fields)
{
    for (const Type *t : interned_) {
        if (t->isStruct() && t->fields() == fields)
            return t;
    }
    Type *t = allocate();
    t->kind_ = Type::Kind::Struct;
    uint64_t size = 0;
    for (const Type *field : fields)
        size += field->sizeInBytes();
    t->fields_ = std::move(fields);
    t->size_ = size;
    interned_.push_back(t);
    return t;
}

} // namespace keq::llvmir

