#ifndef KEQ_LLVMIR_VERIFIER_H
#define KEQ_LLVMIR_VERIFIER_H

/**
 * @file
 * Structural well-formedness checks for parsed LLVM IR modules.
 *
 * The verifier guards the semantics and the ISel pass against malformed
 * inputs: unique SSA definitions, terminated blocks, resolvable branch
 * targets, phi/predecessor agreement, and resolvable globals/callees.
 * (Full SSA dominance checking is intentionally out of scope; the
 * symbolic semantics havocs undominated uses, which is sound for the
 * checker — it can only cause validation failures, never false proofs.)
 */

#include <string>
#include <vector>

#include "src/llvmir/ir.h"

namespace keq::llvmir {

/** Collected verification problems; empty means well-formed. */
std::vector<std::string> verifyModule(const Module &module);

/** Throws support::Error listing all problems when verification fails. */
void verifyModuleOrThrow(const Module &module);

} // namespace keq::llvmir

#endif // KEQ_LLVMIR_VERIFIER_H
