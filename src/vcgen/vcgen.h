#ifndef KEQ_VCGEN_VCGEN_H
#define KEQ_VCGEN_VCGEN_H

/**
 * @file
 * Verification condition generator for Instruction Selection (Section 4.5).
 *
 * Produces the synchronization point set for one LLVM/Virtual-x86 function
 * pair from the compiler-generated hints plus static analysis:
 *
 *  - function entry and exit points (constraints from the calling
 *    convention),
 *  - one point per (loop header, predecessor) edge, constraining the
 *    values live along that edge (phi-aware liveness),
 *  - before/after points around every call site.
 *
 * When an x86 register is live at a point but has neither an LLVM
 * counterpart in the hint map nor a known constant value, the generated
 * set is flagged inadequate — the paper's residual failure category
 * (Section 5.1, "Inadequate synchronization points"). The BlockLocal
 * liveness precision deliberately reproduces that situation by using a
 * cruder analysis.
 */

#include <string>
#include <vector>

#include "src/isel/isel.h"
#include "src/llvmir/ir.h"
#include "src/sem/sync_point.h"
#include "src/vx86/mir.h"

namespace keq::vcgen {

/** Liveness analysis precision (Section 5.1 failure-mode reproduction). */
enum class LivenessPrecision : uint8_t {
    Full,       ///< Phi-aware interprocedural-block dataflow liveness.
    BlockLocal, ///< Crude: block-local uses only (misses pass-throughs).
};

struct VcOptions
{
    LivenessPrecision precision = LivenessPrecision::Full;
};

/** Generated VC plus adequacy diagnostics. */
struct VcResult
{
    sem::SyncPointSet points;
    /** Human-readable notes on constraints that could not be formed. */
    std::vector<std::string> warnings;
    /** False when a live register could not be constrained. */
    bool adequate = true;
};

/** Generates the sync point set for one function pair. */
VcResult generateSyncPoints(const llvmir::Function &fn,
                            const vx86::MFunction &mfn,
                            const isel::FunctionHints &hints,
                            const VcOptions &options = {});

} // namespace keq::vcgen

#endif // KEQ_VCGEN_VCGEN_H
