#include "src/vcgen/regalloc_vcgen.h"

#include <set>

#include "src/analysis/cfg.h"
#include "src/support/diagnostics.h"
#include "src/vx86/cfg_adapter.h"

namespace keq::vcgen {

using regalloc::AllocationResult;
using sem::SyncConstraint;
using sem::SyncKind;
using sem::SyncPoint;
using vx86::MBasicBlock;
using vx86::MFunction;
using vx86::MInst;
using vx86::MOpcode;

namespace {

bool
isVirtReg(const std::string &name)
{
    return name.size() > 3 && name.substr(0, 3) == "%vr";
}

bool
isFlagName(const std::string &name)
{
    return name == "zf" || name == "sf" || name == "cf" || name == "of";
}

unsigned
widthOfVirtReg(const std::string &name)
{
    return static_cast<unsigned>(
        std::stoul(name.substr(name.rfind('_') + 1)));
}

} // namespace

VcResult
generateRegAllocSyncPoints(const MFunction &pre,
                           const AllocationResult &allocation)
{
    VcResult result;
    analysis::Cfg cfg = vx86::buildCfg(pre);
    std::vector<analysis::BlockUseDef> facts =
        vx86::useDefFacts(pre, cfg);
    analysis::Liveness liveness = analysis::computeLiveness(cfg, facts);
    unsigned next_id = 0;
    auto fresh_id = [&]() { return "p" + std::to_string(next_id++); };

    /** Relates a pre-RA register to its post-RA location. */
    auto locate = [&](SyncPoint &point, const std::string &reg) {
        if (isFlagName(reg)) {
            result.adequate = false;
            result.warnings.push_back(point.id + ": eflags bit " + reg +
                                      " live across a sync point");
            return;
        }
        if (!isVirtReg(reg)) {
            // A physical register on the pre-RA side maps to itself.
            std::string spelling = vx86::physRegSpelling(reg, 64);
            point.constraints.push_back(
                SyncConstraint::aEqB(spelling, spelling));
            return;
        }
        auto it = allocation.assignment.find(reg);
        if (it == allocation.assignment.end()) {
            result.adequate = false;
            result.warnings.push_back(point.id + ": live register " +
                                      reg + " has no assignment hint");
            return;
        }
        point.constraints.push_back(SyncConstraint::aEqB(
            reg,
            vx86::physRegSpelling(it->second, widthOfVirtReg(reg))));
    };

    // --- Entry -----------------------------------------------------------
    {
        SyncPoint point;
        point.id = fresh_id();
        point.kind = SyncKind::Entry;
        point.a = {pre.name, pre.blocks.front().name, "", ""};
        point.b = {allocation.fn.name,
                   allocation.fn.blocks.front().name, "", ""};
        for (const std::string &reg : liveness.liveIn[cfg.entry()])
            locate(point, reg);
        result.points.points.push_back(std::move(point));
    }

    // --- Loop headers, one point per incoming edge --------------------------
    for (const analysis::NaturalLoop &loop : analysis::naturalLoops(cfg)) {
        const std::string &header = cfg.name(loop.header);
        const MBasicBlock *hblock = pre.findBlock(header);
        for (size_t pred : cfg.predecessors(loop.header)) {
            const std::string &pred_name = cfg.name(pred);
            SyncPoint point;
            point.id = fresh_id();
            point.kind = SyncKind::BlockEntry;
            point.a = {pre.name, header, pred_name, ""};
            point.b = {allocation.fn.name, header, pred_name, ""};

            // Pass-through values: live into the header.
            for (const std::string &reg :
                 liveness.liveIn[loop.header]) {
                locate(point, reg);
            }
            // Phi inputs: side A reads them at the head; side B's copies
            // already placed the value in the phi destination's register.
            for (const MInst &inst : hblock->insts) {
                if (inst.op != MOpcode::PHI)
                    break;
                for (const auto &[value, from] : inst.incoming) {
                    if (from != pred_name || !value.isReg())
                        continue;
                    auto it =
                        allocation.assignment.find(inst.ops[0].reg);
                    if (it == allocation.assignment.end()) {
                        result.adequate = false;
                        result.warnings.push_back(
                            point.id + ": phi destination " +
                            inst.ops[0].reg + " has no assignment");
                        continue;
                    }
                    point.constraints.push_back(SyncConstraint::aEqB(
                        value.reg,
                        vx86::physRegSpelling(it->second,
                                              inst.ops[0].width)));
                }
            }
            result.points.points.push_back(std::move(point));
        }
    }

    // --- Call boundaries -----------------------------------------------------
    for (const MBasicBlock &block : pre.blocks) {
        for (size_t i = 0; i < block.insts.size(); ++i) {
            const MInst &inst = block.insts[i];
            if (inst.op != MOpcode::CALL)
                continue;
            // Values live just after the call (intra-block backward scan
            // seeded with the block's live-out).
            std::set<std::string> live =
                liveness.liveOut[cfg.indexOf(block.name)];
            for (size_t j = block.insts.size(); j-- > i + 1;) {
                std::set<std::string> use, def;
                vx86::minstUseDef(block.insts[j], pre, use, def);
                for (const std::string &name : def)
                    live.erase(name);
                live.insert(use.begin(), use.end());
            }
            std::set<std::string> survivors = live;
            survivors.erase("rax");

            SyncPoint before;
            before.id = fresh_id();
            before.kind = SyncKind::BeforeCall;
            before.a = {pre.name, block.name, "", inst.callSiteId};
            before.b = {allocation.fn.name, block.name, "",
                        inst.callSiteId};
            for (const std::string &reg : survivors) {
                if (!isFlagName(reg))
                    locate(before, reg);
            }
            result.points.points.push_back(std::move(before));

            SyncPoint after;
            after.id = fresh_id();
            after.kind = SyncKind::AfterCall;
            after.a = {pre.name, block.name, "", inst.callSiteId};
            after.b = {allocation.fn.name, block.name, "",
                       inst.callSiteId};
            if (inst.retWidth > 0) {
                std::string rax =
                    vx86::physRegSpelling("rax", inst.retWidth);
                after.constraints.push_back(
                    SyncConstraint::aEqB(rax, rax));
            }
            for (const std::string &reg : survivors) {
                if (!isFlagName(reg))
                    locate(after, reg);
            }
            result.points.points.push_back(std::move(after));
        }
    }

    // --- Exit ------------------------------------------------------------------
    {
        SyncPoint point;
        point.id = fresh_id();
        point.kind = SyncKind::Exit;
        point.a = {pre.name, "", "", ""};
        point.b = {allocation.fn.name, "", "", ""};
        if (pre.retWidth > 0) {
            point.constraints.push_back(SyncConstraint::aEqB(
                sem::kReturnValueName, sem::kReturnValueName));
        }
        result.points.points.push_back(std::move(point));
    }

    return result;
}

} // namespace keq::vcgen
