#ifndef KEQ_VCGEN_REGALLOC_VCGEN_H
#define KEQ_VCGEN_REGALLOC_VCGEN_H

/**
 * @file
 * Verification condition generator for register allocation.
 *
 * This instantiates the paper's Section 1 claim that KEQ applies
 * *unchanged* to LLVM's register allocation phase: side A is the pre-RA
 * Virtual x86 function (virtual registers, PHIs), side B the allocated
 * function (physical registers, phi-eliminated copies in predecessors),
 * and both sides run the same vx86::SymbolicSemantics. The only
 * transformation-specific knowledge is the vreg-to-physical-register
 * assignment, which treats the allocator itself as a black box.
 *
 * Point placement mirrors the ISel generator (entry, loop-header edges,
 * call boundaries, exit). Constraint derivation differs in one place:
 * side A's phi reads happen at the block head while side B's copies
 * already happened in the predecessor, so on a loop edge the phi *input*
 * on side A is related to the phi *destination's* register on side B.
 */

#include "src/regalloc/regalloc.h"
#include "src/vcgen/vcgen.h"
#include "src/vx86/mir.h"

namespace keq::vcgen {

/**
 * Generates sync points relating @p pre (virtual registers, with phis)
 * and the result of allocating it.
 */
VcResult generateRegAllocSyncPoints(
    const vx86::MFunction &pre,
    const regalloc::AllocationResult &allocation);

} // namespace keq::vcgen

#endif // KEQ_VCGEN_REGALLOC_VCGEN_H
