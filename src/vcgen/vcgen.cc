#include "src/vcgen/vcgen.h"

#include <set>

#include "src/analysis/cfg.h"
#include "src/llvmir/cfg_adapter.h"
#include "src/support/diagnostics.h"
#include "src/vx86/cfg_adapter.h"

namespace keq::vcgen {

using llvmir::BasicBlock;
using llvmir::Function;
using llvmir::Instruction;
using llvmir::Opcode;
using sem::SyncConstraint;
using sem::SyncKind;
using sem::SyncPoint;
using support::ApInt;
using vx86::MBasicBlock;
using vx86::MFunction;
using vx86::MInst;
using vx86::MOpcode;

namespace {

/** Machine width of an LLVM type (i1 lives in 8-bit registers). */
unsigned
machineWidth(const llvmir::Type *type)
{
    if (type->isInteger() && type->bitWidth() == 1)
        return 8;
    return type->valueBits();
}

const char *const kArgRegs[] = {"rdi", "rsi", "rdx", "rcx", "r8", "r9"};

bool
isFlagName(const std::string &name)
{
    return name == "zf" || name == "sf" || name == "cf" || name == "of";
}

/** All the per-pair analysis state the generator needs. */
struct Context
{
    const Function &fn;
    const MFunction &mfn;
    const isel::FunctionHints &hints;
    VcOptions options;

    analysis::Cfg cfgA;
    std::vector<analysis::BlockUseDef> factsA;
    analysis::Liveness livenessA;

    analysis::Cfg cfgB;
    std::vector<analysis::BlockUseDef> factsB;
    analysis::Liveness livenessB;

    VcResult result;
    unsigned nextId = 0;

    Context(const Function &fn_in, const MFunction &mfn_in,
            const isel::FunctionHints &hints_in, VcOptions options_in)
        : fn(fn_in), mfn(mfn_in), hints(hints_in), options(options_in),
          cfgA(llvmir::buildCfg(fn_in)),
          factsA(llvmir::useDefFacts(fn_in, cfgA)),
          livenessA(analysis::computeLiveness(cfgA, factsA)),
          cfgB(vx86::buildCfg(mfn_in)),
          factsB(vx86::useDefFacts(mfn_in, cfgB)),
          livenessB(analysis::computeLiveness(cfgB, factsB))
    {}

    std::string
    freshId()
    {
        return "p" + std::to_string(nextId++);
    }

    std::string
    mblockOf(const std::string &llvm_block)
    {
        auto it = hints.blockMap.find(llvm_block);
        KEQ_ASSERT(it != hints.blockMap.end(),
                   "no machine block for %" + llvm_block);
        return it->second;
    }

    /** Live set along the LLVM edge pred -> block (per precision). */
    std::set<std::string>
    edgeLiveA(const std::string &pred, const std::string &block)
    {
        size_t p = cfgA.indexOf(pred);
        size_t b = cfgA.indexOf(block);
        if (options.precision == LivenessPrecision::Full)
            return livenessA.edgeLive(cfgA, factsA, p, b);
        // Crude: block-local upward-exposed uses plus phi reads.
        std::set<std::string> live = factsA[b].use;
        auto it = factsA[b].phiUse.find(p);
        if (it != factsA[b].phiUse.end())
            live.insert(it->second.begin(), it->second.end());
        return live;
    }

    std::set<std::string>
    edgeLiveB(const std::string &pred, const std::string &block)
    {
        size_t p = cfgB.indexOf(pred);
        size_t b = cfgB.indexOf(block);
        if (options.precision == LivenessPrecision::Full)
            return livenessB.edgeLive(cfgB, factsB, p, b);
        std::set<std::string> live = factsB[b].use;
        auto it = factsB[b].phiUse.find(p);
        if (it != factsB[b].phiUse.end())
            live.insert(it->second.begin(), it->second.end());
        return live;
    }

    /** Values live immediately after instruction @p index of @p block. */
    std::set<std::string>
    liveAfterA(const BasicBlock &block, size_t index)
    {
        size_t b = cfgA.indexOf(block.name);
        std::set<std::string> live =
            options.precision == LivenessPrecision::Full
                ? livenessA.liveOut[b]
                : std::set<std::string>{};
        for (size_t i = block.insts.size(); i-- > index + 1;) {
            std::set<std::string> use, def;
            llvmir::instUseDef(block.insts[i], use, def);
            for (const std::string &name : def)
                live.erase(name);
            live.insert(use.begin(), use.end());
        }
        return live;
    }

    std::set<std::string>
    liveAfterB(const MBasicBlock &block, size_t index)
    {
        size_t b = cfgB.indexOf(block.name);
        std::set<std::string> live =
            options.precision == LivenessPrecision::Full
                ? livenessB.liveOut[b]
                : std::set<std::string>{};
        for (size_t i = block.insts.size(); i-- > index + 1;) {
            std::set<std::string> use, def;
            vx86::minstUseDef(block.insts[i], mfn, use, def);
            for (const std::string &name : def)
                live.erase(name);
            live.insert(use.begin(), use.end());
        }
        return live;
    }

    /**
     * Emits the equality constraints relating @p live_a (LLVM values) and
     * @p live_b (x86 registers) into @p point, flagging inadequacies.
     * @p extra_covered_b lists x86 registers already constrained by the
     * caller (e.g. rax at after-call points).
     */
    void
    constrainLiveSets(SyncPoint &point,
                      const std::set<std::string> &live_a,
                      const std::set<std::string> &live_b,
                      const std::set<std::string> &extra_covered_b)
    {
        std::set<std::string> covered_b = extra_covered_b;
        for (const std::string &value : live_a) {
            auto it = hints.regMap.find(value);
            if (it == hints.regMap.end()) {
                result.adequate = false;
                result.warnings.push_back(
                    point.id + ": live LLVM value " + value +
                    " has no register hint");
                continue;
            }
            point.constraints.push_back(
                SyncConstraint::aEqB(value, it->second));
            covered_b.insert(it->second);
        }
        for (const std::string &reg : live_b) {
            if (covered_b.count(reg))
                continue;
            if (isFlagName(reg)) {
                result.adequate = false;
                result.warnings.push_back(
                    point.id + ": eflags bit " + reg +
                    " live across a synchronization point");
                continue;
            }
            auto it = hints.constRegs.find(reg);
            if (it != hints.constRegs.end()) {
                point.constraints.push_back(
                    SyncConstraint::bEqConst(reg, it->second));
                continue;
            }
            result.adequate = false;
            result.warnings.push_back(
                point.id + ": live x86 register " + reg +
                " has no live LLVM counterpart");
        }
    }
};

} // namespace

VcResult
generateSyncPoints(const Function &fn, const MFunction &mfn,
                   const isel::FunctionHints &hints,
                   const VcOptions &options)
{
    Context ctx(fn, mfn, hints, options);

    // --- Function entry (paper's p0) -------------------------------------
    {
        SyncPoint point;
        point.id = ctx.freshId();
        point.kind = SyncKind::Entry;
        point.a = {fn.name, fn.entry().name, "", ""};
        point.b = {mfn.name, mfn.blocks.front().name, "", ""};
        KEQ_ASSERT(fn.params.size() <= 6, "too many parameters");
        for (size_t i = 0; i < fn.params.size(); ++i) {
            unsigned width = machineWidth(fn.params[i].type);
            point.constraints.push_back(SyncConstraint::aEqB(
                fn.params[i].name,
                vx86::physRegSpelling(kArgRegs[i], width)));
        }
        ctx.result.points.points.push_back(std::move(point));
    }

    // --- Loop-entry points: one per (header, predecessor) edge ------------
    std::vector<analysis::NaturalLoop> loops =
        analysis::naturalLoops(ctx.cfgA);
    for (const analysis::NaturalLoop &loop : loops) {
        const std::string &header = ctx.cfgA.name(loop.header);
        for (size_t pred : ctx.cfgA.predecessors(loop.header)) {
            const std::string &pred_name = ctx.cfgA.name(pred);
            SyncPoint point;
            point.id = ctx.freshId();
            point.kind = SyncKind::BlockEntry;
            point.a = {fn.name, header, pred_name, ""};
            point.b = {mfn.name, ctx.mblockOf(header),
                       ctx.mblockOf(pred_name), ""};
            ctx.constrainLiveSets(
                point, ctx.edgeLiveA(pred_name, header),
                ctx.edgeLiveB(ctx.mblockOf(pred_name),
                              ctx.mblockOf(header)),
                {});
            ctx.result.points.points.push_back(std::move(point));
        }
    }

    // --- Call sites: before and after points --------------------------------
    for (const BasicBlock &block : fn.blocks) {
        for (size_t i = 0; i < block.insts.size(); ++i) {
            const Instruction &inst = block.insts[i];
            if (inst.op != Opcode::Call)
                continue;
            // Locate the corresponding machine call.
            const MBasicBlock *mblock = nullptr;
            size_t mindex = 0;
            for (const MBasicBlock &candidate : mfn.blocks) {
                for (size_t j = 0; j < candidate.insts.size(); ++j) {
                    if (candidate.insts[j].op == MOpcode::CALL &&
                        candidate.insts[j].callSiteId ==
                            inst.callSiteId) {
                        mblock = &candidate;
                        mindex = j;
                    }
                }
            }
            KEQ_ASSERT(mblock != nullptr,
                       "call site " + inst.callSiteId +
                           " missing from machine code");

            std::set<std::string> live_a = ctx.liveAfterA(block, i);
            std::set<std::string> live_b = ctx.liveAfterB(*mblock,
                                                          mindex);
            // The call result is re-established by the after-call
            // constraints; exclude it from the surviving-value sets.
            std::set<std::string> survivors_a = live_a;
            if (!inst.result.empty())
                survivors_a.erase(inst.result);
            std::set<std::string> survivors_b = live_b;
            survivors_b.erase("rax");

            SyncPoint before;
            before.id = ctx.freshId();
            before.kind = SyncKind::BeforeCall;
            before.a = {fn.name, block.name, "", inst.callSiteId};
            before.b = {mfn.name, mblock->name, "", inst.callSiteId};
            ctx.constrainLiveSets(before, survivors_a, survivors_b, {});
            ctx.result.points.points.push_back(std::move(before));

            SyncPoint after;
            after.id = ctx.freshId();
            after.kind = SyncKind::AfterCall;
            after.a = {fn.name, block.name, "", inst.callSiteId};
            after.b = {mfn.name, mblock->name, "", inst.callSiteId};
            std::set<std::string> covered_b;
            if (!inst.result.empty() && !inst.type->isVoid()) {
                unsigned width = machineWidth(inst.type);
                after.constraints.push_back(SyncConstraint::aEqB(
                    inst.result,
                    vx86::physRegSpelling("rax", width)));
                covered_b.insert("rax");
            }
            ctx.constrainLiveSets(after, survivors_a, survivors_b,
                                  covered_b);
            ctx.result.points.points.push_back(std::move(after));
        }
    }

    // --- Function exit (paper's p3) -------------------------------------------
    {
        SyncPoint point;
        point.id = ctx.freshId();
        point.kind = SyncKind::Exit;
        point.a = {fn.name, "", "", ""};
        point.b = {mfn.name, "", "", ""};
        if (!fn.returnType->isVoid()) {
            point.constraints.push_back(SyncConstraint::aEqB(
                sem::kReturnValueName, sem::kReturnValueName));
        }
        ctx.result.points.points.push_back(std::move(point));
    }

    return std::move(ctx.result);
}

} // namespace keq::vcgen
