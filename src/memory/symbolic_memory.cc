#include "src/memory/symbolic_memory.h"

namespace keq::mem {

AccessCheck
SymbolicMemory::checkAccess(smt::Term address, unsigned access_size) const
{
    smt::TermFactory &tf = factory_;

    // Fast path: constant address decides exactly.
    if (address.isBvConst()) {
        const MemoryObject *object =
            layout_.containing(address.bvValue().zext(), access_size);
        return {tf.boolConst(object != nullptr)};
    }

    // Symbolic address: in-bounds iff some object fully contains the
    // access. Encoded as base <= address && address <= base + size - n,
    // which is gap-free arithmetic because object sizes are >= n or the
    // disjunct is dropped.
    smt::Term in_bounds = tf.falseTerm();
    for (const MemoryObject &object : layout_.objects()) {
        if (object.size < access_size)
            continue;
        smt::Term base = tf.bvConst(64, object.base);
        smt::Term last =
            tf.bvConst(64, object.base + object.size - access_size);
        smt::Term inside =
            tf.mkAnd(tf.bvUle(base, address), tf.bvUle(address, last));
        in_bounds = tf.mkOr(in_bounds, inside);
    }
    return {in_bounds};
}

} // namespace keq::mem
