#ifndef KEQ_MEMORY_CONCRETE_MEMORY_H
#define KEQ_MEMORY_CONCRETE_MEMORY_H

/**
 * @file
 * Concrete byte memory for the reference interpreters.
 *
 * The concrete LLVM IR and Virtual x86 interpreters (used by the ISel
 * differential tests and the examples) execute against this store. It
 * enforces the same bounds discipline as the symbolic model, so a
 * miscompilation that reads out of bounds traps identically in both
 * worlds.
 */

#include <cstdint>
#include <unordered_map>

#include "src/memory/layout.h"
#include "src/support/apint.h"

namespace keq::mem {

/** Outcome of a concrete memory access. */
struct ConcreteAccess
{
    bool ok = false;
    support::ApInt value; ///< Loaded value (reads only).
};

/** A concrete, bounds-checked, byte-addressable memory. */
class ConcreteMemory
{
  public:
    explicit ConcreteMemory(const MemoryLayout &layout) : layout_(&layout)
    {}

    /**
     * Little-endian read of @p size bytes; `ok` is false when the access
     * is not fully contained in an allocation.
     */
    ConcreteAccess read(uint64_t address, unsigned size) const;

    /** Little-endian write; returns false on an out-of-bounds access. */
    bool write(uint64_t address, support::ApInt value);

    /** Raw byte access without bounds checks (test setup only). */
    void poke(uint64_t address, uint8_t byte) { bytes_[address] = byte; }
    uint8_t
    peek(uint64_t address) const
    {
        auto it = bytes_.find(address);
        return it == bytes_.end() ? 0 : it->second;
    }

    const MemoryLayout &layout() const { return *layout_; }

  private:
    const MemoryLayout *layout_;
    std::unordered_map<uint64_t, uint8_t> bytes_;
};

} // namespace keq::mem

#endif // KEQ_MEMORY_CONCRETE_MEMORY_H
