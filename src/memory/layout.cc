#include "src/memory/layout.h"

#include "src/support/diagnostics.h"

namespace keq::mem {

const MemoryObject &
MemoryLayout::addGlobal(const std::string &name, uint64_t size)
{
    KEQ_ASSERT(find(name) == nullptr, "duplicate global " + name);
    return place(name, size, globalCursor_);
}

const MemoryObject &
MemoryLayout::addStackSlot(const std::string &function,
                           const std::string &slot, uint64_t size)
{
    std::string name = function + "/" + slot;
    KEQ_ASSERT(find(name) == nullptr, "duplicate stack slot " + name);
    return place(std::move(name), size, stackCursor_);
}

const MemoryObject &
MemoryLayout::place(std::string name, uint64_t size, uint64_t &cursor)
{
    KEQ_ASSERT(size > 0, "zero-sized allocation " + name);
    MemoryObject object;
    object.name = std::move(name);
    object.base = cursor;
    object.size = size;
    // Advance past the object, a guard gap, and round up to 16 bytes.
    cursor += size + kGuardGap;
    cursor = (cursor + 15) & ~uint64_t{15};
    objects_.push_back(object);
    return objects_.back();
}

const MemoryObject *
MemoryLayout::find(const std::string &name) const
{
    for (const MemoryObject &object : objects_) {
        if (object.name == name)
            return &object;
    }
    return nullptr;
}

const MemoryObject *
MemoryLayout::containing(uint64_t address, uint64_t access_size) const
{
    for (const MemoryObject &object : objects_) {
        if (object.contains(address, access_size))
            return &object;
    }
    return nullptr;
}

} // namespace keq::mem
