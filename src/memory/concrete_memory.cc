#include "src/memory/concrete_memory.h"

namespace keq::mem {

ConcreteAccess
ConcreteMemory::read(uint64_t address, unsigned size) const
{
    if (layout_->containing(address, size) == nullptr)
        return {false, {}};
    uint64_t bits = 0;
    for (unsigned i = 0; i < size; ++i)
        bits |= static_cast<uint64_t>(peek(address + i)) << (8 * i);
    return {true, support::ApInt(8 * size, bits)};
}

bool
ConcreteMemory::write(uint64_t address, support::ApInt value)
{
    unsigned size = value.width() / 8;
    if (layout_->containing(address, size) == nullptr)
        return false;
    for (unsigned i = 0; i < size; ++i)
        bytes_[address + i] = value.byte(i);
    return true;
}

} // namespace keq::mem
