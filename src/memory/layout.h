#ifndef KEQ_MEMORY_LAYOUT_H
#define KEQ_MEMORY_LAYOUT_H

/**
 * @file
 * The common memory model's allocation layout (Section 4.4).
 *
 * Both the LLVM IR and Virtual x86 semantics share one flat, sequentially
 * consistent, byte-addressable address space. The layout records every
 * allocation (globals and per-function stack slots) at a deterministic
 * concrete base address; the *contents* stay symbolic (one term of the
 * memory array sort). Sharing the layout object between the two semantics
 * is what makes "the memories are equal" a single term equality — the
 * paper's common.k shortcut.
 *
 * Objects are separated by guard gaps so that any access that strays
 * outside an allocation lands on unmapped addresses and is flagged as an
 * out-of-bounds error state (Section 4.6).
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace keq::mem {

/** One allocation: a named, contiguous byte range. */
struct MemoryObject
{
    std::string name; ///< "@g" for globals, "fn/%p" for stack slots.
    uint64_t base = 0;
    uint64_t size = 0;

    bool
    contains(uint64_t address, uint64_t access_size) const
    {
        return address >= base && access_size <= size &&
               address - base <= size - access_size;
    }
};

/**
 * The allocation table shared by both languages.
 *
 * Globals are placed from kGlobalBase upward and stack slots from
 * kStackBase upward, each 16-byte aligned with a 16-byte guard gap.
 */
class MemoryLayout
{
  public:
    static constexpr uint64_t kGlobalBase = 0x0000000000100000ull;
    static constexpr uint64_t kStackBase = 0x00007fff00000000ull;
    static constexpr uint64_t kGuardGap = 16;

    /**
     * Registers a global object; name must be unique. The returned
     * reference (like addStackSlot's) is invalidated by the next
     * registration — copy it if it must outlive further adds.
     */
    const MemoryObject &addGlobal(const std::string &name, uint64_t size);

    /**
     * Registers a stack slot of @p function (an alloca / frame object).
     * The internal name is "function/slot".
     */
    const MemoryObject &addStackSlot(const std::string &function,
                                     const std::string &slot,
                                     uint64_t size);

    /** Looks up an object by its full name; null when absent. */
    const MemoryObject *find(const std::string &name) const;

    /**
     * Returns the object that fully contains [address, address+size), or
     * null when the access is (partially) out of bounds.
     */
    const MemoryObject *containing(uint64_t address,
                                   uint64_t access_size) const;

    const std::vector<MemoryObject> &objects() const { return objects_; }

  private:
    const MemoryObject &place(std::string name, uint64_t size,
                              uint64_t &cursor);

    std::vector<MemoryObject> objects_;
    uint64_t globalCursor_ = kGlobalBase;
    uint64_t stackCursor_ = kStackBase;
};

} // namespace keq::mem

#endif // KEQ_MEMORY_LAYOUT_H
