#ifndef KEQ_MEMORY_SYMBOLIC_MEMORY_H
#define KEQ_MEMORY_SYMBOLIC_MEMORY_H

/**
 * @file
 * Symbolic access helpers over the common memory model.
 *
 * A symbolic memory is just a term of the memory array sort; these helpers
 * add the undefined-behaviour dimension: every load/store is classified
 * against the allocation layout, producing the in-bounds condition the
 * semantics use to branch into out-of-bounds error states (Section 4.6).
 */

#include "src/memory/layout.h"
#include "src/smt/term_factory.h"

namespace keq::mem {

/**
 * Classification of a memory access against the layout.
 *
 * `inBounds` is a boolean term: true iff [address, address+size) falls
 * entirely inside some allocation. For the constant addresses that
 * dominate -O0 code it folds to a literal.
 */
struct AccessCheck
{
    smt::Term inBounds;

    bool definitelyInBounds() const { return inBounds.isTrue(); }
    bool definitelyOutOfBounds() const { return inBounds.isFalse(); }
};

/** Builds access-condition terms for one layout. */
class SymbolicMemory
{
  public:
    SymbolicMemory(smt::TermFactory &factory, const MemoryLayout &layout)
        : factory_(factory), layout_(layout)
    {}

    /**
     * Classifies an access of @p access_size bytes at @p address (a bv64
     * term).
     */
    AccessCheck checkAccess(smt::Term address, unsigned access_size) const;

    /** Little-endian read returning a bv(8*size) term. */
    smt::Term
    read(smt::Term memory, smt::Term address, unsigned size) const
    {
        return factory_.readBytes(memory, address, size);
    }

    /** Little-endian write returning the new memory term. */
    smt::Term
    write(smt::Term memory, smt::Term address, smt::Term value,
          unsigned size) const
    {
        return factory_.writeBytes(memory, address, value, size);
    }

    const MemoryLayout &layout() const { return layout_; }

  private:
    smt::TermFactory &factory_;
    const MemoryLayout &layout_;
};

} // namespace keq::mem

#endif // KEQ_MEMORY_SYMBOLIC_MEMORY_H
