#ifndef KEQ_SEM_SEMANTICS_H
#define KEQ_SEM_SEMANTICS_H

/**
 * @file
 * The language-semantics interface the checker is parameterized by.
 *
 * This plays the role of a K framework operational semantics definition in
 * the paper: given a symbolic configuration, produce its symbolic
 * successors. KEQ (src/keq) consumes two implementations of this interface
 * and nothing else about the languages, which is what makes it the first
 * language-parametric equivalence checker (paper Sections 1 and 3).
 */

#include <string>
#include <vector>

#include "src/sem/symbolic_state.h"
#include "src/smt/term_factory.h"

namespace keq::sem {

/**
 * Operational semantics of one language, specialized to one program
 * (module + function set), exposing symbolic small steps.
 *
 * Requirements on implementations:
 *  - Determinism up to path splitting: the successors of a state must have
 *    pairwise-disjoint path-condition increments whose disjunction is
 *    implied by the parent's path condition. The checker's positive-form
 *    SMT optimization (paper Section 3) relies on this.
 *  - Reading a register absent from the environment must havoc it (bind a
 *    fresh variable), so under-constrained seeds over-approximate; the
 *    checker stays sound (it may only fail more often).
 *  - Block boundaries: when control transfers to block B from block A, the
 *    successor state must have block = B, cameFrom = A, instIndex = 0, so
 *    the checker can detect cut points.
 */
class Semantics
{
  public:
    virtual ~Semantics() = default;

    /** Language name, e.g. "LLVM" or "Vx86" (used in reports). */
    virtual std::string name() const = 0;

    /**
     * Executes one small step from @p state, returning all successor
     * states. @p state must be Running. An empty result means the
     * semantics got stuck, which the checker reports as a validation
     * failure (never as success).
     */
    virtual std::vector<SymbolicState> step(const SymbolicState &state) = 0;

    /**
     * Builds a Running state positioned at @p seed with the given
     * environment, memory and path condition.
     */
    virtual SymbolicState makeState(const StateSeed &seed,
                                    std::map<std::string, smt::Term> env,
                                    smt::Term memory,
                                    smt::Term path_cond) = 0;

    /**
     * Returns the width in bits of the named register, used by the checker
     * to create fresh variables for sync-point seeding. Must work for any
     * register a sync point of this language may mention.
     */
    virtual unsigned registerWidth(const std::string &function,
                                   const std::string &reg) const = 0;

    /**
     * Binds register @p reg (as spelled in sync-point constraints) to
     * @p value in @p state. Implementations translate spellings to their
     * internal environment keys (e.g. "eax" is the low 32 bits of the
     * canonical "rax" slot).
     */
    virtual void bindRegister(SymbolicState &state,
                              const std::string &function,
                              const std::string &reg,
                              smt::Term value) = 0;

    /**
     * Reads register @p reg from @p state (havocs an unbound register,
     * recording the fresh binding in @p state). The reserved name
     * sem::kReturnValueName reads the Exited state's return value.
     */
    virtual smt::Term readRegister(SymbolicState &state,
                                   const std::string &function,
                                   const std::string &reg) = 0;

    /** The term factory shared by this semantics and the checker. */
    virtual smt::TermFactory &factory() = 0;
};

} // namespace keq::sem

#endif // KEQ_SEM_SEMANTICS_H
