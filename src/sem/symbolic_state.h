#ifndef KEQ_SEM_SYMBOLIC_STATE_H
#define KEQ_SEM_SYMBOLIC_STATE_H

/**
 * @file
 * Language-generic symbolic program states.
 *
 * The KEQ checker is parametric in the two language semantics (Section 3
 * of the paper); the only state representation it manipulates is this one.
 * A symbolic state is a program point plus a symbolic environment (name ->
 * term), a symbolic memory (one term of the common memory sort), and a
 * path condition. Language-specific registers (LLVM virtual registers, x86
 * virtual/physical registers, eflags bits) all live in the environment
 * under their textual names, so sync-point constraints can refer to them
 * uniformly.
 */

#include <map>
#include <string>
#include <vector>

#include "src/smt/term.h"

namespace keq::sem {

/** Execution status of a symbolic state. */
enum class Status : uint8_t {
    Running,  ///< At a program point inside the function.
    Exited,   ///< Function returned; `result` holds the return value.
    AtCall,   ///< Stopped at a call site boundary (Section 4.5).
    Error,    ///< Undefined behaviour reached (Section 4.6).
};

const char *statusName(Status status);

/** Kinds of undefined-behaviour error states our semantics produce. */
enum class ErrorKind : uint8_t {
    None,
    OutOfBounds,    ///< Memory access outside any allocation.
    DivByZero,      ///< Integer division by zero.
    SignedOverflow, ///< nsw/nuw arithmetic overflow (LLVM only).
    Unreachable,    ///< Executed an `unreachable` terminator.
};

const char *errorKindName(ErrorKind kind);

/**
 * A symbolic state of one program.
 *
 * Value-semantic and cheap to copy (terms are shared pointers into the
 * factory). Symbolic execution produces successor states functionally.
 */
struct SymbolicState
{
    Status status = Status::Running;

    // --- Location (meaningful while Running) -----------------------------
    std::string function;
    std::string block;    ///< Block currently being executed.
    std::string cameFrom; ///< Predecessor block; empty at function entry.
    size_t instIndex = 0; ///< Next instruction to execute within `block`.

    /** True exactly when the state sits at the entry of `block`. */
    bool
    atBlockEntry() const
    {
        return status == Status::Running && instIndex == 0;
    }

    // --- Symbolic content -------------------------------------------------
    /** Register / local variable valuation. */
    std::map<std::string, smt::Term> env;
    /** The whole memory as one term of the common memory sort. */
    smt::Term memory;
    /** Path condition accumulated since the seeding sync point. */
    smt::Term pathCond;

    // --- Exit payload -----------------------------------------------------
    /** Return value term (null for void returns); valid when Exited. */
    smt::Term result;

    // --- Error payload ------------------------------------------------------
    ErrorKind errorKind = ErrorKind::None;

    // --- Call-boundary payload ---------------------------------------------
    /** Callee symbol name; valid when AtCall. */
    std::string callee;
    /** Argument value terms at the call; valid when AtCall. */
    std::vector<smt::Term> callArgs;
    /**
     * Stable identifier of the call site within the function (used to pair
     * before/after-call sync points across the two programs).
     */
    std::string callSiteId;

    /** Human-readable one-line rendering for logs and counterexamples. */
    std::string describe() const;
};

/**
 * Where to position a freshly seeded state (the symbolic "p_i" of the
 * paper's Section 3 example). Produced by the checker from a sync point.
 */
struct StateSeed
{
    std::string function;
    std::string block;
    std::string cameFrom;
    /**
     * When nonempty, position the state immediately *after* the call site
     * with this id instead of at the block entry (post-call sync points).
     */
    std::string afterCallSiteId;
};

} // namespace keq::sem

#endif // KEQ_SEM_SYMBOLIC_STATE_H
