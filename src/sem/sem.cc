#include <sstream>

#include "src/sem/symbolic_state.h"
#include "src/sem/sync_point.h"

namespace keq::sem {

const char *
statusName(Status status)
{
    switch (status) {
      case Status::Running: return "running";
      case Status::Exited: return "exited";
      case Status::AtCall: return "at-call";
      case Status::Error: return "error";
    }
    return "?";
}

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::None: return "none";
      case ErrorKind::OutOfBounds: return "out-of-bounds";
      case ErrorKind::DivByZero: return "div-by-zero";
      case ErrorKind::SignedOverflow: return "signed-overflow";
      case ErrorKind::Unreachable: return "unreachable";
    }
    return "?";
}

const char *
syncKindName(SyncKind kind)
{
    switch (kind) {
      case SyncKind::Entry: return "entry";
      case SyncKind::Exit: return "exit";
      case SyncKind::BlockEntry: return "block";
      case SyncKind::BeforeCall: return "before-call";
      case SyncKind::AfterCall: return "after-call";
    }
    return "?";
}

std::string
SymbolicState::describe() const
{
    std::ostringstream os;
    os << statusName(status);
    switch (status) {
      case Status::Running:
        os << " @" << function << "/" << block << "#" << instIndex;
        if (!cameFrom.empty())
            os << " (from " << cameFrom << ")";
        break;
      case Status::Exited:
        os << " @" << function;
        if (result)
            os << " ret=" << result.toString();
        break;
      case Status::AtCall:
        os << " @" << function << " call " << callee << " [site "
           << callSiteId << "]";
        break;
      case Status::Error:
        os << " @" << function << "/" << block << " ("
           << errorKindName(errorKind) << ")";
        break;
    }
    return os.str();
}

std::string
SyncConstraint::toString() const
{
    switch (kind) {
      case Kind::AEqB:
        return regA + " = " + regB;
      case Kind::AEqConst:
        return regA + " = " + value.toString();
      case Kind::BEqConst:
        return value.toString() + " = " + regB;
    }
    return "?";
}

size_t
SyncPointSet::specTextSize() const
{
    return render().size();
}

std::string
SyncPointSet::render() const
{
    std::ostringstream os;
    os << "Sync Point | Kind | Loc A (prev) | Loc B (prev) | Constraints\n";
    for (const SyncPoint &point : points) {
        os << point.id << " | " << syncKindName(point.kind) << " | ";
        os << point.a.block;
        if (!point.a.cameFrom.empty())
            os << " (" << point.a.cameFrom << ")";
        if (!point.a.callSiteId.empty())
            os << " [" << point.a.callSiteId << "]";
        os << " | " << point.b.block;
        if (!point.b.cameFrom.empty())
            os << " (" << point.b.cameFrom << ")";
        if (!point.b.callSiteId.empty())
            os << " [" << point.b.callSiteId << "]";
        os << " | ";
        for (size_t i = 0; i < point.constraints.size(); ++i) {
            if (i > 0)
                os << ", ";
            os << point.constraints[i].toString();
        }
        os << "\n";
    }
    return os.str();
}

} // namespace keq::sem
