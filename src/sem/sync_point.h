#ifndef KEQ_SEM_SYNC_POINT_H
#define KEQ_SEM_SYNC_POINT_H

/**
 * @file
 * Synchronization points: the verification condition format (Section 4.5).
 *
 * A sync point is a pair of symbolic program locations plus equality
 * constraints over registers of the two programs — exactly the rows of the
 * paper's Figure 3. A SyncPointSet is the full VC a generator hands to the
 * checker; the checker proves the set is a cut-bisimulation.
 *
 * Side "A" is the input program (e.g. LLVM IR), side "B" the output
 * program (e.g. Virtual x86); the format itself is language-agnostic.
 */

#include <string>
#include <vector>

#include "src/support/apint.h"

namespace keq::sem {

/** Reserved register name that resolves to a state's return value. */
inline const std::string kReturnValueName = "$ret";

/** Role of a sync point in the cut (Section 4.5's five categories). */
enum class SyncKind : uint8_t {
    Entry,      ///< Function entry (paper's p0).
    Exit,       ///< Function exit; matches Exited states (paper's p3).
    BlockEntry, ///< Loop-entry / block head (paper's p1, p2).
    BeforeCall, ///< Exiting-like point just before a call site.
    AfterCall,  ///< Entry-like point just after a call site.
};

const char *syncKindName(SyncKind kind);

/** One side's location of a sync point. */
struct SyncLoc
{
    std::string function;
    std::string block;      ///< Empty for Exit points.
    std::string cameFrom;   ///< Empty = unqualified by predecessor.
    std::string callSiteId; ///< For Before/AfterCall points.
};

/** An equality constraint between the two sides' registers or a literal. */
struct SyncConstraint
{
    enum class Kind : uint8_t {
        AEqB,     ///< regA (side A) equals regB (side B).
        AEqConst, ///< regA equals `value`.
        BEqConst, ///< regB equals `value`.
    };

    Kind kind;
    std::string regA;
    std::string regB;
    support::ApInt value;

    static SyncConstraint
    aEqB(std::string reg_a, std::string reg_b)
    {
        return {Kind::AEqB, std::move(reg_a), std::move(reg_b), {}};
    }

    static SyncConstraint
    aEqConst(std::string reg_a, support::ApInt value)
    {
        return {Kind::AEqConst, std::move(reg_a), {}, value};
    }

    static SyncConstraint
    bEqConst(std::string reg_b, support::ApInt value)
    {
        return {Kind::BEqConst, {}, std::move(reg_b), value};
    }

    std::string toString() const;
};

/**
 * One synchronization point (one row of Figure 3).
 *
 * Whole-memory equality between the two sides is implicit at every point
 * (Section 4.5, "Memory state"), supplied by the acceptability module.
 */
struct SyncPoint
{
    std::string id; ///< e.g. "p0", "loop.for.cond.from.entry".
    SyncKind kind = SyncKind::BlockEntry;
    SyncLoc a;
    SyncLoc b;
    std::vector<SyncConstraint> constraints;

    /** True for kinds the checker seeds and executes from (non-sinks). */
    bool
    isSource() const
    {
        return kind == SyncKind::Entry || kind == SyncKind::BlockEntry ||
               kind == SyncKind::AfterCall;
    }
};

/** The full verification condition for one function pair. */
struct SyncPointSet
{
    std::vector<SyncPoint> points;

    /**
     * Size (in characters) of the textual spec, the metric our evaluation
     * uses to emulate the K-parser memory blow-up (paper Section 5.1,
     * "Out of memory").
     */
    size_t specTextSize() const;

    /** Figure 3-style table rendering. */
    std::string render() const;
};

} // namespace keq::sem

#endif // KEQ_SEM_SYNC_POINT_H
