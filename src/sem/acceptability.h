#ifndef KEQ_SEM_ACCEPTABILITY_H
#define KEQ_SEM_ACCEPTABILITY_H

/**
 * @file
 * The acceptability (compatibility) relation of Definition 7.8.
 *
 * This is the analogue of the paper's `common.k` module: it fixes what it
 * means for states of the two languages to be "the same" beyond the
 * per-point equality constraints — in our system, whole-memory equality
 * (both semantics share the common memory model of Section 4.4) plus the
 * undefined-behaviour matching policy of Section 4.6.
 */

#include "src/sem/symbolic_state.h"

namespace keq::sem {

/** Which side of the pair a state belongs to. */
enum class Side : uint8_t { A, B };

/**
 * Policy interface for matching error states across the two programs.
 *
 * The default (IselAcceptability) implements Section 4.6: side-A (input
 * language) error states are related to *any* side-B state, so the checker
 * automatically degrades to refinement in the presence of input UB; side-B
 * error states are related only to corresponding side-A error states.
 */
class Acceptability
{
  public:
    virtual ~Acceptability() = default;

    /**
     * May an Error state on side A (kind @p a_kind) be matched against an
     * arbitrary (non-error) side-B state?
     */
    virtual bool errorAcceptsAnyOutput(ErrorKind a_kind) const = 0;

    /** Are an A-side error and a B-side error mutually related? */
    virtual bool errorsRelated(ErrorKind a_kind, ErrorKind b_kind) const = 0;

    /**
     * Whether whole-memory equality is required at related points. Always
     * true for the common-memory-model instantiation; exposed so toy
     * language pairs without memory can opt out.
     */
    virtual bool requiresMemoryEquality() const { return true; }
};

/** Section 4.6 policy for the LLVM-to-Virtual-x86 instantiation. */
class IselAcceptability : public Acceptability
{
  public:
    bool
    errorAcceptsAnyOutput(ErrorKind a_kind) const override
    {
        // Any LLVM undefined behaviour licenses arbitrary output
        // behaviour; the verdict is then refinement, not equivalence.
        return a_kind != ErrorKind::None;
    }

    bool
    errorsRelated(ErrorKind a_kind, ErrorKind b_kind) const override
    {
        if (a_kind == b_kind)
            return true;
        // The x86 divide-error exception covers both LLVM division UB
        // kinds (division by zero and INT_MIN / -1 overflow).
        if (b_kind == ErrorKind::DivByZero &&
            (a_kind == ErrorKind::DivByZero ||
             a_kind == ErrorKind::SignedOverflow)) {
            return true;
        }
        return false;
    }
};

} // namespace keq::sem

#endif // KEQ_SEM_ACCEPTABILITY_H
