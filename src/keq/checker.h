#ifndef KEQ_KEQ_CHECKER_H
#define KEQ_KEQ_CHECKER_H

/**
 * @file
 * KEQ: the language-parametric symbolic equivalence checker (Section 3).
 *
 * The checker is the symbolic variant of Algorithm 1. It is parameterized
 * by two sem::Semantics implementations, an acceptability relation, and a
 * solver — it contains no knowledge of any particular language. For each
 * *source* synchronization point it:
 *
 *   1. seeds a pair of symbolic states related by the point's equality
 *      constraints (shared fresh variables; one shared memory variable);
 *   2. symbolically executes both sides to their cut-successors
 *      (function next_i of Algorithm 1, driven by the semantics' step);
 *   3. checks every feasible successor pair for inclusion in some
 *      synchronization point (line 9's symbolic set inclusion), using
 *      Z3-backed implication checks with the positive-form path-condition
 *      optimization for deterministic semantics (Section 3, "Optimizing
 *      SMT Queries").
 *
 * Undefined-behaviour error states are matched through the acceptability
 * relation (Section 4.6); when input-side UB licenses arbitrary output
 * behaviour the verdict degrades from Equivalent to Refines.
 *
 * Resource budgets reproduce the paper's evaluation failure categories:
 * exceeding the wall-clock budget yields a Timeout verdict and exceeding
 * the term-node budget (the analogue of the K parser/VC memory blow-up)
 * yields an OutOfMemory verdict.
 */

#include <cstdint>
#include <string>

#include "src/sem/acceptability.h"
#include "src/sem/semantics.h"
#include "src/sem/sync_point.h"
#include "src/smt/solver.h"
#include "src/support/cancellation.h"
#include "src/support/failure.h"

namespace keq::checker {

/** Checker configuration. */
struct CheckerConfig
{
    /** Record a proof log (one entry per discharged obligation). */
    bool collectProof = false;
    /** Check cut-simulation (refinement) only, not bisimulation. */
    bool refinementOnly = false;
    /** Use the positive-form disjunction for path-condition queries. */
    bool positiveFormOpt = true;
    /**
     * Batched incremental discharge: ship each obligation's hypothesis
     * as separate leading assertions instead of one collapsed
     * conjunction, so consecutive obligations of a sync point share an
     * identical prefix that an incremental backend keeps asserted in a
     * warm scope (only the negated conclusion is push/popped).
     * Verdict-neutral; CheckStats::solverStats.batchedQueries counts
     * the obligations discharged this way.
     */
    bool batchDischarge = false;
    /** Per-Z3-query timeout (ms); 0 = none. */
    unsigned solverTimeoutMs = 30000;
    /** Whole-run wall budget (seconds); 0 = unlimited. */
    double wallBudgetSeconds = 0.0;
    /** Term-node budget (memory proxy); 0 = unlimited. */
    size_t maxTermNodes = 0;
    /** Per-segment symbolic step budget (guards missing loop cuts). */
    size_t maxStepsPerSegment = 20000;
    /**
     * Cooperative cancellation (SIGINT, campaign shutdown): polled at
     * every budget check; a cancelled run ends with a Timeout verdict
     * classified FailureKind::Cancelled.
     */
    support::CancellationToken cancel;
};

/** Verdict categories (Figure 6's rows plus success flavours). */
enum class VerdictKind : uint8_t {
    Equivalent,   ///< Cut-bisimulation proven.
    Refines,      ///< Only cut-simulation proven (UB or refinement mode).
    NotValidated, ///< A proof obligation failed.
    Timeout,      ///< Wall budget exhausted (paper: "timeout").
    OutOfMemory,  ///< Node budget exhausted (paper: "out of memory").
};

const char *verdictKindName(VerdictKind kind);

/** Execution statistics of one check. */
struct CheckStats
{
    uint64_t pointsChecked = 0;
    uint64_t symbolicSteps = 0;
    uint64_t pairsExamined = 0;
    uint64_t solverQueries = 0;
    double solverSeconds = 0.0;
    double totalSeconds = 0.0;
    /**
     * Per-stage solver counters attributed to this check (the delta of
     * the solver's stats across the run). All optimization-stack fields
     * are zero when the plain Z3 backend is used directly.
     */
    smt::SolverStats solverStats;
};

/**
 * One discharged proof obligation: which pair of cut-successors was
 * placed inside which synchronization point, and how the implication was
 * discharged. The full log is the checkable certificate that the sync
 * point set is a cut-bisimulation (Theorem 8.1's premises, spelled out).
 */
struct ProofStep
{
    /** How an obligation was discharged. */
    enum class Method : uint8_t {
        Folded,        ///< Constant folding decided it (no solver).
        Solver,        ///< Z3 proved the implication.
        Acceptability, ///< Error-state pair related by the policy.
        Vacuous,       ///< Jointly unreachable pair.
    };

    std::string sourcePoint; ///< Sync point the segment started from.
    std::string targetPoint; ///< Point the pair was placed in ("" = n/a).
    std::string stateA;      ///< describe() of the A-side successor.
    std::string stateB;
    Method method = Method::Folded;
    /** The implication discharged, as "<hypothesis> ==> <conclusion>". */
    std::string obligation;
};

const char *proofMethodName(ProofStep::Method method);

/** Outcome of a validation run. */
struct Verdict
{
    VerdictKind kind = VerdictKind::NotValidated;
    /**
     * Structured failure classification. None for definite verdicts
     * (Equivalent/Refines/NotValidated); for Timeout/OutOfMemory it
     * says *why* the run could not decide — solver deadline, memory
     * budget, honest solver incompleteness, an absorbed solver crash,
     * or cooperative cancellation — replacing string matching on
     * `reason`.
     */
    FailureKind failure = FailureKind::None;
    std::string reason;
    /** True when input-side UB forced refinement-style matching. */
    bool usedRefinementFallback = false;
    CheckStats stats;
    /** Proof log; populated when CheckerConfig::collectProof is set. */
    std::vector<ProofStep> proof;

    /** Human-readable rendering of the proof log. */
    std::string renderProof() const;

    bool
    validated() const
    {
        return kind == VerdictKind::Equivalent ||
               kind == VerdictKind::Refines;
    }
};

/** The language-parametric equivalence checker. */
class Checker
{
  public:
    /**
     * @param sem_a Input-language semantics (side A).
     * @param sem_b Output-language semantics (side B). Must share sem_a's
     *              term factory.
     * @param acceptability State-compatibility policy (common.k analogue).
     * @param solver Satisfiability oracle over the shared factory.
     */
    Checker(sem::Semantics &sem_a, sem::Semantics &sem_b,
            const sem::Acceptability &acceptability, smt::Solver &solver,
            CheckerConfig config = {});

    /**
     * Validates one function pair against the given synchronization
     * points (the full symbolic Algorithm 1 main loop).
     */
    Verdict check(const std::string &function_a,
                  const std::string &function_b,
                  const sem::SyncPointSet &points);

  private:
    struct Impl;

    sem::Semantics &semA_;
    sem::Semantics &semB_;
    const sem::Acceptability &acceptability_;
    smt::Solver &solver_;
    CheckerConfig config_;
};

} // namespace keq::checker

#endif // KEQ_KEQ_CHECKER_H
