#include "src/keq/checker.h"

#include <algorithm>
#include <optional>
#include <set>

#include "src/support/diagnostics.h"
#include "src/support/stopwatch.h"

namespace keq::checker {

using sem::ErrorKind;
using sem::Status;
using sem::SymbolicState;
using sem::SyncConstraint;
using sem::SyncKind;
using sem::SyncPoint;
using sem::SyncPointSet;
using smt::SatResult;
using smt::Term;

const char *
verdictKindName(VerdictKind kind)
{
    switch (kind) {
      case VerdictKind::Equivalent: return "equivalent";
      case VerdictKind::Refines: return "refines";
      case VerdictKind::NotValidated: return "not-validated";
      case VerdictKind::Timeout: return "timeout";
      case VerdictKind::OutOfMemory: return "out-of-memory";
    }
    return "?";
}

const char *
proofMethodName(ProofStep::Method method)
{
    switch (method) {
      case ProofStep::Method::Folded: return "folded";
      case ProofStep::Method::Solver: return "solver";
      case ProofStep::Method::Acceptability: return "acceptability";
      case ProofStep::Method::Vacuous: return "vacuous";
    }
    return "?";
}

std::string
Verdict::renderProof() const
{
    std::string out;
    for (const ProofStep &step : proof) {
        out += "[" + step.sourcePoint + " -> " +
               (step.targetPoint.empty() ? "-" : step.targetPoint) +
               "] (" + proofMethodName(step.method) + ") " +
               step.stateA + "  ~  " + step.stateB;
        if (!step.obligation.empty())
            out += "\n    " + step.obligation;
        out += "\n";
    }
    return out;
}

namespace {

/** Thrown when a resource budget is exhausted mid-run. */
struct BudgetExceeded
{
    VerdictKind kind;
    FailureKind failure;
    std::string what;
};

/** Verdict category a failure classification degrades the run to. */
VerdictKind
verdictKindFor(FailureKind failure)
{
    // A worker that died breaching its hard memory cap is the same
    // Figure 6 category as an in-process budget exhaustion.
    return failure == FailureKind::MemoryBudget ||
                   failure == FailureKind::WorkerOom
               ? VerdictKind::OutOfMemory
               : VerdictKind::Timeout;
}

enum class Side : uint8_t { A, B };

/** One full validation run (per function pair). */
class Run
{
  public:
    Run(sem::Semantics &sem_a, sem::Semantics &sem_b,
        const sem::Acceptability &acceptability, smt::Solver &solver,
        const CheckerConfig &config, const std::string &fn_a,
        const std::string &fn_b, const SyncPointSet &points)
        : semA_(sem_a), semB_(sem_b), acceptability_(acceptability),
          solver_(solver), config_(config), fnA_(fn_a), fnB_(fn_b),
          points_(points), tf_(sem_a.factory())
    {}

    Verdict
    run()
    {
        solver_.setTimeoutMs(config_.solverTimeoutMs);
        smt::SolverStats before = solver_.stats();
        Verdict verdict;
        try {
            std::optional<std::string> failure;
            // Algorithm 1, main: check every (source) point of P.
            for (const SyncPoint &point : points_.points) {
                if (!point.isSource())
                    continue;
                ++stats_.pointsChecked;
                failure = checkPoint(point);
                if (failure)
                    break;
            }
            if (failure) {
                verdict.kind = VerdictKind::NotValidated;
                verdict.reason = *failure;
            } else if (refinementFallback_ || config_.refinementOnly) {
                verdict.kind = VerdictKind::Refines;
                verdict.reason =
                    config_.refinementOnly
                        ? "refinement mode requested"
                        : "input-side undefined behaviour reachable; "
                          "refinement proven";
            } else {
                verdict.kind = VerdictKind::Equivalent;
            }
        } catch (const BudgetExceeded &limit) {
            verdict.kind = limit.kind;
            verdict.failure = limit.failure;
            verdict.reason = limit.what;
        } catch (const smt::SolverCrashError &crash) {
            // Only an unguarded backend can throw this (a GuardedSolver
            // absorbs crashes into classified Unknowns); one crashed
            // query costs this verdict, never the worker.
            verdict.kind = VerdictKind::Timeout;
            verdict.failure = FailureKind::SolverCrash;
            verdict.reason = std::string("solver crashed: ") +
                             crash.what();
        }
        verdict.usedRefinementFallback = refinementFallback_;
        verdict.proof = std::move(proof_);
        smt::SolverStats after = solver_.stats();
        stats_.solverQueries = after.queries - before.queries;
        stats_.solverSeconds = after.totalSeconds - before.totalSeconds;
        stats_.solverStats = after - before;
        // Batching is a checker-level decision; no solver layer can see
        // which queries were batched, so the counter is attributed here.
        stats_.solverStats.batchedQueries += batchedDischarges_;
        stats_.totalSeconds = watch_.seconds();
        verdict.stats = stats_;
        return verdict;
    }

  private:
    // --- budgets -----------------------------------------------------------

    void
    checkBudgets()
    {
        if (config_.cancel.cancelled()) {
            throw BudgetExceeded{VerdictKind::Timeout,
                                 FailureKind::Cancelled, "cancelled"};
        }
        if (config_.wallBudgetSeconds > 0.0 &&
            watch_.seconds() > config_.wallBudgetSeconds) {
            throw BudgetExceeded{VerdictKind::Timeout,
                                 FailureKind::Timeout,
                                 "wall-clock budget exhausted"};
        }
        if (config_.maxTermNodes > 0 &&
            tf_.nodeCount() > config_.maxTermNodes) {
            throw BudgetExceeded{VerdictKind::OutOfMemory,
                                 FailureKind::MemoryBudget,
                                 "term-node budget exhausted"};
        }
    }

    /**
     * Classification of the solver's most recent Unknown: trust the
     * solver's own taxonomy when it has one (GuardedSolver always
     * does), otherwise call honest incompleteness SolverUnknown.
     */
    FailureKind
    unknownFailure() const
    {
        FailureKind kind = solver_.lastFailureKind();
        return kind == FailureKind::None ? FailureKind::SolverUnknown
                                         : kind;
    }

    // --- solver helpers ------------------------------------------------------

    /**
     * Feasibility check used to *excuse* an unmatched pair: false means
     * "provably unreachable together". An Unknown result (solver
     * timeout) must never excuse anything — we abort with a Timeout
     * verdict instead of silently passing, keeping the checker
     * fail-closed.
     */
    bool
    isSat(Term condition)
    {
        checkBudgets();
        if (condition.isTrue())
            return true;
        if (condition.isFalse())
            return false;
        switch (solver_.checkSat({condition})) {
          case SatResult::Sat:
            return true;
          case SatResult::Unsat:
            return false;
          case SatResult::Unknown: {
            FailureKind failure = unknownFailure();
            throw BudgetExceeded{
                verdictKindFor(failure), failure,
                "solver returned unknown on a feasibility check (" +
                    std::string(failureKindName(failure)) + ")"};
          }
        }
        return true;
    }

    /** Conservative satisfiability: Unknown counts as "possibly sat". */
    bool
    possiblySat(Term condition)
    {
        checkBudgets();
        if (condition.isTrue())
            return true;
        if (condition.isFalse())
            return false;
        return solver_.checkSat({condition}) != SatResult::Unsat;
    }

    bool
    proveImplication(Term hypothesis, Term conclusion)
    {
        checkBudgets();
        return solver_.proveImplication(hypothesis, conclusion);
    }

    /**
     * Discharges one obligation, batched when configured: the
     * hypothesis travels as separate assertions (@p parts) so that the
     * next obligation of this pair — same parts, different conclusion —
     * reuses the backend's warm prefix instead of re-asserting the
     * path conditions from scratch.
     */
    bool
    dischargeObligation(Term hypothesis,
                        const std::vector<Term> &parts, Term conclusion)
    {
        checkBudgets();
        if (!config_.batchDischarge)
            return solver_.proveImplication(hypothesis, conclusion);
        uint64_t before = solver_.stats().queries;
        bool proven = solver_.proveImplication(parts, conclusion);
        if (solver_.stats().queries != before)
            ++batchedDischarges_;
        return proven;
    }

    /**
     * Proves `cond => target` where `target` is one of the disjoint,
     * total path conditions `siblings ∪ {target}` of a deterministic
     * semantics. With the Section 3 optimization the negation of `target`
     * is replaced by the positive disjunction of its siblings.
     */
    bool
    provePathImplication(Term cond, Term target,
                         const std::vector<SymbolicState> &family,
                         const SymbolicState &target_state)
    {
        checkBudgets();
        if (!config_.positiveFormOpt)
            return proveImplication(cond, target);
        Term siblings = tf_.falseTerm();
        for (const SymbolicState &state : family) {
            if (&state == &target_state)
                continue;
            siblings = tf_.mkOr(siblings, state.pathCond);
        }
        Term query = tf_.mkAnd(cond, siblings);
        if (query.isFalse())
            return true;
        return solver_.checkSat({query}) == SatResult::Unsat;
    }

    // --- seeding ---------------------------------------------------------------

    /** Equality of two bitvector terms after widening the narrower. */
    Term
    eqWiden(Term a, Term b)
    {
        unsigned wa = a.sort().width();
        unsigned wb = b.sort().width();
        unsigned w = std::max(wa, wb);
        Term wide_a = wa == w ? a : tf_.zext(a, w);
        Term wide_b = wb == w ? b : tf_.zext(b, w);
        return tf_.mkEq(wide_a, wide_b);
    }

    struct Seeded
    {
        SymbolicState a;
        SymbolicState b;
    };

    Seeded
    seedPoint(const SyncPoint &point)
    {
        sem::StateSeed seed_a{point.a.function, point.a.block,
                              point.a.cameFrom,
                              point.kind == SyncKind::AfterCall
                                  ? point.a.callSiteId
                                  : ""};
        sem::StateSeed seed_b{point.b.function, point.b.block,
                              point.b.cameFrom,
                              point.kind == SyncKind::AfterCall
                                  ? point.b.callSiteId
                                  : ""};
        Term memory =
            tf_.var("mem." + point.id, smt::Sort::memArray());
        Term seed_cond = tf_.trueTerm();
        SymbolicState a = semA_.makeState(seed_a, {}, memory,
                                          tf_.trueTerm());
        SymbolicState b = semB_.makeState(seed_b, {}, memory,
                                          tf_.trueTerm());

        std::set<std::string> bound_a, bound_b;
        unsigned var_index = 0;
        for (const SyncConstraint &constraint : point.constraints) {
            std::string base = "sync." + point.id + ".v" +
                               std::to_string(var_index++);
            switch (constraint.kind) {
              case SyncConstraint::Kind::AEqB: {
                unsigned wa =
                    semA_.registerWidth(fnA_, constraint.regA);
                unsigned wb =
                    semB_.registerWidth(fnB_, constraint.regB);
                unsigned narrow = std::min(wa, wb);
                bool have_a = bound_a.count(constraint.regA) != 0;
                bool have_b = bound_b.count(constraint.regB) != 0;
                if (have_a && have_b) {
                    seed_cond = tf_.mkAnd(
                        seed_cond,
                        eqWiden(
                            semA_.readRegister(a, fnA_, constraint.regA),
                            semB_.readRegister(b, fnB_,
                                               constraint.regB)));
                    break;
                }
                Term v;
                if (have_a) {
                    Term ta =
                        semA_.readRegister(a, fnA_, constraint.regA);
                    v = tf_.trunc(ta, narrow);
                    // The wide pre-bound side must itself be the zext of
                    // its low bits for the relation to be exact; conjoin.
                    if (wa != narrow) {
                        seed_cond = tf_.mkAnd(
                            seed_cond, tf_.mkEq(ta, tf_.zext(v, wa)));
                    }
                } else if (have_b) {
                    Term tb =
                        semB_.readRegister(b, fnB_, constraint.regB);
                    v = tf_.trunc(tb, narrow);
                    if (wb != narrow) {
                        seed_cond = tf_.mkAnd(
                            seed_cond, tf_.mkEq(tb, tf_.zext(v, wb)));
                    }
                } else {
                    v = tf_.var(base, smt::Sort::bitVec(narrow));
                }
                if (!have_a) {
                    semA_.bindRegister(a, fnA_, constraint.regA,
                                       narrow == wa ? v
                                                    : tf_.zext(v, wa));
                    bound_a.insert(constraint.regA);
                }
                if (!have_b) {
                    semB_.bindRegister(b, fnB_, constraint.regB,
                                       narrow == wb ? v
                                                    : tf_.zext(v, wb));
                    bound_b.insert(constraint.regB);
                }
                break;
              }
              case SyncConstraint::Kind::AEqConst: {
                unsigned wa =
                    semA_.registerWidth(fnA_, constraint.regA);
                Term value = tf_.bvConst(
                    constraint.value.zextTo(64).truncTo(wa));
                if (bound_a.count(constraint.regA)) {
                    seed_cond = tf_.mkAnd(
                        seed_cond,
                        tf_.mkEq(semA_.readRegister(a, fnA_,
                                                    constraint.regA),
                                 value));
                } else {
                    semA_.bindRegister(a, fnA_, constraint.regA, value);
                    bound_a.insert(constraint.regA);
                }
                break;
              }
              case SyncConstraint::Kind::BEqConst: {
                unsigned wb =
                    semB_.registerWidth(fnB_, constraint.regB);
                Term value = tf_.bvConst(
                    constraint.value.zextTo(64).truncTo(wb));
                if (bound_b.count(constraint.regB)) {
                    seed_cond = tf_.mkAnd(
                        seed_cond,
                        tf_.mkEq(semB_.readRegister(b, fnB_,
                                                    constraint.regB),
                                 value));
                } else {
                    semB_.bindRegister(b, fnB_, constraint.regB, value);
                    bound_b.insert(constraint.regB);
                }
                break;
              }
            }
        }
        a.pathCond = seed_cond;
        b.pathCond = seed_cond;
        return {std::move(a), std::move(b)};
    }

    // --- cut membership and segments (function next_i) -------------------------

    bool
    isCutLocation(Side side, const SymbolicState &state) const
    {
        for (const SyncPoint &point : points_.points) {
            if (point.kind != SyncKind::BlockEntry)
                continue;
            const sem::SyncLoc &loc =
                side == Side::A ? point.a : point.b;
            if (loc.block == state.block &&
                (loc.cameFrom.empty() ||
                 loc.cameFrom == state.cameFrom)) {
                return true;
            }
        }
        return false;
    }

    std::vector<SymbolicState>
    segment(sem::Semantics &semantics, Side side,
            const SymbolicState &seed)
    {
        std::vector<SymbolicState> results;
        size_t steps = 0;
        // Take at least one step before testing cut membership
        // (Definition 7.3 requires a strictly positive path length).
        std::vector<SymbolicState> work = semantics.step(seed);
        while (!work.empty()) {
            if (++steps > config_.maxStepsPerSegment) {
                throw BudgetExceeded{
                    VerdictKind::Timeout, FailureKind::Timeout,
                    "symbolic step budget exhausted (missing loop "
                    "synchronization point?)"};
            }
            ++stats_.symbolicSteps;
            checkBudgets();
            SymbolicState state = std::move(work.back());
            work.pop_back();
            if (state.pathCond.isFalse())
                continue; // statically infeasible branch
            if (state.status != Status::Running ||
                (state.atBlockEntry() && isCutLocation(side, state))) {
                results.push_back(std::move(state));
                continue;
            }
            std::vector<SymbolicState> successors =
                semantics.step(state);
            for (SymbolicState &successor : successors)
                work.push_back(std::move(successor));
        }
        return results;
    }

    // --- pair matching (Algorithm 1 lines 8-12, symbolic) ------------------------

    /**
     * Builds the obligation conjunction placing pair (a, b) inside sync
     * point @p q. Reads may havoc registers, so takes copies.
     */
    Term
    obligations(const SyncPoint &q, SymbolicState a, SymbolicState b)
    {
        Term all = tf_.trueTerm();
        for (const SyncConstraint &constraint : q.constraints) {
            switch (constraint.kind) {
              case SyncConstraint::Kind::AEqB:
                all = tf_.mkAnd(
                    all,
                    eqWiden(
                        semA_.readRegister(a, fnA_, constraint.regA),
                        semB_.readRegister(b, fnB_, constraint.regB)));
                break;
              case SyncConstraint::Kind::AEqConst: {
                Term ta = semA_.readRegister(a, fnA_, constraint.regA);
                all = tf_.mkAnd(
                    all, tf_.mkEq(ta, tf_.bvConst(
                                          constraint.value.zextTo(64)
                                              .truncTo(
                                                  ta.sort().width()))));
                break;
              }
              case SyncConstraint::Kind::BEqConst: {
                Term tb = semB_.readRegister(b, fnB_, constraint.regB);
                all = tf_.mkAnd(
                    all, tf_.mkEq(tb, tf_.bvConst(
                                          constraint.value.zextTo(64)
                                              .truncTo(
                                                  tb.sort().width()))));
                break;
              }
            }
        }
        if (acceptability_.requiresMemoryEquality())
            all = tf_.mkAnd(all, tf_.mkEq(a.memory, b.memory));
        return all;
    }

    /** Sync points whose locations admit this status/pair. */
    std::vector<const SyncPoint *>
    candidatePoints(const SymbolicState &a, const SymbolicState &b) const
    {
        std::vector<const SyncPoint *> candidates;
        for (const SyncPoint &point : points_.points) {
            switch (point.kind) {
              case SyncKind::Exit:
                if (a.status == Status::Exited &&
                    b.status == Status::Exited) {
                    candidates.push_back(&point);
                }
                break;
              case SyncKind::BeforeCall:
                if (a.status == Status::AtCall &&
                    b.status == Status::AtCall &&
                    point.a.callSiteId == a.callSiteId &&
                    point.b.callSiteId == b.callSiteId) {
                    candidates.push_back(&point);
                }
                break;
              case SyncKind::BlockEntry:
                if (a.status == Status::Running &&
                    b.status == Status::Running &&
                    point.a.block == a.block &&
                    point.b.block == b.block &&
                    (point.a.cameFrom.empty() ||
                     point.a.cameFrom == a.cameFrom) &&
                    (point.b.cameFrom.empty() ||
                     point.b.cameFrom == b.cameFrom)) {
                    candidates.push_back(&point);
                }
                break;
              default:
                break;
            }
        }
        return candidates;
    }

    enum class PairResult : uint8_t { Pass, Fail };

    /** Appends a proof-log entry (when proof collection is enabled). */
    void
    recordStep(const SyncPoint &source, const SyncPoint *target,
               const SymbolicState &a, const SymbolicState &b,
               ProofStep::Method method, Term hypothesis,
               Term conclusion)
    {
        if (!config_.collectProof)
            return;
        auto clip = [](std::string text) {
            if (text.size() > 160)
                text = text.substr(0, 157) + "...";
            return text;
        };
        ProofStep step;
        step.sourcePoint = source.id;
        step.targetPoint = target != nullptr ? target->id : "";
        step.stateA = a.describe();
        step.stateB = b.describe();
        step.method = method;
        if (hypothesis && conclusion) {
            step.obligation = clip(hypothesis.toString()) + "  ==>  " +
                              clip(conclusion.toString());
        }
        proof_.push_back(std::move(step));
    }

    /**
     * Checks one successor pair against the sync point set (the symbolic
     * inclusion of line 9). Pairs with jointly unsatisfiable path
     * conditions are vacuously fine — no concrete execution reaches them
     * together (the systems are deterministic, so concrete pairing
     * follows the shared seed valuation).
     */
    PairResult
    matchPair(const SyncPoint &source, const SymbolicState &a,
              const SymbolicState &b,
              const std::vector<SymbolicState> &family_a,
              const std::vector<SymbolicState> &family_b,
              std::string &why)
    {
        ++stats_.pairsExamined;
        // If the solver answered "unknown" anywhere while working on
        // this pair, a failure is inconclusive (the obligation may well
        // hold); classify it as a timeout instead of a counterexample.
        uint64_t unknowns_before = solver_.stats().unknown;
        auto fail = [&](std::string reason) {
            if (solver_.stats().unknown > unknowns_before) {
                FailureKind failure = unknownFailure();
                throw BudgetExceeded{
                    verdictKindFor(failure), failure,
                    "solver returned unknown while discharging "
                    "obligations (" +
                        std::string(failureKindName(failure)) + ")"};
            }
            why = std::move(reason);
            return PairResult::Fail;
        };

        // Undefined behaviour on the input side licenses anything on the
        // output side (Section 4.6): the pair is acceptable, and the
        // verdict degrades to refinement if this situation is reachable.
        if (a.status == Status::Error &&
            acceptability_.errorAcceptsAnyOutput(a.errorKind)) {
            if (!refinementFallback_ && possiblySat(a.pathCond))
                refinementFallback_ = true;
            recordStep(source, nullptr, a, b,
                       ProofStep::Method::Acceptability, Term(), Term());
            return PairResult::Pass;
        }
        if (b.status == Status::Error) {
            if (a.status == Status::Error &&
                acceptability_.errorsRelated(a.errorKind, b.errorKind)) {
                recordStep(source, nullptr, a, b,
                           ProofStep::Method::Acceptability, Term(),
                           Term());
                return PairResult::Pass;
            }
            if (isSat(tf_.mkAnd(a.pathCond, b.pathCond))) {
                return fail("after " + source.id +
                            ": output reaches error (" +
                            std::string(
                                sem::errorKindName(b.errorKind)) +
                            ") with no matching input behaviour: " +
                            b.describe());
            }
            return PairResult::Pass;
        }
        if (a.status == Status::Error) {
            // Non-accepting input error must pair with an output error;
            // reaching here means b is not an error state.
            if (isSat(tf_.mkAnd(a.pathCond, b.pathCond))) {
                return fail("after " + source.id +
                            ": input error state unmatched: " +
                            a.describe());
            }
            return PairResult::Pass;
        }

        std::vector<const SyncPoint *> candidates = candidatePoints(a, b);
        if (candidates.empty()) {
            if (isSat(tf_.mkAnd(a.pathCond, b.pathCond))) {
                return fail("after " + source.id +
                            ": unsynchronized states: " + a.describe() +
                            " vs " + b.describe());
            }
            recordStep(source, nullptr, a, b,
                       ProofStep::Method::Vacuous, Term(), Term());
            return PairResult::Pass;
        }

        // Path-condition handling per Section 3: first try to prove the
        // two path conditions equivalent (with the positive-form
        // optimization); the inclusion query then simplifies.
        Term hypothesis;
        bool equivalent = false;
        Term joint = tf_.mkAnd(a.pathCond, b.pathCond);
        if (a.pathCond == b.pathCond) {
            hypothesis = a.pathCond;
            equivalent = true;
        } else if (joint.isFalse()) {
            // Folding already shows the pair is jointly unreachable; no
            // equivalence attempt needed.
            hypothesis = joint;
        } else if (provePathImplication(a.pathCond, b.pathCond, family_b,
                                        b) &&
                   provePathImplication(b.pathCond, a.pathCond, family_a,
                                        a)) {
            hypothesis = a.pathCond;
            equivalent = true;
        } else {
            hypothesis = joint;
        }
        // Unmerged hypothesis for batched discharge: every candidate
        // point below shares these parts, so an incremental backend
        // keeps them asserted across the whole loop.
        std::vector<Term> hypothesisParts =
            equivalent ? std::vector<Term>{a.pathCond}
                       : std::vector<Term>{a.pathCond, b.pathCond};

        for (const SyncPoint *q : candidates) {
            Term required = obligations(*q, a, b);
            // Call-boundary pairs additionally match callee and
            // arguments (Section 4.5, "Call sites").
            if (q->kind == SyncKind::BeforeCall) {
                if (a.callee != b.callee ||
                    a.callArgs.size() != b.callArgs.size()) {
                    continue;
                }
                for (size_t i = 0; i < a.callArgs.size(); ++i) {
                    required = tf_.mkAnd(
                        required,
                        eqWiden(a.callArgs[i], b.callArgs[i]));
                }
            }
            if (q->kind == SyncKind::Exit && a.result && b.result) {
                // $ret constraints come from the point itself; nothing
                // extra here.
            }
            uint64_t queries_before = solver_.stats().queries;
            if (dischargeObligation(hypothesis, hypothesisParts,
                                    required)) {
                recordStep(source, q, a, b,
                           solver_.stats().queries == queries_before
                               ? ProofStep::Method::Folded
                               : ProofStep::Method::Solver,
                           hypothesis, required);
                return PairResult::Pass;
            }
        }

        // No candidate point subsumes the pair; genuine counterexample
        // only if the pair is jointly reachable.
        Term feasible = equivalent
                            ? a.pathCond
                            : tf_.mkAnd(a.pathCond, b.pathCond);
        if (isSat(feasible)) {
            return fail("after " + source.id +
                        ": pair not contained in any synchronization "
                        "point: " +
                        a.describe() + " vs " + b.describe());
        }
        recordStep(source, nullptr, a, b, ProofStep::Method::Vacuous,
                   Term(), Term());
        return PairResult::Pass;
    }

    /** Algorithm 1 check(p1, p2) for one source point. */
    std::optional<std::string>
    checkPoint(const SyncPoint &point)
    {
        Seeded seeded = seedPoint(point);
        std::vector<SymbolicState> n_a =
            segment(semA_, Side::A, seeded.a);
        std::vector<SymbolicState> n_b =
            segment(semB_, Side::B, seeded.b);

        for (const SymbolicState &a : n_a) {
            for (const SymbolicState &b : n_b) {
                std::string why;
                if (matchPair(point, a, b, n_a, n_b, why) ==
                    PairResult::Fail) {
                    return why;
                }
            }
        }
        // Stuck-side detection: if one side produced no successors while
        // the other did (and is feasible), the programs desynchronize.
        if (n_a.empty() != n_b.empty()) {
            const std::vector<SymbolicState> &nonempty =
                n_a.empty() ? n_b : n_a;
            for (const SymbolicState &state : nonempty) {
                if (isSat(state.pathCond)) {
                    return "after " + point.id +
                           ": one side has no successors while the "
                           "other reaches " +
                           state.describe();
                }
            }
        }
        return std::nullopt;
    }

    sem::Semantics &semA_;
    sem::Semantics &semB_;
    const sem::Acceptability &acceptability_;
    smt::Solver &solver_;
    CheckerConfig config_;
    std::string fnA_;
    std::string fnB_;
    const SyncPointSet &points_;
    smt::TermFactory &tf_;
    CheckStats stats_;
    support::Stopwatch watch_;
    bool refinementFallback_ = false;
    uint64_t batchedDischarges_ = 0;
    std::vector<ProofStep> proof_;
};

} // namespace

Checker::Checker(sem::Semantics &sem_a, sem::Semantics &sem_b,
                 const sem::Acceptability &acceptability,
                 smt::Solver &solver, CheckerConfig config)
    : semA_(sem_a), semB_(sem_b), acceptability_(acceptability),
      solver_(solver), config_(config)
{
    KEQ_ASSERT(&sem_a.factory() == &sem_b.factory(),
               "the two semantics must share one term factory");
}

Verdict
Checker::check(const std::string &function_a,
               const std::string &function_b,
               const sem::SyncPointSet &points)
{
    Run run(semA_, semB_, acceptability_, solver_, config_, function_a,
            function_b, points);
    return run.run();
}

} // namespace keq::checker
