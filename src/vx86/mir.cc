#include "src/vx86/mir.h"

#include <map>
#include <sstream>

#include "src/support/diagnostics.h"

namespace keq::vx86 {

const std::vector<std::string> kPhysRegs = {
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15",
};

bool
isPhysReg(const std::string &name)
{
    for (const std::string &reg : kPhysRegs) {
        if (reg == name)
            return true;
    }
    return false;
}

namespace {

/** Sub-register spelling tables for the legacy-named registers. */
const std::map<std::string, std::pair<std::string, unsigned>> &
subRegTable()
{
    static const std::map<std::string, std::pair<std::string, unsigned>>
        table = {
            {"rax", {"rax", 64}}, {"eax", {"rax", 32}},
            {"ax", {"rax", 16}},  {"al", {"rax", 8}},
            {"rbx", {"rbx", 64}}, {"ebx", {"rbx", 32}},
            {"bx", {"rbx", 16}},  {"bl", {"rbx", 8}},
            {"rcx", {"rcx", 64}}, {"ecx", {"rcx", 32}},
            {"cx", {"rcx", 16}},  {"cl", {"rcx", 8}},
            {"rdx", {"rdx", 64}}, {"edx", {"rdx", 32}},
            {"dx", {"rdx", 16}},  {"dl", {"rdx", 8}},
            {"rsi", {"rsi", 64}}, {"esi", {"rsi", 32}},
            {"si", {"rsi", 16}},  {"sil", {"rsi", 8}},
            {"rdi", {"rdi", 64}}, {"edi", {"rdi", 32}},
            {"di", {"rdi", 16}},  {"dil", {"rdi", 8}},
            {"rbp", {"rbp", 64}}, {"ebp", {"rbp", 32}},
            {"rsp", {"rsp", 64}}, {"esp", {"rsp", 32}},
        };
    return table;
}

} // namespace

bool
decodePhysReg(const std::string &spelling, std::string &canonical,
              unsigned &width)
{
    auto it = subRegTable().find(spelling);
    if (it != subRegTable().end()) {
        canonical = it->second.first;
        width = it->second.second;
        return true;
    }
    // r8..r15 with optional d/w/b suffix.
    if (spelling.size() >= 2 && spelling[0] == 'r' &&
        std::isdigit(static_cast<unsigned char>(spelling[1]))) {
        std::string digits;
        size_t i = 1;
        while (i < spelling.size() &&
               std::isdigit(static_cast<unsigned char>(spelling[i]))) {
            digits += spelling[i++];
        }
        int num = std::stoi(digits);
        if (num < 8 || num > 15)
            return false;
        std::string base = "r" + digits;
        std::string suffix = spelling.substr(i);
        if (suffix.empty()) {
            canonical = base;
            width = 64;
            return true;
        }
        if (suffix == "d") {
            canonical = base;
            width = 32;
            return true;
        }
        if (suffix == "w") {
            canonical = base;
            width = 16;
            return true;
        }
        if (suffix == "b") {
            canonical = base;
            width = 8;
            return true;
        }
    }
    return false;
}

std::string
physRegSpelling(const std::string &canonical, unsigned width)
{
    if (width == 64)
        return canonical;
    // r8..r15 take suffixes.
    if (canonical.size() >= 2 &&
        std::isdigit(static_cast<unsigned char>(canonical[1]))) {
        switch (width) {
          case 32: return canonical + "d";
          case 16: return canonical + "w";
          case 8: return canonical + "b";
          default: break;
        }
    }
    for (const auto &[spelling, entry] : subRegTable()) {
        if (entry.first == canonical && entry.second == width)
            return spelling;
    }
    KEQ_ASSERT(false, "no spelling for " + canonical + " at width " +
                          std::to_string(width));
    return canonical;
}

const char *
condCodeName(CondCode cc)
{
    switch (cc) {
      case CondCode::E: return "e";
      case CondCode::NE: return "ne";
      case CondCode::B: return "b";
      case CondCode::BE: return "be";
      case CondCode::A: return "a";
      case CondCode::AE: return "ae";
      case CondCode::L: return "l";
      case CondCode::LE: return "le";
      case CondCode::G: return "g";
      case CondCode::GE: return "ge";
      case CondCode::S: return "s";
      case CondCode::NS: return "ns";
      case CondCode::O: return "o";
      case CondCode::NO: return "no";
    }
    return "?";
}

CondCode
parseCondCode(const std::string &name)
{
    static const std::map<std::string, CondCode> table = {
        {"e", CondCode::E},   {"ne", CondCode::NE}, {"b", CondCode::B},
        {"be", CondCode::BE}, {"a", CondCode::A},   {"ae", CondCode::AE},
        {"l", CondCode::L},   {"le", CondCode::LE}, {"g", CondCode::G},
        {"ge", CondCode::GE}, {"s", CondCode::S},   {"ns", CondCode::NS},
        {"o", CondCode::O},   {"no", CondCode::NO},
    };
    auto it = table.find(name);
    KEQ_ASSERT(it != table.end(), "unknown condition code " + name);
    return it->second;
}

const char *
mopcodeBaseName(MOpcode op)
{
    switch (op) {
      case MOpcode::COPY: return "COPY";
      case MOpcode::PHI: return "PHI";
      case MOpcode::MOVri: return "MOVri";
      case MOpcode::MOVrm: return "MOVrm";
      case MOpcode::MOVmr: return "MOVmr";
      case MOpcode::MOVmi: return "MOVmi";
      case MOpcode::MOVZXrr: return "MOVZXrr";
      case MOpcode::MOVSXrr: return "MOVSXrr";
      case MOpcode::MOVZXrm: return "MOVZXrm";
      case MOpcode::MOVSXrm: return "MOVSXrm";
      case MOpcode::LEA: return "LEA";
      case MOpcode::ADDrr: return "ADDrr";
      case MOpcode::ADDri: return "ADDri";
      case MOpcode::SUBrr: return "SUBrr";
      case MOpcode::SUBri: return "SUBri";
      case MOpcode::IMULrr: return "IMULrr";
      case MOpcode::IMULri: return "IMULri";
      case MOpcode::ANDrr: return "ANDrr";
      case MOpcode::ANDri: return "ANDri";
      case MOpcode::ORrr: return "ORrr";
      case MOpcode::ORri: return "ORri";
      case MOpcode::XORrr: return "XORrr";
      case MOpcode::XORri: return "XORri";
      case MOpcode::SHLri: return "SHLri";
      case MOpcode::SHRri: return "SHRri";
      case MOpcode::SARri: return "SARri";
      case MOpcode::SHLrr: return "SHLrr";
      case MOpcode::SHRrr: return "SHRrr";
      case MOpcode::SARrr: return "SARrr";
      case MOpcode::NEGr: return "NEGr";
      case MOpcode::NOTr: return "NOTr";
      case MOpcode::INCr: return "INCr";
      case MOpcode::DECr: return "DECr";
      case MOpcode::CDQ: return "CDQ";
      case MOpcode::DIV: return "DIV";
      case MOpcode::IDIV: return "IDIV";
      case MOpcode::CMPrr: return "CMPrr";
      case MOpcode::CMPri: return "CMPri";
      case MOpcode::TESTrr: return "TESTrr";
      case MOpcode::SETcc: return "SETcc";
      case MOpcode::JCC: return "JCC";
      case MOpcode::JMP: return "JMP";
      case MOpcode::CALL: return "CALL";
      case MOpcode::RET: return "RET";
      case MOpcode::UD2: return "UD2";
    }
    return "?";
}

std::string
MOperand::toString() const
{
    switch (kind) {
      case Kind::VirtReg:
        return reg;
      case Kind::PhysReg:
        return physRegSpelling(reg, width);
      case Kind::Imm:
        return "$" + imm.toSignedString();
      case Kind::None:
        return "<none>";
    }
    return "?";
}

std::string
MAddress::toString() const
{
    std::ostringstream os;
    os << "[";
    switch (baseKind) {
      case BaseKind::Reg:
        os << baseReg.toString();
        break;
      case BaseKind::Global:
        os << global;
        break;
      case BaseKind::FrameIndex:
        os << "fi" << frameIndex;
        break;
      case BaseKind::None:
        os << "0";
        break;
    }
    if (hasIndex())
        os << " + " << indexReg.toString() << "*" << scale;
    if (disp != 0) {
        if (disp > 0)
            os << " + " << disp;
        else
            os << " - " << -disp;
    }
    os << "]";
    return os.str();
}

std::string
MInst::toString() const
{
    std::ostringstream os;
    std::string base = mopcodeBaseName(op);
    auto opcodeText = [&]() {
        // Width-annotated opcode, e.g. ADD32rr. Suffix-free pseudo ops
        // (COPY/PHI/JMP/...) print bare.
        switch (op) {
          case MOpcode::COPY:
          case MOpcode::PHI:
          case MOpcode::JMP:
          case MOpcode::CALL:
          case MOpcode::RET:
            return base;
          case MOpcode::JCC:
            return "J" + std::string(condCodeName(cc));
          case MOpcode::SETcc:
            return "SET" + std::string(condCodeName(cc));
          case MOpcode::CDQ:
            return std::string(width == 64 ? "CQO" : "CDQ");
          case MOpcode::MOVZXrr:
          case MOpcode::MOVSXrr:
          case MOpcode::MOVZXrm:
          case MOpcode::MOVSXrm: {
            // Dual-width naming like LLVM's: MOVZX<dst>rr<src>.
            bool sign = op == MOpcode::MOVSXrr || op == MOpcode::MOVSXrm;
            bool memory =
                op == MOpcode::MOVZXrm || op == MOpcode::MOVSXrm;
            return std::string(sign ? "MOVSX" : "MOVZX") +
                   std::to_string(ops[0].width) +
                   (memory ? "rm" : "rr") + std::to_string(width);
          }
          default: {
            // Insert width digits before the lowercase form suffix.
            size_t split = base.size();
            while (split > 0 &&
                   std::islower(static_cast<unsigned char>(
                       base[split - 1]))) {
                --split;
            }
            return base.substr(0, split) + std::to_string(width) +
                   base.substr(split);
          }
        }
    };

    switch (op) {
      case MOpcode::PHI: {
        os << ops[0].toString() << " = PHI";
        for (size_t i = 0; i < incoming.size(); ++i) {
            os << (i == 0 ? " " : ", ") << incoming[i].first.toString()
               << ", " << incoming[i].second;
        }
        return os.str();
      }
      case MOpcode::COPY:
        os << ops[0].toString() << " = COPY " << ops[1].toString();
        return os.str();
      case MOpcode::MOVri:
        os << ops[0].toString() << " = " << opcodeText() << " "
           << ops[1].toString();
        return os.str();
      case MOpcode::MOVrm:
      case MOpcode::MOVZXrm:
      case MOpcode::MOVSXrm:
      case MOpcode::LEA:
        os << ops[0].toString() << " = " << opcodeText() << " "
           << addr.toString();
        return os.str();
      case MOpcode::MOVmr:
        os << opcodeText() << " " << addr.toString() << ", "
           << ops[0].toString();
        return os.str();
      case MOpcode::MOVmi:
        os << opcodeText() << " " << addr.toString() << ", "
           << ops[0].toString();
        return os.str();
      case MOpcode::MOVZXrr:
      case MOpcode::MOVSXrr:
        os << ops[0].toString() << " = " << opcodeText() << " "
           << ops[1].toString();
        return os.str();
      case MOpcode::ADDrr:
      case MOpcode::ADDri:
      case MOpcode::SUBrr:
      case MOpcode::SUBri:
      case MOpcode::IMULrr:
      case MOpcode::IMULri:
      case MOpcode::ANDrr:
      case MOpcode::ANDri:
      case MOpcode::ORrr:
      case MOpcode::ORri:
      case MOpcode::XORrr:
      case MOpcode::XORri:
      case MOpcode::SHLri:
      case MOpcode::SHRri:
      case MOpcode::SARri:
      case MOpcode::SHLrr:
      case MOpcode::SHRrr:
      case MOpcode::SARrr:
        os << ops[0].toString() << " = " << opcodeText() << " "
           << ops[1].toString() << ", " << ops[2].toString();
        return os.str();
      case MOpcode::NEGr:
      case MOpcode::NOTr:
      case MOpcode::INCr:
      case MOpcode::DECr:
        os << ops[0].toString() << " = " << opcodeText() << " "
           << ops[1].toString();
        return os.str();
      case MOpcode::CDQ:
        os << opcodeText();
        return os.str();
      case MOpcode::DIV:
      case MOpcode::IDIV:
        os << opcodeText() << " " << ops[0].toString();
        return os.str();
      case MOpcode::CMPrr:
      case MOpcode::CMPri:
      case MOpcode::TESTrr:
        os << opcodeText() << " " << ops[0].toString() << ", "
           << ops[1].toString();
        return os.str();
      case MOpcode::SETcc:
        os << ops[0].toString() << " = " << opcodeText();
        return os.str();
      case MOpcode::JCC:
        os << "J" << condCodeName(cc) << " " << target;
        return os.str();
      case MOpcode::JMP:
        os << "JMP " << target;
        return os.str();
      case MOpcode::CALL: {
        if (retWidth > 0)
            os << physRegSpelling("rax", retWidth) << " = ";
        os << "CALL " << target << "(";
        for (size_t i = 0; i < callArgs.size(); ++i) {
            if (i > 0)
                os << ", ";
            os << callArgs[i].toString();
        }
        os << ") site=" << callSiteId;
        return os.str();
      }
      case MOpcode::RET:
        os << "RET";
        return os.str();
      case MOpcode::UD2:
        os << "UD2";
        return os.str();
      default:
        break;
    }
    return opcodeText();
}

std::vector<std::string>
MBasicBlock::successors() const
{
    std::vector<std::string> out;
    for (const MInst &inst : insts) {
        if (inst.op == MOpcode::JCC)
            out.push_back(inst.target);
        if (inst.op == MOpcode::JMP)
            out.push_back(inst.target);
    }
    return out;
}

const MBasicBlock *
MFunction::findBlock(const std::string &block_name) const
{
    for (const MBasicBlock &block : blocks) {
        if (block.name == block_name)
            return &block;
    }
    return nullptr;
}

size_t
MFunction::instructionCount() const
{
    size_t count = 0;
    for (const MBasicBlock &block : blocks)
        count += block.insts.size();
    return count;
}

std::string
MFunction::toString() const
{
    std::ostringstream os;
    os << "function " << name << " ret i" << retWidth << " {\n";
    for (const FrameObject &object : frame)
        os << "  frame " << object.slotName << " " << object.size << "\n";
    for (const MBasicBlock &block : blocks) {
        os << block.name << ":\n";
        for (const MInst &inst : block.insts)
            os << "  " << inst.toString() << "\n";
    }
    os << "}\n";
    return os.str();
}

MFunction *
MModule::findFunction(const std::string &fn_name)
{
    for (MFunction &fn : functions) {
        if (fn.name == fn_name)
            return &fn;
    }
    return nullptr;
}

const MFunction *
MModule::findFunction(const std::string &fn_name) const
{
    for (const MFunction &fn : functions) {
        if (fn.name == fn_name)
            return &fn;
    }
    return nullptr;
}

std::string
MModule::toString() const
{
    std::ostringstream os;
    for (const MFunction &fn : functions)
        os << fn.toString() << "\n";
    return os.str();
}

} // namespace keq::vx86
