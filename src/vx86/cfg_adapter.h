#ifndef KEQ_VX86_CFG_ADAPTER_H
#define KEQ_VX86_CFG_ADAPTER_H

/**
 * @file
 * Adapters from Virtual x86 functions to the generic CFG analyses.
 *
 * Liveness tracks virtual registers, physical registers (canonical
 * names), and the four eflags bits ("zf"/"sf"/"cf"/"of"). Our lowering
 * never keeps flags live across block boundaries; the VC generator
 * asserts this when constraining edge-live sets.
 */

#include "src/analysis/cfg.h"
#include "src/vx86/mir.h"

namespace keq::vx86 {

/** Builds the generic CFG of @p fn. */
analysis::Cfg buildCfg(const MFunction &fn);

/** Per-block use/def facts (upward-exposed uses, phi reads on edges). */
std::vector<analysis::BlockUseDef> useDefFacts(const MFunction &fn,
                                               const analysis::Cfg &cfg);

/**
 * Uses and defs of one machine instruction, including implicit physical
 * register and eflags effects. Phi reads are not reported here (they
 * belong to incoming edges).
 */
void minstUseDef(const MInst &inst, const MFunction &fn,
                 std::set<std::string> &use, std::set<std::string> &def);

} // namespace keq::vx86

#endif // KEQ_VX86_CFG_ADAPTER_H
