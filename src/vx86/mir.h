#ifndef KEQ_VX86_MIR_H
#define KEQ_VX86_MIR_H

/**
 * @file
 * "Virtual x86": LLVM Machine IR specialized to the x86-64 ISA
 * (Section 4.3 of the paper).
 *
 * The representation keeps the Machine IR's pre-register-allocation
 * abstractions: an unlimited supply of SSA virtual registers, PHI and COPY
 * pseudo-instructions, a frame-object abstraction for stack slots, plus
 * the x86-64 physical general-purpose register file, eflags, and a subset
 * of x86-64 opcodes sufficient for lowering the supported LLVM fragment.
 *
 * Register naming:
 *  - virtual registers print as "%vrN_W" (N = number, W = width in bits);
 *  - physical registers use their canonical 64-bit names internally
 *    ("rax", ..., "r15") and print with the conventional sub-register
 *    names at narrower widths ("eax", "ax", "al", "r8d", ...).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/apint.h"

namespace keq::vx86 {

/** The sixteen x86-64 general-purpose registers (canonical names). */
extern const std::vector<std::string> kPhysRegs;

/** True if @p name is a canonical 64-bit physical register name. */
bool isPhysReg(const std::string &name);

/**
 * Maps a textual register spelling ("eax", "r8d", "al") to its canonical
 * name and access width; returns false when unknown.
 */
bool decodePhysReg(const std::string &spelling, std::string &canonical,
                   unsigned &width);

/** Conventional spelling of a physical register at a width. */
std::string physRegSpelling(const std::string &canonical, unsigned width);

/** x86 condition codes (for Jcc / SETcc). */
enum class CondCode : uint8_t {
    E, NE, B, BE, A, AE, L, LE, G, GE, S, NS, O, NO,
};

const char *condCodeName(CondCode cc);
/** Inverse of condCodeName; throws on unknown. */
CondCode parseCondCode(const std::string &name);

/** Machine operand. */
struct MOperand
{
    enum class Kind : uint8_t { VirtReg, PhysReg, Imm, None };

    Kind kind = Kind::None;
    std::string reg;      ///< "%vr3_32" (VirtReg) or canonical (PhysReg).
    unsigned width = 0;   ///< Access width in bits.
    support::ApInt imm;   ///< Kind::Imm.

    static MOperand
    virtReg(unsigned number, unsigned width)
    {
        return {Kind::VirtReg,
                "%vr" + std::to_string(number) + "_" +
                    std::to_string(width),
                width,
                {}};
    }

    static MOperand
    namedVirtReg(std::string name, unsigned width)
    {
        return {Kind::VirtReg, std::move(name), width, {}};
    }

    static MOperand
    physReg(std::string canonical, unsigned width)
    {
        return {Kind::PhysReg, std::move(canonical), width, {}};
    }

    static MOperand
    immediate(support::ApInt value)
    {
        return {Kind::Imm, {}, value.width(), value};
    }

    bool isReg() const
    {
        return kind == Kind::VirtReg || kind == Kind::PhysReg;
    }
    bool isImm() const { return kind == Kind::Imm; }

    std::string toString() const;
};

/**
 * x86 addressing mode: base + index*scale + displacement, where the base
 * may be a register, a global symbol, or a frame index (Machine IR's
 * stack-frame abstraction).
 */
struct MAddress
{
    enum class BaseKind : uint8_t { Reg, Global, FrameIndex, None };

    BaseKind baseKind = BaseKind::None;
    MOperand baseReg;       ///< BaseKind::Reg.
    std::string global;     ///< BaseKind::Global ("@name").
    int frameIndex = -1;    ///< BaseKind::FrameIndex.
    MOperand indexReg;      ///< Optional; Kind::None when absent.
    unsigned scale = 1;
    int64_t disp = 0;

    bool hasIndex() const { return indexReg.isReg(); }
    std::string toString() const;
};

/** Virtual x86 opcodes (generic across widths; width stored on MInst). */
enum class MOpcode : uint8_t {
    // Pseudo instructions kept from Machine IR.
    COPY, PHI,
    // Data movement.
    MOVri, MOVrm, MOVmr, MOVmi, MOVZXrr, MOVSXrr, MOVZXrm, MOVSXrm, LEA,
    // Integer ALU.
    ADDrr, ADDri, SUBrr, SUBri, IMULrr, IMULri,
    ANDrr, ANDri, ORrr, ORri, XORrr, XORri,
    SHLri, SHRri, SARri, SHLrr, SHRrr, SARrr,
    NEGr, NOTr, INCr, DECr,
    // Widening for division.
    CDQ, // sign-extends eax into edx (CQO at width 64).
    DIV, IDIV,
    // Flags and control flow.
    CMPrr, CMPri, TESTrr, SETcc, JCC, JMP,
    CALL, RET,
    UD2, ///< Trap; models LLVM `unreachable` lowering.
};

const char *mopcodeBaseName(MOpcode op);

/** One machine instruction. */
struct MInst
{
    MOpcode op = MOpcode::RET;
    /** Operation width in bits (8/16/32/64); 0 where n/a (JMP...). */
    unsigned width = 0;

    /** Register/immediate operands; defs first (x86 two-address style). */
    std::vector<MOperand> ops;

    MAddress addr;              ///< Memory ops and LEA.
    CondCode cc = CondCode::E;  ///< JCC / SETcc.
    std::string target;         ///< JMP/JCC target block or CALL callee.

    /** PHI incoming (value operand, predecessor block). */
    std::vector<std::pair<MOperand, std::string>> incoming;

    // CALL metadata (Machine IR keeps implicit uses/defs; we keep them
    // explicitly so the semantics and interpreter agree with LLVM's).
    std::vector<MOperand> callArgs; ///< Physical argument registers.
    unsigned retWidth = 0;          ///< 0 for void.
    std::string callSiteId;         ///< Matches the LLVM side's ids.

    bool
    isTerminator() const
    {
        return op == MOpcode::JMP || op == MOpcode::RET ||
               op == MOpcode::UD2;
    }

    std::string toString() const;
};

/** A frame object: one stack slot (from an LLVM alloca). */
struct FrameObject
{
    /** Full common-layout slot name, e.g. "@foo/%p". */
    std::string slotName;
    uint64_t size = 0;
};

/** A machine basic block. */
struct MBasicBlock
{
    std::string name; ///< ".LBB0", ...
    std::vector<MInst> insts;

    /** Successor block names derived from the trailing jump sequence. */
    std::vector<std::string> successors() const;
};

/** A machine function. */
struct MFunction
{
    std::string name;    ///< Matches the LLVM symbol, with '@'.
    unsigned retWidth = 0; ///< Return value width in bits; 0 = void.
    std::vector<FrameObject> frame;
    std::vector<MBasicBlock> blocks;

    const MBasicBlock *findBlock(const std::string &name) const;
    size_t instructionCount() const;
    std::string toString() const;
};

/** A machine module. */
struct MModule
{
    std::vector<MFunction> functions;

    MFunction *findFunction(const std::string &name);
    const MFunction *findFunction(const std::string &name) const;
    std::string toString() const;
};

} // namespace keq::vx86

#endif // KEQ_VX86_MIR_H
