#ifndef KEQ_VX86_PARSER_H
#define KEQ_VX86_PARSER_H

/**
 * @file
 * Parser for the textual Virtual x86 form produced by MFunction::toString.
 *
 * The syntax is line-oriented:
 *
 *     function @foo ret i32 {
 *       frame @foo/%p 4
 *     .LBB0:
 *       %vr0_32 = COPY edi
 *       %vr1_32 = MOV32ri $5
 *       MOV32mr [fi0 + 4], %vr1_32
 *       CMP32rr %vr0_32, %vr1_32
 *       Jae .LBB2
 *       JMP .LBB1
 *     ...
 *     }
 *
 * Round-trip property: parse(print(m)) == print-identical m (tested).
 */

#include <string_view>

#include "src/vx86/mir.h"

namespace keq::vx86 {

/** Parses a machine module; throws support::Error on malformed input. */
MModule parseMModule(std::string_view source);

} // namespace keq::vx86

#endif // KEQ_VX86_PARSER_H
