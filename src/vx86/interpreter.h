#ifndef KEQ_VX86_INTERPRETER_H
#define KEQ_VX86_INTERPRETER_H

/**
 * @file
 * Concrete reference interpreter for Virtual x86.
 *
 * Executes machine functions against the common concrete memory, following
 * the SysV x86-64 calling convention used by the ISel pass (arguments in
 * rdi/rsi/rdx/rcx/r8/r9, result in rax). The differential tests run the
 * LLVM interpreter and this one on the same inputs and compare outcomes.
 *
 * Flags that real x86 leaves undefined (after shifts, imul, div) are set
 * to 0 deterministically; the lowering never reads them.
 */

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/memory/concrete_memory.h"
#include "src/sem/symbolic_state.h" // ErrorKind
#include "src/support/apint.h"
#include "src/vx86/mir.h"

namespace keq::vx86 {

/** Handler for calls to functions not present in the machine module. */
using ExternalCallHandler = std::function<support::ApInt(
    const std::string &callee, const std::vector<support::ApInt> &args)>;

enum class MExecOutcome : uint8_t { Returned, Trapped, StepLimit };

struct MExecResult
{
    MExecOutcome outcome = MExecOutcome::StepLimit;
    support::ApInt value;
    sem::ErrorKind error = sem::ErrorKind::None;
    std::vector<std::string> callTrace;
    size_t steps = 0;
};

/** Interprets functions of one machine module. */
class Interpreter
{
  public:
    Interpreter(const MModule &module, mem::ConcreteMemory &memory);

    void setExternalHandler(ExternalCallHandler handler);

    /**
     * Runs @p fn with integer arguments placed in the argument registers
     * at the given widths.
     */
    MExecResult run(const MFunction &fn,
                    const std::vector<support::ApInt> &args,
                    size_t max_steps = 200000);

  private:
    struct Machine;

    MExecResult runInternal(const MFunction &fn,
                            const std::vector<support::ApInt> &args,
                            size_t &budget,
                            std::vector<std::string> &call_trace);

    const MModule &module_;
    mem::ConcreteMemory &memory_;
    ExternalCallHandler external_;
};

/** Argument registers of the SysV x86-64 calling convention, in order. */
extern const std::vector<std::string> kArgRegs;

} // namespace keq::vx86

#endif // KEQ_VX86_INTERPRETER_H
