#include "src/vx86/parser.h"

#include <cctype>
#include <memory>
#include <sstream>

#include "src/support/diagnostics.h"
#include "src/support/strings.h"

namespace keq::vx86 {

namespace {

using support::ApInt;
using support::Error;

[[noreturn]] void
fail(int line, const std::string &message)
{
    throw Error("vx86 parse error (line " + std::to_string(line) +
                "): " + message);
}

/** Splits an instruction line into tokens on whitespace and commas,
 *  keeping bracketed address expressions as single tokens. */
std::vector<std::string>
tokenize(std::string_view text, int line)
{
    std::vector<std::string> tokens;
    size_t i = 0;
    while (i < text.size()) {
        char c = text[i];
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
            ++i;
            continue;
        }
        if (c == '[') {
            size_t close = text.find(']', i);
            if (close == std::string_view::npos)
                fail(line, "unterminated address bracket");
            tokens.emplace_back(text.substr(i, close - i + 1));
            i = close + 1;
            continue;
        }
        size_t start = i;
        while (i < text.size() &&
               !std::isspace(static_cast<unsigned char>(text[i])) &&
               text[i] != ',' && text[i] != '[') {
            ++i;
        }
        tokens.emplace_back(text.substr(start, i - start));
    }
    return tokens;
}

/** Parses a register or immediate operand token. */
MOperand
parseOperand(const std::string &token, unsigned imm_width, int line)
{
    if (token.empty())
        fail(line, "empty operand");
    if (token[0] == '$') {
        int64_t value = std::stoll(token.substr(1));
        return MOperand::immediate(
            ApInt(imm_width, static_cast<uint64_t>(value)));
    }
    if (token.size() > 3 && token.substr(0, 3) == "%vr") {
        size_t underscore = token.rfind('_');
        if (underscore == std::string::npos)
            fail(line, "virtual register without width: " + token);
        unsigned width = static_cast<unsigned>(
            std::stoul(token.substr(underscore + 1)));
        return MOperand::namedVirtReg(token, width);
    }
    std::string canonical;
    unsigned width = 0;
    if (decodePhysReg(token, canonical, width))
        return MOperand::physReg(canonical, width);
    fail(line, "unknown operand '" + token + "'");
}

/** Parses "[base (+ index*scale) (+|- disp)]". */
MAddress
parseAddress(const std::string &token, int line)
{
    KEQ_ASSERT(token.size() >= 2 && token.front() == '[' &&
                   token.back() == ']',
               "parseAddress: not a bracketed token");
    std::string inner(token.substr(1, token.size() - 2));
    std::vector<std::string> parts = support::splitWhitespace(inner);

    MAddress addr;
    size_t index = 0;
    auto parseBase = [&](const std::string &base) {
        if (base.empty())
            fail(line, "empty address base");
        if (base[0] == '@') {
            addr.baseKind = MAddress::BaseKind::Global;
            addr.global = base;
        } else if (base.size() > 2 && base.substr(0, 2) == "fi") {
            addr.baseKind = MAddress::BaseKind::FrameIndex;
            addr.frameIndex = std::stoi(base.substr(2));
        } else if (base == "0") {
            addr.baseKind = MAddress::BaseKind::None;
        } else {
            addr.baseKind = MAddress::BaseKind::Reg;
            addr.baseReg = parseOperand(base, 64, line);
        }
    };
    if (parts.empty())
        fail(line, "empty address");
    parseBase(parts[index++]);

    while (index < parts.size()) {
        const std::string &sign = parts[index];
        if (sign != "+" && sign != "-")
            fail(line, "expected +/- in address, got '" + sign + "'");
        ++index;
        if (index >= parts.size())
            fail(line, "dangling sign in address");
        const std::string &piece = parts[index++];
        size_t star = piece.find('*');
        if (star != std::string::npos) {
            if (sign == "-")
                fail(line, "negative index in address");
            addr.indexReg = parseOperand(piece.substr(0, star), 64, line);
            addr.scale = static_cast<unsigned>(
                std::stoul(piece.substr(star + 1)));
        } else if (std::isdigit(static_cast<unsigned char>(piece[0]))) {
            int64_t disp = std::stoll(piece);
            addr.disp += sign == "-" ? -disp : disp;
        } else {
            // A bare register after + is an unscaled index.
            addr.indexReg = parseOperand(piece, 64, line);
            addr.scale = 1;
        }
    }
    return addr;
}

/** Decodes an opcode token like "ADD32rr" into (base enum, width). */
bool
decodeOpcode(const std::string &text, MOpcode &op, unsigned &width)
{
    // Dual-width extension opcodes: MOVZX<dst>rr<src> / MOVSX<dst>rm<src>.
    // The instruction width field holds the *source* width; the
    // destination width lives on the def operand.
    if (text.size() > 5 && (text.substr(0, 5) == "MOVZX" ||
                            text.substr(0, 5) == "MOVSX")) {
        bool sign = text[3] == 'S';
        std::string rest = text.substr(5);
        size_t form = rest.find("rr");
        bool memory = false;
        if (form == std::string::npos) {
            form = rest.find("rm");
            memory = true;
        }
        if (form == std::string::npos || form == 0 ||
            form + 2 >= rest.size()) {
            return false;
        }
        width = static_cast<unsigned>(std::stoul(rest.substr(form + 2)));
        op = memory ? (sign ? MOpcode::MOVSXrm : MOpcode::MOVZXrm)
                    : (sign ? MOpcode::MOVSXrr : MOpcode::MOVZXrr);
        return true;
    }
    // Peel off trailing lowercase form suffix, then digits, leaving the
    // uppercase base.
    size_t suffix_start = text.size();
    while (suffix_start > 0 &&
           std::islower(static_cast<unsigned char>(
               text[suffix_start - 1]))) {
        --suffix_start;
    }
    size_t digit_start = suffix_start;
    while (digit_start > 0 &&
           std::isdigit(static_cast<unsigned char>(
               text[digit_start - 1]))) {
        --digit_start;
    }
    std::string base = text.substr(0, digit_start) +
                       text.substr(suffix_start);
    std::string digits = text.substr(digit_start,
                                     suffix_start - digit_start);
    width = digits.empty()
                ? 0
                : static_cast<unsigned>(std::stoul(digits));

    static const std::vector<std::pair<std::string, MOpcode>> table = {
        {"MOVri", MOpcode::MOVri},     {"MOVrm", MOpcode::MOVrm},
        {"MOVmr", MOpcode::MOVmr},     {"MOVmi", MOpcode::MOVmi},
        {"MOVZXrr", MOpcode::MOVZXrr}, {"MOVSXrr", MOpcode::MOVSXrr},
        {"MOVZXrm", MOpcode::MOVZXrm}, {"MOVSXrm", MOpcode::MOVSXrm},
        {"LEA", MOpcode::LEA},         {"ADDrr", MOpcode::ADDrr},
        {"ADDri", MOpcode::ADDri},     {"SUBrr", MOpcode::SUBrr},
        {"SUBri", MOpcode::SUBri},     {"IMULrr", MOpcode::IMULrr},
        {"IMULri", MOpcode::IMULri},   {"ANDrr", MOpcode::ANDrr},
        {"ANDri", MOpcode::ANDri},     {"ORrr", MOpcode::ORrr},
        {"ORri", MOpcode::ORri},       {"XORrr", MOpcode::XORrr},
        {"XORri", MOpcode::XORri},     {"SHLri", MOpcode::SHLri},
        {"SHRri", MOpcode::SHRri},     {"SARri", MOpcode::SARri},
        {"SHLrr", MOpcode::SHLrr},     {"SHRrr", MOpcode::SHRrr},
        {"SARrr", MOpcode::SARrr},     {"NEGr", MOpcode::NEGr},
        {"NOTr", MOpcode::NOTr},       {"INCr", MOpcode::INCr},
        {"DECr", MOpcode::DECr},       {"DIV", MOpcode::DIV},
        {"IDIV", MOpcode::IDIV},       {"CMPrr", MOpcode::CMPrr},
        {"CMPri", MOpcode::CMPri},     {"TESTrr", MOpcode::TESTrr},
    };
    for (const auto &[name, opcode] : table) {
        if (base == name) {
            op = opcode;
            return true;
        }
    }
    if (base == "CDQ" || base == "CQO") {
        op = MOpcode::CDQ;
        width = base == "CQO" ? 64 : 32;
        return true;
    }
    return false;
}

class FunctionParser
{
  public:
    FunctionParser(MFunction &fn) : fn_(fn) {}

    void
    parseLine(const std::string &raw, int line)
    {
        std::string_view trimmed = support::trim(raw);
        if (trimmed.empty())
            return;
        if (trimmed.back() == ':') {
            MBasicBlock block;
            block.name = std::string(
                trimmed.substr(0, trimmed.size() - 1));
            fn_.blocks.push_back(std::move(block));
            return;
        }
        if (support::startsWith(trimmed, "frame ")) {
            std::vector<std::string> parts =
                support::splitWhitespace(trimmed);
            if (parts.size() != 3)
                fail(line, "frame needs slot name and size");
            fn_.frame.push_back(
                {parts[1], std::stoull(parts[2])});
            return;
        }
        if (fn_.blocks.empty())
            fail(line, "instruction before first block label");
        fn_.blocks.back().insts.push_back(
            parseInst(std::string(trimmed), line));
    }

  private:
    MInst
    parseInst(const std::string &text, int line)
    {
        std::vector<std::string> tokens = tokenize(text, line);
        KEQ_ASSERT(!tokens.empty(), "empty instruction line");

        MInst inst;
        size_t cursor = 0;
        MOperand dest;
        bool has_dest = false;
        if (tokens.size() >= 3 && tokens[1] == "=") {
            dest = parseOperand(tokens[0], 0, line);
            has_dest = true;
            cursor = 2;
        }
        const std::string opcode_text = tokens[cursor++];

        auto remaining = [&]() {
            return std::vector<std::string>(tokens.begin() +
                                                static_cast<long>(cursor),
                                            tokens.end());
        };

        if (opcode_text == "COPY") {
            inst.op = MOpcode::COPY;
            MOperand src = parseOperand(tokens[cursor++], 0, line);
            inst.width = dest.width ? dest.width : src.width;
            inst.ops = {dest, src};
            return inst;
        }
        if (opcode_text == "PHI") {
            inst.op = MOpcode::PHI;
            inst.width = dest.width;
            inst.ops = {dest};
            std::vector<std::string> rest = remaining();
            if (rest.size() % 2 != 0)
                fail(line, "PHI needs value/block pairs");
            for (size_t i = 0; i < rest.size(); i += 2) {
                inst.incoming.emplace_back(
                    parseOperand(rest[i], dest.width, line),
                    rest[i + 1]);
            }
            return inst;
        }
        if (opcode_text == "JMP") {
            inst.op = MOpcode::JMP;
            inst.target = tokens[cursor];
            return inst;
        }
        if (opcode_text == "RET") {
            inst.op = MOpcode::RET;
            return inst;
        }
        if (opcode_text == "UD2") {
            inst.op = MOpcode::UD2;
            return inst;
        }
        if (opcode_text == "CALL")
            return parseCall(tokens, cursor, has_dest, dest, line);
        if (opcode_text.size() > 1 && opcode_text[0] == 'J' &&
            std::islower(static_cast<unsigned char>(opcode_text[1]))) {
            inst.op = MOpcode::JCC;
            inst.cc = parseCondCode(opcode_text.substr(1));
            inst.target = tokens[cursor];
            return inst;
        }
        if (opcode_text.size() > 3 &&
            opcode_text.substr(0, 3) == "SET") {
            inst.op = MOpcode::SETcc;
            inst.cc = parseCondCode(opcode_text.substr(3));
            inst.width = 8;
            inst.ops = {dest};
            return inst;
        }

        MOpcode op;
        unsigned width = 0;
        if (!decodeOpcode(opcode_text, op, width))
            fail(line, "unknown opcode '" + opcode_text + "'");
        inst.op = op;
        inst.width = width;

        switch (op) {
          case MOpcode::MOVri:
            inst.ops = {dest,
                        parseOperand(tokens[cursor], width, line)};
            return inst;
          case MOpcode::MOVrm:
          case MOpcode::MOVZXrm:
          case MOpcode::MOVSXrm:
          case MOpcode::LEA:
            inst.addr = parseAddress(tokens[cursor], line);
            inst.ops = {dest};
            if (op == MOpcode::LEA)
                inst.width = dest.width;
            return inst;
          case MOpcode::MOVmr:
          case MOpcode::MOVmi:
            inst.addr = parseAddress(tokens[cursor++], line);
            inst.ops = {parseOperand(tokens[cursor], width, line)};
            return inst;
          case MOpcode::MOVZXrr:
          case MOpcode::MOVSXrr:
            inst.ops = {dest,
                        parseOperand(tokens[cursor], width, line)};
            return inst;
          case MOpcode::ADDrr:
          case MOpcode::ADDri:
          case MOpcode::SUBrr:
          case MOpcode::SUBri:
          case MOpcode::IMULrr:
          case MOpcode::IMULri:
          case MOpcode::ANDrr:
          case MOpcode::ANDri:
          case MOpcode::ORrr:
          case MOpcode::ORri:
          case MOpcode::XORrr:
          case MOpcode::XORri:
          case MOpcode::SHLri:
          case MOpcode::SHRri:
          case MOpcode::SARri:
          case MOpcode::SHLrr:
          case MOpcode::SHRrr:
          case MOpcode::SARrr: {
            MOperand a = parseOperand(tokens[cursor++], width, line);
            MOperand b = parseOperand(tokens[cursor], width, line);
            inst.ops = {dest, a, b};
            return inst;
          }
          case MOpcode::NEGr:
          case MOpcode::NOTr:
          case MOpcode::INCr:
          case MOpcode::DECr:
            inst.ops = {dest,
                        parseOperand(tokens[cursor], width, line)};
            return inst;
          case MOpcode::CDQ:
            return inst;
          case MOpcode::DIV:
          case MOpcode::IDIV:
            inst.ops = {parseOperand(tokens[cursor], width, line)};
            return inst;
          case MOpcode::CMPrr:
          case MOpcode::CMPri:
          case MOpcode::TESTrr: {
            MOperand a = parseOperand(tokens[cursor++], width, line);
            MOperand b = parseOperand(tokens[cursor], width, line);
            inst.ops = {a, b};
            return inst;
          }
          default:
            fail(line, "unhandled opcode form '" + opcode_text + "'");
        }
    }

    MInst
    parseCall(const std::vector<std::string> &tokens, size_t cursor,
              bool has_dest, const MOperand &dest, int line)
    {
        MInst inst;
        inst.op = MOpcode::CALL;
        inst.retWidth = has_dest ? dest.width : 0;
        // Callee token carries the argument list: "@f(edi," style pieces
        // were split on whitespace/commas; re-join and re-split on parens.
        std::string rest;
        for (size_t i = cursor; i < tokens.size(); ++i) {
            if (!rest.empty())
                rest += " ";
            rest += tokens[i];
        }
        size_t open = rest.find('(');
        size_t close = rest.rfind(')');
        if (open == std::string::npos || close == std::string::npos)
            fail(line, "CALL needs an argument list");
        inst.target = std::string(support::trim(rest.substr(0, open)));
        std::string args = rest.substr(open + 1, close - open - 1);
        for (const std::string &arg : support::splitWhitespace(args)) {
            if (!arg.empty())
                inst.callArgs.push_back(parseOperand(arg, 0, line));
        }
        std::string tail(support::trim(rest.substr(close + 1)));
        if (support::startsWith(tail, "site="))
            inst.callSiteId = tail.substr(5);
        return inst;
    }

    MFunction &fn_;
};

} // namespace

MModule
parseMModule(std::string_view source)
{
    MModule module;
    MFunction *current = nullptr;
    FunctionParser *parser = nullptr;
    std::unique_ptr<FunctionParser> parser_storage;

    std::istringstream stream{std::string(source)};
    std::string raw;
    int line = 0;
    while (std::getline(stream, raw)) {
        ++line;
        // Strip comments.
        size_t hash = raw.find('#');
        if (hash != std::string::npos)
            raw = raw.substr(0, hash);
        std::string_view trimmed = support::trim(raw);
        if (trimmed.empty())
            continue;
        if (support::startsWith(trimmed, "function ")) {
            std::vector<std::string> parts =
                support::splitWhitespace(trimmed);
            // function @name ret i32 {
            if (parts.size() < 4 || parts[2] != "ret")
                fail(line, "bad function header");
            MFunction fn;
            fn.name = parts[1];
            std::string ret = parts[3];
            if (ret == "void" || ret == "i0") {
                fn.retWidth = 0;
            } else if (ret.size() > 1 && ret[0] == 'i') {
                fn.retWidth = static_cast<unsigned>(
                    std::stoul(ret.substr(1)));
            } else {
                fail(line, "bad return type '" + ret + "'");
            }
            module.functions.push_back(std::move(fn));
            current = &module.functions.back();
            parser_storage = std::make_unique<FunctionParser>(*current);
            parser = parser_storage.get();
            continue;
        }
        if (trimmed == "}") {
            current = nullptr;
            parser = nullptr;
            continue;
        }
        if (parser == nullptr)
            fail(line, "content outside a function");
        parser->parseLine(raw, line);
    }
    return module;
}

} // namespace keq::vx86
