#ifndef KEQ_VX86_SYMBOLIC_SEMANTICS_H
#define KEQ_VX86_SYMBOLIC_SEMANTICS_H

/**
 * @file
 * Symbolic operational semantics of Virtual x86 (Section 4.3).
 *
 * The C++ analogue of the paper's K definition of the Machine IR x86
 * specialization: physical registers with x86-64 sub-register write
 * semantics (32-bit writes zero-extend; 16/8-bit writes merge), the
 * eflags bits zf/sf/cf/of as symbolic i1 values, PHI/COPY pseudo ops,
 * frame objects resolved against the common memory layout, and error
 * states for out-of-bounds accesses and divide faults.
 *
 * Flag modelling notes: after shifts and IMUL, x86 leaves some flags
 * undefined; we havoc exactly those flags (fresh symbolic values), which
 * over-approximates — sound for validation (can only cause a spurious
 * failure, never a false proof).
 */

#include "src/memory/symbolic_memory.h"
#include "src/sem/semantics.h"
#include "src/vx86/mir.h"

namespace keq::vx86 {

/** Symbolic semantics of one Virtual x86 module. */
class SymbolicSemantics : public sem::Semantics
{
  public:
    SymbolicSemantics(const MModule &module, smt::TermFactory &factory,
                      const mem::MemoryLayout &layout);

    std::string name() const override { return "Vx86"; }
    std::vector<sem::SymbolicState>
    step(const sem::SymbolicState &state) override;
    sem::SymbolicState makeState(const sem::StateSeed &seed,
                                 std::map<std::string, smt::Term> env,
                                 smt::Term memory,
                                 smt::Term path_cond) override;
    unsigned registerWidth(const std::string &function,
                           const std::string &reg) const override;
    void bindRegister(sem::SymbolicState &state,
                      const std::string &function, const std::string &reg,
                      smt::Term value) override;
    smt::Term readRegister(sem::SymbolicState &state,
                           const std::string &function,
                           const std::string &reg) override;
    smt::TermFactory &factory() override { return factory_; }

  private:
    const MFunction &function(const std::string &name) const;
    smt::Term readOperand(sem::SymbolicState &state, const MOperand &op);
    void writeReg(sem::SymbolicState &state, const MOperand &op,
                  smt::Term value);
    smt::Term evalAddress(sem::SymbolicState &state, const MFunction &fn,
                          const MAddress &addr);
    smt::Term flag(sem::SymbolicState &state, const char *name);
    void setFlag(sem::SymbolicState &state, const char *name,
                 smt::Term bit);
    void havocFlag(sem::SymbolicState &state, const char *name);
    void clearCompareShadow(sem::SymbolicState &state);
    void setCompareShadow(sem::SymbolicState &state, smt::Term lhs,
                          smt::Term rhs);
    smt::Term condTerm(sem::SymbolicState &state, CondCode cc);
    void setArithFlags(sem::SymbolicState &state, smt::Term result,
                       smt::Term cf, smt::Term of);

    const MModule &module_;
    smt::TermFactory &factory_;
    mem::SymbolicMemory symMem_;
};

} // namespace keq::vx86

#endif // KEQ_VX86_SYMBOLIC_SEMANTICS_H
