#include "src/vx86/interpreter.h"

#include <sstream>

#include "src/support/diagnostics.h"

namespace keq::vx86 {

using sem::ErrorKind;
using support::ApInt;

const std::vector<std::string> kArgRegs = {"rdi", "rsi", "rdx",
                                           "rcx", "r8",  "r9"};

struct Interpreter::Machine
{
    const MFunction *fn = nullptr;
    std::map<std::string, ApInt> virt;  // %vrN_W -> value (width W)
    std::map<std::string, uint64_t> phys; // canonical -> 64-bit value
    bool zf = false, sf = false, cf = false, of = false;
    const MBasicBlock *block = nullptr;
    std::string cameFrom;
    size_t index = 0;

    ApInt
    readOp(const MOperand &op) const
    {
        switch (op.kind) {
          case MOperand::Kind::Imm:
            return op.imm;
          case MOperand::Kind::VirtReg: {
            auto it = virt.find(op.reg);
            // Unwritten virtual registers read as 0 (deterministic).
            return it == virt.end() ? ApInt(op.width, 0) : it->second;
          }
          case MOperand::Kind::PhysReg: {
            auto it = phys.find(op.reg);
            uint64_t full = it == phys.end() ? 0 : it->second;
            return ApInt(op.width, full);
          }
          case MOperand::Kind::None:
            break;
        }
        KEQ_ASSERT(false, "readOp: bad operand");
        return {};
    }

    void
    writeOp(const MOperand &op, ApInt value)
    {
        KEQ_ASSERT(value.width() == op.width, "writeOp width mismatch");
        if (op.kind == MOperand::Kind::VirtReg) {
            virt[op.reg] = value;
            return;
        }
        KEQ_ASSERT(op.kind == MOperand::Kind::PhysReg,
                   "writeOp: not a register");
        uint64_t old = phys.count(op.reg) ? phys[op.reg] : 0;
        uint64_t bits = value.zext();
        switch (op.width) {
          case 64:
            phys[op.reg] = bits;
            break;
          case 32:
            phys[op.reg] = bits; // zero-extends
            break;
          case 16:
            phys[op.reg] = (old & ~uint64_t{0xffff}) | bits;
            break;
          case 8:
            phys[op.reg] = (old & ~uint64_t{0xff}) | bits;
            break;
          default:
            KEQ_ASSERT(false, "writeOp: bad width");
        }
    }

    void
    setArithFlags(ApInt result, bool carry, bool overflow)
    {
        zf = result.isZero();
        sf = result.isNegative();
        cf = carry;
        of = overflow;
    }

    bool
    cond(CondCode cc) const
    {
        switch (cc) {
          case CondCode::E: return zf;
          case CondCode::NE: return !zf;
          case CondCode::B: return cf;
          case CondCode::AE: return !cf;
          case CondCode::BE: return cf || zf;
          case CondCode::A: return !(cf || zf);
          case CondCode::L: return sf != of;
          case CondCode::GE: return sf == of;
          case CondCode::LE: return zf || sf != of;
          case CondCode::G: return !zf && sf == of;
          case CondCode::S: return sf;
          case CondCode::NS: return !sf;
          case CondCode::O: return of;
          case CondCode::NO: return !of;
        }
        return false;
    }
};

Interpreter::Interpreter(const MModule &module, mem::ConcreteMemory &memory)
    : module_(module), memory_(memory)
{
    external_ = [](const std::string &,
                   const std::vector<ApInt> &) { return ApInt(64, 0); };
}

void
Interpreter::setExternalHandler(ExternalCallHandler handler)
{
    external_ = std::move(handler);
}

MExecResult
Interpreter::run(const MFunction &fn, const std::vector<ApInt> &args,
                 size_t max_steps)
{
    size_t budget = max_steps;
    std::vector<std::string> call_trace;
    MExecResult result = runInternal(fn, args, budget, call_trace);
    result.callTrace = std::move(call_trace);
    result.steps = max_steps - budget;
    return result;
}

MExecResult
Interpreter::runInternal(const MFunction &fn,
                         const std::vector<ApInt> &args, size_t &budget,
                         std::vector<std::string> &call_trace)
{
    KEQ_ASSERT(args.size() <= kArgRegs.size(),
               "too many arguments for register passing");
    Machine m;
    m.fn = &fn;
    m.block = &fn.blocks.front();
    for (size_t i = 0; i < args.size(); ++i)
        m.phys[kArgRegs[i]] = args[i].zext();

    auto trap = [](ErrorKind kind) {
        MExecResult r;
        r.outcome = MExecOutcome::Trapped;
        r.error = kind;
        return r;
    };

    auto evalAddress = [&](const MAddress &addr) -> uint64_t {
        uint64_t base = 0;
        switch (addr.baseKind) {
          case MAddress::BaseKind::Reg:
            base = m.readOp(addr.baseReg).zextTo(64).zext();
            break;
          case MAddress::BaseKind::Global: {
            const mem::MemoryObject *object =
                memory_.layout().find(addr.global);
            KEQ_ASSERT(object != nullptr,
                       "unknown global " + addr.global);
            base = object->base;
            break;
          }
          case MAddress::BaseKind::FrameIndex: {
            const mem::MemoryObject *object = memory_.layout().find(
                fn.frame[static_cast<size_t>(addr.frameIndex)]
                    .slotName);
            KEQ_ASSERT(object != nullptr, "frame slot missing");
            base = object->base;
            break;
          }
          case MAddress::BaseKind::None:
            break;
        }
        if (addr.hasIndex())
            base += m.readOp(addr.indexReg).zextTo(64).zext() *
                    addr.scale;
        return base + static_cast<uint64_t>(addr.disp);
    };

    while (true) {
        if (budget == 0)
            return {};
        --budget;
        KEQ_ASSERT(m.index < m.block->insts.size(),
                   "fell off machine block " + m.block->name);
        const MInst &inst = m.block->insts[m.index];

        switch (inst.op) {
          case MOpcode::PHI: {
            std::map<std::string, ApInt> updates;
            size_t i = m.index;
            for (; i < m.block->insts.size() &&
                   m.block->insts[i].op == MOpcode::PHI;
                 ++i) {
                const MInst &phi = m.block->insts[i];
                bool found = false;
                for (const auto &[value, pred] : phi.incoming) {
                    if (pred == m.cameFrom) {
                        updates[phi.ops[0].reg] = m.readOp(value);
                        found = true;
                        break;
                    }
                }
                KEQ_ASSERT(found, "PHI without incoming for " +
                                      m.cameFrom);
            }
            for (auto &[name, value] : updates)
                m.virt[name] = value;
            m.index = i;
            continue;
          }
          case MOpcode::COPY:
          case MOpcode::MOVri:
            m.writeOp(inst.ops[0],
                      m.readOp(inst.ops[1]).truncTo(inst.ops[0].width));
            break;
          case MOpcode::MOVZXrr:
            m.writeOp(inst.ops[0],
                      m.readOp(inst.ops[1]).zextTo(inst.ops[0].width));
            break;
          case MOpcode::MOVSXrr:
            m.writeOp(inst.ops[0],
                      m.readOp(inst.ops[1]).sextTo(inst.ops[0].width));
            break;
          case MOpcode::LEA:
            m.writeOp(inst.ops[0],
                      ApInt(64, evalAddress(inst.addr))
                          .truncTo(inst.ops[0].width));
            break;
          case MOpcode::MOVrm:
          case MOpcode::MOVZXrm:
          case MOpcode::MOVSXrm: {
            uint64_t address = evalAddress(inst.addr);
            unsigned size = inst.width / 8;
            mem::ConcreteAccess access = memory_.read(address, size);
            if (!access.ok)
                return trap(ErrorKind::OutOfBounds);
            ApInt value = access.value;
            if (inst.op == MOpcode::MOVZXrm)
                value = value.zextTo(inst.ops[0].width);
            else if (inst.op == MOpcode::MOVSXrm)
                value = value.sextTo(inst.ops[0].width);
            m.writeOp(inst.ops[0], value);
            break;
          }
          case MOpcode::MOVmr:
          case MOpcode::MOVmi: {
            uint64_t address = evalAddress(inst.addr);
            ApInt value = m.readOp(inst.ops[0]).truncTo(inst.width);
            if (!memory_.write(address, value))
                return trap(ErrorKind::OutOfBounds);
            break;
          }
          case MOpcode::ADDrr:
          case MOpcode::ADDri: {
            ApInt a = m.readOp(inst.ops[1]);
            ApInt b = m.readOp(inst.ops[2]);
            ApInt r = a.add(b);
            m.writeOp(inst.ops[0], r);
            m.setArithFlags(r, a.addOverflowUnsigned(b),
                            a.addOverflowSigned(b));
            break;
          }
          case MOpcode::SUBrr:
          case MOpcode::SUBri: {
            ApInt a = m.readOp(inst.ops[1]);
            ApInt b = m.readOp(inst.ops[2]);
            ApInt r = a.sub(b);
            m.writeOp(inst.ops[0], r);
            m.setArithFlags(r, a.subOverflowUnsigned(b),
                            a.subOverflowSigned(b));
            break;
          }
          case MOpcode::IMULrr:
          case MOpcode::IMULri: {
            ApInt a = m.readOp(inst.ops[1]);
            ApInt b = m.readOp(inst.ops[2]);
            m.writeOp(inst.ops[0], a.mul(b));
            m.setArithFlags(a.mul(b), false, false); // undefined: pick 0
            break;
          }
          case MOpcode::ANDrr:
          case MOpcode::ANDri:
          case MOpcode::ORrr:
          case MOpcode::ORri:
          case MOpcode::XORrr:
          case MOpcode::XORri: {
            ApInt a = m.readOp(inst.ops[1]);
            ApInt b = m.readOp(inst.ops[2]);
            ApInt r = (inst.op == MOpcode::ANDrr ||
                       inst.op == MOpcode::ANDri)
                          ? a.and_(b)
                          : (inst.op == MOpcode::ORrr ||
                             inst.op == MOpcode::ORri)
                                ? a.or_(b)
                                : a.xor_(b);
            m.writeOp(inst.ops[0], r);
            m.setArithFlags(r, false, false);
            break;
          }
          case MOpcode::SHLri:
          case MOpcode::SHRri:
          case MOpcode::SARri:
          case MOpcode::SHLrr:
          case MOpcode::SHRrr:
          case MOpcode::SARrr: {
            ApInt a = m.readOp(inst.ops[1]);
            ApInt count = m.readOp(inst.ops[2]);
            unsigned w = a.width();
            uint64_t masked = count.zext() & (w == 64 ? 63 : 31);
            ApInt shift(w, masked);
            ApInt r = (inst.op == MOpcode::SHLri ||
                       inst.op == MOpcode::SHLrr)
                          ? a.shl(shift)
                          : (inst.op == MOpcode::SHRri ||
                             inst.op == MOpcode::SHRrr)
                                ? a.lshr(shift)
                                : a.ashr(shift);
            m.writeOp(inst.ops[0], r);
            m.zf = r.isZero();
            m.sf = r.isNegative();
            m.cf = false; // undefined: pick 0
            m.of = false;
            break;
          }
          case MOpcode::NEGr: {
            ApInt a = m.readOp(inst.ops[1]);
            ApInt r = a.neg();
            m.writeOp(inst.ops[0], r);
            m.setArithFlags(r, !a.isZero(),
                            a == ApInt::signedMin(a.width()));
            break;
          }
          case MOpcode::NOTr:
            m.writeOp(inst.ops[0], m.readOp(inst.ops[1]).not_());
            break;
          case MOpcode::INCr:
          case MOpcode::DECr: {
            ApInt a = m.readOp(inst.ops[1]);
            ApInt one(a.width(), 1);
            bool is_inc = inst.op == MOpcode::INCr;
            ApInt r = is_inc ? a.add(one) : a.sub(one);
            bool carry = m.cf; // preserved
            m.writeOp(inst.ops[0], r);
            m.setArithFlags(r, carry,
                            is_inc ? a.addOverflowSigned(one)
                                   : a.subOverflowSigned(one));
            break;
          }
          case MOpcode::CDQ: {
            unsigned w = inst.width;
            ApInt a = m.readOp(MOperand::physReg("rax", w));
            ApInt sign = a.isNegative() ? ApInt::allOnes(w)
                                        : ApInt(w, 0);
            m.writeOp(MOperand::physReg("rdx", w), sign);
            break;
          }
          case MOpcode::DIV:
          case MOpcode::IDIV: {
            unsigned w = inst.width;
            KEQ_ASSERT(w <= 32, "division wider than 32 bits");
            ApInt divisor = m.readOp(inst.ops[0]);
            if (divisor.isZero())
                return trap(ErrorKind::DivByZero);
            ApInt lo = m.readOp(MOperand::physReg("rax", w));
            ApInt hi = m.readOp(MOperand::physReg("rdx", w));
            uint64_t dividend_bits = (hi.zext() << w) | lo.zext();
            ApInt dividend(2 * w, dividend_bits);
            bool is_signed = inst.op == MOpcode::IDIV;
            ApInt wide = is_signed ? divisor.sextTo(2 * w)
                                   : divisor.zextTo(2 * w);
            ApInt quotient =
                is_signed ? dividend.sdiv(wide) : dividend.udiv(wide);
            ApInt remainder =
                is_signed ? dividend.srem(wide) : dividend.urem(wide);
            ApInt narrow = quotient.truncTo(w);
            bool fits = is_signed
                            ? narrow.sextTo(2 * w) == quotient
                            : narrow.zextTo(2 * w) == quotient;
            if (!fits)
                return trap(ErrorKind::DivByZero);
            m.writeOp(MOperand::physReg("rax", w), narrow);
            m.writeOp(MOperand::physReg("rdx", w),
                      remainder.truncTo(w));
            m.setArithFlags(narrow, false, false); // undefined
            break;
          }
          case MOpcode::CMPrr:
          case MOpcode::CMPri: {
            ApInt a = m.readOp(inst.ops[0]);
            ApInt b = m.readOp(inst.ops[1]);
            m.setArithFlags(a.sub(b), a.subOverflowUnsigned(b),
                            a.subOverflowSigned(b));
            break;
          }
          case MOpcode::TESTrr: {
            ApInt a = m.readOp(inst.ops[0]);
            ApInt b = m.readOp(inst.ops[1]);
            m.setArithFlags(a.and_(b), false, false);
            break;
          }
          case MOpcode::SETcc:
            m.writeOp(inst.ops[0], ApInt(8, m.cond(inst.cc) ? 1 : 0));
            break;
          case MOpcode::JCC:
            if (m.cond(inst.cc)) {
                m.cameFrom = m.block->name;
                m.block = fn.findBlock(inst.target);
                KEQ_ASSERT(m.block != nullptr,
                           "missing block " + inst.target);
                m.index = 0;
                continue;
            }
            break;
          case MOpcode::JMP:
            m.cameFrom = m.block->name;
            m.block = fn.findBlock(inst.target);
            KEQ_ASSERT(m.block != nullptr,
                       "missing block " + inst.target);
            m.index = 0;
            continue;
          case MOpcode::CALL: {
            std::vector<ApInt> call_args;
            for (const MOperand &arg : inst.callArgs)
                call_args.push_back(m.readOp(arg));
            const MFunction *callee = module_.findFunction(inst.target);
            ApInt ret;
            if (callee != nullptr) {
                MExecResult inner =
                    runInternal(*callee, call_args, budget, call_trace);
                if (inner.outcome != MExecOutcome::Returned)
                    return inner;
                ret = inner.value;
            } else {
                ret = external_(inst.target, call_args);
                std::ostringstream os;
                os << inst.target << "(";
                for (size_t i = 0; i < call_args.size(); ++i) {
                    if (i > 0)
                        os << ",";
                    os << call_args[i].toString();
                }
                os << ")=" << ret.toString();
                call_trace.push_back(os.str());
            }
            if (inst.retWidth > 0) {
                m.writeOp(MOperand::physReg("rax", inst.retWidth),
                          ret.zextTo(64).truncTo(inst.retWidth));
            }
            break;
          }
          case MOpcode::UD2:
            return trap(ErrorKind::Unreachable);
          case MOpcode::RET: {
            MExecResult result;
            result.outcome = MExecOutcome::Returned;
            if (fn.retWidth > 0)
                result.value =
                    m.readOp(MOperand::physReg("rax", fn.retWidth));
            return result;
          }
        }
        ++m.index;
    }
}

} // namespace keq::vx86
