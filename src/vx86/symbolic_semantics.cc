#include "src/vx86/symbolic_semantics.h"

#include "src/sem/sync_point.h"
#include "src/support/diagnostics.h"

namespace keq::vx86 {

using sem::ErrorKind;
using sem::Status;
using sem::SymbolicState;
using smt::Kind;
using smt::Term;
using support::ApInt;

namespace {

/** Bool term from an i1 flag term. */
Term
bitIsSet(smt::TermFactory &tf, Term bit)
{
    return tf.mkEq(bit, tf.bvConst(1, 1));
}

/** i1 term from a bool term. */
Term
boolToBit(smt::TermFactory &tf, Term cond)
{
    return tf.mkIte(cond, tf.bvConst(1, 1), tf.bvConst(1, 0));
}

bool
isFlagName(const std::string &name)
{
    return name == "zf" || name == "sf" || name == "cf" || name == "of";
}

} // namespace

SymbolicSemantics::SymbolicSemantics(const MModule &module,
                                     smt::TermFactory &factory,
                                     const mem::MemoryLayout &layout)
    : module_(module), factory_(factory), symMem_(factory, layout)
{}

const MFunction &
SymbolicSemantics::function(const std::string &name) const
{
    const MFunction *fn = module_.findFunction(name);
    KEQ_ASSERT(fn != nullptr, "unknown machine function " + name);
    return *fn;
}

unsigned
SymbolicSemantics::registerWidth(const std::string &function_name,
                                 const std::string &reg) const
{
    if (reg == sem::kReturnValueName)
        return function(function_name).retWidth;
    if (isFlagName(reg))
        return 1;
    if (reg.size() > 3 && reg.substr(0, 3) == "%vr") {
        size_t underscore = reg.rfind('_');
        KEQ_ASSERT(underscore != std::string::npos,
                   "virtual register without width: " + reg);
        return static_cast<unsigned>(
            std::stoul(reg.substr(underscore + 1)));
    }
    std::string canonical;
    unsigned width = 0;
    KEQ_ASSERT(decodePhysReg(reg, canonical, width),
               "unknown x86 register " + reg);
    return width;
}

void
SymbolicSemantics::bindRegister(SymbolicState &state,
                                const std::string &function_name,
                                const std::string &reg, Term value)
{
    KEQ_ASSERT(reg != sem::kReturnValueName,
               "cannot bind the return-value pseudo register");
    unsigned width = registerWidth(function_name, reg);
    KEQ_ASSERT(value.sort().isBitVec() && value.sort().width() == width,
               "bindRegister width mismatch for " + reg);
    if (isFlagName(reg)) {
        state.env[reg] = value;
        return;
    }
    std::string canonical;
    unsigned phys_width = 0;
    if (decodePhysReg(reg, canonical, phys_width)) {
        writeReg(state, MOperand::physReg(canonical, phys_width), value);
        return;
    }
    state.env[reg] = value; // virtual register
}

Term
SymbolicSemantics::readRegister(SymbolicState &state,
                                const std::string &function_name,
                                const std::string &reg)
{
    if (reg == sem::kReturnValueName) {
        KEQ_ASSERT(state.status == Status::Exited,
                   "$ret read on non-exited state");
        return state.result;
    }
    if (isFlagName(reg))
        return flag(state, reg.c_str());
    std::string canonical;
    unsigned width = 0;
    if (decodePhysReg(reg, canonical, width))
        return readOperand(state, MOperand::physReg(canonical, width));
    (void)function_name;
    return readOperand(
        state, MOperand::namedVirtReg(reg, registerWidth(function_name,
                                                         reg)));
}

Term
SymbolicSemantics::readOperand(SymbolicState &state, const MOperand &op)
{
    smt::TermFactory &tf = factory_;
    switch (op.kind) {
      case MOperand::Kind::Imm:
        return tf.bvConst(op.imm);
      case MOperand::Kind::VirtReg: {
        auto it = state.env.find(op.reg);
        if (it != state.env.end())
            return it->second;
        Term fresh =
            tf.freshVar("havoc." + op.reg, smt::Sort::bitVec(op.width));
        state.env[op.reg] = fresh;
        return fresh;
      }
      case MOperand::Kind::PhysReg: {
        auto it = state.env.find(op.reg);
        Term full;
        if (it != state.env.end()) {
            full = it->second;
        } else {
            full = tf.freshVar("havoc." + op.reg, smt::Sort::bitVec(64));
            state.env[op.reg] = full;
        }
        return tf.trunc(full, op.width);
      }
      case MOperand::Kind::None:
        break;
    }
    KEQ_ASSERT(false, "readOperand: bad operand");
    return {};
}

void
SymbolicSemantics::writeReg(SymbolicState &state, const MOperand &op,
                            Term value)
{
    smt::TermFactory &tf = factory_;
    KEQ_ASSERT(value.sort().isBitVec() &&
                   value.sort().width() == op.width,
               "writeReg width mismatch");
    if (op.kind == MOperand::Kind::VirtReg) {
        state.env[op.reg] = value;
        return;
    }
    KEQ_ASSERT(op.kind == MOperand::Kind::PhysReg, "writeReg: not a reg");
    if (op.width == 64) {
        state.env[op.reg] = value;
        return;
    }
    if (op.width == 32) {
        // x86-64: 32-bit writes zero the upper half.
        state.env[op.reg] = tf.zext(value, 64);
        return;
    }
    // 16/8-bit writes merge into the preserved upper bits.
    Term old = readOperand(state, MOperand::physReg(op.reg, 64));
    Term upper = tf.extract(old, 63, op.width);
    state.env[op.reg] = tf.concat(upper, value);
}

Term
SymbolicSemantics::evalAddress(SymbolicState &state, const MFunction &fn,
                               const MAddress &addr)
{
    smt::TermFactory &tf = factory_;
    Term base;
    switch (addr.baseKind) {
      case MAddress::BaseKind::Reg: {
        Term reg = readOperand(state, addr.baseReg);
        base = reg.sort().width() < 64 ? tf.zext(reg, 64) : reg;
        break;
      }
      case MAddress::BaseKind::Global: {
        const mem::MemoryObject *object =
            symMem_.layout().find(addr.global);
        KEQ_ASSERT(object != nullptr, "unknown global " + addr.global);
        base = tf.bvConst(64, object->base);
        break;
      }
      case MAddress::BaseKind::FrameIndex: {
        KEQ_ASSERT(addr.frameIndex >= 0 &&
                       static_cast<size_t>(addr.frameIndex) <
                           fn.frame.size(),
                   "frame index out of range");
        const mem::MemoryObject *object = symMem_.layout().find(
            fn.frame[static_cast<size_t>(addr.frameIndex)].slotName);
        KEQ_ASSERT(object != nullptr, "frame slot missing from layout");
        base = tf.bvConst(64, object->base);
        break;
      }
      case MAddress::BaseKind::None:
        base = tf.bvConst(64, 0);
        break;
    }
    if (addr.hasIndex()) {
        Term index = readOperand(state, addr.indexReg);
        Term wide = index.sort().width() < 64 ? tf.zext(index, 64) : index;
        base = tf.bvAdd(base,
                        tf.bvMul(wide, tf.bvConst(64, addr.scale)));
    }
    if (addr.disp != 0) {
        base = tf.bvAdd(
            base, tf.bvConst(64, static_cast<uint64_t>(addr.disp)));
    }
    return base;
}

Term
SymbolicSemantics::flag(SymbolicState &state, const char *name)
{
    auto it = state.env.find(name);
    if (it != state.env.end())
        return it->second;
    Term fresh = factory_.freshVar(std::string("havoc.") + name,
                                   smt::Sort::bitVec(1));
    state.env[name] = fresh;
    return fresh;
}

void
SymbolicSemantics::setFlag(SymbolicState &state, const char *name,
                           Term bit)
{
    state.env[name] = bit;
}

void
SymbolicSemantics::havocFlag(SymbolicState &state, const char *name)
{
    state.env[name] = factory_.freshVar(std::string("undef.") + name,
                                        smt::Sort::bitVec(1));
    clearCompareShadow(state);
}

void
SymbolicSemantics::clearCompareShadow(SymbolicState &state)
{
    state.env.erase("cc.sub.lhs");
    state.env.erase("cc.sub.rhs");
}

void
SymbolicSemantics::setCompareShadow(SymbolicState &state, Term lhs,
                                    Term rhs)
{
    // After CMP/SUB(a, b), the signed condition codes satisfy the
    // textbook identities  L <=> sf != of <=> a <s b  (etc.). Recording
    // the operands lets condTerm() build bvslt(a, b) directly instead of
    // the sign/overflow-bit formula, which keeps the two languages' path
    // conditions hash-consed to the same term and spares Z3 the
    // expensive bit-level reasoning (pathological with multiplication in
    // the operands).
    state.env["cc.sub.lhs"] = lhs;
    state.env["cc.sub.rhs"] = rhs;
}

void
SymbolicSemantics::setArithFlags(SymbolicState &state, Term result,
                                 Term cf, Term of)
{
    smt::TermFactory &tf = factory_;
    unsigned w = result.sort().width();
    setFlag(state, "zf",
            boolToBit(tf, tf.mkEq(result, tf.bvConst(w, 0))));
    setFlag(state, "sf", tf.extract(result, w - 1, w - 1));
    setFlag(state, "cf", cf);
    setFlag(state, "of", of);
    clearCompareShadow(state);
}

Term
SymbolicSemantics::condTerm(SymbolicState &state, CondCode cc)
{
    smt::TermFactory &tf = factory_;
    // Signed conditions after a CMP/SUB fold to the comparison predicate
    // via the recorded shadow operands (see setCompareShadow).
    auto lhs_it = state.env.find("cc.sub.lhs");
    auto rhs_it = state.env.find("cc.sub.rhs");
    if (lhs_it != state.env.end() && rhs_it != state.env.end()) {
        Term a = lhs_it->second;
        Term b = rhs_it->second;
        switch (cc) {
          case CondCode::E: return tf.mkEq(a, b);
          case CondCode::NE: return tf.mkNot(tf.mkEq(a, b));
          case CondCode::B: return tf.bvUlt(a, b);
          case CondCode::AE: return tf.bvUge(a, b);
          case CondCode::BE: return tf.bvUle(a, b);
          case CondCode::A: return tf.bvUgt(a, b);
          case CondCode::L: return tf.bvSlt(a, b);
          case CondCode::GE: return tf.bvSge(a, b);
          case CondCode::LE: return tf.bvSle(a, b);
          case CondCode::G: return tf.bvSgt(a, b);
          default:
            break; // S/NS/O/NO genuinely read the flag bits
        }
    }
    Term zf = bitIsSet(tf, flag(state, "zf"));
    Term sf = bitIsSet(tf, flag(state, "sf"));
    Term cf = bitIsSet(tf, flag(state, "cf"));
    Term of = bitIsSet(tf, flag(state, "of"));
    switch (cc) {
      case CondCode::E: return zf;
      case CondCode::NE: return tf.mkNot(zf);
      case CondCode::B: return cf;
      case CondCode::AE: return tf.mkNot(cf);
      case CondCode::BE: return tf.mkOr(cf, zf);
      case CondCode::A: return tf.mkNot(tf.mkOr(cf, zf));
      case CondCode::L: return tf.mkNot(tf.mkIff(sf, of));
      case CondCode::GE: return tf.mkIff(sf, of);
      case CondCode::LE:
        return tf.mkOr(zf, tf.mkNot(tf.mkIff(sf, of)));
      case CondCode::G:
        return tf.mkAnd(tf.mkNot(zf), tf.mkIff(sf, of));
      case CondCode::S: return sf;
      case CondCode::NS: return tf.mkNot(sf);
      case CondCode::O: return of;
      case CondCode::NO: return tf.mkNot(of);
    }
    KEQ_ASSERT(false, "condTerm: bad cc");
    return {};
}

sem::SymbolicState
SymbolicSemantics::makeState(const sem::StateSeed &seed,
                             std::map<std::string, smt::Term> env,
                             smt::Term memory, smt::Term path_cond)
{
    const MFunction &fn = function(seed.function);
    SymbolicState state;
    state.status = Status::Running;
    state.function = seed.function;
    state.block = seed.block.empty() ? fn.blocks.front().name : seed.block;
    state.cameFrom = seed.cameFrom;
    state.instIndex = 0;
    state.env = std::move(env);
    state.memory = memory;
    state.pathCond = path_cond;

    if (!seed.afterCallSiteId.empty()) {
        bool found = false;
        for (const MBasicBlock &block : fn.blocks) {
            for (size_t i = 0; i < block.insts.size(); ++i) {
                const MInst &inst = block.insts[i];
                if (inst.op == MOpcode::CALL &&
                    inst.callSiteId == seed.afterCallSiteId) {
                    state.block = block.name;
                    state.instIndex = i + 1;
                    found = true;
                }
            }
        }
        KEQ_ASSERT(found, "unknown call site " + seed.afterCallSiteId);
    }
    return state;
}

std::vector<sem::SymbolicState>
SymbolicSemantics::step(const sem::SymbolicState &state_in)
{
    KEQ_ASSERT(state_in.status == Status::Running,
               "step on non-running state");
    SymbolicState state = state_in;
    smt::TermFactory &tf = factory_;
    const MFunction &fn = function(state.function);
    const MBasicBlock *block = fn.findBlock(state.block);
    KEQ_ASSERT(block != nullptr, "unknown block " + state.block);
    KEQ_ASSERT(state.instIndex < block->insts.size(),
               "fell off machine block " + state.block);
    const MInst &inst = block->insts[state.instIndex];

    auto errorState = [&](ErrorKind kind, Term condition) {
        SymbolicState err = state;
        err.status = Status::Error;
        err.errorKind = kind;
        err.pathCond = tf.mkAnd(state_in.pathCond, condition);
        return err;
    };

    auto advance = [&](SymbolicState s) {
        ++s.instIndex;
        return s;
    };

    switch (inst.op) {
      case MOpcode::PHI: {
        // Execute the block's whole PHI group in one parallel step.
        std::map<std::string, Term> updates;
        size_t i = state.instIndex;
        for (; i < block->insts.size() &&
               block->insts[i].op == MOpcode::PHI;
             ++i) {
            const MInst &phi = block->insts[i];
            bool found = false;
            for (const auto &[value, pred] : phi.incoming) {
                if (pred == state.cameFrom) {
                    updates[phi.ops[0].reg] = readOperand(state, value);
                    found = true;
                    break;
                }
            }
            KEQ_ASSERT(found, "PHI without incoming for " +
                                  state.cameFrom);
        }
        for (auto &[name, term] : updates)
            state.env[name] = term;
        state.instIndex = i;
        return {state};
      }

      case MOpcode::COPY: {
        Term src = readOperand(state, inst.ops[1]);
        // COPY may narrow (sub-register copy); widening must use MOVZX/SX.
        KEQ_ASSERT(src.sort().width() >= inst.ops[0].width,
                   "COPY cannot widen");
        writeReg(state, inst.ops[0], tf.trunc(src, inst.ops[0].width));
        return {advance(state)};
      }

      case MOpcode::MOVri: {
        writeReg(state, inst.ops[0], readOperand(state, inst.ops[1]));
        return {advance(state)};
      }

      case MOpcode::MOVZXrr: {
        Term src = readOperand(state, inst.ops[1]);
        writeReg(state, inst.ops[0], tf.zext(src, inst.ops[0].width));
        return {advance(state)};
      }
      case MOpcode::MOVSXrr: {
        Term src = readOperand(state, inst.ops[1]);
        writeReg(state, inst.ops[0], tf.sext(src, inst.ops[0].width));
        return {advance(state)};
      }

      case MOpcode::LEA: {
        Term address = evalAddress(state, fn, inst.addr);
        writeReg(state, inst.ops[0],
                 tf.trunc(address, inst.ops[0].width));
        return {advance(state)};
      }

      case MOpcode::MOVrm:
      case MOpcode::MOVZXrm:
      case MOpcode::MOVSXrm: {
        Term address = evalAddress(state, fn, inst.addr);
        unsigned mem_bits = inst.width;
        unsigned size = mem_bits / 8;
        mem::AccessCheck check = symMem_.checkAccess(address, size);
        std::vector<SymbolicState> successors;
        if (!check.inBounds.isTrue()) {
            successors.push_back(errorState(
                ErrorKind::OutOfBounds, tf.mkNot(check.inBounds)));
        }
        if (!check.inBounds.isFalse()) {
            Term loaded = symMem_.read(state.memory, address, size);
            Term value = loaded;
            if (inst.op == MOpcode::MOVZXrm)
                value = tf.zext(loaded, inst.ops[0].width);
            else if (inst.op == MOpcode::MOVSXrm)
                value = tf.sext(loaded, inst.ops[0].width);
            writeReg(state, inst.ops[0], value);
            state.pathCond = tf.mkAnd(state.pathCond, check.inBounds);
            successors.push_back(advance(state));
        }
        return successors;
      }

      case MOpcode::MOVmr:
      case MOpcode::MOVmi: {
        Term address = evalAddress(state, fn, inst.addr);
        Term value = readOperand(state, inst.ops[0]);
        unsigned size = inst.width / 8;
        mem::AccessCheck check = symMem_.checkAccess(address, size);
        std::vector<SymbolicState> successors;
        if (!check.inBounds.isTrue()) {
            successors.push_back(errorState(
                ErrorKind::OutOfBounds, tf.mkNot(check.inBounds)));
        }
        if (!check.inBounds.isFalse()) {
            state.memory =
                symMem_.write(state.memory, address, value, size);
            state.pathCond = tf.mkAnd(state.pathCond, check.inBounds);
            successors.push_back(advance(state));
        }
        return successors;
      }

      case MOpcode::ADDrr:
      case MOpcode::ADDri:
      case MOpcode::SUBrr:
      case MOpcode::SUBri: {
        Term a = readOperand(state, inst.ops[1]);
        Term b = readOperand(state, inst.ops[2]);
        bool is_add =
            inst.op == MOpcode::ADDrr || inst.op == MOpcode::ADDri;
        unsigned w = a.sort().width();
        Term r = is_add ? tf.bvAdd(a, b) : tf.bvSub(a, b);
        // Carry/overflow without widening:
        //  ADD: cf = r <u a;          of = sign((a^r) & (b^r)).
        //  SUB: cf = a <u b;          of = sign((a^b) & (a^r)).
        Term cf = is_add ? boolToBit(tf, tf.bvUlt(r, a))
                         : boolToBit(tf, tf.bvUlt(a, b));
        Term of_src = is_add
                          ? tf.bvAnd(tf.bvXor(a, r), tf.bvXor(b, r))
                          : tf.bvAnd(tf.bvXor(a, b), tf.bvXor(a, r));
        Term of = tf.extract(of_src, w - 1, w - 1);
        writeReg(state, inst.ops[0], r);
        setArithFlags(state, r, cf, of);
        if (!is_add)
            setCompareShadow(state, a, b);
        return {advance(state)};
      }

      case MOpcode::IMULrr:
      case MOpcode::IMULri: {
        Term a = readOperand(state, inst.ops[1]);
        Term b = readOperand(state, inst.ops[2]);
        Term r = tf.bvMul(a, b);
        writeReg(state, inst.ops[0], r);
        // x86 leaves zf/sf undefined after imul; cf/of signal overflow,
        // which our lowering never consumes — havoc all four.
        havocFlag(state, "zf");
        havocFlag(state, "sf");
        havocFlag(state, "cf");
        havocFlag(state, "of");
        return {advance(state)};
      }

      case MOpcode::ANDrr:
      case MOpcode::ANDri:
      case MOpcode::ORrr:
      case MOpcode::ORri:
      case MOpcode::XORrr:
      case MOpcode::XORri: {
        Term a = readOperand(state, inst.ops[1]);
        Term b = readOperand(state, inst.ops[2]);
        Term r;
        switch (inst.op) {
          case MOpcode::ANDrr:
          case MOpcode::ANDri:
            r = tf.bvAnd(a, b);
            break;
          case MOpcode::ORrr:
          case MOpcode::ORri:
            r = tf.bvOr(a, b);
            break;
          default:
            r = tf.bvXor(a, b);
            break;
        }
        writeReg(state, inst.ops[0], r);
        setArithFlags(state, r, tf.bvConst(1, 0), tf.bvConst(1, 0));
        return {advance(state)};
      }

      case MOpcode::SHLri:
      case MOpcode::SHRri:
      case MOpcode::SARri:
      case MOpcode::SHLrr:
      case MOpcode::SHRrr:
      case MOpcode::SARrr: {
        Term a = readOperand(state, inst.ops[1]);
        Term count = readOperand(state, inst.ops[2]);
        unsigned w = a.sort().width();
        // x86 masks the count to 5 bits (6 for 64-bit operands).
        unsigned mask = w == 64 ? 63 : 31;
        Term masked = tf.bvAnd(
            count.sort().width() == w ? count : tf.zext(count, w),
            tf.bvConst(w, mask));
        Term r;
        if (inst.op == MOpcode::SHLri || inst.op == MOpcode::SHLrr)
            r = tf.bvShl(a, masked);
        else if (inst.op == MOpcode::SHRri || inst.op == MOpcode::SHRrr)
            r = tf.bvLShr(a, masked);
        else
            r = tf.bvAShr(a, masked);
        writeReg(state, inst.ops[0], r);
        // zf/sf are defined (for nonzero counts; our lowering only
        // branches after an explicit CMP/TEST anyway); cf/of havoc.
        setFlag(state, "zf",
                boolToBit(tf, tf.mkEq(r, tf.bvConst(w, 0))));
        setFlag(state, "sf", tf.extract(r, w - 1, w - 1));
        havocFlag(state, "cf");
        havocFlag(state, "of");
        return {advance(state)};
      }

      case MOpcode::NEGr: {
        Term a = readOperand(state, inst.ops[1]);
        unsigned w = a.sort().width();
        Term r = tf.bvNeg(a);
        writeReg(state, inst.ops[0], r);
        Term cf = boolToBit(
            tf, tf.mkNot(tf.mkEq(a, tf.bvConst(w, 0))));
        Term of = boolToBit(
            tf, tf.mkEq(a, tf.bvConst(ApInt::signedMin(w))));
        setArithFlags(state, r, cf, of);
        return {advance(state)};
      }

      case MOpcode::NOTr: {
        Term a = readOperand(state, inst.ops[1]);
        writeReg(state, inst.ops[0], tf.bvNot(a));
        // NOT does not touch the flags.
        return {advance(state)};
      }

      case MOpcode::INCr:
      case MOpcode::DECr: {
        Term a = readOperand(state, inst.ops[1]);
        unsigned w = a.sort().width();
        Term one = tf.bvConst(w, 1);
        bool is_inc = inst.op == MOpcode::INCr;
        Term r = is_inc ? tf.bvAdd(a, one) : tf.bvSub(a, one);
        Term of_src = is_inc
                          ? tf.bvAnd(tf.bvXor(a, r), tf.bvXor(one, r))
                          : tf.bvAnd(tf.bvXor(a, one), tf.bvXor(a, r));
        writeReg(state, inst.ops[0], r);
        // INC/DEC preserve cf.
        Term cf = flag(state, "cf");
        setArithFlags(state, r, cf, tf.extract(of_src, w - 1, w - 1));
        return {advance(state)};
      }

      case MOpcode::CDQ: {
        unsigned w = inst.width;
        Term a = readOperand(state, MOperand::physReg("rax", w));
        Term sign = tf.extract(a, w - 1, w - 1);
        writeReg(state, MOperand::physReg("rdx", w), tf.sext(sign, w));
        return {advance(state)};
      }

      case MOpcode::DIV:
      case MOpcode::IDIV: {
        unsigned w = inst.width;
        KEQ_ASSERT(w <= 32, "division wider than 32 bits unsupported");
        Term divisor = readOperand(state, inst.ops[0]);
        Term lo = readOperand(state, MOperand::physReg("rax", w));
        Term hi = readOperand(state, MOperand::physReg("rdx", w));
        Term dividend = tf.concat(hi, lo); // 2w bits
        bool is_signed = inst.op == MOpcode::IDIV;
        Term div_zero = tf.mkEq(divisor, tf.bvConst(w, 0));
        Term narrow, rem_narrow, fault;
        if (is_signed && dividend.kind() == smt::Kind::SExt &&
            dividend.operand(0).sort().width() == w) {
            // CDQ/CQO preceded the IDIV, so the dividend is sext(x).
            // Then quotient == sdiv(x, divisor) at width w exactly, and
            // #DE fires iff divisor == 0 or x == INT_MIN && divisor ==
            // -1 (the only non-fitting quotient). Keeping the terms at
            // width w spares the SMT solver the 2w-bit division the
            // paper notes Z3 struggles with.
            Term x = dividend.operand(0);
            narrow = tf.bvSDiv(x, divisor);
            rem_narrow = tf.bvSRem(x, divisor);
            Term overflow = tf.mkAnd(
                tf.mkEq(x, tf.bvConst(ApInt::signedMin(w))),
                tf.mkEq(divisor, tf.bvConst(ApInt::allOnes(w))));
            fault = tf.mkOr(div_zero, overflow);
        } else if (!is_signed && dividend.kind() == smt::Kind::ZExt &&
                   dividend.operand(0).sort().width() == w) {
            // rdx was zeroed: quotient always fits.
            Term x = dividend.operand(0);
            narrow = tf.bvUDiv(x, divisor);
            rem_narrow = tf.bvURem(x, divisor);
            fault = div_zero;
        } else {
            // General rdx:rax dividend.
            Term wide_divisor = is_signed ? tf.sext(divisor, 2 * w)
                                          : tf.zext(divisor, 2 * w);
            Term quotient = is_signed
                                ? tf.bvSDiv(dividend, wide_divisor)
                                : tf.bvUDiv(dividend, wide_divisor);
            Term remainder = is_signed
                                 ? tf.bvSRem(dividend, wide_divisor)
                                 : tf.bvURem(dividend, wide_divisor);
            narrow = tf.trunc(quotient, w);
            rem_narrow = tf.trunc(remainder, w);
            // #DE also fires when the quotient does not fit.
            Term fits = is_signed
                            ? tf.mkEq(tf.sext(narrow, 2 * w), quotient)
                            : tf.mkEq(tf.zext(narrow, 2 * w), quotient);
            fault = tf.mkOr(div_zero, tf.mkNot(fits));
        }
        std::vector<SymbolicState> successors;
        if (!fault.isFalse()) {
            successors.push_back(
                errorState(ErrorKind::DivByZero, fault));
        }
        Term ok = tf.mkNot(fault);
        writeReg(state, MOperand::physReg("rax", w), narrow);
        writeReg(state, MOperand::physReg("rdx", w), rem_narrow);
        havocFlag(state, "zf");
        havocFlag(state, "sf");
        havocFlag(state, "cf");
        havocFlag(state, "of");
        state.pathCond = tf.mkAnd(state.pathCond, ok);
        if (!state.pathCond.isFalse())
            successors.push_back(advance(state));
        return successors;
      }

      case MOpcode::CMPrr:
      case MOpcode::CMPri: {
        Term a = readOperand(state, inst.ops[0]);
        Term b = readOperand(state, inst.ops[1]);
        unsigned w = a.sort().width();
        Term r = tf.bvSub(a, b);
        Term cf = boolToBit(tf, tf.bvUlt(a, b));
        Term of = tf.extract(
            tf.bvAnd(tf.bvXor(a, b), tf.bvXor(a, r)), w - 1, w - 1);
        setArithFlags(state, r, cf, of);
        setCompareShadow(state, a, b);
        return {advance(state)};
      }

      case MOpcode::TESTrr: {
        Term a = readOperand(state, inst.ops[0]);
        Term b = readOperand(state, inst.ops[1]);
        Term r = tf.bvAnd(a, b);
        setArithFlags(state, r, tf.bvConst(1, 0), tf.bvConst(1, 0));
        return {advance(state)};
      }

      case MOpcode::SETcc: {
        Term cond = condTerm(state, inst.cc);
        writeReg(state, inst.ops[0],
                 tf.mkIte(cond, tf.bvConst(8, 1), tf.bvConst(8, 0)));
        return {advance(state)};
      }

      case MOpcode::JCC: {
        Term cond = condTerm(state, inst.cc);
        std::vector<SymbolicState> successors;
        if (!cond.isFalse()) {
            SymbolicState taken = state;
            taken.pathCond = tf.mkAnd(state.pathCond, cond);
            taken.cameFrom = state.block;
            taken.block = inst.target;
            taken.instIndex = 0;
            successors.push_back(std::move(taken));
        }
        if (!cond.isTrue()) {
            SymbolicState fall = state;
            fall.pathCond = tf.mkAnd(state.pathCond, tf.mkNot(cond));
            ++fall.instIndex;
            successors.push_back(std::move(fall));
        }
        return successors;
      }

      case MOpcode::JMP: {
        state.cameFrom = state.block;
        state.block = inst.target;
        state.instIndex = 0;
        return {state};
      }

      case MOpcode::CALL: {
        state.status = Status::AtCall;
        state.callee = inst.target;
        state.callSiteId = inst.callSiteId;
        for (const MOperand &arg : inst.callArgs)
            state.callArgs.push_back(readOperand(state, arg));
        return {state};
      }

      case MOpcode::RET: {
        state.status = Status::Exited;
        if (fn.retWidth > 0) {
            state.result = readOperand(
                state, MOperand::physReg("rax", fn.retWidth));
        }
        return {state};
      }

      case MOpcode::UD2:
        return {errorState(ErrorKind::Unreachable, tf.trueTerm())};
    }
    KEQ_ASSERT(false, "step: unhandled machine opcode");
    return {};
}

} // namespace keq::vx86
