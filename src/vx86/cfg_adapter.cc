#include "src/vx86/cfg_adapter.h"

namespace keq::vx86 {

analysis::Cfg
buildCfg(const MFunction &fn)
{
    analysis::Cfg cfg;
    for (const MBasicBlock &block : fn.blocks)
        cfg.addBlock(block.name);
    for (const MBasicBlock &block : fn.blocks) {
        size_t from = cfg.indexOf(block.name);
        for (const std::string &succ : block.successors())
            cfg.addEdge(from, cfg.indexOf(succ));
    }
    return cfg;
}

namespace {

const char *const kFlagNames[] = {"zf", "sf", "cf", "of"};

/** Caller-saved registers clobbered by a CALL (SysV x86-64). */
const char *const kCallerSaved[] = {"rax", "rcx", "rdx", "rsi", "rdi",
                                    "r8",  "r9",  "r10", "r11"};

} // namespace

void
minstUseDef(const MInst &inst, const MFunction &fn,
            std::set<std::string> &use, std::set<std::string> &def)
{
    auto use_op = [&](const MOperand &op) {
        if (op.isReg())
            use.insert(op.reg);
    };
    auto use_addr = [&](const MAddress &addr) {
        if (addr.baseKind == MAddress::BaseKind::Reg)
            use_op(addr.baseReg);
        if (addr.hasIndex())
            use_op(addr.indexReg);
    };
    auto def_op = [&](const MOperand &op) {
        if (op.isReg())
            def.insert(op.reg);
    };
    auto def_flags = [&]() {
        for (const char *flag : kFlagNames)
            def.insert(flag);
    };
    auto use_flags = [&]() {
        for (const char *flag : kFlagNames)
            use.insert(flag);
    };

    switch (inst.op) {
      case MOpcode::PHI:
        // Phi reads belong to the incoming edges; callers handle them.
        def_op(inst.ops[0]);
        break;
      case MOpcode::COPY:
      case MOpcode::MOVri:
      case MOpcode::MOVZXrr:
      case MOpcode::MOVSXrr:
        use_op(inst.ops[1]);
        def_op(inst.ops[0]);
        break;
      case MOpcode::LEA:
      case MOpcode::MOVrm:
      case MOpcode::MOVZXrm:
      case MOpcode::MOVSXrm:
        use_addr(inst.addr);
        def_op(inst.ops[0]);
        break;
      case MOpcode::MOVmr:
      case MOpcode::MOVmi:
        use_addr(inst.addr);
        use_op(inst.ops[0]);
        break;
      case MOpcode::ADDrr:
      case MOpcode::ADDri:
      case MOpcode::SUBrr:
      case MOpcode::SUBri:
      case MOpcode::IMULrr:
      case MOpcode::IMULri:
      case MOpcode::ANDrr:
      case MOpcode::ANDri:
      case MOpcode::ORrr:
      case MOpcode::ORri:
      case MOpcode::XORrr:
      case MOpcode::XORri:
      case MOpcode::SHLri:
      case MOpcode::SHRri:
      case MOpcode::SARri:
      case MOpcode::SHLrr:
      case MOpcode::SHRrr:
      case MOpcode::SARrr:
        use_op(inst.ops[1]);
        use_op(inst.ops[2]);
        def_op(inst.ops[0]);
        def_flags();
        break;
      case MOpcode::NEGr:
      case MOpcode::NOTr:
        use_op(inst.ops[1]);
        def_op(inst.ops[0]);
        if (inst.op == MOpcode::NEGr)
            def_flags();
        break;
      case MOpcode::INCr:
      case MOpcode::DECr:
        use_op(inst.ops[1]);
        use.insert("cf"); // preserved, i.e. both read and rewritten
        def_op(inst.ops[0]);
        def_flags();
        break;
      case MOpcode::CDQ:
        use.insert("rax");
        def.insert("rdx");
        break;
      case MOpcode::DIV:
      case MOpcode::IDIV:
        use_op(inst.ops[0]);
        use.insert("rax");
        use.insert("rdx");
        def.insert("rax");
        def.insert("rdx");
        def_flags();
        break;
      case MOpcode::CMPrr:
      case MOpcode::CMPri:
      case MOpcode::TESTrr:
        use_op(inst.ops[0]);
        use_op(inst.ops[1]);
        def_flags();
        break;
      case MOpcode::SETcc:
        use_flags();
        def_op(inst.ops[0]);
        break;
      case MOpcode::JCC:
        use_flags();
        break;
      case MOpcode::JMP:
      case MOpcode::UD2:
        break;
      case MOpcode::CALL:
        for (const MOperand &arg : inst.callArgs)
            use_op(arg);
        for (const char *reg : kCallerSaved)
            def.insert(reg);
        def_flags();
        break;
      case MOpcode::RET:
        if (fn.retWidth > 0)
            use.insert("rax");
        break;
    }
}

std::vector<analysis::BlockUseDef>
useDefFacts(const MFunction &fn, const analysis::Cfg &cfg)
{
    std::vector<analysis::BlockUseDef> facts(cfg.numBlocks());
    for (const MBasicBlock &block : fn.blocks) {
        analysis::BlockUseDef &fact = facts[cfg.indexOf(block.name)];
        std::set<std::string> local_defs;
        for (const MInst &inst : block.insts) {
            if (inst.op == MOpcode::PHI) {
                for (const auto &[value, pred] : inst.incoming) {
                    if (value.isReg()) {
                        fact.phiUse[cfg.indexOf(pred)].insert(value.reg);
                    }
                }
            }
            std::set<std::string> use, def;
            minstUseDef(inst, fn, use, def);
            for (const std::string &name : use) {
                if (!local_defs.count(name))
                    fact.use.insert(name);
            }
            for (const std::string &name : def) {
                local_defs.insert(name);
                fact.def.insert(name);
            }
        }
    }
    return facts;
}

} // namespace keq::vx86
