#ifndef KEQ_CONFORMANCE_CORPUS_H
#define KEQ_CONFORMANCE_CORPUS_H

/**
 * @file
 * The checked-in differential conformance corpus: the .ll files under
 * tests/corpus.
 *
 * Every corpus file is a self-contained LLVM module annotated with
 * comment directives the runner consumes:
 *
 *   ; EXPECT: validated | rejected | gap
 *   ; ISEL: merge-stores fold-ext-load bug=waw bug=loadwiden
 *
 * `EXPECT` states the verdict the full pipeline must reach on every
 * configuration cell:
 *
 *   validated — the lowering proves Equivalent/Refines
 *               (driver::Outcome::Succeeded);
 *   rejected  — the checker must refuse the lowering (a `; ISEL: bug=`
 *               directive reintroduces a Section 5.2 miscompile, so
 *               NotValidated is the *correct* answer);
 *   gap       — the module parses and verifies but the pipeline cannot
 *               decide it (unsupported fragment or a known
 *               completeness gap; driver::Outcome::Unsupported/Other).
 *
 * `ISEL` toggles lowering options per file, which is how the corpus
 * pins the two reintroducible miscompiles without a separate harness.
 */

#include <string>
#include <vector>

#include "src/isel/isel.h"

namespace keq::conformance {

/** What a corpus file promises the pipeline will conclude. */
enum class Expect : uint8_t { Validated, Rejected, Gap };

const char *expectName(Expect expect);

/** One parsed corpus file (annotations + module text). */
struct CorpusCase
{
    std::string path; ///< Full path (diagnostics).
    std::string name; ///< Basename without extension, e.g. "gep_nested".
    std::string source;
    Expect expect = Expect::Validated;
    isel::IselOptions isel;
};

/**
 * Parses the directive header of one corpus file. Throws
 * support::Error when the EXPECT directive is missing or malformed —
 * an unannotated corpus file is a corpus bug, not a skip.
 */
CorpusCase parseCorpusCase(const std::string &path,
                           const std::string &source);

/**
 * Loads every *.ll file under @p dir (sorted by name, so reports and
 * coverage ledgers are stable across filesystems). Throws
 * support::Error when the directory cannot be read or is empty.
 */
std::vector<CorpusCase> loadCorpusDir(const std::string &dir);

} // namespace keq::conformance

#endif // KEQ_CONFORMANCE_CORPUS_H
