#ifndef KEQ_CONFORMANCE_RUNNER_H
#define KEQ_CONFORMANCE_RUNNER_H

/**
 * @file
 * The differential conformance runner (DESIGN.md §12).
 *
 * Drives every corpus file through the full validation stack in a
 * *configuration matrix* — in-process vs sandboxed solving, solver
 * cache on/off, SMT optimization stack on/off, 1 vs 4 worker threads —
 * and asserts two properties per file:
 *
 *   1. matrix consistency — every cell produces the identical canonical
 *      report (outcome, verdict kind, failure class, per-function
 *      counters). Execution configuration must never be able to change
 *      a verdict; this is the same transparency contract the sandbox
 *      and smt-opt benches assert, checked here over hand-written
 *      adversarial inputs instead of the synthetic Figure 6 corpus.
 *   2. expectation match — the reference cell's verdict agrees with the
 *      file's `; EXPECT:` annotation.
 *
 * The runner also feeds every module through the CoverageMap ledger, so
 * a conformance run reports (and the ctest gate asserts) which opcodes,
 * icmp predicates and structural shapes the corpus actually exercised.
 */

#include <string>
#include <vector>

#include "src/conformance/corpus.h"
#include "src/driver/pipeline.h"
#include "src/llvmir/coverage.h"

namespace keq::conformance {

/** One execution-configuration cell of the conformance matrix. */
struct MatrixCell
{
    bool sandbox = false;
    bool cache = true;
    bool smtOpt = true;
    unsigned jobs = 1;
    /**
     * Solver strategy lanes raced per query; 1 keeps the stack
     * byte-identical to the pre-portfolio pipeline. The portfolio
     * parity suite pins lanes>1 cells against the reference cell.
     */
    unsigned portfolioLanes = 1;

    /** "sandbox=0 cache=1 smtopt=1 jobs=4 lanes=1" (stable key). */
    std::string label() const;
};

/** The full 2x2x2x2 matrix (16 cells). */
std::vector<MatrixCell> fullMatrix();

/**
 * A 4-cell diagonal for time-boxed runs: the reference cell, the
 * all-off cell, and the two extreme sandbox/parallel cells.
 */
std::vector<MatrixCell> quickMatrix();

struct RunnerOptions
{
    std::vector<MatrixCell> matrix = fullMatrix();
    /**
     * keq-solver-worker binary for the sandbox cells; empty uses
     * smt::discoverWorkerBinary. When no worker can be found the
     * sandbox cells still run (the pipeline degrades to in-process
     * solving and the report flags degradedSandbox), so the suite
     * stays runnable on stripped installs.
     */
    std::string workerPath;
};

/** Verdict of one (file, cell) pair. */
struct CellResult
{
    std::string cell;
    driver::Outcome outcome = driver::Outcome::Other;
    checker::VerdictKind kind = checker::VerdictKind::NotValidated;
    /** ModuleReport::canonicalSummary (the identity witness). */
    std::string canonical;
};

struct CaseResult
{
    std::string name;
    Expect expect = Expect::Validated;
    /** Reference-cell verdict (first matrix cell). */
    driver::Outcome outcome = driver::Outcome::Other;
    checker::VerdictKind kind = checker::VerdictKind::NotValidated;
    bool matrixConsistent = true;
    bool expectMatched = true;
    std::string detail; ///< First mismatch description; empty when ok.
    std::vector<CellResult> cells;
};

struct ConformanceReport
{
    std::vector<CaseResult> cases;
    CoverageMap coverage;
    size_t cellsPerCase = 0;
    /** True when a sandbox cell ran without a worker binary. */
    bool degradedSandbox = false;
    double seconds = 0.0;

    size_t expectMismatches() const;
    size_t matrixInconsistencies() const;
    /** Every case matched its EXPECT and was cell-consistent? */
    bool allOk() const;
    std::string renderTable() const;
};

/** Runs the matrix over @p cases. */
ConformanceReport runConformance(const std::vector<CorpusCase> &cases,
                                 const RunnerOptions &options);

/**
 * Validates one corpus case in one cell. Exposed for the parity tests,
 * which byte-compare outcome sections across hand-picked cells.
 * @p degraded, when non-null, is set to true if the cell requested the
 * sandbox but the pipeline fell back to in-process solving (worker
 * binary missing or broken).
 */
driver::ModuleReport runCase(const CorpusCase &corpus_case,
                             const MatrixCell &cell,
                             const RunnerOptions &options,
                             bool *degraded = nullptr);

/**
 * The `"outcomes": {...}` section of `keqc --stats-json`, rendered
 * byte-identically, so tests can compare configuration cells exactly
 * the way dashboards diff stats dumps.
 */
std::string outcomeSectionJson(const driver::ModuleReport &report);

/** Does @p report satisfy @p expect? (all-functions quantification) */
bool matchesExpect(const driver::ModuleReport &report, Expect expect);

} // namespace keq::conformance

#endif // KEQ_CONFORMANCE_RUNNER_H
