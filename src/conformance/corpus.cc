#include "src/conformance/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/support/diagnostics.h"

namespace keq::conformance {

using support::Error;

const char *
expectName(Expect expect)
{
    switch (expect) {
    case Expect::Validated: return "validated";
    case Expect::Rejected: return "rejected";
    case Expect::Gap: return "gap";
    }
    return "?";
}

namespace {

/** Splits a directive payload on whitespace. */
std::vector<std::string>
words(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string word;
    while (in >> word)
        out.push_back(word);
    return out;
}

/** Returns the payload of "; KEY: payload" or nullopt. */
bool
directive(const std::string &line, const std::string &key,
          std::string &payload)
{
    std::string prefix = "; " + key + ":";
    if (line.rfind(prefix, 0) != 0)
        return false;
    payload = line.substr(prefix.size());
    return true;
}

} // namespace

CorpusCase
parseCorpusCase(const std::string &path, const std::string &source)
{
    CorpusCase result;
    result.path = path;
    result.name = std::filesystem::path(path).stem().string();
    result.source = source;

    bool saw_expect = false;
    std::istringstream lines(source);
    std::string line;
    while (std::getline(lines, line)) {
        std::string payload;
        if (directive(line, "EXPECT", payload)) {
            std::vector<std::string> parts = words(payload);
            if (parts.size() != 1)
                throw Error(path + ": malformed EXPECT directive '" +
                            payload + "'");
            if (saw_expect)
                throw Error(path + ": duplicate EXPECT directive");
            saw_expect = true;
            if (parts[0] == "validated")
                result.expect = Expect::Validated;
            else if (parts[0] == "rejected")
                result.expect = Expect::Rejected;
            else if (parts[0] == "gap")
                result.expect = Expect::Gap;
            else
                throw Error(path + ": unknown EXPECT verdict '" +
                            parts[0] + "'");
        } else if (directive(line, "ISEL", payload)) {
            for (const std::string &word : words(payload)) {
                if (word == "merge-stores") {
                    result.isel.mergeStores = true;
                } else if (word == "fold-ext-load") {
                    result.isel.foldExtLoad = true;
                } else if (word == "bug=waw") {
                    result.isel.bug = isel::Bug::StoreMergeWAW;
                    result.isel.mergeStores = true;
                } else if (word == "bug=loadwiden") {
                    result.isel.bug = isel::Bug::LoadWidening;
                    result.isel.foldExtLoad = true;
                } else {
                    throw Error(path + ": unknown ISEL directive '" +
                                word + "'");
                }
            }
        }
    }
    if (!saw_expect)
        throw Error(path + ": missing '; EXPECT:' directive");
    return result;
}

std::vector<CorpusCase>
loadCorpusDir(const std::string &dir)
{
    std::error_code ec;
    std::vector<std::filesystem::path> paths;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".ll")
            paths.push_back(entry.path());
    }
    if (ec)
        throw Error("conformance corpus: cannot read directory '" +
                    dir + "': " + ec.message());
    if (paths.empty())
        throw Error("conformance corpus: no .ll files under '" + dir +
                    "'");
    std::sort(paths.begin(), paths.end());

    std::vector<CorpusCase> cases;
    cases.reserve(paths.size());
    for (const std::filesystem::path &path : paths) {
        std::ifstream file(path);
        if (!file)
            throw Error("conformance corpus: cannot open '" +
                        path.string() + "'");
        std::stringstream buffer;
        buffer << file.rdbuf();
        cases.push_back(parseCorpusCase(path.string(), buffer.str()));
    }
    return cases;
}

} // namespace keq::conformance
