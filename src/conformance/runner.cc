#include "src/conformance/runner.h"

#include <chrono>
#include <sstream>

#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/support/diagnostics.h"

namespace keq::conformance {

std::string
MatrixCell::label() const
{
    std::ostringstream os;
    os << "sandbox=" << (sandbox ? 1 : 0) << " cache=" << (cache ? 1 : 0)
       << " smtopt=" << (smtOpt ? 1 : 0) << " jobs=" << jobs
       << " lanes=" << portfolioLanes;
    return os.str();
}

std::vector<MatrixCell>
fullMatrix()
{
    std::vector<MatrixCell> cells;
    for (bool sandbox : {false, true})
        for (bool cache : {true, false})
            for (bool smt_opt : {true, false})
                for (unsigned jobs : {1u, 4u})
                    cells.push_back({sandbox, cache, smt_opt, jobs});
    return cells;
}

std::vector<MatrixCell>
quickMatrix()
{
    return {
        {false, true, true, 1},  // reference: the default stack
        {false, false, false, 1}, // everything off (PR 1 baseline shape)
        {true, true, true, 4},   // sandboxed and parallel
        {false, true, false, 4}, // parallel, unoptimized queries
    };
}

driver::ModuleReport
runCase(const CorpusCase &corpus_case, const MatrixCell &cell,
        const RunnerOptions &options, bool *degraded)
{
    llvmir::Module module = llvmir::parseModule(corpus_case.source);
    llvmir::verifyModuleOrThrow(module);

    driver::PipelineOptions pipeline_options;
    pipeline_options.isel = corpus_case.isel;

    driver::ExecutionOptions exec;
    exec.jobs = cell.jobs;
    exec.solverCache = cell.cache;
    exec.simplifyQueries = cell.smtOpt;
    exec.sliceQueries = cell.smtOpt;
    exec.incrementalSolver = cell.smtOpt;
    exec.sandbox = cell.sandbox;
    exec.workerPath = options.workerPath;
    exec.portfolioLanes = cell.portfolioLanes;
    if (cell.sandbox)
        exec.sandboxWorkers = cell.jobs;

    driver::Pipeline pipeline(pipeline_options, exec);
    driver::ModuleReport report = pipeline.runParallel(module);
    if (degraded != nullptr && cell.sandbox)
        *degraded = pipeline.sandboxSupervisor(1) == nullptr;
    return report;
}

bool
matchesExpect(const driver::ModuleReport &report, Expect expect)
{
    if (report.functions.empty())
        return false;
    for (const driver::FunctionReport &fn : report.functions) {
        switch (expect) {
        case Expect::Validated:
            if (fn.outcome != driver::Outcome::Succeeded)
                return false;
            break;
        case Expect::Rejected:
            if (fn.outcome != driver::Outcome::Other ||
                fn.verdict.kind != checker::VerdictKind::NotValidated)
                return false;
            break;
        case Expect::Gap:
            // A gap is either an unsupported fragment or a known
            // completeness gap (correct lowering the checker cannot
            // prove); both are honest refusals, never Succeeded.
            if (fn.outcome != driver::Outcome::Unsupported &&
                !(fn.outcome == driver::Outcome::Other &&
                  fn.verdict.kind ==
                      checker::VerdictKind::NotValidated))
                return false;
            break;
        }
    }
    return true;
}

std::string
outcomeSectionJson(const driver::ModuleReport &report)
{
    auto count = [&report](driver::Outcome outcome) {
        return static_cast<unsigned long long>(
            report.countOutcome(outcome));
    };
    std::ostringstream out;
    out << "  \"outcomes\": {\n"
        << "    \"succeeded\": " << count(driver::Outcome::Succeeded)
        << ",\n"
        << "    \"timeout\": " << count(driver::Outcome::Timeout)
        << ",\n"
        << "    \"out_of_memory\": "
        << count(driver::Outcome::OutOfMemory) << ",\n"
        << "    \"other\": " << count(driver::Outcome::Other) << ",\n"
        << "    \"unsupported\": " << count(driver::Outcome::Unsupported)
        << "\n  }";
    return out.str();
}

namespace {

/** Reference verdict (first defined function drives the headline). */
void
fillReferenceVerdict(CaseResult &result,
                     const driver::ModuleReport &report)
{
    if (report.functions.empty())
        return;
    result.outcome = report.functions.front().outcome;
    result.kind = report.functions.front().verdict.kind;
}

} // namespace

ConformanceReport
runConformance(const std::vector<CorpusCase> &cases,
               const RunnerOptions &options)
{
    auto start = std::chrono::steady_clock::now();
    ConformanceReport report;
    report.cellsPerCase = options.matrix.size();
    if (options.matrix.empty())
        throw support::Error("conformance: empty configuration matrix");

    for (const CorpusCase &corpus_case : cases) {
        CaseResult result;
        result.name = corpus_case.name;
        result.expect = corpus_case.expect;

        // The ledger records what the corpus *contains*; whether the
        // pipeline could decide it is the EXPECT gate's business.
        {
            llvmir::Module module =
                llvmir::parseModule(corpus_case.source);
            report.coverage.recordModule(module);
        }

        std::string reference_canonical;
        for (size_t i = 0; i < options.matrix.size(); ++i) {
            const MatrixCell &cell = options.matrix[i];
            bool cell_degraded = false;
            driver::ModuleReport cell_report =
                runCase(corpus_case, cell, options, &cell_degraded);
            if (cell_degraded)
                report.degradedSandbox = true;

            CellResult cell_result;
            cell_result.cell = cell.label();
            cell_result.canonical = cell_report.canonicalSummary();
            if (!cell_report.functions.empty()) {
                cell_result.outcome =
                    cell_report.functions.front().outcome;
                cell_result.kind =
                    cell_report.functions.front().verdict.kind;
            }

            if (i == 0) {
                reference_canonical = cell_result.canonical;
                fillReferenceVerdict(result, cell_report);
                result.expectMatched =
                    matchesExpect(cell_report, corpus_case.expect);
                if (!result.expectMatched) {
                    result.detail = "expected " +
                                    std::string(expectName(
                                        corpus_case.expect)) +
                                    ", got " +
                                    driver::outcomeName(result.outcome);
                }
            } else if (cell_result.canonical != reference_canonical) {
                result.matrixConsistent = false;
                if (result.detail.empty())
                    result.detail =
                        "verdict diverges in cell [" + cell.label() +
                        "]";
            }
            result.cells.push_back(std::move(cell_result));
        }
        report.cases.push_back(std::move(result));
    }

    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    report.seconds = elapsed.count();
    return report;
}

size_t
ConformanceReport::expectMismatches() const
{
    size_t count = 0;
    for (const CaseResult &result : cases)
        if (!result.expectMatched)
            ++count;
    return count;
}

size_t
ConformanceReport::matrixInconsistencies() const
{
    size_t count = 0;
    for (const CaseResult &result : cases)
        if (!result.matrixConsistent)
            ++count;
    return count;
}

bool
ConformanceReport::allOk() const
{
    return expectMismatches() == 0 && matrixInconsistencies() == 0;
}

std::string
ConformanceReport::renderTable() const
{
    std::ostringstream out;
    out << "conformance: " << cases.size() << " corpus files x "
        << cellsPerCase << " configuration cells\n";
    for (const CaseResult &result : cases) {
        out << "  " << result.name << ": "
            << driver::outcomeName(result.outcome) << "/"
            << checker::verdictKindName(result.kind) << " expect="
            << expectName(result.expect) << " ["
            << (result.expectMatched ? "match" : "MISMATCH") << ", "
            << (result.matrixConsistent ? "consistent" : "INCONSISTENT")
            << "]";
        if (!result.detail.empty())
            out << " " << result.detail;
        out << "\n";
    }
    out << "expect mismatches: " << expectMismatches()
        << ", matrix inconsistencies: " << matrixInconsistencies()
        << "\n";
    if (degradedSandbox)
        out << "WARNING: sandbox cells degraded to in-process solving "
               "(worker binary not found)\n";
    return out.str();
}

} // namespace keq::conformance
