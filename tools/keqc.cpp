/**
 * @file
 * keqc — command-line Translation Validation driver.
 *
 * The analogue of the paper artifact's run-tests.py: reads an LLVM IR
 * module, runs Instruction Selection, generates the verification
 * conditions, and validates every function with KEQ.
 *
 * Usage:
 *   keqc [options] file.ll
 *     --print-mir         print the Virtual x86 produced by ISel
 *     --proof             print the proof log (discharged obligations)
 *     --print-sync        print the synchronization point tables
 *     --merge-stores      enable the store-merging peephole
 *     --fold-ext-load     enable zext(load) folding
 *     --bug=waw|loadwiden reintroduce a Section 5.2 bug
 *     --refinement        check cut-simulation only
 *     --no-positive-form  disable the Section 3 SMT optimization
 *     --crude-liveness    use block-local liveness in the VC generator
 *     --wall-budget=SEC   per-function wall budget (0 = none)
 *     --smt-timeout-ms=N  per-SMT-query timeout in ms (0 = none)
 *     --spec-budget=N     sync-spec size budget in chars (0 = none)
 *     --function=NAME     validate only @NAME
 *     --jobs=N            validate N functions in parallel (0 = #cores)
 *     --no-solver-cache   disable solver-query memoization
 *     --no-smt-opt        disable the query optimization stack
 *                         (rewrite, slicing, incremental backend)
 *     --stats             print per-stage solver counters after the run
 *
 * Exit code: number of functions that failed validation (0 = all good).
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/driver/pipeline.h"
#include "src/isel/isel.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/vcgen/vcgen.h"

namespace {

struct CliOptions
{
    std::string path;
    std::string only_function;
    bool print_mir = false;
    bool print_sync = false;
    bool print_stats = false;
    keq::driver::PipelineOptions pipeline;
    keq::driver::ExecutionOptions exec;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0 << " [options] file.ll\n"
              << "  --print-mir --print-sync --merge-stores "
                 "--fold-ext-load\n"
              << "  --bug=waw|loadwiden --refinement "
                 "--no-positive-form --crude-liveness\n"
              << "  --wall-budget=SEC --spec-budget=N "
                 "--function=NAME\n"
              << "  --smt-timeout-ms=N --jobs=N --no-solver-cache\n"
              << "  --no-smt-opt --stats\n";
    std::exit(2);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value_of = [&](const std::string &prefix) {
            return arg.substr(prefix.size());
        };
        // Malformed numeric values (--jobs=abc) exit with usage instead
        // of an uncaught std::invalid_argument.
        auto number_of = [&](const std::string &prefix) -> double {
            try {
                size_t used = 0;
                std::string text = value_of(prefix);
                double value = std::stod(text, &used);
                if (used != text.size() || value < 0)
                    usage(argv[0]);
                return value;
            } catch (const std::exception &) {
                usage(argv[0]);
            }
        };
        if (arg == "--proof") {
            options.pipeline.checker.collectProof = true;
        } else if (arg == "--print-mir") {
            options.print_mir = true;
        } else if (arg == "--print-sync") {
            options.print_sync = true;
        } else if (arg == "--merge-stores") {
            options.pipeline.isel.mergeStores = true;
        } else if (arg == "--fold-ext-load") {
            options.pipeline.isel.foldExtLoad = true;
        } else if (arg.rfind("--bug=", 0) == 0) {
            std::string bug = value_of("--bug=");
            if (bug == "waw") {
                options.pipeline.isel.bug =
                    keq::isel::Bug::StoreMergeWAW;
                options.pipeline.isel.mergeStores = true;
            } else if (bug == "loadwiden") {
                options.pipeline.isel.bug =
                    keq::isel::Bug::LoadWidening;
                options.pipeline.isel.foldExtLoad = true;
            } else {
                usage(argv[0]);
            }
        } else if (arg == "--refinement") {
            options.pipeline.checker.refinementOnly = true;
        } else if (arg == "--no-positive-form") {
            options.pipeline.checker.positiveFormOpt = false;
        } else if (arg == "--crude-liveness") {
            options.pipeline.vc.precision =
                keq::vcgen::LivenessPrecision::BlockLocal;
        } else if (arg.rfind("--wall-budget=", 0) == 0) {
            options.pipeline.checker.wallBudgetSeconds =
                number_of("--wall-budget=");
        } else if (arg.rfind("--smt-timeout-ms=", 0) == 0) {
            options.pipeline.checker.solverTimeoutMs =
                static_cast<unsigned>(number_of("--smt-timeout-ms="));
        } else if (arg.rfind("--spec-budget=", 0) == 0) {
            options.pipeline.specSizeBudget =
                static_cast<size_t>(number_of("--spec-budget="));
        } else if (arg.rfind("--function=", 0) == 0) {
            options.only_function = "@" + value_of("--function=");
        } else if (arg.rfind("--jobs=", 0) == 0) {
            options.exec.jobs =
                static_cast<unsigned>(number_of("--jobs="));
        } else if (arg == "--no-solver-cache") {
            options.exec.solverCache = false;
        } else if (arg == "--no-smt-opt") {
            options.exec.simplifyQueries = false;
            options.exec.sliceQueries = false;
            options.exec.incrementalSolver = false;
        } else if (arg == "--stats") {
            options.print_stats = true;
        } else if (!arg.empty() && arg[0] == '-') {
            usage(argv[0]);
        } else if (options.path.empty()) {
            options.path = arg;
        } else {
            usage(argv[0]);
        }
    }
    if (options.path.empty())
        usage(argv[0]);
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace keq;
    CliOptions options = parseArgs(argc, argv);

    std::ifstream file(options.path);
    if (!file) {
        std::cerr << "keqc: cannot open " << options.path << "\n";
        return 2;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();

    llvmir::Module module;
    try {
        module = llvmir::parseModule(buffer.str());
        llvmir::verifyModuleOrThrow(module);
    } catch (const support::Error &error) {
        std::cerr << "keqc: " << error.what() << "\n";
        return 2;
    }

    if (options.print_mir || options.print_sync) {
        for (const llvmir::Function &fn : module.functions) {
            if (fn.isDeclaration())
                continue;
            if (!options.only_function.empty() &&
                fn.name != options.only_function) {
                continue;
            }
            try {
                isel::FunctionHints hints;
                vx86::MFunction mfn = isel::lowerFunction(
                    module, fn, options.pipeline.isel, hints);
                if (options.print_mir)
                    std::cout << mfn.toString() << "\n";
                if (options.print_sync) {
                    vcgen::VcResult vc = vcgen::generateSyncPoints(
                        fn, mfn, hints, options.pipeline.vc);
                    std::cout << vc.points.render() << "\n";
                    for (const std::string &warning : vc.warnings)
                        std::cout << "  warning: " << warning << "\n";
                }
            } catch (const support::Error &error) {
                std::cout << fn.name << ": unsupported ("
                          << error.what() << ")\n";
            }
        }
    }

    // One Pipeline for the whole module: the solver cache warms up
    // across functions. With --jobs=N functions validate concurrently;
    // reports always come back in module order.
    driver::Pipeline pipeline(options.pipeline, options.exec);
    driver::ModuleReport report;
    if (options.only_function.empty()) {
        report = pipeline.runParallel(module);
    } else {
        for (const llvmir::Function &fn : module.functions) {
            if (!fn.isDeclaration() && fn.name == options.only_function)
                report.functions.push_back(
                    pipeline.validateFunction(module, fn));
        }
    }

    int failures = 0;
    size_t validated = 0;
    for (const driver::FunctionReport &fn_report : report.functions) {
        std::cout << fn_report.function << ": "
                  << driver::outcomeName(fn_report.outcome);
        if (fn_report.outcome == driver::Outcome::Succeeded) {
            std::cout << " ("
                      << checker::verdictKindName(
                             fn_report.verdict.kind)
                      << ", " << fn_report.verdict.stats.solverQueries
                      << " queries, " << fn_report.seconds << " s)";
            ++validated;
        } else if (!fn_report.detail.empty()) {
            std::cout << "\n  " << fn_report.detail;
        }
        std::cout << "\n";
        if (options.pipeline.checker.collectProof)
            std::cout << fn_report.verdict.renderProof();
        if (fn_report.outcome != driver::Outcome::Succeeded &&
            fn_report.outcome != driver::Outcome::Unsupported) {
            ++failures;
        }
    }
    std::cout << validated << "/" << report.functions.size()
              << " functions validated\n";
    if (options.exec.solverCache && options.only_function.empty()) {
        const smt::CacheStats &cache = report.cacheStats;
        std::printf("solver cache: %llu key hits + %llu model hits / "
                    "%llu lookups (%.1f%% avoided the solver), "
                    "%llu evictions\n",
                    static_cast<unsigned long long>(cache.hits),
                    static_cast<unsigned long long>(cache.modelHits),
                    static_cast<unsigned long long>(cache.hits +
                                                    cache.misses),
                    100.0 * cache.hitRate(),
                    static_cast<unsigned long long>(cache.evictions));
    }
    if (options.print_stats) {
        // Aggregate per-function deltas so the single-function path
        // reports the same counters as a whole-module run.
        smt::SolverStats stats;
        for (const driver::FunctionReport &fn_report : report.functions)
            stats += fn_report.verdict.stats.solverStats;
        auto u = [](uint64_t v) {
            return static_cast<unsigned long long>(v);
        };
        std::printf("solver stack: %llu queries (%llu sat, %llu unsat, "
                    "%llu unknown), %.3f s in backend\n",
                    u(stats.queries), u(stats.sat), u(stats.unsat),
                    u(stats.unknown), stats.totalSeconds);
        std::printf("  rewrite:     %llu resolved, %llu rule firings\n",
                    u(stats.rewriteResolved),
                    u(stats.rewriteApplications));
        std::printf("  slice:       %llu resolved, %llu assertions "
                    "pruned\n",
                    u(stats.sliceResolved), u(stats.slicedAssertions));
        std::printf("  cache:       %llu hits, %llu misses\n",
                    u(stats.cacheHits), u(stats.cacheMisses));
        std::printf("  incremental: %llu assertions reused over %llu "
                    "warm checks, %llu cold, %llu fallbacks\n",
                    u(stats.incrementalReused),
                    u(stats.incrementalSolves), u(stats.coldSolves),
                    u(stats.incrementalFallbacks));
    }
    return failures;
}
