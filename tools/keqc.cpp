/**
 * @file
 * keqc — command-line Translation Validation driver.
 *
 * The analogue of the paper artifact's run-tests.py: reads an LLVM IR
 * module, runs Instruction Selection, generates the verification
 * conditions, and validates every function with KEQ.
 *
 * Usage:
 *   keqc [options] file.ll
 *     --print-mir         print the Virtual x86 produced by ISel
 *     --proof             print the proof log (discharged obligations)
 *     --print-sync        print the synchronization point tables
 *     --merge-stores      enable the store-merging peephole
 *     --fold-ext-load     enable zext(load) folding
 *     --bug=waw|loadwiden reintroduce a Section 5.2 bug
 *     --refinement        check cut-simulation only
 *     --no-positive-form  disable the Section 3 SMT optimization
 *     --crude-liveness    use block-local liveness in the VC generator
 *     --wall-budget=SEC   per-function wall budget (0 = none)
 *     --smt-timeout-ms=N  per-SMT-query timeout in ms (0 = none)
 *     --spec-budget=N     sync-spec size budget in chars (0 = none)
 *     --function=NAME     validate only @NAME
 *     --jobs=N            validate N functions in parallel (0 = #cores)
 *     --no-solver-cache   disable solver-query memoization
 *     --solver-cache-mb=N cap the query cache at N MB (LRU; 0 = none)
 *     --no-smt-opt        disable the query optimization stack
 *                         (rewrite, slicing, incremental backend)
 *     --deadline-ms=N     hard per-query watchdog deadline (0 = none)
 *     --retries=N         same-rung solver retries before escalating
 *     --solver-memory-mb=N per-query Z3 memory budget (0 = none)
 *     --checkpoint=PATH   journal verdicts to PATH as they are decided
 *     --checkpoint-fsync=record|batch|off
 *                         checkpoint durability (default off: flushed,
 *                         not fsynced)
 *     --resume            load the checkpoint and skip decided functions
 *     --chaos=PCT         inject PCT% solver faults (chaos testing)
 *     --chaos-seed=N      fault schedule seed (default 1)
 *     --sandbox           run solver queries in sandboxed worker
 *                         processes (crash containment + hard rlimits)
 *     --sandbox-workers=N worker pool size (0 = match --jobs)
 *     --worker-memory-mb=N hard RLIMIT_AS per worker (0 = uncapped)
 *     --worker-path=PATH  explicit keq-solver-worker binary
 *     --portfolio=N       race each query across N solver strategy
 *                         lanes; first definite answer wins (1 = off)
 *     --portfolio-lanes=SPEC
 *                         explicit lane roster, e.g.
 *                         "default,int2bv,cold:random_seed=3"
 *     --batch-discharge   ship obligation hypotheses as separate
 *                         assertions so the incremental backend keeps
 *                         them in a warm scope across obligations
 *     --daemon=ENDPOINTS  submit jobs to a running keq-daemon instead
 *                         of solving locally. ENDPOINTS is a comma-
 *                         separated failover list (unix:PATH,
 *                         tcp:HOST:PORT, tcp:[V6ADDR]:PORT; a bare
 *                         path means unix:). A daemon dying mid-run
 *                         fails over to the next endpoint with
 *                         idempotent job resubmission; when every
 *                         endpoint is down, keqc falls back to local
 *                         solving (with a warning), keeping verdicts
 *                         already decided
 *     --stats             print per-stage solver counters after the run
 *     --stats-json=PATH   dump the full stats/failure taxonomy as JSON
 *     --gen-corpus=N      print an N-function Figure 6 corpus and exit
 *     --corpus-seed=N     corpus generator seed (default 0x6cc2006)
 *
 * SIGINT cancels the run cooperatively: in-flight functions finish with
 * a `cancelled` classification (never journaled), and a later --resume
 * picks up where the run left off.
 *
 * Exit code: number of functions that failed validation (0 = all
 * good); 65 when the input module does not parse or verify; 2 for
 * usage and I/O errors; 64 (EX_USAGE) for a malformed --daemon
 * endpoint list (the diagnostic names the offending spec).
 */

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"
#include "src/service/client.h"
#include "src/service/endpoint.h"
#include "src/isel/isel.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/smt/portfolio_solver.h"
#include "src/support/cancellation.h"
#include "src/support/journal.h"
#include "src/vcgen/vcgen.h"

namespace {

/** SIGINT target; installed only for the validation phase. */
keq::support::CancellationToken g_cancel;

extern "C" void
handleSigint(int)
{
    // CancellationToken::cancel is one lock-free atomic store, which is
    // async-signal-safe.
    g_cancel.cancel();
}

struct CliOptions
{
    std::string path;
    std::string only_function;
    std::string stats_json;
    std::string daemon_socket; ///< raw --daemon value (for messages)
    std::vector<keq::service::Endpoint> daemon_endpoints;
    bool print_mir = false;
    bool print_sync = false;
    bool print_stats = false;
    size_t gen_corpus = 0;
    uint64_t corpus_seed = 0x6cc2006;
    keq::driver::PipelineOptions pipeline;
    keq::driver::ExecutionOptions exec;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0 << " [options] file.ll\n"
              << "  --print-mir --print-sync --merge-stores "
                 "--fold-ext-load\n"
              << "  --bug=waw|loadwiden --refinement "
                 "--no-positive-form --crude-liveness\n"
              << "  --wall-budget=SEC --spec-budget=N "
                 "--function=NAME\n"
              << "  --smt-timeout-ms=N --jobs=N --no-solver-cache\n"
              << "  --solver-cache-mb=N --no-smt-opt --stats\n"
              << "  --deadline-ms=N --retries=N --solver-memory-mb=N\n"
              << "  --checkpoint=PATH --checkpoint-fsync=record|batch|off "
                 "--resume\n"
              << "  --chaos=PCT --chaos-seed=N\n"
              << "  --sandbox --sandbox-workers=N --worker-memory-mb=N "
                 "--worker-path=PATH\n"
              << "  --portfolio=N --portfolio-lanes=SPEC "
                 "--batch-discharge\n"
              << "  --daemon=ENDPOINTS (comma-separated failover "
                 "list: unix:PATH,tcp:HOST:PORT)\n"
              << "  --stats-json=PATH --gen-corpus=N --corpus-seed=N\n";
    std::exit(2);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value_of = [&](const std::string &prefix) {
            return arg.substr(prefix.size());
        };
        // Malformed numeric values (--jobs=abc) exit with usage instead
        // of an uncaught std::invalid_argument.
        auto number_of = [&](const std::string &prefix) -> double {
            try {
                size_t used = 0;
                std::string text = value_of(prefix);
                double value = std::stod(text, &used);
                if (used != text.size() || value < 0)
                    usage(argv[0]);
                return value;
            } catch (const std::exception &) {
                usage(argv[0]);
            }
        };
        if (arg == "--proof") {
            options.pipeline.checker.collectProof = true;
        } else if (arg == "--print-mir") {
            options.print_mir = true;
        } else if (arg == "--print-sync") {
            options.print_sync = true;
        } else if (arg == "--merge-stores") {
            options.pipeline.isel.mergeStores = true;
        } else if (arg == "--fold-ext-load") {
            options.pipeline.isel.foldExtLoad = true;
        } else if (arg.rfind("--bug=", 0) == 0) {
            std::string bug = value_of("--bug=");
            if (bug == "waw") {
                options.pipeline.isel.bug =
                    keq::isel::Bug::StoreMergeWAW;
                options.pipeline.isel.mergeStores = true;
            } else if (bug == "loadwiden") {
                options.pipeline.isel.bug =
                    keq::isel::Bug::LoadWidening;
                options.pipeline.isel.foldExtLoad = true;
            } else {
                usage(argv[0]);
            }
        } else if (arg == "--refinement") {
            options.pipeline.checker.refinementOnly = true;
        } else if (arg == "--no-positive-form") {
            options.pipeline.checker.positiveFormOpt = false;
        } else if (arg == "--crude-liveness") {
            options.pipeline.vc.precision =
                keq::vcgen::LivenessPrecision::BlockLocal;
        } else if (arg.rfind("--wall-budget=", 0) == 0) {
            options.pipeline.checker.wallBudgetSeconds =
                number_of("--wall-budget=");
        } else if (arg.rfind("--smt-timeout-ms=", 0) == 0) {
            options.pipeline.checker.solverTimeoutMs =
                static_cast<unsigned>(number_of("--smt-timeout-ms="));
        } else if (arg.rfind("--spec-budget=", 0) == 0) {
            options.pipeline.specSizeBudget =
                static_cast<size_t>(number_of("--spec-budget="));
        } else if (arg.rfind("--function=", 0) == 0) {
            options.only_function = "@" + value_of("--function=");
        } else if (arg.rfind("--jobs=", 0) == 0) {
            options.exec.jobs =
                static_cast<unsigned>(number_of("--jobs="));
        } else if (arg == "--no-solver-cache") {
            options.exec.solverCache = false;
        } else if (arg.rfind("--solver-cache-mb=", 0) == 0) {
            options.exec.cacheMemoryMb =
                static_cast<size_t>(number_of("--solver-cache-mb="));
        } else if (arg.rfind("--deadline-ms=", 0) == 0) {
            options.exec.deadlineMs =
                static_cast<unsigned>(number_of("--deadline-ms="));
        } else if (arg.rfind("--retries=", 0) == 0) {
            options.exec.solverRetries =
                static_cast<unsigned>(number_of("--retries="));
        } else if (arg.rfind("--solver-memory-mb=", 0) == 0) {
            options.exec.solverMemoryMb =
                static_cast<unsigned>(number_of("--solver-memory-mb="));
        } else if (arg.rfind("--checkpoint=", 0) == 0) {
            options.exec.checkpointPath = value_of("--checkpoint=");
        } else if (arg.rfind("--checkpoint-fsync=", 0) == 0) {
            if (!keq::support::fsyncPolicyFromName(
                    value_of("--checkpoint-fsync=").c_str(),
                    options.exec.checkpointFsync)) {
                usage(argv[0]);
            }
        } else if (arg == "--sandbox") {
            options.exec.sandbox = true;
        } else if (arg.rfind("--sandbox-workers=", 0) == 0) {
            options.exec.sandboxWorkers =
                static_cast<unsigned>(number_of("--sandbox-workers="));
        } else if (arg.rfind("--worker-memory-mb=", 0) == 0) {
            options.exec.workerMemoryMb =
                static_cast<unsigned>(number_of("--worker-memory-mb="));
        } else if (arg.rfind("--worker-path=", 0) == 0) {
            options.exec.workerPath = value_of("--worker-path=");
        } else if (arg.rfind("--portfolio=", 0) == 0) {
            options.exec.portfolioLanes =
                static_cast<unsigned>(number_of("--portfolio="));
            if (options.exec.portfolioLanes == 0)
                usage(argv[0]);
        } else if (arg.rfind("--portfolio-lanes=", 0) == 0) {
            options.exec.portfolioLaneSpec =
                value_of("--portfolio-lanes=");
            // Reject malformed rosters at the CLI instead of failing
            // every function Unsupported deep inside the pipeline.
            std::vector<keq::smt::LaneConfig> lanes;
            std::string error;
            if (!keq::smt::parsePortfolioLanes(
                    options.exec.portfolioLaneSpec, lanes, error)) {
                std::cerr << argv[0] << ": --portfolio-lanes: " << error
                          << "\n";
                usage(argv[0]);
            }
        } else if (arg == "--batch-discharge") {
            options.pipeline.checker.batchDischarge = true;
        } else if (arg.rfind("--daemon=", 0) == 0) {
            options.daemon_socket = value_of("--daemon=");
            std::string endpointError;
            if (!keq::service::parseEndpointList(
                    options.daemon_socket, options.daemon_endpoints,
                    endpointError)) {
                std::cerr << "keqc: --daemon: " << endpointError
                          << "\n";
                std::exit(64); // BSD sysexits EX_USAGE
            }
        } else if (arg.rfind("--stats-json=", 0) == 0) {
            options.stats_json = value_of("--stats-json=");
        } else if (arg == "--resume") {
            options.exec.resume = true;
        } else if (arg.rfind("--chaos=", 0) == 0) {
            unsigned pct =
                static_cast<unsigned>(number_of("--chaos="));
            if (pct > 100)
                usage(argv[0]);
            // Spread the budget over the fault classes; whatever the
            // integer division drops lands on spurious Unknowns.
            keq::smt::FaultPlan &plan = options.exec.faults;
            plan.crashPercent = pct / 4;
            plan.timeoutPercent = pct / 4;
            plan.memoryPercent = pct / 4;
            plan.unknownPercent = pct - 3 * (pct / 4);
            if (plan.seed == 0)
                plan.seed = 1;
        } else if (arg.rfind("--chaos-seed=", 0) == 0) {
            options.exec.faults.seed = static_cast<uint64_t>(
                number_of("--chaos-seed="));
        } else if (arg == "--no-smt-opt") {
            options.exec.simplifyQueries = false;
            options.exec.sliceQueries = false;
            options.exec.incrementalSolver = false;
        } else if (arg == "--stats") {
            options.print_stats = true;
        } else if (arg.rfind("--gen-corpus=", 0) == 0) {
            options.gen_corpus =
                static_cast<size_t>(number_of("--gen-corpus="));
            if (options.gen_corpus == 0)
                usage(argv[0]);
        } else if (arg.rfind("--corpus-seed=", 0) == 0) {
            options.corpus_seed = static_cast<uint64_t>(
                number_of("--corpus-seed="));
        } else if (!arg.empty() && arg[0] == '-') {
            usage(argv[0]);
        } else if (options.path.empty()) {
            options.path = arg;
        } else {
            usage(argv[0]);
        }
    }
    if (options.path.empty() && options.gen_corpus == 0)
        usage(argv[0]);
    return options;
}

/**
 * --stats-json: machine-readable dump of the run — outcome counts, the
 * FailureKind histogram over verdicts, the full SolverStats block
 * (aggregated over functions exactly like --stats), and the cache
 * counters. Keys are snake_case and only ever added, so dashboards can
 * diff runs across versions.
 */
bool
writeStatsJson(const std::string &path,
               const keq::driver::ModuleReport &report)
{
    using namespace keq;
    smt::SolverStats stats;
    for (const driver::FunctionReport &fn : report.functions)
        stats += fn.verdict.stats.solverStats;

    constexpr FailureKind kKinds[] = {
        FailureKind::None,
        FailureKind::Timeout,
        FailureKind::MemoryBudget,
        FailureKind::SolverUnknown,
        FailureKind::SolverCrash,
        FailureKind::Cancelled,
        FailureKind::WorkerKilled,
        FailureKind::WorkerOom,
        FailureKind::PortfolioDisagreement,
    };
    uint64_t failure_counts[std::size(kKinds)] = {};
    for (const driver::FunctionReport &fn : report.functions) {
        for (size_t i = 0; i < std::size(kKinds); ++i) {
            if (fn.verdict.failure == kKinds[i])
                ++failure_counts[i];
        }
    }

    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    auto count = [&report](driver::Outcome outcome) {
        return static_cast<unsigned long long>(
            report.countOutcome(outcome));
    };
    out << "{\n";
    out << "  \"functions\": " << report.functions.size() << ",\n";
    out << "  \"outcomes\": {\n"
        << "    \"succeeded\": " << count(driver::Outcome::Succeeded)
        << ",\n"
        << "    \"timeout\": " << count(driver::Outcome::Timeout)
        << ",\n"
        << "    \"out_of_memory\": "
        << count(driver::Outcome::OutOfMemory) << ",\n"
        << "    \"other\": " << count(driver::Outcome::Other) << ",\n"
        << "    \"unsupported\": "
        << count(driver::Outcome::Unsupported) << "\n  },\n";
    out << "  \"failures\": {\n";
    for (size_t i = 0; i < std::size(kKinds); ++i) {
        out << "    \"" << failureKindName(kKinds[i])
            << "\": " << failure_counts[i]
            << (i + 1 < std::size(kKinds) ? ",\n" : "\n");
    }
    out << "  },\n";
    out << "  \"solver\": {\n";
    struct SolverField
    {
        const char *name;
        uint64_t value;
    };
    const SolverField fields[] = {
        {"queries", stats.queries},
        {"sat", stats.sat},
        {"unsat", stats.unsat},
        {"unknown", stats.unknown},
        {"cache_hits", stats.cacheHits},
        {"cache_misses", stats.cacheMisses},
        {"cache_evictions", stats.cacheEvictions},
        {"rewrite_resolved", stats.rewriteResolved},
        {"rewrite_applications", stats.rewriteApplications},
        {"slice_resolved", stats.sliceResolved},
        {"sliced_assertions", stats.slicedAssertions},
        {"incremental_reused", stats.incrementalReused},
        {"incremental_solves", stats.incrementalSolves},
        {"incremental_fallbacks", stats.incrementalFallbacks},
        {"cold_solves", stats.coldSolves},
        {"watchdog_interrupts", stats.watchdogInterrupts},
        {"guarded_retries", stats.guardedRetries},
        {"guarded_escalations", stats.guardedEscalations},
        {"escalated_resolved", stats.escalatedResolved},
        {"solver_crashes", stats.solverCrashes},
        {"faults_injected", stats.faultsInjected},
        {"worker_crashes", stats.workerCrashes},
        {"worker_restarts", stats.workerRestarts},
        {"heartbeat_timeouts", stats.heartbeatTimeouts},
        {"wire_bytes_sent", stats.wireBytesSent},
        {"wire_bytes_received", stats.wireBytesReceived},
        {"batched_queries", stats.batchedQueries},
        {"portfolio_wins_0", stats.portfolioWins[0]},
        {"portfolio_wins_1", stats.portfolioWins[1]},
        {"portfolio_wins_2", stats.portfolioWins[2]},
        {"portfolio_wins_3", stats.portfolioWins[3]},
        {"portfolio_cancellations", stats.portfolioCancellations},
        {"cross_lane_disagreements", stats.crossLaneDisagreements},
    };
    for (const SolverField &field : fields) {
        out << "    \"" << field.name << "\": "
            << static_cast<unsigned long long>(field.value) << ",\n";
    }
    out << "    \"total_seconds\": " << stats.totalSeconds << "\n  },\n";
    out << "  \"cache\": {\n"
        << "    \"hits\": " << report.cacheStats.hits << ",\n"
        << "    \"misses\": " << report.cacheStats.misses << ",\n"
        << "    \"model_hits\": " << report.cacheStats.modelHits
        << ",\n"
        << "    \"evictions\": " << report.cacheStats.evictions << ",\n"
        << "    \"entries\": " << report.cacheStats.entries
        << "\n  },\n";
    out << "  \"resumed_functions\": " << report.resumedFunctions
        << ",\n";
    out << "  \"dropped_checkpoint_records\": "
        << report.droppedCheckpointRecords << "\n";
    out << "}\n";
    out.flush();
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace keq;
    CliOptions options = parseArgs(argc, argv);

    if (options.gen_corpus > 0) {
        driver::CorpusOptions copts;
        copts.seed = options.corpus_seed;
        copts.functionCount = options.gen_corpus;
        std::cout << driver::generateCorpusSource(copts);
        return 0;
    }

    std::ifstream file(options.path);
    if (!file) {
        std::cerr << "keqc: cannot open " << options.path << "\n";
        return 2;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();

    // Unparsable or ill-formed input exits with the dedicated code 65
    // (EX_DATAERR), so drivers and the fuzz harness can distinguish
    // "your .ll is bad" from usage errors (2) and failed validations
    // (the failure count).
    llvmir::Module module;
    try {
        module = llvmir::parseModule(buffer.str());
        llvmir::verifyModuleOrThrow(module);
    } catch (const support::Error &error) {
        std::cerr << "keqc: " << options.path << ": " << error.what()
                  << "\n";
        return 65;
    }

    if (options.print_mir || options.print_sync) {
        for (const llvmir::Function &fn : module.functions) {
            if (fn.isDeclaration())
                continue;
            if (!options.only_function.empty() &&
                fn.name != options.only_function) {
                continue;
            }
            try {
                isel::FunctionHints hints;
                vx86::MFunction mfn = isel::lowerFunction(
                    module, fn, options.pipeline.isel, hints);
                if (options.print_mir)
                    std::cout << mfn.toString() << "\n";
                if (options.print_sync) {
                    vcgen::VcResult vc = vcgen::generateSyncPoints(
                        fn, mfn, hints, options.pipeline.vc);
                    std::cout << vc.points.render() << "\n";
                    for (const std::string &warning : vc.warnings)
                        std::cout << "  warning: " << warning << "\n";
                }
            } catch (const support::Error &error) {
                std::cout << fn.name << ": unsupported ("
                          << error.what() << ")\n";
            }
        }
    }

    // One Pipeline for the whole module: the solver cache warms up
    // across functions. With --jobs=N functions validate concurrently;
    // reports always come back in module order.
    g_cancel = support::CancellationToken::create();
    options.exec.cancel = g_cancel;
    std::signal(SIGINT, handleSigint);
    driver::ModuleReport report;

    // --daemon: ship the jobs to a warm keq-daemon instead of solving
    // here. Verdicts are required to be canonically identical either
    // way, so degradation (unreachable daemon, daemon death mid-run) is
    // always safe: warn once, keep whatever the daemon decided, and
    // finish the rest with the local pipeline.
    if (!options.daemon_socket.empty() &&
        options.pipeline.checker.collectProof) {
        std::cerr << "keqc: --proof requires local solving; "
                     "ignoring --daemon\n";
        options.daemon_socket.clear();
    }
    if (!options.daemon_socket.empty() &&
        (!options.exec.checkpointPath.empty() || options.exec.resume)) {
        std::cerr << "keqc: --checkpoint/--resume journal locally; "
                     "ignoring --daemon\n";
        options.daemon_socket.clear();
    }
    bool daemonHandled = false;
    std::vector<driver::FunctionReport> daemonReports;
    std::vector<bool> daemonDecided;
    if (!options.daemon_socket.empty()) {
        std::vector<std::string> names;
        for (const llvmir::Function &fn : module.functions) {
            if (fn.isDeclaration())
                continue;
            if (!options.only_function.empty() &&
                fn.name != options.only_function)
                continue;
            names.push_back(fn.name);
        }
        service::DaemonClientOptions copts;
        copts.endpoints = options.daemon_endpoints;
        service::DaemonClient client(copts);
        std::string error;
        // Failover is meant to be invisible in the *output* (verdicts
        // splice identically) but never silent in operation: say on
        // stderr when the run survived a daemon death.
        auto warnFailovers = [&client] {
            if (client.failovers() > 0)
                std::cerr << "keqc: daemon failed over "
                          << client.failovers() << " time(s) ("
                          << client.resubmittedJobs()
                          << " in-flight jobs resubmitted; decided "
                             "verdicts kept)\n";
        };
        if (!client.connect(error)) {
            std::cerr << "keqc: daemon unreachable (" << error
                      << "); falling back to local validation\n";
            daemonDecided.clear();
        } else if (client.validateFunctions(
                       buffer.str(), names, options.pipeline,
                       daemonReports, daemonDecided, error)) {
            warnFailovers();
            report.functions = std::move(daemonReports);
            daemonHandled = true;
        } else if (client.busyBreakerTripped()) {
            warnFailovers();
            std::cerr << "keqc: daemon busy circuit breaker tripped ("
                      << client.busyRetries() << " Busy replies): "
                      << error
                      << "; validating remaining functions locally\n";
        } else {
            warnFailovers();
            std::cerr << "keqc: daemon connection lost ["
                      << failureKindName(client.failure()) << "]: "
                      << error
                      << "; validating remaining functions locally\n";
        }
    }

    bool anyDaemonVerdicts = daemonHandled;
    for (size_t i = 0; !anyDaemonVerdicts && i < daemonDecided.size();
         ++i)
        anyDaemonVerdicts = daemonDecided[i];

    if (!daemonHandled) {
        driver::Pipeline pipeline(options.pipeline, options.exec);
        try {
            if (anyDaemonVerdicts) {
                // Partial daemon run: splice its verdicts, recompute
                // only what is missing (module order is preserved —
                // the submit order matched this very walk).
                size_t index = 0;
                for (const llvmir::Function &fn : module.functions) {
                    if (fn.isDeclaration())
                        continue;
                    if (!options.only_function.empty() &&
                        fn.name != options.only_function)
                        continue;
                    if (daemonDecided[index])
                        report.functions.push_back(
                            std::move(daemonReports[index]));
                    else
                        report.functions.push_back(
                            pipeline.validateFunction(module, fn));
                    ++index;
                }
            } else if (options.only_function.empty()) {
                report = pipeline.runParallel(module);
            } else {
                for (const llvmir::Function &fn : module.functions) {
                    if (!fn.isDeclaration() &&
                        fn.name == options.only_function)
                        report.functions.push_back(
                            pipeline.validateFunction(module, fn));
                }
            }
        } catch (const support::Error &error) {
            // Checkpoint mismatch or journal I/O failure.
            std::cerr << "keqc: " << error.what() << "\n";
            return 2;
        }
    }
    if (anyDaemonVerdicts) {
        // The daemon owns the real cache; fold the per-function solver
        // counters so the cache summary (and --stats-json) still mean
        // something — exactly like the cacheless aggregation path.
        for (const driver::FunctionReport &fn : report.functions) {
            report.cacheStats.hits +=
                fn.verdict.stats.solverStats.cacheHits;
            report.cacheStats.misses +=
                fn.verdict.stats.solverStats.cacheMisses;
        }
    }
    std::signal(SIGINT, SIG_DFL);

    int failures = 0;
    size_t validated = 0;
    for (const driver::FunctionReport &fn_report : report.functions) {
        std::cout << fn_report.function << ": "
                  << driver::outcomeName(fn_report.outcome);
        if (fn_report.outcome == driver::Outcome::Succeeded) {
            std::cout << " ("
                      << checker::verdictKindName(
                             fn_report.verdict.kind)
                      << ", " << fn_report.verdict.stats.solverQueries
                      << " queries, " << fn_report.seconds << " s)";
            ++validated;
        } else {
            if (fn_report.verdict.failure != FailureKind::None)
                std::cout << " [" <<
                    failureKindName(fn_report.verdict.failure) << "]";
            if (!fn_report.detail.empty())
                std::cout << "\n  " << fn_report.detail;
        }
        std::cout << "\n";
        if (options.pipeline.checker.collectProof)
            std::cout << fn_report.verdict.renderProof();
        if (fn_report.outcome != driver::Outcome::Succeeded &&
            fn_report.outcome != driver::Outcome::Unsupported) {
            ++failures;
        }
    }
    std::cout << validated << "/" << report.functions.size()
              << " functions validated\n";
    if (report.resumedFunctions > 0) {
        std::cout << report.resumedFunctions
                  << " verdicts restored from checkpoint";
        if (report.droppedCheckpointRecords > 0)
            std::cout << " (" << report.droppedCheckpointRecords
                      << " torn records dropped)";
        std::cout << "\n";
    }
    if (g_cancel.cancelled()) {
        std::cout << "interrupted: undecided functions were not "
                     "journaled; rerun with --resume to finish\n";
    }
    if (options.exec.solverCache && options.only_function.empty()) {
        const smt::CacheStats &cache = report.cacheStats;
        std::printf("solver cache: %llu key hits + %llu model hits / "
                    "%llu lookups (%.1f%% avoided the solver), "
                    "%llu evictions\n",
                    static_cast<unsigned long long>(cache.hits),
                    static_cast<unsigned long long>(cache.modelHits),
                    static_cast<unsigned long long>(cache.hits +
                                                    cache.misses),
                    100.0 * cache.hitRate(),
                    static_cast<unsigned long long>(cache.evictions));
    }
    if (options.print_stats) {
        // Aggregate per-function deltas so the single-function path
        // reports the same counters as a whole-module run.
        smt::SolverStats stats;
        for (const driver::FunctionReport &fn_report : report.functions)
            stats += fn_report.verdict.stats.solverStats;
        auto u = [](uint64_t v) {
            return static_cast<unsigned long long>(v);
        };
        std::printf("solver stack: %llu queries (%llu sat, %llu unsat, "
                    "%llu unknown), %.3f s in backend\n",
                    u(stats.queries), u(stats.sat), u(stats.unsat),
                    u(stats.unknown), stats.totalSeconds);
        std::printf("  rewrite:     %llu resolved, %llu rule firings\n",
                    u(stats.rewriteResolved),
                    u(stats.rewriteApplications));
        std::printf("  slice:       %llu resolved, %llu assertions "
                    "pruned\n",
                    u(stats.sliceResolved), u(stats.slicedAssertions));
        std::printf("  cache:       %llu hits, %llu misses\n",
                    u(stats.cacheHits), u(stats.cacheMisses));
        std::printf("  incremental: %llu assertions reused over %llu "
                    "warm checks, %llu cold, %llu fallbacks\n",
                    u(stats.incrementalReused),
                    u(stats.incrementalSolves), u(stats.coldSolves),
                    u(stats.incrementalFallbacks));
        std::printf("  guard:       %llu watchdog interrupts, %llu "
                    "retries, %llu escalations (%llu resolved by a "
                    "fallback rung)\n",
                    u(stats.watchdogInterrupts), u(stats.guardedRetries),
                    u(stats.guardedEscalations),
                    u(stats.escalatedResolved));
        std::printf("  faults:      %llu solver crashes absorbed, %llu "
                    "injected\n",
                    u(stats.solverCrashes), u(stats.faultsInjected));
        std::printf("  sandbox:     %llu worker crashes, %llu restarts, "
                    "%llu heartbeat timeouts, %llu/%llu wire bytes "
                    "out/in\n",
                    u(stats.workerCrashes), u(stats.workerRestarts),
                    u(stats.heartbeatTimeouts), u(stats.wireBytesSent),
                    u(stats.wireBytesReceived));
        std::printf("  portfolio:   wins by lane [%llu %llu %llu %llu], "
                    "%llu losers cancelled, %llu disagreements, %llu "
                    "batched queries\n",
                    u(stats.portfolioWins[0]), u(stats.portfolioWins[1]),
                    u(stats.portfolioWins[2]), u(stats.portfolioWins[3]),
                    u(stats.portfolioCancellations),
                    u(stats.crossLaneDisagreements),
                    u(stats.batchedQueries));
    }
    if (!options.stats_json.empty() &&
        !writeStatsJson(options.stats_json, report)) {
        std::cerr << "keqc: cannot write " << options.stats_json << "\n";
        return 2;
    }
    return failures;
}
