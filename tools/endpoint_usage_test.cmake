# Exercised by ctest (see tools/CMakeLists.txt): a malformed endpoint
# spec handed to keqc --daemon= or keq-daemon --listen= must exit 64
# (EX_USAGE) with a diagnostic that names the offending spec — never a
# connect attempt, never a crash, never the generic usage exit 2.
#
#   cmake -DKEQC=<binary> -DKEQD=<binary> -DWORK_DIR=<dir> \
#         -P endpoint_usage_test.cmake
if(NOT DEFINED KEQC OR NOT DEFINED KEQD OR NOT DEFINED WORK_DIR)
    message(FATAL_ERROR
        "usage: cmake -DKEQC=... -DKEQD=... -DWORK_DIR=... "
        "-P endpoint_usage_test.cmake")
endif()

set(module "${WORK_DIR}/keqc-endpoint-usage.ll")
file(WRITE "${module}"
    "define i32 @ok(i32 %a) {\n"
    "entry:\n"
    "  %r = add i32 %a, 1\n"
    "  ret i32 %r\n"
    "}\n")

# Each row: one malformed spec. The diagnostic must quote it.
set(bad_specs
    "tcp:127.0.0.1"        # missing port
    "tcp:localhost:0x1f"   # non-numeric port
    "tcp:[::1"             # unterminated bracket
    "udp:host:7461"        # unknown scheme
    "unix:"                # empty path
)

foreach(spec IN LISTS bad_specs)
    execute_process(
        COMMAND "${KEQC}" "--daemon=${spec}" "${module}"
        RESULT_VARIABLE code
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT code EQUAL 64)
        message(FATAL_ERROR
            "keqc --daemon=${spec}: expected exit 64 (EX_USAGE), "
            "got '${code}'\nstderr: ${err}")
    endif()
    string(FIND "${err}" "${spec}" spec_at)
    if(spec_at EQUAL -1)
        message(FATAL_ERROR
            "keqc --daemon=${spec}: diagnostic must name the "
            "offending spec\nstderr: ${err}")
    endif()

    execute_process(
        COMMAND "${KEQD}" "--listen=${spec}"
        RESULT_VARIABLE code
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT code EQUAL 64)
        message(FATAL_ERROR
            "keq-daemon --listen=${spec}: expected exit 64 "
            "(EX_USAGE), got '${code}'\nstderr: ${err}")
    endif()
    string(FIND "${err}" "${spec}" spec_at)
    if(spec_at EQUAL -1)
        message(FATAL_ERROR
            "keq-daemon --listen=${spec}: diagnostic must name the "
            "offending spec\nstderr: ${err}")
    endif()
endforeach()

# One bad element poisons a whole failover list, even with valid
# elements ahead of it.
execute_process(
    COMMAND "${KEQC}"
            "--daemon=unix:/tmp/fine.sock,tcp:host:bad,unix:/also.sock"
            "${module}"
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT code EQUAL 64)
    message(FATAL_ERROR
        "bad element inside a failover list must exit 64, got "
        "'${code}'\nstderr: ${err}")
endif()
string(FIND "${err}" "tcp:host:bad" spec_at)
if(spec_at EQUAL -1)
    message(FATAL_ERROR
        "list diagnostic must name the offending element, not the "
        "whole list\nstderr: ${err}")
endif()

# A well-formed endpoint list must NOT take the usage exit: nobody
# listens on this socket, so keqc warns and degrades to local (exit 0).
execute_process(
    COMMAND "${KEQC}" "--daemon=unix:${WORK_DIR}/keqc-no-daemon.sock"
            "${module}"
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT code EQUAL 0)
    message(FATAL_ERROR
        "well-formed endpoint with no daemon must degrade to local "
        "and exit 0, got '${code}'\nstderr: ${err}")
endif()
