# Exercised by ctest (see tools/CMakeLists.txt): keqc on an unparsable
# module must exit 65 (EX_DATAERR) with a line:column diagnostic that
# names the file — never the generic failure-count exit, never a crash.
#
#   cmake -DKEQC=<binary> -DWORK_DIR=<dir> -P malformed_input_test.cmake
if(NOT DEFINED KEQC OR NOT DEFINED WORK_DIR)
    message(FATAL_ERROR
        "usage: cmake -DKEQC=... -DWORK_DIR=... "
        "-P malformed_input_test.cmake")
endif()

set(bad "${WORK_DIR}/keqc-malformed-input.ll")
file(WRITE "${bad}"
    "define i32 @f(i32 %a) {\n"
    "entry:\n"
    "  %r = frobnicate i32 %a, 1\n"
    "  ret i32 %r\n"
    "}\n")

execute_process(
    COMMAND "${KEQC}" "${bad}"
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

if(NOT code EQUAL 65)
    message(FATAL_ERROR
        "expected exit code 65, got '${code}'\nstderr: ${err}")
endif()
string(FIND "${err}" "${bad}" name_at)
if(name_at EQUAL -1)
    message(FATAL_ERROR
        "diagnostic must name the input file '${bad}'\nstderr: ${err}")
endif()
string(FIND "${err}" "line 3" line_at)
if(line_at EQUAL -1)
    message(FATAL_ERROR
        "diagnostic must carry the failing line\nstderr: ${err}")
endif()
string(FIND "${err}" "col" col_at)
if(col_at EQUAL -1)
    message(FATAL_ERROR
        "diagnostic must carry the failing column\nstderr: ${err}")
endif()

# A well-formed module must NOT take the data-error exit.
set(good "${WORK_DIR}/keqc-wellformed-input.ll")
file(WRITE "${good}"
    "define i32 @ok(i32 %a) {\n"
    "entry:\n"
    "  %r = add i32 %a, 1\n"
    "  ret i32 %r\n"
    "}\n")
execute_process(
    COMMAND "${KEQC}" "${good}"
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT code EQUAL 0)
    message(FATAL_ERROR
        "well-formed module must exit 0, got '${code}'\n"
        "stderr: ${err}")
endif()
