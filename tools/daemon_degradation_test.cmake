# Exercised by ctest (see tools/CMakeLists.txt): keqc --daemon pointed
# at a socket nobody listens on must warn once, fall back to local
# solving, and exit with the same code a daemonless run would — an
# absent daemon degrades service, never correctness.
#
#   cmake -DKEQC=<binary> -DWORK_DIR=<dir> -P daemon_degradation_test.cmake
if(NOT DEFINED KEQC OR NOT DEFINED WORK_DIR)
    message(FATAL_ERROR
        "usage: cmake -DKEQC=... -DWORK_DIR=... "
        "-P daemon_degradation_test.cmake")
endif()

set(module "${WORK_DIR}/keqc-daemon-degradation.ll")
file(WRITE "${module}"
    "define i32 @inc(i32 %a) {\n"
    "entry:\n"
    "  %r = add i32 %a, 1\n"
    "  ret i32 %r\n"
    "}\n")

set(dead_socket "${WORK_DIR}/keqc-no-daemon-here.sock")
file(REMOVE "${dead_socket}")

execute_process(
    COMMAND "${KEQC}" "--daemon=${dead_socket}" "${module}"
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

if(NOT code EQUAL 0)
    message(FATAL_ERROR
        "fallback run must validate and exit 0, got '${code}'\n"
        "stderr: ${err}")
endif()
string(FIND "${err}" "falling back to local validation" warn_at)
if(warn_at EQUAL -1)
    message(FATAL_ERROR
        "missing the degradation warning\nstderr: ${err}")
endif()
string(FIND "${out}" "1/1 functions validated" validated_at)
if(validated_at EQUAL -1)
    message(FATAL_ERROR
        "fallback run did not validate locally\nstdout: ${out}")
endif()

# Reference: the daemonless invocation agrees on every verdict line.
execute_process(
    COMMAND "${KEQC}" "${module}"
    RESULT_VARIABLE ref_code
    OUTPUT_VARIABLE ref_out
    ERROR_VARIABLE ref_err)
if(NOT ref_code EQUAL 0)
    message(FATAL_ERROR "reference run failed: ${ref_err}")
endif()
string(FIND "${ref_out}" "1/1 functions validated" ref_at)
if(ref_at EQUAL -1)
    message(FATAL_ERROR "reference run did not validate\n${ref_out}")
endif()
