/**
 * @file
 * keq-fuzz — generative fuzzing & differential-oracle campaign driver.
 *
 * Generates random well-typed LLVM IR, runs the real ISel, injects
 * compiler-bug mutations from the shared catalogue, and cross-checks
 * the KEQ checker's verdict against concrete executions of both sides.
 * Failing seeds (checker soundness bugs or completeness gaps) are
 * shrunk and persisted as replayable reproducers.
 *
 * Usage:
 *   keq-fuzz [options]
 *     --seed=N            campaign seed (default 1)
 *     --jobs=N            worker threads (0 = #cores; default 1)
 *     --iterations=N      random-phase iterations (default 50)
 *     --trials=N          oracle input trials per pair (default 6)
 *     --mutation=ID       restrict to one catalogue mutation
 *     --corpus-dir=DIR    write reproducer files into DIR
 *     --replay=FILE       replay one reproducer and exit
 *     --list-mutations    print the mutation catalogue and exit
 *     --max-seconds=S     safety cap on the random phase (0 = none)
 *     --checkpoint=FILE   journal iteration outcomes to FILE
 *     --checkpoint-fsync=record|batch|off
 *                         checkpoint durability (default off)
 *     --resume            restore journaled iterations from FILE
 *     --no-calibrate      skip the per-entry exemplar calibration
 *     --no-shrink         report failing seeds unshrunk
 *     --check-classes     fail unless every miscompile class was killed
 *     --stats             print the IR-construct coverage ledger
 *     --summary           print the canonical (timing-free) summary only
 *     --json=FILE         write campaign stats as a flat JSON object
 *
 * Determinism: for fixed --seed and --iterations the canonical summary
 * and every reproducer are byte-identical regardless of --jobs.
 *
 * Exit code: soundness bugs + completeness gaps (plus 1 if
 * --check-classes found an unkilled miscompile class); 2 on usage or
 * I/O errors.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench/bench_common.h"
#include "src/fuzz/campaign.h"
#include "src/support/diagnostics.h"

namespace {

struct CliOptions
{
    keq::fuzz::CampaignOptions campaign;
    std::string replayPath;
    std::string jsonPath;
    bool listMutations = false;
    bool checkClasses = false;
    bool summaryOnly = false;
    bool coverageStats = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0 << " [options]\n"
              << "  --seed=N --jobs=N --iterations=N --trials=N\n"
              << "  --mutation=ID --corpus-dir=DIR --replay=FILE\n"
              << "  --list-mutations --max-seconds=S --no-calibrate\n"
              << "  --checkpoint=FILE --checkpoint-fsync=record|batch|off "
                 "--resume\n"
              << "  --no-shrink --check-classes --stats --summary "
                 "--json=FILE\n";
    std::exit(2);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value_of = [&](const std::string &prefix) {
            return arg.substr(prefix.size());
        };
        auto number_of = [&](const std::string &prefix) -> double {
            try {
                size_t used = 0;
                std::string text = value_of(prefix);
                double value = std::stod(text, &used);
                if (used != text.size() || value < 0)
                    usage(argv[0]);
                return value;
            } catch (const std::exception &) {
                usage(argv[0]);
            }
        };
        if (arg.rfind("--seed=", 0) == 0) {
            options.campaign.seed =
                static_cast<uint64_t>(number_of("--seed="));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            options.campaign.jobs =
                static_cast<unsigned>(number_of("--jobs="));
        } else if (arg.rfind("--iterations=", 0) == 0) {
            options.campaign.iterations =
                static_cast<size_t>(number_of("--iterations="));
        } else if (arg.rfind("--trials=", 0) == 0) {
            options.campaign.oracle.trials =
                static_cast<size_t>(number_of("--trials="));
        } else if (arg.rfind("--mutation=", 0) == 0) {
            options.campaign.onlyMutation = value_of("--mutation=");
        } else if (arg.rfind("--corpus-dir=", 0) == 0) {
            options.campaign.corpusDir = value_of("--corpus-dir=");
        } else if (arg.rfind("--replay=", 0) == 0) {
            options.replayPath = value_of("--replay=");
        } else if (arg == "--list-mutations") {
            options.listMutations = true;
        } else if (arg.rfind("--max-seconds=", 0) == 0) {
            options.campaign.maxSeconds = number_of("--max-seconds=");
        } else if (arg.rfind("--checkpoint=", 0) == 0) {
            options.campaign.checkpointPath = value_of("--checkpoint=");
        } else if (arg.rfind("--checkpoint-fsync=", 0) == 0) {
            if (!keq::support::fsyncPolicyFromName(
                    value_of("--checkpoint-fsync=").c_str(),
                    options.campaign.checkpointFsync)) {
                usage(argv[0]);
            }
        } else if (arg == "--resume") {
            options.campaign.resume = true;
        } else if (arg == "--no-calibrate") {
            options.campaign.calibrate = false;
        } else if (arg == "--no-shrink") {
            options.campaign.shrinkFailures = false;
        } else if (arg == "--check-classes") {
            options.checkClasses = true;
        } else if (arg == "--stats") {
            options.coverageStats = true;
        } else if (arg == "--summary") {
            options.summaryOnly = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            options.jsonPath = value_of("--json=");
        } else {
            usage(argv[0]);
        }
    }
    if (options.campaign.resume &&
        options.campaign.checkpointPath.empty()) {
        std::cerr << argv[0]
                  << ": --resume requires --checkpoint=FILE\n";
        std::exit(2);
    }
    if (!options.campaign.onlyMutation.empty() &&
        keq::fuzz::findMutation(options.campaign.onlyMutation) ==
            nullptr) {
        std::cerr << argv[0] << ": unknown mutation '"
                  << options.campaign.onlyMutation
                  << "' (see --list-mutations)\n";
        std::exit(2);
    }
    return options;
}

int
listMutations()
{
    for (const keq::fuzz::Mutation &mutation :
         keq::fuzz::mutationCatalog()) {
        std::printf("%-22s %-12s %-9s %s\n", mutation.id,
                    keq::fuzz::mutationKindName(mutation.kind),
                    mutation.expectEquivalent ? "benign" : "miscompile",
                    mutation.description);
    }
    return 0;
}

int
replay(const CliOptions &options)
{
    std::ifstream file(options.replayPath);
    if (!file) {
        std::cerr << "keq-fuzz: cannot open " << options.replayPath
                  << "\n";
        return 2;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    keq::fuzz::ReplayResult result;
    try {
        result = keq::fuzz::replayReproducer(buffer.str(),
                                             options.campaign);
    } catch (const keq::support::Error &error) {
        std::cerr << "keq-fuzz: replay of " << options.replayPath
                  << " failed: " << error.what() << "\n";
        return 2;
    }
    std::cout << "class:     " << result.classification << "\n"
              << "checker:   "
              << keq::driver::outcomeName(result.oracle.report.outcome)
              << "\n"
              << "execution: "
              << keq::fuzz::execAgreementName(result.oracle.execution)
              << " (" << result.oracle.trialsObserved << "/"
              << result.oracle.trialsRun << " trials observed)\n"
              << "verdict:   "
              << keq::fuzz::oracleVerdictName(result.oracle.verdict)
              << "\n";
    if (!result.detail.empty())
        std::cout << "detail:    " << result.detail << "\n";
    std::cout << (result.reproduced ? "REPRODUCED\n"
                                    : "did not reproduce\n");
    return result.reproduced ? 0 : 1;
}

void
writeJson(const std::string &path,
          const keq::fuzz::CampaignResult &result,
          const keq::fuzz::CampaignOptions &campaign)
{
    keq::bench::JsonReporter json;
    json.field("seed", static_cast<double>(campaign.seed));
    json.field("jobs", static_cast<double>(campaign.jobs));
    json.field("iterations", static_cast<double>(result.iterationsRun));
    json.field("seconds", result.seconds);
    json.field("programs_per_second",
               result.seconds > 0.0
                   ? static_cast<double>(result.stats.programsGenerated) /
                         result.seconds
                   : 0.0);
    json.field("programs", static_cast<double>(
                               result.stats.programsGenerated));
    json.field("instructions",
               static_cast<double>(result.stats.generatedInstructions));
    json.field("baseline_validated",
               static_cast<double>(result.stats.baselineValidated));
    json.field("baseline_unvalidated",
               static_cast<double>(result.stats.baselineUnvalidated));
    json.field("unsupported",
               static_cast<double>(result.stats.unsupported));
    json.field("mutants_applied",
               static_cast<double>(result.stats.mutantsApplied));
    json.field("mutants_killed",
               static_cast<double>(result.stats.mutantsKilled));
    json.field("mutants_neutral",
               static_cast<double>(result.stats.mutantsSurvivedNeutral));
    json.field("benign_accepted",
               static_cast<double>(result.stats.benignAccepted));
    json.field("soundness_bugs",
               static_cast<double>(result.stats.soundnessBugs));
    json.field("completeness_gaps",
               static_cast<double>(result.stats.completenessGaps));
    json.field("inconclusive",
               static_cast<double>(result.stats.inconclusive));
    json.writeFile(path);
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions options = parseArgs(argc, argv);
    if (options.listMutations)
        return listMutations();
    if (!options.replayPath.empty())
        return replay(options);

    keq::fuzz::CampaignResult result;
    try {
        result = keq::fuzz::runCampaign(options.campaign);
    } catch (const keq::support::Error &error) {
        std::cerr << "keq-fuzz: " << error.what() << "\n";
        return 2;
    }

    if (options.summaryOnly) {
        std::cout << result.canonicalSummary();
    } else {
        std::cout << result.renderTable();
        if (result.resumedIterations > 0)
            std::cout << result.resumedIterations
                      << " iterations restored from checkpoint\n";
    }
    if (options.coverageStats)
        std::cout << result.stats.coverage.report();

    if (!options.jsonPath.empty())
        writeJson(options.jsonPath, result, options.campaign);

    int failures = static_cast<int>(result.stats.soundnessBugs +
                                    result.stats.completenessGaps);
    if (options.checkClasses && !result.allMiscompileClassesKilled()) {
        std::cerr << "keq-fuzz: some miscompile class was never "
                     "killed\n";
        failures += 1;
    }
    return failures;
}
