/**
 * @file
 * keq-conformance — differential conformance harness (DESIGN.md §12).
 *
 * Loads the checked-in corpus (the .ll files under tests/corpus),
 * runs every file
 * through the full validation stack in a configuration matrix
 * (in-process vs sandboxed solving, solver cache on/off, SMT
 * optimization stack on/off, 1 vs 4 jobs), and asserts that
 *
 *   1. every cell reaches the identical canonical verdict, and
 *   2. the verdict agrees with the file's `; EXPECT:` annotation.
 *
 * It also prints the opcode/predicate/shape coverage ledger; with
 * --require-coverage the run fails if any supported construct is
 * uncovered by the corpus, which is the ctest completeness gate.
 *
 * Usage:
 *   keq-conformance [options]
 *     --corpus=DIR        corpus directory (default tests/corpus)
 *     --quick             4-cell diagonal instead of the full 16-cell
 *                         matrix
 *     --worker-path=PATH  explicit keq-solver-worker binary for the
 *                         sandbox cells
 *     --no-sandbox        drop the sandbox cells (stripped installs)
 *     --require-coverage  fail unless every opcode, icmp predicate and
 *                         structural shape is exercised
 *     --list              print the parsed corpus and exit
 *     --coverage          print the full coverage ledger
 *     --json=PATH         dump the report as JSON
 *
 * Exit code: 0 all cells consistent and all EXPECTs matched (and, with
 * --require-coverage, ledger complete); 1 conformance failure;
 * 2 usage; 65 corpus unreadable/unparsable.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/conformance/runner.h"
#include "src/support/diagnostics.h"

namespace {

struct CliOptions
{
    std::string corpus_dir = "tests/corpus";
    std::string worker_path;
    std::string json_path;
    bool quick = false;
    bool no_sandbox = false;
    bool require_coverage = false;
    bool list = false;
    bool print_coverage = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0 << " [options]\n"
              << "  --corpus=DIR --quick --worker-path=PATH "
                 "--no-sandbox\n"
              << "  --require-coverage --list --coverage --json=PATH\n";
    std::exit(2);
}

bool
eatPrefix(const std::string &arg, const char *prefix, std::string &value)
{
    std::string p(prefix);
    if (arg.rfind(p, 0) != 0)
        return false;
    value = arg.substr(p.size());
    return true;
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value;
        if (eatPrefix(arg, "--corpus=", value))
            options.corpus_dir = value;
        else if (eatPrefix(arg, "--worker-path=", value))
            options.worker_path = value;
        else if (eatPrefix(arg, "--json=", value))
            options.json_path = value;
        else if (arg == "--quick")
            options.quick = true;
        else if (arg == "--no-sandbox")
            options.no_sandbox = true;
        else if (arg == "--require-coverage")
            options.require_coverage = true;
        else if (arg == "--list")
            options.list = true;
        else if (arg == "--coverage")
            options.print_coverage = true;
        else
            usage(argv[0]);
    }
    return options;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c;
        }
    }
    return out;
}

void
writeJson(const std::string &path,
          const keq::conformance::ConformanceReport &report)
{
    std::ofstream out(path);
    if (!out)
        throw keq::support::Error("cannot write '" + path + "'");
    out << "{\n";
    out << "  \"cases\": " << report.cases.size() << ",\n";
    out << "  \"cells_per_case\": " << report.cellsPerCase << ",\n";
    out << "  \"expect_mismatches\": " << report.expectMismatches()
        << ",\n";
    out << "  \"matrix_inconsistencies\": "
        << report.matrixInconsistencies() << ",\n";
    out << "  \"degraded_sandbox\": "
        << (report.degradedSandbox ? "true" : "false") << ",\n";
    out << "  \"seconds\": " << report.seconds << ",\n";
    out << "  \"coverage_complete\": "
        << (report.coverage.complete() ? "true" : "false") << ",\n";
    out << "  \"coverage\": \""
        << jsonEscape(report.coverage.serialize()) << "\",\n";
    out << "  \"results\": [\n";
    for (size_t i = 0; i < report.cases.size(); ++i) {
        const keq::conformance::CaseResult &result = report.cases[i];
        out << "    {\"name\": \"" << jsonEscape(result.name)
            << "\", \"expect\": \""
            << keq::conformance::expectName(result.expect)
            << "\", \"outcome\": \""
            << keq::driver::outcomeName(result.outcome)
            << "\", \"verdict\": \""
            << keq::checker::verdictKindName(result.kind)
            << "\", \"expect_matched\": "
            << (result.expectMatched ? "true" : "false")
            << ", \"matrix_consistent\": "
            << (result.matrixConsistent ? "true" : "false") << "}"
            << (i + 1 < report.cases.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli = parseArgs(argc, argv);

    std::vector<keq::conformance::CorpusCase> cases;
    try {
        cases = keq::conformance::loadCorpusDir(cli.corpus_dir);
    } catch (const keq::support::Error &err) {
        std::cerr << "keq-conformance: " << err.what() << "\n";
        return 65;
    }

    if (cli.list) {
        for (const keq::conformance::CorpusCase &corpus_case : cases)
            std::cout << corpus_case.name << " expect="
                      << keq::conformance::expectName(corpus_case.expect)
                      << "\n";
        std::cout << cases.size() << " corpus files\n";
        return 0;
    }

    keq::conformance::RunnerOptions runner_options;
    runner_options.workerPath = cli.worker_path;
    runner_options.matrix = cli.quick
                                ? keq::conformance::quickMatrix()
                                : keq::conformance::fullMatrix();
    if (cli.no_sandbox) {
        std::vector<keq::conformance::MatrixCell> kept;
        for (const keq::conformance::MatrixCell &cell :
             runner_options.matrix)
            if (!cell.sandbox)
                kept.push_back(cell);
        runner_options.matrix = kept;
    }

    keq::conformance::ConformanceReport report;
    try {
        report = keq::conformance::runConformance(cases, runner_options);
    } catch (const keq::support::Error &err) {
        std::cerr << "keq-conformance: " << err.what() << "\n";
        return 65;
    }

    std::cout << report.renderTable();

    std::cout << "coverage: "
              << keq::kOpcodeCount -
                     report.coverage.uncoveredOpcodes().size()
              << "/" << keq::kOpcodeCount << " opcodes, "
              << keq::kICmpPredCount -
                     report.coverage.uncoveredPreds().size()
              << "/" << keq::kICmpPredCount << " icmp predicates, "
              << keq::kCoverageShapeCount -
                     report.coverage.uncoveredShapes().size()
              << "/" << keq::kCoverageShapeCount << " shapes\n";
    if (cli.print_coverage)
        std::cout << report.coverage.report();

    if (!cli.json_path.empty()) {
        try {
            writeJson(cli.json_path, report);
        } catch (const keq::support::Error &err) {
            std::cerr << "keq-conformance: " << err.what() << "\n";
            return 65;
        }
    }

    bool ok = report.allOk();
    if (cli.require_coverage && !report.coverage.complete()) {
        ok = false;
        std::cout << "COVERAGE GAP:\n";
        for (keq::llvmir::Opcode op :
             report.coverage.uncoveredOpcodes())
            std::cout << "  opcode " << keq::llvmir::opcodeName(op)
                      << " uncovered\n";
        for (keq::llvmir::ICmpPred pred :
             report.coverage.uncoveredPreds())
            std::cout << "  icmp predicate "
                      << keq::llvmir::icmpPredName(pred)
                      << " uncovered\n";
        for (keq::CoverageShape shape :
             report.coverage.uncoveredShapes())
            std::cout << "  shape " << keq::coverageShapeName(shape)
                      << " uncovered\n";
    }
    std::cout << (ok ? "CONFORMANCE OK" : "CONFORMANCE FAILED") << " ("
              << report.cases.size() << " files, " << report.cellsPerCase
              << " cells, " << report.seconds << "s)\n";
    return ok ? 0 : 1;
}
