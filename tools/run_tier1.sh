#!/bin/sh
# Configure, build, and run the tier-1 test suite in one shot.
#
# Usage:
#   tools/run_tier1.sh [build-dir]        # default build dir: build/
#   KEQ_TSAN=1 tools/run_tier1.sh tsan    # ThreadSanitizer build in tsan/
#
# KEQ_TSAN=1 compiles and links everything with -fsanitize=thread; use a
# separate build directory for it so the instrumented objects don't mix
# with the regular ones.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-build}
case $build_dir in
    /*) ;;
    *) build_dir=$repo_root/$build_dir ;;
esac

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

tsan_flag=OFF
if [ -n "${KEQ_TSAN:-}" ] && [ "${KEQ_TSAN:-0}" != "0" ]; then
    tsan_flag=ON
    # Z3 is uninstrumented; silence its false positives (see tsan.supp).
    TSAN_OPTIONS="suppressions=$repo_root/tools/tsan.supp ${TSAN_OPTIONS:-}"
    export TSAN_OPTIONS
fi

cmake -S "$repo_root" -B "$build_dir" -DKEQ_TSAN=$tsan_flag
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
