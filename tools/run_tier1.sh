#!/bin/sh
# Configure, build, and run the tier-1 test suite in one shot.
#
# Usage:
#   tools/run_tier1.sh [sanitizer] [chaos|conformance|net|portfolio|service|soak] [build-dir]
#
#   tools/run_tier1.sh                # plain build in build/
#   tools/run_tier1.sh tsan           # ThreadSanitizer build in build-tsan/
#   tools/run_tier1.sh asan           # AddressSanitizer build in build-asan/
#   tools/run_tier1.sh asan mydir     # AddressSanitizer build in mydir/
#   tools/run_tier1.sh chaos          # fault-injection suite only (-L chaos)
#   tools/run_tier1.sh tsan chaos     # chaos suite under ThreadSanitizer
#   tools/run_tier1.sh conformance    # conformance suite (-L conformance)
#   tools/run_tier1.sh net            # multi-host transport/failover suite
#                                     #   (-L net)
#   tools/run_tier1.sh portfolio      # portfolio racing suite (-L portfolio)
#   tools/run_tier1.sh service        # validation daemon suite (-L service)
#   tools/run_tier1.sh soak           # daemon soak (-L soak; stretch with
#                                     #   KEQ_SOAK_SECONDS=60)
#
# The legacy spelling `KEQ_TSAN=1 tools/run_tier1.sh tsan-dir` still
# works: when the first argument is not a sanitizer name it is taken as
# the build directory. Each sanitizer gets its own default build
# directory so instrumented objects never mix with regular ones.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

sanitizer=none
case ${1:-} in
    tsan|asan)
        sanitizer=$1
        shift
        ;;
esac

suite=all
case ${1:-} in
    chaos|conformance|net|portfolio|service|soak)
        suite=$1
        shift
        ;;
esac

case $sanitizer in
    tsan) default_dir=build-tsan ;;
    asan) default_dir=build-asan ;;
    *) default_dir=build ;;
esac
build_dir=${1:-$default_dir}
case $build_dir in
    /*) ;;
    *) build_dir=$repo_root/$build_dir ;;
esac

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

tsan_flag=OFF
asan_flag=OFF
if [ "$sanitizer" = tsan ] ||
   { [ -n "${KEQ_TSAN:-}" ] && [ "${KEQ_TSAN:-0}" != "0" ]; }; then
    tsan_flag=ON
    # Z3 is uninstrumented; silence its false positives (see tsan.supp).
    TSAN_OPTIONS="suppressions=$repo_root/tools/tsan.supp ${TSAN_OPTIONS:-}"
    export TSAN_OPTIONS
fi
if [ "$sanitizer" = asan ] ||
   { [ -n "${KEQ_ASAN:-}" ] && [ "${KEQ_ASAN:-0}" != "0" ]; }; then
    asan_flag=ON
    # Z3 is uninstrumented and holds allocations until exit; leak
    # checking would drown real reports in library noise.
    ASAN_OPTIONS="detect_leaks=0 ${ASAN_OPTIONS:-}"
    export ASAN_OPTIONS
fi
if [ "$tsan_flag" = ON ] && [ "$asan_flag" = ON ]; then
    echo "error: tsan and asan are mutually exclusive" >&2
    exit 2
fi

cmake -S "$repo_root" -B "$build_dir" -DKEQ_TSAN=$tsan_flag \
    -DKEQ_ASAN=$asan_flag
cmake --build "$build_dir" -j "$jobs"
if [ "$suite" = chaos ]; then
    # The fault-injection contract: injected solver faults never change
    # a verdict and truncated checkpoints resume exactly (tests labelled
    # `chaos`). Worth running under tsan too — the fault schedule and
    # the watchdog both cross worker threads.
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" -L chaos
elif [ "$suite" = conformance ]; then
    # The differential conformance gate: every corpus file through the
    # full configuration matrix with verdict identity, EXPECT agreement,
    # and full opcode coverage (tests labelled `conformance`).
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" \
        -L conformance
elif [ "$suite" = service ]; then
    # The validation-daemon gate: wire v3 negotiation properties, the
    # fair queue, the cross-run verdict store, in-process daemon
    # integration (full-corpus parity, warm-cache, backpressure), the
    # SIGKILL chaos suite against real keq-daemon processes, and the
    # keqc --daemon degradation script (tests labelled `service`).
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" \
        -L service
elif [ "$suite" = net ]; then
    # The multi-host gate: endpoint grammar + EX_USAGE diagnostics,
    # TCP/unix listener round-trips, WireChannel framing under
    # fragmentation/truncation/silence fault injection, in-process
    # failover determinism (ledger idempotency, heartbeat, v4
    # compatibility, full corpus over TCP), and real-binary keqc
    # failover chaos (tests labelled `net`).
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" \
        -L net
elif [ "$suite" = soak ]; then
    # The month-scale daemon gate: multi-client soak with every warm
    # verdict-store hit audited (trust-but-verify) and concurrent
    # scrub+compact maintenance, asserting zero audit mismatches and
    # daemonless verdict parity throughout. KEQ_SOAK_SECONDS stretches
    # the wall-clock budget (CI uses 60 under ASan).
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" \
        -L soak
elif [ "$suite" = portfolio ]; then
    # The portfolio racing gate: lane roster/spec parsing, race
    # accounting, disagreement oracle, portfolio-off byte-identity,
    # portfolio-vs-single-lane parity over random DAGs and the corpus,
    # and the kill-a-lane-mid-race chaos test (tests labelled
    # `portfolio`).
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" \
        -L portfolio
else
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
fi
