# Exercised by ctest (see tools/CMakeLists.txt): `keq-fuzz --replay`
# against a broken artifact must exit 2 with a diagnostic that names
# the artifact path — never crash, and never pretend to reproduce.
#
#   cmake -DKEQ_FUZZ=<binary> -DMODE=missing|truncated
#         -DWORK_DIR=<dir> -P replay_diagnostic_test.cmake
if(NOT DEFINED KEQ_FUZZ OR NOT DEFINED MODE OR NOT DEFINED WORK_DIR)
    message(FATAL_ERROR
        "usage: cmake -DKEQ_FUZZ=... -DMODE=missing|truncated "
        "-DWORK_DIR=... -P replay_diagnostic_test.cmake")
endif()

if(MODE STREQUAL "missing")
    set(artifact "${WORK_DIR}/keq-replay-missing-artifact.ll")
    file(REMOVE "${artifact}")
elseif(MODE STREQUAL "truncated")
    # A reproducer cut off mid-metadata: the counter is garbage and the
    # module text is gone entirely.
    set(artifact "${WORK_DIR}/keq-replay-truncated-artifact.ll")
    file(WRITE "${artifact}"
        "; keq-fuzz-repro v1\n"
        "; mutation=operand-swap\n"
        "; class=completeness\n"
        "; iteration=0\n"
        "; mutseed=not-a-num")
else()
    message(FATAL_ERROR "unknown MODE '${MODE}'")
endif()

execute_process(
    COMMAND "${KEQ_FUZZ}" "--replay=${artifact}"
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

if(NOT code EQUAL 2)
    message(FATAL_ERROR
        "expected exit code 2, got '${code}'\nstderr: ${err}")
endif()
string(FIND "${err}" "${artifact}" name_at)
if(name_at EQUAL -1)
    message(FATAL_ERROR
        "diagnostic must name the artifact path '${artifact}'\n"
        "stderr: ${err}")
endif()
if(MODE STREQUAL "truncated")
    string(FIND "${err}" "mutseed" field_at)
    if(field_at EQUAL -1)
        message(FATAL_ERROR
            "diagnostic must name the corrupt field\nstderr: ${err}")
    endif()
endif()
