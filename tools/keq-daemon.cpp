/**
 * @file
 * keqd — the persistent validation daemon.
 *
 * Runs a service::Server on a Unix-domain socket: warm solver stacks,
 * a shared query cache backed by the persistent verdict store, and
 * per-client fair queueing. Clients are keqc --daemon=SOCKET (and the
 * service tests/bench).
 *
 * Usage:
 *   keq-daemon --socket=PATH [options]
 *     --jobs=N               pool worker threads (0 = #cores)
 *     --max-inflight=N       per-client in-flight job cap before
 *                            Busy replies (0 = uncapped)
 *     --verdict-journal=PATH persist the verdict store here; loaded
 *                            on startup, appended per fresh verdict
 *     --journal-fsync=record|batch|off
 *                            verdict-journal durability (default off)
 *     --solver-cache-mb=N    shared query-cache budget (default 512)
 *     --sandbox              solve in sandboxed worker processes
 *     --sandbox-workers=N    sandbox pool size (0 = match --jobs)
 *     --worker-memory-mb=N   RLIMIT_AS per sandbox worker
 *     --worker-path=PATH     explicit keq-solver-worker binary
 *     --status               query a running daemon and exit
 *     --stop                 ask a running daemon to shut down
 *
 * SIGINT/SIGTERM (and a client Shutdown frame) stop the daemon
 * cleanly: in-flight checks are cancelled, the socket is unlinked, and
 * the journal is left consistent (it is consistent at every record
 * boundary anyway).
 *
 * Exit code: 0 on clean shutdown / successful --status / --stop,
 * 1 when the daemon cannot start or the probe target is unreachable,
 * 2 for usage errors.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <time.h>

#include "src/service/client.h"
#include "src/service/server.h"
#include "src/support/journal.h"

namespace {

volatile std::sig_atomic_t g_signalled = 0;

extern "C" void
handleStopSignal(int)
{
    g_signalled = 1;
}

struct CliOptions
{
    keq::service::ServerOptions server;
    bool status = false;
    bool stop = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0 << " --socket=PATH [options]\n"
              << "  --jobs=N --max-inflight=N\n"
              << "  --verdict-journal=PATH "
                 "--journal-fsync=record|batch|off\n"
              << "  --solver-cache-mb=N\n"
              << "  --sandbox --sandbox-workers=N --worker-memory-mb=N "
                 "--worker-path=PATH\n"
              << "  --status --stop\n";
    std::exit(2);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value_of = [&](const std::string &prefix) {
            return arg.substr(prefix.size());
        };
        auto number_of = [&](const std::string &prefix) -> double {
            try {
                size_t used = 0;
                std::string text = value_of(prefix);
                double value = std::stod(text, &used);
                if (used != text.size() || value < 0)
                    usage(argv[0]);
                return value;
            } catch (const std::exception &) {
                usage(argv[0]);
            }
        };
        if (arg.rfind("--socket=", 0) == 0) {
            options.server.socketPath = value_of("--socket=");
        } else if (arg.rfind("--jobs=", 0) == 0) {
            options.server.jobs =
                static_cast<unsigned>(number_of("--jobs="));
        } else if (arg.rfind("--max-inflight=", 0) == 0) {
            options.server.maxInFlightPerClient =
                static_cast<unsigned>(number_of("--max-inflight="));
        } else if (arg.rfind("--verdict-journal=", 0) == 0) {
            options.server.verdictJournalPath =
                value_of("--verdict-journal=");
        } else if (arg.rfind("--journal-fsync=", 0) == 0) {
            if (!keq::support::fsyncPolicyFromName(
                    value_of("--journal-fsync=").c_str(),
                    options.server.journalFsync)) {
                usage(argv[0]);
            }
        } else if (arg.rfind("--solver-cache-mb=", 0) == 0) {
            options.server.cacheMemoryMb =
                static_cast<size_t>(number_of("--solver-cache-mb="));
        } else if (arg == "--sandbox") {
            options.server.sandbox = true;
        } else if (arg.rfind("--sandbox-workers=", 0) == 0) {
            options.server.sandboxWorkers =
                static_cast<unsigned>(number_of("--sandbox-workers="));
        } else if (arg.rfind("--worker-memory-mb=", 0) == 0) {
            options.server.workerMemoryMb =
                static_cast<unsigned>(number_of("--worker-memory-mb="));
        } else if (arg.rfind("--worker-path=", 0) == 0) {
            options.server.workerPath = value_of("--worker-path=");
        } else if (arg == "--status") {
            options.status = true;
        } else if (arg == "--stop") {
            options.stop = true;
        } else {
            usage(argv[0]);
        }
    }
    if (options.server.socketPath.empty())
        usage(argv[0]);
    if (options.status && options.stop)
        usage(argv[0]);
    return options;
}

int
runProbe(const CliOptions &options)
{
    using namespace keq;
    service::DaemonClientOptions copts;
    copts.socketPath = options.server.socketPath;
    copts.clientName = "keqd-cli";
    service::DaemonClient client(copts);
    std::string error;
    if (!client.connect(error)) {
        std::cerr << "keqd: " << error << "\n";
        return 1;
    }
    if (options.stop) {
        if (!client.requestShutdown(error)) {
            std::cerr << "keqd: " << error << "\n";
            return 1;
        }
        std::cout << "shutdown requested (daemon pid "
                  << client.serverHello().pid << ")\n";
        return 0;
    }
    smt::wire::JobStatusFrame status;
    if (!client.queryStatus(status, error)) {
        std::cerr << "keqd: " << error << "\n";
        return 1;
    }
    std::printf("daemon pid %llu on %s\n",
                static_cast<unsigned long long>(
                    client.serverHello().pid),
                options.server.socketPath.c_str());
    std::printf("  clients:   %llu active\n",
                static_cast<unsigned long long>(status.activeClients));
    std::printf("  jobs:      %llu queued, %llu running, %llu "
                "completed, %llu busy-rejected\n",
                static_cast<unsigned long long>(status.queuedJobs),
                static_cast<unsigned long long>(status.runningJobs),
                static_cast<unsigned long long>(status.completedJobs),
                static_cast<unsigned long long>(status.busyRejects));
    std::printf("  store:     %llu verdicts\n",
                static_cast<unsigned long long>(status.storeEntries));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace keq;
    CliOptions options = parseArgs(argc, argv);
    if (options.status || options.stop)
        return runProbe(options);

    service::Server server(options.server);
    std::string error;
    if (!server.start(error)) {
        std::cerr << "keqd: " << error << "\n";
        return 1;
    }
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);
    std::cerr << "keqd: listening on " << options.server.socketPath
              << " (" << server.store().size()
              << " verdicts preloaded)\n";

    // Signal handlers cannot take the shutdown mutex, so the main
    // thread polls both stop sources.
    while (!g_signalled && !server.shutdownRequested()) {
        struct timespec ts = {0, 100 * 1000000L};
        ::nanosleep(&ts, nullptr);
    }
    server.stop();

    service::ServerStats stats = server.stats();
    service::VerdictStore::Stats store = server.store().stats();
    std::cerr << "keqd: stopped — " << stats.completed
              << " jobs completed for " << stats.accepted
              << " connections, " << store.appended
              << " verdicts journaled (" << store.entries
              << " in store), " << stats.busyRejects
              << " busy rejects, " << stats.droppedJobs
              << " jobs dropped\n";
    return 0;
}
