/**
 * @file
 * keqd — the persistent validation daemon.
 *
 * Runs a service::Server on any mix of Unix-domain and TCP listeners:
 * warm solver stacks, a shared query cache backed by the persistent
 * verdict store, and per-client fair queueing — one FairQueue and one
 * store regardless of how many transports feed it. Clients are
 * keqc --daemon=ENDPOINTS (and the service tests/bench).
 *
 * Usage:
 *   keq-daemon --socket=PATH | --listen=SPEC [options]
 *     --listen=SPEC          endpoint to serve; repeatable. SPEC is
 *                            unix:PATH, tcp:HOST:PORT, or
 *                            tcp:[V6ADDR]:PORT (port 0 = ephemeral;
 *                            the bound port is printed at startup)
 *     --jobs=N               pool worker threads (0 = #cores)
 *     --max-inflight=N       per-client in-flight job cap before
 *                            Busy replies (0 = uncapped)
 *     --max-queued=N         per-client *queued* job cap (0 = off)
 *     --client-rate=X        per-client sustained submits/sec
 *                            (token bucket; 0 = unlimited)
 *     --client-burst=N       token-bucket burst size (default 64)
 *     --job-deadline-ms=N    wall deadline per job, queueing included
 *                            (0 = none)
 *     --verdict-journal=PATH persist the verdict store here; loaded
 *                            on startup, appended per fresh verdict
 *     --verdict-store-mb=N   byte cap on the resident verdict set;
 *                            LRU eviction past it (0 = unbounded)
 *     --journal-fsync=record|batch|off
 *                            verdict-journal durability (default off)
 *     --audit-rate=X         trust-but-verify sample of journal-
 *                            preloaded verdict hits re-checked before
 *                            being served (0 = off, 1 = every hit)
 *     --audit-seed=N         deterministic audit sampling seed
 *     --job-ledger=N         completed jobs remembered for idempotent
 *                            failover resubmission (default 4096,
 *                            0 disables dedup)
 *     --drain-timeout-ms=N   max graceful-drain wait on SIGTERM
 *                            before hard stop (default 30000)
 *     --solver-cache-mb=N    shared query-cache budget (default 512)
 *     --sandbox              solve in sandboxed worker processes
 *     --sandbox-workers=N    sandbox pool size (0 = match --jobs)
 *     --worker-memory-mb=N   RLIMIT_AS per sandbox worker
 *     --worker-path=PATH     explicit keq-solver-worker binary
 *     --status               query a running daemon and exit
 *     --stop                 ask a running daemon to shut down
 *
 * Signals:
 *   SIGTERM  graceful drain — stop accepting clients and submissions,
 *            finish every admitted job (bounded by --drain-timeout-ms),
 *            flush the journal, exit. Loses zero accepted jobs.
 *   SIGINT   immediate stop — in-flight checks are cancelled, queued
 *            jobs are dropped, the journal stays record-consistent.
 *   SIGHUP   maintenance — integrity-scrub the verdict store and
 *            compact its journal, while serving.
 *
 * A client Shutdown frame behaves like SIGINT.
 *
 * Exit code: 0 on clean shutdown / successful --status / --stop,
 * 1 when the daemon cannot start or the probe target is unreachable,
 * 2 for usage errors, 64 (EX_USAGE) for a malformed --listen endpoint
 * (the diagnostic names the offending SPEC and what was wrong).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <time.h>

#include "src/service/client.h"
#include "src/service/endpoint.h"
#include "src/service/server.h"
#include "src/support/journal.h"

namespace {

/** BSD sysexits EX_USAGE: malformed endpoint spec, not a typo'd flag. */
constexpr int kExUsage = 64;

volatile std::sig_atomic_t g_stop = 0;  // SIGINT: immediate
volatile std::sig_atomic_t g_drain = 0; // SIGTERM: graceful
volatile std::sig_atomic_t g_hup = 0;   // SIGHUP: scrub + compact

extern "C" void
handleStopSignal(int)
{
    g_stop = 1;
}

extern "C" void
handleDrainSignal(int)
{
    g_drain = 1;
}

extern "C" void
handleHupSignal(int)
{
    g_hup = 1;
}

struct CliOptions
{
    keq::service::ServerOptions server;
    unsigned drainTimeoutMs = 30000;
    bool status = false;
    bool stop = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " --socket=PATH | --listen=SPEC [options]\n"
              << "  --listen=unix:PATH|tcp:HOST:PORT (repeatable)\n"
              << "  --jobs=N --max-inflight=N --max-queued=N\n"
              << "  --client-rate=X --client-burst=N "
                 "--job-deadline-ms=N\n"
              << "  --verdict-journal=PATH --verdict-store-mb=N "
                 "--journal-fsync=record|batch|off\n"
              << "  --audit-rate=X --audit-seed=N --job-ledger=N\n"
              << "  --drain-timeout-ms=N --solver-cache-mb=N\n"
              << "  --sandbox --sandbox-workers=N --worker-memory-mb=N "
                 "--worker-path=PATH\n"
              << "  --status --stop\n";
    std::exit(2);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value_of = [&](const std::string &prefix) {
            return arg.substr(prefix.size());
        };
        auto number_of = [&](const std::string &prefix) -> double {
            try {
                size_t used = 0;
                std::string text = value_of(prefix);
                double value = std::stod(text, &used);
                if (used != text.size() || value < 0)
                    usage(argv[0]);
                return value;
            } catch (const std::exception &) {
                usage(argv[0]);
            }
        };
        if (arg.rfind("--socket=", 0) == 0) {
            options.server.socketPath = value_of("--socket=");
        } else if (arg.rfind("--listen=", 0) == 0) {
            keq::service::Endpoint endpoint;
            std::string endpointError;
            if (!keq::service::parseEndpoint(value_of("--listen="),
                                             endpoint, endpointError)) {
                std::cerr << "keqd: --listen: " << endpointError
                          << "\n";
                std::exit(kExUsage);
            }
            options.server.listen.push_back(std::move(endpoint));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            options.server.jobs =
                static_cast<unsigned>(number_of("--jobs="));
        } else if (arg.rfind("--max-inflight=", 0) == 0) {
            options.server.maxInFlightPerClient =
                static_cast<unsigned>(number_of("--max-inflight="));
        } else if (arg.rfind("--max-queued=", 0) == 0) {
            options.server.maxQueuedPerClient =
                static_cast<unsigned>(number_of("--max-queued="));
        } else if (arg.rfind("--client-rate=", 0) == 0) {
            options.server.clientRatePerSec =
                number_of("--client-rate=");
        } else if (arg.rfind("--client-burst=", 0) == 0) {
            options.server.clientBurst =
                static_cast<unsigned>(number_of("--client-burst="));
        } else if (arg.rfind("--job-deadline-ms=", 0) == 0) {
            options.server.jobDeadlineMs =
                static_cast<unsigned>(number_of("--job-deadline-ms="));
        } else if (arg.rfind("--verdict-journal=", 0) == 0) {
            options.server.verdictJournalPath =
                value_of("--verdict-journal=");
        } else if (arg.rfind("--verdict-store-mb=", 0) == 0) {
            options.server.verdictStoreMaxBytes =
                static_cast<uint64_t>(
                    number_of("--verdict-store-mb="))
                << 20;
        } else if (arg.rfind("--journal-fsync=", 0) == 0) {
            if (!keq::support::fsyncPolicyFromName(
                    value_of("--journal-fsync=").c_str(),
                    options.server.journalFsync)) {
                usage(argv[0]);
            }
        } else if (arg.rfind("--audit-rate=", 0) == 0) {
            options.server.auditRate = number_of("--audit-rate=");
            if (options.server.auditRate > 1.0)
                usage(argv[0]);
        } else if (arg.rfind("--audit-seed=", 0) == 0) {
            options.server.auditSeed =
                static_cast<uint64_t>(number_of("--audit-seed="));
        } else if (arg.rfind("--job-ledger=", 0) == 0) {
            options.server.jobLedgerEntries =
                static_cast<size_t>(number_of("--job-ledger="));
        } else if (arg.rfind("--drain-timeout-ms=", 0) == 0) {
            options.drainTimeoutMs =
                static_cast<unsigned>(number_of("--drain-timeout-ms="));
        } else if (arg.rfind("--solver-cache-mb=", 0) == 0) {
            options.server.cacheMemoryMb =
                static_cast<size_t>(number_of("--solver-cache-mb="));
        } else if (arg == "--sandbox") {
            options.server.sandbox = true;
        } else if (arg.rfind("--sandbox-workers=", 0) == 0) {
            options.server.sandboxWorkers =
                static_cast<unsigned>(number_of("--sandbox-workers="));
        } else if (arg.rfind("--worker-memory-mb=", 0) == 0) {
            options.server.workerMemoryMb =
                static_cast<unsigned>(number_of("--worker-memory-mb="));
        } else if (arg.rfind("--worker-path=", 0) == 0) {
            options.server.workerPath = value_of("--worker-path=");
        } else if (arg == "--status") {
            options.status = true;
        } else if (arg == "--stop") {
            options.stop = true;
        } else {
            usage(argv[0]);
        }
    }
    if (options.server.socketPath.empty() &&
        options.server.listen.empty())
        usage(argv[0]);
    if (options.status && options.stop)
        usage(argv[0]);
    return options;
}

int
runProbe(const CliOptions &options)
{
    using namespace keq;
    service::DaemonClientOptions copts;
    // Probe whichever endpoints the daemon was told to serve: the
    // legacy --socket first (if any), then every --listen.
    if (!options.server.socketPath.empty())
        copts.endpoints.push_back(
            service::unixEndpoint(options.server.socketPath));
    copts.endpoints.insert(copts.endpoints.end(),
                           options.server.listen.begin(),
                           options.server.listen.end());
    copts.clientName = "keqd-cli";
    service::DaemonClient client(copts);
    std::string error;
    if (!client.connect(error)) {
        std::cerr << "keqd: " << error << "\n";
        return 1;
    }
    if (options.stop) {
        if (!client.requestShutdown(error)) {
            std::cerr << "keqd: " << error << "\n";
            return 1;
        }
        std::cout << "shutdown requested (daemon pid "
                  << client.serverHello().pid << ")\n";
        return 0;
    }
    smt::wire::JobStatusFrame status;
    if (!client.queryStatus(status, error)) {
        std::cerr << "keqd: " << error << "\n";
        return 1;
    }
    std::printf("daemon pid %llu on %s%s\n",
                static_cast<unsigned long long>(
                    client.serverHello().pid),
                service::endpointToString(client.activeEndpoint())
                    .c_str(),
                status.draining != 0 ? " (draining)" : "");
    std::printf("  clients:   %llu active (%llu unix + %llu tcp "
                "accepts)\n",
                static_cast<unsigned long long>(status.activeClients),
                static_cast<unsigned long long>(status.acceptedUnix),
                static_cast<unsigned long long>(status.acceptedTcp));
    std::printf("  jobs:      %llu queued, %llu running, %llu "
                "completed, %llu busy-rejected, %llu quota-rejected\n",
                static_cast<unsigned long long>(status.queuedJobs),
                static_cast<unsigned long long>(status.runningJobs),
                static_cast<unsigned long long>(status.completedJobs),
                static_cast<unsigned long long>(status.busyRejects),
                static_cast<unsigned long long>(status.quotaRejects));
    std::printf("  failover:  %llu resubmits served from the "
                "completed-job ledger\n",
                static_cast<unsigned long long>(status.dedupHits));
    std::printf("  store:     %llu verdicts, %llu bytes, %llu "
                "evicted, %llu quarantined\n",
                static_cast<unsigned long long>(status.storeEntries),
                static_cast<unsigned long long>(status.storeBytes),
                static_cast<unsigned long long>(status.storeEvictions),
                static_cast<unsigned long long>(
                    status.storeQuarantined));
    std::printf("  audits:    %llu mismatches\n",
                static_cast<unsigned long long>(
                    status.auditMismatches));
    return 0;
}

void
sleepTickMs(unsigned ms)
{
    struct timespec ts;
    ts.tv_sec = ms / 1000;
    ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
    ::nanosleep(&ts, nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace keq;
    CliOptions options = parseArgs(argc, argv);
    if (options.status || options.stop)
        return runProbe(options);

    service::Server server(options.server);
    std::string error;
    if (!server.start(error)) {
        std::cerr << "keqd: " << error << "\n";
        return 1;
    }
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleDrainSignal);
    std::signal(SIGHUP, handleHupSignal);
    // The banner prints *bound* endpoints: a tcp:...:0 listen shows
    // its resolved ephemeral port here (tests and scripts scrape it).
    std::string bound;
    for (const auto &endpoint : server.boundEndpoints()) {
        if (!bound.empty())
            bound += ", ";
        bound += service::endpointToString(endpoint);
    }
    std::cerr << "keqd: listening on " << bound << " ("
              << server.store().size() << " verdicts preloaded)\n";

    // Signal handlers cannot take the shutdown mutex, so the main
    // thread polls every stop source.
    bool drainLogged = false;
    long long drainBudgetMs = 0;
    while (!g_stop && !server.shutdownRequested()) {
        if (g_hup) {
            g_hup = 0;
            server.scrubAndCompactStore();
        }
        if (g_drain) {
            if (!drainLogged) {
                drainLogged = true;
                drainBudgetMs = options.drainTimeoutMs;
                server.beginDrain();
                std::cerr << "keqd: draining (" << options.drainTimeoutMs
                          << " ms budget)\n";
            }
            if (server.drained()) {
                std::cerr << "keqd: drained cleanly\n";
                break;
            }
            if (drainBudgetMs <= 0) {
                std::cerr << "keqd: drain timeout; stopping with jobs "
                             "in flight\n";
                break;
            }
            drainBudgetMs -= 100;
        }
        sleepTickMs(100);
    }
    server.stop();

    service::ServerStats stats = server.stats();
    service::VerdictStore::Stats store = server.store().stats();
    std::cerr << "keqd: stopped — " << stats.completed
              << " jobs completed for " << stats.accepted
              << " connections, " << store.appended
              << " verdicts journaled (" << store.entries
              << " in store, " << store.evictions << " evicted), "
              << stats.busyRejects << " busy rejects, "
              << stats.quotaRejects << " quota rejects, "
              << stats.expiredJobs << " deadline-expired, "
              << stats.auditMismatches << " audit mismatches, "
              << stats.dedupHits << " ledger dedup hits, "
              << stats.droppedJobs << " jobs dropped ("
              << stats.acceptedUnix << " unix + " << stats.acceptedTcp
              << " tcp accepts)\n";
    return 0;
}
