/**
 * @file
 * Sandboxed solver worker: one solver stack in a disposable process.
 *
 * Spawned by smt::WorkerSupervisor with its stdin/stdout as the wire
 * protocol transport (src/smt/wire.h). The process is the containment
 * boundary: hard setrlimit caps (RLIMIT_AS, RLIMIT_CPU, RLIMIT_CORE=0)
 * bound what any single query can cost the machine, and any crash —
 * solver segfault, allocation storm, wedged native code — kills this
 * process only, to be classified and absorbed by the supervisor.
 *
 * Protocol role: emit Ready, then serve Reset/Query/Shutdown frames.
 * A Reset begins a *session*: a fresh TermFactory plus the same solver
 * stack the in-process pipeline runs (incremental Z3 -> memoizing
 * cache -> guarded escalation ladder), so sandboxed verdicts are
 * bit-identical to in-process ones. The query cache outlives sessions
 * (its structural fingerprints are factory-independent). While a query
 * is in flight a heartbeat thread reports liveness and resident-set
 * size; the RSS rides into the supervisor's OOM forensics.
 *
 * Exit codes: 0 on Shutdown/EOF, 2 on usage errors, 77 when a query
 * hits std::bad_alloc (self-reported OOM under the rlimit), 3 on a
 * transport failure (parent vanished).
 */

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>
#include <unistd.h>

#include "src/smt/caching_solver.h"
#include "src/smt/guarded_solver.h"
#include "src/smt/incremental_z3_solver.h"
#include "src/smt/portfolio_solver.h"
#include "src/smt/sandbox.h"
#include "src/smt/term_factory.h"
#include "src/smt/wire.h"
#include "src/smt/z3_solver.h"

namespace {

using namespace keq;

/** Transport fds: stdin stays the inbound pipe; the outbound pipe is
 *  dup'ed away from fd 1 so stray printf()s (Z3 diagnostics, debug
 *  output) land on stderr instead of corrupting the protocol. */
int gWireIn = 0;
int gWireOut = -1;

std::mutex gWriteMutex;           // serializes whole frames
std::atomic<uint64_t> gInFlight{0}; // seq of the running query, 0 = idle

bool
writeFrame(const std::string &bytes)
{
    size_t offset = 0;
    while (offset < bytes.size()) {
        ssize_t wrote = ::write(gWireOut, bytes.data() + offset,
                                bytes.size() - offset);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        offset += static_cast<size_t>(wrote);
    }
    return true;
}

bool
readExact(std::string &out, size_t bytes)
{
    char buffer[4096];
    while (bytes > 0) {
        size_t chunk = bytes < sizeof buffer ? bytes : sizeof buffer;
        ssize_t got = ::read(gWireIn, buffer, chunk);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (got == 0)
            return false; // parent closed the pipe
        out.append(buffer, static_cast<size_t>(got));
        bytes -= static_cast<size_t>(got);
    }
    return true;
}

/** Resident set in KB from /proc/self/statm (0 when unreadable). */
uint64_t
residentKb()
{
    std::FILE *statm = std::fopen("/proc/self/statm", "r");
    if (statm == nullptr)
        return 0;
    unsigned long totalPages = 0, residentPages = 0;
    int fields = std::fscanf(statm, "%lu %lu", &totalPages,
                             &residentPages);
    std::fclose(statm);
    if (fields != 2)
        return 0;
    long pageSize = ::sysconf(_SC_PAGESIZE);
    return uint64_t(residentPages) *
           static_cast<uint64_t>(pageSize > 0 ? pageSize : 4096) / 1024;
}

void
applyRlimits(unsigned memoryMb, unsigned cpuSeconds)
{
    // Never write core files: a chaos run SIGSEGVs workers on purpose
    // and must not litter (or slow down on) multi-GB dumps.
    struct rlimit none = {0, 0};
    ::setrlimit(RLIMIT_CORE, &none);
    if (memoryMb > 0) {
        rlim_t bytes = rlim_t(memoryMb) << 20;
        struct rlimit cap = {bytes, bytes};
        ::setrlimit(RLIMIT_AS, &cap);
    }
    if (cpuSeconds > 0) {
        struct rlimit cap = {cpuSeconds, cpuSeconds};
        ::setrlimit(RLIMIT_CPU, &cap);
    }
}

/** One Reset's worth of state: fresh factory + solver stack. */
struct Session
{
    std::unique_ptr<smt::TermFactory> factory;
    std::unique_ptr<smt::Solver> backend;
    std::unique_ptr<smt::CachingSolver> caching;
    std::unique_ptr<smt::GuardedSolver> guard;
    smt::wire::VarSortContext varSorts;
    unsigned timeoutMs = 0;

    static Session
    make(const smt::wire::ResetFrame &config,
         const smt::LaneConfig &lane,
         const std::shared_ptr<smt::QueryCache> &cache)
    {
        Session s;
        s.factory = std::make_unique<smt::TermFactory>();
        // The lane strategy decides the backend: the default lane is
        // the incremental stack protocol v1 always built; tuned and
        // cold lanes exist only when the parent races a portfolio.
        s.backend = smt::makeLaneBackend(*s.factory, lane);
        s.caching = std::make_unique<smt::CachingSolver>(
            *s.factory, *s.backend, cache);
        // The guard's terminal rung is a pristine cold solver — the
        // same ladder the in-process pipeline runs, so escalation
        // behaviour (and therefore verdicts) match exactly. It stays
        // untuned even for tuned lanes: a lane that needs its terminal
        // rung should converge to the reference configuration.
        smt::TermFactory *factory = s.factory.get();
        std::vector<smt::GuardedSolver::RungFactory> fallbacks;
        fallbacks.push_back([factory] {
            return std::make_unique<smt::Z3Solver>(*factory);
        });
        smt::GuardedSolverOptions guardOptions;
        guardOptions.deadlineMs =
            config.timeoutMs > 0 ? config.timeoutMs + 1000 : 0;
        // Arm the watchdog even without a deadline: the parent's
        // Cancel frame rides guard->cancelCurrentQuery(), which needs
        // the re-firing interrupt loop to reap a losing lane.
        guardOptions.cancellable = true;
        s.guard = std::make_unique<smt::GuardedSolver>(
            *s.factory, *s.caching, std::move(fallbacks),
            guardOptions);
        s.timeoutMs = config.timeoutMs;
        s.guard->setTimeoutMs(config.timeoutMs);
        if (config.memoryBudgetMb > 0)
            s.guard->setMemoryBudgetMb(config.memoryBudgetMb);
        return s;
    }
};

/** Liveness thread: beats only while a query is in flight, and only
 *  outside the moment the main thread is emitting that query's Result
 *  (the shared write mutex + in-flight re-check guarantee no frame is
 *  ever sequenced after its own Result). */
void
heartbeatLoop(unsigned intervalMs, const std::atomic<bool> *stop)
{
    while (!stop->load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(intervalMs));
        std::unique_lock<std::mutex> lock(gWriteMutex);
        uint64_t seq = gInFlight.load(std::memory_order_relaxed);
        if (seq == 0)
            continue;
        smt::wire::HeartbeatFrame beat;
        beat.querySeq = seq;
        beat.rssKb = residentKb();
        writeFrame(smt::wire::encodeHeartbeat(beat));
    }
}

int
workerMain(unsigned memoryMb, unsigned cpuSeconds, unsigned heartbeatMs)
{
    applyRlimits(memoryMb, cpuSeconds);
    // The supervisor owns this process's lifetime; a SIGINT aimed at
    // the operator's keqc run must not race the supervisor's own
    // teardown. SIGPIPE becomes an EPIPE write error.
    std::signal(SIGINT, SIG_IGN);
    std::signal(SIGPIPE, SIG_IGN);

    // Re-point the protocol away from fd 1 (see gWireOut above).
    gWireOut = ::dup(STDOUT_FILENO);
    if (gWireOut < 0)
        return 3;
    ::dup2(STDERR_FILENO, STDOUT_FILENO);

    {
        smt::wire::ReadyFrame ready;
        ready.protocolVersion = smt::wire::kProtocolVersion;
        ready.pid = static_cast<uint64_t>(::getpid());
        std::unique_lock<std::mutex> lock(gWriteMutex);
        if (!writeFrame(smt::wire::encodeReady(ready)))
            return 3;
    }

    std::atomic<bool> stopHeartbeat{false};
    std::thread heartbeat(heartbeatLoop,
                          heartbeatMs == 0 ? 250 : heartbeatMs,
                          &stopHeartbeat);

    // The verdict cache outlives sessions: fingerprints are
    // factory-independent, so verdicts proven for one function answer
    // identical queries from later ones.
    auto cache = std::make_shared<smt::QueryCache>();
    std::unique_ptr<Session> session;

    // Queries solve on their own thread so this loop keeps draining
    // frames — a Cancel must be able to land *during* a solve (that is
    // its whole point: reaping a losing portfolio lane mid-race). The
    // parent never pipelines a second Query/Reset before this one's
    // Result, so joinSolve() only ever blocks when the parent vanished
    // mid-query (we cancel first so the join terminates).
    std::thread solve;
    auto joinSolve = [&] {
        if (solve.joinable())
            solve.join();
    };

    int exitCode = 0;
    for (;;) {
        std::string header;
        if (!readExact(header, 4)) {
            exitCode = 0; // parent closed: normal teardown
            if (session != nullptr && solve.joinable())
                session->guard->cancelCurrentQuery();
            break;
        }
        smt::wire::Decoder headerDec(header);
        uint32_t length = 0;
        headerDec.u32(length);
        if (length == 0 || length > smt::wire::kMaxFramePayload) {
            exitCode = 3;
            break;
        }
        std::string payload;
        if (!readExact(payload, length)) {
            exitCode = 3;
            break;
        }
        smt::wire::FrameType type;
        std::string body;
        if (!smt::wire::splitFrame(payload, type, body)) {
            std::unique_lock<std::mutex> lock(gWriteMutex);
            writeFrame(smt::wire::encodeError("unknown frame type"));
            continue;
        }

        if (type == smt::wire::FrameType::Shutdown) {
            joinSolve();
            exitCode = 0;
            break;
        }
        if (type == smt::wire::FrameType::Cancel) {
            smt::wire::CancelFrame cancel;
            std::string error;
            if (!smt::wire::decodeCancel(body, cancel, error)) {
                std::unique_lock<std::mutex> lock(gWriteMutex);
                writeFrame(smt::wire::encodeError(
                    "corrupt cancel frame: " + error));
                continue;
            }
            // Only the in-flight seq is cancellable; a stale Cancel
            // (the race already ended) is silently ignored. The solve
            // thread still emits a Result (kind Cancelled) for the
            // cancelled seq, keeping the stream in lockstep.
            if (session != nullptr && cancel.seq != 0 &&
                cancel.seq ==
                    gInFlight.load(std::memory_order_relaxed)) {
                session->guard->cancelCurrentQuery();
            }
            continue;
        }
        if (type == smt::wire::FrameType::Reset) {
            smt::wire::ResetFrame config;
            std::string error;
            if (!smt::wire::decodeReset(body, config, error)) {
                std::unique_lock<std::mutex> lock(gWriteMutex);
                writeFrame(smt::wire::encodeError(
                    "corrupt reset frame: " + error));
                continue;
            }
            smt::LaneConfig lane;
            if (!config.strategy.empty()) {
                std::vector<smt::LaneConfig> lanes;
                if (!smt::parsePortfolioLanes(config.strategy, lanes,
                                              error) ||
                    lanes.size() != 1) {
                    std::unique_lock<std::mutex> lock(gWriteMutex);
                    writeFrame(smt::wire::encodeError(
                        "bad reset strategy: " +
                        (error.empty() ? "expected one lane" : error)));
                    continue;
                }
                lane = std::move(lanes[0]);
            } else {
                lane.name = "default";
            }
            joinSolve(); // the old session must be idle before dying
            session = std::make_unique<Session>(
                Session::make(config, lane, cache));
            continue;
        }
        if (type != smt::wire::FrameType::Query) {
            std::unique_lock<std::mutex> lock(gWriteMutex);
            writeFrame(
                smt::wire::encodeError("unexpected frame from parent"));
            continue;
        }
        if (session == nullptr) {
            std::unique_lock<std::mutex> lock(gWriteMutex);
            writeFrame(
                smt::wire::encodeError("query before first reset"));
            continue;
        }

        joinSolve(); // the previous query's Result is already out

        smt::wire::QueryFrame query;
        std::string error;
        if (!smt::wire::decodeQuery(body, *session->factory,
                                    &session->varSorts, query, error)) {
            std::unique_lock<std::mutex> lock(gWriteMutex);
            writeFrame(
                smt::wire::encodeError("corrupt query: " + error));
            continue;
        }

        if (query.timeoutMs != session->timeoutMs) {
            session->guard->setTimeoutMs(query.timeoutMs);
            session->timeoutMs = query.timeoutMs;
        }

        // All frame decoding (factory mutation) happened above on this
        // thread; the solve thread only runs the solver stack, so the
        // frame pump and the solve never touch the factory
        // concurrently.
        Session *live = session.get();
        gInFlight.store(query.seq, std::memory_order_relaxed);
        solve = std::thread([live, query = std::move(query)] {
            smt::wire::ResultFrame result;
            result.seq = query.seq;
            smt::SolverStats before = live->guard->stats();
            try {
                result.result =
                    live->guard->checkSat(query.assertions);
                result.failureKind = live->guard->lastFailureKind();
                result.unknownReason =
                    live->guard->lastUnknownReason();
            } catch (const std::bad_alloc &) {
                // The rlimit tripped inside the solver. The heap may
                // be unusable; report via the exit code, not the wire.
                std::_Exit(smt::kWorkerOomExitCode);
            } catch (const std::exception &crash) {
                // The guard absorbs backend crashes while rungs
                // remain; one escaping means the whole ladder failed.
                result.result = smt::SatResult::Unknown;
                result.failureKind = FailureKind::SolverCrash;
                result.unknownReason = crash.what();
            }
            result.stats = live->guard->stats() - before;

            std::unique_lock<std::mutex> lock(gWriteMutex);
            gInFlight.store(0, std::memory_order_relaxed);
            if (!writeFrame(smt::wire::encodeResult(result))) {
                // Parent vanished mid-reply; nothing left to serve.
                std::_Exit(3);
            }
        });
    }

    joinSolve();
    stopHeartbeat = true;
    gInFlight = 0;
    heartbeat.join();
    return exitCode;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned memoryMb = 0, cpuSeconds = 0, heartbeatMs = 250;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto number = [&](const char *prefix, unsigned &out) {
            size_t n = std::strlen(prefix);
            if (std::strncmp(arg, prefix, n) != 0)
                return false;
            out = static_cast<unsigned>(std::strtoul(arg + n, nullptr,
                                                     10));
            return true;
        };
        if (number("--memory-mb=", memoryMb) ||
            number("--cpu-seconds=", cpuSeconds) ||
            number("--heartbeat-ms=", heartbeatMs))
            continue;
        std::fprintf(stderr,
                     "keq-solver-worker: unknown option '%s'\n", arg);
        return 2;
    }
    return workerMain(memoryMb, cpuSeconds, heartbeatMs);
}
