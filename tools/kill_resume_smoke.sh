#!/bin/sh
# Kill-and-resume smoke test for crash-safe checkpointing.
#
# Starts a checkpointed keqc run over a generated Figure 6 corpus,
# SIGKILLs it mid-flight (no cleanup, no flush beyond the journal's own
# per-record appends), reruns with --resume, and diffs the verdict
# lines against an uninterrupted reference run. The two must be
# byte-identical, and the resumed run must actually skip work.
#
# Usage:
#   tools/kill_resume_smoke.sh [build-dir]   # default: build/
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-$repo_root/build}
case $build_dir in
    /*) ;;
    *) build_dir=$repo_root/$build_dir ;;
esac
keqc=$build_dir/tools/keqc
if [ ! -x "$keqc" ]; then
    echo "kill_resume_smoke: $keqc not built (run tools/run_tier1.sh first)" >&2
    exit 2
fi

work_dir=$(mktemp -d "${TMPDIR:-/tmp}/keq-kill-resume.XXXXXX")
trap 'rm -rf "$work_dir"' EXIT INT TERM

corpus=$work_dir/corpus.ll
checkpoint=$work_dir/checkpoint.log
"$keqc" --gen-corpus=40 > "$corpus"

# Reference: one uninterrupted run. keqc exits with the number of
# failed functions; the corpus contains refinement-only functions, so
# tolerate a nonzero count as long as both runs agree on it.
reference=$work_dir/reference.out
"$keqc" --jobs=2 "$corpus" > "$reference" || true

# Checkpointed run, SIGKILLed mid-flight. Retry with a longer fuse if
# the run finished before the kill landed (fast machines).
interrupted=false
for delay in 0.4 0.2 0.1; do
    rm -f "$checkpoint"
    "$keqc" --jobs=2 --checkpoint="$checkpoint" "$corpus" \
        > /dev/null 2>&1 &
    victim=$!
    sleep "$delay"
    if kill -KILL "$victim" 2>/dev/null; then
        wait "$victim" 2>/dev/null || true
        if [ -s "$checkpoint" ]; then
            interrupted=true
            break
        fi
    else
        wait "$victim" 2>/dev/null || true
    fi
done
if ! $interrupted; then
    echo "kill_resume_smoke: could not interrupt mid-flight" \
         "(machine too fast/slow?); treating as inconclusive" >&2
    exit 0
fi

# Resume from the torn journal and compare against the reference. Strip
# the resume banner and timing fields — only the verdicts must match.
resumed=$work_dir/resumed.out
"$keqc" --jobs=2 --checkpoint="$checkpoint" --resume "$corpus" \
    > "$resumed" || true

normalize() {
    grep '^@' "$1" | sed 's/, [0-9.e+-]* s)/)/'
}
normalize "$reference" > "$work_dir/reference.norm"
normalize "$resumed" > "$work_dir/resumed.norm"
if ! diff -u "$work_dir/reference.norm" "$work_dir/resumed.norm"; then
    echo "kill_resume_smoke: FAIL — resumed verdicts diverge" >&2
    exit 1
fi

if ! grep -q 'restored from checkpoint' "$resumed"; then
    echo "kill_resume_smoke: FAIL — resume did not skip any function" >&2
    exit 1
fi

echo "kill_resume_smoke: OK —" \
     "$(grep -c '^@' "$work_dir/reference.norm") verdicts identical," \
     "$(sed -n 's/^\([0-9]*\) verdicts restored from checkpoint.*/\1/p' \
        "$resumed") restored"
