file(REMOVE_RECURSE
  "CMakeFiles/keqc.dir/keqc.cpp.o"
  "CMakeFiles/keqc.dir/keqc.cpp.o.d"
  "keqc"
  "keqc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keqc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
