# Empty dependencies file for keqc.
# This may be replaced when dependencies are built.
