file(REMOVE_RECURSE
  "libkeq_regalloc.a"
)
