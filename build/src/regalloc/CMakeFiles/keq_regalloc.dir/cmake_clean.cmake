file(REMOVE_RECURSE
  "CMakeFiles/keq_regalloc.dir/regalloc.cc.o"
  "CMakeFiles/keq_regalloc.dir/regalloc.cc.o.d"
  "libkeq_regalloc.a"
  "libkeq_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
