# Empty compiler generated dependencies file for keq_regalloc.
# This may be replaced when dependencies are built.
