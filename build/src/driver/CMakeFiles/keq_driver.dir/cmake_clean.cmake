file(REMOVE_RECURSE
  "CMakeFiles/keq_driver.dir/corpus.cc.o"
  "CMakeFiles/keq_driver.dir/corpus.cc.o.d"
  "CMakeFiles/keq_driver.dir/pipeline.cc.o"
  "CMakeFiles/keq_driver.dir/pipeline.cc.o.d"
  "libkeq_driver.a"
  "libkeq_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
