# Empty compiler generated dependencies file for keq_driver.
# This may be replaced when dependencies are built.
