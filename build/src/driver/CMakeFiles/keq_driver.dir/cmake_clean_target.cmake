file(REMOVE_RECURSE
  "libkeq_driver.a"
)
