
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llvmir/cfg_adapter.cc" "src/llvmir/CMakeFiles/keq_llvmir.dir/cfg_adapter.cc.o" "gcc" "src/llvmir/CMakeFiles/keq_llvmir.dir/cfg_adapter.cc.o.d"
  "/root/repo/src/llvmir/interpreter.cc" "src/llvmir/CMakeFiles/keq_llvmir.dir/interpreter.cc.o" "gcc" "src/llvmir/CMakeFiles/keq_llvmir.dir/interpreter.cc.o.d"
  "/root/repo/src/llvmir/ir.cc" "src/llvmir/CMakeFiles/keq_llvmir.dir/ir.cc.o" "gcc" "src/llvmir/CMakeFiles/keq_llvmir.dir/ir.cc.o.d"
  "/root/repo/src/llvmir/layout_builder.cc" "src/llvmir/CMakeFiles/keq_llvmir.dir/layout_builder.cc.o" "gcc" "src/llvmir/CMakeFiles/keq_llvmir.dir/layout_builder.cc.o.d"
  "/root/repo/src/llvmir/parser.cc" "src/llvmir/CMakeFiles/keq_llvmir.dir/parser.cc.o" "gcc" "src/llvmir/CMakeFiles/keq_llvmir.dir/parser.cc.o.d"
  "/root/repo/src/llvmir/symbolic_semantics.cc" "src/llvmir/CMakeFiles/keq_llvmir.dir/symbolic_semantics.cc.o" "gcc" "src/llvmir/CMakeFiles/keq_llvmir.dir/symbolic_semantics.cc.o.d"
  "/root/repo/src/llvmir/types.cc" "src/llvmir/CMakeFiles/keq_llvmir.dir/types.cc.o" "gcc" "src/llvmir/CMakeFiles/keq_llvmir.dir/types.cc.o.d"
  "/root/repo/src/llvmir/verifier.cc" "src/llvmir/CMakeFiles/keq_llvmir.dir/verifier.cc.o" "gcc" "src/llvmir/CMakeFiles/keq_llvmir.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/keq_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/keq_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/keq_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/keq_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/keq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
