# Empty dependencies file for keq_llvmir.
# This may be replaced when dependencies are built.
