file(REMOVE_RECURSE
  "libkeq_llvmir.a"
)
