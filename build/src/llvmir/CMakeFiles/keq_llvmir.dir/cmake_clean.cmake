file(REMOVE_RECURSE
  "CMakeFiles/keq_llvmir.dir/cfg_adapter.cc.o"
  "CMakeFiles/keq_llvmir.dir/cfg_adapter.cc.o.d"
  "CMakeFiles/keq_llvmir.dir/interpreter.cc.o"
  "CMakeFiles/keq_llvmir.dir/interpreter.cc.o.d"
  "CMakeFiles/keq_llvmir.dir/ir.cc.o"
  "CMakeFiles/keq_llvmir.dir/ir.cc.o.d"
  "CMakeFiles/keq_llvmir.dir/layout_builder.cc.o"
  "CMakeFiles/keq_llvmir.dir/layout_builder.cc.o.d"
  "CMakeFiles/keq_llvmir.dir/parser.cc.o"
  "CMakeFiles/keq_llvmir.dir/parser.cc.o.d"
  "CMakeFiles/keq_llvmir.dir/symbolic_semantics.cc.o"
  "CMakeFiles/keq_llvmir.dir/symbolic_semantics.cc.o.d"
  "CMakeFiles/keq_llvmir.dir/types.cc.o"
  "CMakeFiles/keq_llvmir.dir/types.cc.o.d"
  "CMakeFiles/keq_llvmir.dir/verifier.cc.o"
  "CMakeFiles/keq_llvmir.dir/verifier.cc.o.d"
  "libkeq_llvmir.a"
  "libkeq_llvmir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_llvmir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
