file(REMOVE_RECURSE
  "libkeq_smt.a"
)
