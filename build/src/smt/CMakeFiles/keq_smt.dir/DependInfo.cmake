
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smt/evaluator.cc" "src/smt/CMakeFiles/keq_smt.dir/evaluator.cc.o" "gcc" "src/smt/CMakeFiles/keq_smt.dir/evaluator.cc.o.d"
  "/root/repo/src/smt/solver.cc" "src/smt/CMakeFiles/keq_smt.dir/solver.cc.o" "gcc" "src/smt/CMakeFiles/keq_smt.dir/solver.cc.o.d"
  "/root/repo/src/smt/term.cc" "src/smt/CMakeFiles/keq_smt.dir/term.cc.o" "gcc" "src/smt/CMakeFiles/keq_smt.dir/term.cc.o.d"
  "/root/repo/src/smt/term_factory.cc" "src/smt/CMakeFiles/keq_smt.dir/term_factory.cc.o" "gcc" "src/smt/CMakeFiles/keq_smt.dir/term_factory.cc.o.d"
  "/root/repo/src/smt/z3_solver.cc" "src/smt/CMakeFiles/keq_smt.dir/z3_solver.cc.o" "gcc" "src/smt/CMakeFiles/keq_smt.dir/z3_solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/keq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
