file(REMOVE_RECURSE
  "CMakeFiles/keq_smt.dir/evaluator.cc.o"
  "CMakeFiles/keq_smt.dir/evaluator.cc.o.d"
  "CMakeFiles/keq_smt.dir/solver.cc.o"
  "CMakeFiles/keq_smt.dir/solver.cc.o.d"
  "CMakeFiles/keq_smt.dir/term.cc.o"
  "CMakeFiles/keq_smt.dir/term.cc.o.d"
  "CMakeFiles/keq_smt.dir/term_factory.cc.o"
  "CMakeFiles/keq_smt.dir/term_factory.cc.o.d"
  "CMakeFiles/keq_smt.dir/z3_solver.cc.o"
  "CMakeFiles/keq_smt.dir/z3_solver.cc.o.d"
  "libkeq_smt.a"
  "libkeq_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
