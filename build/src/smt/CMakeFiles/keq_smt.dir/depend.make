# Empty dependencies file for keq_smt.
# This may be replaced when dependencies are built.
