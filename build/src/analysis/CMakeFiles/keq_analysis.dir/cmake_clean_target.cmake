file(REMOVE_RECURSE
  "libkeq_analysis.a"
)
