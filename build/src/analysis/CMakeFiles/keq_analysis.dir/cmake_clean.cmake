file(REMOVE_RECURSE
  "CMakeFiles/keq_analysis.dir/cfg.cc.o"
  "CMakeFiles/keq_analysis.dir/cfg.cc.o.d"
  "libkeq_analysis.a"
  "libkeq_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
