# Empty dependencies file for keq_analysis.
# This may be replaced when dependencies are built.
