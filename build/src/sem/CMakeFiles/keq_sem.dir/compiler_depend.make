# Empty compiler generated dependencies file for keq_sem.
# This may be replaced when dependencies are built.
