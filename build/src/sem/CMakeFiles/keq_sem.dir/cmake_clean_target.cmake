file(REMOVE_RECURSE
  "libkeq_sem.a"
)
