file(REMOVE_RECURSE
  "CMakeFiles/keq_sem.dir/sem.cc.o"
  "CMakeFiles/keq_sem.dir/sem.cc.o.d"
  "libkeq_sem.a"
  "libkeq_sem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_sem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
