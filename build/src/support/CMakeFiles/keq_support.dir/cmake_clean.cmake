file(REMOVE_RECURSE
  "CMakeFiles/keq_support.dir/apint.cc.o"
  "CMakeFiles/keq_support.dir/apint.cc.o.d"
  "CMakeFiles/keq_support.dir/diagnostics.cc.o"
  "CMakeFiles/keq_support.dir/diagnostics.cc.o.d"
  "CMakeFiles/keq_support.dir/histogram.cc.o"
  "CMakeFiles/keq_support.dir/histogram.cc.o.d"
  "CMakeFiles/keq_support.dir/strings.cc.o"
  "CMakeFiles/keq_support.dir/strings.cc.o.d"
  "libkeq_support.a"
  "libkeq_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
