
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/apint.cc" "src/support/CMakeFiles/keq_support.dir/apint.cc.o" "gcc" "src/support/CMakeFiles/keq_support.dir/apint.cc.o.d"
  "/root/repo/src/support/diagnostics.cc" "src/support/CMakeFiles/keq_support.dir/diagnostics.cc.o" "gcc" "src/support/CMakeFiles/keq_support.dir/diagnostics.cc.o.d"
  "/root/repo/src/support/histogram.cc" "src/support/CMakeFiles/keq_support.dir/histogram.cc.o" "gcc" "src/support/CMakeFiles/keq_support.dir/histogram.cc.o.d"
  "/root/repo/src/support/strings.cc" "src/support/CMakeFiles/keq_support.dir/strings.cc.o" "gcc" "src/support/CMakeFiles/keq_support.dir/strings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
