file(REMOVE_RECURSE
  "libkeq_support.a"
)
