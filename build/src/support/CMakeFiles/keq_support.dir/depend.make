# Empty dependencies file for keq_support.
# This may be replaced when dependencies are built.
