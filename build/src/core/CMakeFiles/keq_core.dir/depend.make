# Empty dependencies file for keq_core.
# This may be replaced when dependencies are built.
