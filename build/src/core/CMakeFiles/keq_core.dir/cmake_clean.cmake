file(REMOVE_RECURSE
  "CMakeFiles/keq_core.dir/algorithm1.cc.o"
  "CMakeFiles/keq_core.dir/algorithm1.cc.o.d"
  "CMakeFiles/keq_core.dir/reference.cc.o"
  "CMakeFiles/keq_core.dir/reference.cc.o.d"
  "CMakeFiles/keq_core.dir/transition_system.cc.o"
  "CMakeFiles/keq_core.dir/transition_system.cc.o.d"
  "libkeq_core.a"
  "libkeq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
