file(REMOVE_RECURSE
  "libkeq_core.a"
)
