
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algorithm1.cc" "src/core/CMakeFiles/keq_core.dir/algorithm1.cc.o" "gcc" "src/core/CMakeFiles/keq_core.dir/algorithm1.cc.o.d"
  "/root/repo/src/core/reference.cc" "src/core/CMakeFiles/keq_core.dir/reference.cc.o" "gcc" "src/core/CMakeFiles/keq_core.dir/reference.cc.o.d"
  "/root/repo/src/core/transition_system.cc" "src/core/CMakeFiles/keq_core.dir/transition_system.cc.o" "gcc" "src/core/CMakeFiles/keq_core.dir/transition_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/keq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
