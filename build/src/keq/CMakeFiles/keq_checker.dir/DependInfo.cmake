
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/keq/checker.cc" "src/keq/CMakeFiles/keq_checker.dir/checker.cc.o" "gcc" "src/keq/CMakeFiles/keq_checker.dir/checker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sem/CMakeFiles/keq_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/keq_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/keq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
