file(REMOVE_RECURSE
  "libkeq_checker.a"
)
