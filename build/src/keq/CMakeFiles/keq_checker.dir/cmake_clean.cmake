file(REMOVE_RECURSE
  "CMakeFiles/keq_checker.dir/checker.cc.o"
  "CMakeFiles/keq_checker.dir/checker.cc.o.d"
  "libkeq_checker.a"
  "libkeq_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
