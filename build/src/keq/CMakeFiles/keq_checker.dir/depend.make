# Empty dependencies file for keq_checker.
# This may be replaced when dependencies are built.
