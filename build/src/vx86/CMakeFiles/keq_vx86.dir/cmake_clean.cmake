file(REMOVE_RECURSE
  "CMakeFiles/keq_vx86.dir/cfg_adapter.cc.o"
  "CMakeFiles/keq_vx86.dir/cfg_adapter.cc.o.d"
  "CMakeFiles/keq_vx86.dir/interpreter.cc.o"
  "CMakeFiles/keq_vx86.dir/interpreter.cc.o.d"
  "CMakeFiles/keq_vx86.dir/mir.cc.o"
  "CMakeFiles/keq_vx86.dir/mir.cc.o.d"
  "CMakeFiles/keq_vx86.dir/parser.cc.o"
  "CMakeFiles/keq_vx86.dir/parser.cc.o.d"
  "CMakeFiles/keq_vx86.dir/symbolic_semantics.cc.o"
  "CMakeFiles/keq_vx86.dir/symbolic_semantics.cc.o.d"
  "libkeq_vx86.a"
  "libkeq_vx86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_vx86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
