
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vx86/cfg_adapter.cc" "src/vx86/CMakeFiles/keq_vx86.dir/cfg_adapter.cc.o" "gcc" "src/vx86/CMakeFiles/keq_vx86.dir/cfg_adapter.cc.o.d"
  "/root/repo/src/vx86/interpreter.cc" "src/vx86/CMakeFiles/keq_vx86.dir/interpreter.cc.o" "gcc" "src/vx86/CMakeFiles/keq_vx86.dir/interpreter.cc.o.d"
  "/root/repo/src/vx86/mir.cc" "src/vx86/CMakeFiles/keq_vx86.dir/mir.cc.o" "gcc" "src/vx86/CMakeFiles/keq_vx86.dir/mir.cc.o.d"
  "/root/repo/src/vx86/parser.cc" "src/vx86/CMakeFiles/keq_vx86.dir/parser.cc.o" "gcc" "src/vx86/CMakeFiles/keq_vx86.dir/parser.cc.o.d"
  "/root/repo/src/vx86/symbolic_semantics.cc" "src/vx86/CMakeFiles/keq_vx86.dir/symbolic_semantics.cc.o" "gcc" "src/vx86/CMakeFiles/keq_vx86.dir/symbolic_semantics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/keq_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/keq_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/keq_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/keq_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/keq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
