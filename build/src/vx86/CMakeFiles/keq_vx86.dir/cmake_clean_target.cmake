file(REMOVE_RECURSE
  "libkeq_vx86.a"
)
