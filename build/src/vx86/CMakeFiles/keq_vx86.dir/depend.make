# Empty dependencies file for keq_vx86.
# This may be replaced when dependencies are built.
