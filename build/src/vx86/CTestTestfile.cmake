# CMake generated Testfile for 
# Source directory: /root/repo/src/vx86
# Build directory: /root/repo/build/src/vx86
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
