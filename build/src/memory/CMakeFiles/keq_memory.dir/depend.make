# Empty dependencies file for keq_memory.
# This may be replaced when dependencies are built.
