
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memory/concrete_memory.cc" "src/memory/CMakeFiles/keq_memory.dir/concrete_memory.cc.o" "gcc" "src/memory/CMakeFiles/keq_memory.dir/concrete_memory.cc.o.d"
  "/root/repo/src/memory/layout.cc" "src/memory/CMakeFiles/keq_memory.dir/layout.cc.o" "gcc" "src/memory/CMakeFiles/keq_memory.dir/layout.cc.o.d"
  "/root/repo/src/memory/symbolic_memory.cc" "src/memory/CMakeFiles/keq_memory.dir/symbolic_memory.cc.o" "gcc" "src/memory/CMakeFiles/keq_memory.dir/symbolic_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smt/CMakeFiles/keq_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/keq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
