file(REMOVE_RECURSE
  "libkeq_memory.a"
)
