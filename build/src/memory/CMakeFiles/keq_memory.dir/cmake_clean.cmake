file(REMOVE_RECURSE
  "CMakeFiles/keq_memory.dir/concrete_memory.cc.o"
  "CMakeFiles/keq_memory.dir/concrete_memory.cc.o.d"
  "CMakeFiles/keq_memory.dir/layout.cc.o"
  "CMakeFiles/keq_memory.dir/layout.cc.o.d"
  "CMakeFiles/keq_memory.dir/symbolic_memory.cc.o"
  "CMakeFiles/keq_memory.dir/symbolic_memory.cc.o.d"
  "libkeq_memory.a"
  "libkeq_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
