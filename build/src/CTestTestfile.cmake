# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("smt")
subdirs("core")
subdirs("sem")
subdirs("memory")
subdirs("analysis")
subdirs("llvmir")
subdirs("vx86")
subdirs("isel")
subdirs("regalloc")
subdirs("vcgen")
subdirs("keq")
subdirs("driver")
