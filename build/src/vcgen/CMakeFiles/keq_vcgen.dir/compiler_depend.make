# Empty compiler generated dependencies file for keq_vcgen.
# This may be replaced when dependencies are built.
