file(REMOVE_RECURSE
  "CMakeFiles/keq_vcgen.dir/regalloc_vcgen.cc.o"
  "CMakeFiles/keq_vcgen.dir/regalloc_vcgen.cc.o.d"
  "CMakeFiles/keq_vcgen.dir/vcgen.cc.o"
  "CMakeFiles/keq_vcgen.dir/vcgen.cc.o.d"
  "libkeq_vcgen.a"
  "libkeq_vcgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_vcgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
