file(REMOVE_RECURSE
  "libkeq_vcgen.a"
)
