# Empty compiler generated dependencies file for keq_isel.
# This may be replaced when dependencies are built.
