file(REMOVE_RECURSE
  "libkeq_isel.a"
)
