file(REMOVE_RECURSE
  "CMakeFiles/keq_isel.dir/isel.cc.o"
  "CMakeFiles/keq_isel.dir/isel.cc.o.d"
  "libkeq_isel.a"
  "libkeq_isel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_isel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
