# Empty dependencies file for bench_algorithm1.
# This may be replaced when dependencies are built.
