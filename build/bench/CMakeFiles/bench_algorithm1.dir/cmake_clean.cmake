file(REMOVE_RECURSE
  "CMakeFiles/bench_algorithm1.dir/bench_algorithm1.cpp.o"
  "CMakeFiles/bench_algorithm1.dir/bench_algorithm1.cpp.o.d"
  "bench_algorithm1"
  "bench_algorithm1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_algorithm1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
