# Empty dependencies file for bench_regalloc.
# This may be replaced when dependencies are built.
