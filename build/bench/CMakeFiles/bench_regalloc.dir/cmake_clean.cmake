file(REMOVE_RECURSE
  "CMakeFiles/bench_regalloc.dir/bench_regalloc.cpp.o"
  "CMakeFiles/bench_regalloc.dir/bench_regalloc.cpp.o.d"
  "bench_regalloc"
  "bench_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
