file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_validation.dir/bench_fig6_validation.cpp.o"
  "CMakeFiles/bench_fig6_validation.dir/bench_fig6_validation.cpp.o.d"
  "bench_fig6_validation"
  "bench_fig6_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
