# Empty compiler generated dependencies file for bench_fig6_validation.
# This may be replaced when dependencies are built.
