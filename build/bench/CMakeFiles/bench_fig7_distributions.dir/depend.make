# Empty dependencies file for bench_fig7_distributions.
# This may be replaced when dependencies are built.
