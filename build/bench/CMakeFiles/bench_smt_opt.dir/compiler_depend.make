# Empty compiler generated dependencies file for bench_smt_opt.
# This may be replaced when dependencies are built.
