file(REMOVE_RECURSE
  "CMakeFiles/bench_smt_opt.dir/bench_smt_opt.cpp.o"
  "CMakeFiles/bench_smt_opt.dir/bench_smt_opt.cpp.o.d"
  "bench_smt_opt"
  "bench_smt_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smt_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
