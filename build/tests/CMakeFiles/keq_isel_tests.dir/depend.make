# Empty dependencies file for keq_isel_tests.
# This may be replaced when dependencies are built.
