file(REMOVE_RECURSE
  "CMakeFiles/keq_isel_tests.dir/isel/differential_test.cc.o"
  "CMakeFiles/keq_isel_tests.dir/isel/differential_test.cc.o.d"
  "CMakeFiles/keq_isel_tests.dir/isel/isel_test.cc.o"
  "CMakeFiles/keq_isel_tests.dir/isel/isel_test.cc.o.d"
  "CMakeFiles/keq_isel_tests.dir/isel/peephole_test.cc.o"
  "CMakeFiles/keq_isel_tests.dir/isel/peephole_test.cc.o.d"
  "keq_isel_tests"
  "keq_isel_tests.pdb"
  "keq_isel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_isel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
