file(REMOVE_RECURSE
  "CMakeFiles/keq_core_tests.dir/core/algorithm1_test.cc.o"
  "CMakeFiles/keq_core_tests.dir/core/algorithm1_test.cc.o.d"
  "CMakeFiles/keq_core_tests.dir/core/reference_test.cc.o"
  "CMakeFiles/keq_core_tests.dir/core/reference_test.cc.o.d"
  "CMakeFiles/keq_core_tests.dir/core/transition_system_test.cc.o"
  "CMakeFiles/keq_core_tests.dir/core/transition_system_test.cc.o.d"
  "keq_core_tests"
  "keq_core_tests.pdb"
  "keq_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
