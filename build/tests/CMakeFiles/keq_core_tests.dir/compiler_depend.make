# Empty compiler generated dependencies file for keq_core_tests.
# This may be replaced when dependencies are built.
