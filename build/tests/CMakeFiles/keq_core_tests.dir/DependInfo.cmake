
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/algorithm1_test.cc" "tests/CMakeFiles/keq_core_tests.dir/core/algorithm1_test.cc.o" "gcc" "tests/CMakeFiles/keq_core_tests.dir/core/algorithm1_test.cc.o.d"
  "/root/repo/tests/core/reference_test.cc" "tests/CMakeFiles/keq_core_tests.dir/core/reference_test.cc.o" "gcc" "tests/CMakeFiles/keq_core_tests.dir/core/reference_test.cc.o.d"
  "/root/repo/tests/core/transition_system_test.cc" "tests/CMakeFiles/keq_core_tests.dir/core/transition_system_test.cc.o" "gcc" "tests/CMakeFiles/keq_core_tests.dir/core/transition_system_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/keq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/keq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
