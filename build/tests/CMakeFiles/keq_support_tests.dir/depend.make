# Empty dependencies file for keq_support_tests.
# This may be replaced when dependencies are built.
