file(REMOVE_RECURSE
  "CMakeFiles/keq_support_tests.dir/support/apint_test.cc.o"
  "CMakeFiles/keq_support_tests.dir/support/apint_test.cc.o.d"
  "CMakeFiles/keq_support_tests.dir/support/histogram_test.cc.o"
  "CMakeFiles/keq_support_tests.dir/support/histogram_test.cc.o.d"
  "CMakeFiles/keq_support_tests.dir/support/rng_test.cc.o"
  "CMakeFiles/keq_support_tests.dir/support/rng_test.cc.o.d"
  "CMakeFiles/keq_support_tests.dir/support/strings_test.cc.o"
  "CMakeFiles/keq_support_tests.dir/support/strings_test.cc.o.d"
  "keq_support_tests"
  "keq_support_tests.pdb"
  "keq_support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
