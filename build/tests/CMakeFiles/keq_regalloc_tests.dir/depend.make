# Empty dependencies file for keq_regalloc_tests.
# This may be replaced when dependencies are built.
