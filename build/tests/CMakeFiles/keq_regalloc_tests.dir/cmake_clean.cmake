file(REMOVE_RECURSE
  "CMakeFiles/keq_regalloc_tests.dir/regalloc/regalloc_test.cc.o"
  "CMakeFiles/keq_regalloc_tests.dir/regalloc/regalloc_test.cc.o.d"
  "CMakeFiles/keq_regalloc_tests.dir/regalloc/validation_test.cc.o"
  "CMakeFiles/keq_regalloc_tests.dir/regalloc/validation_test.cc.o.d"
  "keq_regalloc_tests"
  "keq_regalloc_tests.pdb"
  "keq_regalloc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_regalloc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
