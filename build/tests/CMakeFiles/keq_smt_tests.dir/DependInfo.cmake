
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/smt/evaluator_test.cc" "tests/CMakeFiles/keq_smt_tests.dir/smt/evaluator_test.cc.o" "gcc" "tests/CMakeFiles/keq_smt_tests.dir/smt/evaluator_test.cc.o.d"
  "/root/repo/tests/smt/solver_test.cc" "tests/CMakeFiles/keq_smt_tests.dir/smt/solver_test.cc.o" "gcc" "tests/CMakeFiles/keq_smt_tests.dir/smt/solver_test.cc.o.d"
  "/root/repo/tests/smt/term_test.cc" "tests/CMakeFiles/keq_smt_tests.dir/smt/term_test.cc.o" "gcc" "tests/CMakeFiles/keq_smt_tests.dir/smt/term_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smt/CMakeFiles/keq_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/keq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
