file(REMOVE_RECURSE
  "CMakeFiles/keq_smt_tests.dir/smt/evaluator_test.cc.o"
  "CMakeFiles/keq_smt_tests.dir/smt/evaluator_test.cc.o.d"
  "CMakeFiles/keq_smt_tests.dir/smt/solver_test.cc.o"
  "CMakeFiles/keq_smt_tests.dir/smt/solver_test.cc.o.d"
  "CMakeFiles/keq_smt_tests.dir/smt/term_test.cc.o"
  "CMakeFiles/keq_smt_tests.dir/smt/term_test.cc.o.d"
  "keq_smt_tests"
  "keq_smt_tests.pdb"
  "keq_smt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_smt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
