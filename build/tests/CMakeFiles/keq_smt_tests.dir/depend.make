# Empty dependencies file for keq_smt_tests.
# This may be replaced when dependencies are built.
