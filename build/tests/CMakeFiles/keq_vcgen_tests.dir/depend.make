# Empty dependencies file for keq_vcgen_tests.
# This may be replaced when dependencies are built.
