file(REMOVE_RECURSE
  "CMakeFiles/keq_vcgen_tests.dir/vcgen/vcgen_test.cc.o"
  "CMakeFiles/keq_vcgen_tests.dir/vcgen/vcgen_test.cc.o.d"
  "keq_vcgen_tests"
  "keq_vcgen_tests.pdb"
  "keq_vcgen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_vcgen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
