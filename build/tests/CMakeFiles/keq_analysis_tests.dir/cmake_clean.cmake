file(REMOVE_RECURSE
  "CMakeFiles/keq_analysis_tests.dir/analysis/cfg_test.cc.o"
  "CMakeFiles/keq_analysis_tests.dir/analysis/cfg_test.cc.o.d"
  "keq_analysis_tests"
  "keq_analysis_tests.pdb"
  "keq_analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
