# Empty dependencies file for keq_analysis_tests.
# This may be replaced when dependencies are built.
