# Empty compiler generated dependencies file for keq_driver_tests.
# This may be replaced when dependencies are built.
