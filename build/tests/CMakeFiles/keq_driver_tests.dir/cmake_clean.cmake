file(REMOVE_RECURSE
  "CMakeFiles/keq_driver_tests.dir/driver/corpus_test.cc.o"
  "CMakeFiles/keq_driver_tests.dir/driver/corpus_test.cc.o.d"
  "CMakeFiles/keq_driver_tests.dir/driver/pipeline_test.cc.o"
  "CMakeFiles/keq_driver_tests.dir/driver/pipeline_test.cc.o.d"
  "keq_driver_tests"
  "keq_driver_tests.pdb"
  "keq_driver_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_driver_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
