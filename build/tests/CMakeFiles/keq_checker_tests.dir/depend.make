# Empty dependencies file for keq_checker_tests.
# This may be replaced when dependencies are built.
