file(REMOVE_RECURSE
  "CMakeFiles/keq_checker_tests.dir/keq/checker_test.cc.o"
  "CMakeFiles/keq_checker_tests.dir/keq/checker_test.cc.o.d"
  "CMakeFiles/keq_checker_tests.dir/keq/refinement_test.cc.o"
  "CMakeFiles/keq_checker_tests.dir/keq/refinement_test.cc.o.d"
  "CMakeFiles/keq_checker_tests.dir/keq/robustness_test.cc.o"
  "CMakeFiles/keq_checker_tests.dir/keq/robustness_test.cc.o.d"
  "keq_checker_tests"
  "keq_checker_tests.pdb"
  "keq_checker_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_checker_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
