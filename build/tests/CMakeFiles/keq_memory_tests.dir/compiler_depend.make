# Empty compiler generated dependencies file for keq_memory_tests.
# This may be replaced when dependencies are built.
