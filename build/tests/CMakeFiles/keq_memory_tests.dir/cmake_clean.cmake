file(REMOVE_RECURSE
  "CMakeFiles/keq_memory_tests.dir/memory/concrete_memory_test.cc.o"
  "CMakeFiles/keq_memory_tests.dir/memory/concrete_memory_test.cc.o.d"
  "CMakeFiles/keq_memory_tests.dir/memory/layout_test.cc.o"
  "CMakeFiles/keq_memory_tests.dir/memory/layout_test.cc.o.d"
  "CMakeFiles/keq_memory_tests.dir/memory/symbolic_memory_test.cc.o"
  "CMakeFiles/keq_memory_tests.dir/memory/symbolic_memory_test.cc.o.d"
  "keq_memory_tests"
  "keq_memory_tests.pdb"
  "keq_memory_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_memory_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
