
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/memory/concrete_memory_test.cc" "tests/CMakeFiles/keq_memory_tests.dir/memory/concrete_memory_test.cc.o" "gcc" "tests/CMakeFiles/keq_memory_tests.dir/memory/concrete_memory_test.cc.o.d"
  "/root/repo/tests/memory/layout_test.cc" "tests/CMakeFiles/keq_memory_tests.dir/memory/layout_test.cc.o" "gcc" "tests/CMakeFiles/keq_memory_tests.dir/memory/layout_test.cc.o.d"
  "/root/repo/tests/memory/symbolic_memory_test.cc" "tests/CMakeFiles/keq_memory_tests.dir/memory/symbolic_memory_test.cc.o" "gcc" "tests/CMakeFiles/keq_memory_tests.dir/memory/symbolic_memory_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memory/CMakeFiles/keq_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/keq_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/keq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
