# Empty compiler generated dependencies file for keq_vx86_tests.
# This may be replaced when dependencies are built.
