file(REMOVE_RECURSE
  "CMakeFiles/keq_vx86_tests.dir/vx86/interpreter_test.cc.o"
  "CMakeFiles/keq_vx86_tests.dir/vx86/interpreter_test.cc.o.d"
  "CMakeFiles/keq_vx86_tests.dir/vx86/mir_test.cc.o"
  "CMakeFiles/keq_vx86_tests.dir/vx86/mir_test.cc.o.d"
  "CMakeFiles/keq_vx86_tests.dir/vx86/symbolic_test.cc.o"
  "CMakeFiles/keq_vx86_tests.dir/vx86/symbolic_test.cc.o.d"
  "keq_vx86_tests"
  "keq_vx86_tests.pdb"
  "keq_vx86_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_vx86_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
