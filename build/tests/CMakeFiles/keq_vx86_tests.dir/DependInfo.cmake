
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vx86/interpreter_test.cc" "tests/CMakeFiles/keq_vx86_tests.dir/vx86/interpreter_test.cc.o" "gcc" "tests/CMakeFiles/keq_vx86_tests.dir/vx86/interpreter_test.cc.o.d"
  "/root/repo/tests/vx86/mir_test.cc" "tests/CMakeFiles/keq_vx86_tests.dir/vx86/mir_test.cc.o" "gcc" "tests/CMakeFiles/keq_vx86_tests.dir/vx86/mir_test.cc.o.d"
  "/root/repo/tests/vx86/symbolic_test.cc" "tests/CMakeFiles/keq_vx86_tests.dir/vx86/symbolic_test.cc.o" "gcc" "tests/CMakeFiles/keq_vx86_tests.dir/vx86/symbolic_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vx86/CMakeFiles/keq_vx86.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/keq_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/keq_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/keq_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/keq_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/keq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
