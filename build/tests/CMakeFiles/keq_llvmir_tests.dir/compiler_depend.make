# Empty compiler generated dependencies file for keq_llvmir_tests.
# This may be replaced when dependencies are built.
