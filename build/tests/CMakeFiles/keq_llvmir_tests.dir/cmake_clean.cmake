file(REMOVE_RECURSE
  "CMakeFiles/keq_llvmir_tests.dir/llvmir/interpreter_test.cc.o"
  "CMakeFiles/keq_llvmir_tests.dir/llvmir/interpreter_test.cc.o.d"
  "CMakeFiles/keq_llvmir_tests.dir/llvmir/parser_test.cc.o"
  "CMakeFiles/keq_llvmir_tests.dir/llvmir/parser_test.cc.o.d"
  "CMakeFiles/keq_llvmir_tests.dir/llvmir/symbolic_test.cc.o"
  "CMakeFiles/keq_llvmir_tests.dir/llvmir/symbolic_test.cc.o.d"
  "CMakeFiles/keq_llvmir_tests.dir/llvmir/types_test.cc.o"
  "CMakeFiles/keq_llvmir_tests.dir/llvmir/types_test.cc.o.d"
  "CMakeFiles/keq_llvmir_tests.dir/llvmir/verifier_test.cc.o"
  "CMakeFiles/keq_llvmir_tests.dir/llvmir/verifier_test.cc.o.d"
  "keq_llvmir_tests"
  "keq_llvmir_tests.pdb"
  "keq_llvmir_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keq_llvmir_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
