# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/keq_support_tests[1]_include.cmake")
include("/root/repo/build/tests/keq_smt_tests[1]_include.cmake")
include("/root/repo/build/tests/keq_core_tests[1]_include.cmake")
include("/root/repo/build/tests/keq_memory_tests[1]_include.cmake")
include("/root/repo/build/tests/keq_analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/keq_llvmir_tests[1]_include.cmake")
include("/root/repo/build/tests/keq_vx86_tests[1]_include.cmake")
include("/root/repo/build/tests/keq_isel_tests[1]_include.cmake")
include("/root/repo/build/tests/keq_vcgen_tests[1]_include.cmake")
include("/root/repo/build/tests/keq_checker_tests[1]_include.cmake")
include("/root/repo/build/tests/keq_driver_tests[1]_include.cmake")
include("/root/repo/build/tests/keq_regalloc_tests[1]_include.cmake")
