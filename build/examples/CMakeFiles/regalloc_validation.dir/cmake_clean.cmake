file(REMOVE_RECURSE
  "CMakeFiles/regalloc_validation.dir/regalloc_validation.cpp.o"
  "CMakeFiles/regalloc_validation.dir/regalloc_validation.cpp.o.d"
  "regalloc_validation"
  "regalloc_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regalloc_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
