# Empty dependencies file for regalloc_validation.
# This may be replaced when dependencies are built.
