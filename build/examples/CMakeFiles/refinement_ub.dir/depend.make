# Empty dependencies file for refinement_ub.
# This may be replaced when dependencies are built.
