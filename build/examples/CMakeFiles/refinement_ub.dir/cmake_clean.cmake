file(REMOVE_RECURSE
  "CMakeFiles/refinement_ub.dir/refinement_ub.cpp.o"
  "CMakeFiles/refinement_ub.dir/refinement_ub.cpp.o.d"
  "refinement_ub"
  "refinement_ub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refinement_ub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
