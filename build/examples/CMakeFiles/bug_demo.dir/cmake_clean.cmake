file(REMOVE_RECURSE
  "CMakeFiles/bug_demo.dir/bug_demo.cpp.o"
  "CMakeFiles/bug_demo.dir/bug_demo.cpp.o.d"
  "bug_demo"
  "bug_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bug_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
