# Empty dependencies file for bug_demo.
# This may be replaced when dependencies are built.
