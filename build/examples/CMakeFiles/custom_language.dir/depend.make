# Empty dependencies file for custom_language.
# This may be replaced when dependencies are built.
