file(REMOVE_RECURSE
  "CMakeFiles/custom_language.dir/custom_language.cpp.o"
  "CMakeFiles/custom_language.dir/custom_language.cpp.o.d"
  "custom_language"
  "custom_language.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_language.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
