/** @file Daemon chaos: a real keq-daemon process (KEQ_DAEMON_BIN) is
 *  SIGKILLed mid-run. The contract under fire: clients classify the
 *  loss and degrade to local solving with verdicts identical to an
 *  undisturbed run, nothing hangs, and a restarted daemon serves the
 *  verdicts its journal survived with. */

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"
#include "src/service/client.h"
#include "src/service/socket.h"

namespace keq::service {
namespace {

std::string
uniquePath(const std::string &stem, const std::string &ext)
{
    return (std::filesystem::temp_directory_path() /
            ("keqd-chaos-" + stem + "-" + std::to_string(::getpid()) +
             ext))
        .string();
}

/** Spawns the real daemon binary; returns its pid (or -1). */
pid_t
spawnDaemon(const std::vector<std::string> &args)
{
    pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    std::vector<const char *> argv;
    argv.push_back(KEQ_DAEMON_BIN);
    for (const std::string &arg : args)
        argv.push_back(arg.c_str());
    argv.push_back(nullptr);
    ::execv(KEQ_DAEMON_BIN, const_cast<char *const *>(argv.data()));
    _exit(127);
}

/** Waits until the daemon accepts (handshake works), up to 10 s. */
bool
waitForDaemon(const std::string &socket)
{
    for (int attempt = 0; attempt < 200; ++attempt) {
        DaemonClientOptions options;
        options.socketPath = socket;
        options.connectTimeoutMs = 50;
        DaemonClient probe(options);
        std::string error;
        if (probe.connect(error))
            return true;
        ::usleep(50 * 1000);
    }
    return false;
}

void
reap(pid_t pid)
{
    int status = 0;
    ::waitpid(pid, &status, 0);
}

std::vector<std::string>
definedFunctions(const std::string &source)
{
    llvmir::Module module = llvmir::parseModule(source);
    std::vector<std::string> names;
    for (const llvmir::Function &fn : module.functions)
        if (!fn.isDeclaration())
            names.push_back(fn.name);
    return names;
}

std::string
moduleSource(size_t functions)
{
    driver::CorpusOptions options;
    options.seed = 0xc4a05;
    options.functionCount = functions;
    return driver::generateCorpusSource(options);
}

TEST(ServiceChaosTest, SigkillMidRunDegradesWithoutHanging)
{
    std::string socket = uniquePath("kill", ".sock");
    std::string source = moduleSource(8);
    std::vector<std::string> names = definedFunctions(source);
    driver::PipelineOptions poptions;

    pid_t daemon = spawnDaemon({"--socket=" + socket, "--jobs=1"});
    ASSERT_GT(daemon, 0);
    ASSERT_TRUE(waitForDaemon(socket)) << "daemon never came up";

    DaemonClientOptions copts;
    copts.socketPath = socket;
    // A dead daemon must surface fast — this bounds the whole test.
    copts.verdictTimeoutMs = 10000;
    DaemonClient client(copts);
    std::string error;
    ASSERT_TRUE(client.connect(error)) << error;

    // The killer fires while jobs are in flight (jobs=1 serializes the
    // daemon side, so 8 functions give it a wide window).
    std::thread killer([&] {
        ::usleep(60 * 1000);
        ::kill(daemon, SIGKILL);
    });

    std::vector<driver::FunctionReport> reports;
    std::vector<bool> decided;
    bool complete = client.validateFunctions(source, names, poptions,
                                             reports, decided, error);
    killer.join();
    reap(daemon);
    std::remove(socket.c_str());

    // Race-tolerant: the daemon may have finished everything before
    // the kill landed. What must NEVER happen is a hang (the timeout
    // above bounds that) or an unclassified failure.
    if (!complete) {
        EXPECT_NE(client.failure(), FailureKind::None);
        EXPECT_FALSE(error.empty());
    }

    // Degradation path: splice daemon verdicts with local recomputes;
    // the merged summary must match an undisturbed local run.
    driver::Pipeline local(poptions);
    llvmir::Module module = llvmir::parseModule(source);
    driver::ModuleReport merged;
    size_t index = 0;
    size_t recomputed = 0;
    for (const llvmir::Function &fn : module.functions) {
        if (fn.isDeclaration())
            continue;
        if (index < decided.size() && decided[index]) {
            merged.functions.push_back(reports[index]);
        } else {
            merged.functions.push_back(
                local.validateFunction(module, fn));
            ++recomputed;
        }
        ++index;
    }
    if (!complete)
        EXPECT_GT(recomputed, 0u);

    driver::Pipeline reference(poptions);
    EXPECT_EQ(merged.canonicalSummary(),
              reference.run(module).canonicalSummary());
}

TEST(ServiceChaosTest, RestartedDaemonServesJournaledVerdicts)
{
    std::string socket = uniquePath("restart", ".sock");
    std::string journal = uniquePath("restart", ".journal");
    std::remove(journal.c_str());
    std::string source = moduleSource(5);
    std::vector<std::string> names = definedFunctions(source);
    driver::PipelineOptions poptions;

    // First life: decide everything, journaling each fresh verdict.
    pid_t first = spawnDaemon({"--socket=" + socket,
                               "--verdict-journal=" + journal,
                               "--journal-fsync=record"});
    ASSERT_GT(first, 0);
    ASSERT_TRUE(waitForDaemon(socket));
    std::string firstSummary;
    {
        DaemonClientOptions copts;
        copts.socketPath = socket;
        DaemonClient client(copts);
        std::string error;
        ASSERT_TRUE(client.connect(error)) << error;
        std::vector<driver::FunctionReport> reports;
        std::vector<bool> decided;
        ASSERT_TRUE(client.validateFunctions(source, names, poptions,
                                             reports, decided, error))
            << error;
        driver::ModuleReport report;
        report.functions = reports;
        firstSummary = report.canonicalSummary();
    }
    // SIGKILL: no flush, no unlink; only the journal's own per-record
    // durability (fsync=record) protects the verdicts.
    ::kill(first, SIGKILL);
    reap(first);
    std::remove(socket.c_str());
    ASSERT_TRUE(std::filesystem::exists(journal));

    // Second life: same journal, fresh process and socket.
    pid_t second = spawnDaemon({"--socket=" + socket,
                                "--verdict-journal=" + journal});
    ASSERT_GT(second, 0);
    ASSERT_TRUE(waitForDaemon(socket));
    {
        DaemonClientOptions copts;
        copts.socketPath = socket;
        DaemonClient client(copts);
        std::string error;
        ASSERT_TRUE(client.connect(error)) << error;
        std::vector<driver::FunctionReport> reports;
        std::vector<bool> decided;
        ASSERT_TRUE(client.validateFunctions(source, names, poptions,
                                             reports, decided, error))
            << error;
        driver::ModuleReport report;
        report.functions = reports;
        EXPECT_EQ(report.canonicalSummary(), firstSummary);

        // Every cache-stage query must be served from the preloaded
        // store: the restarted daemon solved nothing new.
        uint64_t hits = 0;
        uint64_t misses = 0;
        for (const driver::FunctionReport &fn : reports) {
            hits += fn.verdict.stats.solverStats.cacheHits;
            misses += fn.verdict.stats.solverStats.cacheMisses;
        }
        EXPECT_GT(hits, 0u);
        EXPECT_EQ(misses, 0u);
    }
    ::kill(second, SIGTERM);
    reap(second);
    std::remove(socket.c_str());
    std::remove(journal.c_str());
}

TEST(ServiceChaosTest, StaleSocketFromKilledDaemonIsReclaimed)
{
    std::string socket = uniquePath("stale", ".sock");
    pid_t first = spawnDaemon({"--socket=" + socket});
    ASSERT_GT(first, 0);
    ASSERT_TRUE(waitForDaemon(socket));
    ::kill(first, SIGKILL);
    reap(first);
    // The socket file is left behind by SIGKILL...
    ASSERT_TRUE(std::filesystem::exists(socket));

    // ...and a fresh daemon detects it is dead, reclaims the path, and
    // serves clients.
    pid_t second = spawnDaemon({"--socket=" + socket});
    ASSERT_GT(second, 0);
    EXPECT_TRUE(waitForDaemon(socket))
        << "restarted daemon failed to reclaim the stale socket";
    ::kill(second, SIGTERM);
    reap(second);
    std::remove(socket.c_str());
}

} // namespace
} // namespace keq::service
