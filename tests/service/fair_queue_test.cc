/** @file Per-client round-robin fair queue: FIFO order within one
 *  client, rotation across clients (no backlog starves a newcomer),
 *  and disconnect cleanup. */

#include <gtest/gtest.h>

#include <vector>

#include "src/service/fair_queue.h"

namespace keq::service {
namespace {

JobWork
job(uint64_t client, uint64_t id)
{
    JobWork work;
    work.clientId = client;
    work.jobId = id;
    return work;
}

TEST(FairQueueTest, FifoWithinOneClient)
{
    FairQueue queue;
    for (uint64_t id = 1; id <= 5; ++id)
        queue.push(job(1, id));
    JobWork work;
    for (uint64_t id = 1; id <= 5; ++id) {
        ASSERT_TRUE(queue.pop(work));
        EXPECT_EQ(work.jobId, id);
    }
    EXPECT_FALSE(queue.pop(work));
}

TEST(FairQueueTest, RoundRobinAcrossClients)
{
    FairQueue queue;
    // Client 1 floods; clients 2 and 3 each submit one job afterwards.
    for (uint64_t id = 1; id <= 4; ++id)
        queue.push(job(1, 100 + id));
    queue.push(job(2, 200));
    queue.push(job(3, 300));

    std::vector<uint64_t> clients;
    JobWork work;
    while (queue.pop(work))
        clients.push_back(work.clientId);
    // One rotation serves every client before client 1's second job.
    std::vector<uint64_t> expected = {1, 2, 3, 1, 1, 1};
    EXPECT_EQ(clients, expected);
}

TEST(FairQueueTest, InterleavedPushesKeepRotating)
{
    FairQueue queue;
    queue.push(job(1, 1));
    queue.push(job(2, 2));
    JobWork work;
    ASSERT_TRUE(queue.pop(work));
    EXPECT_EQ(work.clientId, 1u);
    // Client 1 refills while client 2 still waits: client 2 is next.
    queue.push(job(1, 3));
    ASSERT_TRUE(queue.pop(work));
    EXPECT_EQ(work.clientId, 2u);
    ASSERT_TRUE(queue.pop(work));
    EXPECT_EQ(work.clientId, 1u);
}

/** Starvation freedom: with one flooding client, a light client's job
 *  is always served within (number of clients) pops of its push. */
TEST(FairQueueTest, LightClientNeverStarves)
{
    FairQueue queue;
    for (uint64_t id = 0; id < 100; ++id)
        queue.push(job(1, id));
    queue.push(job(2, 9999));

    JobWork work;
    size_t popsUntilServed = 0;
    bool served = false;
    while (queue.pop(work)) {
        ++popsUntilServed;
        if (work.clientId == 2) {
            served = true;
            break;
        }
    }
    ASSERT_TRUE(served);
    EXPECT_LE(popsUntilServed, 2u);
}

TEST(FairQueueTest, DropClientRemovesOnlyThatBacklog)
{
    FairQueue queue;
    for (uint64_t id = 1; id <= 3; ++id)
        queue.push(job(1, id));
    queue.push(job(2, 10));
    EXPECT_EQ(queue.queuedFor(1), 3u);
    EXPECT_EQ(queue.dropClient(1), 3u);
    EXPECT_EQ(queue.queuedFor(1), 0u);
    EXPECT_EQ(queue.queued(), 1u);

    JobWork work;
    ASSERT_TRUE(queue.pop(work));
    EXPECT_EQ(work.clientId, 2u);
    EXPECT_FALSE(queue.pop(work));
    // Dropping an unknown client is a no-op, not an error.
    EXPECT_EQ(queue.dropClient(42), 0u);
}

} // namespace
} // namespace keq::service
