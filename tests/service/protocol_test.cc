/** @file Validation-service wire protocol: every new frame survives
 *  encode/decode, the JobOptions <-> PipelineOptions mapping is an
 *  exact inverse on the carried subset, hostile hello bytes
 *  (truncations, bit flips) decode-fail or reject instead of
 *  negotiating a bogus session, and the v5 additions (job
 *  fingerprints, per-transport status counters, Ping/Pong heartbeats)
 *  keep every v4 frame form a valid strict prefix. */

#include <gtest/gtest.h>

#include <string>

#include "src/service/job_options.h"
#include "src/smt/wire.h"
#include "src/support/rng.h"
#include "src/vcgen/vcgen.h"

namespace keq::smt::wire {
namespace {

TEST(ServiceProtocolTest, ClientHelloRoundTrip)
{
    ClientHelloFrame hello;
    hello.clientName = "keqc-test";
    std::string bytes = encodeClientHello(hello);

    FrameType type{};
    std::string body;
    ASSERT_TRUE(splitFrame(bytes.substr(4), type, body));
    EXPECT_EQ(type, FrameType::ClientHello);

    ClientHelloFrame out;
    std::string error;
    ASSERT_TRUE(decodeClientHello(body, out, error)) << error;
    EXPECT_EQ(out.magic, kServiceMagic);
    EXPECT_EQ(out.protocolVersion, kProtocolVersion);
    EXPECT_EQ(out.clientName, "keqc-test");
}

TEST(ServiceProtocolTest, ServerHelloAndRejectRoundTrip)
{
    ServerHelloFrame hello;
    hello.pid = 12345;
    FrameType type{};
    std::string body;
    ASSERT_TRUE(splitFrame(encodeServerHello(hello).substr(4), type,
                           body));
    EXPECT_EQ(type, FrameType::ServerHello);
    ServerHelloFrame helloOut;
    std::string error;
    ASSERT_TRUE(decodeServerHello(body, helloOut, error)) << error;
    EXPECT_EQ(helloOut.protocolVersion, kProtocolVersion);
    EXPECT_EQ(helloOut.pid, 12345u);

    HelloRejectFrame reject;
    reject.supportedVersion = 3;
    reject.message = "unsupported protocol version 99";
    ASSERT_TRUE(splitFrame(encodeHelloReject(reject).substr(4), type,
                           body));
    EXPECT_EQ(type, FrameType::HelloReject);
    HelloRejectFrame rejectOut;
    ASSERT_TRUE(decodeHelloReject(body, rejectOut, error)) << error;
    EXPECT_EQ(rejectOut.supportedVersion, 3u);
    EXPECT_EQ(rejectOut.message, reject.message);
}

TEST(ServiceProtocolTest, SubmitJobRoundTrip)
{
    SubmitJobFrame job;
    job.jobId = 42;
    job.function = "@max";
    job.moduleText = "define i32 @max(i32 %a) {\nret i32 %a\n}\n";
    job.options.mergeStores = 1;
    job.options.bug = 2;
    job.options.smtTimeoutMs = 12500;
    job.options.wallBudgetSeconds = 1.5;
    job.options.specSizeBudget = 9000;

    FrameType type{};
    std::string body;
    ASSERT_TRUE(splitFrame(encodeSubmitJob(job).substr(4), type, body));
    EXPECT_EQ(type, FrameType::SubmitJob);
    SubmitJobFrame out;
    std::string error;
    ASSERT_TRUE(decodeSubmitJob(body, out, error)) << error;
    EXPECT_EQ(out.jobId, 42u);
    EXPECT_EQ(out.function, "@max");
    EXPECT_EQ(out.moduleText, job.moduleText);
    EXPECT_EQ(out.options.mergeStores, 1);
    EXPECT_EQ(out.options.bug, 2);
    EXPECT_EQ(out.options.smtTimeoutMs, 12500u);
    EXPECT_DOUBLE_EQ(out.options.wallBudgetSeconds, 1.5);
    EXPECT_EQ(out.options.specSizeBudget, 9000u);
}

TEST(ServiceProtocolTest, SubmitJobRejectsEmptyFunction)
{
    SubmitJobFrame job;
    job.jobId = 1;
    job.function = "";
    job.moduleText = "x";
    FrameType type{};
    std::string body;
    ASSERT_TRUE(splitFrame(encodeSubmitJob(job).substr(4), type, body));
    SubmitJobFrame out;
    std::string error;
    EXPECT_FALSE(decodeSubmitJob(body, out, error));
}

TEST(ServiceProtocolTest, JobStatusRoundTrip)
{
    JobStatusFrame status;
    status.queuedJobs = 1;
    status.runningJobs = 2;
    status.completedJobs = 3;
    status.storeEntries = 4;
    status.activeClients = 5;
    status.busyRejects = 6;
    status.storeBytes = 7;
    status.storeEvictions = 8;
    status.storeQuarantined = 9;
    status.auditMismatches = 10;
    status.quotaRejects = 11;
    status.draining = 1;
    FrameType type{};
    std::string body;
    ASSERT_TRUE(splitFrame(encodeJobStatus(status).substr(4), type,
                           body));
    EXPECT_EQ(type, FrameType::JobStatus);
    JobStatusFrame out;
    std::string error;
    ASSERT_TRUE(decodeJobStatus(body, out, error)) << error;
    EXPECT_EQ(out.queuedJobs, 1u);
    EXPECT_EQ(out.runningJobs, 2u);
    EXPECT_EQ(out.completedJobs, 3u);
    EXPECT_EQ(out.storeEntries, 4u);
    EXPECT_EQ(out.activeClients, 5u);
    EXPECT_EQ(out.busyRejects, 6u);
    EXPECT_EQ(out.storeBytes, 7u);
    EXPECT_EQ(out.storeEvictions, 8u);
    EXPECT_EQ(out.storeQuarantined, 9u);
    EXPECT_EQ(out.auditMismatches, 10u);
    EXPECT_EQ(out.quotaRejects, 11u);
    EXPECT_EQ(out.draining, 1);
}

TEST(ServiceProtocolTest, JobVerdictRoundTrip)
{
    JobVerdictFrame verdict;
    verdict.jobId = 7;
    verdict.report = "serialized\treport\tpayload";
    verdict.stats.queries = 11;
    verdict.stats.cacheHits = 5;
    verdict.stats.totalSeconds = 0.25;

    FrameType type{};
    std::string body;
    ASSERT_TRUE(splitFrame(encodeJobVerdict(verdict).substr(4), type,
                           body));
    EXPECT_EQ(type, FrameType::JobVerdict);
    JobVerdictFrame out;
    std::string error;
    ASSERT_TRUE(decodeJobVerdict(body, out, error)) << error;
    EXPECT_EQ(out.jobId, 7u);
    EXPECT_EQ(out.report, verdict.report);
    EXPECT_EQ(out.stats.queries, 11u);
    EXPECT_EQ(out.stats.cacheHits, 5u);
    EXPECT_DOUBLE_EQ(out.stats.totalSeconds, 0.25);
}

TEST(ServiceProtocolTest, BusyRoundTrip)
{
    BusyFrame busy;
    busy.jobId = 9;
    busy.inFlightLimit = 32;
    FrameType type{};
    std::string body;
    ASSERT_TRUE(splitFrame(encodeBusy(busy).substr(4), type, body));
    EXPECT_EQ(type, FrameType::Busy);
    BusyFrame out;
    std::string error;
    ASSERT_TRUE(decodeBusy(body, out, error)) << error;
    EXPECT_EQ(out.jobId, 9u);
    EXPECT_EQ(out.inFlightLimit, 32u);
}

TEST(ServiceProtocolTest, JobOptionsPipelineMappingIsInverse)
{
    namespace service = keq::service;
    driver::PipelineOptions options;
    options.isel.mergeStores = true;
    options.isel.foldExtLoad = true;
    options.isel.bug = isel::Bug::LoadWidening;
    options.checker.refinementOnly = true;
    options.checker.positiveFormOpt = false;
    options.checker.batchDischarge = true;
    options.checker.solverTimeoutMs = 4444;
    options.checker.wallBudgetSeconds = 2.75;
    options.vc.precision = vcgen::LivenessPrecision::BlockLocal;
    options.specSizeBudget = 777;

    JobOptionsFrame frame = service::encodeJobOptions(options);
    driver::PipelineOptions back = service::decodeJobOptions(frame);

    EXPECT_EQ(back.isel.mergeStores, options.isel.mergeStores);
    EXPECT_EQ(back.isel.foldExtLoad, options.isel.foldExtLoad);
    EXPECT_EQ(back.isel.bug, options.isel.bug);
    EXPECT_EQ(back.checker.refinementOnly,
              options.checker.refinementOnly);
    EXPECT_EQ(back.checker.positiveFormOpt,
              options.checker.positiveFormOpt);
    EXPECT_EQ(back.checker.batchDischarge,
              options.checker.batchDischarge);
    EXPECT_EQ(back.checker.solverTimeoutMs,
              options.checker.solverTimeoutMs);
    EXPECT_DOUBLE_EQ(back.checker.wallBudgetSeconds,
                     options.checker.wallBudgetSeconds);
    EXPECT_EQ(back.vc.precision, options.vc.precision);
    EXPECT_EQ(back.specSizeBudget, options.specSizeBudget);

    // The frame of the rebuilt options is identical, so the daemon's
    // Pipeline-pool key is stable across the client/daemon boundary.
    EXPECT_EQ(service::jobOptionsKey(service::encodeJobOptions(back)),
              service::jobOptionsKey(frame));
}

TEST(ServiceProtocolTest, JobOptionsKeySeparatesConfigs)
{
    namespace service = keq::service;
    driver::PipelineOptions a;
    driver::PipelineOptions b;
    b.isel.mergeStores = true;
    driver::PipelineOptions c;
    c.checker.solverTimeoutMs = 1;
    EXPECT_NE(service::jobOptionsKey(service::encodeJobOptions(a)),
              service::jobOptionsKey(service::encodeJobOptions(b)));
    EXPECT_NE(service::jobOptionsKey(service::encodeJobOptions(a)),
              service::jobOptionsKey(service::encodeJobOptions(c)));
}

/**
 * Property: no strict prefix of a ClientHello body decodes. A
 * truncated handshake (dead client, hostile peer) must be a typed
 * failure, never a partially-initialized session.
 */
TEST(ServiceProtocolTest, TruncatedHelloNeverDecodes)
{
    ClientHelloFrame hello;
    hello.clientName = "truncation-probe";
    FrameType type{};
    std::string body;
    ASSERT_TRUE(splitFrame(encodeClientHello(hello).substr(4), type,
                           body));
    for (size_t len = 0; len < body.size(); ++len) {
        ClientHelloFrame out;
        std::string error;
        EXPECT_FALSE(
            decodeClientHello(body.substr(0, len), out, error))
            << "prefix of length " << len << " decoded";
    }
}

/**
 * Property: a single flipped bit in a ClientHello is always *caught* —
 * either the decode fails, or the decoded frame no longer carries the
 * expected magic/version (so the daemon's handshake rejects it), or
 * only the advisory client name changed (harmless by design).
 */
TEST(ServiceProtocolTest, BitFlippedHelloIsRejectedOrHarmless)
{
    ClientHelloFrame hello;
    hello.clientName = "bitflip-probe";
    FrameType type{};
    std::string body;
    ASSERT_TRUE(splitFrame(encodeClientHello(hello).substr(4), type,
                           body));

    support::Rng rng(0x5e41ce2026ull);
    for (int trial = 0; trial < 256; ++trial) {
        std::string mutated = body;
        size_t byte = rng.below(mutated.size());
        mutated[byte] = static_cast<char>(
            static_cast<unsigned char>(mutated[byte]) ^
            (1u << rng.below(8)));

        ClientHelloFrame out;
        std::string error;
        if (!decodeClientHello(mutated, out, error))
            continue; // decode layer caught it
        bool handshakeRejects = out.magic != kServiceMagic ||
                                out.protocolVersion != kProtocolVersion;
        bool onlyNameChanged = out.magic == kServiceMagic &&
                               out.protocolVersion ==
                                   kProtocolVersion &&
                               out.clientName != hello.clientName;
        EXPECT_TRUE(handshakeRejects || onlyNameChanged)
            << "flipped byte " << byte
            << " produced an accepted, unchanged hello";
    }
}

// ---- wire v5: fingerprints, status counters, heartbeat frames ----

TEST(ServiceProtocolTest, SubmitJobV5CarriesFingerprint)
{
    SubmitJobFrame job;
    job.jobId = 3;
    job.function = "@f0";
    job.moduleText = "define i32 @f0() {\nret i32 0\n}\n";
    job.fingerprint = 0xDEADBEEFCAFEF00DULL;

    FrameType type{};
    std::string body;
    ASSERT_TRUE(splitFrame(encodeSubmitJob(job).substr(4), type, body));
    SubmitJobFrame out;
    std::string error;
    ASSERT_TRUE(decodeSubmitJob(body, out, error)) << error;
    EXPECT_EQ(out.fingerprint, job.fingerprint);
}

/** The v4 SubmitJob layout is a strict prefix of v5: a v4 encode is
 *  byte-for-byte the v5 encode minus the trailing fingerprint, and it
 *  decodes with fingerprint 0 ("no idempotency claim"). */
TEST(ServiceProtocolTest, SubmitJobV4FormIsPrefixOfV5)
{
    SubmitJobFrame job;
    job.jobId = 4;
    job.function = "@g";
    job.moduleText = "define i32 @g() {\nret i32 1\n}\n";
    job.fingerprint = 0x1234567890ABCDEFULL;

    FrameType type{};
    std::string v4body;
    std::string v5body;
    ASSERT_TRUE(
        splitFrame(encodeSubmitJob(job, 4).substr(4), type, v4body));
    ASSERT_TRUE(
        splitFrame(encodeSubmitJob(job, 5).substr(4), type, v5body));
    ASSERT_LT(v4body.size(), v5body.size());
    EXPECT_EQ(v5body.substr(0, v4body.size()), v4body);

    SubmitJobFrame out;
    std::string error;
    ASSERT_TRUE(decodeSubmitJob(v4body, out, error)) << error;
    EXPECT_EQ(out.fingerprint, 0u) << "v4 form must not claim dedup";
    EXPECT_EQ(out.function, job.function);
    EXPECT_EQ(out.moduleText, job.moduleText);
}

/** A torn trailing fingerprint (any strict prefix of the 8 bytes) must
 *  fail decode — the optional field is all-or-nothing, never a partial
 *  read that silently fabricates a bogus idempotency key. */
TEST(ServiceProtocolTest, SubmitJobTornFingerprintRejected)
{
    SubmitJobFrame job;
    job.jobId = 5;
    job.function = "@h";
    job.moduleText = "x";
    job.fingerprint = 0xFFFFFFFFFFFFFFFFULL;
    FrameType type{};
    std::string body;
    ASSERT_TRUE(splitFrame(encodeSubmitJob(job).substr(4), type, body));
    for (size_t cut = 1; cut < 8; ++cut) {
        SubmitJobFrame out;
        std::string error;
        EXPECT_FALSE(decodeSubmitJob(body.substr(0, body.size() - cut),
                                     out, error))
            << "torn fingerprint (" << cut << " bytes missing) decoded";
    }
}

TEST(ServiceProtocolTest, JobStatusV5CountersRoundTrip)
{
    JobStatusFrame status;
    status.completedJobs = 40;
    status.dedupHits = 12;
    status.acceptedUnix = 7;
    status.acceptedTcp = 9;
    FrameType type{};
    std::string body;
    ASSERT_TRUE(
        splitFrame(encodeJobStatus(status).substr(4), type, body));
    JobStatusFrame out;
    std::string error;
    ASSERT_TRUE(decodeJobStatus(body, out, error)) << error;
    EXPECT_EQ(out.completedJobs, 40u);
    EXPECT_EQ(out.dedupHits, 12u);
    EXPECT_EQ(out.acceptedUnix, 7u);
    EXPECT_EQ(out.acceptedTcp, 9u);
}

/** A v4-shaped JobStatus (no trailing counter group) still decodes,
 *  with the v5 counters defaulting to zero. */
TEST(ServiceProtocolTest, JobStatusV4FormStillDecodes)
{
    JobStatusFrame status;
    status.completedJobs = 17;
    status.dedupHits = 99; // must NOT survive a v4 encode
    FrameType type{};
    std::string v4body;
    std::string v5body;
    ASSERT_TRUE(
        splitFrame(encodeJobStatus(status, 4).substr(4), type, v4body));
    ASSERT_TRUE(
        splitFrame(encodeJobStatus(status, 5).substr(4), type, v5body));
    ASSERT_LT(v4body.size(), v5body.size());
    EXPECT_EQ(v5body.substr(0, v4body.size()), v4body);

    JobStatusFrame out;
    std::string error;
    ASSERT_TRUE(decodeJobStatus(v4body, out, error)) << error;
    EXPECT_EQ(out.completedJobs, 17u);
    EXPECT_EQ(out.dedupHits, 0u);
    EXPECT_EQ(out.acceptedUnix, 0u);
    EXPECT_EQ(out.acceptedTcp, 0u);
}

TEST(ServiceProtocolTest, PingPongRoundTrip)
{
    PingFrame ping;
    ping.nonce = 0xA5A5A5A5DEADULL;
    FrameType type{};
    std::string body;
    ASSERT_TRUE(splitFrame(encodePing(ping).substr(4), type, body));
    EXPECT_EQ(type, FrameType::Ping);
    PingFrame pingOut;
    std::string error;
    ASSERT_TRUE(decodePing(body, pingOut, error)) << error;
    EXPECT_EQ(pingOut.nonce, ping.nonce);

    PongFrame pong;
    pong.nonce = pingOut.nonce;
    ASSERT_TRUE(splitFrame(encodePong(pong).substr(4), type, body));
    EXPECT_EQ(type, FrameType::Pong);
    PongFrame pongOut;
    ASSERT_TRUE(decodePong(body, pongOut, error)) << error;
    EXPECT_EQ(pongOut.nonce, ping.nonce);
}

/** The idempotency key: deterministic, never 0, and sensitive to every
 *  component of the job identity (module, function, options). */
TEST(ServiceProtocolTest, JobFingerprintSeparatesJobIdentities)
{
    namespace service = keq::service;
    std::string moduleA = "define i32 @f() {\nret i32 0\n}\n";
    std::string moduleB = moduleA + "\n";
    JobOptionsFrame options =
        service::encodeJobOptions(driver::PipelineOptions{});
    JobOptionsFrame optionsTimeout = options;
    optionsTimeout.smtTimeoutMs = 123;

    uint64_t base = service::jobFingerprint(moduleA, "@f", options);
    EXPECT_NE(base, 0u);
    EXPECT_EQ(base, service::jobFingerprint(moduleA, "@f", options))
        << "fingerprint must be deterministic";
    EXPECT_NE(base, service::jobFingerprint(moduleB, "@f", options));
    EXPECT_NE(base, service::jobFingerprint(moduleA, "@g", options));
    EXPECT_NE(base,
              service::jobFingerprint(moduleA, "@f", optionsTimeout));
}

/** Version skew must be expressible: a v2 hello decodes fine (the
 *  codec is version-agnostic) and is rejected by *policy*. */
TEST(ServiceProtocolTest, OldVersionHelloDecodesButMismatches)
{
    ClientHelloFrame hello;
    hello.protocolVersion = 2;
    FrameType type{};
    std::string body;
    ASSERT_TRUE(splitFrame(encodeClientHello(hello).substr(4), type,
                           body));
    ClientHelloFrame out;
    std::string error;
    ASSERT_TRUE(decodeClientHello(body, out, error)) << error;
    EXPECT_NE(out.protocolVersion, kProtocolVersion);
}

} // namespace
} // namespace keq::smt::wire
