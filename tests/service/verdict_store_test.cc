/** @file Cross-run verdict store: journal round-trips across restart,
 *  cache attachment (preload + fresh-insert persistence), duplicate
 *  suppression, fingerprint-collision safety under a degenerate
 *  hasher, and torn-tail recovery. */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>
#include <unistd.h>

#include "src/service/verdict_store.h"
#include "src/smt/caching_solver.h"
#include "src/support/diagnostics.h"

namespace keq::service {
namespace {

struct TempFile
{
    std::string path;

    explicit TempFile(const std::string &stem)
        : path((std::filesystem::temp_directory_path() /
                ("keq-verdict-store-" + stem + "-" +
                 std::to_string(::getpid()) + ".log"))
                   .string())
    {
        std::remove(path.c_str());
    }

    ~TempFile() { std::remove(path.c_str()); }

    std::string
    read() const
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream out;
        out << in.rdbuf();
        return out.str();
    }

    void
    write(const std::string &bytes) const
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << bytes;
    }
};

TEST(VerdictStoreTest, RecordAndLookupInMemory)
{
    VerdictStore store(""); // memory-only
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;

    EXPECT_TRUE(store.record("query-a", smt::SatResult::Unsat));
    EXPECT_TRUE(store.record("query-b", smt::SatResult::Sat));
    EXPECT_EQ(store.size(), 2u);

    auto a = store.lookup("query-a");
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a, smt::SatResult::Unsat);
    auto b = store.lookup("query-b");
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*b, smt::SatResult::Sat);
    EXPECT_FALSE(store.lookup("query-c").has_value());

    VerdictStore::Stats stats = store.stats();
    EXPECT_EQ(stats.lookups, 3u);
    EXPECT_EQ(stats.hits, 2u);
}

TEST(VerdictStoreTest, DuplicateRecordIsNotReappended)
{
    VerdictStore store("");
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    EXPECT_TRUE(store.record("key", smt::SatResult::Unsat));
    EXPECT_FALSE(store.record("key", smt::SatResult::Unsat));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.stats().duplicates, 1u);
}

TEST(VerdictStoreTest, UnknownVerdictIsRejectedByContract)
{
    VerdictStore store("");
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    EXPECT_THROW(store.record("key", smt::SatResult::Unknown),
                 support::InternalError);
}

TEST(VerdictStoreTest, JournalRoundTripAcrossRestart)
{
    TempFile file("restart");
    {
        VerdictStore store(file.path);
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;
        EXPECT_TRUE(store.record("alpha", smt::SatResult::Unsat));
        EXPECT_TRUE(store.record("beta", smt::SatResult::Sat));
        EXPECT_EQ(store.stats().appended, 2u);
    } // daemon "dies"

    VerdictStore reopened(file.path);
    std::string error;
    ASSERT_TRUE(reopened.open(error)) << error;
    EXPECT_EQ(reopened.size(), 2u);
    EXPECT_EQ(reopened.stats().loaded, 2u);
    auto alpha = reopened.lookup("alpha");
    ASSERT_TRUE(alpha.has_value());
    EXPECT_EQ(*alpha, smt::SatResult::Unsat);
    auto beta = reopened.lookup("beta");
    ASSERT_TRUE(beta.has_value());
    EXPECT_EQ(*beta, smt::SatResult::Sat);

    // Records learned before the restart are resident, not re-journaled.
    EXPECT_FALSE(reopened.record("alpha", smt::SatResult::Unsat));
    EXPECT_EQ(reopened.stats().appended, 0u);
}

TEST(VerdictStoreTest, WrongJournalKindFailsLoudly)
{
    TempFile file("kind");
    {
        support::JournalWriter writer(file.path, "pipeline-checkpoint");
        writer.append("not-a-verdict");
    }
    VerdictStore store(file.path);
    std::string error;
    EXPECT_FALSE(store.open(error));
    EXPECT_NE(error.find("pipeline-checkpoint"), std::string::npos);
}

TEST(VerdictStoreTest, TornTailDropsOnlyTheDamagedSuffix)
{
    TempFile file("torn");
    {
        VerdictStore store(file.path);
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;
        EXPECT_TRUE(store.record("intact-1", smt::SatResult::Unsat));
        EXPECT_TRUE(store.record("intact-2", smt::SatResult::Sat));
        EXPECT_TRUE(store.record("doomed", smt::SatResult::Unsat));
    }
    // Simulate SIGKILL mid-append: cut the file inside the last record.
    std::string bytes = file.read();
    file.write(bytes.substr(0, bytes.size() - 3));

    VerdictStore reopened(file.path);
    std::string error;
    ASSERT_TRUE(reopened.open(error)) << error;
    EXPECT_EQ(reopened.size(), 2u);
    EXPECT_EQ(reopened.stats().droppedRecords, 1u);
    EXPECT_TRUE(reopened.lookup("intact-1").has_value());
    EXPECT_TRUE(reopened.lookup("intact-2").has_value());
    EXPECT_FALSE(reopened.lookup("doomed").has_value());

    // The store stays appendable after recovery.
    EXPECT_TRUE(reopened.record("fresh", smt::SatResult::Sat));
    VerdictStore again(file.path);
    ASSERT_TRUE(again.open(error)) << error;
    EXPECT_EQ(again.size(), 3u);
}

/**
 * Collision safety: with a degenerate hasher (every key hashes to 7)
 * the index devolves into one probe chain, but lookups still compare
 * full keys — a collision can never alias one query's verdict to
 * another. This is the soundness half of the content-addressed store.
 */
TEST(VerdictStoreTest, DegenerateHasherStaysSound)
{
    VerdictStore store("", support::FsyncPolicy::Off,
                       [](const std::string &) -> uint64_t {
                           return 7;
                       });
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;

    EXPECT_TRUE(store.record("colliding-a", smt::SatResult::Unsat));
    EXPECT_TRUE(store.record("colliding-b", smt::SatResult::Sat));
    EXPECT_TRUE(store.record("colliding-c", smt::SatResult::Unsat));

    auto a = store.lookup("colliding-a");
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a, smt::SatResult::Unsat);
    auto b = store.lookup("colliding-b");
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*b, smt::SatResult::Sat);
    EXPECT_FALSE(store.lookup("colliding-d").has_value());
    EXPECT_GT(store.stats().collisions, 0u);
}

TEST(VerdictStoreTest, AttachPreloadsCacheAndPersistsFreshInserts)
{
    TempFile file("attach");
    {
        VerdictStore store(file.path);
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;
        EXPECT_TRUE(store.record("warm", smt::SatResult::Unsat));

        smt::QueryCache cache;
        store.attach(cache);
        // Preload: the resident verdict is already a cache hit...
        auto hit = cache.lookup("warm");
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(*hit, smt::SatResult::Unsat);
        // ...and preloading did not double-journal it.
        EXPECT_EQ(store.stats().appended, 1u);

        // A fresh solver verdict inserted into the cache is captured.
        cache.insert("earned", smt::SatResult::Sat);
        EXPECT_EQ(store.size(), 2u);
        // Touching an existing key is not a fresh insert: no re-append.
        cache.insert("earned", smt::SatResult::Sat);
        EXPECT_EQ(store.stats().appended, 2u);
    }

    // Both the preloaded and the captured verdict survive restart.
    VerdictStore reopened(file.path);
    std::string error;
    ASSERT_TRUE(reopened.open(error)) << error;
    EXPECT_EQ(reopened.size(), 2u);
    auto earned = reopened.lookup("earned");
    ASSERT_TRUE(earned.has_value());
    EXPECT_EQ(*earned, smt::SatResult::Sat);
}

TEST(VerdictStoreTest, MissingFileIsAFreshStore)
{
    TempFile file("missing");
    VerdictStore store(file.path);
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    EXPECT_EQ(store.size(), 0u);
    EXPECT_TRUE(store.record("first", smt::SatResult::Unsat));
}

// ---- Month-scale lifecycle: eviction, scrub, compaction, audits ----

/** Two fixed-length keys cost exactly 2 * (8 + overhead) bytes. */
constexpr uint64_t kKeyLen = 8;
constexpr uint64_t kCost =
    kKeyLen + VerdictStore::kEntryOverheadBytes;

VerdictStore
cappedStore(uint64_t maxBytes)
{
    VerdictStore::Options options;
    options.maxBytes = maxBytes;
    return VerdictStore(options);
}

TEST(VerdictStoreLifecycleTest, EvictionBoundaryAtCapMinusOne)
{
    // One byte short of two entries: the second record must evict the
    // first (LRU), never over-run the cap.
    VerdictStore store = cappedStore(2 * kCost - 1);
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    EXPECT_TRUE(store.record("entry-a1", smt::SatResult::Unsat));
    EXPECT_TRUE(store.record("entry-b2", smt::SatResult::Sat));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.stats().evictions, 1u);
    EXPECT_FALSE(store.lookup("entry-a1").has_value());
    EXPECT_TRUE(store.lookup("entry-b2").has_value());
    EXPECT_LE(store.stats().bytes, 2 * kCost - 1);
}

TEST(VerdictStoreLifecycleTest, EvictionBoundaryAtExactCap)
{
    // Exactly two entries fit: no eviction at the boundary.
    VerdictStore store = cappedStore(2 * kCost);
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    EXPECT_TRUE(store.record("entry-a1", smt::SatResult::Unsat));
    EXPECT_TRUE(store.record("entry-b2", smt::SatResult::Sat));
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.stats().evictions, 0u);
    EXPECT_EQ(store.stats().bytes, 2 * kCost);
}

TEST(VerdictStoreLifecycleTest, EvictionBoundaryAtCapPlusOne)
{
    VerdictStore store = cappedStore(2 * kCost + 1);
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    EXPECT_TRUE(store.record("entry-a1", smt::SatResult::Unsat));
    EXPECT_TRUE(store.record("entry-b2", smt::SatResult::Sat));
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.stats().evictions, 0u);
    // A third entry pushes past the cap: the coldest goes.
    EXPECT_TRUE(store.record("entry-c3", smt::SatResult::Unsat));
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.stats().evictions, 1u);
    EXPECT_FALSE(store.lookup("entry-a1").has_value());
}

TEST(VerdictStoreLifecycleTest, EvictionIsLeastRecentlyUsed)
{
    VerdictStore store = cappedStore(2 * kCost);
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    EXPECT_TRUE(store.record("entry-a1", smt::SatResult::Unsat));
    EXPECT_TRUE(store.record("entry-b2", smt::SatResult::Sat));
    // Touch a1 so b2 becomes the coldest entry.
    EXPECT_TRUE(store.lookup("entry-a1").has_value());
    EXPECT_TRUE(store.record("entry-c3", smt::SatResult::Unsat));
    EXPECT_TRUE(store.lookup("entry-a1").has_value());
    EXPECT_FALSE(store.lookup("entry-b2").has_value());
    EXPECT_TRUE(store.lookup("entry-c3").has_value());
}

TEST(VerdictStoreLifecycleTest, OversizedSingleEntryStillRecords)
{
    // The newest entry is never evicted: a key bigger than the whole
    // cap still caches (and the cap recovers on the next record).
    VerdictStore store = cappedStore(kCost / 2);
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    EXPECT_TRUE(store.record("entry-a1", smt::SatResult::Unsat));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_TRUE(store.lookup("entry-a1").has_value());
}

TEST(VerdictStoreLifecycleTest, BitFlippedRecordIsSkippedAlone)
{
    TempFile file("bitflip");
    {
        VerdictStore store(file.path);
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;
        EXPECT_TRUE(store.record("before", smt::SatResult::Unsat));
        EXPECT_TRUE(store.record("victim", smt::SatResult::Sat));
        EXPECT_TRUE(store.record("after", smt::SatResult::Unsat));
    }
    // Flip one bit inside the *middle* record's line. Unlike a torn
    // tail, records after the damage must still load: the scan skips
    // the checksum-failing line alone.
    std::string bytes = file.read();
    size_t at = bytes.find("victim");
    ASSERT_NE(at, std::string::npos);
    bytes[at] ^= 0x01;
    file.write(bytes);

    VerdictStore reopened(file.path);
    std::string error;
    ASSERT_TRUE(reopened.open(error)) << error;
    EXPECT_EQ(reopened.size(), 2u);
    EXPECT_GE(reopened.stats().droppedRecords, 1u);
    EXPECT_TRUE(reopened.lookup("before").has_value());
    EXPECT_FALSE(reopened.lookup("victim").has_value());
    EXPECT_TRUE(reopened.lookup("after").has_value())
        << "a mid-file bit flip must not shadow later records";

    // Recovery compacted the rot away: the next restart loads clean.
    VerdictStore again(file.path);
    ASSERT_TRUE(again.open(error)) << error;
    EXPECT_EQ(again.size(), 2u);
    EXPECT_EQ(again.stats().droppedRecords, 0u);
}

TEST(VerdictStoreLifecycleTest, ScrubDropsCorruptResidentEntries)
{
    VerdictStore store("");
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    EXPECT_TRUE(store.record("healthy", smt::SatResult::Unsat));
    EXPECT_TRUE(store.record("rotten", smt::SatResult::Sat));

    // Simulate in-memory rot: the verdict flips but the checksum
    // doesn't. The scariest failure — a healthy-looking wrong answer.
    ASSERT_TRUE(store.corruptResidentEntryForTest("rotten"));
    EXPECT_EQ(store.scrub(), 1u);
    EXPECT_EQ(store.stats().scrubRejected, 1u);
    EXPECT_EQ(store.size(), 1u);
    EXPECT_TRUE(store.lookup("healthy").has_value());
    EXPECT_FALSE(store.lookup("rotten").has_value());
}

TEST(VerdictStoreLifecycleTest, LookupNeverServesACorruptEntry)
{
    VerdictStore store("");
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    EXPECT_TRUE(store.record("rotten", smt::SatResult::Unsat));
    ASSERT_TRUE(store.corruptResidentEntryForTest("rotten"));
    // No scrub ran — the serve path itself must catch the rot.
    EXPECT_FALSE(store.lookup("rotten").has_value());
    EXPECT_EQ(store.stats().scrubRejected, 1u);
    // The key re-records afterwards (re-solved fresh).
    EXPECT_TRUE(store.record("rotten", smt::SatResult::Unsat));
    EXPECT_TRUE(store.lookup("rotten").has_value());
}

TEST(VerdictStoreLifecycleTest, QuarantineTombstoneSurvivesRestart)
{
    TempFile file("quarantine");
    {
        VerdictStore store(file.path);
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;
        EXPECT_TRUE(store.record("good", smt::SatResult::Unsat));
        EXPECT_TRUE(store.record("bad", smt::SatResult::Sat));
        EXPECT_TRUE(store.quarantine("bad"));
        EXPECT_FALSE(store.lookup("bad").has_value());
        EXPECT_EQ(store.stats().quarantined, 1u);
    }
    VerdictStore reopened(file.path);
    std::string error;
    ASSERT_TRUE(reopened.open(error)) << error;
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_TRUE(reopened.lookup("good").has_value());
    EXPECT_FALSE(reopened.lookup("bad").has_value())
        << "a quarantined verdict must stay dead across restarts";

    // A fresh re-solve after the tombstone resurrects the key — replay
    // order is record, tombstone, record.
    EXPECT_TRUE(reopened.record("bad", smt::SatResult::Unsat));
    VerdictStore again(file.path);
    ASSERT_TRUE(again.open(error)) << error;
    auto bad = again.lookup("bad");
    ASSERT_TRUE(bad.has_value());
    EXPECT_EQ(*bad, smt::SatResult::Unsat);
}

TEST(VerdictStoreLifecycleTest, CompactionReclaimsGarbageAndShrinks)
{
    TempFile file("compact");
    VerdictStore::Options options;
    options.path = file.path;
    options.compactGarbageRatio = 0.0; // manual compaction only
    VerdictStore store(options);
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;

    for (int i = 0; i < 32; ++i)
        EXPECT_TRUE(store.record("key-" + std::to_string(i),
                                 smt::SatResult::Unsat));
    for (int i = 0; i < 24; ++i)
        EXPECT_TRUE(store.quarantine("key-" + std::to_string(i)));
    store.sync();
    size_t before = file.read().size();
    uint64_t generation = store.stats().generation;

    store.compact();
    store.sync();
    EXPECT_LT(file.read().size(), before)
        << "compaction must reclaim dead records and tombstones";
    EXPECT_EQ(store.stats().compactions, 1u);
    EXPECT_EQ(store.stats().garbageRecords, 0u);
    EXPECT_GT(store.stats().generation, generation);

    VerdictStore reopened(file.path);
    ASSERT_TRUE(reopened.open(error)) << error;
    EXPECT_EQ(reopened.size(), 8u);
    for (int i = 24; i < 32; ++i)
        EXPECT_TRUE(
            reopened.lookup("key-" + std::to_string(i)).has_value());
}

TEST(VerdictStoreLifecycleTest, AutoCompactionTriggersOnGarbageRatio)
{
    TempFile file("autocompact");
    VerdictStore::Options options;
    options.path = file.path;
    options.compactGarbageRatio = 0.4;
    options.compactMinRecords = 8;
    VerdictStore store(options);
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;

    for (int i = 0; i < 16; ++i)
        EXPECT_TRUE(store.record("key-" + std::to_string(i),
                                 smt::SatResult::Unsat));
    EXPECT_EQ(store.stats().compactions, 0u);
    for (int i = 0; i < 12; ++i)
        EXPECT_TRUE(store.quarantine("key-" + std::to_string(i)));
    EXPECT_GT(store.stats().compactions, 0u)
        << "crossing the garbage ratio must compact without SIGHUP";
    EXPECT_EQ(store.size(), 4u);

    VerdictStore reopened(file.path);
    ASSERT_TRUE(reopened.open(error)) << error;
    EXPECT_EQ(reopened.size(), 4u);
}

TEST(VerdictStoreLifecycleTest, CompactedJournalRoundTripsByteIdentical)
{
    TempFile file("identical");
    {
        VerdictStore store(file.path);
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;
        for (int i = 0; i < 10; ++i)
            EXPECT_TRUE(store.record("key-" + std::to_string(i),
                                     i % 2 == 0 ? smt::SatResult::Unsat
                                                : smt::SatResult::Sat));
        EXPECT_TRUE(store.quarantine("key-3"));
        store.compact();
        store.sync();
    }
    std::string first = file.read();

    // Reload the compacted journal and compact again: entry set, LRU
    // order and generation handling must be stable enough that the
    // bytes do not drift across restart cycles.
    std::string second;
    {
        VerdictStore store(file.path);
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;
        EXPECT_EQ(store.size(), 9u);
        store.compact();
        store.sync();
        second = file.read();
    }
    EXPECT_EQ(first.size(), second.size());
    // The generation stamp advances on every compaction by design (and
    // each line's checksum covers it), so byte-identity is asserted
    // with the 16-hex line checksum and the generation digits masked:
    // same records, same order, same keys, same verdicts.
    auto masked = [](const std::string &bytes) {
        std::istringstream in(bytes);
        std::ostringstream out;
        std::string line;
        bool header = true;
        while (std::getline(in, line)) {
            if (!header && line.size() > 17) {
                for (size_t i = 0; i < 16; ++i)
                    line[i] = '#';
                size_t digit = 18; // past "<hex> g"
                while (digit < line.size() &&
                       std::isdigit(
                           static_cast<unsigned char>(line[digit])))
                    line[digit++] = '#';
            }
            header = false;
            out << line << '\n';
        }
        return out.str();
    };
    EXPECT_EQ(masked(first), masked(second));
}

TEST(VerdictStoreLifecycleTest, CompactionConcurrentWithAppends)
{
    TempFile file("concurrent");
    constexpr int kWriters = 4;
    constexpr int kPerWriter = 64;
    {
        VerdictStore::Options options;
        options.path = file.path;
        options.compactGarbageRatio = 0.0; // only the explicit calls
        VerdictStore store(options);
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;

        std::vector<std::thread> writers;
        for (int w = 0; w < kWriters; ++w) {
            writers.emplace_back([&store, w] {
                for (int i = 0; i < kPerWriter; ++i) {
                    store.record("writer-" + std::to_string(w) + "-" +
                                     std::to_string(i),
                                 smt::SatResult::Unsat);
                }
            });
        }
        // Compact repeatedly while the writers hammer the store.
        for (int i = 0; i < 8; ++i)
            store.compact();
        for (std::thread &writer : writers)
            writer.join();
        store.compact();
        store.sync();
        EXPECT_EQ(store.size(), kWriters * kPerWriter);
    }

    // Every record appended around the compactions survives restart.
    VerdictStore reopened(file.path);
    std::string error;
    ASSERT_TRUE(reopened.open(error)) << error;
    EXPECT_EQ(reopened.size(),
              static_cast<size_t>(kWriters * kPerWriter));
    EXPECT_EQ(reopened.stats().droppedRecords, 0u);
    for (int w = 0; w < kWriters; ++w) {
        for (int i = 0; i < kPerWriter; ++i) {
            EXPECT_TRUE(reopened
                            .lookup("writer-" + std::to_string(w) +
                                    "-" + std::to_string(i))
                            .has_value())
                << "writer " << w << " record " << i;
        }
    }
}

TEST(VerdictStoreLifecycleTest, EvictedEntriesVanishAfterCompaction)
{
    TempFile file("evictcompact");
    VerdictStore::Options options;
    options.path = file.path;
    options.maxBytes = 2 * kCost;
    options.compactGarbageRatio = 0.0;
    {
        VerdictStore store(options);
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;
        EXPECT_TRUE(store.record("entry-a1", smt::SatResult::Unsat));
        EXPECT_TRUE(store.record("entry-b2", smt::SatResult::Sat));
        EXPECT_TRUE(store.record("entry-c3", smt::SatResult::Unsat));
        EXPECT_EQ(store.stats().evictions, 1u);
        store.compact();
        store.sync();
    }
    // The compacted journal only carries the resident set, so a
    // restart cannot resurrect the evicted entry.
    VerdictStore reopened(options);
    std::string error;
    ASSERT_TRUE(reopened.open(error)) << error;
    EXPECT_EQ(reopened.size(), 2u);
    EXPECT_FALSE(reopened.lookup("entry-a1").has_value());
    EXPECT_TRUE(reopened.lookup("entry-b2").has_value());
    EXPECT_TRUE(reopened.lookup("entry-c3").has_value());
}

} // namespace
} // namespace keq::service
