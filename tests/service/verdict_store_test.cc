/** @file Cross-run verdict store: journal round-trips across restart,
 *  cache attachment (preload + fresh-insert persistence), duplicate
 *  suppression, fingerprint-collision safety under a degenerate
 *  hasher, and torn-tail recovery. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>

#include "src/service/verdict_store.h"
#include "src/smt/caching_solver.h"
#include "src/support/diagnostics.h"

namespace keq::service {
namespace {

struct TempFile
{
    std::string path;

    explicit TempFile(const std::string &stem)
        : path((std::filesystem::temp_directory_path() /
                ("keq-verdict-store-" + stem + "-" +
                 std::to_string(::getpid()) + ".log"))
                   .string())
    {
        std::remove(path.c_str());
    }

    ~TempFile() { std::remove(path.c_str()); }

    std::string
    read() const
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream out;
        out << in.rdbuf();
        return out.str();
    }

    void
    write(const std::string &bytes) const
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << bytes;
    }
};

TEST(VerdictStoreTest, RecordAndLookupInMemory)
{
    VerdictStore store(""); // memory-only
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;

    EXPECT_TRUE(store.record("query-a", smt::SatResult::Unsat));
    EXPECT_TRUE(store.record("query-b", smt::SatResult::Sat));
    EXPECT_EQ(store.size(), 2u);

    auto a = store.lookup("query-a");
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a, smt::SatResult::Unsat);
    auto b = store.lookup("query-b");
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*b, smt::SatResult::Sat);
    EXPECT_FALSE(store.lookup("query-c").has_value());

    VerdictStore::Stats stats = store.stats();
    EXPECT_EQ(stats.lookups, 3u);
    EXPECT_EQ(stats.hits, 2u);
}

TEST(VerdictStoreTest, DuplicateRecordIsNotReappended)
{
    VerdictStore store("");
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    EXPECT_TRUE(store.record("key", smt::SatResult::Unsat));
    EXPECT_FALSE(store.record("key", smt::SatResult::Unsat));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.stats().duplicates, 1u);
}

TEST(VerdictStoreTest, UnknownVerdictIsRejectedByContract)
{
    VerdictStore store("");
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    EXPECT_THROW(store.record("key", smt::SatResult::Unknown),
                 support::InternalError);
}

TEST(VerdictStoreTest, JournalRoundTripAcrossRestart)
{
    TempFile file("restart");
    {
        VerdictStore store(file.path);
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;
        EXPECT_TRUE(store.record("alpha", smt::SatResult::Unsat));
        EXPECT_TRUE(store.record("beta", smt::SatResult::Sat));
        EXPECT_EQ(store.stats().appended, 2u);
    } // daemon "dies"

    VerdictStore reopened(file.path);
    std::string error;
    ASSERT_TRUE(reopened.open(error)) << error;
    EXPECT_EQ(reopened.size(), 2u);
    EXPECT_EQ(reopened.stats().loaded, 2u);
    auto alpha = reopened.lookup("alpha");
    ASSERT_TRUE(alpha.has_value());
    EXPECT_EQ(*alpha, smt::SatResult::Unsat);
    auto beta = reopened.lookup("beta");
    ASSERT_TRUE(beta.has_value());
    EXPECT_EQ(*beta, smt::SatResult::Sat);

    // Records learned before the restart are resident, not re-journaled.
    EXPECT_FALSE(reopened.record("alpha", smt::SatResult::Unsat));
    EXPECT_EQ(reopened.stats().appended, 0u);
}

TEST(VerdictStoreTest, WrongJournalKindFailsLoudly)
{
    TempFile file("kind");
    {
        support::JournalWriter writer(file.path, "pipeline-checkpoint");
        writer.append("not-a-verdict");
    }
    VerdictStore store(file.path);
    std::string error;
    EXPECT_FALSE(store.open(error));
    EXPECT_NE(error.find("pipeline-checkpoint"), std::string::npos);
}

TEST(VerdictStoreTest, TornTailDropsOnlyTheDamagedSuffix)
{
    TempFile file("torn");
    {
        VerdictStore store(file.path);
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;
        EXPECT_TRUE(store.record("intact-1", smt::SatResult::Unsat));
        EXPECT_TRUE(store.record("intact-2", smt::SatResult::Sat));
        EXPECT_TRUE(store.record("doomed", smt::SatResult::Unsat));
    }
    // Simulate SIGKILL mid-append: cut the file inside the last record.
    std::string bytes = file.read();
    file.write(bytes.substr(0, bytes.size() - 3));

    VerdictStore reopened(file.path);
    std::string error;
    ASSERT_TRUE(reopened.open(error)) << error;
    EXPECT_EQ(reopened.size(), 2u);
    EXPECT_EQ(reopened.stats().droppedRecords, 1u);
    EXPECT_TRUE(reopened.lookup("intact-1").has_value());
    EXPECT_TRUE(reopened.lookup("intact-2").has_value());
    EXPECT_FALSE(reopened.lookup("doomed").has_value());

    // The store stays appendable after recovery.
    EXPECT_TRUE(reopened.record("fresh", smt::SatResult::Sat));
    VerdictStore again(file.path);
    ASSERT_TRUE(again.open(error)) << error;
    EXPECT_EQ(again.size(), 3u);
}

/**
 * Collision safety: with a degenerate hasher (every key hashes to 7)
 * the index devolves into one probe chain, but lookups still compare
 * full keys — a collision can never alias one query's verdict to
 * another. This is the soundness half of the content-addressed store.
 */
TEST(VerdictStoreTest, DegenerateHasherStaysSound)
{
    VerdictStore store("", support::FsyncPolicy::Off,
                       [](const std::string &) -> uint64_t {
                           return 7;
                       });
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;

    EXPECT_TRUE(store.record("colliding-a", smt::SatResult::Unsat));
    EXPECT_TRUE(store.record("colliding-b", smt::SatResult::Sat));
    EXPECT_TRUE(store.record("colliding-c", smt::SatResult::Unsat));

    auto a = store.lookup("colliding-a");
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a, smt::SatResult::Unsat);
    auto b = store.lookup("colliding-b");
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*b, smt::SatResult::Sat);
    EXPECT_FALSE(store.lookup("colliding-d").has_value());
    EXPECT_GT(store.stats().collisions, 0u);
}

TEST(VerdictStoreTest, AttachPreloadsCacheAndPersistsFreshInserts)
{
    TempFile file("attach");
    {
        VerdictStore store(file.path);
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;
        EXPECT_TRUE(store.record("warm", smt::SatResult::Unsat));

        smt::QueryCache cache;
        store.attach(cache);
        // Preload: the resident verdict is already a cache hit...
        auto hit = cache.lookup("warm");
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(*hit, smt::SatResult::Unsat);
        // ...and preloading did not double-journal it.
        EXPECT_EQ(store.stats().appended, 1u);

        // A fresh solver verdict inserted into the cache is captured.
        cache.insert("earned", smt::SatResult::Sat);
        EXPECT_EQ(store.size(), 2u);
        // Touching an existing key is not a fresh insert: no re-append.
        cache.insert("earned", smt::SatResult::Sat);
        EXPECT_EQ(store.stats().appended, 2u);
    }

    // Both the preloaded and the captured verdict survive restart.
    VerdictStore reopened(file.path);
    std::string error;
    ASSERT_TRUE(reopened.open(error)) << error;
    EXPECT_EQ(reopened.size(), 2u);
    auto earned = reopened.lookup("earned");
    ASSERT_TRUE(earned.has_value());
    EXPECT_EQ(*earned, smt::SatResult::Sat);
}

TEST(VerdictStoreTest, MissingFileIsAFreshStore)
{
    TempFile file("missing");
    VerdictStore store(file.path);
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    EXPECT_EQ(store.size(), 0u);
    EXPECT_TRUE(store.record("first", smt::SatResult::Unsat));
}

} // namespace
} // namespace keq::service
