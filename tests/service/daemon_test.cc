/** @file In-process daemon integration: handshake negotiation (and its
 *  typed rejections), daemon-vs-local verdict parity — including the
 *  full conformance corpus — warm-cache behaviour across clients,
 *  Busy backpressure, and concurrent clients. */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/conformance/corpus.h"
#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"
#include "src/service/client.h"
#include "src/service/job_options.h"
#include "src/service/server.h"
#include "src/smt/wire.h"
#include "src/support/journal.h"

namespace keq::service {
namespace {

namespace wire = smt::wire;

/** Unique socket path per test (sun_path is short; stay terse). */
std::string
socketPath(const std::string &stem)
{
    return (std::filesystem::temp_directory_path() /
            ("keqd-" + stem + "-" + std::to_string(::getpid()) +
             ".sock"))
        .string();
}

/** A small deterministic Figure 6-style module. */
std::string
testModule(size_t functions = 4)
{
    driver::CorpusOptions options;
    options.seed = 0x5e41ce;
    options.functionCount = functions;
    return driver::generateCorpusSource(options);
}

std::vector<std::string>
definedFunctions(const std::string &source)
{
    llvmir::Module module = llvmir::parseModule(source);
    std::vector<std::string> names;
    for (const llvmir::Function &fn : module.functions)
        if (!fn.isDeclaration())
            names.push_back(fn.name);
    return names;
}

std::string
canonicalSummary(const std::vector<driver::FunctionReport> &reports)
{
    driver::ModuleReport module;
    module.functions = reports;
    return module.canonicalSummary();
}

/** Local (daemonless) reference run. */
std::string
localSummary(const std::string &source,
             const driver::PipelineOptions &options)
{
    driver::Pipeline pipeline(options);
    llvmir::Module module = llvmir::parseModule(source);
    return pipeline.run(module).canonicalSummary();
}

/** Polls @p predicate every few ms until true or @p budgetMs expires. */
template <typename Predicate>
bool
eventually(Predicate predicate, unsigned budgetMs = 10000)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(budgetMs);
    while (!predicate()) {
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return true;
}

/** Runs every defined function of @p source through the daemon. */
std::vector<driver::FunctionReport>
daemonRun(DaemonClient &client, const std::string &source,
          const driver::PipelineOptions &options)
{
    std::vector<driver::FunctionReport> reports;
    std::vector<bool> decided;
    std::string error;
    EXPECT_TRUE(client.validateFunctions(source,
                                         definedFunctions(source),
                                         options, reports, decided,
                                         error))
        << error;
    for (size_t i = 0; i < decided.size(); ++i)
        EXPECT_TRUE(decided[i]) << "function " << i << " undecided";
    return reports;
}

TEST(DaemonTest, StartStatusStop)
{
    ServerOptions options;
    options.socketPath = socketPath("lifecycle");
    options.jobs = 2;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    DaemonClientOptions copts;
    copts.socketPath = options.socketPath;
    DaemonClient client(copts);
    ASSERT_TRUE(client.connect(error)) << error;
    EXPECT_EQ(client.serverHello().protocolVersion,
              wire::kProtocolVersion);

    wire::JobStatusFrame status;
    ASSERT_TRUE(client.queryStatus(status, error)) << error;
    EXPECT_EQ(status.completedJobs, 0u);
    EXPECT_EQ(status.activeClients, 1u);

    server.stop();
    EXPECT_FALSE(std::filesystem::exists(options.socketPath))
        << "socket not unlinked on clean stop";
}

TEST(DaemonTest, SecondDaemonOnSamePathRefusesToStart)
{
    ServerOptions options;
    options.socketPath = socketPath("exclusive");
    Server first(options);
    std::string error;
    ASSERT_TRUE(first.start(error)) << error;

    Server second(options);
    EXPECT_FALSE(second.start(error));
    EXPECT_NE(error.find("already listening"), std::string::npos)
        << error;
    first.stop();
}

TEST(DaemonTest, VersionMismatchGetsTypedReject)
{
    ServerOptions options;
    options.socketPath = socketPath("version");
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    int fd = -1;
    ASSERT_TRUE(connectUnix(options.socketPath, 2000, fd, error))
        << error;
    WireChannel channel(fd);
    wire::ClientHelloFrame hello;
    hello.protocolVersion = 99;
    ASSERT_TRUE(channel.sendFrame(wire::encodeClientHello(hello)));

    std::string payload;
    ASSERT_EQ(channel.recvFrame(payload, 5000), support::IoStatus::Ok);
    wire::FrameType type{};
    std::string body;
    ASSERT_TRUE(wire::splitFrame(payload, type, body));
    ASSERT_EQ(type, wire::FrameType::HelloReject);
    wire::HelloRejectFrame reject;
    ASSERT_TRUE(wire::decodeHelloReject(body, reject, error)) << error;
    // The reject names both versions, so a skewed client can say
    // exactly what to upgrade.
    EXPECT_EQ(reject.supportedVersion, wire::kProtocolVersion);
    EXPECT_NE(reject.message.find("99"), std::string::npos);
    server.stop();
}

TEST(DaemonTest, GarbageHelloIsRejectedNotCrashed)
{
    ServerOptions options;
    options.socketPath = socketPath("garbage");
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    int fd = -1;
    ASSERT_TRUE(connectUnix(options.socketPath, 2000, fd, error))
        << error;
    WireChannel channel(fd);
    // A SubmitJob before any hello is a protocol violation.
    wire::SubmitJobFrame job;
    job.jobId = 1;
    job.function = "@x";
    job.moduleText = "define i32 @x() {\nret i32 0\n}\n";
    ASSERT_TRUE(channel.sendFrame(wire::encodeSubmitJob(job)));

    std::string payload;
    ASSERT_EQ(channel.recvFrame(payload, 5000), support::IoStatus::Ok);
    wire::FrameType type{};
    std::string body;
    ASSERT_TRUE(wire::splitFrame(payload, type, body));
    EXPECT_EQ(type, wire::FrameType::HelloReject);

    // The daemon remains healthy for well-behaved clients.
    DaemonClientOptions copts;
    copts.socketPath = options.socketPath;
    DaemonClient client(copts);
    EXPECT_TRUE(client.connect(error)) << error;
    server.stop();
    EXPECT_GT(server.stats().helloRejects, 0u);
}

TEST(DaemonTest, VerdictsMatchLocalPipeline)
{
    std::string source = testModule(5);
    driver::PipelineOptions poptions;

    ServerOptions options;
    options.socketPath = socketPath("parity");
    options.jobs = 4;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    DaemonClientOptions copts;
    copts.socketPath = options.socketPath;
    DaemonClient client(copts);
    ASSERT_TRUE(client.connect(error)) << error;
    std::vector<driver::FunctionReport> reports =
        daemonRun(client, source, poptions);
    server.stop();

    EXPECT_EQ(canonicalSummary(reports),
              localSummary(source, poptions));
}

TEST(DaemonTest, SecondClientRunsFullyWarm)
{
    std::string source = testModule(5);
    driver::PipelineOptions poptions;

    ServerOptions options;
    options.socketPath = socketPath("warm");
    options.jobs = 2;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    DaemonClientOptions copts;
    copts.socketPath = options.socketPath;
    std::string coldSummary;
    {
        DaemonClient cold(copts);
        ASSERT_TRUE(cold.connect(error)) << error;
        coldSummary =
            canonicalSummary(daemonRun(cold, source, poptions));
    }
    {
        DaemonClient warm(copts);
        ASSERT_TRUE(warm.connect(error)) << error;
        std::vector<driver::FunctionReport> reports =
            daemonRun(warm, source, poptions);
        EXPECT_EQ(canonicalSummary(reports), coldSummary);
        // Every query the warm run consulted the cache for must hit:
        // that is the whole point of the shared daemon-side cache.
        uint64_t hits = 0;
        uint64_t misses = 0;
        for (const driver::FunctionReport &report : reports) {
            hits += report.verdict.stats.solverStats.cacheHits;
            misses += report.verdict.stats.solverStats.cacheMisses;
        }
        EXPECT_GT(hits, 0u);
        EXPECT_EQ(misses, 0u);
    }
    server.stop();
}

TEST(DaemonTest, BusyBackpressureStillDecidesEverything)
{
    std::string source = testModule(6);
    driver::PipelineOptions poptions;

    ServerOptions options;
    options.socketPath = socketPath("busy");
    options.jobs = 1;
    options.maxInFlightPerClient = 1;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    DaemonClientOptions copts;
    copts.socketPath = options.socketPath;
    copts.submitWindow = 8; // deliberately larger than the cap
    DaemonClient client(copts);
    ASSERT_TRUE(client.connect(error)) << error;
    std::vector<driver::FunctionReport> reports =
        daemonRun(client, source, poptions);
    EXPECT_GT(client.busyRetries(), 0u)
        << "cap 1 with window 8 never pushed back";
    server.stop();
    EXPECT_GT(server.stats().busyRejects, 0u);

    EXPECT_EQ(canonicalSummary(reports),
              localSummary(source, poptions));
}

TEST(DaemonTest, ConcurrentClientsGetIdenticalVerdicts)
{
    std::string source = testModule(4);
    driver::PipelineOptions poptions;

    ServerOptions options;
    options.socketPath = socketPath("concurrent");
    options.jobs = 4;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    constexpr int kClients = 3;
    std::vector<std::string> summaries(kClients);
    std::vector<std::string> errors(kClients);
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            DaemonClientOptions copts;
            copts.socketPath = options.socketPath;
            copts.clientName = "client-" + std::to_string(i);
            DaemonClient client(copts);
            std::string connectError;
            if (!client.connect(connectError)) {
                errors[i] = connectError;
                return;
            }
            std::vector<driver::FunctionReport> reports;
            std::vector<bool> decided;
            std::string runError;
            if (!client.validateFunctions(source,
                                          definedFunctions(source),
                                          poptions, reports, decided,
                                          runError)) {
                errors[i] = runError;
                return;
            }
            summaries[i] = canonicalSummary(reports);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    server.stop();

    std::string reference = localSummary(source, poptions);
    for (int i = 0; i < kClients; ++i) {
        EXPECT_TRUE(errors[i].empty()) << errors[i];
        EXPECT_EQ(summaries[i], reference) << "client " << i;
    }
}

/**
 * The acceptance gate: every file of the checked-in conformance corpus
 * through the daemon produces canonical summaries byte-identical to
 * the local pipeline, with the daemon (and its shared cache + verdict
 * store) held warm across all 44 modules and ISel configurations.
 */
TEST(DaemonTest, FullConformanceCorpusMatchesLocal)
{
    std::vector<conformance::CorpusCase> cases =
        conformance::loadCorpusDir(KEQ_CORPUS_DIR);
    ASSERT_FALSE(cases.empty());

    ServerOptions options;
    options.socketPath = socketPath("corpus");
    options.jobs = 4;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    DaemonClientOptions copts;
    copts.socketPath = options.socketPath;
    DaemonClient client(copts);
    ASSERT_TRUE(client.connect(error)) << error;

    for (const conformance::CorpusCase &corpusCase : cases) {
        driver::PipelineOptions poptions;
        poptions.isel = corpusCase.isel;
        std::vector<driver::FunctionReport> reports =
            daemonRun(client, corpusCase.source, poptions);
        EXPECT_EQ(canonicalSummary(reports),
                  localSummary(corpusCase.source, poptions))
            << "corpus file " << corpusCase.name
            << " diverged through the daemon";
    }
    server.stop();
}

/**
 * Graceful drain is lossless for *admitted* jobs: every job the daemon
 * accepted before beginDrain() gets a real verdict (parity with local),
 * nothing is dropped, and the daemon reports drained once the queue and
 * workers are idle. New connections are refused while draining.
 */
TEST(DaemonTest, DrainLosesZeroAcceptedJobs)
{
    std::string source = testModule(6);
    std::vector<std::string> functions = definedFunctions(source);
    driver::PipelineOptions poptions;

    ServerOptions options;
    options.socketPath = socketPath("drain");
    options.jobs = 1; // serialize, so most jobs still queue at drain time
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    DaemonClientOptions copts;
    copts.socketPath = options.socketPath;
    copts.submitWindow = static_cast<unsigned>(functions.size());
    DaemonClient client(copts);
    ASSERT_TRUE(client.connect(error)) << error;

    std::vector<driver::FunctionReport> reports;
    std::vector<bool> decided;
    std::string runError;
    bool ok = false;
    std::thread run([&] {
        ok = client.validateFunctions(source, functions, poptions,
                                      reports, decided, runError);
    });
    // Wait for every submission to be admitted, then drain mid-flight.
    ASSERT_TRUE(eventually([&] {
        return server.stats().submitted >= functions.size();
    }));
    server.beginDrain();
    run.join();

    EXPECT_TRUE(ok) << runError;
    for (size_t i = 0; i < decided.size(); ++i)
        EXPECT_TRUE(decided[i]) << "function " << i << " lost in drain";
    EXPECT_TRUE(eventually([&] { return server.drained(); }))
        << "daemon never reported drained";
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, functions.size());
    EXPECT_EQ(stats.droppedJobs, 0u);
    EXPECT_EQ(canonicalSummary(reports), localSummary(source, poptions));

    // A draining daemon refuses new connections outright.
    DaemonClient late(copts);
    EXPECT_FALSE(late.connect(error));
    server.stop();
}

/**
 * A client already connected when the drain begins gets typed Busy on
 * every submit; its circuit breaker trips after the configured all-Busy
 * rounds and it degrades (Timeout-classified) with nothing decided —
 * exactly what keqc needs to fall back to local solving.
 */
TEST(DaemonTest, DrainingDaemonBouncesSubmitsUntilBreakerTrips)
{
    ServerOptions options;
    options.socketPath = socketPath("drainbusy");
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    DaemonClientOptions copts;
    copts.socketPath = options.socketPath;
    copts.busyBackoffInitialMs = 1;
    copts.busyBackoffMaxMs = 4;
    copts.busyBreakerRounds = 3;
    DaemonClient client(copts);
    ASSERT_TRUE(client.connect(error)) << error;
    server.beginDrain();

    std::string source = testModule(2);
    std::vector<driver::FunctionReport> reports;
    std::vector<bool> decided;
    EXPECT_FALSE(client.validateFunctions(source,
                                          definedFunctions(source),
                                          driver::PipelineOptions{},
                                          reports, decided, error));
    EXPECT_TRUE(client.busyBreakerTripped()) << error;
    EXPECT_EQ(client.failure(), FailureKind::Timeout);
    for (size_t i = 0; i < decided.size(); ++i)
        EXPECT_FALSE(decided[i]) << "function " << i;
    EXPECT_GT(client.busyRetries(), 0u);
    ServerStats stats = server.stats();
    EXPECT_GT(stats.busyRejects, 0u);
    EXPECT_EQ(stats.completed, 0u);
    server.stop();
}

/**
 * Per-client quotas (token-bucket rate + queued-jobs cap) throttle a
 * bursty client with typed Busy replies, yet the client's backoff still
 * decides every function with verdicts identical to a local run —
 * quotas shape load, they never change answers.
 */
TEST(DaemonTest, AdmissionQuotasThrottleButStillDecideEverything)
{
    std::string source = testModule(6);
    driver::PipelineOptions poptions;

    ServerOptions options;
    options.socketPath = socketPath("quota");
    options.jobs = 2;
    options.maxQueuedPerClient = 1;
    options.clientRatePerSec = 50.0;
    options.clientBurst = 1;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    DaemonClientOptions copts;
    copts.socketPath = options.socketPath;
    copts.submitWindow = 8;
    copts.busyBackoffInitialMs = 1;
    copts.busyBreakerRounds = 0; // quota refill is progress; no breaker
    DaemonClient client(copts);
    ASSERT_TRUE(client.connect(error)) << error;

    std::vector<driver::FunctionReport> reports =
        daemonRun(client, source, poptions);
    EXPECT_EQ(canonicalSummary(reports), localSummary(source, poptions));
    ServerStats stats = server.stats();
    EXPECT_GT(stats.quotaRejects, 0u)
        << "burst never hit the token bucket or queue cap";
    EXPECT_EQ(stats.completed, definedFunctions(source).size());
    server.stop();
}

/**
 * Job deadlines are counted from admission: with a 1 ms budget and one
 * worker, jobs stuck behind the head of the queue expire *in the queue*
 * and come back as typed Timeout verdicts without burning solver time.
 * The client still gets a decision for every function.
 */
TEST(DaemonTest, JobDeadlinesExpireQueuedJobsToTimeout)
{
    std::string source = testModule(8);
    std::vector<std::string> functions = definedFunctions(source);
    driver::PipelineOptions poptions;

    ServerOptions options;
    options.socketPath = socketPath("deadline");
    options.jobs = 1;
    options.jobDeadlineMs = 1;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    DaemonClientOptions copts;
    copts.socketPath = options.socketPath;
    copts.submitWindow = static_cast<unsigned>(functions.size());
    DaemonClient client(copts);
    ASSERT_TRUE(client.connect(error)) << error;

    std::vector<driver::FunctionReport> reports;
    std::vector<bool> decided;
    ASSERT_TRUE(client.validateFunctions(source, functions, poptions,
                                         reports, decided, error))
        << error;
    size_t timeouts = 0;
    for (size_t i = 0; i < decided.size(); ++i) {
        EXPECT_TRUE(decided[i]) << "function " << i << " undecided";
        if (reports[i].outcome == driver::Outcome::Timeout)
            ++timeouts;
    }
    ServerStats stats = server.stats();
    EXPECT_GT(stats.expiredJobs, 0u);
    EXPECT_GT(timeouts, 0u);
    EXPECT_EQ(stats.completed, functions.size());
    server.stop();
}

/**
 * Trust-but-verify end to end: a journal record rewritten with a *lie*
 * (verdict flipped, checksum recomputed — so the integrity scrub cannot
 * catch it) is detected on its first warm hit under --audit-rate=1.0,
 * quarantined in the store, and re-solved fresh. The warm run's
 * verdicts are byte-identical to the honest cold run's.
 */
TEST(DaemonTest, PoisonedJournalVerdictIsAuditedQuarantinedAndResolved)
{
    std::string source = testModule(4);
    driver::PipelineOptions poptions;
    std::string journal =
        (std::filesystem::temp_directory_path() /
         ("keqd-poison-" + std::to_string(::getpid()) + ".journal"))
            .string();
    std::filesystem::remove(journal);

    std::string coldSummary;
    {
        ServerOptions options;
        options.socketPath = socketPath("audit-cold");
        options.jobs = 2;
        options.verdictJournalPath = journal;
        Server server(options);
        std::string error;
        ASSERT_TRUE(server.start(error)) << error;
        DaemonClientOptions copts;
        copts.socketPath = options.socketPath;
        DaemonClient client(copts);
        ASSERT_TRUE(client.connect(error)) << error;
        coldSummary = canonicalSummary(daemonRun(client, source, poptions));
        server.stop();
    }

    // Flip the first stored verdict ('s' <-> 'u') and rewrite the
    // journal; JournalWriter recomputes a valid line checksum, so the
    // lie is indistinguishable from an honest record at scrub time.
    support::JournalLoad load =
        support::loadJournal(journal, VerdictStore::kKind);
    ASSERT_TRUE(load.ok) << load.error;
    ASSERT_FALSE(load.records.empty());
    size_t flipped = 0;
    for (std::string &record : load.records) {
        if (flipped > 0 || record.empty() || record[0] != 'g')
            continue;
        size_t colon = record.find(':');
        ASSERT_NE(colon, std::string::npos) << record;
        ASSERT_LT(colon + 1, record.size());
        char &verdict = record[colon + 1];
        ASSERT_TRUE(verdict == 's' || verdict == 'u') << record;
        verdict = verdict == 's' ? 'u' : 's';
        ++flipped;
    }
    ASSERT_EQ(flipped, 1u);
    std::filesystem::remove(journal);
    {
        support::JournalWriter writer(journal, VerdictStore::kKind);
        for (const std::string &record : load.records)
            writer.append(record);
    }

    {
        ServerOptions options;
        options.socketPath = socketPath("audit-warm");
        options.jobs = 2;
        options.verdictJournalPath = journal;
        options.auditRate = 1.0;
        Server server(options);
        std::string error;
        ASSERT_TRUE(server.start(error)) << error;
        DaemonClientOptions copts;
        copts.socketPath = options.socketPath;
        DaemonClient client(copts);
        ASSERT_TRUE(client.connect(error)) << error;
        std::string warmSummary =
            canonicalSummary(daemonRun(client, source, poptions));
        EXPECT_EQ(warmSummary, coldSummary)
            << "audited warm run diverged from the honest cold run";
        EXPECT_GE(server.stats().auditMismatches, 1u)
            << "the poisoned record was served without an audit";
        EXPECT_GE(server.store().stats().quarantined, 1u);
        server.stop();
    }
    std::filesystem::remove(journal);
}

/**
 * A client that vanishes mid-run must not pin the daemon: its queued
 * jobs are dropped unsolved (droppedJobs accounts for every admitted
 * job that never completed) and the daemon keeps serving other clients.
 */
TEST(DaemonTest, DisconnectedClientsQueuedJobsAreDropped)
{
    std::string source = testModule(8);
    std::vector<std::string> functions = definedFunctions(source);

    ServerOptions options;
    options.socketPath = socketPath("vanish");
    options.jobs = 1;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    // Raw wire client so we can hang up without a clean close.
    int fd = -1;
    ASSERT_TRUE(connectUnix(options.socketPath, 2000, fd, error))
        << error;
    {
        WireChannel channel(fd);
        ASSERT_TRUE(channel.sendFrame(
            wire::encodeClientHello(wire::ClientHelloFrame{})));
        std::string payload;
        ASSERT_EQ(channel.recvFrame(payload, 5000),
                  support::IoStatus::Ok);
        wire::JobOptionsFrame jobOptions =
            encodeJobOptions(driver::PipelineOptions{});
        for (size_t i = 0; i < functions.size(); ++i) {
            wire::SubmitJobFrame job;
            job.jobId = static_cast<uint64_t>(i) + 1;
            job.function = functions[i];
            job.moduleText = source;
            job.options = jobOptions;
            ASSERT_TRUE(channel.sendFrame(wire::encodeSubmitJob(job)));
        }
        ASSERT_TRUE(eventually([&] {
            return server.stats().submitted >= functions.size();
        }));
    } // hang up with jobs queued

    // Every admitted job either completed (head of queue, mid-solve)
    // or was dropped on disconnect; none may linger.
    ASSERT_TRUE(eventually([&] {
        ServerStats stats = server.stats();
        return stats.completed + stats.droppedJobs >= functions.size();
    }));
    ServerStats stats = server.stats();
    EXPECT_GT(stats.droppedJobs, 0u)
        << "dead client's queued jobs were solved anyway";
    EXPECT_EQ(stats.completed + stats.droppedJobs, functions.size());

    // The daemon is still healthy for the next client.
    DaemonClientOptions copts;
    copts.socketPath = options.socketPath;
    DaemonClient client(copts);
    ASSERT_TRUE(client.connect(error)) << error;
    driver::PipelineOptions poptions;
    std::vector<driver::FunctionReport> reports =
        daemonRun(client, source, poptions);
    EXPECT_EQ(canonicalSummary(reports), localSummary(source, poptions));
    server.stop();
}

} // namespace
} // namespace keq::service
