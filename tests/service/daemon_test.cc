/** @file In-process daemon integration: handshake negotiation (and its
 *  typed rejections), daemon-vs-local verdict parity — including the
 *  full conformance corpus — warm-cache behaviour across clients,
 *  Busy backpressure, and concurrent clients. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/conformance/corpus.h"
#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"
#include "src/service/client.h"
#include "src/service/server.h"
#include "src/smt/wire.h"

namespace keq::service {
namespace {

namespace wire = smt::wire;

/** Unique socket path per test (sun_path is short; stay terse). */
std::string
socketPath(const std::string &stem)
{
    return (std::filesystem::temp_directory_path() /
            ("keqd-" + stem + "-" + std::to_string(::getpid()) +
             ".sock"))
        .string();
}

/** A small deterministic Figure 6-style module. */
std::string
testModule(size_t functions = 4)
{
    driver::CorpusOptions options;
    options.seed = 0x5e41ce;
    options.functionCount = functions;
    return driver::generateCorpusSource(options);
}

std::vector<std::string>
definedFunctions(const std::string &source)
{
    llvmir::Module module = llvmir::parseModule(source);
    std::vector<std::string> names;
    for (const llvmir::Function &fn : module.functions)
        if (!fn.isDeclaration())
            names.push_back(fn.name);
    return names;
}

std::string
canonicalSummary(const std::vector<driver::FunctionReport> &reports)
{
    driver::ModuleReport module;
    module.functions = reports;
    return module.canonicalSummary();
}

/** Local (daemonless) reference run. */
std::string
localSummary(const std::string &source,
             const driver::PipelineOptions &options)
{
    driver::Pipeline pipeline(options);
    llvmir::Module module = llvmir::parseModule(source);
    return pipeline.run(module).canonicalSummary();
}

/** Runs every defined function of @p source through the daemon. */
std::vector<driver::FunctionReport>
daemonRun(DaemonClient &client, const std::string &source,
          const driver::PipelineOptions &options)
{
    std::vector<driver::FunctionReport> reports;
    std::vector<bool> decided;
    std::string error;
    EXPECT_TRUE(client.validateFunctions(source,
                                         definedFunctions(source),
                                         options, reports, decided,
                                         error))
        << error;
    for (size_t i = 0; i < decided.size(); ++i)
        EXPECT_TRUE(decided[i]) << "function " << i << " undecided";
    return reports;
}

TEST(DaemonTest, StartStatusStop)
{
    ServerOptions options;
    options.socketPath = socketPath("lifecycle");
    options.jobs = 2;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    DaemonClientOptions copts;
    copts.socketPath = options.socketPath;
    DaemonClient client(copts);
    ASSERT_TRUE(client.connect(error)) << error;
    EXPECT_EQ(client.serverHello().protocolVersion,
              wire::kProtocolVersion);

    wire::JobStatusFrame status;
    ASSERT_TRUE(client.queryStatus(status, error)) << error;
    EXPECT_EQ(status.completedJobs, 0u);
    EXPECT_EQ(status.activeClients, 1u);

    server.stop();
    EXPECT_FALSE(std::filesystem::exists(options.socketPath))
        << "socket not unlinked on clean stop";
}

TEST(DaemonTest, SecondDaemonOnSamePathRefusesToStart)
{
    ServerOptions options;
    options.socketPath = socketPath("exclusive");
    Server first(options);
    std::string error;
    ASSERT_TRUE(first.start(error)) << error;

    Server second(options);
    EXPECT_FALSE(second.start(error));
    EXPECT_NE(error.find("already listening"), std::string::npos)
        << error;
    first.stop();
}

TEST(DaemonTest, VersionMismatchGetsTypedReject)
{
    ServerOptions options;
    options.socketPath = socketPath("version");
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    int fd = -1;
    ASSERT_TRUE(connectUnix(options.socketPath, 2000, fd, error))
        << error;
    WireChannel channel(fd);
    wire::ClientHelloFrame hello;
    hello.protocolVersion = 99;
    ASSERT_TRUE(channel.sendFrame(wire::encodeClientHello(hello)));

    std::string payload;
    ASSERT_EQ(channel.recvFrame(payload, 5000), support::IoStatus::Ok);
    wire::FrameType type{};
    std::string body;
    ASSERT_TRUE(wire::splitFrame(payload, type, body));
    ASSERT_EQ(type, wire::FrameType::HelloReject);
    wire::HelloRejectFrame reject;
    ASSERT_TRUE(wire::decodeHelloReject(body, reject, error)) << error;
    // The reject names both versions, so a skewed client can say
    // exactly what to upgrade.
    EXPECT_EQ(reject.supportedVersion, wire::kProtocolVersion);
    EXPECT_NE(reject.message.find("99"), std::string::npos);
    server.stop();
}

TEST(DaemonTest, GarbageHelloIsRejectedNotCrashed)
{
    ServerOptions options;
    options.socketPath = socketPath("garbage");
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    int fd = -1;
    ASSERT_TRUE(connectUnix(options.socketPath, 2000, fd, error))
        << error;
    WireChannel channel(fd);
    // A SubmitJob before any hello is a protocol violation.
    wire::SubmitJobFrame job;
    job.jobId = 1;
    job.function = "@x";
    job.moduleText = "define i32 @x() {\nret i32 0\n}\n";
    ASSERT_TRUE(channel.sendFrame(wire::encodeSubmitJob(job)));

    std::string payload;
    ASSERT_EQ(channel.recvFrame(payload, 5000), support::IoStatus::Ok);
    wire::FrameType type{};
    std::string body;
    ASSERT_TRUE(wire::splitFrame(payload, type, body));
    EXPECT_EQ(type, wire::FrameType::HelloReject);

    // The daemon remains healthy for well-behaved clients.
    DaemonClientOptions copts;
    copts.socketPath = options.socketPath;
    DaemonClient client(copts);
    EXPECT_TRUE(client.connect(error)) << error;
    server.stop();
    EXPECT_GT(server.stats().helloRejects, 0u);
}

TEST(DaemonTest, VerdictsMatchLocalPipeline)
{
    std::string source = testModule(5);
    driver::PipelineOptions poptions;

    ServerOptions options;
    options.socketPath = socketPath("parity");
    options.jobs = 4;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    DaemonClientOptions copts;
    copts.socketPath = options.socketPath;
    DaemonClient client(copts);
    ASSERT_TRUE(client.connect(error)) << error;
    std::vector<driver::FunctionReport> reports =
        daemonRun(client, source, poptions);
    server.stop();

    EXPECT_EQ(canonicalSummary(reports),
              localSummary(source, poptions));
}

TEST(DaemonTest, SecondClientRunsFullyWarm)
{
    std::string source = testModule(5);
    driver::PipelineOptions poptions;

    ServerOptions options;
    options.socketPath = socketPath("warm");
    options.jobs = 2;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    DaemonClientOptions copts;
    copts.socketPath = options.socketPath;
    std::string coldSummary;
    {
        DaemonClient cold(copts);
        ASSERT_TRUE(cold.connect(error)) << error;
        coldSummary =
            canonicalSummary(daemonRun(cold, source, poptions));
    }
    {
        DaemonClient warm(copts);
        ASSERT_TRUE(warm.connect(error)) << error;
        std::vector<driver::FunctionReport> reports =
            daemonRun(warm, source, poptions);
        EXPECT_EQ(canonicalSummary(reports), coldSummary);
        // Every query the warm run consulted the cache for must hit:
        // that is the whole point of the shared daemon-side cache.
        uint64_t hits = 0;
        uint64_t misses = 0;
        for (const driver::FunctionReport &report : reports) {
            hits += report.verdict.stats.solverStats.cacheHits;
            misses += report.verdict.stats.solverStats.cacheMisses;
        }
        EXPECT_GT(hits, 0u);
        EXPECT_EQ(misses, 0u);
    }
    server.stop();
}

TEST(DaemonTest, BusyBackpressureStillDecidesEverything)
{
    std::string source = testModule(6);
    driver::PipelineOptions poptions;

    ServerOptions options;
    options.socketPath = socketPath("busy");
    options.jobs = 1;
    options.maxInFlightPerClient = 1;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    DaemonClientOptions copts;
    copts.socketPath = options.socketPath;
    copts.submitWindow = 8; // deliberately larger than the cap
    DaemonClient client(copts);
    ASSERT_TRUE(client.connect(error)) << error;
    std::vector<driver::FunctionReport> reports =
        daemonRun(client, source, poptions);
    EXPECT_GT(client.busyRetries(), 0u)
        << "cap 1 with window 8 never pushed back";
    server.stop();
    EXPECT_GT(server.stats().busyRejects, 0u);

    EXPECT_EQ(canonicalSummary(reports),
              localSummary(source, poptions));
}

TEST(DaemonTest, ConcurrentClientsGetIdenticalVerdicts)
{
    std::string source = testModule(4);
    driver::PipelineOptions poptions;

    ServerOptions options;
    options.socketPath = socketPath("concurrent");
    options.jobs = 4;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    constexpr int kClients = 3;
    std::vector<std::string> summaries(kClients);
    std::vector<std::string> errors(kClients);
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            DaemonClientOptions copts;
            copts.socketPath = options.socketPath;
            copts.clientName = "client-" + std::to_string(i);
            DaemonClient client(copts);
            std::string connectError;
            if (!client.connect(connectError)) {
                errors[i] = connectError;
                return;
            }
            std::vector<driver::FunctionReport> reports;
            std::vector<bool> decided;
            std::string runError;
            if (!client.validateFunctions(source,
                                          definedFunctions(source),
                                          poptions, reports, decided,
                                          runError)) {
                errors[i] = runError;
                return;
            }
            summaries[i] = canonicalSummary(reports);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    server.stop();

    std::string reference = localSummary(source, poptions);
    for (int i = 0; i < kClients; ++i) {
        EXPECT_TRUE(errors[i].empty()) << errors[i];
        EXPECT_EQ(summaries[i], reference) << "client " << i;
    }
}

/**
 * The acceptance gate: every file of the checked-in conformance corpus
 * through the daemon produces canonical summaries byte-identical to
 * the local pipeline, with the daemon (and its shared cache + verdict
 * store) held warm across all 44 modules and ISel configurations.
 */
TEST(DaemonTest, FullConformanceCorpusMatchesLocal)
{
    std::vector<conformance::CorpusCase> cases =
        conformance::loadCorpusDir(KEQ_CORPUS_DIR);
    ASSERT_FALSE(cases.empty());

    ServerOptions options;
    options.socketPath = socketPath("corpus");
    options.jobs = 4;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    DaemonClientOptions copts;
    copts.socketPath = options.socketPath;
    DaemonClient client(copts);
    ASSERT_TRUE(client.connect(error)) << error;

    for (const conformance::CorpusCase &corpusCase : cases) {
        driver::PipelineOptions poptions;
        poptions.isel = corpusCase.isel;
        std::vector<driver::FunctionReport> reports =
            daemonRun(client, corpusCase.source, poptions);
        EXPECT_EQ(canonicalSummary(reports),
                  localSummary(corpusCase.source, poptions))
            << "corpus file " << corpusCase.name
            << " diverged through the daemon";
    }
    server.stop();
}

} // namespace
} // namespace keq::service
