/** @file Month-scale soak: several clients hammer one daemon for a
 *  wall-clock budget (KEQ_SOAK_SECONDS, default 2; CI stretches it to
 *  60 under ASan) with trust-but-verify auditing on *every* warm hit,
 *  a byte-capped verdict store, and concurrent SIGHUP-style
 *  scrub+compact maintenance. The invariant under all of that churn:
 *  every verdict served is byte-identical to a daemonless run, and the
 *  audit never catches the daemon lying (zero mismatches). */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"
#include "src/service/client.h"
#include "src/service/server.h"

namespace keq::service {
namespace {

std::string
socketPath(const std::string &stem)
{
    return (std::filesystem::temp_directory_path() /
            ("keqd-" + stem + "-" + std::to_string(::getpid()) +
             ".sock"))
        .string();
}

std::string
makeModule(uint64_t seed, size_t functions)
{
    driver::CorpusOptions options;
    options.seed = seed;
    options.functionCount = functions;
    return driver::generateCorpusSource(options);
}

std::vector<std::string>
definedFunctions(const std::string &source)
{
    llvmir::Module module = llvmir::parseModule(source);
    std::vector<std::string> names;
    for (const llvmir::Function &fn : module.functions)
        if (!fn.isDeclaration())
            names.push_back(fn.name);
    return names;
}

std::string
canonicalSummary(const std::vector<driver::FunctionReport> &reports)
{
    driver::ModuleReport module;
    module.functions = reports;
    return module.canonicalSummary();
}

std::string
localSummary(const std::string &source,
             const driver::PipelineOptions &options)
{
    driver::Pipeline pipeline(options);
    llvmir::Module module = llvmir::parseModule(source);
    return pipeline.run(module).canonicalSummary();
}

unsigned
soakSeconds()
{
    const char *env = std::getenv("KEQ_SOAK_SECONDS");
    if (env != nullptr) {
        long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<unsigned>(parsed);
    }
    return 2; // short enough for tier-1; CI raises it
}

TEST(DaemonSoakTest, MultiClientSoakWithFullAuditingStaysHonest)
{
    constexpr int kClients = 3;
    const unsigned seconds = soakSeconds();
    std::string journal =
        (std::filesystem::temp_directory_path() /
         ("keqd-soak-" + std::to_string(::getpid()) + ".journal"))
            .string();
    std::filesystem::remove(journal);

    ServerOptions options;
    options.socketPath = socketPath("soak");
    options.jobs = 4;
    options.verdictJournalPath = journal;
    options.auditRate = 1.0; // audit every journal-preloaded hit
    options.verdictStoreMaxBytes = 256 * 1024; // exercise LRU eviction
    options.storeCompactMinRecords = 64;
    options.maxQueuedPerClient = 16;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    // Each client soaks its own module; the daemonless summary is the
    // ground truth every iteration must reproduce.
    std::vector<std::string> sources;
    std::vector<std::string> references;
    driver::PipelineOptions poptions;
    for (int i = 0; i < kClients; ++i) {
        sources.push_back(makeModule(0x50a0 + i, 3));
        references.push_back(localSummary(sources[i], poptions));
    }

    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(seconds);
    std::atomic<uint64_t> iterations{0};
    std::atomic<uint64_t> parityFailures{0};
    std::atomic<uint64_t> transportFailures{0};
    std::vector<std::string> firstError(kClients);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            std::vector<std::string> functions =
                definedFunctions(sources[i]);
            while (std::chrono::steady_clock::now() < deadline) {
                // Fresh connection per iteration: soak the accept and
                // teardown paths too, not just warm-cache serving.
                DaemonClientOptions copts;
                copts.socketPath = options.socketPath;
                copts.busyBackoffInitialMs = 1;
                DaemonClient client(copts);
                std::string err;
                std::vector<driver::FunctionReport> reports;
                std::vector<bool> decided;
                if (!client.connect(err) ||
                    !client.validateFunctions(sources[i], functions,
                                              poptions, reports,
                                              decided, err)) {
                    ++transportFailures;
                    if (firstError[i].empty())
                        firstError[i] = err;
                    continue;
                }
                if (canonicalSummary(reports) != references[i])
                    ++parityFailures;
                ++iterations;
            }
        });
    }

    // Main thread plays operator: periodic SIGHUP-style maintenance
    // while the clients are mid-flight.
    uint64_t maintenanceRounds = 0;
    while (std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        server.scrubAndCompactStore();
        ++maintenanceRounds;
    }
    for (std::thread &client : clients)
        client.join();
    ServerStats stats = server.stats();
    VerdictStore::Stats store = server.store().stats();
    server.stop();
    std::filesystem::remove(journal);

    EXPECT_GT(iterations.load(), 0u) << "soak made no progress";
    EXPECT_GT(maintenanceRounds, 0u);
    for (int i = 0; i < kClients; ++i)
        EXPECT_TRUE(firstError[i].empty())
            << "client " << i << ": " << firstError[i];
    EXPECT_EQ(transportFailures.load(), 0u);
    EXPECT_EQ(parityFailures.load(), 0u)
        << "daemon verdicts diverged from daemonless ground truth";
    // The whole point of the soak: with every warm hit audited, the
    // store never served a verdict a pristine solver disagreed with.
    EXPECT_EQ(stats.auditMismatches, 0u);
    EXPECT_EQ(store.quarantined, 0u);
    EXPECT_EQ(store.scrubRejected, 0u);
}

} // namespace
} // namespace keq::service
