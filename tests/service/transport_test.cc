/** @file Transport seam: endpoint-URI parsing (valid + malformed
 *  table), TCP/Unix listener round-trips, and the fragmenting
 *  fault-injection property — wire frames reassemble byte-identically
 *  no matter how the kernel (or a hostile writer) splits them, torn
 *  frames are typed Eof, and a silent peer is a typed Timeout. */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/service/endpoint.h"
#include "src/service/socket.h"
#include "src/smt/wire.h"
#include "src/support/rng.h"

namespace keq::service {
namespace {

namespace wire = smt::wire;
using support::IoStatus;

std::string
socketPath(const std::string &stem)
{
    return (std::filesystem::temp_directory_path() /
            ("keqt-" + stem + "-" + std::to_string(::getpid()) +
             ".sock"))
        .string();
}

// ---- endpoint grammar ----

TEST(EndpointTest, ParsesUnixForms)
{
    Endpoint endpoint;
    std::string error;
    ASSERT_TRUE(parseEndpoint("unix:/tmp/keqd.sock", endpoint, error))
        << error;
    EXPECT_EQ(endpoint.kind, TransportKind::Unix);
    EXPECT_EQ(endpoint.path, "/tmp/keqd.sock");

    // Legacy bare path (what --daemon=PATH always meant).
    ASSERT_TRUE(parseEndpoint("/tmp/keqd.sock", endpoint, error))
        << error;
    EXPECT_EQ(endpoint.kind, TransportKind::Unix);
    EXPECT_EQ(endpoint.path, "/tmp/keqd.sock");

    // A relative bare path is also a unix path.
    ASSERT_TRUE(parseEndpoint("keqd.sock", endpoint, error)) << error;
    EXPECT_EQ(endpoint.kind, TransportKind::Unix);
    EXPECT_EQ(endpoint.path, "keqd.sock");
}

TEST(EndpointTest, ParsesTcpForms)
{
    Endpoint endpoint;
    std::string error;
    ASSERT_TRUE(
        parseEndpoint("tcp:127.0.0.1:7461", endpoint, error))
        << error;
    EXPECT_EQ(endpoint.kind, TransportKind::Tcp);
    EXPECT_EQ(endpoint.host, "127.0.0.1");
    EXPECT_EQ(endpoint.port, 7461);

    ASSERT_TRUE(parseEndpoint("tcp:localhost:0", endpoint, error))
        << error;
    EXPECT_EQ(endpoint.host, "localhost");
    EXPECT_EQ(endpoint.port, 0) << "port 0 (ephemeral) is legal";

    ASSERT_TRUE(parseEndpoint("tcp:[::1]:7461", endpoint, error))
        << error;
    EXPECT_EQ(endpoint.host, "::1");
    EXPECT_EQ(endpoint.port, 7461);
}

TEST(EndpointTest, ToStringRoundTrips)
{
    for (const char *spec :
         {"unix:/tmp/a.sock", "tcp:127.0.0.1:7461", "tcp:[::1]:80",
          "tcp:host.example:65535"}) {
        Endpoint endpoint;
        std::string error;
        ASSERT_TRUE(parseEndpoint(spec, endpoint, error)) << error;
        EXPECT_EQ(endpointToString(endpoint), spec);
        Endpoint again;
        ASSERT_TRUE(
            parseEndpoint(endpointToString(endpoint), again, error))
            << error;
        EXPECT_EQ(again, endpoint);
    }
}

/** Malformed-URI table: every row must fail with a diagnostic that
 *  names the offending spec — the CLI forwards these verbatim with
 *  exit 64, so they must be pointed enough to act on. */
TEST(EndpointTest, MalformedSpecsFailWithPointedDiagnostics)
{
    struct Row
    {
        const char *spec;
        const char *needle; ///< required error fragment
    };
    const Row rows[] = {
        {"", "empty endpoint"},
        {"unix:", "missing socket path"},
        {"tcp:", "tcp:HOST:PORT"},
        {"tcp:localhost", "tcp:HOST:PORT"},
        {"tcp::7461", "missing host"},
        {"tcp:host:", "missing port"},
        {"tcp:host:http", "not a number"},
        {"tcp:host:-1", "not a number"},
        {"tcp:host:65536", "exceeds 65535"},
        {"tcp:host:99999999", "exceeds 65535"},
        {"tcp:[::1", "unterminated '['"},
        {"tcp:[::1]7461", "expected ':PORT' after ']'"},
        {"tcp:[::1]", "expected ':PORT' after ']'"},
        {"tcp:::1:7461", "bracketed"},
        {"tcp:[]:7461", "missing host"},
        {"udp:host:7461", "unknown scheme 'udp:'"},
        {"http://host:7461", "unknown scheme 'http:'"},
    };
    for (const Row &row : rows) {
        Endpoint endpoint;
        std::string error;
        EXPECT_FALSE(parseEndpoint(row.spec, endpoint, error))
            << "'" << row.spec << "' parsed";
        EXPECT_NE(error.find(row.needle), std::string::npos)
            << "'" << row.spec << "' produced unhelpful error: "
            << error;
        if (row.spec[0] != '\0')
            EXPECT_NE(error.find(row.spec), std::string::npos)
                << "error does not name the offending spec: " << error;
    }
}

TEST(EndpointTest, ParsesEndpointLists)
{
    std::vector<Endpoint> endpoints;
    std::string error;
    ASSERT_TRUE(parseEndpointList(
        "unix:/tmp/a.sock,tcp:127.0.0.1:7461,/tmp/b.sock", endpoints,
        error))
        << error;
    ASSERT_EQ(endpoints.size(), 3u);
    EXPECT_EQ(endpoints[0].kind, TransportKind::Unix);
    EXPECT_EQ(endpoints[1].kind, TransportKind::Tcp);
    EXPECT_EQ(endpoints[2].path, "/tmp/b.sock");

    EXPECT_FALSE(parseEndpointList("", endpoints, error));
    EXPECT_NE(error.find("empty endpoint list"), std::string::npos);
    EXPECT_FALSE(
        parseEndpointList("unix:/a.sock,,unix:/b.sock", endpoints,
                          error));
    EXPECT_NE(error.find("empty element"), std::string::npos);
    EXPECT_FALSE(
        parseEndpointList("unix:/a.sock,tcp:oops", endpoints, error));
    EXPECT_NE(error.find("tcp:oops"), std::string::npos);
}

// ---- listeners ----

/** One frame each way over an accepted connection of @p listener. */
void
roundTripOver(Listener &listener)
{
    std::thread server([&] {
        int fd = listener.acceptClient(5000);
        ASSERT_GE(fd, 0) << "accept timed out";
        WireChannel channel(fd);
        std::string payload;
        ASSERT_EQ(channel.recvFrame(payload, 5000), IoStatus::Ok);
        ASSERT_TRUE(channel.sendFrame(
            wire::frameBytes(wire::FrameType::Error,
                             "echo:" + payload.substr(1))));
    });

    int fd = -1;
    std::string error;
    ASSERT_TRUE(connectEndpoint(listener.endpoint(), 2000, fd, error))
        << error;
    WireChannel channel(fd);
    ASSERT_TRUE(channel.sendFrame(
        wire::frameBytes(wire::FrameType::Error, "ping-payload")));
    std::string payload;
    ASSERT_EQ(channel.recvFrame(payload, 5000), IoStatus::Ok);
    EXPECT_NE(payload.find("echo:"), std::string::npos);
    EXPECT_NE(payload.find("ping-payload"), std::string::npos);
    server.join();
}

TEST(TransportTest, TcpLoopbackRoundTripOnEphemeralPort)
{
    TcpListener listener;
    std::string error;
    ASSERT_TRUE(
        listener.listenOn(tcpEndpoint("127.0.0.1", 0), error))
        << error;
    // The bound endpoint must carry the kernel-resolved port.
    EXPECT_NE(listener.endpoint().port, 0);
    roundTripOver(listener);
}

TEST(TransportTest, TcpIpv6LoopbackRoundTrip)
{
    TcpListener listener;
    std::string error;
    if (!listener.listenOn(tcpEndpoint("::1", 0), error))
        GTEST_SKIP() << "no IPv6 loopback here: " << error;
    EXPECT_NE(listener.endpoint().port, 0);
    roundTripOver(listener);
}

TEST(TransportTest, MakeListenerDispatchesOnTransport)
{
    std::string path = socketPath("mk");
    std::unique_ptr<Listener> unixListener =
        makeListener(unixEndpoint(path));
    std::string error;
    ASSERT_TRUE(unixListener->listenOn(unixEndpoint(path), error))
        << error;
    EXPECT_EQ(unixListener->transport(), TransportKind::Unix);
    roundTripOver(*unixListener);
    unixListener->close();

    std::unique_ptr<Listener> tcpListener =
        makeListener(tcpEndpoint("127.0.0.1", 0));
    ASSERT_TRUE(
        tcpListener->listenOn(tcpEndpoint("127.0.0.1", 0), error))
        << error;
    EXPECT_EQ(tcpListener->transport(), TransportKind::Tcp);
}

TEST(TransportTest, ConnectToDeadTcpPortFailsWithinBudget)
{
    // Grab an ephemeral port, then close it: nothing listens there.
    TcpListener listener;
    std::string error;
    ASSERT_TRUE(
        listener.listenOn(tcpEndpoint("127.0.0.1", 0), error))
        << error;
    Endpoint dead = listener.endpoint();
    listener.close();

    int fd = -1;
    auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(connectEndpoint(dead, 300, fd, error));
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    EXPECT_LT(elapsed, 5000) << "refused connect must not hang";
    EXPECT_FALSE(error.empty());
}

// ---- fragmentation / short-I/O fault injection ----

/** A connected AF_UNIX socketpair wrapped as two WireChannels. */
struct ChannelPair
{
    ChannelPair()
    {
        int fds[2] = {-1, -1};
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0) {
            a = WireChannel(fds[0]);
            b = WireChannel(fds[1]);
        }
    }
    WireChannel a;
    WireChannel b;
};

/**
 * The fragmenting fault-injection transport: writes @p bytes to raw
 * @p fd split at seeded-random boundaries (1..maxChunk bytes each,
 * with a tiny sleep between some chunks so the reader really observes
 * partial frames). This is what a congested TCP path does to frames;
 * recvFrame's short-read loop must be indifferent to it.
 */
void
writeFragmented(int fd, const std::string &bytes, support::Rng &rng,
                size_t maxChunk)
{
    size_t offset = 0;
    while (offset < bytes.size()) {
        size_t chunk =
            1 + rng.below(std::min(maxChunk, bytes.size() - offset));
        ssize_t wrote =
            ::send(fd, bytes.data() + offset, chunk, MSG_NOSIGNAL);
        ASSERT_GT(wrote, 0) << "fragmented send failed";
        offset += static_cast<size_t>(wrote);
        if (rng.below(4) == 0)
            ::usleep(500);
    }
}

TEST(TransportTest, FramesSurviveArbitraryFragmentation)
{
    ChannelPair pair;
    ASSERT_TRUE(pair.a.valid());

    // Frames from tiny to bigger-than-any-single-read, including a
    // payload crossing the typical 4 KiB pipe/socket buffer boundary.
    std::vector<std::string> payloads;
    support::Rng gen(0x5e41ce01ull);
    for (size_t size : {size_t(1), size_t(2), size_t(64), size_t(4095),
                        size_t(4096), size_t(4097), size_t(70000)}) {
        std::string payload;
        payload.reserve(size);
        for (size_t i = 0; i < size; ++i)
            payload.push_back(static_cast<char>(gen.below(256)));
        payloads.push_back(std::move(payload));
    }

    support::Rng rng(0x5e41ce02ull);
    std::thread writer([&] {
        for (const std::string &payload : payloads) {
            std::string framed =
                wire::frameBytes(wire::FrameType::Error, payload);
            writeFragmented(pair.a.fd(), framed, rng, 113);
        }
    });

    for (const std::string &expected : payloads) {
        std::string payload;
        ASSERT_EQ(pair.b.recvFrame(payload, 10000), IoStatus::Ok);
        // recvFrame returns type byte + body; compare the body.
        ASSERT_GE(payload.size(), 1u);
        EXPECT_EQ(payload.substr(1), expected)
            << "frame of " << expected.size()
            << " bytes reassembled differently";
    }
    writer.join();
}

/** Same property, full codec: a SubmitJob frame fragmented at hostile
 *  boundaries decodes identically to the original. */
TEST(TransportTest, SubmitJobSurvivesFragmentation)
{
    ChannelPair pair;
    ASSERT_TRUE(pair.a.valid());

    wire::SubmitJobFrame job;
    job.jobId = 99;
    job.function = "@frag";
    job.moduleText = std::string(20000, 'm') + "\nend";
    job.options.smtTimeoutMs = 777;
    job.fingerprint = 0xF00DF00DF00DF00DULL;
    std::string framed = wire::encodeSubmitJob(job);

    support::Rng rng(0x5e41ce03ull);
    std::thread writer(
        [&] { writeFragmented(pair.a.fd(), framed, rng, 7); });

    std::string payload;
    ASSERT_EQ(pair.b.recvFrame(payload, 10000), IoStatus::Ok);
    writer.join();

    wire::FrameType type{};
    std::string body;
    ASSERT_TRUE(wire::splitFrame(payload, type, body));
    EXPECT_EQ(type, wire::FrameType::SubmitJob);
    wire::SubmitJobFrame out;
    std::string error;
    ASSERT_TRUE(wire::decodeSubmitJob(body, out, error)) << error;
    EXPECT_EQ(out.jobId, job.jobId);
    EXPECT_EQ(out.moduleText, job.moduleText);
    EXPECT_EQ(out.options.smtTimeoutMs, 777u);
    EXPECT_EQ(out.fingerprint, job.fingerprint);
}

TEST(TransportTest, TruncatedFrameIsTypedEof)
{
    ChannelPair pair;
    ASSERT_TRUE(pair.a.valid());
    // Announce 100 bytes, deliver 10, hang up.
    std::string framed =
        wire::frameBytes(wire::FrameType::Error, std::string(99, 'x'));
    ASSERT_TRUE(::send(pair.a.fd(), framed.data(), 14, MSG_NOSIGNAL) ==
                14);
    pair.a.close();

    std::string payload;
    EXPECT_EQ(pair.b.recvFrame(payload, 2000), IoStatus::Eof)
        << "a torn frame must be Eof, not Ok or a hang";
}

TEST(TransportTest, SilentPeerIsTypedTimeout)
{
    ChannelPair pair;
    ASSERT_TRUE(pair.a.valid());
    std::string payload;
    auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(pair.b.recvFrame(payload, 200), IoStatus::Timeout);
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    EXPECT_GE(elapsed, 150);
    EXPECT_LT(elapsed, 5000);
}

/** waitReadable never consumes bytes: after it reports Ok the full
 *  frame is still there for recvFrame — the heartbeat poll cannot tear
 *  frames by construction. */
TEST(TransportTest, WaitReadableDoesNotConsume)
{
    ChannelPair pair;
    ASSERT_TRUE(pair.a.valid());

    EXPECT_EQ(pair.b.waitReadable(100), IoStatus::Timeout);

    std::string framed =
        wire::frameBytes(wire::FrameType::Error, "intact");
    ASSERT_TRUE(pair.a.sendFrame(framed));
    ASSERT_EQ(pair.b.waitReadable(2000), IoStatus::Ok);
    // Poll again: still readable, still unconsumed.
    ASSERT_EQ(pair.b.waitReadable(2000), IoStatus::Ok);
    std::string payload;
    ASSERT_EQ(pair.b.recvFrame(payload, 2000), IoStatus::Ok);
    EXPECT_NE(payload.find("intact"), std::string::npos);
}

} // namespace
} // namespace keq::service
