/** @file Multi-host chaos with real binaries: a real keq-daemon
 *  serving TCP, driven by a real keqc over `--daemon=tcp:...`, with
 *  the primary SIGKILLed mid-run and a warm secondary picking the run
 *  up. The contract under fire: keqc's verdict output is identical to
 *  an undisturbed local run (failover is invisible in the output,
 *  loud on stderr), and --stats-json outcome sections match byte for
 *  byte. */

#include <gtest/gtest.h>

#include <csignal>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/driver/corpus.h"

namespace keq::service {
namespace {

std::string
uniquePath(const std::string &stem, const std::string &ext)
{
    return (std::filesystem::temp_directory_path() /
            ("keqd-net-" + stem + "-" + std::to_string(::getpid()) +
             ext))
        .string();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::trunc);
    out << text;
}

/** Spawns @p bin with stdout/stderr redirected to files. */
pid_t
spawnProcess(const char *bin, const std::vector<std::string> &args,
             const std::string &stdoutPath,
             const std::string &stderrPath)
{
    pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    int outFd = ::open(stdoutPath.c_str(),
                       O_WRONLY | O_CREAT | O_TRUNC, 0644);
    int errFd = ::open(stderrPath.c_str(),
                       O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (outFd < 0 || errFd < 0)
        _exit(126);
    ::dup2(outFd, 1);
    ::dup2(errFd, 2);
    std::vector<const char *> argv;
    argv.push_back(bin);
    for (const std::string &arg : args)
        argv.push_back(arg.c_str());
    argv.push_back(nullptr);
    ::execv(bin, const_cast<char *const *>(argv.data()));
    _exit(127);
}

/** Waits for @p pid; returns its exit code (or -signal). */
int
waitExit(pid_t pid)
{
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return -WTERMSIG(status);
    return -1000;
}

/**
 * Scrapes the resolved TCP endpoint from the keqd startup banner
 * ("keqd: listening on tcp:127.0.0.1:PORT ..."), which is how scripts
 * are told the ephemeral port a `--listen=tcp:HOST:0` got. Polls up
 * to 10 s: the banner races the exec.
 */
std::string
scrapeTcpEndpoint(const std::string &stderrPath)
{
    std::regex pattern("listening on .*(tcp:[0-9.]+:[0-9]+)");
    for (int attempt = 0; attempt < 200; ++attempt) {
        std::smatch match;
        std::string log = slurp(stderrPath);
        if (std::regex_search(log, match, pattern))
            return match[1].str();
        ::usleep(50 * 1000);
    }
    return "";
}

/** Runs keqc to completion; returns exit code, fills stdout text. */
int
runKeqc(const std::vector<std::string> &args, const std::string &tag,
        std::string &stdoutText, std::string &stderrText)
{
    std::string outPath = uniquePath(tag, ".out");
    std::string errPath = uniquePath(tag, ".err");
    pid_t pid = spawnProcess(KEQ_KEQC_BIN, args, outPath, errPath);
    EXPECT_GT(pid, 0);
    int code = waitExit(pid);
    stdoutText = slurp(outPath);
    stderrText = slurp(errPath);
    std::remove(outPath.c_str());
    std::remove(errPath.c_str());
    return code;
}

/**
 * Strips the run-dependent pieces of keqc stdout: wall-clock seconds
 * in the per-function parentheticals and the solver-cache summary
 * (the daemon owns a shared warm cache, a local run a cold private
 * one). Everything else — function order, outcome names, verdict
 * kinds, query counts, the N/M summary line — must be byte-identical.
 */
std::string
normalizedSummary(const std::string &stdoutText)
{
    std::string text = std::regex_replace(
        stdoutText, std::regex(", [0-9.e+-]+ s\\)"), ", T s)");
    // Query counts differ between a shared warm cache and a cold
    // local one (memoized queries are never issued).
    text = std::regex_replace(
        text, std::regex(", [0-9]+ queries"), ", N queries");
    std::istringstream in(text);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("solver cache:", 0) == 0)
            continue;
        out << line << "\n";
    }
    return out.str();
}

/** Extracts one brace-balanced section ("outcomes", "failures") from
 *  the --stats-json dump. */
std::string
jsonSection(const std::string &json, const std::string &key)
{
    size_t at = json.find("\"" + key + "\"");
    if (at == std::string::npos)
        return "<missing " + key + ">";
    size_t open = json.find('{', at);
    size_t depth = 0;
    for (size_t i = open; i < json.size(); ++i) {
        if (json[i] == '{')
            ++depth;
        else if (json[i] == '}' && --depth == 0)
            return json.substr(at, i + 1 - at);
    }
    return "<torn " + key + ">";
}

std::string
writeModule(const std::string &tag, size_t functions)
{
    driver::CorpusOptions options;
    options.seed = 0xc4a05;
    options.functionCount = functions;
    std::string path = uniquePath(tag, ".ll");
    writeFile(path, driver::generateCorpusSource(options));
    return path;
}

void
reap(pid_t pid)
{
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
}

struct DaemonHandle
{
    pid_t pid = -1;
    std::string endpoint; ///< scraped "tcp:..." or the unix spec
    std::string logPath;
};

/** Boots a real keq-daemon on an ephemeral TCP port and waits for the
 *  banner to report where it landed. */
DaemonHandle
startTcpDaemon(const std::string &tag,
               const std::vector<std::string> &extraArgs = {})
{
    DaemonHandle daemon;
    daemon.logPath = uniquePath(tag, ".log");
    std::vector<std::string> args = {"--listen=tcp:127.0.0.1:0"};
    args.insert(args.end(), extraArgs.begin(), extraArgs.end());
    daemon.pid = spawnProcess(KEQ_DAEMON_BIN, args,
                              uniquePath(tag, ".dout"),
                              daemon.logPath);
    daemon.endpoint = scrapeTcpEndpoint(daemon.logPath);
    return daemon;
}

/**
 * The real-binary acceptance gate: keqc over `--daemon=tcp:...` must
 * be indistinguishable (verdicts, outcome counts, exit code) from
 * keqc solving locally.
 */
TEST(FailoverChaosTest, KeqcOverTcpDaemonMatchesLocalRun)
{
    std::string module = writeModule("parity", 6);
    DaemonHandle daemon = startTcpDaemon("parity");
    ASSERT_GT(daemon.pid, 0);
    ASSERT_FALSE(daemon.endpoint.empty())
        << "no TCP endpoint in the keqd banner:\n"
        << slurp(daemon.logPath);

    std::string localJson = uniquePath("parity-local", ".json");
    std::string tcpJson = uniquePath("parity-tcp", ".json");
    std::string localOut, tcpOut, err;
    int localCode = runKeqc({"--stats-json=" + localJson, module},
                            "local", localOut, err);
    int tcpCode = runKeqc({"--daemon=" + daemon.endpoint,
                           "--stats-json=" + tcpJson, module},
                          "tcp", tcpOut, err);
    reap(daemon.pid);

    ASSERT_EQ(localCode, 0) << localOut;
    EXPECT_EQ(tcpCode, localCode);
    // Guard against trivially-equal failure modes: the runs must have
    // actually validated something.
    ASSERT_NE(localOut.find("functions validated"), std::string::npos)
        << localOut;
    EXPECT_EQ(normalizedSummary(tcpOut), normalizedSummary(localOut))
        << "TCP daemon run diverged from local; stderr:\n" << err;
    std::string localStats = slurp(localJson);
    std::string tcpStats = slurp(tcpJson);
    EXPECT_EQ(jsonSection(tcpStats, "outcomes"),
              jsonSection(localStats, "outcomes"));
    EXPECT_EQ(jsonSection(tcpStats, "failures"),
              jsonSection(localStats, "failures"));

    std::remove(module.c_str());
    std::remove(localJson.c_str());
    std::remove(tcpJson.c_str());
    std::remove(daemon.logPath.c_str());
}

/**
 * SIGKILL the TCP primary mid-run with a warm unix secondary on the
 * failover list: keqc's verdict output must be byte-identical to an
 * undisturbed local run (degradation shows only on stderr), and the
 * exit code unchanged. Race-tolerant like the sibling chaos suite:
 * the primary may finish before the kill lands, in which case this
 * run simply proves the no-failover path again.
 */
TEST(FailoverChaosTest, SigkillPrimaryFailsOverToWarmSecondary)
{
    std::string module = writeModule("failover", 8);
    std::string secondarySocket = uniquePath("failover", ".sock");

    // Primary: TCP, jobs=1 so eight functions leave a wide window.
    DaemonHandle primary = startTcpDaemon("failover", {"--jobs=1"});
    ASSERT_GT(primary.pid, 0);
    ASSERT_FALSE(primary.endpoint.empty())
        << "no TCP endpoint in the keqd banner:\n"
        << slurp(primary.logPath);
    // Secondary: unix, full parallelism, booted before the run so it
    // is warm (a real deployment keeps standbys running).
    pid_t secondary =
        spawnProcess(KEQ_DAEMON_BIN, {"--socket=" + secondarySocket},
                     uniquePath("failover", ".s.out"),
                     uniquePath("failover", ".s.err"));
    ASSERT_GT(secondary, 0);

    std::string stdoutText, stderrText;
    std::string json = uniquePath("failover", ".json");
    pid_t keqc = spawnProcess(
        KEQ_KEQC_BIN,
        {"--daemon=" + primary.endpoint + ",unix:" + secondarySocket,
         "--stats-json=" + json, module},
        uniquePath("failover", ".out"), uniquePath("failover", ".err"));
    ASSERT_GT(keqc, 0);
    std::thread killer([&] {
        ::usleep(120 * 1000);
        ::kill(primary.pid, SIGKILL);
    });
    int code = waitExit(keqc);
    killer.join();
    stdoutText = slurp(uniquePath("failover", ".out"));
    stderrText = slurp(uniquePath("failover", ".err"));
    int status = 0;
    ::waitpid(primary.pid, &status, 0);
    reap(secondary);

    std::string localOut, localErr;
    std::string localJson = uniquePath("failover-local", ".json");
    int localCode = runKeqc({"--stats-json=" + localJson, module},
                            "failover-local", localOut, localErr);

    ASSERT_EQ(localCode, 0) << localOut;
    ASSERT_NE(localOut.find("functions validated"), std::string::npos)
        << localOut;
    EXPECT_EQ(code, localCode) << stderrText;
    EXPECT_EQ(normalizedSummary(stdoutText), normalizedSummary(localOut))
        << "failover run diverged from local; stderr:\n"
        << stderrText;
    EXPECT_EQ(jsonSection(slurp(json), "outcomes"),
              jsonSection(slurp(localJson), "outcomes"));
    // When the kill landed mid-run the degradation must have been
    // loud; either way it must never leak onto stdout.
    EXPECT_EQ(stdoutText.find("failed over"), std::string::npos);
    if (stderrText.find("failed over") != std::string::npos) {
        EXPECT_NE(stderrText.find("resubmitted"), std::string::npos);
    }

    std::remove(module.c_str());
    std::remove(secondarySocket.c_str());
    std::remove(json.c_str());
    std::remove(localJson.c_str());
    std::remove(primary.logPath.c_str());
}

/**
 * keq-daemon --status over TCP: the one-shot probe must work against
 * a tcp: endpoint and report per-transport accept counters.
 */
TEST(FailoverChaosTest, StatusProbeWorksOverTcp)
{
    DaemonHandle daemon = startTcpDaemon("status");
    ASSERT_GT(daemon.pid, 0);
    ASSERT_FALSE(daemon.endpoint.empty());

    std::string outPath = uniquePath("status", ".out");
    std::string errPath = uniquePath("status", ".err");
    pid_t probe = spawnProcess(
        KEQ_DAEMON_BIN,
        {"--status", "--listen=" + daemon.endpoint}, outPath, errPath);
    ASSERT_GT(probe, 0);
    int code = waitExit(probe);
    std::string out = slurp(outPath);
    reap(daemon.pid);

    EXPECT_EQ(code, 0) << slurp(errPath);
    EXPECT_NE(out.find("tcp"), std::string::npos)
        << "status over TCP did not mention the transport:\n" << out;

    std::remove(outPath.c_str());
    std::remove(errPath.c_str());
    std::remove(daemon.logPath.c_str());
}

} // namespace
} // namespace keq::service
