/** @file Failover determinism (in-process): a client whose primary
 *  daemon dies mid-run fails over to a warm secondary and the spliced
 *  verdicts are byte-identical to a local run; a fingerprinted
 *  resubmit is served exactly once from the completed-job ledger (no
 *  duplicate quota charge, no duplicate journal append); a v4 client
 *  is still negotiated and served; and a silent peer is detected by
 *  heartbeat as a fast *typed* failure, never a stall. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "src/conformance/corpus.h"
#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"
#include "src/service/client.h"
#include "src/service/job_options.h"
#include "src/service/server.h"
#include "src/smt/wire.h"

namespace keq::service {
namespace {

namespace wire = smt::wire;
using support::IoStatus;

std::string
socketPath(const std::string &stem)
{
    return (std::filesystem::temp_directory_path() /
            ("keqf-" + stem + "-" + std::to_string(::getpid()) +
             ".sock"))
        .string();
}

std::string
testModule(size_t functions)
{
    driver::CorpusOptions options;
    options.seed = 0x5e41ce;
    options.functionCount = functions;
    return driver::generateCorpusSource(options);
}

std::vector<std::string>
definedFunctions(const std::string &source)
{
    llvmir::Module module = llvmir::parseModule(source);
    std::vector<std::string> names;
    for (const llvmir::Function &fn : module.functions)
        if (!fn.isDeclaration())
            names.push_back(fn.name);
    return names;
}

std::string
canonicalSummary(const std::vector<driver::FunctionReport> &reports)
{
    driver::ModuleReport module;
    module.functions = reports;
    return module.canonicalSummary();
}

std::string
localSummary(const std::string &source,
             const driver::PipelineOptions &options)
{
    driver::Pipeline pipeline(options);
    llvmir::Module module = llvmir::parseModule(source);
    return pipeline.run(module).canonicalSummary();
}

template <typename Predicate>
bool
eventually(Predicate predicate, unsigned budgetMs = 10000)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(budgetMs);
    while (!predicate()) {
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return true;
}

/**
 * Primary dies mid-run (stop() severs every session), the client
 * fails over to the warm secondary, resubmits the undecided work, and
 * the result is byte-identical to a local run. This is the
 * multi-host degradation contract end to end, without processes.
 */
TEST(FailoverTest, MidRunFailoverToSecondaryIsByteIdentical)
{
    std::string source = testModule(8);
    std::vector<std::string> names = definedFunctions(source);
    driver::PipelineOptions poptions;

    ServerOptions primaryOptions;
    primaryOptions.socketPath = socketPath("prim");
    primaryOptions.jobs = 1; // serialize: a wide mid-run kill window
    Server primary(primaryOptions);
    ServerOptions secondaryOptions;
    secondaryOptions.socketPath = socketPath("sec");
    secondaryOptions.jobs = 2;
    Server secondary(secondaryOptions);
    std::string error;
    ASSERT_TRUE(primary.start(error)) << error;
    ASSERT_TRUE(secondary.start(error)) << error;

    DaemonClientOptions copts;
    copts.endpoints = {unixEndpoint(primaryOptions.socketPath),
                       unixEndpoint(secondaryOptions.socketPath)};
    copts.verdictTimeoutMs = 60000;
    DaemonClient client(copts);
    ASSERT_TRUE(client.connect(error)) << error;

    // Kill the primary as soon as it has decided at least one job but
    // (jobs=1, 8 functions) almost surely not all of them.
    std::thread killer([&] {
        eventually([&] { return primary.stats().completed >= 1; });
        primary.stop();
    });

    std::vector<driver::FunctionReport> reports;
    std::vector<bool> decided;
    bool complete = client.validateFunctions(source, names, poptions,
                                             reports, decided, error);
    killer.join();

    ASSERT_TRUE(complete) << error;
    for (size_t i = 0; i < decided.size(); ++i)
        EXPECT_TRUE(decided[i]) << "function " << i << " undecided";
    EXPECT_EQ(canonicalSummary(reports),
              localSummary(source, poptions));
    // The run must actually have survived a failover (the kill waits
    // for a completed job, so the primary cannot have finished first
    // with jobs=1 unless the module shrank to one function).
    EXPECT_GE(client.failovers(), 1u);
    secondary.stop();
}

/** Raw-wire v5 handshake helper (the client class hides versions). */
bool
rawHandshake(WireChannel &channel, uint32_t version,
             wire::ServerHelloFrame &ack)
{
    wire::ClientHelloFrame hello;
    hello.protocolVersion = version;
    hello.clientName = "raw-test";
    if (!channel.sendFrame(wire::encodeClientHello(hello)))
        return false;
    std::string payload;
    if (channel.recvFrame(payload, 5000) != IoStatus::Ok)
        return false;
    wire::FrameType type{};
    std::string body;
    std::string error;
    return wire::splitFrame(payload, type, body) &&
           type == wire::FrameType::ServerHello &&
           wire::decodeServerHello(body, ack, error);
}

/** Round-trips one SubmitJob and returns its verdict frame. */
bool
rawSubmit(WireChannel &channel, const wire::SubmitJobFrame &job,
          uint32_t version, wire::JobVerdictFrame &verdict)
{
    if (!channel.sendFrame(wire::encodeSubmitJob(job, version)))
        return false;
    std::string payload;
    if (channel.recvFrame(payload, 60000) != IoStatus::Ok)
        return false;
    wire::FrameType type{};
    std::string body;
    std::string error;
    return wire::splitFrame(payload, type, body) &&
           type == wire::FrameType::JobVerdict &&
           wire::decodeJobVerdict(body, verdict, error);
}

/**
 * The idempotency contract, pinned at the wire level: a resubmission
 * claiming the job's fingerprint (what a failover client sends for
 * work that was in flight when its connection died) is answered from
 * the completed-job ledger — same verdict bytes, zero additional
 * solves, zero additional quota charges, zero additional journal
 * appends.
 */
TEST(FailoverTest, FingerprintedResubmitIsServedOnceFromLedger)
{
    std::string source = testModule(3);
    std::vector<std::string> names = definedFunctions(source);
    std::string journal = socketPath("ledger") + ".journal";
    std::remove(journal.c_str());

    ServerOptions options;
    options.socketPath = socketPath("ledger");
    options.verdictJournalPath = journal;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    wire::JobOptionsFrame jobOptions =
        encodeJobOptions(driver::PipelineOptions{});

    // First connection: plain submits (fingerprint 0 on first send —
    // no dedup claim), collect verdicts.
    std::vector<wire::JobVerdictFrame> first(names.size());
    {
        int fd = -1;
        ASSERT_TRUE(connectUnix(options.socketPath, 2000, fd, error))
            << error;
        WireChannel channel(fd);
        wire::ServerHelloFrame ack;
        ASSERT_TRUE(
            rawHandshake(channel, wire::kProtocolVersion, ack));
        for (size_t i = 0; i < names.size(); ++i) {
            wire::SubmitJobFrame job;
            job.jobId = i + 1;
            job.function = names[i];
            job.moduleText = source;
            job.options = jobOptions;
            ASSERT_TRUE(rawSubmit(channel, job,
                                  wire::kProtocolVersion, first[i]));
        }
    }
    ServerStats before = server.stats();
    uint64_t appendedBefore = server.store().stats().appended;
    EXPECT_EQ(before.dedupHits, 0u);

    // Second connection simulates the failover client: identical jobs
    // resubmitted *with* their fingerprints.
    {
        int fd = -1;
        ASSERT_TRUE(connectUnix(options.socketPath, 2000, fd, error))
            << error;
        WireChannel channel(fd);
        wire::ServerHelloFrame ack;
        ASSERT_TRUE(
            rawHandshake(channel, wire::kProtocolVersion, ack));
        for (size_t i = 0; i < names.size(); ++i) {
            wire::SubmitJobFrame job;
            job.jobId = 100 + i;
            job.function = names[i];
            job.moduleText = source;
            job.options = jobOptions;
            job.fingerprint =
                jobFingerprint(source, names[i], jobOptions);
            wire::JobVerdictFrame verdict;
            ASSERT_TRUE(rawSubmit(channel, job,
                                  wire::kProtocolVersion, verdict));
            EXPECT_EQ(verdict.jobId, job.jobId);
            // Byte-identical replay of the recorded verdict.
            EXPECT_EQ(verdict.report, first[i].report)
                << names[i] << " replayed differently";
        }
    }

    ServerStats after = server.stats();
    EXPECT_EQ(after.dedupHits, names.size());
    EXPECT_EQ(after.submitted, before.submitted)
        << "a dedup-served job must never enter the queue";
    EXPECT_EQ(after.completed, before.completed)
        << "a dedup-served job must never re-solve";
    EXPECT_EQ(after.quotaRejects, 0u);
    EXPECT_EQ(server.store().stats().appended, appendedBefore)
        << "a dedup-served job must never re-append to the journal";

    server.stop();
    std::remove(journal.c_str());
}

/** A fingerprint is necessary but never sufficient: a submit whose
 *  fingerprint matches a recorded job but whose identity differs (the
 *  64-bit-collision case, forced here) takes the real solving path. */
TEST(FailoverTest, CollidingFingerprintNeverReplaysForeignVerdict)
{
    std::string source = testModule(2);
    std::vector<std::string> names = definedFunctions(source);
    ASSERT_GE(names.size(), 2u);

    ServerOptions options;
    options.socketPath = socketPath("collide");
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    wire::JobOptionsFrame jobOptions =
        encodeJobOptions(driver::PipelineOptions{});

    int fd = -1;
    ASSERT_TRUE(connectUnix(options.socketPath, 2000, fd, error))
        << error;
    WireChannel channel(fd);
    wire::ServerHelloFrame ack;
    ASSERT_TRUE(rawHandshake(channel, wire::kProtocolVersion, ack));

    // Record names[0] in the ledger.
    wire::SubmitJobFrame jobA;
    jobA.jobId = 1;
    jobA.function = names[0];
    jobA.moduleText = source;
    jobA.options = jobOptions;
    wire::JobVerdictFrame verdictA;
    ASSERT_TRUE(
        rawSubmit(channel, jobA, wire::kProtocolVersion, verdictA));

    // Submit names[1] claiming names[0]'s fingerprint: the full
    // identity check must reject the ledger hit and solve for real.
    wire::SubmitJobFrame jobB;
    jobB.jobId = 2;
    jobB.function = names[1];
    jobB.moduleText = source;
    jobB.options = jobOptions;
    jobB.fingerprint = jobFingerprint(source, names[0], jobOptions);
    wire::JobVerdictFrame verdictB;
    ASSERT_TRUE(
        rawSubmit(channel, jobB, wire::kProtocolVersion, verdictB));
    EXPECT_NE(verdictB.report, verdictA.report)
        << "colliding fingerprint replayed the wrong job's verdict";
    EXPECT_EQ(server.stats().dedupHits, 0u);

    server.stop();
}

/** A v4 client is negotiated down and fully served: the ServerHello
 *  echoes version 4, a v4-form SubmitJob (no fingerprint) gets its
 *  verdict, and the JobStatus reply stays v4-shaped (decodable, v5
 *  counters absent). */
TEST(FailoverTest, V4ClientIsNegotiatedAndServed)
{
    std::string source = testModule(1);
    std::vector<std::string> names = definedFunctions(source);

    ServerOptions options;
    options.socketPath = socketPath("v4");
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    int fd = -1;
    ASSERT_TRUE(connectUnix(options.socketPath, 2000, fd, error))
        << error;
    WireChannel channel(fd);
    wire::ServerHelloFrame ack;
    ASSERT_TRUE(rawHandshake(channel, 4, ack));
    EXPECT_EQ(ack.protocolVersion, 4u)
        << "the daemon must negotiate down to the client's version";

    wire::SubmitJobFrame job;
    job.jobId = 1;
    job.function = names[0];
    job.moduleText = source;
    job.options = encodeJobOptions(driver::PipelineOptions{});
    wire::JobVerdictFrame verdict;
    ASSERT_TRUE(rawSubmit(channel, job, 4, verdict));
    EXPECT_EQ(verdict.jobId, 1u);
    EXPECT_FALSE(verdict.report.empty());

    // Status probe: the reply must decode; being v4-shaped, the v5
    // counters come back zero even though the daemon tracks them.
    ASSERT_TRUE(channel.sendFrame(
        wire::encodeJobStatus(wire::JobStatusFrame{})));
    std::string payload;
    ASSERT_EQ(channel.recvFrame(payload, 5000), IoStatus::Ok);
    wire::FrameType type{};
    std::string body;
    ASSERT_TRUE(wire::splitFrame(payload, type, body));
    ASSERT_EQ(type, wire::FrameType::JobStatus);
    wire::JobStatusFrame status;
    ASSERT_TRUE(wire::decodeJobStatus(body, status, error)) << error;
    EXPECT_EQ(status.completedJobs, 1u);
    EXPECT_EQ(status.acceptedUnix, 0u) << "v4 reply grew v5 fields";

    server.stop();
}

/** Too-old and too-new versions still get typed HelloRejects naming
 *  the supported window. */
TEST(FailoverTest, OutOfWindowVersionsAreRejected)
{
    ServerOptions options;
    options.socketPath = socketPath("vwin");
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    for (uint32_t version : {3u, 6u, 99u}) {
        int fd = -1;
        ASSERT_TRUE(connectUnix(options.socketPath, 2000, fd, error))
            << error;
        WireChannel channel(fd);
        wire::ClientHelloFrame hello;
        hello.protocolVersion = version;
        ASSERT_TRUE(
            channel.sendFrame(wire::encodeClientHello(hello)));
        std::string payload;
        ASSERT_EQ(channel.recvFrame(payload, 5000), IoStatus::Ok);
        wire::FrameType type{};
        std::string body;
        ASSERT_TRUE(wire::splitFrame(payload, type, body));
        EXPECT_EQ(type, wire::FrameType::HelloReject)
            << "version " << version << " negotiated";
        wire::HelloRejectFrame reject;
        ASSERT_TRUE(wire::decodeHelloReject(body, reject, error));
        EXPECT_NE(reject.message.find("4..5"), std::string::npos)
            << "reject does not name the window: " << reject.message;
    }
    server.stop();
}

/**
 * The TCP acceptance gate: the full checked-in conformance corpus
 * through a daemon serving tcp:127.0.0.1 on an ephemeral port, warm
 * across all modules, produces canonical summaries byte-identical to
 * the local pipeline — the unix-socket corpus parity of daemon_test,
 * re-proved over the transport multi-host deployments actually use.
 */
TEST(FailoverTest, FullConformanceCorpusOverTcpMatchesLocal)
{
    std::vector<conformance::CorpusCase> cases =
        conformance::loadCorpusDir(KEQ_CORPUS_DIR);
    ASSERT_FALSE(cases.empty());

    ServerOptions options;
    options.listen = {tcpEndpoint("127.0.0.1", 0)};
    options.jobs = 4;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;
    ASSERT_EQ(server.boundEndpoints().size(), 1u);
    ASSERT_NE(server.boundEndpoints()[0].port, 0)
        << "ephemeral TCP listen did not resolve its port";

    DaemonClientOptions copts;
    copts.endpoints = {server.boundEndpoints()[0]};
    DaemonClient client(copts);
    ASSERT_TRUE(client.connect(error)) << error;

    for (const conformance::CorpusCase &corpusCase : cases) {
        driver::PipelineOptions poptions;
        poptions.isel = corpusCase.isel;
        std::vector<std::string> names =
            definedFunctions(corpusCase.source);
        std::vector<driver::FunctionReport> reports;
        std::vector<bool> decided;
        ASSERT_TRUE(client.validateFunctions(corpusCase.source, names,
                                             poptions, reports,
                                             decided, error))
            << corpusCase.name << ": " << error;
        EXPECT_EQ(canonicalSummary(reports),
                  localSummary(corpusCase.source, poptions))
            << "corpus file " << corpusCase.name
            << " diverged over TCP";
    }
    EXPECT_EQ(client.failovers(), 0u);
    server.stop();
}

/**
 * The silent-TCP-peer scenario: a fake daemon completes the handshake
 * and then never answers anything — no verdicts, no Pongs, no FIN.
 * The heartbeat must declare it dead in ~interval+timeout, orders of
 * magnitude before the 10-minute verdict deadline, and the failure is
 * the *typed* Timeout keqc's degradation path classifies.
 */
TEST(FailoverTest, HeartbeatDetectsSilentPeerFast)
{
    TcpListener listener;
    std::string error;
    ASSERT_TRUE(
        listener.listenOn(tcpEndpoint("127.0.0.1", 0), error))
        << error;

    std::atomic<bool> stopAccepting{false};
    std::thread fakeDaemon([&] {
        // Serve (and ignore) every connection this test makes: the
        // client's failover rounds reconnect here several times.
        while (!stopAccepting.load()) {
            int fd = listener.acceptClient(200);
            if (fd < 0)
                continue;
            std::thread([fd] {
                WireChannel channel(fd);
                std::string payload;
                if (channel.recvFrame(payload, 5000) != IoStatus::Ok)
                    return;
                wire::ServerHelloFrame ack;
                channel.sendFrame(wire::encodeServerHello(ack));
                // ... then total silence, reading nothing, until the
                // client hangs up.
                while (channel.waitReadable(100) != IoStatus::Eof &&
                       channel.valid()) {
                    std::string sink;
                    if (channel.recvFrame(sink, 100) == IoStatus::Eof)
                        break;
                }
            }).detach();
        }
    });

    DaemonClientOptions copts;
    copts.endpoints = {listener.endpoint()};
    copts.heartbeatIntervalMs = 150;
    copts.heartbeatTimeoutMs = 300;
    copts.verdictTimeoutMs = 600000; // must NOT be what bounds us
    copts.reconnectRounds = 1;
    copts.reconnectBackoffInitialMs = 10;
    DaemonClient client(copts);
    ASSERT_TRUE(client.connect(error)) << error;

    std::string source = testModule(1);
    std::vector<driver::FunctionReport> reports;
    std::vector<bool> decided;
    auto start = std::chrono::steady_clock::now();
    bool complete = client.validateFunctions(
        source, definedFunctions(source), driver::PipelineOptions{},
        reports, decided, error);
    auto elapsedMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();

    EXPECT_FALSE(complete);
    EXPECT_EQ(client.failure(), FailureKind::Timeout)
        << "a silent peer must classify as Timeout, got " << error;
    // interval (150) + timeout (300) + one failover retry on the same
    // silent endpoint + slack: far under the verdict deadline.
    EXPECT_LT(elapsedMs, 10000)
        << "heartbeat failed to beat the verdict deadline";

    client.close();
    stopAccepting.store(true);
    fakeDaemon.join();
    listener.close();
}

} // namespace
} // namespace keq::service
