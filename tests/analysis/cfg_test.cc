/** @file Tests for dominators, natural loops and phi-aware liveness. */

#include <gtest/gtest.h>

#include "src/analysis/cfg.h"
#include "src/support/diagnostics.h"

namespace keq::analysis {
namespace {

/** entry -> head -> {body -> head, exit}: the canonical counted loop. */
Cfg
loopCfg()
{
    Cfg cfg;
    size_t entry = cfg.addBlock("entry");
    size_t head = cfg.addBlock("head");
    size_t body = cfg.addBlock("body");
    size_t exit = cfg.addBlock("exit");
    cfg.addEdge(entry, head);
    cfg.addEdge(head, body);
    cfg.addEdge(body, head);
    cfg.addEdge(head, exit);
    return cfg;
}

TEST(CfgTest, BasicQueries)
{
    Cfg cfg = loopCfg();
    EXPECT_EQ(cfg.numBlocks(), 4u);
    EXPECT_EQ(cfg.indexOf("head"), 1u);
    EXPECT_EQ(cfg.name(2), "body");
    EXPECT_EQ(cfg.successors(1).size(), 2u);
    EXPECT_EQ(cfg.predecessors(1).size(), 2u);
    EXPECT_THROW(cfg.indexOf("nope"), support::InternalError);
}

TEST(DominatorsTest, LoopCfg)
{
    Cfg cfg = loopCfg();
    std::vector<size_t> idom = immediateDominators(cfg);
    EXPECT_EQ(idom[0], 0u); // entry dominated by itself
    EXPECT_EQ(idom[1], 0u); // head by entry
    EXPECT_EQ(idom[2], 1u); // body by head
    EXPECT_EQ(idom[3], 1u); // exit by head
    EXPECT_TRUE(dominates(idom, 0, 3));
    EXPECT_TRUE(dominates(idom, 1, 2));
    EXPECT_FALSE(dominates(idom, 2, 3));
    EXPECT_TRUE(dominates(idom, 1, 1));
}

TEST(DominatorsTest, Diamond)
{
    Cfg cfg;
    size_t entry = cfg.addBlock("entry");
    size_t left = cfg.addBlock("left");
    size_t right = cfg.addBlock("right");
    size_t join = cfg.addBlock("join");
    cfg.addEdge(entry, left);
    cfg.addEdge(entry, right);
    cfg.addEdge(left, join);
    cfg.addEdge(right, join);
    std::vector<size_t> idom = immediateDominators(cfg);
    EXPECT_EQ(idom[join], entry); // neither arm dominates the join
    EXPECT_FALSE(dominates(idom, left, join));
}

TEST(DominatorsTest, UnreachableBlock)
{
    Cfg cfg;
    cfg.addBlock("entry");
    size_t island = cfg.addBlock("island");
    std::vector<size_t> idom = immediateDominators(cfg);
    EXPECT_EQ(idom[island], SIZE_MAX);
    EXPECT_FALSE(dominates(idom, 0, island));
}

TEST(NaturalLoopsTest, SingleLoop)
{
    Cfg cfg = loopCfg();
    std::vector<NaturalLoop> loops = naturalLoops(cfg);
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_EQ(loops[0].header, 1u);
    EXPECT_EQ(loops[0].blocks, (std::set<size_t>{1, 2}));
}

TEST(NaturalLoopsTest, NestedLoops)
{
    // entry -> outer -> inner -> inner (self), inner -> outer, outer -> exit
    Cfg cfg;
    size_t entry = cfg.addBlock("entry");
    size_t outer = cfg.addBlock("outer");
    size_t inner = cfg.addBlock("inner");
    size_t exit = cfg.addBlock("exit");
    cfg.addEdge(entry, outer);
    cfg.addEdge(outer, inner);
    cfg.addEdge(inner, inner);
    cfg.addEdge(inner, outer);
    cfg.addEdge(outer, exit);
    std::vector<NaturalLoop> loops = naturalLoops(cfg);
    ASSERT_EQ(loops.size(), 2u);
    // Loops are keyed by header; the inner self-loop is {inner}, the
    // outer is {outer, inner}.
    bool found_inner = false, found_outer = false;
    for (const NaturalLoop &loop : loops) {
        if (loop.header == inner) {
            EXPECT_EQ(loop.blocks, (std::set<size_t>{inner}));
            found_inner = true;
        }
        if (loop.header == outer) {
            EXPECT_EQ(loop.blocks, (std::set<size_t>{outer, inner}));
            found_outer = true;
        }
    }
    EXPECT_TRUE(found_inner);
    EXPECT_TRUE(found_outer);
}

TEST(NaturalLoopsTest, NoLoops)
{
    Cfg cfg;
    size_t a = cfg.addBlock("a");
    size_t b = cfg.addBlock("b");
    cfg.addEdge(a, b);
    EXPECT_TRUE(naturalLoops(cfg).empty());
}

TEST(LivenessTest, StraightLine)
{
    Cfg cfg;
    size_t a = cfg.addBlock("a");
    size_t b = cfg.addBlock("b");
    cfg.addEdge(a, b);
    std::vector<BlockUseDef> facts(2);
    facts[a].def = {"x"};
    facts[b].use = {"x", "y"};
    Liveness live = computeLiveness(cfg, facts);
    EXPECT_EQ(live.liveOut[a], (std::set<std::string>{"x", "y"}));
    EXPECT_EQ(live.liveIn[a], (std::set<std::string>{"y"}));
    EXPECT_EQ(live.liveIn[b], (std::set<std::string>{"x", "y"}));
}

TEST(LivenessTest, LoopCarriedValue)
{
    Cfg cfg = loopCfg();
    std::vector<BlockUseDef> facts(4);
    // head uses nothing directly; body uses and redefines acc.
    facts[1].def = {"i"};
    facts[2].use = {"acc", "i"};
    facts[2].def = {"acc2"};
    facts[3].use = {"acc"};
    Liveness live = computeLiveness(cfg, facts);
    // acc is live around the loop.
    EXPECT_TRUE(live.liveIn[1].count("acc"));
    EXPECT_TRUE(live.liveOut[2].count("acc"));
    EXPECT_TRUE(live.liveIn[0].count("acc"));
}

TEST(LivenessTest, PhiUsesAttributedToEdges)
{
    // join has a phi reading xa from left and xb from right.
    Cfg cfg;
    size_t entry = cfg.addBlock("entry");
    size_t left = cfg.addBlock("left");
    size_t right = cfg.addBlock("right");
    size_t join = cfg.addBlock("join");
    cfg.addEdge(entry, left);
    cfg.addEdge(entry, right);
    cfg.addEdge(left, join);
    cfg.addEdge(right, join);
    std::vector<BlockUseDef> facts(4);
    facts[left].def = {"xa"};
    facts[right].def = {"xb"};
    facts[join].def = {"x"};
    facts[join].phiUse[left] = {"xa"};
    facts[join].phiUse[right] = {"xb"};
    Liveness live = computeLiveness(cfg, facts);
    // xa is live out of left but NOT live into join (phi edge semantics)
    // and NOT live out of right.
    EXPECT_TRUE(live.liveOut[left].count("xa"));
    EXPECT_FALSE(live.liveIn[join].count("xa"));
    EXPECT_FALSE(live.liveOut[right].count("xa"));
    // Edge-live sets carry the phi inputs.
    EXPECT_TRUE(live.edgeLive(cfg, facts, left, join).count("xa"));
    EXPECT_FALSE(live.edgeLive(cfg, facts, right, join).count("xa"));
    EXPECT_TRUE(live.edgeLive(cfg, facts, right, join).count("xb"));
}

TEST(LivenessTest, DefKillsLiveness)
{
    Cfg cfg;
    size_t a = cfg.addBlock("a");
    size_t b = cfg.addBlock("b");
    cfg.addEdge(a, b);
    std::vector<BlockUseDef> facts(2);
    facts[b].def = {"x"};
    facts[b].use = {};
    Liveness live = computeLiveness(cfg, facts);
    EXPECT_FALSE(live.liveOut[a].count("x"));
}

} // namespace
} // namespace keq::analysis
