/** @file Parser tests for the LLVM IR subset. */

#include <gtest/gtest.h>

#include "src/llvmir/parser.h"
#include "src/support/diagnostics.h"

namespace keq::llvmir {
namespace {

TEST(ParserTest, MinimalFunction)
{
    Module m = parseModule("define i32 @id(i32 %x) {\nentry:\n"
                           "  ret i32 %x\n}\n");
    ASSERT_EQ(m.functions.size(), 1u);
    const Function &fn = m.functions[0];
    EXPECT_EQ(fn.name, "@id");
    EXPECT_EQ(fn.returnType->bitWidth(), 32u);
    ASSERT_EQ(fn.params.size(), 1u);
    EXPECT_EQ(fn.params[0].name, "%x");
    ASSERT_EQ(fn.blocks.size(), 1u);
    EXPECT_EQ(fn.blocks[0].name, "entry");
    EXPECT_EQ(fn.blocks[0].insts[0].op, Opcode::Ret);
}

TEST(ParserTest, GlobalsAndDeclarations)
{
    Module m = parseModule(
        "@b = external global [8 x i8]\n"
        "@w = external global i32, align 4\n"
        "declare i32 @ext(i32, i32)\n");
    ASSERT_EQ(m.globals.size(), 2u);
    EXPECT_EQ(m.globals[0].name, "@b");
    EXPECT_EQ(m.globals[0].valueType->sizeInBytes(), 8u);
    ASSERT_EQ(m.functions.size(), 1u);
    EXPECT_TRUE(m.functions[0].isDeclaration());
    EXPECT_EQ(m.functions[0].params.size(), 2u);
}

TEST(ParserTest, BinOpsWithFlags)
{
    Module m = parseModule(
        "define i32 @f(i32 %a, i32 %b) {\nentry:\n"
        "  %1 = add nsw i32 %a, %b\n"
        "  %2 = sub nuw nsw i32 %1, 1\n"
        "  %3 = mul i32 %2, %2\n"
        "  %4 = sdiv i32 %3, 7\n"
        "  ret i32 %4\n}\n");
    const BasicBlock &block = m.functions[0].blocks[0];
    EXPECT_EQ(block.insts[0].op, Opcode::Add);
    EXPECT_TRUE(block.insts[0].nsw);
    EXPECT_FALSE(block.insts[0].nuw);
    EXPECT_TRUE(block.insts[1].nuw);
    EXPECT_TRUE(block.insts[1].nsw);
    EXPECT_FALSE(block.insts[2].nsw);
    EXPECT_EQ(block.insts[3].op, Opcode::SDiv);
    // Constant operand parsed at the right width.
    EXPECT_TRUE(block.insts[1].operands[1].isConst());
    EXPECT_EQ(block.insts[1].operands[1].constant.width(), 32u);
}

TEST(ParserTest, ControlFlowAndPhi)
{
    Module m = parseModule(R"(
define i32 @loop(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %next, %head.body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %head.body, label %done
head.body:
  %next = add i32 %i, 1
  br label %head
done:
  ret i32 %i
}
)");
    const Function &fn = m.functions[0];
    ASSERT_EQ(fn.blocks.size(), 4u);
    const Instruction &phi = fn.blocks[1].insts[0];
    EXPECT_EQ(phi.op, Opcode::Phi);
    ASSERT_EQ(phi.incoming.size(), 2u);
    EXPECT_EQ(phi.incoming[0].block, "entry");
    EXPECT_EQ(phi.incoming[1].block, "head.body");
    const Instruction &icmp = fn.blocks[1].insts[1];
    EXPECT_EQ(icmp.op, Opcode::ICmp);
    EXPECT_EQ(icmp.pred, ICmpPred::Slt);
    const Instruction &condbr = fn.blocks[1].insts[2];
    EXPECT_EQ(condbr.op, Opcode::CondBr);
    EXPECT_EQ(condbr.target1, "head.body");
    EXPECT_EQ(condbr.target2, "done");
}

TEST(ParserTest, MemoryOperations)
{
    Module m = parseModule(R"(
@g = external global [4 x i32]
define i64 @mem(i64 %idx) {
entry:
  %slot = alloca i32
  store i32 7, i32* %slot
  %v = load i32, i32* %slot, align 4
  %p = getelementptr inbounds [4 x i32], [4 x i32]* @g, i64 0, i64 %idx
  %w = load i32, i32* %p
  %x = add i32 %v, %w
  %wide = zext i32 %x to i64
  ret i64 %wide
}
)");
    const BasicBlock &block = m.functions[0].blocks[0];
    EXPECT_EQ(block.insts[0].op, Opcode::Alloca);
    EXPECT_EQ(block.insts[0].sourceType->bitWidth(), 32u);
    EXPECT_EQ(block.insts[1].op, Opcode::Store);
    EXPECT_EQ(block.insts[2].op, Opcode::Load);
    const Instruction &gep = block.insts[3];
    EXPECT_EQ(gep.op, Opcode::GetElementPtr);
    EXPECT_EQ(gep.operands.size(), 3u);
    EXPECT_TRUE(gep.type->isPointer());
    EXPECT_EQ(gep.type->pointee()->bitWidth(), 32u);
    EXPECT_EQ(block.insts[6].op, Opcode::ZExt);
}

TEST(ParserTest, CallsGetSequentialSiteIds)
{
    Module m = parseModule(R"(
declare i32 @ext(i32)
define i32 @f(i32 %a) {
entry:
  %1 = call i32 @ext(i32 %a)
  call void @ext2()
  %2 = call i32 @ext(i32 %1)
  ret i32 %2
}
)");
    const BasicBlock &block = m.functions[1].blocks[0];
    EXPECT_EQ(block.insts[0].callSiteId, "cs0");
    EXPECT_EQ(block.insts[1].callSiteId, "cs1");
    EXPECT_EQ(block.insts[2].callSiteId, "cs2");
    EXPECT_TRUE(block.insts[1].type->isVoid());
}

TEST(ParserTest, SelectAndCasts)
{
    Module m = parseModule(R"(
define i64 @c(i32 %a, i64 %b) {
entry:
  %t = trunc i64 %b to i32
  %c = icmp eq i32 %a, %t
  %s = select i1 %c, i32 %a, i32 %t
  %sx = sext i32 %s to i64
  %pi = inttoptr i64 %sx to i32*
  %ip = ptrtoint i32* %pi to i64
  ret i64 %ip
}
)");
    const BasicBlock &block = m.functions[0].blocks[0];
    EXPECT_EQ(block.insts[0].op, Opcode::Trunc);
    EXPECT_EQ(block.insts[2].op, Opcode::Select);
    EXPECT_EQ(block.insts[3].op, Opcode::SExt);
    EXPECT_EQ(block.insts[4].op, Opcode::IntToPtr);
    EXPECT_EQ(block.insts[5].op, Opcode::PtrToInt);
}

TEST(ParserTest, SwitchTerminator)
{
    Module m = parseModule(R"(
define i32 @f(i32 %x) {
entry:
  switch i32 %x, label %dflt [
    i32 1, label %one
    i32 -2, label %two
  ]
one:
  ret i32 10
two:
  ret i32 20
dflt:
  ret i32 0
}
)");
    const Instruction &sw = m.functions[0].blocks[0].insts[0];
    EXPECT_EQ(sw.op, Opcode::Switch);
    EXPECT_EQ(sw.target1, "dflt");
    ASSERT_EQ(sw.switchCases.size(), 2u);
    EXPECT_EQ(sw.switchCases[0].first.zext(), 1u);
    EXPECT_EQ(sw.switchCases[0].second, "one");
    EXPECT_EQ(sw.switchCases[1].first.sext(), -2);
    EXPECT_TRUE(sw.isTerminator());
    EXPECT_EQ(m.functions[0].blocks[0].successors(),
              (std::vector<std::string>{"dflt", "one", "two"}));
    // Round trip.
    Module again = parseModule(m.toString());
    EXPECT_EQ(m.toString(), again.toString());
}

TEST(ParserTest, CommentsAndNegativeLiterals)
{
    Module m = parseModule(
        "; leading comment\n"
        "define i32 @f() { ; trailing\nentry:\n"
        "  %1 = add i32 -5, -1 ; another\n  ret i32 %1\n}\n");
    const Instruction &add = m.functions[0].blocks[0].insts[0];
    EXPECT_EQ(add.operands[0].constant.sext(), -5);
    EXPECT_EQ(add.operands[1].constant.sext(), -1);
}

TEST(ParserTest, RejectsUnsupportedConstructs)
{
    EXPECT_THROW(parseModule("define float @f() {\nentry:\n ret\n}\n"),
                 support::Error);
    EXPECT_THROW(parseModule("define i128 @f() {\nentry:\n"
                             "  ret i128 0\n}\n"),
                 support::Error);
    EXPECT_THROW(
        parseModule("define i32 @f() {\nentry:\n  %1 = frobnicate\n}\n"),
        support::Error);
}

TEST(ParserTest, ErrorsCarryLineNumbers)
{
    try {
        parseModule("define i32 @f() {\nentry:\n  %1 = bogus i32 0\n}\n");
        FAIL() << "expected parse error";
    } catch (const support::Error &error) {
        EXPECT_NE(std::string(error.what()).find("line 3"),
                  std::string::npos);
    }
}

// Every malformed input must produce a positioned diagnostic: line AND
// column, plus a message fragment naming what went wrong. This is the
// contract `keqc` exit code 65 builds on.
TEST(ParserTest, MalformedInputsCarryLineAndColumn)
{
    struct Case
    {
        const char *label;
        const char *source;
        const char *wherePrefix; ///< "line L, col C" expected anchor
        const char *message;     ///< substring of the diagnostic
    };
    const Case table[] = {
        {"unknown opcode",
         "define i32 @f() {\nentry:\n  %1 = bogus i32 0\n}\n",
         "line 3, col 8", "unsupported opcode"},
        {"unsupported integer width",
         "define i128 @f() {\nentry:\n  ret i128 0\n}\n",
         "line 1, col 8", "unsupported type"},
        {"huge integer width",
         "define i32 @f() {\nentry:\n"
         "  %1 = add i99999999999 0, 0\n  ret i32 %1\n}\n",
         "line 3, col 12", "unsupported type"},
        {"out-of-range literal",
         "define i64 @f() {\nentry:\n"
         "  ret i64 99999999999999999999999\n}\n",
         "line 3, col 11", "out of range"},
        {"unexpected character",
         "define i32 @f() {\nentry:\n  %1 = add i32 0, #\n}\n",
         "line 3, col 19", "unexpected character"},
        {"missing operand comma",
         "define i32 @f() {\nentry:\n  %1 = add i32 0 0\n}\n",
         "line 3, col 18", "expected"},
        {"bad icmp predicate",
         "define i1 @f(i32 %a) {\nentry:\n"
         "  %1 = icmp zz i32 %a, 0\n  ret i1 %1\n}\n",
         "line 3, col 13", "icmp predicate"},
        {"struct GEP with dynamic index",
         "@s = external global {i32, i16}\n"
         "define i16 @f(i64 %i) {\nentry:\n"
         "  %p = getelementptr {i32, i16}, {i32, i16}* @s, i64 0, "
         "i64 %i\n  %v = load i16, i16* %p\n  ret i16 %v\n}\n",
         "line 5, col 3", "struct GEP index must be constant"},
        {"top-level garbage", "definitely not llvm\n", "line 1, col 1",
         "expected global, declare or define"},
    };
    for (const Case &c : table) {
        try {
            parseModule(c.source);
            FAIL() << c.label << ": expected parse error";
        } catch (const support::Error &error) {
            std::string what = error.what();
            EXPECT_NE(what.find(c.wherePrefix), std::string::npos)
                << c.label << ": missing '" << c.wherePrefix
                << "' in: " << what;
            EXPECT_NE(what.find(c.message), std::string::npos)
                << c.label << ": missing '" << c.message
                << "' in: " << what;
        }
    }
}

TEST(ParserTest, RoundTripThroughPrinter)
{
    const char *source = R"(
@g = external global i32
define i32 @f(i32 %a) {
entry:
  %1 = load i32, i32* @g
  %2 = add i32 %1, %a
  store i32 %2, i32* @g
  ret i32 %2
}
)";
    Module first = parseModule(source);
    Module second = parseModule(first.toString());
    EXPECT_EQ(first.toString(), second.toString());
}

TEST(ParserTest, StructTypes)
{
    Module m = parseModule(R"(
@s = external global {i32, {i8, i64}}
define i64 @f() {
entry:
  %p = getelementptr {i32, {i8, i64}}, {i32, {i8, i64}}* @s, i64 0, i64 1, i64 1
  %v = load i64, i64* %p
  ret i64 %v
}
)");
    EXPECT_EQ(m.globals[0].valueType->sizeInBytes(), 4u + 1u + 8u);
    const Instruction &gep = m.functions[0].blocks[0].insts[0];
    EXPECT_TRUE(gep.type->pointee()->isInteger());
    EXPECT_EQ(gep.type->pointee()->bitWidth(), 64u);
}

} // namespace
} // namespace keq::llvmir
