/** @file Concrete LLVM IR interpreter tests. */

#include <gtest/gtest.h>

#include "src/llvmir/interpreter.h"
#include "src/llvmir/layout_builder.h"
#include "src/llvmir/parser.h"

namespace keq::llvmir {
namespace {

using support::ApInt;

/** Parses, builds the layout, and runs @p fn_name on @p args. */
ExecResult
runProgram(const char *source, const std::string &fn_name,
           std::vector<ApInt> args,
           std::function<void(mem::ConcreteMemory &)> setup = {})
{
    Module module = parseModule(source);
    static mem::MemoryLayout layout; // reset per call:
    layout = mem::MemoryLayout();
    populateLayout(module, layout);
    mem::ConcreteMemory memory(layout);
    if (setup)
        setup(memory);
    Interpreter interp(module, memory);
    return interp.run(*module.findFunction(fn_name), args);
}

TEST(InterpreterTest, ArithmeticSequenceSum)
{
    const char *source = R"(
define i32 @arithm_seq_sum(i32 %a0, i32 %d, i32 %n) {
entry:
  br label %for.cond
for.cond:
  %s.0 = phi i32 [ %a0, %entry ], [ %add1, %for.inc ]
  %a.0 = phi i32 [ %a0, %entry ], [ %add, %for.inc ]
  %i.0 = phi i32 [ 1, %entry ], [ %inc, %for.inc ]
  %cmp = icmp ult i32 %i.0, %n
  br i1 %cmp, label %for.body, label %for.end
for.body:
  %add = add i32 %a.0, %d
  %add1 = add i32 %s.0, %add
  br label %for.inc
for.inc:
  %inc = add i32 %i.0, 1
  br label %for.cond
for.end:
  ret i32 %s.0
}
)";
    // Sum of 2, 5, 8, 11, 14 = 40.
    ExecResult result = runProgram(source, "@arithm_seq_sum",
                                   {ApInt(32, 2), ApInt(32, 3),
                                    ApInt(32, 5)});
    ASSERT_EQ(result.outcome, ExecOutcome::Returned);
    EXPECT_EQ(result.value.zext(), 40u);
}

TEST(InterpreterTest, PhiGroupsReadSimultaneously)
{
    // Swapping phis: correct parallel semantics swap x and y each trip.
    const char *source = R"(
define i32 @swap(i32 %n) {
entry:
  br label %head
head:
  %x = phi i32 [ 1, %entry ], [ %y, %body ]
  %y = phi i32 [ 2, %entry ], [ %x, %body ]
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %inc = add i32 %i, 1
  br label %head
done:
  ret i32 %x
}
)";
    // After odd trips x holds 2; sequential phi evaluation would yield
    // x == y.
    ExecResult result = runProgram(source, "@swap", {ApInt(32, 1)});
    ASSERT_EQ(result.outcome, ExecOutcome::Returned);
    EXPECT_EQ(result.value.zext(), 2u);
}

TEST(InterpreterTest, MemoryAndGep)
{
    const char *source = R"(
@g = external global [4 x i32]
define i32 @sumfirst2() {
entry:
  %p0 = getelementptr [4 x i32], [4 x i32]* @g, i64 0, i64 0
  %p1 = getelementptr [4 x i32], [4 x i32]* @g, i64 0, i64 1
  %a = load i32, i32* %p0
  %b = load i32, i32* %p1
  %s = add i32 %a, %b
  ret i32 %s
}
)";
    Module module = parseModule(source);
    mem::MemoryLayout layout;
    populateLayout(module, layout);
    mem::ConcreteMemory memory(layout);
    uint64_t base = layout.find("@g")->base;
    memory.write(base, ApInt(32, 10));
    memory.write(base + 4, ApInt(32, 32));
    Interpreter interp(module, memory);
    ExecResult result =
        interp.run(*module.findFunction("@sumfirst2"), {});
    ASSERT_EQ(result.outcome, ExecOutcome::Returned);
    EXPECT_EQ(result.value.zext(), 42u);
}

TEST(InterpreterTest, AllocaStoreLoad)
{
    const char *source = R"(
define i32 @local(i32 %v) {
entry:
  %slot = alloca i32
  store i32 %v, i32* %slot
  %r = load i32, i32* %slot
  ret i32 %r
}
)";
    ExecResult result = runProgram(source, "@local", {ApInt(32, 1234)});
    ASSERT_EQ(result.outcome, ExecOutcome::Returned);
    EXPECT_EQ(result.value.zext(), 1234u);
}

TEST(InterpreterTest, UndefinedBehaviourTraps)
{
    const char *div_source = R"(
define i32 @div(i32 %a, i32 %b) {
entry:
  %q = sdiv i32 %a, %b
  ret i32 %q
}
)";
    ExecResult by_zero = runProgram(div_source, "@div",
                                    {ApInt(32, 1), ApInt(32, 0)});
    EXPECT_EQ(by_zero.outcome, ExecOutcome::Trapped);
    EXPECT_EQ(by_zero.error, sem::ErrorKind::DivByZero);

    ExecResult overflow =
        runProgram(div_source, "@div",
                   {ApInt::signedMin(32), ApInt::allOnes(32)});
    EXPECT_EQ(overflow.outcome, ExecOutcome::Trapped);
    EXPECT_EQ(overflow.error, sem::ErrorKind::SignedOverflow);

    const char *nsw_source = R"(
define i32 @bump(i32 %a) {
entry:
  %r = add nsw i32 %a, 1
  ret i32 %r
}
)";
    ExecResult nsw_ovf =
        runProgram(nsw_source, "@bump", {ApInt::signedMax(32)});
    EXPECT_EQ(nsw_ovf.outcome, ExecOutcome::Trapped);
    EXPECT_EQ(nsw_ovf.error, sem::ErrorKind::SignedOverflow);
    ExecResult nsw_ok = runProgram(nsw_source, "@bump", {ApInt(32, 1)});
    EXPECT_EQ(nsw_ok.outcome, ExecOutcome::Returned);
    EXPECT_EQ(nsw_ok.value.zext(), 2u);
}

TEST(InterpreterTest, OutOfBoundsTraps)
{
    const char *source = R"(
@g = external global [4 x i8]
define i8 @peek(i64 %i) {
entry:
  %p = getelementptr [4 x i8], [4 x i8]* @g, i64 0, i64 %i
  %v = load i8, i8* %p
  ret i8 %v
}
)";
    ExecResult ok = runProgram(source, "@peek", {ApInt(64, 3)});
    EXPECT_EQ(ok.outcome, ExecOutcome::Returned);
    ExecResult oob = runProgram(source, "@peek", {ApInt(64, 4)});
    EXPECT_EQ(oob.outcome, ExecOutcome::Trapped);
    EXPECT_EQ(oob.error, sem::ErrorKind::OutOfBounds);
}

TEST(InterpreterTest, UnreachableTraps)
{
    ExecResult result = runProgram(
        "define i32 @bad() {\nentry:\n  unreachable\n}\n", "@bad", {});
    EXPECT_EQ(result.outcome, ExecOutcome::Trapped);
    EXPECT_EQ(result.error, sem::ErrorKind::Unreachable);
}

TEST(InterpreterTest, InternalCallsRecurse)
{
    const char *source = R"(
define i32 @fact(i32 %n) {
entry:
  %c = icmp ule i32 %n, 1
  br i1 %c, label %base, label %rec
base:
  ret i32 1
rec:
  %m = sub i32 %n, 1
  %f = call i32 @fact(i32 %m)
  %r = mul i32 %n, %f
  ret i32 %r
}
)";
    ExecResult result = runProgram(source, "@fact", {ApInt(32, 5)});
    ASSERT_EQ(result.outcome, ExecOutcome::Returned);
    EXPECT_EQ(result.value.zext(), 120u);
}

TEST(InterpreterTest, ExternalCallsUseHandlerAndTrace)
{
    const char *source = R"(
declare i32 @ext(i32)
define i32 @caller(i32 %a) {
entry:
  %r = call i32 @ext(i32 %a)
  ret i32 %r
}
)";
    Module module = parseModule(source);
    mem::MemoryLayout layout;
    populateLayout(module, layout);
    mem::ConcreteMemory memory(layout);
    Interpreter interp(module, memory);
    interp.setExternalHandler(
        [](const std::string &, const std::vector<ApInt> &args) {
            return ApInt(64, args[0].zext() * 2);
        });
    ExecResult result =
        interp.run(*module.findFunction("@caller"), {ApInt(32, 21)});
    ASSERT_EQ(result.outcome, ExecOutcome::Returned);
    EXPECT_EQ(result.value.zext(), 42u);
    ASSERT_EQ(result.callTrace.size(), 1u);
    EXPECT_EQ(result.callTrace[0], "@ext(21)=42");
}

TEST(InterpreterTest, StepLimitStopsInfiniteLoops)
{
    const char *source = R"(
define i32 @forever() {
entry:
  br label %spin
spin:
  br label %spin
}
)";
    Module module = parseModule(source);
    mem::MemoryLayout layout;
    populateLayout(module, layout);
    mem::ConcreteMemory memory(layout);
    Interpreter interp(module, memory);
    ExecResult result =
        interp.run(*module.findFunction("@forever"), {}, 100);
    EXPECT_EQ(result.outcome, ExecOutcome::StepLimit);
}

TEST(InterpreterTest, SwitchDispatch)
{
    const char *source = R"(
define i32 @classify(i32 %x) {
entry:
  switch i32 %x, label %dflt [
    i32 0, label %zero
    i32 7, label %seven
  ]
zero:
  ret i32 100
seven:
  ret i32 700
dflt:
  ret i32 -1
}
)";
    EXPECT_EQ(runProgram(source, "@classify", {ApInt(32, 0)})
                  .value.zext(),
              100u);
    EXPECT_EQ(runProgram(source, "@classify", {ApInt(32, 7)})
                  .value.zext(),
              700u);
    EXPECT_EQ(runProgram(source, "@classify", {ApInt(32, 3)})
                  .value.sext(),
              -1);
}

TEST(InterpreterTest, SelectAndCasts)
{
    const char *source = R"(
define i64 @pick(i32 %a, i32 %b) {
entry:
  %c = icmp sgt i32 %a, %b
  %m = select i1 %c, i32 %a, i32 %b
  %w = sext i32 %m to i64
  ret i64 %w
}
)";
    ExecResult result = runProgram(
        source, "@pick",
        {ApInt(32, static_cast<uint64_t>(-5)), ApInt(32, 3)});
    ASSERT_EQ(result.outcome, ExecOutcome::Returned);
    EXPECT_EQ(result.value.sext(), 3);
}

} // namespace
} // namespace keq::llvmir
