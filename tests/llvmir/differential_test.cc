/** @file Differential testing of the symbolic LLVM semantics against the
 *  concrete interpreter: for random inputs, exactly one symbolic path
 *  condition holds, and that path's result/trap/memory must match what
 *  the interpreter computes. Any disagreement is a soundness bug in one
 *  of the two semantics the validator relies on. */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/driver/corpus.h"
#include "src/llvmir/interpreter.h"
#include "src/llvmir/layout_builder.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/symbolic_semantics.h"
#include "src/llvmir/verifier.h"
#include "src/smt/evaluator.h"
#include "src/support/rng.h"

namespace keq::llvmir {
namespace {

using sem::Status;
using sem::SymbolicState;
using smt::Term;
using support::ApInt;
using support::Rng;

/** Module + symbolic machinery, mirroring the symbolic-test fixture. */
class DifferentialFixture
{
  public:
    explicit DifferentialFixture(std::string source)
        : module_(parseModule(source))
    {
        verifyModuleOrThrow(module_);
        populateLayout(module_, layout_);
        sem_ = std::make_unique<SymbolicSemantics>(module_, tf_, layout_);
    }

    SymbolicState
    entryState(const Function &fn)
    {
        SymbolicState state = sem_->makeState(
            {fn.name, "", "", ""}, {},
            tf_.var("mem", smt::Sort::memArray()), tf_.trueTerm());
        for (const Parameter &param : fn.params) {
            sem_->bindRegister(state, fn.name, param.name,
                               tf_.var(param.name.substr(1),
                                       smt::Sort::bitVec(
                                           param.type->valueBits())));
        }
        return state;
    }

    std::vector<SymbolicState>
    runToEnd(SymbolicState seed, size_t max_steps = 20000)
    {
        std::vector<SymbolicState> work{std::move(seed)};
        std::vector<SymbolicState> done;
        size_t steps = 0;
        while (!work.empty()) {
            if (++steps > max_steps) {
                ADD_FAILURE() << "step budget exceeded";
                break;
            }
            SymbolicState state = std::move(work.back());
            work.pop_back();
            if (state.status != Status::Running) {
                done.push_back(std::move(state));
                continue;
            }
            for (SymbolicState &succ : sem_->step(state))
                work.push_back(std::move(succ));
        }
        return done;
    }

    Module module_;
    smt::TermFactory tf_;
    mem::MemoryLayout layout_;
    std::unique_ptr<SymbolicSemantics> sem_;
};

/**
 * Runs @p fn both ways on @p args and checks agreement. The initial
 * memory is deterministic per-object noise, installed identically in the
 * concrete memory and the symbolic assignment.
 */
void
checkAgreement(DifferentialFixture &fx, const Function &fn,
               const std::vector<ApInt> &args)
{
    // Concrete run.
    mem::ConcreteMemory memory(fx.layout_);
    smt::Assignment env;
    for (const mem::MemoryObject &object : fx.layout_.objects()) {
        Rng fill(object.base);
        for (uint64_t i = 0; i < object.size; ++i) {
            uint8_t byte = static_cast<uint8_t>(fill.next());
            memory.poke(object.base + i, byte);
            env.setArrayByte("mem", object.base + i, byte);
        }
    }
    Interpreter interp(fx.module_, memory);
    ExecResult concrete = interp.run(fn, args, 50000);
    if (concrete.outcome == ExecOutcome::StepLimit)
        return; // not a behaviour, just a budget race

    // Symbolic run over the same entry state.
    for (size_t i = 0; i < fn.params.size(); ++i)
        env.setBv(fn.params[i].name.substr(1), args[i]);
    std::vector<SymbolicState> finals =
        fx.runToEnd(fx.entryState(fn));
    ASSERT_FALSE(finals.empty());

    // Path conditions must select exactly one final state.
    smt::Evaluator ev(env);
    const SymbolicState *chosen = nullptr;
    size_t true_paths = 0;
    for (const SymbolicState &final_state : finals) {
        if (ev.evalBool(final_state.pathCond)) {
            ++true_paths;
            chosen = &final_state;
        }
    }
    ASSERT_EQ(true_paths, 1u)
        << fn.name << ": path conditions must partition the inputs";

    if (concrete.outcome == ExecOutcome::Trapped) {
        EXPECT_EQ(chosen->status, Status::Error)
            << fn.name << ": interpreter trapped ("
            << sem::errorKindName(concrete.error)
            << ") but the symbolic path did not";
        if (chosen->status == Status::Error) {
            EXPECT_EQ(chosen->errorKind, concrete.error) << fn.name;
        }
        return;
    }

    ASSERT_EQ(chosen->status, Status::Exited)
        << fn.name << ": interpreter returned but the symbolic path "
        << sem::statusName(chosen->status);
    if (chosen->result) {
        EXPECT_EQ(ev.evalBv(chosen->result).zext(),
                  concrete.value.zext())
            << fn.name << ": return values diverged";
    }

    // The final symbolic memory, evaluated byte by byte, must equal the
    // interpreter's memory.
    for (const mem::MemoryObject &object : fx.layout_.objects()) {
        for (uint64_t i = 0; i < object.size; ++i) {
            uint64_t addr = object.base + i;
            ApInt byte = ev.evalBv(fx.tf_.select(
                chosen->memory, fx.tf_.bvConst(64, addr)));
            ASSERT_EQ(byte.zext(), uint64_t{memory.peek(addr)})
                << fn.name << ": memory diverged at " << object.name
                << "+" << i;
        }
    }
}

class LlvmDifferentialTest : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(LlvmDifferentialTest, SymbolicAgreesWithInterpreterOnCorpus)
{
    driver::CorpusOptions copts;
    copts.seed = GetParam();
    copts.functionCount = 8;
    copts.includeLoops = false; // symbolic execution enumerates paths
    copts.includeCalls = false; // call boundaries stop symbolic runs
    copts.nswPercent = 25;      // keep UB traps in the mix
    DifferentialFixture fx(driver::generateCorpusSource(copts));

    Rng rng(GetParam() * 40503);
    for (const Function &fn : fx.module_.functions) {
        if (fn.isDeclaration())
            continue;
        for (int trial = 0; trial < 3; ++trial) {
            std::vector<ApInt> args;
            for (const Parameter &param : fn.params) {
                uint64_t bits =
                    trial % 2 == 0 ? rng.below(64) : rng.next();
                args.push_back(ApInt(param.type->valueBits(), bits));
            }
            checkAgreement(fx, fn, args);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LlvmDifferentialTest,
                         ::testing::Range(uint64_t{7000},
                                          uint64_t{7006}));

TEST(LlvmDifferentialTest, BranchingSelectsTheConcretePath)
{
    DifferentialFixture fx(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp slt i32 %a, %b
  br i1 %c, label %then, label %else
then:
  %s = add i32 %a, %b
  ret i32 %s
else:
  %d = sub i32 %a, %b
  ret i32 %d
}
)");
    const Function *fn = fx.module_.findFunction("@f");
    ASSERT_NE(fn, nullptr);
    checkAgreement(fx, *fn, {ApInt(32, 3), ApInt(32, 10)});
    checkAgreement(fx, *fn, {ApInt(32, 10), ApInt(32, 3)});
    checkAgreement(fx, *fn, {ApInt(32, 0x80000000ull), ApInt(32, 1)});
}

TEST(LlvmDifferentialTest, DivisionByZeroTrapsOnBothSides)
{
    DifferentialFixture fx(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %q = udiv i32 %a, %b
  ret i32 %q
}
)");
    const Function *fn = fx.module_.findFunction("@f");
    ASSERT_NE(fn, nullptr);
    checkAgreement(fx, *fn, {ApInt(32, 100), ApInt(32, 7)});
    checkAgreement(fx, *fn, {ApInt(32, 100), ApInt(32, 0)});
}

TEST(LlvmDifferentialTest, NswOverflowTrapsOnBothSides)
{
    DifferentialFixture fx(R"(
define i32 @f(i32 %a) {
entry:
  %s = add nsw i32 %a, 1
  ret i32 %s
}
)");
    const Function *fn = fx.module_.findFunction("@f");
    ASSERT_NE(fn, nullptr);
    checkAgreement(fx, *fn, {ApInt(32, 41)});
    checkAgreement(fx, *fn, {ApInt(32, 0x7fffffffull)}); // INT_MAX + 1
}

TEST(LlvmDifferentialTest, GlobalMemoryRoundTrips)
{
    DifferentialFixture fx(R"(
@g = external global [16 x i8]
define i32 @f(i32 %a) {
entry:
  %p = getelementptr inbounds [16 x i8], [16 x i8]* @g, i64 0, i64 4
  %pw = bitcast i8* %p to i32*
  %old = load i32, i32* %pw
  store i32 %a, i32* %pw
  %r = add i32 %old, %a
  ret i32 %r
}
)");
    const Function *fn = fx.module_.findFunction("@f");
    ASSERT_NE(fn, nullptr);
    checkAgreement(fx, *fn, {ApInt(32, 0xdeadbeefull)});
    checkAgreement(fx, *fn, {ApInt(32, 0)});
}

} // namespace
} // namespace keq::llvmir
