/** @file Symbolic LLVM semantics tests: stepping, branching, UB splits,
 *  and agreement with the concrete interpreter on concrete inputs. */

#include <gtest/gtest.h>

#include "src/llvmir/interpreter.h"
#include "src/llvmir/layout_builder.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/symbolic_semantics.h"
#include "src/sem/sync_point.h"
#include "src/smt/evaluator.h"
#include "src/support/rng.h"

namespace keq::llvmir {
namespace {

using sem::Status;
using sem::SymbolicState;
using smt::Term;
using support::ApInt;

/** Test fixture owning a module and its symbolic machinery. */
class SymbolicFixture
{
  public:
    explicit SymbolicFixture(const char *source)
        : module_(parseModule(source))
    {
        populateLayout(module_, layout_);
        sem_ = std::make_unique<SymbolicSemantics>(module_, tf_, layout_);
    }

    /** Seeds a state at the entry of @p fn with fresh parameter vars. */
    SymbolicState
    entryState(const std::string &fn_name)
    {
        const Function *fn = module_.findFunction(fn_name);
        SymbolicState state = sem_->makeState(
            {fn_name, "", "", ""}, {},
            tf_.var("mem", smt::Sort::memArray()), tf_.trueTerm());
        for (const Parameter &param : fn->params) {
            sem_->bindRegister(state, fn_name, param.name,
                               tf_.var(param.name.substr(1),
                                       smt::Sort::bitVec(
                                           param.type->valueBits())));
        }
        return state;
    }

    /** Runs to quiescence: steps every Running state; returns terminals. */
    std::vector<SymbolicState>
    runToEnd(SymbolicState seed, size_t max_steps = 2000)
    {
        std::vector<SymbolicState> work{std::move(seed)};
        std::vector<SymbolicState> done;
        size_t steps = 0;
        while (!work.empty()) {
            if (++steps > max_steps)
                ADD_FAILURE() << "step budget exceeded";
            SymbolicState state = std::move(work.back());
            work.pop_back();
            if (state.status != Status::Running) {
                done.push_back(std::move(state));
                continue;
            }
            for (SymbolicState &succ : sem_->step(state))
                work.push_back(std::move(succ));
        }
        return done;
    }

    Module module_;
    smt::TermFactory tf_;
    mem::MemoryLayout layout_;
    std::unique_ptr<SymbolicSemantics> sem_;
};

TEST(LlvmSymbolicTest, StraightLineProducesExpression)
{
    SymbolicFixture fx(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %1 = add i32 %a, %b
  %2 = mul i32 %1, 2
  ret i32 %2
}
)");
    std::vector<SymbolicState> finals =
        fx.runToEnd(fx.entryState("@f"));
    ASSERT_EQ(finals.size(), 1u);
    EXPECT_EQ(finals[0].status, Status::Exited);
    Term expected = fx.tf_.bvMul(
        fx.tf_.bvAdd(fx.tf_.var("a", smt::Sort::bitVec(32)),
                     fx.tf_.var("b", smt::Sort::bitVec(32))),
        fx.tf_.bvConst(32, 2));
    EXPECT_EQ(finals[0].result, expected);
}

TEST(LlvmSymbolicTest, BranchSplitsWithDisjointConditions)
{
    SymbolicFixture fx(R"(
define i32 @f(i32 %a) {
entry:
  %c = icmp ult i32 %a, 10
  br i1 %c, label %small, label %big
small:
  ret i32 1
big:
  ret i32 2
}
)");
    std::vector<SymbolicState> finals =
        fx.runToEnd(fx.entryState("@f"));
    ASSERT_EQ(finals.size(), 2u);
    // Path conditions complement each other.
    Term disjunction =
        fx.tf_.mkOr(finals[0].pathCond, finals[1].pathCond);
    EXPECT_TRUE(disjunction.isTrue());
    Term conjunction =
        fx.tf_.mkAnd(finals[0].pathCond, finals[1].pathCond);
    // The two conditions are c and !c, so folding detects disjointness.
    EXPECT_TRUE(conjunction.isFalse());
}

TEST(LlvmSymbolicTest, NswAddSplitsIntoErrorState)
{
    SymbolicFixture fx(R"(
define i32 @f(i32 %a) {
entry:
  %r = add nsw i32 %a, 1
  ret i32 %r
}
)");
    std::vector<SymbolicState> finals =
        fx.runToEnd(fx.entryState("@f"));
    ASSERT_EQ(finals.size(), 2u);
    int errors = 0, exits = 0;
    for (const SymbolicState &state : finals) {
        if (state.status == Status::Error) {
            ++errors;
            EXPECT_EQ(state.errorKind, sem::ErrorKind::SignedOverflow);
        } else if (state.status == Status::Exited) {
            ++exits;
        }
    }
    EXPECT_EQ(errors, 1);
    EXPECT_EQ(exits, 1);
}

TEST(LlvmSymbolicTest, ConstantFoldedUbDoesNotSplit)
{
    SymbolicFixture fx(R"(
define i32 @f() {
entry:
  %r = add nsw i32 1, 2
  %q = sdiv i32 %r, 3
  ret i32 %q
}
)");
    std::vector<SymbolicState> finals =
        fx.runToEnd(fx.entryState("@f"));
    ASSERT_EQ(finals.size(), 1u);
    EXPECT_EQ(finals[0].status, Status::Exited);
    EXPECT_EQ(finals[0].result, fx.tf_.bvConst(32, 1));
}

TEST(LlvmSymbolicTest, CallStopsWithArguments)
{
    SymbolicFixture fx(R"(
declare i32 @ext(i32, i32)
define i32 @f(i32 %a) {
entry:
  %r = call i32 @ext(i32 %a, i32 7)
  ret i32 %r
}
)");
    std::vector<SymbolicState> finals =
        fx.runToEnd(fx.entryState("@f"));
    ASSERT_EQ(finals.size(), 1u);
    const SymbolicState &at_call = finals[0];
    EXPECT_EQ(at_call.status, Status::AtCall);
    EXPECT_EQ(at_call.callee, "@ext");
    EXPECT_EQ(at_call.callSiteId, "cs0");
    ASSERT_EQ(at_call.callArgs.size(), 2u);
    EXPECT_EQ(at_call.callArgs[1], fx.tf_.bvConst(32, 7));
}

TEST(LlvmSymbolicTest, AfterCallSeedPositionsPastTheCall)
{
    SymbolicFixture fx(R"(
declare i32 @ext(i32)
define i32 @f(i32 %a) {
entry:
  %r = call i32 @ext(i32 %a)
  %s = add i32 %r, 1
  ret i32 %s
}
)");
    SymbolicState state = fx.sem_->makeState(
        {"@f", "entry", "", "cs0"}, {},
        fx.tf_.var("mem", smt::Sort::memArray()), fx.tf_.trueTerm());
    fx.sem_->bindRegister(state, "@f", "%r",
                          fx.tf_.var("ret", smt::Sort::bitVec(32)));
    EXPECT_EQ(state.instIndex, 1u);
    std::vector<SymbolicState> finals = fx.runToEnd(std::move(state));
    ASSERT_EQ(finals.size(), 1u);
    EXPECT_EQ(finals[0].result,
              fx.tf_.bvAdd(fx.tf_.var("ret", smt::Sort::bitVec(32)),
                           fx.tf_.bvConst(32, 1)));
}

TEST(LlvmSymbolicTest, ConcreteLoadFoldsThroughMemory)
{
    SymbolicFixture fx(R"(
@g = external global i32
define i32 @f(i32 %v) {
entry:
  store i32 %v, i32* @g
  %r = load i32, i32* @g
  ret i32 %r
}
)");
    std::vector<SymbolicState> finals =
        fx.runToEnd(fx.entryState("@f"));
    ASSERT_EQ(finals.size(), 1u);
    // Store-forwarding through the hash-consed store chain: the result
    // is exactly the stored variable.
    EXPECT_EQ(finals[0].result,
              fx.tf_.var("v", smt::Sort::bitVec(32)));
}

TEST(LlvmSymbolicTest, HavocOnUnboundReadIsRecorded)
{
    SymbolicFixture fx(R"(
define i32 @f(i32 %a) {
entry:
  ret i32 %a
}
)");
    SymbolicState state = fx.sem_->makeState(
        {"@f", "", "", ""}, {},
        fx.tf_.var("mem", smt::Sort::memArray()), fx.tf_.trueTerm());
    Term first = fx.sem_->readRegister(state, "@f", "%a");
    Term second = fx.sem_->readRegister(state, "@f", "%a");
    EXPECT_EQ(first, second) << "havoc must be recorded in the state";
    EXPECT_TRUE(first.isVar());
}

TEST(LlvmSymbolicTest, RegisterWidths)
{
    SymbolicFixture fx(R"(
define i64 @f(i32 %a, i8 %b) {
entry:
  %c = icmp eq i32 %a, 0
  %w = zext i8 %b to i64
  ret i64 %w
}
)");
    EXPECT_EQ(fx.sem_->registerWidth("@f", "%a"), 32u);
    EXPECT_EQ(fx.sem_->registerWidth("@f", "%b"), 8u);
    EXPECT_EQ(fx.sem_->registerWidth("@f", "%c"), 1u);
    EXPECT_EQ(fx.sem_->registerWidth("@f", "%w"), 64u);
    EXPECT_EQ(fx.sem_->registerWidth("@f", sem::kReturnValueName), 64u);
}

/**
 * Differential property: symbolic execution with concrete inputs agrees
 * with the concrete interpreter on a loop+branch function.
 */
class SymbolicVsConcrete : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SymbolicVsConcrete, AgreeOnConcreteInputs)
{
    const char *source = R"(
define i32 @mix(i32 %a, i32 %b) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %acc = phi i32 [ %a, %entry ], [ %next, %body ]
  %c = icmp ult i32 %i, %b
  br i1 %c, label %body, label %done
body:
  %x = xor i32 %acc, %i
  %next = add i32 %x, 3
  %inc = add i32 %i, 1
  br label %head
done:
  %d = icmp sgt i32 %acc, 100
  %r = select i1 %d, i32 %acc, i32 0
  ret i32 %r
}
)";
    support::Rng rng(GetParam());
    uint32_t a = static_cast<uint32_t>(rng.next());
    uint32_t b = static_cast<uint32_t>(rng.below(20));

    // Concrete run.
    Module module = parseModule(source);
    mem::MemoryLayout layout;
    populateLayout(module, layout);
    mem::ConcreteMemory memory(layout);
    Interpreter interp(module, memory);
    ExecResult concrete = interp.run(*module.findFunction("@mix"),
                                     {ApInt(32, a), ApInt(32, b)});
    ASSERT_EQ(concrete.outcome, ExecOutcome::Returned);

    // Symbolic run with concrete bindings.
    SymbolicFixture fx(source);
    SymbolicState seed = fx.sem_->makeState(
        {"@mix", "", "", ""}, {},
        fx.tf_.var("mem", smt::Sort::memArray()), fx.tf_.trueTerm());
    fx.sem_->bindRegister(seed, "@mix", "%a", fx.tf_.bvConst(32, a));
    fx.sem_->bindRegister(seed, "@mix", "%b", fx.tf_.bvConst(32, b));
    std::vector<SymbolicState> finals = fx.runToEnd(std::move(seed));

    // With concrete inputs the path fully folds: exactly one feasible
    // final state, with a constant result matching the interpreter.
    std::vector<const SymbolicState *> feasible;
    for (const SymbolicState &state : finals) {
        if (!state.pathCond.isFalse())
            feasible.push_back(&state);
    }
    ASSERT_EQ(feasible.size(), 1u);
    ASSERT_EQ(feasible[0]->status, Status::Exited);
    ASSERT_TRUE(feasible[0]->result.isBvConst());
    EXPECT_EQ(feasible[0]->result.bvValue().zext(),
              concrete.value.zext());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymbolicVsConcrete,
                         ::testing::Range(uint64_t{0}, uint64_t{12}));

} // namespace
} // namespace keq::llvmir
