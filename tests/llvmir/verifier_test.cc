/** @file Verifier tests: structural well-formedness diagnostics. */

#include <gtest/gtest.h>

#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/support/diagnostics.h"

namespace keq::llvmir {
namespace {

std::vector<std::string>
problemsOf(const char *source)
{
    return verifyModule(parseModule(source));
}

TEST(VerifierTest, AcceptsWellFormedModule)
{
    EXPECT_TRUE(problemsOf(R"(
define i32 @f(i32 %a) {
entry:
  %1 = add i32 %a, 1
  ret i32 %1
}
)")
                    .empty());
}

TEST(VerifierTest, RejectsUseOfUndefinedValue)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f() {
entry:
  %1 = add i32 %ghost, 1
  ret i32 %1
}
)");
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("%ghost"), std::string::npos);
}

TEST(VerifierTest, RejectsDuplicateDefinition)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f(i32 %a) {
entry:
  %1 = add i32 %a, 1
  %1 = add i32 %a, 2
  ret i32 %1
}
)");
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("multiple definitions"),
              std::string::npos);
}

TEST(VerifierTest, RejectsMissingTerminator)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f(i32 %a) {
entry:
  %1 = add i32 %a, 1
next:
  ret i32 %1
}
)");
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("terminator"), std::string::npos);
}

TEST(VerifierTest, RejectsBranchToUnknownBlock)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f() {
entry:
  br label %nowhere
}
)");
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("%nowhere"), std::string::npos);
}

TEST(VerifierTest, RejectsPhiPredecessorMismatch)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f(i32 %a) {
entry:
  br label %join
other:
  br label %join
join:
  %x = phi i32 [ %a, %entry ]
  ret i32 %x
}
)");
    // `other` is unreachable but still a predecessor; the phi lists only
    // `entry`.
    ASSERT_FALSE(problems.empty());
    bool found = false;
    for (const std::string &problem : problems) {
        if (problem.find("phi incoming blocks") != std::string::npos)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(VerifierTest, RejectsUnknownGlobal)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f() {
entry:
  %1 = load i32, i32* @nope
  ret i32 %1
}
)");
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("@nope"), std::string::npos);
}

TEST(VerifierTest, RejectsDuplicateFunctions)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f() {
entry:
  ret i32 0
}
define i32 @f() {
entry:
  ret i32 1
}
)");
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("duplicate function"), std::string::npos);
}

TEST(VerifierTest, ThrowVariantAggregatesProblems)
{
    Module m = parseModule(R"(
define i32 @f() {
entry:
  %1 = add i32 %ghost, %phantom
  ret i32 %1
}
)");
    EXPECT_THROW(verifyModuleOrThrow(m), support::Error);
}

TEST(VerifierTest, RejectsDuplicateSwitchCases)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f(i32 %x) {
entry:
  switch i32 %x, label %d [
    i32 1, label %d
    i32 1, label %d
  ]
d:
  ret i32 0
}
)");
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("duplicate switch case"),
              std::string::npos);
}

TEST(VerifierTest, DeclarationsSkipBodyChecks)
{
    EXPECT_TRUE(problemsOf("declare i32 @ext(i32)\n").empty());
}

// --- Type-consistency hardening (fuzz generator bring-up) ----------------
//
// The random program generator proves its output well-typed by running
// it through the verifier; each malformed construct it could emit must be
// an explicit rejection here, not an assertion failure in the semantics.

/** True when some problem message contains @p needle. */
bool
anyProblemContains(const std::vector<std::string> &problems,
                   const std::string &needle)
{
    for (const std::string &problem : problems) {
        if (problem.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

TEST(VerifierTypeTest, RejectsUseAtWrongType)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f(i32 %a) {
entry:
  %w = zext i32 %a to i64
  %x = add i32 %w, 1
  ret i32 %x
}
)");
    EXPECT_TRUE(anyProblemContains(problems, "defined as"));
}

TEST(VerifierTypeTest, RejectsBinopOperandTypeMismatch)
{
    std::vector<std::string> problems = problemsOf(R"(
define i64 @f(i64 %a, i32 %b) {
entry:
  %x = add i64 %a, %b
  ret i64 %x
}
)");
    ASSERT_FALSE(problems.empty());
}

TEST(VerifierTypeTest, RejectsNonWideningZext)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f(i32 %a) {
entry:
  %x = zext i32 %a to i32
  ret i32 %x
}
)");
    EXPECT_TRUE(anyProblemContains(problems, "must widen"));
}

TEST(VerifierTypeTest, RejectsNonNarrowingTrunc)
{
    std::vector<std::string> problems = problemsOf(R"(
define i64 @f(i32 %a) {
entry:
  %x = trunc i32 %a to i64
  ret i64 %x
}
)");
    EXPECT_TRUE(anyProblemContains(problems, "must narrow"));
}

TEST(VerifierTypeTest, RejectsLoadPointeeMismatch)
{
    std::vector<std::string> problems = problemsOf(R"(
@g = external global i32
define i64 @f() {
entry:
  %x = load i64, i32* @g
  ret i64 %x
}
)");
    EXPECT_TRUE(anyProblemContains(problems, "load result type"));
}

TEST(VerifierTypeTest, RejectsStorePointeeMismatch)
{
    std::vector<std::string> problems = problemsOf(R"(
@g = external global i32
define void @f(i64 %v) {
entry:
  store i64 %v, i32* @g
  ret void
}
)");
    EXPECT_TRUE(anyProblemContains(problems, "stored value type"));
}

TEST(VerifierTypeTest, RejectsStoreThroughNonPointer)
{
    std::vector<std::string> problems = problemsOf(R"(
define void @f(i32 %v, i32 %p) {
entry:
  store i32 %v, i32 %p
  ret void
}
)");
    EXPECT_TRUE(anyProblemContains(problems, "non-pointer"));
}

TEST(VerifierTypeTest, RejectsGepSourceTypeMismatch)
{
    std::vector<std::string> problems = problemsOf(R"(
@b = external global [8 x i8]
define i8* @f() {
entry:
  %p = getelementptr [4 x i8], [8 x i8]* @b, i64 0, i64 1
  ret i8* %p
}
)");
    EXPECT_TRUE(anyProblemContains(problems, "getelementptr"));
}

TEST(VerifierTypeTest, RejectsNonI1BranchCondition)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f(i32 %a) {
entry:
  br i32 %a, label %t, label %e
t:
  ret i32 1
e:
  ret i32 0
}
)");
    EXPECT_TRUE(anyProblemContains(problems, "not i1"));
}

TEST(VerifierTypeTest, RejectsNonI1SelectCondition)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f(i32 %a) {
entry:
  %x = select i32 %a, i32 1, i32 2
  ret i32 %x
}
)");
    EXPECT_TRUE(anyProblemContains(problems, "select condition"));
}

TEST(VerifierTypeTest, RejectsSelectArmMismatch)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f(i1 %c, i64 %a) {
entry:
  %x = select i1 %c, i32 1, i64 %a
  ret i32 %x
}
)");
    EXPECT_TRUE(anyProblemContains(problems, "select arm"));
}

TEST(VerifierTypeTest, RejectsPhiIncomingTypeMismatch)
{
    // The parser forces incoming types to the phi type, so build the
    // mismatch in memory — the fuzz shrinker mutates modules directly
    // and relies on the verifier to reject bad rewrites.
    Module m = parseModule(R"(
define i32 @f(i32 %a) {
entry:
  br label %join
join:
  %x = phi i32 [ %a, %entry ]
  ret i32 %x
}
)");
    Function &fn = m.functions.front();
    Instruction &phi = fn.blocks[1].insts.front();
    phi.incoming[0].value.type = m.types->intType(64);
    std::vector<std::string> problems = verifyModule(m);
    EXPECT_TRUE(anyProblemContains(problems, "phi incoming type"));
}

TEST(VerifierTypeTest, RejectsSwitchCaseWidthMismatch)
{
    Module m = parseModule(R"(
define i32 @f(i32 %x) {
entry:
  switch i32 %x, label %d [
    i32 1, label %d
  ]
d:
  ret i32 0
}
)");
    Instruction &sw = m.functions.front().blocks[0].insts.front();
    sw.switchCases[0].first = support::ApInt(64, 1);
    std::vector<std::string> problems = verifyModule(m);
    EXPECT_TRUE(anyProblemContains(problems, "switch case width"));
}

TEST(VerifierTypeTest, RejectsRetTypeMismatch)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f(i64 %a) {
entry:
  ret i64 %a
}
)");
    EXPECT_TRUE(anyProblemContains(problems, "ret type"));
}

TEST(VerifierTypeTest, RejectsRetVoidInValueFunction)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f() {
entry:
  ret void
}
)");
    EXPECT_TRUE(anyProblemContains(problems, "ret void"));
}

TEST(VerifierTypeTest, RejectsIcmpOperandMismatch)
{
    Module m = parseModule(R"(
define i1 @f(i32 %a, i32 %b) {
entry:
  %c = icmp eq i32 %a, %b
  ret i1 %c
}
)");
    Instruction &icmp = m.functions.front().blocks[0].insts.front();
    icmp.operands[1].type = m.types->intType(64);
    std::vector<std::string> problems = verifyModule(m);
    EXPECT_TRUE(anyProblemContains(problems, "icmp operand types"));
}

TEST(VerifierTypeTest, RejectsGlobalAtNonPointerType)
{
    Module m = parseModule(R"(
@g = external global i32
define i32 @f() {
entry:
  %x = load i32, i32* @g
  ret i32 %x
}
)");
    Instruction &load = m.functions.front().blocks[0].insts.front();
    load.operands[0].type = m.types->intType(32);
    std::vector<std::string> problems = verifyModule(m);
    EXPECT_TRUE(anyProblemContains(problems, "non-pointer type"));
}

TEST(VerifierTypeTest, AcceptsWellTypedKitchenSink)
{
    // One function exercising every checked construct at correct types.
    EXPECT_TRUE(problemsOf(R"(
@buf = external global [16 x i8]
@g = external global i32
declare i32 @ext(i32)
define i32 @f(i32 %a, i64 %b, i1 %c) {
entry:
  %w = zext i32 %a to i64
  %n = trunc i64 %b to i32
  %s = select i1 %c, i32 %n, i32 7
  %p = getelementptr [16 x i8], [16 x i8]* @buf, i64 0, i64 3
  %pw = bitcast i8* %p to i16*
  store i16 9, i16* %pw
  %v = load i32, i32* @g
  %slot = alloca i32
  store i32 %v, i32* %slot
  %r = call i32 @ext(i32 %s)
  %cmp = icmp slt i32 %r, %v
  br i1 %cmp, label %t, label %e
t:
  br label %join
e:
  br label %join
join:
  %m = phi i32 [ %r, %t ], [ %v, %e ]
  ret i32 %m
}
)")
                    .empty());
}

} // namespace
} // namespace keq::llvmir
