/** @file Verifier tests: structural well-formedness diagnostics. */

#include <gtest/gtest.h>

#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/support/diagnostics.h"

namespace keq::llvmir {
namespace {

std::vector<std::string>
problemsOf(const char *source)
{
    return verifyModule(parseModule(source));
}

TEST(VerifierTest, AcceptsWellFormedModule)
{
    EXPECT_TRUE(problemsOf(R"(
define i32 @f(i32 %a) {
entry:
  %1 = add i32 %a, 1
  ret i32 %1
}
)")
                    .empty());
}

TEST(VerifierTest, RejectsUseOfUndefinedValue)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f() {
entry:
  %1 = add i32 %ghost, 1
  ret i32 %1
}
)");
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("%ghost"), std::string::npos);
}

TEST(VerifierTest, RejectsDuplicateDefinition)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f(i32 %a) {
entry:
  %1 = add i32 %a, 1
  %1 = add i32 %a, 2
  ret i32 %1
}
)");
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("multiple definitions"),
              std::string::npos);
}

TEST(VerifierTest, RejectsMissingTerminator)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f(i32 %a) {
entry:
  %1 = add i32 %a, 1
next:
  ret i32 %1
}
)");
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("terminator"), std::string::npos);
}

TEST(VerifierTest, RejectsBranchToUnknownBlock)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f() {
entry:
  br label %nowhere
}
)");
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("%nowhere"), std::string::npos);
}

TEST(VerifierTest, RejectsPhiPredecessorMismatch)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f(i32 %a) {
entry:
  br label %join
other:
  br label %join
join:
  %x = phi i32 [ %a, %entry ]
  ret i32 %x
}
)");
    // `other` is unreachable but still a predecessor; the phi lists only
    // `entry`.
    ASSERT_FALSE(problems.empty());
    bool found = false;
    for (const std::string &problem : problems) {
        if (problem.find("phi incoming blocks") != std::string::npos)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(VerifierTest, RejectsUnknownGlobal)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f() {
entry:
  %1 = load i32, i32* @nope
  ret i32 %1
}
)");
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("@nope"), std::string::npos);
}

TEST(VerifierTest, RejectsDuplicateFunctions)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f() {
entry:
  ret i32 0
}
define i32 @f() {
entry:
  ret i32 1
}
)");
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("duplicate function"), std::string::npos);
}

TEST(VerifierTest, ThrowVariantAggregatesProblems)
{
    Module m = parseModule(R"(
define i32 @f() {
entry:
  %1 = add i32 %ghost, %phantom
  ret i32 %1
}
)");
    EXPECT_THROW(verifyModuleOrThrow(m), support::Error);
}

TEST(VerifierTest, RejectsDuplicateSwitchCases)
{
    std::vector<std::string> problems = problemsOf(R"(
define i32 @f(i32 %x) {
entry:
  switch i32 %x, label %d [
    i32 1, label %d
    i32 1, label %d
  ]
d:
  ret i32 0
}
)");
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("duplicate switch case"),
              std::string::npos);
}

TEST(VerifierTest, DeclarationsSkipBodyChecks)
{
    EXPECT_TRUE(problemsOf("declare i32 @ext(i32)\n").empty());
}

} // namespace
} // namespace keq::llvmir
