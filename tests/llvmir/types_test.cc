/** @file Tests for the LLVM IR type system (packed aggregate layout). */

#include <gtest/gtest.h>

#include "src/llvmir/types.h"
#include "src/support/diagnostics.h"

namespace keq::llvmir {
namespace {

TEST(TypesTest, IntegerTypesInterned)
{
    TypeContext ctx;
    EXPECT_EQ(ctx.intType(32), ctx.intType(32));
    EXPECT_NE(ctx.intType(32), ctx.intType(64));
    EXPECT_EQ(ctx.intType(32)->bitWidth(), 32u);
    EXPECT_EQ(ctx.intType(32)->sizeInBytes(), 4u);
    EXPECT_EQ(ctx.intType(1)->sizeInBytes(), 1u);
}

TEST(TypesTest, UnsupportedWidthAsserts)
{
    TypeContext ctx;
    EXPECT_THROW(ctx.intType(96), support::InternalError);
    EXPECT_THROW(ctx.intType(7), support::InternalError);
}

TEST(TypesTest, Pointers)
{
    TypeContext ctx;
    const Type *p = ctx.pointerTo(ctx.intType(32));
    EXPECT_TRUE(p->isPointer());
    EXPECT_EQ(p->pointee(), ctx.intType(32));
    EXPECT_EQ(p->sizeInBytes(), 8u);
    EXPECT_EQ(p->valueBits(), 64u);
    EXPECT_EQ(p, ctx.pointerTo(ctx.intType(32)));
    EXPECT_EQ(p->toString(), "i32*");
}

TEST(TypesTest, Arrays)
{
    TypeContext ctx;
    const Type *arr = ctx.arrayOf(ctx.intType(8), 8);
    EXPECT_TRUE(arr->isArray());
    EXPECT_EQ(arr->arrayLength(), 8u);
    EXPECT_EQ(arr->sizeInBytes(), 8u);
    EXPECT_EQ(arr->toString(), "[8 x i8]");
    // Nested arrays multiply.
    const Type *nested = ctx.arrayOf(arr, 3);
    EXPECT_EQ(nested->sizeInBytes(), 24u);
    EXPECT_EQ(nested->toString(), "[3 x [8 x i8]]");
}

TEST(TypesTest, StructsArePacked)
{
    TypeContext ctx;
    const Type *s = ctx.structOf(
        {ctx.intType(8), ctx.intType(32), ctx.intType(16)});
    EXPECT_TRUE(s->isStruct());
    // Packed layout (Section 4.2: no alignment modelling).
    EXPECT_EQ(s->sizeInBytes(), 7u);
    EXPECT_EQ(s->fieldOffset(0), 0u);
    EXPECT_EQ(s->fieldOffset(1), 1u);
    EXPECT_EQ(s->fieldOffset(2), 5u);
    EXPECT_EQ(s->toString(), "{i8, i32, i16}");
}

TEST(TypesTest, NestedAggregates)
{
    TypeContext ctx;
    const Type *inner = ctx.structOf({ctx.intType(16), ctx.intType(16)});
    const Type *outer = ctx.arrayOf(inner, 4);
    EXPECT_EQ(outer->sizeInBytes(), 16u);
    const Type *deep = ctx.structOf({outer, ctx.intType(64)});
    EXPECT_EQ(deep->sizeInBytes(), 24u);
    EXPECT_EQ(deep->fieldOffset(1), 16u);
}

TEST(TypesTest, VoidType)
{
    TypeContext ctx;
    EXPECT_TRUE(ctx.voidType()->isVoid());
    EXPECT_FALSE(ctx.voidType()->isFirstClass());
    EXPECT_EQ(ctx.voidType()->toString(), "void");
}

} // namespace
} // namespace keq::llvmir
