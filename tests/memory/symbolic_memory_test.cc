/** @file Tests for symbolic bounds classification (Section 4.6's OOB
 *  error-state conditions). */

#include <gtest/gtest.h>

#include "src/memory/symbolic_memory.h"

namespace keq::mem {
namespace {

class SymbolicMemoryTest : public ::testing::Test
{
  protected:
    SymbolicMemoryTest() : symmem_(tf_, layout_)
    {
        global_ = &layout_.addGlobal("@g", 12);
    }

    smt::TermFactory tf_;
    MemoryLayout layout_;
    SymbolicMemory symmem_{tf_, layout_};
    const MemoryObject *global_;
};

TEST_F(SymbolicMemoryTest, ConstantAddressDecidesExactly)
{
    AccessCheck ok =
        symmem_.checkAccess(tf_.bvConst(64, global_->base), 4);
    EXPECT_TRUE(ok.definitelyInBounds());

    AccessCheck straddle =
        symmem_.checkAccess(tf_.bvConst(64, global_->base + 10), 4);
    EXPECT_TRUE(straddle.definitelyOutOfBounds());

    AccessCheck wild = symmem_.checkAccess(tf_.bvConst(64, 0x10), 1);
    EXPECT_TRUE(wild.definitelyOutOfBounds());
}

TEST_F(SymbolicMemoryTest, SymbolicAddressYieldsCondition)
{
    smt::Term addr = tf_.var("p", smt::Sort::bitVec(64));
    AccessCheck check = symmem_.checkAccess(addr, 4);
    EXPECT_FALSE(check.definitelyInBounds());
    EXPECT_FALSE(check.definitelyOutOfBounds());
    EXPECT_TRUE(check.inBounds.sort().isBool());
}

TEST_F(SymbolicMemoryTest, AccessLargerThanEveryObjectIsAlwaysOob)
{
    smt::Term addr = tf_.var("p", smt::Sort::bitVec(64));
    AccessCheck check = symmem_.checkAccess(addr, 16); // object is 12
    EXPECT_TRUE(check.definitelyOutOfBounds());
}

TEST_F(SymbolicMemoryTest, ReadWriteDelegateToFactory)
{
    smt::Term mem = tf_.var("m", smt::Sort::memArray());
    smt::Term addr = tf_.bvConst(64, global_->base);
    smt::Term value = tf_.bvConst(32, 0xCAFEBABE);
    smt::Term written = symmem_.write(mem, addr, value, 4);
    EXPECT_EQ(symmem_.read(written, addr, 4), value);
}

TEST_F(SymbolicMemoryTest, MultipleObjectsDisjunction)
{
    layout_.addGlobal("@h", 8);
    smt::Term addr = tf_.var("q", smt::Sort::bitVec(64));
    AccessCheck check = symmem_.checkAccess(addr, 4);
    // Condition must mention both objects (an OR at top level).
    EXPECT_EQ(check.inBounds.kind(), smt::Kind::Or);
}

} // namespace
} // namespace keq::mem
