/** @file Tests for the common memory layout (Section 4.4). */

#include <gtest/gtest.h>

#include "src/memory/layout.h"
#include "src/support/diagnostics.h"

namespace keq::mem {
namespace {

TEST(LayoutTest, GlobalsPlacedWithGuardGaps)
{
    MemoryLayout layout;
    // Copies, not references: registering @b may reallocate the object
    // vector and invalidate a reference returned for @a (caught by the
    // AddressSanitizer build).
    MemoryObject a = layout.addGlobal("@a", 12);
    MemoryObject b = layout.addGlobal("@b", 8);
    EXPECT_EQ(a.base, MemoryLayout::kGlobalBase);
    // At least a guard gap separates consecutive objects.
    EXPECT_GE(b.base, a.base + a.size + MemoryLayout::kGuardGap);
    // 16-byte alignment of every base.
    EXPECT_EQ(a.base % 16, 0u);
    EXPECT_EQ(b.base % 16, 0u);
}

TEST(LayoutTest, StackSlotsLiveInTheStackRegion)
{
    MemoryLayout layout;
    const MemoryObject &slot = layout.addStackSlot("@f", "%p", 4);
    EXPECT_EQ(slot.name, "@f/%p");
    EXPECT_GE(slot.base, MemoryLayout::kStackBase);
}

TEST(LayoutTest, FindByName)
{
    MemoryLayout layout;
    layout.addGlobal("@g", 4);
    layout.addStackSlot("@f", "%x", 8);
    EXPECT_NE(layout.find("@g"), nullptr);
    EXPECT_NE(layout.find("@f/%x"), nullptr);
    EXPECT_EQ(layout.find("@missing"), nullptr);
}

TEST(LayoutTest, DuplicateNamesAssert)
{
    MemoryLayout layout;
    layout.addGlobal("@g", 4);
    EXPECT_THROW(layout.addGlobal("@g", 4), support::InternalError);
}

TEST(LayoutTest, ZeroSizedAllocationAsserts)
{
    MemoryLayout layout;
    EXPECT_THROW(layout.addGlobal("@z", 0), support::InternalError);
}

TEST(LayoutTest, ContainmentQueries)
{
    MemoryLayout layout;
    const MemoryObject &g = layout.addGlobal("@g", 12);
    // Fully inside.
    EXPECT_EQ(layout.containing(g.base, 4), &layout.objects()[0]);
    EXPECT_EQ(layout.containing(g.base + 8, 4), &layout.objects()[0]);
    // Straddling the end: out of bounds.
    EXPECT_EQ(layout.containing(g.base + 8, 8), nullptr);
    // Just past the end.
    EXPECT_EQ(layout.containing(g.base + 12, 1), nullptr);
    // In the guard gap.
    EXPECT_EQ(layout.containing(g.base + g.size + 1, 1), nullptr);
    // Far away.
    EXPECT_EQ(layout.containing(0, 1), nullptr);
}

TEST(LayoutTest, ObjectContainsEdgeCases)
{
    MemoryObject object{"@o", 100, 8};
    EXPECT_TRUE(object.contains(100, 8));
    EXPECT_TRUE(object.contains(107, 1));
    EXPECT_FALSE(object.contains(107, 2));
    EXPECT_FALSE(object.contains(99, 1));
    // Access larger than the object can never be contained.
    EXPECT_FALSE(object.contains(100, 9));
    // Overflow-safe even near the address-space top.
    MemoryObject high{"@h", ~uint64_t{0} - 4, 4};
    EXPECT_TRUE(high.contains(~uint64_t{0} - 4, 4));
    EXPECT_FALSE(high.contains(~uint64_t{0} - 4, 8));
}

} // namespace
} // namespace keq::mem
