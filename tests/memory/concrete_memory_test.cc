/** @file Tests for the bounds-checked concrete memory. */

#include <gtest/gtest.h>

#include "src/memory/concrete_memory.h"

namespace keq::mem {
namespace {

using support::ApInt;

class ConcreteMemoryTest : public ::testing::Test
{
  protected:
    ConcreteMemoryTest()
    {
        global_ = &layout_.addGlobal("@g", 16);
    }

    MemoryLayout layout_;
    const MemoryObject *global_;
};

TEST_F(ConcreteMemoryTest, LittleEndianRoundTrip)
{
    ConcreteMemory memory(layout_);
    EXPECT_TRUE(memory.write(global_->base, ApInt(32, 0x11223344)));
    ConcreteAccess read = memory.read(global_->base, 4);
    ASSERT_TRUE(read.ok);
    EXPECT_EQ(read.value.zext(), 0x11223344u);
    EXPECT_EQ(memory.peek(global_->base), 0x44);
    EXPECT_EQ(memory.peek(global_->base + 3), 0x11);
}

TEST_F(ConcreteMemoryTest, PartialOverwrite)
{
    ConcreteMemory memory(layout_);
    memory.write(global_->base, ApInt(32, 0xAABBCCDD));
    memory.write(global_->base + 1, ApInt(16, 0x1122));
    ConcreteAccess read = memory.read(global_->base, 4);
    ASSERT_TRUE(read.ok);
    EXPECT_EQ(read.value.zext(), 0xAA1122DDu);
}

TEST_F(ConcreteMemoryTest, UninitializedReadsZero)
{
    ConcreteMemory memory(layout_);
    ConcreteAccess read = memory.read(global_->base, 8);
    ASSERT_TRUE(read.ok);
    EXPECT_EQ(read.value.zext(), 0u);
}

TEST_F(ConcreteMemoryTest, OutOfBoundsRejected)
{
    ConcreteMemory memory(layout_);
    EXPECT_FALSE(memory.read(global_->base + 13, 4).ok);
    EXPECT_FALSE(memory.write(global_->base + 15, ApInt(16, 1)));
    EXPECT_FALSE(memory.read(0x10, 1).ok);
    // Boundary access is fine.
    EXPECT_TRUE(memory.read(global_->base + 12, 4).ok);
}

TEST_F(ConcreteMemoryTest, PokePeekBypassBounds)
{
    ConcreteMemory memory(layout_);
    memory.poke(0x1, 0x7f);
    EXPECT_EQ(memory.peek(0x1), 0x7f);
}

} // namespace
} // namespace keq::mem
