/** @file End-to-end KEQ checker tests over the full TV pipeline. */

#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"

namespace keq::checker {
namespace {

driver::FunctionReport
validate(const char *source, driver::PipelineOptions options = {})
{
    llvmir::Module module = llvmir::parseModule(source);
    llvmir::verifyModuleOrThrow(module);
    return driver::validateFunction(module, module.functions.back(),
                                    options);
}

TEST(CheckerTest, StraightLineArithmetic)
{
    driver::FunctionReport report = validate(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %1 = add i32 %a, %b
  %2 = xor i32 %1, 255
  %3 = mul i32 %2, 3
  %4 = sub i32 %3, %a
  ret i32 %4
}
)");
    EXPECT_EQ(report.verdict.kind, VerdictKind::Equivalent)
        << report.detail;
    // Straight-line identical computations discharge without Z3.
    EXPECT_EQ(report.verdict.stats.solverQueries, 0u);
}

TEST(CheckerTest, BranchesAndPhis)
{
    driver::FunctionReport report = validate(R"(
define i32 @max(i32 %a, i32 %b) {
entry:
  %c = icmp sgt i32 %a, %b
  br i1 %c, label %t, label %e
t:
  br label %join
e:
  br label %join
join:
  %m = phi i32 [ %a, %t ], [ %b, %e ]
  ret i32 %m
}
)");
    EXPECT_EQ(report.verdict.kind, VerdictKind::Equivalent)
        << report.detail;
}

TEST(CheckerTest, LoopWithAccumulators)
{
    driver::FunctionReport report = validate(R"(
define i32 @sum(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %s = phi i32 [ 0, %entry ], [ %snext, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %snext = add i32 %s, %i
  %inc = add i32 %i, 1
  br label %head
done:
  ret i32 %s
}
)");
    EXPECT_EQ(report.verdict.kind, VerdictKind::Equivalent)
        << report.detail;
}

TEST(CheckerTest, MemoryThroughGlobalsAndLocals)
{
    driver::FunctionReport report = validate(R"(
@g = external global i32
define i32 @f(i32 %v) {
entry:
  %slot = alloca i32
  store i32 %v, i32* %slot
  %w = load i32, i32* @g
  %x = load i32, i32* %slot
  %y = add i32 %w, %x
  store i32 %y, i32* @g
  ret i32 %y
}
)");
    EXPECT_EQ(report.verdict.kind, VerdictKind::Equivalent)
        << report.detail;
}

TEST(CheckerTest, SymbolicIndexingIntoArray)
{
    driver::FunctionReport report = validate(R"(
@buf = external global [64 x i8]
define i32 @f(i32 %i) {
entry:
  %w = zext i32 %i to i64
  %m = and i64 %w, 63
  %p = getelementptr [64 x i8], [64 x i8]* @buf, i64 0, i64 %m
  %b = load i8, i8* %p
  %r = zext i8 %b to i32
  ret i32 %r
}
)");
    EXPECT_EQ(report.verdict.kind, VerdictKind::Equivalent)
        << report.detail;
}

TEST(CheckerTest, CallsSynchronizeAtBoundaries)
{
    driver::FunctionReport report = validate(R"(
declare i32 @ext(i32, i32)
define i32 @f(i32 %a, i32 %b) {
entry:
  %r = call i32 @ext(i32 %a, i32 7)
  %s = add i32 %r, %b
  %t = call i32 @ext(i32 %s, i32 %r)
  ret i32 %t
}
)");
    EXPECT_EQ(report.verdict.kind, VerdictKind::Equivalent)
        << report.detail;
}

TEST(CheckerTest, VoidFunction)
{
    driver::FunctionReport report = validate(R"(
@g = external global i32
define void @f(i32 %v) {
entry:
  store i32 %v, i32* @g
  ret void
}
)");
    EXPECT_EQ(report.verdict.kind, VerdictKind::Equivalent)
        << report.detail;
}

TEST(CheckerTest, SelectLowering)
{
    driver::FunctionReport report = validate(R"(
define i32 @pick(i32 %a, i32 %b) {
entry:
  %c = icmp ult i32 %a, %b
  %r = select i1 %c, i32 %a, i32 %b
  ret i32 %r
}
)");
    // The branchless mask lowering needs a real Z3 proof (the terms
    // differ structurally), so this exercises the solver path.
    EXPECT_EQ(report.verdict.kind, VerdictKind::Equivalent)
        << report.detail;
}

TEST(CheckerTest, NarrowTypesAndCasts)
{
    driver::FunctionReport report = validate(R"(
define i16 @f(i8 %a, i16 %b) {
entry:
  %w = zext i8 %a to i16
  %x = add i16 %w, %b
  %t = trunc i16 %x to i8
  %y = sext i8 %t to i16
  ret i16 %y
}
)");
    EXPECT_EQ(report.verdict.kind, VerdictKind::Equivalent)
        << report.detail;
}

TEST(CheckerTest, I1ValuesAcrossWidths)
{
    driver::FunctionReport report = validate(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp eq i32 %a, %b
  %z = zext i1 %c to i32
  %d = icmp ne i32 %a, 0
  %y = zext i1 %d to i32
  %r = add i32 %z, %y
  ret i32 %r
}
)");
    EXPECT_EQ(report.verdict.kind, VerdictKind::Equivalent)
        << report.detail;
}

TEST(CheckerTest, DivisionByNonZeroConstant)
{
    driver::FunctionReport report = validate(R"(
define i32 @f(i32 %a) {
entry:
  %q = udiv i32 %a, 7
  %r = urem i32 %q, 3
  ret i32 %r
}
)");
    // No UB is reachable (constant divisors), so full equivalence.
    EXPECT_EQ(report.verdict.kind, VerdictKind::Equivalent)
        << report.detail;
}

TEST(CheckerTest, BuggyTranslationsRejected)
{
    const char *source = R"(
@a = external global [12 x i8]
@b = external global i64
define void @narrow() {
entry:
  %p = getelementptr inbounds [12 x i8], [12 x i8]* @a, i64 0, i64 8
  %pw = bitcast i8* %p to i32*
  %v = load i32, i32* %pw
  %w = zext i32 %v to i64
  store i64 %w, i64* @b
  ret void
}
)";
    driver::PipelineOptions buggy;
    buggy.isel.foldExtLoad = true;
    buggy.isel.bug = isel::Bug::LoadWidening;
    driver::FunctionReport report = validate(source, buggy);
    EXPECT_EQ(report.verdict.kind, VerdictKind::NotValidated);
    EXPECT_NE(report.verdict.reason.find("out-of-bounds"),
              std::string::npos);
}

TEST(CheckerTest, SwitchLoweringValidates)
{
    driver::FunctionReport report = validate(R"(
define i32 @classify(i32 %x, i32 %y) {
entry:
  %sel = and i32 %x, 7
  switch i32 %sel, label %dflt [
    i32 0, label %zero
    i32 3, label %three
    i32 5, label %five
  ]
zero:
  br label %join
three:
  br label %join
five:
  br label %join
dflt:
  br label %join
join:
  %r = phi i32 [ 100, %zero ], [ 300, %three ], [ %y, %five ], [ -1, %dflt ]
  ret i32 %r
}
)");
    EXPECT_EQ(report.verdict.kind, VerdictKind::Equivalent)
        << report.detail;
    // The sequential case conditions normalize identically on both
    // sides, so the whole proof folds.
    EXPECT_EQ(report.verdict.stats.solverQueries, 0u);
}

TEST(CheckerTest, ProofLogRecordsDischargedObligations)
{
    driver::PipelineOptions options;
    options.checker.collectProof = true;
    driver::FunctionReport report = validate(R"(
define i32 @max(i32 %a, i32 %b) {
entry:
  %c = icmp sgt i32 %a, %b
  br i1 %c, label %t, label %e
t:
  br label %join
e:
  br label %join
join:
  %m = phi i32 [ %a, %t ], [ %b, %e ]
  ret i32 %m
}
)",
                                             options);
    ASSERT_TRUE(report.verdict.validated());
    ASSERT_FALSE(report.verdict.proof.empty());
    // Every step names its source point and both states.
    for (const ProofStep &step : report.verdict.proof) {
        EXPECT_FALSE(step.sourcePoint.empty());
        EXPECT_FALSE(step.stateA.empty());
        EXPECT_FALSE(step.stateB.empty());
    }
    // The rendering mentions the entry point and a discharge method.
    std::string text = report.verdict.renderProof();
    EXPECT_NE(text.find("p0"), std::string::npos);
    EXPECT_NE(text.find("==>"), std::string::npos);
    // Off by default.
    driver::FunctionReport quiet = validate(R"(
define i32 @id(i32 %a) {
entry:
  ret i32 %a
}
)");
    EXPECT_TRUE(quiet.verdict.proof.empty());
}

TEST(CheckerTest, ProofLogMarksAcceptabilitySteps)
{
    driver::PipelineOptions options;
    options.checker.collectProof = true;
    driver::FunctionReport report = validate(R"(
define i32 @bump(i32 %a) {
entry:
  %r = add nsw i32 %a, 1
  ret i32 %r
}
)",
                                             options);
    ASSERT_TRUE(report.verdict.validated());
    bool has_acceptability = false;
    for (const ProofStep &step : report.verdict.proof) {
        if (step.method == ProofStep::Method::Acceptability)
            has_acceptability = true;
    }
    EXPECT_TRUE(has_acceptability)
        << "the UB error state must be discharged via acceptability";
}

TEST(CheckerTest, StatsArePopulated)
{
    driver::FunctionReport report = validate(R"(
define i32 @f(i32 %a) {
entry:
  %c = icmp ult i32 %a, 10
  br i1 %c, label %t, label %e
t:
  ret i32 1
e:
  ret i32 0
}
)");
    EXPECT_TRUE(report.verdict.validated());
    EXPECT_GE(report.verdict.stats.pointsChecked, 1u);
    EXPECT_GT(report.verdict.stats.symbolicSteps, 0u);
    EXPECT_GT(report.verdict.stats.pairsExamined, 0u);
    EXPECT_GE(report.verdict.stats.totalSeconds, 0.0);
}

} // namespace
} // namespace keq::checker
