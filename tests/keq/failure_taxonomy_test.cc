/** @file Failure taxonomy end-to-end: each FailureKind is produced by
 *  the matching injected fault when driven through the real Checker,
 *  and every kind survives a checkpoint serialization round-trip. */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/driver/checkpoint.h"
#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"
#include "src/isel/isel.h"
#include "src/keq/checker.h"
#include "src/llvmir/layout_builder.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/symbolic_semantics.h"
#include "src/llvmir/verifier.h"
#include "src/smt/fault_injection.h"
#include "src/smt/z3_solver.h"
#include "src/vcgen/vcgen.h"
#include "src/vx86/symbolic_semantics.h"

namespace keq::checker {
namespace {

/** The Figure 6 corpus: deterministic, and (unlike hand-written toy
 *  loops, which constant folding discharges without Z3) it contains
 *  functions whose obligations reach the solver — which is what the
 *  fault injector needs. */
const std::string &
corpusSource()
{
    static const std::string source = [] {
        driver::CorpusOptions copts;
        copts.seed = 0x6cc2006;
        // Large enough to contain a function whose verdict depends on
        // a definite solver answer (see queryHeavyIndex).
        copts.functionCount = 16;
        return driver::generateCorpusSource(copts);
    }();
    return source;
}

/** Manual pipeline over one corpus function, with a fault injector
 *  wedged between the Checker and Z3. */
struct FaultedPipeline
{
    llvmir::Module module;
    vx86::MModule mmodule;
    isel::FunctionHints hints;
    sem::SyncPointSet points;
    smt::TermFactory factory;
    mem::MemoryLayout layout;
    std::unique_ptr<llvmir::SymbolicSemantics> semA;
    std::unique_ptr<vx86::SymbolicSemantics> semB;
    std::unique_ptr<smt::Z3Solver> z3;
    std::unique_ptr<smt::FaultInjectingSolver> solver;
    sem::IselAcceptability acceptability;
    std::string name;

    FaultedPipeline(size_t index, smt::FaultPlan plan)
        : module(llvmir::parseModule(corpusSource()))
    {
        llvmir::verifyModuleOrThrow(module);
        const llvmir::Function &fn = module.functions.at(index);
        name = fn.name;
        vx86::MFunction mfn = isel::lowerFunction(module, fn, {}, hints);
        vcgen::VcResult vc = vcgen::generateSyncPoints(fn, mfn, hints);
        points = vc.points;
        mmodule.functions.push_back(std::move(mfn));
        llvmir::populateLayout(module, layout);
        semA = std::make_unique<llvmir::SymbolicSemantics>(module,
                                                           factory,
                                                           layout);
        semB = std::make_unique<vx86::SymbolicSemantics>(mmodule,
                                                         factory,
                                                         layout);
        z3 = std::make_unique<smt::Z3Solver>(factory);
        solver = std::make_unique<smt::FaultInjectingSolver>(
            factory, *z3, plan);
    }

    Verdict
    check(CheckerConfig config = {})
    {
        Checker checker(*semA, *semB, acceptability, *solver, config);
        return checker.check(name, name, points);
    }
};

smt::FaultPlan
certainFault(unsigned smt::FaultPlan::*rate)
{
    smt::FaultPlan plan;
    plan.seed = 42;
    plan.*rate = 100;
    return plan;
}

/** First corpus function whose verdict *depends* on a definite solver
 *  answer: clean validation succeeds with real queries, and an
 *  injected Unknown degrades it to a classified failure. (On a
 *  fold-only function, or one whose only queries are conservative
 *  possiblySat checks, the fault tests below would be vacuous.) */
size_t
queryHeavyIndex()
{
    static const size_t index = [] {
        llvmir::Module probe = llvmir::parseModule(corpusSource());
        for (size_t i = 0; i < probe.functions.size(); ++i) {
            if (probe.functions[i].isDeclaration())
                continue;
            FaultedPipeline clean(i, smt::FaultPlan{});
            Verdict healthy = clean.check();
            if (!healthy.validated() ||
                healthy.stats.solverQueries == 0) {
                continue;
            }
            FaultedPipeline faulted(
                i, certainFault(&smt::FaultPlan::unknownPercent));
            if (faulted.check().failure == FailureKind::SolverUnknown)
                return i;
        }
        return size_t(-1);
    }();
    return index;
}

TEST(FailureTaxonomyTest, CorpusHasAQueryHeavyFunction)
{
    ASSERT_NE(queryHeavyIndex(), size_t(-1))
        << "no corpus function reaches the solver; the fault tests "
           "below would be vacuous";
}

TEST(FailureTaxonomyTest, CleanRunCarriesNoFailure)
{
    FaultedPipeline pipeline(queryHeavyIndex(), smt::FaultPlan{});
    Verdict verdict = pipeline.check();
    EXPECT_TRUE(verdict.validated());
    EXPECT_EQ(verdict.failure, FailureKind::None);
    EXPECT_GT(verdict.stats.solverQueries, 0u);
}

TEST(FailureTaxonomyTest, InjectedTimeoutClassifiesAsTimeout)
{
    FaultedPipeline pipeline(
        queryHeavyIndex(),
        certainFault(&smt::FaultPlan::timeoutPercent));
    Verdict verdict = pipeline.check();
    EXPECT_EQ(verdict.kind, VerdictKind::Timeout);
    EXPECT_EQ(verdict.failure, FailureKind::Timeout);
}

TEST(FailureTaxonomyTest, InjectedMemoryFaultClassifiesAsMemoryBudget)
{
    FaultedPipeline pipeline(
        queryHeavyIndex(),
        certainFault(&smt::FaultPlan::memoryPercent));
    Verdict verdict = pipeline.check();
    EXPECT_EQ(verdict.kind, VerdictKind::OutOfMemory);
    EXPECT_EQ(verdict.failure, FailureKind::MemoryBudget);
}

TEST(FailureTaxonomyTest, InjectedUnknownClassifiesAsSolverUnknown)
{
    FaultedPipeline pipeline(
        queryHeavyIndex(),
        certainFault(&smt::FaultPlan::unknownPercent));
    Verdict verdict = pipeline.check();
    EXPECT_EQ(verdict.kind, VerdictKind::Timeout);
    EXPECT_EQ(verdict.failure, FailureKind::SolverUnknown);
}

TEST(FailureTaxonomyTest, InjectedCrashClassifiesAsSolverCrash)
{
    FaultedPipeline pipeline(
        queryHeavyIndex(),
        certainFault(&smt::FaultPlan::crashPercent));
    Verdict verdict;
    // The unguarded crash reaches the Checker, which absorbs it into a
    // classified verdict — never an escaped exception.
    EXPECT_NO_THROW(verdict = pipeline.check());
    EXPECT_EQ(verdict.kind, VerdictKind::Timeout);
    EXPECT_EQ(verdict.failure, FailureKind::SolverCrash);
}

TEST(FailureTaxonomyTest, CancellationClassifiesAsCancelled)
{
    FaultedPipeline pipeline(queryHeavyIndex(), smt::FaultPlan{});
    CheckerConfig config;
    config.cancel = support::CancellationToken::create();
    config.cancel.cancel();
    Verdict verdict = pipeline.check(config);
    EXPECT_EQ(verdict.kind, VerdictKind::Timeout);
    EXPECT_EQ(verdict.failure, FailureKind::Cancelled);
}

TEST(FailureTaxonomyTest, NamesRoundTripForEveryKind)
{
    const FailureKind kinds[] = {
        FailureKind::None,          FailureKind::Timeout,
        FailureKind::MemoryBudget,  FailureKind::SolverUnknown,
        FailureKind::SolverCrash,   FailureKind::Cancelled,
    };
    for (FailureKind kind : kinds) {
        FailureKind back = FailureKind::Timeout;
        ASSERT_TRUE(failureKindFromName(failureKindName(kind), back));
        EXPECT_EQ(back, kind);
    }
    FailureKind out = FailureKind::None;
    EXPECT_FALSE(failureKindFromName("definitely-not-a-kind", out));
}

TEST(FailureTaxonomyTest, EveryKindSurvivesACheckpointRoundTrip)
{
    const FailureKind kinds[] = {
        FailureKind::None,          FailureKind::Timeout,
        FailureKind::MemoryBudget,  FailureKind::SolverUnknown,
        FailureKind::SolverCrash,   FailureKind::Cancelled,
    };
    for (FailureKind kind : kinds) {
        driver::FunctionReport report;
        report.function = "f_" + std::string(failureKindName(kind));
        report.outcome = driver::Outcome::Timeout;
        report.verdict.kind = VerdictKind::Timeout;
        report.verdict.failure = kind;
        report.verdict.reason = "why: " +
                                std::string(failureKindName(kind));
        driver::FunctionReport back;
        ASSERT_TRUE(driver::deserializeFunctionReport(
            driver::serializeFunctionReport(report), back));
        EXPECT_EQ(back.verdict.failure, kind);
        EXPECT_EQ(back.canonicalSummary(), report.canonicalSummary());
    }
}

} // namespace
} // namespace keq::checker
