/** @file Robustness properties the trust argument relies on (Section 4):
 *  missing or inadequate sync points must FAIL validation, never pass;
 *  resource budgets produce the paper's failure categories; the
 *  positive-form SMT optimization is behaviour-preserving. */

#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/isel/isel.h"
#include "src/llvmir/layout_builder.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/symbolic_semantics.h"
#include "src/llvmir/verifier.h"
#include "src/keq/checker.h"
#include "src/smt/z3_solver.h"
#include "src/vcgen/vcgen.h"
#include "src/vx86/symbolic_semantics.h"

namespace keq::checker {
namespace {

const char *const kLoopSource = R"(
define i32 @sum(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %s = phi i32 [ 0, %entry ], [ %snext, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %snext = add i32 %s, %i
  %inc = add i32 %i, 1
  br label %head
done:
  ret i32 %s
}
)";

/** Full manual pipeline so tests can tamper with the sync points. */
struct ManualPipeline
{
    llvmir::Module module;
    vx86::MModule mmodule;
    isel::FunctionHints hints;
    sem::SyncPointSet points;
    smt::TermFactory factory;
    mem::MemoryLayout layout;
    std::unique_ptr<llvmir::SymbolicSemantics> semA;
    std::unique_ptr<vx86::SymbolicSemantics> semB;
    std::unique_ptr<smt::Z3Solver> solver;
    sem::IselAcceptability acceptability;

    explicit ManualPipeline(const char *source)
        : module(llvmir::parseModule(source))
    {
        llvmir::verifyModuleOrThrow(module);
        vx86::MFunction mfn = isel::lowerFunction(
            module, module.functions.back(), {}, hints);
        vcgen::VcResult vc = vcgen::generateSyncPoints(
            module.functions.back(), mfn, hints);
        points = vc.points;
        mmodule.functions.push_back(std::move(mfn));
        llvmir::populateLayout(module, layout);
        semA = std::make_unique<llvmir::SymbolicSemantics>(module,
                                                           factory,
                                                           layout);
        semB = std::make_unique<vx86::SymbolicSemantics>(mmodule,
                                                         factory,
                                                         layout);
        solver = std::make_unique<smt::Z3Solver>(factory);
    }

    Verdict
    check(CheckerConfig config = {})
    {
        Checker checker(*semA, *semB, acceptability, *solver, config);
        const std::string &name = module.functions.back().name;
        return checker.check(name, name, points);
    }
};

TEST(RobustnessTest, BaselineLoopValidates)
{
    ManualPipeline pipeline(kLoopSource);
    EXPECT_EQ(pipeline.check().kind, VerdictKind::Equivalent);
}

TEST(RobustnessTest, MissingLoopPointsFailClosed)
{
    // Remove the loop-entry points: the segments from the entry point
    // can no longer reach a cut, so the checker must fail (here: the
    // step budget acts as the missing-cut detector), never accept.
    ManualPipeline pipeline(kLoopSource);
    std::erase_if(pipeline.points.points, [](const sem::SyncPoint &p) {
        return p.kind == sem::SyncKind::BlockEntry;
    });
    CheckerConfig config;
    config.maxStepsPerSegment = 500;
    Verdict verdict = pipeline.check(config);
    EXPECT_FALSE(verdict.validated());
    EXPECT_EQ(verdict.kind, VerdictKind::Timeout);
}

TEST(RobustnessTest, DroppedConstraintFailsClosed)
{
    // Remove one equality constraint from a loop point: the obligation
    // at the next visit can no longer be proven.
    ManualPipeline pipeline(kLoopSource);
    bool dropped = false;
    for (sem::SyncPoint &point : pipeline.points.points) {
        if (point.kind == sem::SyncKind::BlockEntry &&
            !point.constraints.empty() && !dropped) {
            point.constraints.erase(point.constraints.begin());
            dropped = true;
        }
    }
    ASSERT_TRUE(dropped);
    Verdict verdict = pipeline.check();
    EXPECT_EQ(verdict.kind, VerdictKind::NotValidated);
}

TEST(RobustnessTest, CorruptedConstraintFailsClosed)
{
    // Swap the machine registers of two loop constraints: both now
    // relate the wrong values (%snext <-> %inc).
    ManualPipeline pipeline(kLoopSource);
    bool corrupted = false;
    for (sem::SyncPoint &point : pipeline.points.points) {
        if (point.kind != sem::SyncKind::BlockEntry || corrupted)
            continue;
        sem::SyncConstraint *first = nullptr;
        for (sem::SyncConstraint &constraint : point.constraints) {
            if (constraint.kind != sem::SyncConstraint::Kind::AEqB)
                continue;
            if (constraint.regA != "%snext" &&
                constraint.regA != "%inc") {
                continue;
            }
            if (first == nullptr) {
                first = &constraint;
            } else {
                std::swap(first->regB, constraint.regB);
                corrupted = true;
                break;
            }
        }
    }
    ASSERT_TRUE(corrupted);
    EXPECT_EQ(pipeline.check().kind, VerdictKind::NotValidated);
}

TEST(RobustnessTest, CrudeLivenessProducesOtherFailures)
{
    // The paper's residual category: block-local liveness misses a
    // pass-through value, the VC is inadequate, and KEQ fails.
    const char *source = R"(
define i32 @f(i32 %keep, i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %inc = add i32 %i, 1
  br label %head
done:
  %r = add i32 %keep, %i
  ret i32 %r
}
)";
    llvmir::Module module = llvmir::parseModule(source);
    llvmir::verifyModuleOrThrow(module);

    driver::PipelineOptions precise;
    EXPECT_EQ(driver::validateFunction(module, module.functions[0],
                                       precise)
                  .outcome,
              driver::Outcome::Succeeded);

    driver::PipelineOptions crude;
    crude.vc.precision = vcgen::LivenessPrecision::BlockLocal;
    driver::FunctionReport report =
        driver::validateFunction(module, module.functions[0], crude);
    EXPECT_EQ(report.outcome, driver::Outcome::Other);
}

TEST(RobustnessTest, WallBudgetYieldsTimeout)
{
    ManualPipeline pipeline(kLoopSource);
    CheckerConfig config;
    config.wallBudgetSeconds = 1e-9; // expire immediately
    Verdict verdict = pipeline.check(config);
    EXPECT_EQ(verdict.kind, VerdictKind::Timeout);
}

TEST(RobustnessTest, NodeBudgetYieldsOutOfMemory)
{
    ManualPipeline pipeline(kLoopSource);
    CheckerConfig config;
    config.maxTermNodes = 1;
    Verdict verdict = pipeline.check(config);
    EXPECT_EQ(verdict.kind, VerdictKind::OutOfMemory);
}

TEST(RobustnessTest, SpecSizeBudgetYieldsOutOfMemory)
{
    llvmir::Module module = llvmir::parseModule(kLoopSource);
    driver::PipelineOptions options;
    options.specSizeBudget = 10; // absurdly small
    driver::FunctionReport report =
        driver::validateFunction(module, module.functions[0], options);
    EXPECT_EQ(report.outcome, driver::Outcome::OutOfMemory);
}

TEST(RobustnessTest, NegativeFormAgreesWithPositiveForm)
{
    // The Section 3 optimization must not change verdicts, only query
    // shape.
    ManualPipeline positive(kLoopSource);
    CheckerConfig config_pos;
    config_pos.positiveFormOpt = true;
    Verdict with_opt = positive.check(config_pos);

    ManualPipeline negative(kLoopSource);
    CheckerConfig config_neg;
    config_neg.positiveFormOpt = false;
    Verdict without_opt = negative.check(config_neg);

    EXPECT_EQ(with_opt.kind, without_opt.kind);
    EXPECT_EQ(with_opt.kind, VerdictKind::Equivalent);
}

TEST(RobustnessTest, MismatchedFactoriesAssert)
{
    ManualPipeline pipeline(kLoopSource);
    smt::TermFactory other_factory;
    llvmir::SymbolicSemantics other_sem(pipeline.module, other_factory,
                                        pipeline.layout);
    EXPECT_THROW(Checker(*pipeline.semA, other_sem,
                         pipeline.acceptability, *pipeline.solver, {}),
                 support::InternalError);
}

TEST(RobustnessTest, SwappedTargetRejected)
{
    // Validate @sum's LLVM side against a *different* function's
    // machine code: must fail.
    ManualPipeline pipeline(kLoopSource);
    // Lower a different function into the machine module under the same
    // name lookup by mangling the machine code: change the ADD into SUB.
    for (vx86::MBasicBlock &block :
         pipeline.mmodule.functions[0].blocks) {
        for (vx86::MInst &inst : block.insts) {
            if (inst.op == vx86::MOpcode::ADDrr)
                inst.op = vx86::MOpcode::SUBrr;
        }
    }
    Verdict verdict = pipeline.check();
    EXPECT_EQ(verdict.kind, VerdictKind::NotValidated);
}

} // namespace
} // namespace keq::checker
