/** @file Undefined-behaviour and refinement handling (Section 4.6). */

#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/sem/acceptability.h"

namespace keq::checker {
namespace {

driver::FunctionReport
validate(const char *source, driver::PipelineOptions options = {})
{
    llvmir::Module module = llvmir::parseModule(source);
    llvmir::verifyModuleOrThrow(module);
    return driver::validateFunction(module, module.functions.back(),
                                    options);
}

TEST(RefinementTest, NswOverflowDegradesToRefinement)
{
    driver::FunctionReport report = validate(R"(
define i32 @bump(i32 %a) {
entry:
  %r = add nsw i32 %a, 1
  ret i32 %r
}
)");
    // The translation is correct, but input UB is reachable, so only
    // refinement is claimed (Section 4.6's automatic fallback).
    EXPECT_EQ(report.verdict.kind, VerdictKind::Refines)
        << report.detail;
    EXPECT_TRUE(report.verdict.usedRefinementFallback);
    EXPECT_EQ(report.outcome, driver::Outcome::Succeeded);
}

TEST(RefinementTest, UnreachableNswIsStillEquivalent)
{
    driver::FunctionReport report = validate(R"(
define i32 @safe(i32 %a) {
entry:
  %m = and i32 %a, 65535
  %r = add nsw i32 %m, 1
  ret i32 %r
}
)");
    // The overflow condition is unsatisfiable (masked operand), so the
    // checker proves full equivalence.
    EXPECT_EQ(report.verdict.kind, VerdictKind::Equivalent)
        << report.detail;
    EXPECT_FALSE(report.verdict.usedRefinementFallback);
}

TEST(RefinementTest, DivisionByRegisterRefines)
{
    driver::FunctionReport report = validate(R"(
define i32 @div(i32 %a, i32 %b) {
entry:
  %q = sdiv i32 %a, %b
  ret i32 %q
}
)");
    // LLVM division UB (b == 0, INT_MIN / -1) maps onto the x86 #DE
    // fault; the proof succeeds as a refinement.
    EXPECT_EQ(report.verdict.kind, VerdictKind::Refines)
        << report.detail;
    EXPECT_EQ(report.outcome, driver::Outcome::Succeeded);
}

TEST(RefinementTest, UnsignedDivisionByRegisterRefines)
{
    driver::FunctionReport report = validate(R"(
define i32 @udivrem(i32 %a, i32 %b) {
entry:
  %q = udiv i32 %a, %b
  %r = urem i32 %a, %b
  %s = add i32 %q, %r
  ret i32 %s
}
)");
    EXPECT_EQ(report.verdict.kind, VerdictKind::Refines)
        << report.detail;
}

TEST(RefinementTest, UnreachableTerminatorAccepted)
{
    driver::FunctionReport report = validate(R"(
define i32 @partial(i32 %a) {
entry:
  %c = icmp ult i32 %a, 10
  br i1 %c, label %ok, label %impossible
ok:
  ret i32 %a
impossible:
  unreachable
}
)");
    // `unreachable` is input UB; UD2 on the output side is acceptable.
    EXPECT_TRUE(report.verdict.validated()) << report.detail;
}

TEST(RefinementTest, RefinementOnlyModeReportsRefines)
{
    driver::PipelineOptions options;
    options.checker.refinementOnly = true;
    driver::FunctionReport report = validate(R"(
define i32 @f(i32 %a) {
entry:
  ret i32 %a
}
)",
                                             options);
    EXPECT_EQ(report.verdict.kind, VerdictKind::Refines);
}

TEST(AcceptabilityTest, IselPolicyTable)
{
    sem::IselAcceptability acceptability;
    // Input-side UB accepts any output behaviour.
    EXPECT_TRUE(acceptability.errorAcceptsAnyOutput(
        sem::ErrorKind::SignedOverflow));
    EXPECT_TRUE(
        acceptability.errorAcceptsAnyOutput(sem::ErrorKind::OutOfBounds));
    EXPECT_FALSE(acceptability.errorAcceptsAnyOutput(sem::ErrorKind::None));
    // Same-kind errors relate.
    EXPECT_TRUE(acceptability.errorsRelated(sem::ErrorKind::OutOfBounds,
                                            sem::ErrorKind::OutOfBounds));
    // The x86 divide fault covers both LLVM division UB kinds.
    EXPECT_TRUE(acceptability.errorsRelated(
        sem::ErrorKind::SignedOverflow, sem::ErrorKind::DivByZero));
    EXPECT_TRUE(acceptability.errorsRelated(sem::ErrorKind::DivByZero,
                                            sem::ErrorKind::DivByZero));
    // But not unrelated kinds.
    EXPECT_FALSE(acceptability.errorsRelated(
        sem::ErrorKind::OutOfBounds, sem::ErrorKind::DivByZero));
    EXPECT_TRUE(acceptability.requiresMemoryEquality());
}

TEST(RefinementTest, NswInsideLoopStillValidates)
{
    driver::FunctionReport report = validate(R"(
define i32 @sum(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %s = phi i32 [ 0, %entry ], [ %snext, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %snext = add nsw i32 %s, %i
  %inc = add i32 %i, 1
  br label %head
done:
  ret i32 %s
}
)");
    EXPECT_EQ(report.verdict.kind, VerdictKind::Refines)
        << report.detail;
}

} // namespace
} // namespace keq::checker
