; Equality predicates feeding a conditional branch.
; EXPECT: validated
define i32 @eqne(i32 %a, i32 %b) {
entry:
  %e = icmp eq i32 %a, %b
  br i1 %e, label %same, label %diff
same:
  ret i32 1
diff:
  %n = icmp ne i32 %a, 0
  %z = zext i1 %n to i32
  ret i32 %z
}
