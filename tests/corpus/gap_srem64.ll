; Signed 64-bit remainder: same unsupported-fragment gap as udiv i64.
; EXPECT: gap
define i64 @rem64(i64 %a) {
entry:
  %r = srem i64 %a, 10
  ret i64 %r
}
