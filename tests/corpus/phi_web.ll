; Phi web: three-way control merge with two phis in one block.
; EXPECT: validated
define i32 @web(i32 %a) {
entry:
  switch i32 %a, label %other [
    i32 0, label %zero
    i32 1, label %one
  ]
zero:
  br label %join
one:
  br label %join
other:
  br label %join
join:
  %x = phi i32 [ 10, %zero ], [ 20, %one ], [ 30, %other ]
  %y = phi i32 [ -1, %zero ], [ -2, %one ], [ %a, %other ]
  %s = add i32 %x, %y
  ret i32 %s
}
