; Signed division by constant -1: the INT_MIN / -1 overflow edge.
; EXPECT: validated
define i32 @sdiv_m1(i32 %a) {
entry:
  %q = sdiv i32 %a, -1
  %r = srem i32 %a, -1
  %s = add i32 %q, %r
  ret i32 %s
}
