; A branch arm that ends in unreachable.
; EXPECT: validated
define i32 @guarded(i32 %a) {
entry:
  %ok = icmp ne i32 %a, 0
  br i1 %ok, label %use, label %dead
use:
  %r = udiv i32 100, %a
  ret i32 %r
dead:
  unreachable
}
