; Multiplication with positive and negative immediates.
; EXPECT: validated
define i32 @mul_neg(i32 %a) {
entry:
  %x = mul i32 %a, -3
  %y = mul nsw i32 %x, %a
  %z = sub i32 0, %y
  ret i32 %z
}
