; Comparisons at i8/i16/i64 width (flag materialization per width).
; EXPECT: validated
define i32 @wcmp(i8 %a, i16 %b, i64 %c) {
entry:
  %c1 = icmp slt i8 %a, 10
  %c2 = icmp ugt i16 %b, 300
  %c3 = icmp eq i64 %c, -1
  %z1 = zext i1 %c1 to i32
  %z2 = zext i1 %c2 to i32
  %z3 = zext i1 %c3 to i32
  %s1 = add i32 %z1, %z2
  %s = add i32 %s1, %z3
  ret i32 %s
}
