; Chained selects (cmov ladder).
; EXPECT: validated
define i32 @clamp(i32 %a) {
entry:
  %lo = icmp slt i32 %a, 0
  %c1 = select i1 %lo, i32 0, i32 %a
  %hi = icmp sgt i32 %c1, 100
  %c2 = select i1 %hi, i32 100, i32 %c1
  %isend = icmp eq i32 %c2, 100
  %c3 = select i1 %isend, i32 -1, i32 %c2
  ret i32 %c3
}
