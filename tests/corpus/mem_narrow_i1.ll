; i1 memory traffic through an alloca slot.
; EXPECT: validated
define i32 @bit_slot(i32 %a) {
entry:
  %slot = alloca i1
  %c = icmp sgt i32 %a, 0
  store i1 %c, i1* %slot
  %v = load i1, i1* %slot
  %z = zext i1 %v to i32
  ret i32 %z
}
