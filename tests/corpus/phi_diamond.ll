; Classic if-diamond merged by a phi.
; EXPECT: validated
define i32 @diamond(i32 %a) {
entry:
  %c = icmp slt i32 %a, 0
  br i1 %c, label %neg, label %pos
neg:
  %n = sub i32 0, %a
  br label %join
pos:
  %p = add i32 %a, 1
  br label %join
join:
  %m = phi i32 [ %n, %neg ], [ %p, %pos ]
  ret i32 %m
}
