; Basic add/sub data flow, including nsw/nuw wrap flags.
; EXPECT: validated
define i32 @add_sub(i32 %a, i32 %b) {
entry:
  %s = add nsw i32 %a, %b
  %t = sub i32 %s, 7
  %u = add nuw i32 %t, %a
  ret i32 %u
}
