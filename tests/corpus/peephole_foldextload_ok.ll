; zext(load) folding on an in-bounds load: sound, must validate.
; EXPECT: validated
; ISEL: fold-ext-load
@a = external global [12 x i8]
@b = external global i64
define void @fold_ok() {
entry:
  %p = getelementptr inbounds [12 x i8], [12 x i8]* @a, i64 0, i64 0
  %pw = bitcast i8* %p to i32*
  %v = load i32, i32* %pw
  %w = zext i32 %v to i64
  store i64 %w, i64* @b
  ret void
}
