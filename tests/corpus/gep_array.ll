; Array GEP with a dynamic index plus byte-granular loads and stores.
; EXPECT: validated
@buf = external global [16 x i8]
define i8 @gep_array(i64 %i) {
entry:
  %j = and i64 %i, 7
  %p = getelementptr inbounds [16 x i8], [16 x i8]* @buf, i64 0, i64 %j
  store i8 77, i8* %p
  %q = getelementptr inbounds [16 x i8], [16 x i8]* @buf, i64 0, i64 3
  %v = load i8, i8* %q
  ret i8 %v
}
