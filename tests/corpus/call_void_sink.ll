; Void call for effect only, multiple arguments.
; EXPECT: validated
declare void @sink(i32, i32)
define void @emit(i32 %a) {
entry:
  %b = mul i32 %a, 2
  call void @sink(i32 %a, i32 %b)
  ret void
}
