; Full-width i64 arithmetic (no division: that is the gap file).
; EXPECT: validated
define i64 @wide(i64 %a, i64 %b) {
entry:
  %s = add i64 %a, %b
  %m = mul i64 %s, %a
  %x = xor i64 %m, -1
  %r = lshr i64 %x, 7
  ret i64 %r
}
