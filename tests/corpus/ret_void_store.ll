; Void function whose only observable effect is a global store.
; EXPECT: validated
@out = external global i32
define void @publish(i32 %a) {
entry:
  %x = add i32 %a, 17
  store i32 %x, i32* @out
  ret void
}
