; Calls to an external function (unknown callee, paper Section 4.3).
; EXPECT: validated
declare i32 @ext(i32)
define i32 @caller(i32 %a) {
entry:
  %x = call i32 @ext(i32 %a)
  %y = call i32 @ext(i32 %x)
  %s = add i32 %x, %y
  ret i32 %s
}
