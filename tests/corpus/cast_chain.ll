; zext/sext/trunc chains across all supported integer widths.
; EXPECT: validated
define i64 @casts(i8 %a, i16 %b) {
entry:
  %z = zext i8 %a to i32
  %s = sext i16 %b to i32
  %m = add i32 %z, %s
  %w = sext i32 %m to i64
  %t = trunc i64 %w to i16
  %u = zext i16 %t to i64
  %r = add i64 %w, %u
  ret i64 %r
}
