; Seven parameters exceed the 6-register calling convention fragment.
; EXPECT: gap
define i32 @seven(i32 %a, i32 %b, i32 %c, i32 %d, i32 %e, i32 %f, i32 %g) {
entry:
  %s1 = add i32 %a, %b
  %s2 = add i32 %s1, %g
  ret i32 %s2
}
