; Store-merging peephole on genuinely adjacent, non-overlapping
; stores: the optimization is sound here and must validate.
; EXPECT: validated
; ISEL: merge-stores
@buf = external global [8 x i8]
define void @merge_ok() {
entry:
  %p0 = getelementptr inbounds [8 x i8], [8 x i8]* @buf, i64 0, i64 0
  %p0w = bitcast i8* %p0 to i16*
  store i16 1, i16* %p0w
  %p2 = getelementptr inbounds [8 x i8], [8 x i8]* @buf, i64 0, i64 2
  %p2w = bitcast i8* %p2 to i16*
  store i16 2, i16* %p2w
  ret void
}
