; Counted loop with an accumulator phi (cut-point synchronization).
; EXPECT: validated
define i32 @sum(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inext, %body ]
  %acc = phi i32 [ 0, %entry ], [ %anext, %body ]
  %done = icmp sge i32 %i, %n
  br i1 %done, label %exit, label %body
body:
  %anext = add i32 %acc, %i
  %inext = add i32 %i, 1
  br label %head
exit:
  ret i32 %acc
}
