; ptrtoint/inttoptr round trip through an integer register.
; EXPECT: validated
@cell = external global i32
define i32 @roundtrip() {
entry:
  %n = ptrtoint i32* @cell to i64
  %p = inttoptr i64 %n to i32*
  store i32 42, i32* %p
  %v = load i32, i32* @cell
  ret i32 %v
}
