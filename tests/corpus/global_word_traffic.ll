; Direct loads/stores through word-sized globals.
; EXPECT: validated
@w32 = external global i32
@w64 = external global i64
define i64 @traffic(i32 %a) {
entry:
  store i32 %a, i32* @w32
  %v = load i32, i32* @w32
  %z = zext i32 %v to i64
  store i64 %z, i64* @w64
  %r = load i64, i64* @w64
  ret i64 %r
}
