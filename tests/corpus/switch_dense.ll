; Switch with four non-default cases.
; EXPECT: validated
define i32 @dispatch(i32 %a) {
entry:
  switch i32 %a, label %fallback [
    i32 0, label %c0
    i32 1, label %c1
    i32 2, label %c2
    i32 9, label %c9
  ]
c0:
  ret i32 100
c1:
  ret i32 101
c2:
  ret i32 102
c9:
  ret i32 109
fallback:
  %r = add i32 %a, 1000
  ret i32 %r
}
