; Two aggregate levels below the top: array of structs of array.
; EXPECT: validated
@grid = external global [2 x { i8, [2 x i8] }]
define i8 @deep(i64 %i) {
entry:
  %j = and i64 %i, 1
  %p = getelementptr inbounds [2 x { i8, [2 x i8] }], [2 x { i8, [2 x i8] }]* @grid, i64 0, i64 %j, i32 1, i64 1
  store i8 5, i8* %p
  %v = load i8, i8* %p
  ret i8 %v
}
