; Stack scratch slots of several widths.
; EXPECT: validated
define i32 @scratch(i32 %a, i16 %b) {
entry:
  %s32 = alloca i32
  %s16 = alloca i16
  store i32 %a, i32* %s32
  store i16 %b, i16* %s16
  %v = load i32, i32* %s32
  %h = load i16, i16* %s16
  %hz = zext i16 %h to i32
  %r = add i32 %v, %hz
  ret i32 %r
}
