; Nested aggregate GEP: struct containing an array of i16.
; EXPECT: validated
@pair = external global { i32, [4 x i16] }
define i16 @gep_nested(i64 %i) {
entry:
  %j = and i64 %i, 3
  %p = getelementptr inbounds { i32, [4 x i16] }, { i32, [4 x i16] }* @pair, i64 0, i32 1, i64 %j
  store i16 9, i16* %p
  %q = getelementptr inbounds { i32, [4 x i16] }, { i32, [4 x i16] }* @pair, i64 0, i32 1, i64 2
  %v = load i16, i16* %q
  ret i16 %v
}
