; Division with a register divisor: both sides trap identically on
; zero, so the lowering must still validate (trap-equivalence).
; EXPECT: validated
define i32 @div_reg(i32 %a, i32 %b) {
entry:
  %q = udiv i32 %a, %b
  %r = urem i32 %q, %b
  ret i32 %r
}
