; Section 5.2 load-widening bug (PR4737 shape): the folded load reads
; past the object, so KEQ must refuse the lowering.
; EXPECT: rejected
; ISEL: bug=loadwiden
@a = external global [12 x i8]
@b = external global i64
define void @widen() {
entry:
  %p = getelementptr inbounds [12 x i8], [12 x i8]* @a, i64 0, i64 8
  %pw = bitcast i8* %p to i32*
  %v = load i32, i32* %pw
  %w = zext i32 %v to i64
  store i64 %w, i64* @b
  ret void
}
