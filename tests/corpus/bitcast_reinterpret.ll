; Pointer bitcast reinterpreting a byte buffer at i32.
; EXPECT: validated
@bytes = external global [8 x i8]
define i32 @reinterpret() {
entry:
  %p = getelementptr inbounds [8 x i8], [8 x i8]* @bytes, i64 0, i64 4
  %pw = bitcast i8* %p to i32*
  store i32 -559038737, i32* %pw
  %v = load i32, i32* %pw
  ret i32 %v
}
