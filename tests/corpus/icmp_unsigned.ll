; The four strict/loose unsigned comparison predicates.
; EXPECT: validated
define i32 @ucmp(i32 %a, i32 %b) {
entry:
  %c1 = icmp ult i32 %a, %b
  %c2 = icmp ule i32 %a, 100
  %c3 = icmp ugt i32 %b, 5
  %c4 = icmp uge i32 %a, %b
  %z1 = zext i1 %c1 to i32
  %z2 = zext i1 %c2 to i32
  %z3 = zext i1 %c3 to i32
  %z4 = zext i1 %c4 to i32
  %s1 = add i32 %z1, %z2
  %s2 = add i32 %z3, %z4
  %s = add i32 %s1, %s2
  ret i32 %s
}
