; sext from i1 is outside the supported ISel fragment.
; EXPECT: gap
define i32 @mask(i32 %a) {
entry:
  %c = icmp slt i32 %a, 0
  %m = sext i1 %c to i32
  ret i32 %m
}
