; Signed division with a register divisor (zero and overflow traps).
; EXPECT: validated
define i32 @sdiv_reg(i32 %a, i32 %b) {
entry:
  %q = sdiv i32 %a, %b
  %r = srem i32 %a, %b
  %s = xor i32 %q, %r
  ret i32 %s
}
