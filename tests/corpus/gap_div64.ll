; 64-bit division is outside the supported ISel fragment; the pipeline
; must classify the function as unsupported, never guess.
; EXPECT: gap
define i64 @div64(i64 %a, i64 %b) {
entry:
  %q = udiv i64 %a, %b
  ret i64 %q
}
