; A call site with seven arguments exceeds the register-only
; argument-passing fragment.
; EXPECT: gap
declare i32 @wide_api(i32, i32, i32, i32, i32, i32, i32)
define i32 @forward(i32 %a) {
entry:
  %r = call i32 @wide_api(i32 %a, i32 1, i32 2, i32 3, i32 4, i32 5, i32 6)
  ret i32 %r
}
