; All three shift forms with immediate shift amounts.
; EXPECT: validated
define i32 @shifts(i32 %a) {
entry:
  %l = shl nuw i32 %a, 3
  %r = lshr i32 %l, 2
  %s = ashr i32 %r, 1
  ret i32 %s
}
