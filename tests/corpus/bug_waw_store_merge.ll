; Section 5.2 write-after-write hazard: the buggy store merger
; reorders overlapping i16 stores, so KEQ must refuse the lowering.
; EXPECT: rejected
; ISEL: bug=waw
@b = external global [8 x i8]
define void @waw() {
entry:
  %p2 = getelementptr inbounds [8 x i8], [8 x i8]* @b, i64 0, i64 2
  %p2w = bitcast i8* %p2 to i16*
  store i16 0, i16* %p2w
  %p3 = getelementptr inbounds [8 x i8], [8 x i8]* @b, i64 0, i64 3
  %p3w = bitcast i8* %p3 to i16*
  store i16 2, i16* %p3w
  %p0 = getelementptr inbounds [8 x i8], [8 x i8]* @b, i64 0, i64 0
  %p0w = bitcast i8* %p0 to i16*
  store i16 1, i16* %p0w
  ret void
}
