; The four strict/loose signed comparison predicates.
; EXPECT: validated
define i32 @scmp(i32 %a, i32 %b) {
entry:
  %c1 = icmp slt i32 %a, %b
  %c2 = icmp sle i32 %a, -4
  %c3 = icmp sgt i32 %b, 0
  %c4 = icmp sge i32 %a, %b
  %z1 = zext i1 %c1 to i32
  %z2 = zext i1 %c2 to i32
  %z3 = zext i1 %c3 to i32
  %z4 = zext i1 %c4 to i32
  %s1 = add i32 %z1, %z2
  %s2 = add i32 %z3, %z4
  %s = add i32 %s1, %s2
  ret i32 %s
}
