; Unsigned division and remainder by nonzero immediates.
; EXPECT: validated
define i32 @udiv_const(i32 %a) {
entry:
  %q = udiv i32 %a, 7
  %r = urem i32 %a, 12
  %s = add i32 %q, %r
  ret i32 %s
}
