; Selects over narrow (i8/i16) values.
; EXPECT: validated
define i16 @pick(i8 %a, i16 %b) {
entry:
  %c = icmp ne i8 %a, 0
  %w = select i1 %c, i16 %b, i16 -7
  %d = icmp ult i16 %w, 10
  %r = select i1 %d, i16 1, i16 %w
  ret i16 %r
}
