; Struct-field GEP with mixed field widths (narrow i16 traffic).
; EXPECT: validated
@rec = external global { i32, i16, i8 }
define i32 @gep_struct() {
entry:
  %f0 = getelementptr inbounds { i32, i16, i8 }, { i32, i16, i8 }* @rec, i64 0, i32 0
  %f1 = getelementptr inbounds { i32, i16, i8 }, { i32, i16, i8 }* @rec, i64 0, i32 1
  store i16 -2, i16* %f1
  %v16 = load i16, i16* %f1
  %w = zext i16 %v16 to i32
  %v32 = load i32, i32* %f0
  %s = add i32 %v32, %w
  ret i32 %s
}
