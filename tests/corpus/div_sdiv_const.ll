; Signed division and remainder by positive immediates.
; EXPECT: validated
define i32 @sdiv_const(i32 %a) {
entry:
  %q = sdiv i32 %a, 5
  %r = srem i32 %a, 9
  %s = sub i32 %q, %r
  ret i32 %s
}
