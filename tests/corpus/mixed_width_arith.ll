; Arithmetic at i8 and i16 (sub-register lowering).
; EXPECT: validated
define i16 @narrow_math(i8 %a, i16 %b) {
entry:
  %x = add i8 %a, 100
  %y = mul i8 %x, 3
  %z = zext i8 %y to i16
  %w = sub i16 %b, %z
  %v = and i16 %w, 4095
  ret i16 %v
}
