; and/or/xor over mixed constants and registers.
; EXPECT: validated
define i32 @bits(i32 %a, i32 %b) {
entry:
  %m = and i32 %a, 255
  %o = or i32 %m, %b
  %x = xor i32 %o, -1
  ret i32 %x
}
