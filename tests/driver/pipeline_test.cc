/** @file End-to-end pipeline tests over modules and the corpus. */

#include <gtest/gtest.h>

#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"

namespace keq::driver {
namespace {

TEST(PipelineTest, ValidatesSourceText)
{
    ModuleReport report = validateSource(R"(
define i32 @one() {
entry:
  ret i32 1
}
define i32 @double(i32 %x) {
entry:
  %r = add i32 %x, %x
  ret i32 %r
}
)",
                                         {});
    ASSERT_EQ(report.functions.size(), 2u);
    EXPECT_EQ(report.countOutcome(Outcome::Succeeded), 2u);
}

TEST(PipelineTest, UnsupportedFunctionsAreCategorized)
{
    ModuleReport report = validateSource(R"(
define i64 @bad(i64 %a, i64 %b) {
entry:
  %q = udiv i64 %a, %b
  ret i64 %q
}
define i32 @good(i32 %a) {
entry:
  ret i32 %a
}
)",
                                         {});
    EXPECT_EQ(report.countOutcome(Outcome::Unsupported), 1u);
    EXPECT_EQ(report.countOutcome(Outcome::Succeeded), 1u);
    // The table footer reports the exclusion, like the paper's 4732 of
    // 5572 supported functions.
    std::string table = report.renderTable();
    EXPECT_NE(table.find("excluded"), std::string::npos);
    EXPECT_NE(table.find("Total                        | 1"),
              std::string::npos);
}

TEST(PipelineTest, ReportCarriesSizeMetrics)
{
    ModuleReport report = validateSource(R"(
define i32 @f(i32 %a) {
entry:
  %1 = add i32 %a, 1
  %2 = mul i32 %1, 2
  ret i32 %2
}
)",
                                         {});
    const FunctionReport &fn = report.functions[0];
    EXPECT_EQ(fn.llvmInstructions, 3u);
    EXPECT_GT(fn.x86Instructions, 3u);
    EXPECT_GE(fn.syncPointCount, 2u);
    EXPECT_GT(fn.specTextSize, 0u);
    EXPECT_GT(fn.seconds, 0.0);
}

TEST(PipelineTest, SmallCorpusFullyValidates)
{
    CorpusOptions copts;
    copts.functionCount = 25;
    copts.seed = 2024;
    ModuleReport report =
        validateSource(generateCorpusSource(copts), {});
    EXPECT_EQ(report.countOutcome(Outcome::Succeeded), 25u)
        << report.renderTable();
}

TEST(PipelineTest, BuggyIselRejectsAcrossCorpusMemoryFunctions)
{
    // With the WAW bug enabled module-wide, functions containing
    // mergeable store pairs must not validate better than with the
    // correct pass; crucially, nothing may *falsely* validate: the
    // success set with the bug must be a subset of the success set
    // without it on memory-heavy inputs.
    const char *source = R"(
@g = external global [8 x i8]
define void @two_stores() {
entry:
  %p0 = getelementptr [8 x i8], [8 x i8]* @g, i64 0, i64 0
  %p0w = bitcast i8* %p0 to i16*
  store i16 1, i16* %p0w
  %p2 = getelementptr [8 x i8], [8 x i8]* @g, i64 0, i64 2
  %p2w = bitcast i8* %p2 to i16*
  store i16 2, i16* %p2w
  ret void
}
define void @waw() {
entry:
  %p2 = getelementptr [8 x i8], [8 x i8]* @g, i64 0, i64 2
  %p2w = bitcast i8* %p2 to i16*
  store i16 0, i16* %p2w
  %p3 = getelementptr [8 x i8], [8 x i8]* @g, i64 0, i64 3
  %p3w = bitcast i8* %p3 to i16*
  store i16 2, i16* %p3w
  %p0 = getelementptr [8 x i8], [8 x i8]* @g, i64 0, i64 0
  %p0w = bitcast i8* %p0 to i16*
  store i16 1, i16* %p0w
  ret void
}
)";
    PipelineOptions buggy;
    buggy.isel.mergeStores = true;
    buggy.isel.bug = isel::Bug::StoreMergeWAW;
    ModuleReport report = validateSource(source, buggy);
    // @two_stores merges safely even with the buggy placement (no
    // intervening store), so it still validates; @waw must be rejected.
    ASSERT_EQ(report.functions.size(), 2u);
    EXPECT_EQ(report.functions[0].outcome, Outcome::Succeeded)
        << report.functions[0].detail;
    EXPECT_EQ(report.functions[1].outcome, Outcome::Other)
        << report.functions[1].detail;
}

TEST(PipelineTest, OutcomeNamesMatchFigure6Rows)
{
    EXPECT_STREQ(outcomeName(Outcome::Succeeded), "Succeeded");
    EXPECT_STREQ(outcomeName(Outcome::Timeout),
                 "Failed due to timeout");
    EXPECT_STREQ(outcomeName(Outcome::OutOfMemory),
                 "Failed due to out-of-memory");
    EXPECT_STREQ(outcomeName(Outcome::Other), "Other");
}

} // namespace
} // namespace keq::driver
