/** @file Corpus generator tests: determinism, parsability, shape. */

#include <gtest/gtest.h>

#include "src/driver/corpus.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"

namespace keq::driver {
namespace {

TEST(CorpusTest, DeterministicForSeed)
{
    CorpusOptions options;
    options.functionCount = 10;
    EXPECT_EQ(generateCorpusSource(options),
              generateCorpusSource(options));
    CorpusOptions other = options;
    other.seed = options.seed + 1;
    EXPECT_NE(generateCorpusSource(options),
              generateCorpusSource(other));
}

TEST(CorpusTest, ParsesAndVerifies)
{
    CorpusOptions options;
    options.functionCount = 50;
    std::string source = generateCorpusSource(options);
    llvmir::Module module = llvmir::parseModule(source);
    EXPECT_TRUE(llvmir::verifyModule(module).empty());
    size_t defined = 0;
    for (const llvmir::Function &fn : module.functions) {
        if (!fn.isDeclaration())
            ++defined;
    }
    EXPECT_EQ(defined, 50u);
}

TEST(CorpusTest, FeatureTogglesWork)
{
    CorpusOptions no_loops;
    no_loops.functionCount = 40;
    no_loops.includeLoops = false;
    no_loops.includeCalls = false;
    no_loops.includeMemory = false;
    no_loops.includeDivision = false;
    std::string source = generateCorpusSource(no_loops);
    // No loops (the loop template's head label), no calls, no division,
    // no memory traffic. Diamond phis are fine — they are not loops.
    EXPECT_EQ(source.find("head:"), std::string::npos);
    EXPECT_EQ(source.find("call "), std::string::npos);
    EXPECT_EQ(source.find("div i32"), std::string::npos);
    EXPECT_EQ(source.find("rem i32"), std::string::npos);
    EXPECT_EQ(source.find("load"), std::string::npos);
    EXPECT_EQ(source.find("alloca"), std::string::npos);
    llvmir::Module module = llvmir::parseModule(source);
    EXPECT_TRUE(llvmir::verifyModule(module).empty());
}

TEST(CorpusTest, ShapeHasSmallMedianAndLargeTail)
{
    CorpusOptions options;
    options.functionCount = 120;
    llvmir::Module module =
        llvmir::parseModule(generateCorpusSource(options));
    std::vector<size_t> sizes;
    for (const llvmir::Function &fn : module.functions) {
        if (!fn.isDeclaration())
            sizes.push_back(fn.instructionCount());
    }
    std::sort(sizes.begin(), sizes.end());
    // Median stays small; the tail grows past 40 instructions (the
    // paper's Figure 7 right-panel shape, scaled).
    EXPECT_LE(sizes[sizes.size() / 2], 30u);
    EXPECT_GE(sizes.back(), 40u);
}

TEST(CorpusTest, NswPercentControlsUbFlags)
{
    CorpusOptions none;
    none.functionCount = 30;
    none.nswPercent = 0;
    EXPECT_EQ(generateCorpusSource(none).find("nsw"),
              std::string::npos);
    CorpusOptions all;
    all.functionCount = 30;
    all.nswPercent = 100;
    EXPECT_NE(generateCorpusSource(all).find("nsw"), std::string::npos);
}

} // namespace
} // namespace keq::driver
