/** @file Checkpoint layer: FunctionReport serialization is an exact
 *  (canonical-summary-preserving) round-trip, the journal restores
 *  decided verdicts, rejects foreign fingerprints, tolerates torn
 *  tails, and never journals Cancelled verdicts. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>

#include "src/driver/checkpoint.h"
#include "src/llvmir/parser.h"

namespace keq::driver {
namespace {

struct TempFile
{
    std::string path;

    explicit TempFile(const std::string &stem)
        : path((std::filesystem::temp_directory_path() /
                ("keq-checkpoint-test-" + stem + "-" +
                 std::to_string(::getpid()) + ".log"))
                   .string())
    {
        std::remove(path.c_str());
    }

    ~TempFile() { std::remove(path.c_str()); }

    std::string
    read() const
    {
        std::ifstream in(path, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in), {});
    }

    void
    write(const std::string &bytes) const
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << bytes;
    }
};

FunctionReport
sampleReport(const std::string &name)
{
    FunctionReport report;
    report.function = name;
    report.outcome = Outcome::Succeeded;
    report.verdict.kind = checker::VerdictKind::Equivalent;
    report.verdict.stats.solverQueries = 7;
    report.verdict.stats.pointsChecked = 3;
    report.verdict.stats.symbolicSteps = 41;
    report.verdict.stats.pairsExamined = 5;
    report.llvmInstructions = 12;
    report.x86Instructions = 19;
    report.syncPointCount = 3;
    report.specTextSize = 222;
    report.detail = "all obligations discharged";
    return report;
}

TEST(CheckpointTest, SerializationRoundTripsEveryRenderedField)
{
    FunctionReport report = sampleReport("fn_a");
    FunctionReport back;
    ASSERT_TRUE(
        deserializeFunctionReport(serializeFunctionReport(report), back));
    EXPECT_EQ(back.canonicalSummary(), report.canonicalSummary());
    EXPECT_EQ(back.function, "fn_a");
    EXPECT_EQ(back.outcome, Outcome::Succeeded);
    EXPECT_EQ(back.verdict.stats.solverQueries, 7u);
    EXPECT_EQ(back.specTextSize, 222u);
}

TEST(CheckpointTest, SerializationSurvivesHostileStrings)
{
    FunctionReport report = sampleReport("fn\tweird\nname\\");
    report.outcome = Outcome::Other;
    report.verdict.kind = checker::VerdictKind::NotValidated;
    report.verdict.reason = "reason with\ttabs\nand newlines";
    report.detail = "detail\\with\\backslashes\r\n";
    FunctionReport back;
    ASSERT_TRUE(
        deserializeFunctionReport(serializeFunctionReport(report), back));
    EXPECT_EQ(back.function, report.function);
    EXPECT_EQ(back.verdict.reason, report.verdict.reason);
    EXPECT_EQ(back.detail, report.detail);
    EXPECT_EQ(back.canonicalSummary(), report.canonicalSummary());
}

TEST(CheckpointTest, MalformedPayloadsAreRejectedNotFatal)
{
    FunctionReport out;
    EXPECT_FALSE(deserializeFunctionReport("", out));
    EXPECT_FALSE(deserializeFunctionReport("not-a-verdict\tx", out));
    std::string good = serializeFunctionReport(sampleReport("f"));
    EXPECT_FALSE(
        deserializeFunctionReport(good.substr(0, good.size() / 2), out));
    EXPECT_FALSE(deserializeFunctionReport(good + "\textra-field", out));
}

TEST(CheckpointTest, JournalRestoresDecidedVerdicts)
{
    TempFile file("restore");
    {
        CheckpointJournal journal(file.path, "fp-1", false);
        journal.record(sampleReport("one"));
        journal.record(sampleReport("two"));
    }
    CheckpointJournal::Load load =
        CheckpointJournal::load(file.path, "fp-1");
    ASSERT_TRUE(load.ok) << load.error;
    EXPECT_TRUE(load.hasMeta);
    ASSERT_EQ(load.decided.size(), 2u);
    EXPECT_EQ(load.decided.at("one").canonicalSummary(),
              sampleReport("one").canonicalSummary());
}

TEST(CheckpointTest, ForeignFingerprintIsRejected)
{
    TempFile file("fingerprint");
    {
        CheckpointJournal journal(file.path, "fp-module-a", false);
        journal.record(sampleReport("one"));
    }
    CheckpointJournal::Load load =
        CheckpointJournal::load(file.path, "fp-module-b");
    EXPECT_FALSE(load.ok);
    EXPECT_NE(load.error.find("fingerprint"), std::string::npos)
        << load.error;
}

TEST(CheckpointTest, CancelledVerdictsAreNeverJournaled)
{
    TempFile file("cancelled");
    {
        CheckpointJournal journal(file.path, "fp-1", false);
        FunctionReport cancelled = sampleReport("interrupted");
        cancelled.outcome = Outcome::Timeout;
        cancelled.verdict.kind = checker::VerdictKind::Timeout;
        cancelled.verdict.failure = FailureKind::Cancelled;
        journal.record(cancelled);
        journal.record(sampleReport("finished"));
    }
    CheckpointJournal::Load load =
        CheckpointJournal::load(file.path, "fp-1");
    ASSERT_TRUE(load.ok) << load.error;
    EXPECT_EQ(load.decided.count("interrupted"), 0u)
        << "cancellation belongs to the run, not the function";
    EXPECT_EQ(load.decided.count("finished"), 1u);
}

TEST(CheckpointTest, TornTailDropsOnlyTheLastRecord)
{
    TempFile file("torn");
    {
        CheckpointJournal journal(file.path, "fp-1", false);
        journal.record(sampleReport("intact"));
        journal.record(sampleReport("doomed"));
    }
    std::string bytes = file.read();
    file.write(bytes.substr(0, bytes.size() - 3)); // SIGKILL mid-append

    CheckpointJournal::Load load =
        CheckpointJournal::load(file.path, "fp-1");
    ASSERT_TRUE(load.ok) << load.error;
    EXPECT_EQ(load.decided.count("intact"), 1u);
    EXPECT_EQ(load.decided.count("doomed"), 0u);
    EXPECT_EQ(load.truncatedRecords, 1u);
}

TEST(CheckpointTest, ReopeningAJournalAppendsWithoutASecondMeta)
{
    TempFile file("reopen");
    {
        CheckpointJournal journal(file.path, "fp-1", false);
        journal.record(sampleReport("first"));
    }
    {
        CheckpointJournal::Load load =
            CheckpointJournal::load(file.path, "fp-1");
        ASSERT_TRUE(load.ok);
        CheckpointJournal journal(file.path, "fp-1", load.hasMeta);
        journal.record(sampleReport("second"));
    }
    CheckpointJournal::Load load =
        CheckpointJournal::load(file.path, "fp-1");
    ASSERT_TRUE(load.ok) << load.error;
    EXPECT_EQ(load.decided.size(), 2u);
}

TEST(CheckpointTest, LaterRecordsWinOnRerun)
{
    TempFile file("rerun");
    {
        CheckpointJournal journal(file.path, "fp-1", false);
        journal.record(sampleReport("f"));
        FunctionReport redecided = sampleReport("f");
        redecided.detail = "second decision";
        journal.record(redecided);
    }
    CheckpointJournal::Load load =
        CheckpointJournal::load(file.path, "fp-1");
    ASSERT_TRUE(load.ok) << load.error;
    EXPECT_EQ(load.decided.at("f").detail, "second decision");
}

TEST(CheckpointTest, MissingFileIsAFreshCampaign)
{
    CheckpointJournal::Load load =
        CheckpointJournal::load("/nonexistent/keq-checkpoint", "fp");
    EXPECT_TRUE(load.ok);
    EXPECT_TRUE(load.decided.empty());
    EXPECT_FALSE(load.hasMeta);
}

TEST(CheckpointTest, ModuleFingerprintTracksTheFunctionSet)
{
    llvmir::Module one = llvmir::parseModule(R"(
define i32 @f(i32 %a) {
entry:
  %r = add i32 %a, 1
  ret i32 %r
}
)");
    llvmir::Module same = llvmir::parseModule(R"(
define i32 @f(i32 %a) {
entry:
  %r = add i32 %a, 1
  ret i32 %r
}
)");
    llvmir::Module renamed = llvmir::parseModule(R"(
define i32 @g(i32 %a) {
entry:
  %r = add i32 %a, 1
  ret i32 %r
}
)");
    llvmir::Module grown = llvmir::parseModule(R"(
define i32 @f(i32 %a) {
entry:
  %t = add i32 %a, 1
  %r = add i32 %t, 1
  ret i32 %r
}
)");
    EXPECT_EQ(moduleFingerprint(one), moduleFingerprint(same));
    EXPECT_NE(moduleFingerprint(one), moduleFingerprint(renamed));
    EXPECT_NE(moduleFingerprint(one), moduleFingerprint(grown));
}

} // namespace
} // namespace keq::driver
