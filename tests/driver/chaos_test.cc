/** @file Chaos suite (ctest -L chaos): the fault-tolerance contract,
 *  end to end, on the Figure 6 corpus. Injected solver faults must
 *  never change a verdict (the ladder's pristine terminal rung wins),
 *  the pipeline must terminate with every failure classified, and
 *  checkpointed runs — pipeline and fuzz campaign — must survive
 *  truncation + resume with byte-identical canonical summaries. */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <unistd.h>

#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"
#include "src/fuzz/campaign.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/support/diagnostics.h"

namespace keq::driver {
namespace {

llvmir::Module
corpusModule(size_t functions)
{
    CorpusOptions copts;
    copts.seed = 0x6cc2006; // the Figure 6 corpus seed
    copts.functionCount = functions;
    llvmir::Module module =
        llvmir::parseModule(generateCorpusSource(copts));
    llvmir::verifyModuleOrThrow(module);
    return module;
}

struct TempFile
{
    std::string path;

    explicit TempFile(const std::string &stem)
        : path((std::filesystem::temp_directory_path() /
                ("keq-chaos-test-" + stem + "-" +
                 std::to_string(::getpid()) + ".log"))
                   .string())
    {
        std::remove(path.c_str());
    }

    ~TempFile() { std::remove(path.c_str()); }

    std::string
    read() const
    {
        std::ifstream in(path, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in), {});
    }

    void
    write(const std::string &bytes) const
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << bytes;
    }
};

/** ~10% fault rate across all kinds — the ISSUE's headline scenario. */
smt::FaultPlan
tenPercentChaos()
{
    smt::FaultPlan plan;
    plan.seed = 0xc0ffee;
    plan.crashPercent = 3;
    plan.timeoutPercent = 3;
    plan.unknownPercent = 4;
    return plan;
}

TEST(ChaosTest, InjectedFaultsNeverChangeVerdicts)
{
    llvmir::Module module = corpusModule(8);
    PipelineOptions options;

    ModuleReport clean = Pipeline(options, {}).run(module);
    ASSERT_FALSE(clean.functions.empty());
    for (const FunctionReport &report : clean.functions)
        EXPECT_EQ(report.verdict.failure, FailureKind::None);

    ExecutionOptions chaos;
    chaos.faults = tenPercentChaos();
    chaos.solverRetries = 2;
    ModuleReport faulted = Pipeline(options, chaos).run(module);

    EXPECT_EQ(faulted.canonicalSummary(), clean.canonicalSummary())
        << "the pristine terminal rung must reconverge every verdict";
    EXPECT_GT(faulted.solverStats.faultsInjected, 0u)
        << "10% over a corpus run must actually fire";
    EXPECT_GT(faulted.solverStats.guardedRetries +
                  faulted.solverStats.guardedEscalations,
              0u)
        << "every injected fault costs recovery work, not a verdict";
}

TEST(ChaosTest, FaultScheduleIsSchedulingIndependent)
{
    llvmir::Module module = corpusModule(8);
    PipelineOptions options;

    ExecutionOptions serial;
    serial.faults = tenPercentChaos();
    serial.solverRetries = 2;
    ModuleReport one = Pipeline(options, serial).run(module);

    ExecutionOptions threaded = serial;
    threaded.jobs = 4;
    ModuleReport many =
        Pipeline(options, threaded).runParallel(module);

    // Per-function fault plans derive from the function name, not the
    // scheduling order, so a parallel chaos run draws the same faults.
    EXPECT_EQ(one.canonicalSummary(), many.canonicalSummary());
    EXPECT_EQ(one.solverStats.faultsInjected,
              many.solverStats.faultsInjected);
}

TEST(ChaosTest, SaturatedFaultsTerminateWithClassifiedFailures)
{
    llvmir::Module module = corpusModule(4);
    PipelineOptions options;

    ExecutionOptions storm;
    storm.faults = tenPercentChaos();
    storm.faults.crashPercent = 40;
    storm.faults.unknownPercent = 40;
    storm.faults.timeoutPercent = 20;
    storm.solverRetries = 1;
    storm.deadlineMs = 30000; // watchdog armed, but generous

    ModuleReport report = Pipeline(options, storm).run(module);
    ASSERT_EQ(report.functions.size(), 4u)
        << "a fault storm must never lose a function report";
    for (const FunctionReport &fn : report.functions) {
        if (fn.outcome == Outcome::Succeeded) {
            EXPECT_EQ(fn.verdict.failure, FailureKind::None);
        } else {
            EXPECT_NE(fn.verdict.failure, FailureKind::None)
                << fn.function << ": every failure must be classified";
        }
    }
    EXPECT_GT(report.solverStats.faultsInjected, 0u);
}

TEST(ChaosTest, MidRunCancellationUnderParallelismIsNeverJournaled)
{
    llvmir::Module module = corpusModule(10);
    PipelineOptions options;
    ModuleReport reference = Pipeline(options, {}).run(module);

    TempFile checkpoint("midcancel");
    ExecutionOptions exec;
    exec.jobs = 4;
    exec.checkpointPath = checkpoint.path;
    exec.cancel = support::CancellationToken::create();
    std::thread canceller([&exec] {
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        exec.cancel.cancel(); // SIGINT lands while 4 workers are busy
    });
    ModuleReport stormed = Pipeline(options, exec).runParallel(module);
    canceller.join();

    // Every function is reported, split cleanly into completed-before-
    // the-cancel and cancelled; nothing hangs, nothing is lost.
    ASSERT_EQ(stormed.functions.size(), reference.functions.size());
    size_t completed = 0;
    for (const FunctionReport &fn : stormed.functions) {
        if (fn.verdict.failure == FailureKind::Cancelled) {
            EXPECT_EQ(fn.outcome, Outcome::Timeout);
        } else {
            EXPECT_EQ(fn.verdict.failure, FailureKind::None);
            ++completed;
        }
    }

    // Cancelled verdicts must never reach the journal: a resume may
    // only restore genuinely completed functions, and recomputing the
    // remainder converges on the clean summary.
    ExecutionOptions resume;
    resume.checkpointPath = checkpoint.path;
    resume.resume = true;
    ModuleReport resumed = Pipeline(options, resume).run(module);
    EXPECT_LE(resumed.resumedFunctions, completed);
    EXPECT_EQ(resumed.canonicalSummary(), reference.canonicalSummary());
}

TEST(ChaosTest, CancelledRunReportsEveryFunctionWithoutJournaling)
{
    llvmir::Module module = corpusModule(4);
    TempFile checkpoint("cancelled");

    ExecutionOptions exec;
    exec.cancel = support::CancellationToken::create();
    exec.cancel.cancel(); // cancelled before the first function
    exec.checkpointPath = checkpoint.path;
    ModuleReport report = Pipeline({}, exec).run(module);

    ASSERT_EQ(report.functions.size(), 4u);
    for (const FunctionReport &fn : report.functions) {
        EXPECT_EQ(fn.outcome, Outcome::Timeout);
        EXPECT_EQ(fn.verdict.failure, FailureKind::Cancelled);
    }

    // Cancelled verdicts are an artifact of this run: a resumed run
    // must recompute them all.
    ExecutionOptions resume;
    resume.checkpointPath = checkpoint.path;
    resume.resume = true;
    ModuleReport resumed = Pipeline({}, resume).run(module);
    EXPECT_EQ(resumed.resumedFunctions, 0u);
    EXPECT_EQ(resumed.countOutcome(Outcome::Succeeded),
              Pipeline({}, {}).run(module).countOutcome(
                  Outcome::Succeeded));
}

TEST(ChaosTest, TruncatedCheckpointResumesToTheExactSummary)
{
    llvmir::Module module = corpusModule(8);
    PipelineOptions options;
    ModuleReport reference = Pipeline(options, {}).run(module);

    TempFile checkpoint("resume");
    ExecutionOptions first;
    first.checkpointPath = checkpoint.path;
    ModuleReport journaled = Pipeline(options, first).run(module);
    EXPECT_EQ(journaled.canonicalSummary(),
              reference.canonicalSummary());

    // SIGKILL mid-append: drop the tail of the journal.
    std::string bytes = checkpoint.read();
    ASSERT_GT(bytes.size(), 200u);
    checkpoint.write(bytes.substr(0, bytes.size() - 100));

    ExecutionOptions second;
    second.checkpointPath = checkpoint.path;
    second.resume = true;
    ModuleReport resumed = Pipeline(options, second).run(module);

    EXPECT_EQ(resumed.canonicalSummary(), reference.canonicalSummary())
        << "resume must reproduce the uninterrupted run exactly";
    EXPECT_GT(resumed.resumedFunctions, 0u)
        << "the intact journal prefix must be honoured";
    EXPECT_LT(resumed.resumedFunctions, module.functions.size())
        << "the truncated tail must be recomputed";
}

TEST(ChaosTest, ChaoticCheckpointedParallelResumeStillConverges)
{
    // The headline composition: faults + parallelism + truncation +
    // resume, all at once, must still reproduce the clean summary.
    llvmir::Module module = corpusModule(8);
    PipelineOptions options;
    ModuleReport reference = Pipeline(options, {}).run(module);

    TempFile checkpoint("chaotic");
    ExecutionOptions chaos;
    chaos.faults = tenPercentChaos();
    chaos.solverRetries = 2;
    chaos.jobs = 4;
    chaos.checkpointPath = checkpoint.path;
    Pipeline(options, chaos).runParallel(module);

    std::string bytes = checkpoint.read();
    ASSERT_GT(bytes.size(), 200u);
    checkpoint.write(bytes.substr(0, bytes.size() - 100));

    ExecutionOptions resume = chaos;
    resume.resume = true;
    ModuleReport resumed =
        Pipeline(options, resume).runParallel(module);
    EXPECT_EQ(resumed.canonicalSummary(), reference.canonicalSummary());
}

TEST(ChaosTest, ResumeAgainstADifferentModuleFailsLoudly)
{
    TempFile checkpoint("foreign");
    llvmir::Module eight = corpusModule(8);
    ExecutionOptions first;
    first.checkpointPath = checkpoint.path;
    Pipeline({}, first).run(eight);

    llvmir::Module six = corpusModule(6);
    ExecutionOptions resume;
    resume.checkpointPath = checkpoint.path;
    resume.resume = true;
    EXPECT_THROW(Pipeline({}, resume).run(six), support::Error)
        << "splicing stale verdicts into another module is a user error";
}

TEST(ChaosTest, CampaignCheckpointResumesToTheExactSummary)
{
    fuzz::CampaignOptions options;
    options.seed = 20260806;
    options.iterations = 6;
    options.jobs = 1;
    options.calibrate = false;
    options.generator.targetOps = 10;
    options.oracle.trials = 4;
    std::string reference =
        fuzz::runCampaign(options).canonicalSummary();

    TempFile checkpoint("campaign");
    fuzz::CampaignOptions journaled = options;
    journaled.checkpointPath = checkpoint.path;
    EXPECT_EQ(fuzz::runCampaign(journaled).canonicalSummary(),
              reference);

    std::string bytes = checkpoint.read();
    ASSERT_GT(bytes.size(), 100u);
    checkpoint.write(bytes.substr(0, bytes.size() - 60));

    fuzz::CampaignOptions resumed = journaled;
    resumed.resume = true;
    fuzz::CampaignResult result = fuzz::runCampaign(resumed);
    EXPECT_EQ(result.canonicalSummary(), reference);
    EXPECT_GT(result.resumedIterations, 0u);
    EXPECT_LT(result.resumedIterations, options.iterations);
}

TEST(ChaosTest, CampaignResumeWithAForeignSeedFailsLoudly)
{
    fuzz::CampaignOptions options;
    options.seed = 111;
    options.iterations = 3;
    options.calibrate = false;
    options.generator.targetOps = 10;
    options.oracle.trials = 2;

    TempFile checkpoint("campaign-seed");
    options.checkpointPath = checkpoint.path;
    fuzz::runCampaign(options);

    fuzz::CampaignOptions foreign = options;
    foreign.seed = 222;
    foreign.resume = true;
    EXPECT_THROW(fuzz::runCampaign(foreign), support::Error);
}

} // namespace
} // namespace keq::driver
