/** @file Portfolio parity suite (ctest -L portfolio): racing solver
 *  strategy lanes must be invisible in every verdict. Portfolio off is
 *  byte-identical to the pre-portfolio pipeline; 2- and 3-lane races
 *  (in-process and sandboxed) reproduce the single-lane verdicts over
 *  the synthetic Figure 6 corpus and all checked-in conformance corpus
 *  files; batched discharge is verdict-neutral; a losing lane's
 *  cancellation never surfaces in the Figure 6 failure taxonomy; and a
 *  chaos storm over racing workers stays contained per query. */

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "src/conformance/corpus.h"
#include "src/conformance/runner.h"
#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"

namespace keq::driver {
namespace {

llvmir::Module
corpusModule(size_t functions)
{
    CorpusOptions copts;
    copts.seed = 0x6cc2006; // the Figure 6 corpus seed
    copts.functionCount = functions;
    llvmir::Module module =
        llvmir::parseModule(generateCorpusSource(copts));
    llvmir::verifyModuleOrThrow(module);
    return module;
}

uint64_t
portfolioWinTotal(const smt::SolverStats &stats)
{
    uint64_t wins = 0;
    for (uint64_t lane_wins : stats.portfolioWins)
        wins += lane_wins;
    return wins;
}

TEST(PortfolioParity, PortfolioOffIsByteIdenticalToTheSeedStack)
{
    llvmir::Module module = corpusModule(8);
    PipelineOptions options;

    ModuleReport reference = Pipeline(options, {}).run(module);

    ExecutionOptions one_lane;
    one_lane.portfolioLanes = 1;
    ModuleReport single = Pipeline(options, one_lane).run(module);

    EXPECT_EQ(single.canonicalSummary(), reference.canonicalSummary())
        << "--portfolio=1 must leave the stack byte-identical";
    EXPECT_EQ(portfolioWinTotal(single.solverStats), 0u);
    EXPECT_EQ(single.solverStats.portfolioCancellations, 0u);
    EXPECT_EQ(single.solverStats.crossLaneDisagreements, 0u);
    EXPECT_EQ(single.solverStats.batchedQueries, 0u);
}

TEST(PortfolioParity, ThreeLaneRaceReproducesSingleLaneVerdicts)
{
    llvmir::Module module = corpusModule(10);
    PipelineOptions options;

    ModuleReport reference = Pipeline(options, {}).run(module);

    ExecutionOptions raced;
    raced.portfolioLanes = 3;
    ModuleReport portfolio = Pipeline(options, raced).run(module);

    EXPECT_EQ(portfolio.canonicalSummary(),
              reference.canonicalSummary())
        << "the checker must not be able to tell queries were raced";
    EXPECT_GT(portfolioWinTotal(portfolio.solverStats), 0u)
        << "the portfolio must actually have raced";
    EXPECT_EQ(portfolio.solverStats.crossLaneDisagreements, 0u);
}

TEST(PortfolioParity, ExplicitLaneSpecReproducesVerdicts)
{
    llvmir::Module module = corpusModule(6);
    PipelineOptions options;

    ModuleReport reference = Pipeline(options, {}).run(module);

    ExecutionOptions raced;
    raced.portfolioLaneSpec = "default,seed5,cold:random_seed=3";
    ModuleReport portfolio = Pipeline(options, raced).run(module);

    EXPECT_EQ(portfolio.canonicalSummary(),
              reference.canonicalSummary());
    EXPECT_GT(portfolioWinTotal(portfolio.solverStats), 0u);
}

TEST(PortfolioParity, InvalidLaneSpecFailsFunctionsAsUnsupported)
{
    llvmir::Module module = corpusModule(3);
    PipelineOptions options;

    ExecutionOptions bad;
    bad.portfolioLaneSpec = "warp-drive";
    ModuleReport report = Pipeline(options, bad).run(module);

    ASSERT_EQ(report.functions.size(), 3u);
    for (const FunctionReport &fn : report.functions) {
        EXPECT_EQ(fn.outcome, Outcome::Unsupported)
            << fn.function << ": a malformed roster must fail loudly, "
            << "not silently race a default";
    }
}

TEST(PortfolioParity, BatchedDischargeIsVerdictNeutral)
{
    // The synthetic Figure 6 corpus folds every sync-point obligation
    // away before the solver sees it, so it checks neutrality only.
    llvmir::Module module = corpusModule(10);
    PipelineOptions options;
    ModuleReport reference = Pipeline(options, {}).run(module);

    PipelineOptions batched_options;
    batched_options.checker.batchDischarge = true;
    ModuleReport batched = Pipeline(batched_options, {}).run(module);

    EXPECT_EQ(batched.canonicalSummary(), reference.canonicalSummary())
        << "hypothesis splitting must never change a verdict";
    EXPECT_EQ(reference.solverStats.batchedQueries, 0u);

    // The checked-in corpus has files (gep_nested, unreachable_path,
    // ...) whose obligations survive folding and genuinely hit the
    // solver through the batched path: sweep them all, byte-compare
    // verdicts, and require the batch counter to have moved somewhere.
    uint64_t total_batched = 0;
    for (const conformance::CorpusCase &corpus_case :
         conformance::loadCorpusDir(KEQ_CORPUS_DIR)) {
        llvmir::Module corpus_module =
            llvmir::parseModule(corpus_case.source);
        llvmir::verifyModuleOrThrow(corpus_module);
        PipelineOptions case_options;
        case_options.isel = corpus_case.isel;
        ModuleReport case_reference =
            Pipeline(case_options, {}).run(corpus_module);

        PipelineOptions case_batched = case_options;
        case_batched.checker.batchDischarge = true;
        ModuleReport case_report =
            Pipeline(case_batched, {}).run(corpus_module);

        EXPECT_EQ(case_report.canonicalSummary(),
                  case_reference.canonicalSummary())
            << corpus_case.name;
        total_batched += case_report.solverStats.batchedQueries;
    }
    EXPECT_GT(total_batched, 0u)
        << "the batched path must actually have discharged obligations";
}

/**
 * The Figure 6 taxonomy regression for losing lanes: a raced run whose
 * losers get wire-cancelled must never report a function (or journal a
 * checkpoint record) classified FailureKind::Cancelled — that
 * classification is reserved for *user* cancellation (SIGINT).
 */
TEST(PortfolioParity, LosingLaneCancellationsNeverEnterTheTaxonomy)
{
    llvmir::Module module = corpusModule(10);
    PipelineOptions options;

    ExecutionOptions raced;
    raced.portfolioLanes = 3;
    ModuleReport portfolio = Pipeline(options, raced).run(module);

    for (const FunctionReport &fn : portfolio.functions) {
        EXPECT_NE(fn.verdict.failure, FailureKind::Cancelled)
            << fn.function
            << ": loser reaping leaked into the failure taxonomy";
    }
    // The verdict counters keep the one-logical-query contract: every
    // counted query has exactly one verdict even though up to three
    // lanes answered it.
    const smt::SolverStats &stats = portfolio.solverStats;
    EXPECT_EQ(stats.sat + stats.unsat + stats.unknown, stats.queries);
}

TEST(PortfolioParity, SandboxedPortfolioMatchesReference)
{
    llvmir::Module module = corpusModule(8);
    PipelineOptions options;

    ModuleReport reference = Pipeline(options, {}).run(module);

    ExecutionOptions raced;
    raced.sandbox = true;
    raced.workerPath = KEQ_WORKER_BIN;
    raced.portfolioLanes = 2;
    ModuleReport portfolio = Pipeline(options, raced).run(module);

    EXPECT_EQ(portfolio.canonicalSummary(),
              reference.canonicalSummary());
    EXPECT_GT(portfolio.solverStats.wireBytesSent, 0u)
        << "the sandbox must actually have been used";
    EXPECT_GT(portfolioWinTotal(portfolio.solverStats), 0u)
        << "worker groups must actually have raced";
    EXPECT_EQ(portfolio.solverStats.crossLaneDisagreements, 0u);
    for (const FunctionReport &fn : portfolio.functions)
        EXPECT_NE(fn.verdict.failure, FailureKind::Cancelled);
}

/** The verdict-identity prefix of a canonical summary line: function,
 *  outcome, verdict kind, failure, refinement flag — everything before
 *  the query/step accounting counters. */
std::string
verdictPrefix(const std::string &canonical_line)
{
    size_t counters = canonical_line.find(" | queries=");
    return counters == std::string::npos
               ? canonical_line
               : canonical_line.substr(0, counters);
}

/**
 * Chaos over a racing pool: real SIGKILL/SIGSEGV landing on lane
 * workers mid-race. A race that loses one lane converges on the
 * survivor; a race that loses every lane costs exactly that query.
 * Either way each function stays accounted: a clean function matches
 * the clean run byte-for-byte, a function that *absorbed* a kill
 * (checker degraded around one lost query and still proved the
 * verdict) matches on the verdict and shows the crash in its own
 * stats, and a function that lost a query outright carries a
 * worker-death/timeout classification — never Cancelled, never a lost
 * report, never a hang.
 */
TEST(PortfolioChaos, LaneKillsMidRaceStayContainedPerQuery)
{
    llvmir::Module module = corpusModule(12);
    PipelineOptions options;
    ModuleReport clean = Pipeline(options, {}).run(module);
    std::unordered_map<std::string, std::string> clean_lines;
    for (const FunctionReport &fn : clean.functions)
        clean_lines[fn.function] = fn.canonicalSummary();

    ExecutionOptions chaos;
    chaos.sandbox = true;
    chaos.workerPath = KEQ_WORKER_BIN;
    chaos.portfolioLanes = 2;
    chaos.jobs = 2;
    chaos.sandboxChaosKillRate = 0.25;
    chaos.sandboxChaosSeed = 0xbadcafe;
    ModuleReport stormed = Pipeline(options, chaos).runParallel(module);

    ASSERT_EQ(stormed.functions.size(), clean.functions.size())
        << "lane deaths must never lose a function report";
    for (const FunctionReport &fn : stormed.functions) {
        if (fn.verdict.failure == FailureKind::None) {
            if (fn.canonicalSummary() != clean_lines[fn.function]) {
                // The query accounting may differ only when this
                // function really absorbed a worker death (e.g. a
                // killed path-equivalence probe downgraded the
                // hypothesis without changing the verdict).
                EXPECT_EQ(verdictPrefix(fn.canonicalSummary()),
                          verdictPrefix(clean_lines[fn.function]))
                    << fn.function;
                EXPECT_GT(fn.verdict.stats.solverStats.workerCrashes +
                              fn.verdict.stats.solverStats
                                  .heartbeatTimeouts,
                          0u)
                    << fn.function
                    << ": accounting drifted without a recorded crash";
            }
        } else {
            EXPECT_TRUE(fn.verdict.failure == FailureKind::WorkerKilled ||
                        fn.verdict.failure == FailureKind::WorkerOom ||
                        fn.verdict.failure == FailureKind::Timeout ||
                        fn.verdict.failure ==
                            FailureKind::SolverUnknown)
                << fn.function << ": "
                << failureKindName(fn.verdict.failure);
            EXPECT_NE(fn.outcome, Outcome::Succeeded);
        }
    }
}

/**
 * Every checked-in conformance corpus file through the portfolio, both
 * in-process (3 lanes) and sandboxed (2 lanes), byte-compared against
 * the reference cell the way the conformance matrix does.
 */
TEST(PortfolioConformance, AllCorpusFilesAgreeAcrossPortfolioCells)
{
    using conformance::CorpusCase;
    using conformance::MatrixCell;
    using conformance::RunnerOptions;

    std::vector<CorpusCase> cases =
        conformance::loadCorpusDir(KEQ_CORPUS_DIR);
    ASSERT_FALSE(cases.empty());

    RunnerOptions options;
    options.workerPath = KEQ_WORKER_BIN;
    MatrixCell reference_cell{false, true, true, 1, 1};
    MatrixCell raced_in_process{false, true, true, 1, 3};
    MatrixCell raced_sandboxed{true, true, true, 1, 2};

    for (const CorpusCase &corpus_case : cases) {
        ModuleReport reference =
            conformance::runCase(corpus_case, reference_cell, options);
        std::string reference_outcomes =
            conformance::outcomeSectionJson(reference);

        ModuleReport in_process =
            conformance::runCase(corpus_case, raced_in_process, options);
        EXPECT_EQ(conformance::outcomeSectionJson(in_process),
                  reference_outcomes)
            << corpus_case.name << " [in-process portfolio]";
        EXPECT_EQ(in_process.canonicalSummary(),
                  reference.canonicalSummary())
            << corpus_case.name << " [in-process portfolio]";

        bool degraded = false;
        ModuleReport sandboxed =
            conformance::runCase(corpus_case, raced_sandboxed, options, &degraded);
        EXPECT_FALSE(degraded) << corpus_case.name;
        EXPECT_EQ(conformance::outcomeSectionJson(sandboxed),
                  reference_outcomes)
            << corpus_case.name << " [sandboxed portfolio]";
        EXPECT_EQ(sandboxed.canonicalSummary(),
                  reference.canonicalSummary())
            << corpus_case.name << " [sandboxed portfolio]";
    }
}

} // namespace
} // namespace keq::driver
