/** @file Sandbox chaos suite (ctest -L chaos): the out-of-process
 *  solver pool under the full pipeline. A sandboxed run must reproduce
 *  the in-process verdicts exactly; a chaos-monkey run delivering real
 *  SIGKILL/SIGSEGV to busy workers must lose at most the individually
 *  killed queries (classified, never a hang, never a lost function);
 *  and a missing worker binary must degrade to in-process solving, not
 *  fail the run. */

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"

namespace keq::driver {
namespace {

llvmir::Module
corpusModule(size_t functions)
{
    CorpusOptions copts;
    copts.seed = 0x6cc2006; // the Figure 6 corpus seed
    copts.functionCount = functions;
    llvmir::Module module =
        llvmir::parseModule(generateCorpusSource(copts));
    llvmir::verifyModuleOrThrow(module);
    return module;
}

ExecutionOptions
sandboxed()
{
    ExecutionOptions exec;
    exec.sandbox = true;
    exec.workerPath = KEQ_WORKER_BIN;
    return exec;
}

TEST(SandboxChaosTest, SandboxedVerdictsMatchInProcessExactly)
{
    llvmir::Module module = corpusModule(10);
    PipelineOptions options;

    ModuleReport in_process = Pipeline(options, {}).run(module);
    ModuleReport via_sandbox =
        Pipeline(options, sandboxed()).run(module);

    EXPECT_EQ(via_sandbox.canonicalSummary(),
              in_process.canonicalSummary())
        << "the checker must not be able to tell the solver lives in "
           "another process";
    EXPECT_GT(via_sandbox.solverStats.wireBytesSent, 0u)
        << "the sandbox must actually have been used";
    EXPECT_EQ(via_sandbox.solverStats.workerCrashes, 0u);
}

TEST(SandboxChaosTest, ParallelSandboxedRunMatchesSerial)
{
    llvmir::Module module = corpusModule(10);
    PipelineOptions options;

    ModuleReport serial = Pipeline(options, sandboxed()).run(module);

    ExecutionOptions parallel = sandboxed();
    parallel.jobs = 4;
    ModuleReport threaded =
        Pipeline(options, parallel).runParallel(module);

    EXPECT_EQ(threaded.canonicalSummary(), serial.canonicalSummary());
}

TEST(SandboxChaosTest, RealWorkerKillsAreContainedPerQuery)
{
    llvmir::Module module = corpusModule(12);
    PipelineOptions options;
    ModuleReport clean = Pipeline(options, {}).run(module);
    std::unordered_map<std::string, std::string> clean_lines;
    for (const FunctionReport &fn : clean.functions)
        clean_lines[fn.function] = fn.canonicalSummary();

    // Real chaos: every 5 ms each busy worker has a 30% chance of
    // taking a genuine SIGKILL or SIGSEGV, across 4 threads.
    ExecutionOptions chaos = sandboxed();
    chaos.jobs = 4;
    chaos.sandboxChaosKillRate = 0.3;
    chaos.sandboxChaosSeed = 0xdead5eed;
    ModuleReport stormed =
        Pipeline(options, chaos).runParallel(module);

    ASSERT_EQ(stormed.functions.size(), clean.functions.size())
        << "worker deaths must never lose a function report";
    for (const FunctionReport &fn : stormed.functions) {
        if (fn.verdict.failure == FailureKind::None) {
            // Untouched by the monkey: byte-identical to the clean run.
            EXPECT_EQ(fn.canonicalSummary(), clean_lines[fn.function]);
        } else {
            // A kill landed on this function's query: the loss is
            // classified as a worker death (or the heartbeat deadline),
            // never an unexplained failure.
            EXPECT_TRUE(fn.verdict.failure == FailureKind::WorkerKilled ||
                        fn.verdict.failure == FailureKind::WorkerOom ||
                        fn.verdict.failure == FailureKind::Timeout)
                << fn.function << ": "
                << failureKindName(fn.verdict.failure);
            EXPECT_NE(fn.outcome, Outcome::Succeeded);
        }
    }
}

TEST(SandboxChaosTest, MissingWorkerBinaryDegradesToInProcess)
{
    llvmir::Module module = corpusModule(6);
    PipelineOptions options;
    ModuleReport reference = Pipeline(options, {}).run(module);

    ExecutionOptions broken = sandboxed();
    broken.workerPath = "/nonexistent/keq-solver-worker";
    ModuleReport degraded = Pipeline(options, broken).run(module);

    EXPECT_EQ(degraded.canonicalSummary(), reference.canonicalSummary())
        << "degradation must warn and proceed, not fail the run";
    EXPECT_EQ(degraded.solverStats.wireBytesSent, 0u);
}

} // namespace
} // namespace keq::driver
