/** @file runParallel determinism tests: parallel validation must produce
 *  byte-identical ordered verdicts to the serial pipeline, and the shared
 *  QueryCache must survive concurrent hammering from raw threads. */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/smt/caching_solver.h"
#include "src/smt/term_factory.h"
#include "src/smt/z3_solver.h"

namespace keq::driver {
namespace {

llvmir::Module
corpusModule(size_t functions)
{
    CorpusOptions copts;
    copts.seed = 0x6cc2006; // the Figure 6 corpus seed
    copts.functionCount = functions;
    llvmir::Module module =
        llvmir::parseModule(generateCorpusSource(copts));
    llvmir::verifyModuleOrThrow(module);
    return module;
}

TEST(ParallelPipelineTest, ParallelVerdictsMatchSerialAtEveryJobCount)
{
    llvmir::Module module = corpusModule(12);
    PipelineOptions options; // no wall budgets: verdicts must be
                             // timing-independent

    Pipeline serial(options, ExecutionOptions{.jobs = 1});
    ModuleReport reference = serial.run(module);
    ASSERT_FALSE(reference.functions.empty());

    for (unsigned jobs : {1u, 2u, 8u}) {
        ExecutionOptions exec;
        exec.jobs = jobs;
        Pipeline pipeline(options, exec);
        ModuleReport parallel = pipeline.runParallel(module);
        ASSERT_EQ(parallel.functions.size(),
                  reference.functions.size());
        // Reports come back in module order regardless of completion
        // order, with identical outcomes and verdicts.
        EXPECT_EQ(parallel.canonicalSummary(),
                  reference.canonicalSummary())
            << "jobs=" << jobs;
        // The stats contract holds whether or not queries were cached:
        // every query is resolved by exactly one stage of the stack.
        EXPECT_EQ(parallel.solverStats.queries,
                  reference.solverStats.queries)
            << "jobs=" << jobs;
        EXPECT_EQ(parallel.solverStats.rewriteResolved +
                      parallel.solverStats.sliceResolved +
                      parallel.solverStats.cacheHits +
                      parallel.solverStats.cacheMisses,
                  parallel.solverStats.queries)
            << "jobs=" << jobs;
        // Preprocessing is deterministic and thread-independent, so the
        // per-stage resolution counts match the serial run exactly.
        EXPECT_EQ(parallel.solverStats.rewriteResolved,
                  reference.solverStats.rewriteResolved)
            << "jobs=" << jobs;
        EXPECT_EQ(parallel.solverStats.sliceResolved,
                  reference.solverStats.sliceResolved)
            << "jobs=" << jobs;
    }
}

TEST(ParallelPipelineTest, CachingNeverChangesVerdicts)
{
    llvmir::Module module = corpusModule(10);
    PipelineOptions options;

    ExecutionOptions uncached;
    uncached.jobs = 1;
    uncached.solverCache = false;
    ModuleReport cold = Pipeline(options, uncached).run(module);

    ExecutionOptions cached; // defaults: shared cache on
    ModuleReport warm = Pipeline(options, cached).run(module);
    EXPECT_EQ(cold.canonicalSummary(), warm.canonicalSummary());
    EXPECT_GT(warm.cacheStats.hits + warm.cacheStats.modelHits, 0u)
        << "the Figure 6 corpus repeats query shapes; the cache "
           "should catch some";

    ExecutionOptions private_cache;
    private_cache.sharedCache = false;
    ModuleReport per_function =
        Pipeline(options, private_cache).runParallel(module);
    EXPECT_EQ(cold.canonicalSummary(), per_function.canonicalSummary());
}

TEST(ParallelPipelineTest, CachePersistsAcrossRunsOfOnePipeline)
{
    llvmir::Module module = corpusModule(6);
    Pipeline pipeline;
    ModuleReport first = pipeline.run(module);
    ModuleReport second = pipeline.run(module);
    EXPECT_EQ(first.canonicalSummary(), second.canonicalSummary());
    // Every query of the rerun repeats one from the first run: whatever
    // preprocessing does not resolve outright, the warm cache answers
    // without the backend.
    EXPECT_EQ(second.solverStats.cacheMisses, 0u);
    EXPECT_EQ(second.solverStats.cacheHits +
                  second.solverStats.rewriteResolved +
                  second.solverStats.sliceResolved,
              second.solverStats.queries);
    // Preprocessing is deterministic: both runs resolve the same
    // queries at the same stages.
    EXPECT_EQ(second.solverStats.rewriteResolved,
              first.solverStats.rewriteResolved);
    EXPECT_EQ(second.solverStats.sliceResolved,
              first.solverStats.sliceResolved);
}

/**
 * Thread-safety smoke: raw std::threads (the Pipeline clamps its worker
 * count to the host's hardware parallelism, which may be 1) hammer one
 * shared QueryCache through per-thread TermFactory/Z3Solver/CachingSolver
 * stacks — the exact ownership model runParallel uses. Every thread
 * issues a mix of queries with known verdicts, most shared across
 * threads, and every verdict must come back right.
 */
TEST(ParallelPipelineTest, SharedCacheSurvivesConcurrentWorkers)
{
    constexpr unsigned kThreads = 8;
    constexpr unsigned kQueries = 64;
    auto cache = std::make_shared<smt::QueryCache>();

    std::vector<std::vector<smt::SatResult>> verdicts(kThreads);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &verdicts, cache]() {
            smt::TermFactory tf; // hash-consing stays thread-local
            smt::Z3Solver backend(tf);
            // Preprocessing off: these tiny queries would be resolved
            // by the rewrite engine, and this test is specifically
            // about hammering the shared cache.
            smt::CachingSolver solver(tf, backend, cache,
                                      {.simplify = false,
                                       .slice = false});
            smt::Term x = tf.var("x", smt::Sort::bitVec(32));
            for (unsigned i = 0; i < kQueries; ++i) {
                // Same query stream in every thread: maximal contention
                // on the shards, and (i % 3 == 2) keys repeat.
                uint64_t k = i % 3 == 2 ? i - 1 : i;
                smt::Term eq_k =
                    tf.mkEq(x, tf.bvConst(32, 0x1000 + k));
                if (k % 2 == 0) {
                    // Satisfiable: x == c.
                    verdicts[t].push_back(solver.checkSat({eq_k}));
                } else {
                    // Contradiction: x == c && x == c + 1.
                    smt::Term eq_k1 = tf.mkEq(
                        x, tf.bvConst(32, 0x1000 + k + 1));
                    verdicts[t].push_back(
                        solver.checkSat({eq_k, eq_k1}));
                }
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    for (unsigned t = 0; t < kThreads; ++t) {
        ASSERT_EQ(verdicts[t].size(), kQueries);
        for (unsigned i = 0; i < kQueries; ++i) {
            uint64_t k = i % 3 == 2 ? i - 1 : i;
            smt::SatResult expected = k % 2 == 0
                                          ? smt::SatResult::Sat
                                          : smt::SatResult::Unsat;
            EXPECT_EQ(verdicts[t][i], expected)
                << "thread " << t << " query " << i;
        }
    }

    smt::CacheStats stats = cache->stats();
    EXPECT_EQ(stats.hits + stats.misses,
              uint64_t{kThreads} * kQueries);
    EXPECT_GT(stats.hits, 0u) << "threads must share verdicts";
    EXPECT_LE(stats.modelHits, stats.misses);
}

} // namespace
} // namespace keq::driver
