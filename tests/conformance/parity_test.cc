/**
 * @file
 * Cross-configuration parity over the conformance corpus: the same
 * corpus file validated through the sandboxed stack and the in-process
 * stack (and through degenerate/parallel execution shapes) must yield
 * byte-identical `--stats-json` outcome sections and byte-identical
 * canonical summaries. This is the matrix-consistency contract of
 * DESIGN.md §12, pinned per-family so a regression names the corpus
 * family that diverged instead of a 16-cell aggregate.
 *
 * The corpus directory and the worker binary are baked in at compile
 * time (KEQ_CORPUS_DIR, KEQ_WORKER_BIN), mirroring the sandbox suite.
 */

#include <gtest/gtest.h>

#include "src/conformance/corpus.h"
#include "src/conformance/runner.h"

namespace keq::conformance {
namespace {

const CorpusCase &
corpusCase(const std::string &name)
{
    static const std::vector<CorpusCase> cases =
        loadCorpusDir(KEQ_CORPUS_DIR);
    for (const CorpusCase &corpus_case : cases)
        if (corpus_case.name == name)
            return corpus_case;
    throw std::runtime_error("corpus file missing: " + name);
}

RunnerOptions
runnerOptions()
{
    RunnerOptions options;
    options.workerPath = KEQ_WORKER_BIN;
    return options;
}

/**
 * One corpus family per parameter; the pretty test name is the corpus
 * file name, so a failure reads "SandboxMatchesInProcess/gep_nested".
 */
class ConformanceParityTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ConformanceParityTest, SandboxMatchesInProcess)
{
    const CorpusCase &corpus_case = corpusCase(GetParam());
    RunnerOptions options = runnerOptions();
    MatrixCell in_process{false, true, true, 1};
    MatrixCell sandboxed{true, true, true, 1};

    driver::ModuleReport reference =
        runCase(corpus_case, in_process, options);
    bool degraded = false;
    driver::ModuleReport sandbox_report =
        runCase(corpus_case, sandboxed, options, &degraded);

    // The worker binary is a build dependency of this test: a degraded
    // sandbox cell here means the parity claim was never exercised.
    EXPECT_FALSE(degraded) << "sandbox fell back to in-process solving";
    EXPECT_EQ(outcomeSectionJson(reference),
              outcomeSectionJson(sandbox_report));
    EXPECT_EQ(reference.canonicalSummary(),
              sandbox_report.canonicalSummary());
    EXPECT_TRUE(matchesExpect(reference, corpus_case.expect));
    EXPECT_TRUE(matchesExpect(sandbox_report, corpus_case.expect));
}

TEST_P(ConformanceParityTest, ParallelUnoptimizedMatchesReference)
{
    const CorpusCase &corpus_case = corpusCase(GetParam());
    RunnerOptions options = runnerOptions();
    MatrixCell reference_cell{false, true, true, 1};
    MatrixCell stripped{false, false, false, 4};

    driver::ModuleReport reference =
        runCase(corpus_case, reference_cell, options);
    driver::ModuleReport stripped_report =
        runCase(corpus_case, stripped, options);

    EXPECT_EQ(outcomeSectionJson(reference),
              outcomeSectionJson(stripped_report));
    EXPECT_EQ(reference.canonicalSummary(),
              stripped_report.canonicalSummary());
}

// The families this PR adds to the corpus: aggregate GEPs, select
// chains, phi webs, narrow memory, division trap edges, the two
// reintroduced Section 5.2 miscompiles, and the unsupported fragments.
INSTANTIATE_TEST_SUITE_P(
    NewCorpusFamilies, ConformanceParityTest,
    ::testing::Values("gep_struct", "gep_nested", "gep_deep_nest",
                      "select_chain", "select_narrow", "phi_web",
                      "mem_narrow_i1", "div_sdiv_minus_one",
                      "div_register", "icmp_narrow_widths",
                      "bug_waw_store_merge", "bug_load_widening",
                      "gap_div64", "gap_sext_i1"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

} // namespace
} // namespace keq::conformance
