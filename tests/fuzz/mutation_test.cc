/**
 * @file
 * Kill-guarantee tests for the mutation catalogue: every entry must
 * apply to its own exemplar, every miscompile entry's mutant must be
 * rejected by the checker, and every benign entry's mutant must still
 * validate.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/driver/pipeline.h"
#include "src/fuzz/mutation_catalog.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/support/rng.h"

namespace keq::fuzz {
namespace {

using support::Rng;

const llvmir::Function &
namedFunction(const llvmir::Module &module, std::string_view name)
{
    for (const llvmir::Function &fn : module.functions) {
        if (fn.name == name)
            return fn;
    }
    ADD_FAILURE() << "no function " << name;
    return module.functions.front();
}

TEST(MutationCatalog, IdsAreUniqueAndResolvable)
{
    std::set<std::string> ids;
    for (const Mutation &mutation : mutationCatalog()) {
        EXPECT_TRUE(ids.insert(mutation.id).second)
            << "duplicate id " << mutation.id;
        EXPECT_EQ(findMutation(mutation.id), &mutation);
    }
    EXPECT_EQ(findMutation("no-such-mutation"), nullptr);
    EXPECT_GE(ids.size(), 8u);
}

TEST(MutationCatalog, CoversBothKindsAndBothExpectations)
{
    size_t isel_bugs = 0;
    size_t rewrites = 0;
    size_t benign = 0;
    for (const Mutation &mutation : mutationCatalog()) {
        (mutation.kind == MutationKind::IselBug ? isel_bugs : rewrites)++;
        benign += mutation.expectEquivalent ? 1 : 0;
    }
    EXPECT_GE(isel_bugs, 2u);
    EXPECT_GE(rewrites, 6u);
    EXPECT_GE(benign, 2u);
}

TEST(MutationCatalog, EveryEntryAppliesToItsExemplar)
{
    for (const Mutation &mutation : mutationCatalog()) {
        SCOPED_TRACE(mutation.id);
        llvmir::Module module = llvmir::parseModule(mutation.exemplar);
        ASSERT_TRUE(llvmir::verifyModule(module).empty());
        const llvmir::Function &fn =
            namedFunction(module, mutation.exemplarFunction);
        Rng rng(1);
        MutantLowering mutant = lowerMutant(mutation, module, fn, rng);
        EXPECT_TRUE(mutant.applied);
    }
}

TEST(MutationCatalog, CheckerKillsEveryMiscompileExemplar)
{
    driver::PipelineOptions pipeline;
    for (const Mutation &mutation : mutationCatalog()) {
        if (mutation.expectEquivalent)
            continue;
        SCOPED_TRACE(mutation.id);
        llvmir::Module module = llvmir::parseModule(mutation.exemplar);
        const llvmir::Function &fn =
            namedFunction(module, mutation.exemplarFunction);
        Rng rng(1);
        MutantLowering mutant = lowerMutant(mutation, module, fn, rng);
        ASSERT_TRUE(mutant.applied);
        driver::FunctionReport report = driver::validateFunctionPair(
            module, fn, mutant.mfn, mutant.hints, pipeline);
        EXPECT_EQ(report.outcome, driver::Outcome::Other)
            << "checker validated an injected miscompile";
    }
}

TEST(MutationCatalog, CheckerAcceptsBenignRewritesOnTheirExemplars)
{
    driver::PipelineOptions pipeline;
    for (const Mutation &mutation : mutationCatalog()) {
        if (!mutation.expectEquivalent)
            continue;
        SCOPED_TRACE(mutation.id);
        llvmir::Module module = llvmir::parseModule(mutation.exemplar);
        const llvmir::Function &fn =
            namedFunction(module, mutation.exemplarFunction);
        Rng rng(1);
        MutantLowering mutant = lowerMutant(mutation, module, fn, rng);
        ASSERT_TRUE(mutant.applied);
        driver::FunctionReport report = driver::validateFunctionPair(
            module, fn, mutant.mfn, mutant.hints, pipeline);
        EXPECT_EQ(report.outcome, driver::Outcome::Succeeded)
            << "checker rejected a semantics-preserving rewrite";
    }
}

TEST(MutationCatalog, MutantLoweringIsDeterministic)
{
    for (const Mutation &mutation : mutationCatalog()) {
        SCOPED_TRACE(mutation.id);
        llvmir::Module module = llvmir::parseModule(mutation.exemplar);
        const llvmir::Function &fn =
            namedFunction(module, mutation.exemplarFunction);
        Rng a(77);
        Rng b(77);
        MutantLowering first = lowerMutant(mutation, module, fn, a);
        MutantLowering second = lowerMutant(mutation, module, fn, b);
        EXPECT_EQ(first.mfn.toString(), second.mfn.toString());
    }
}

} // namespace
} // namespace keq::fuzz
