/**
 * @file
 * Shrinker tests. The acceptance-criterion case: a synthetic failing
 * seed (an operand-swap miscompile buried in dead arithmetic and a
 * spurious diamond) must shrink by at least 50% of its instructions
 * while the failing verdict — checker kills the mutant — still
 * reproduces on the reduced module.
 */

#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/fuzz/mutation_catalog.h"
#include "src/fuzz/shrinker.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/support/rng.h"

namespace keq::fuzz {
namespace {

using support::Rng;

/**
 * The interesting core is `sub i32 %a, %b`; everything else is noise the
 * shrinker should strip: a dead 12-add chain, a diamond whose arms only
 * feed dead code, and large constants.
 */
constexpr const char *kNoisyFailingProgram = R"(
define i32 @noisy(i32 %a, i32 %b) {
entry:
  %x = sub i32 %a, %b
  %c = icmp slt i32 %a, 123456
  br i1 %c, label %t, label %f
t:
  %t0 = add i32 %a, 1000
  br label %join
f:
  %f0 = add i32 %b, 2000
  br label %join
join:
  %phi = phi i32 [ %t0, %t ], [ %f0, %f ]
  %j0 = add i32 %phi, 1
  %j1 = add i32 %j0, 2
  %j2 = add i32 %j1, 3
  %j3 = add i32 %j2, 4
  %j4 = add i32 %j3, 5
  %j5 = add i32 %j4, 6
  %j6 = add i32 %j5, 7
  %j7 = add i32 %j6, 8
  %j8 = add i32 %j7, 9
  %j9 = add i32 %j8, 10
  %j10 = add i32 %j9, 11
  %j11 = add i32 %j10, 12
  ret i32 %x
}
)";

/** "The failure still reproduces": operand-swap applies and is killed. */
bool
swapStillKilled(const llvmir::Module &candidate)
{
    const Mutation *mutation = findMutation("operand-swap");
    if (mutation == nullptr || candidate.functions.empty())
        return false;
    const llvmir::Function *fn = nullptr;
    for (const llvmir::Function &f : candidate.functions) {
        if (!f.isDeclaration())
            fn = &f;
    }
    if (fn == nullptr)
        return false;
    try {
        Rng rng(1);
        MutantLowering mutant =
            lowerMutant(*mutation, candidate, *fn, rng);
        if (!mutant.applied)
            return false;
        driver::FunctionReport report = driver::validateFunctionPair(
            candidate, *fn, mutant.mfn, mutant.hints, {});
        return report.outcome == driver::Outcome::Other;
    } catch (const std::exception &) {
        return false;
    }
}

TEST(FuzzShrinker, ReducesSyntheticFailureByHalfPreservingVerdict)
{
    llvmir::Module module = llvmir::parseModule(kNoisyFailingProgram);
    ASSERT_TRUE(llvmir::verifyModule(module).empty());
    ASSERT_TRUE(swapStillKilled(module));

    ShrinkResult result = shrinkModule(module, swapStillKilled);

    EXPECT_TRUE(llvmir::verifyModule(result.module).empty());
    EXPECT_TRUE(swapStillKilled(result.module));
    EXPECT_GE(result.stats.reduction(), 0.5)
        << "shrunk " << result.stats.originalInstructions << " -> "
        << result.stats.finalInstructions << ":\n"
        << result.module.toString();
    EXPECT_LT(result.stats.finalInstructions,
              result.stats.originalInstructions);
    EXPECT_GT(result.stats.accepted, 0u);
}

TEST(FuzzShrinker, CountsInstructions)
{
    llvmir::Module module = llvmir::parseModule(kNoisyFailingProgram);
    // 3 in entry + 2 + 2 + 14 in join = 21.
    EXPECT_EQ(moduleInstructionCount(module), 21u);
}

TEST(FuzzShrinker, ShrinkIsDeterministic)
{
    llvmir::Module module = llvmir::parseModule(kNoisyFailingProgram);
    ShrinkResult first = shrinkModule(module, swapStillKilled);
    ShrinkResult second = shrinkModule(module, swapStillKilled);
    EXPECT_EQ(first.module.toString(), second.module.toString());
    EXPECT_EQ(first.stats.attempts, second.stats.attempts);
    EXPECT_EQ(first.stats.accepted, second.stats.accepted);
}

TEST(FuzzShrinker, TrivialPredicateShrinksToMinimum)
{
    llvmir::Module module = llvmir::parseModule(kNoisyFailingProgram);
    // Keep-anything predicate: everything deletable must go.
    ShrinkResult result = shrinkModule(
        module, [](const llvmir::Module &) { return true; });
    EXPECT_TRUE(llvmir::verifyModule(result.module).empty());
    // The dead chain, the phi, and one diamond arm disappear; what
    // remains is the returned value's def plus one terminator per
    // surviving block (there is no block-merging pass).
    EXPECT_LE(result.stats.finalInstructions, 4u);
}

} // namespace
} // namespace keq::fuzz
