/**
 * @file
 * Property tests for the random IR generator: every seed must produce a
 * program that parses and passes the verifier, and generation must be a
 * pure function of the Rng stream.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/fuzz/generator.h"
#include "src/llvmir/coverage.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/support/rng.h"

namespace keq::fuzz {
namespace {

using support::Rng;

TEST(FuzzGenerator, ManySeedsParseAndVerify)
{
    GeneratorOptions options;
    for (uint64_t seed = 0; seed < 200; ++seed) {
        Rng rng = Rng::stream(0xfeedULL, seed);
        // generateModule parses + verifies internally and throws
        // support::Error (labelled "generator bug") on any diagnostic.
        llvmir::Module module = generateModule(rng, options);
        ASSERT_FALSE(module.functions.empty()) << "seed " << seed;
    }
}

TEST(FuzzGenerator, DeterministicForEqualStreams)
{
    GeneratorOptions options;
    Rng a = Rng::stream(42, 7);
    Rng b = Rng::stream(42, 7);
    EXPECT_EQ(generateModuleSource(a, options),
              generateModuleSource(b, options));
}

TEST(FuzzGenerator, DistinctSeedsProduceDistinctPrograms)
{
    GeneratorOptions options;
    std::set<std::string> sources;
    for (uint64_t seed = 0; seed < 32; ++seed) {
        Rng rng = Rng::stream(3, seed);
        sources.insert(generateFunctionSource(rng, options));
    }
    // Collisions would mean the generator ignores its stream.
    EXPECT_GT(sources.size(), 28u);
}

TEST(FuzzGenerator, FeatureKnobsOffStillVerify)
{
    GeneratorOptions options;
    options.loops = false;
    options.memory = false;
    options.calls = false;
    options.switches = false;
    options.division = false;
    for (uint64_t seed = 0; seed < 50; ++seed) {
        Rng rng = Rng::stream(9, seed);
        Rng copy = rng;
        llvmir::Module module = generateModule(rng, options);
        ASSERT_FALSE(module.functions.empty());
        // With memory and calls disabled the body must not touch the
        // external interface.
        std::string source = generateFunctionSource(copy, options);
        EXPECT_EQ(source.find("call"), std::string::npos);
        EXPECT_EQ(source.find("load"), std::string::npos);
        EXPECT_EQ(source.find("store"), std::string::npos);
    }
}

TEST(FuzzGenerator, RespectsTargetOps)
{
    GeneratorOptions small;
    small.targetOps = 4;
    small.maxDepth = 1;
    GeneratorOptions big;
    big.targetOps = 40;
    big.maxDepth = 3;
    size_t small_total = 0;
    size_t big_total = 0;
    for (uint64_t seed = 0; seed < 20; ++seed) {
        Rng a = Rng::stream(11, seed);
        Rng b = Rng::stream(11, seed);
        small_total += generateFunctionSource(a, small).size();
        big_total += generateFunctionSource(b, big).size();
    }
    EXPECT_LT(small_total * 2, big_total);
}

TEST(FuzzGenerator, PreludeVerifiesOnItsOwn)
{
    llvmir::Module module = llvmir::parseModule(generatorPrelude());
    EXPECT_TRUE(llvmir::verifyModule(module).empty());
}

TEST(FuzzGenerator, DefaultOptionsNeverTouchOptInFamilies)
{
    // Old campaign seeds must stay replayable: the opt-in families are
    // dark with default options — same prelude, no aggregate globals,
    // and the flags-off stream is identical to the default stream.
    GeneratorOptions options;
    EXPECT_EQ(generatorPrelude(options), generatorPrelude());
    for (uint64_t seed = 0; seed < 50; ++seed) {
        Rng rng = Rng::stream(21, seed);
        std::string source = generateModuleSource(rng, options);
        EXPECT_EQ(source.find("@fz_pair"), std::string::npos);
        EXPECT_EQ(source.find("@fz_grid"), std::string::npos);
    }
}

TEST(FuzzGenerator, AggregateGepsEmitAndVerify)
{
    GeneratorOptions options;
    options.aggregateGeps = true;
    options.targetOps = 30;
    EXPECT_NE(generatorPrelude(options).find("@fz_pair"),
              std::string::npos);
    CoverageMap coverage;
    for (uint64_t seed = 0; seed < 80; ++seed) {
        Rng rng = Rng::stream(22, seed);
        // generateModule throws on any verifier diagnostic, so every
        // emitted aggregate GEP is also proven well-typed here.
        coverage.recordModule(generateModule(rng, options));
    }
    EXPECT_GT(coverage.shapeCount(CoverageShape::GepStructField), 0u);
    EXPECT_GT(coverage.shapeCount(CoverageShape::GepArrayIndex), 0u);
    EXPECT_GT(coverage.shapeCount(CoverageShape::GepNested), 0u);
    EXPECT_GT(coverage.shapeCount(CoverageShape::NarrowLoad), 0u);
    EXPECT_GT(coverage.shapeCount(CoverageShape::NarrowStore), 0u);
}

TEST(FuzzGenerator, SelectChainsEmitAndVerify)
{
    GeneratorOptions options;
    options.selectChains = true;
    options.targetOps = 30;
    // No new globals: select chains must not disturb the prelude.
    EXPECT_EQ(generatorPrelude(options), generatorPrelude());
    CoverageMap coverage;
    for (uint64_t seed = 0; seed < 80; ++seed) {
        Rng rng = Rng::stream(23, seed);
        coverage.recordModule(generateModule(rng, options));
    }
    EXPECT_GT(coverage.shapeCount(CoverageShape::SelectChain), 0u);
}

TEST(FuzzGenerator, OptInFamiliesDeterministicForEqualStreams)
{
    GeneratorOptions options;
    options.aggregateGeps = true;
    options.selectChains = true;
    Rng a = Rng::stream(24, 5);
    Rng b = Rng::stream(24, 5);
    EXPECT_EQ(generateModuleSource(a, options),
              generateModuleSource(b, options));
}

} // namespace
} // namespace keq::fuzz
