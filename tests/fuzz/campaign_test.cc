/**
 * @file
 * Campaign-level tests: scheduling-independent determinism, the
 * calibration kill guarantee, absence of oracle disagreements on a
 * healthy checker, and the reproducer replay round-trip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/fuzz/campaign.h"
#include "src/support/diagnostics.h"

namespace keq::fuzz {
namespace {

CampaignOptions
smallCampaign()
{
    CampaignOptions options;
    options.seed = 20260806;
    options.iterations = 8;
    options.jobs = 1;
    options.generator.targetOps = 10;
    options.oracle.trials = 4;
    return options;
}

TEST(FuzzCampaign, SummaryIsIdenticalAcrossJobCounts)
{
    CampaignOptions serial = smallCampaign();
    CampaignOptions threaded = smallCampaign();
    threaded.jobs = 3;
    CampaignResult a = runCampaign(serial);
    CampaignResult b = runCampaign(threaded);
    EXPECT_EQ(a.canonicalSummary(), b.canonicalSummary());
    ASSERT_EQ(a.reproducers.size(), b.reproducers.size());
    for (size_t i = 0; i < a.reproducers.size(); ++i)
        EXPECT_EQ(a.reproducers[i].artifact, b.reproducers[i].artifact);
}

TEST(FuzzCampaign, RepeatRunsAreByteIdentical)
{
    CampaignOptions options = smallCampaign();
    CampaignResult a = runCampaign(options);
    CampaignResult b = runCampaign(options);
    EXPECT_EQ(a.canonicalSummary(), b.canonicalSummary());
}

TEST(FuzzCampaign, CalibrationKillsEveryMiscompileClass)
{
    CampaignOptions options = smallCampaign();
    options.iterations = 0; // calibration only
    CampaignResult result = runCampaign(options);
    EXPECT_TRUE(result.allMiscompileClassesKilled());
    for (const Mutation &mutation : mutationCatalog()) {
        if (mutation.expectEquivalent)
            continue;
        auto it = result.stats.killsByMutation.find(mutation.id);
        ASSERT_NE(it, result.stats.killsByMutation.end())
            << mutation.id;
        EXPECT_GE(it->second, 1u) << mutation.id;
    }
}

TEST(FuzzCampaign, HealthyCheckerHasNoOracleDisagreements)
{
    CampaignOptions options = smallCampaign();
    CampaignResult result = runCampaign(options);
    EXPECT_EQ(result.stats.soundnessBugs, 0u);
    EXPECT_EQ(result.stats.completenessGaps, 0u);
    EXPECT_TRUE(result.reproducers.empty());
    EXPECT_GT(result.stats.baselineValidated, 0u);
    EXPECT_GT(result.stats.mutantsApplied, 0u);
}

TEST(FuzzCampaign, CoverageLedgerIsSchedulingIndependent)
{
    CampaignOptions serial = smallCampaign();
    CampaignOptions threaded = smallCampaign();
    threaded.jobs = 3;
    CampaignResult a = runCampaign(serial);
    CampaignResult b = runCampaign(threaded);
    EXPECT_GT(a.stats.coverage.totalInstructions(), 0u);
    // Merging is commutative, so the ledger must not depend on which
    // worker recorded which iteration.
    EXPECT_TRUE(a.stats.coverage == b.stats.coverage);
    EXPECT_EQ(a.stats.coverage.serialize(), b.stats.coverage.serialize());
}

TEST(FuzzCampaign, CoverageLedgerSurvivesCheckpointResume)
{
    std::string path =
        (std::filesystem::temp_directory_path() /
         "keq-campaign-coverage-ckpt.journal")
            .string();
    std::remove(path.c_str());

    CampaignOptions options = smallCampaign();
    options.checkpointPath = path;
    CampaignResult first = runCampaign(options);
    ASSERT_GT(first.stats.coverage.totalInstructions(), 0u);

    options.resume = true;
    CampaignResult resumed = runCampaign(options);
    EXPECT_EQ(resumed.resumedIterations, resumed.iterationsRun);
    // Restored iterations carry their journaled ledger slices, so the
    // resumed campaign reports the same coverage as the original.
    EXPECT_TRUE(first.stats.coverage == resumed.stats.coverage);
    std::remove(path.c_str());
}

TEST(FuzzCampaign, OnlyMutationRestrictsTheRandomPhase)
{
    CampaignOptions options = smallCampaign();
    options.calibrate = false;
    options.onlyMutation = "flag-clobber";
    CampaignResult result = runCampaign(options);
    for (const auto &[id, count] : result.stats.appliedByMutation) {
        EXPECT_EQ(id, "flag-clobber");
        EXPECT_GT(count, 0u);
    }
}

TEST(FuzzCampaign, ReplayReproducesRecordedKill)
{
    // A hand-written artifact in the persisted format: the operand-swap
    // mutant of the sub exemplar, recorded as a completeness-class
    // failure ("reproduces" = checker still kills it).
    std::string artifact = "; keq-fuzz-repro v1\n"
                           "; mutation=operand-swap\n"
                           "; class=completeness\n"
                           "; seed=1\n"
                           "; iteration=0\n"
                           "; mutseed=1\n"
                           "; oracleseed=5\n"
                           "define i32 @swapped(i32 %a, i32 %b) {\n"
                           "entry:\n"
                           "  %x = sub i32 %a, %b\n"
                           "  ret i32 %x\n"
                           "}\n";
    CampaignOptions options;
    ReplayResult replay = replayReproducer(artifact, options);
    EXPECT_EQ(replay.classification, "completeness");
    EXPECT_TRUE(replay.reproduced);
    EXPECT_EQ(replay.oracle.verdict, OracleVerdict::Killed);
}

TEST(FuzzCampaign, ReplayOfSoundnessClaimFailsOnHealthyChecker)
{
    std::string artifact = "; keq-fuzz-repro v1\n"
                           "; mutation=operand-swap\n"
                           "; class=soundness\n"
                           "; seed=1\n"
                           "; iteration=0\n"
                           "; mutseed=1\n"
                           "; oracleseed=5\n"
                           "define i32 @swapped(i32 %a, i32 %b) {\n"
                           "entry:\n"
                           "  %x = sub i32 %a, %b\n"
                           "  ret i32 %x\n"
                           "}\n";
    CampaignOptions options;
    ReplayResult replay = replayReproducer(artifact, options);
    // The checker kills the miscompile, so the recorded "checker
    // validated a divergent pair" soundness claim must NOT reproduce.
    EXPECT_FALSE(replay.reproduced);
    EXPECT_EQ(replay.oracle.verdict, OracleVerdict::Killed);
}

TEST(FuzzCampaign, ReplayRejectsMetadataFreeArtifacts)
{
    CampaignOptions options;
    ReplayResult replay =
        replayReproducer("define void @f() {\nentry:\n  ret void\n}\n",
                         options);
    EXPECT_FALSE(replay.reproduced);
    EXPECT_FALSE(replay.detail.empty());
}

TEST(FuzzCampaign, ReplayOfACorruptArtifactDiagnosesTheField)
{
    // A truncated/hand-edited artifact with a garbage counter used to
    // abort inside std::stoull; it must throw a support::Error naming
    // the bad field instead.
    std::string artifact = "; keq-fuzz-repro v1\n"
                           "; mutation=operand-swap\n"
                           "; class=completeness\n"
                           "; seed=1\n"
                           "; iteration=0\n"
                           "; mutseed=not-a-number\n"
                           "; oracleseed=5\n"
                           "define i32 @swapped(i32 %a, i32 %b) {\n"
                           "entry:\n"
                           "  %x = sub i32 %a, %b\n"
                           "  ret i32 %x\n"
                           "}\n";
    CampaignOptions options;
    try {
        replayReproducer(artifact, options);
        FAIL() << "corrupt artifact must throw";
    } catch (const keq::support::Error &error) {
        std::string what = error.what();
        EXPECT_NE(what.find("mutseed"), std::string::npos) << what;
        EXPECT_NE(what.find("not-a-number"), std::string::npos) << what;
    }
}

} // namespace
} // namespace keq::fuzz
