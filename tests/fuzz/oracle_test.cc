/**
 * @file
 * Differential-oracle tests: clean lowerings must cross-check as Agree,
 * injected miscompiles as Killed (with the executions actually
 * diverging), and the trial stream must be deterministic.
 */

#include <gtest/gtest.h>

#include "src/fuzz/generator.h"
#include "src/fuzz/mutation_catalog.h"
#include "src/fuzz/oracle.h"
#include "src/isel/isel.h"
#include "src/llvmir/parser.h"
#include "src/support/rng.h"

namespace keq::fuzz {
namespace {

using support::Rng;

constexpr const char *kSubProgram = R"(
define i32 @swapped(i32 %a, i32 %b) {
entry:
  %x = sub i32 %a, %b
  ret i32 %x
}
)";

TEST(FuzzOracle, CleanLoweringAgrees)
{
    llvmir::Module module = llvmir::parseModule(kSubProgram);
    const llvmir::Function &fn = module.functions.front();
    isel::FunctionHints hints;
    vx86::MFunction mfn = isel::lowerFunction(module, fn, {}, hints);
    Rng rng(5);
    OracleResult result = crossCheck(module, fn, mfn, hints, rng);
    EXPECT_EQ(result.verdict, OracleVerdict::Agree);
    EXPECT_EQ(result.execution, ExecAgreement::Agree);
    EXPECT_GT(result.trialsObserved, 0u);
}

TEST(FuzzOracle, OperandSwapIsKilledAndDiverges)
{
    const Mutation *mutation = findMutation("operand-swap");
    ASSERT_NE(mutation, nullptr);
    llvmir::Module module = llvmir::parseModule(kSubProgram);
    const llvmir::Function &fn = module.functions.front();
    Rng mut_rng(1);
    MutantLowering mutant = lowerMutant(*mutation, module, fn, mut_rng);
    ASSERT_TRUE(mutant.applied);
    Rng rng(5);
    OracleResult result =
        crossCheck(module, fn, mutant.mfn, mutant.hints, rng);
    // sub is anti-commutative: random inputs expose the swap, and the
    // checker must reject it — both sources of truth fire.
    EXPECT_EQ(result.verdict, OracleVerdict::Killed);
    EXPECT_EQ(result.execution, ExecAgreement::Diverged);
    EXPECT_GE(result.divergentTrial, 0);
}

TEST(FuzzOracle, ExecutionComparisonCatchesSwapWithoutChecker)
{
    const Mutation *mutation = findMutation("operand-swap");
    ASSERT_NE(mutation, nullptr);
    llvmir::Module module = llvmir::parseModule(kSubProgram);
    const llvmir::Function &fn = module.functions.front();
    Rng mut_rng(1);
    MutantLowering mutant = lowerMutant(*mutation, module, fn, mut_rng);
    ASSERT_TRUE(mutant.applied);
    Rng rng(5);
    OracleResult scratch;
    ExecAgreement agreement = compareExecutions(module, fn, mutant.mfn,
                                                rng, {}, scratch);
    EXPECT_EQ(agreement, ExecAgreement::Diverged);
}

TEST(FuzzOracle, TrialsAreDeterministic)
{
    GeneratorOptions gen;
    Rng gen_rng = Rng::stream(21, 4);
    llvmir::Module module = generateModule(gen_rng, gen);
    const llvmir::Function *fn = nullptr;
    for (const llvmir::Function &candidate : module.functions) {
        if (!candidate.isDeclaration())
            fn = &candidate;
    }
    ASSERT_NE(fn, nullptr);
    isel::FunctionHints hints;
    vx86::MFunction mfn = isel::lowerFunction(module, *fn, {}, hints);
    Rng a(99);
    Rng b(99);
    OracleResult first = crossCheck(module, *fn, mfn, hints, a);
    OracleResult second = crossCheck(module, *fn, mfn, hints, b);
    EXPECT_EQ(first.verdict, second.verdict);
    EXPECT_EQ(first.execution, second.execution);
    EXPECT_EQ(first.trialsObserved, second.trialsObserved);
    EXPECT_EQ(first.divergentTrial, second.divergentTrial);
    EXPECT_EQ(first.detail, second.detail);
}

TEST(FuzzOracle, GeneratedProgramsValidateAndAgree)
{
    GeneratorOptions gen;
    gen.targetOps = 8;
    for (uint64_t seed = 0; seed < 5; ++seed) {
        SCOPED_TRACE(seed);
        Rng gen_rng = Rng::stream(31, seed);
        llvmir::Module module = generateModule(gen_rng, gen);
        const llvmir::Function *fn = nullptr;
        for (const llvmir::Function &candidate : module.functions) {
            if (!candidate.isDeclaration())
                fn = &candidate;
        }
        ASSERT_NE(fn, nullptr);
        isel::FunctionHints hints;
        vx86::MFunction mfn =
            isel::lowerFunction(module, *fn, {}, hints);
        Rng rng(seed * 3 + 1);
        OracleResult result = crossCheck(module, *fn, mfn, hints, rng);
        // The real ISel on a UB-free generated program: the checker
        // validates and the interpreters agree.
        EXPECT_EQ(result.verdict, OracleVerdict::Agree);
    }
}

} // namespace
} // namespace keq::fuzz
