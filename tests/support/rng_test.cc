/** @file Determinism and range tests for the corpus RNG. */

#include <gtest/gtest.h>

#include <algorithm>

#include "src/support/rng.h"

namespace keq::support {
namespace {

TEST(RngTest, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 32; ++i) {
        if (a.next() != b.next())
            ++differing;
    }
    EXPECT_GT(differing, 28);
}

TEST(RngTest, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        uint64_t value = rng.range(3, 5);
        EXPECT_GE(value, 3u);
        EXPECT_LE(value, 5u);
        saw_lo |= value == 3;
        saw_hi |= value == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChancePercentExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chancePercent(0));
        EXPECT_TRUE(rng.chancePercent(100));
    }
}

TEST(RngSplitTest, SplitIsDeterministic)
{
    Rng a(42), b(42);
    Rng child_a = a.split(), child_b = b.split();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(child_a.next(), child_b.next());
    // The parents advanced identically too.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngSplitTest, ChildIndependentOfParentDraws)
{
    // The child stream's values must not depend on how much the parent
    // draws *after* the split.
    Rng a(7), b(7);
    Rng child_a = a.split();
    Rng child_b = b.split();
    for (int i = 0; i < 50; ++i)
        a.next(); // perturb only one parent
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(child_a.next(), child_b.next());
}

TEST(RngSplitTest, SiblingsDiverge)
{
    Rng parent(13);
    Rng first = parent.split();
    Rng second = parent.split();
    int differing = 0;
    for (int i = 0; i < 64; ++i) {
        if (first.next() != second.next())
            ++differing;
    }
    EXPECT_GT(differing, 60);
}

TEST(RngSplitTest, SplitDivergesFromParent)
{
    Rng parent(99);
    Rng child = parent.split();
    int differing = 0;
    for (int i = 0; i < 64; ++i) {
        if (parent.next() != child.next())
            ++differing;
    }
    EXPECT_GT(differing, 60);
}

TEST(RngStreamTest, PureInSeedAndIndex)
{
    Rng a = Rng::stream(0x5eed, 17);
    Rng b = Rng::stream(0x5eed, 17);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngStreamTest, DistinctIndicesDiverge)
{
    // Consecutive indices must give unrelated streams (this is what
    // makes fuzz campaign iterations independent of scheduling).
    Rng a = Rng::stream(1, 0);
    Rng b = Rng::stream(1, 1);
    int differing = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() != b.next())
            ++differing;
    }
    EXPECT_GT(differing, 60);
}

TEST(RngHelperTest, ChoiceAndShuffleDeterministic)
{
    std::vector<int> pool{10, 20, 30, 40, 50};
    Rng a(3), b(3);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.choice(pool), b.choice(pool));

    std::vector<int> va = pool, vb = pool;
    a.shuffle(va);
    b.shuffle(vb);
    EXPECT_EQ(va, vb);
    // A shuffle is a permutation.
    std::vector<int> sorted = va;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, pool);
}

} // namespace
} // namespace keq::support
