/** @file Determinism and range tests for the corpus RNG. */

#include <gtest/gtest.h>

#include "src/support/rng.h"

namespace keq::support {
namespace {

TEST(RngTest, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 32; ++i) {
        if (a.next() != b.next())
            ++differing;
    }
    EXPECT_GT(differing, 28);
}

TEST(RngTest, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        uint64_t value = rng.range(3, 5);
        EXPECT_GE(value, 3u);
        EXPECT_LE(value, 5u);
        saw_lo |= value == 3;
        saw_hi |= value == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChancePercentExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chancePercent(0));
        EXPECT_TRUE(rng.chancePercent(100));
    }
}

} // namespace
} // namespace keq::support
