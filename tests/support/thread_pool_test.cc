/** @file ThreadPool exception propagation: a throwing task must not
 *  take its worker down (regression — workers used to die in the
 *  uncaught exception, wedging wait() forever); the first exception
 *  resurfaces from wait(), and the pool stays usable afterwards. */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

#include "src/support/thread_pool.h"

namespace keq::support {
namespace {

TEST(ThreadPoolTest, ThrowingTaskDoesNotKillTheWorker)
{
    ThreadPool pool(1); // one worker: it must survive the throw to run
                        // the follow-up task
    std::atomic<int> ran{0};
    pool.submit([] { throw std::runtime_error("task failed"); });
    pool.submit([&] { ran.fetch_add(1); });

    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 1) << "the worker must outlive the throw";
}

TEST(ThreadPoolTest, WaitRethrowsTheFirstExceptionThenClears)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    try {
        pool.wait();
        FAIL() << "wait() must rethrow";
    } catch (const std::runtime_error &error) {
        EXPECT_STREQ(error.what(), "boom");
    }

    // The error is consumed: a later clean batch waits cleanly.
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolTest, RemainingTasksRunDespiteAnEarlyThrow)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([] { throw std::runtime_error("first"); });
    for (int i = 0; i < 16; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 16)
        << "a failing unit of work fails alone; the batch completes";
}

TEST(ThreadPoolTest, ParallelForPropagatesBodyExceptions)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(parallelFor(pool, 32,
                             [&](size_t index) {
                                 if (index == 7)
                                     throw std::runtime_error("body");
                                 ran.fetch_add(1);
                             }),
                 std::runtime_error);
    EXPECT_EQ(ran.load(), 31) << "all other indices still run";
}

TEST(ThreadPoolTest, DestructionWithAPendingErrorIsClean)
{
    // Nobody calls wait(): the stored exception_ptr must not block or
    // crash teardown.
    ThreadPool pool(1);
    pool.submit([] { throw std::runtime_error("unobserved"); });
}

} // namespace
} // namespace keq::support
