/** @file Unit tests for the evaluation histogram. */

#include <gtest/gtest.h>

#include "src/support/histogram.h"

namespace keq::support {
namespace {

TEST(HistogramTest, BucketsValues)
{
    Histogram h({0.0, 1.0, 10.0});
    h.add(0.5);
    h.add(1.5);
    h.add(5.0);
    h.add(100.0);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bucketCountAt(0), 1u);
    EXPECT_EQ(h.bucketCountAt(1), 2u);
    EXPECT_EQ(h.bucketCountAt(2), 1u);
}

TEST(HistogramTest, BelowFirstBoundaryFallsInFirstBucket)
{
    Histogram h({1.0, 2.0});
    h.add(0.1);
    EXPECT_EQ(h.bucketCountAt(0), 1u);
}

TEST(HistogramTest, Statistics)
{
    Histogram h({0.0, 100.0});
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        h.add(v);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    EXPECT_DOUBLE_EQ(h.median(), 3.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 5.0);
}

TEST(HistogramTest, LogSpacedBoundaries)
{
    // Boundaries: 0.001, 0.01, 0.1, 1 -> buckets [0.001, 0.01), ...
    Histogram h = Histogram::logSpaced(0.001, 10.0, 4);
    h.add(0.0005); // below the first bound: first bucket
    h.add(0.005);  // [0.001, 0.01)
    h.add(0.05);   // [0.01, 0.1)
    h.add(0.5);    // [0.1, 1)
    h.add(5.0);    // [1, inf)
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.bucketCountAt(0), 2u);
    EXPECT_EQ(h.bucketCountAt(1), 1u);
    EXPECT_EQ(h.bucketCountAt(2), 1u);
    EXPECT_EQ(h.bucketCountAt(3), 1u);
}

TEST(HistogramTest, RenderListsNonEmptyBuckets)
{
    Histogram h({0.0, 1.0});
    h.add(0.5);
    std::string text = h.render("s");
    EXPECT_NE(text.find("[0.000s, 1.000s)"), std::string::npos);
    EXPECT_NE(text.find("#"), std::string::npos);
}

TEST(HistogramTest, EmptyStatisticsAreZero)
{
    Histogram h({0.0});
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.median(), 0.0);
}

} // namespace
} // namespace keq::support
