/** @file Append-only journal: escaping round-trips, records survive a
 *  clean writer/loader cycle, torn tails and checksum corruption drop
 *  only the damaged suffix, and kind mismatches fail loudly. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>

#include "src/support/journal.h"

namespace keq::support {
namespace {

/** Unique temp path per test, removed on destruction. */
struct TempFile
{
    std::string path;

    explicit TempFile(const std::string &stem)
        : path((std::filesystem::temp_directory_path() /
                ("keq-journal-test-" + stem + "-" +
                 std::to_string(::getpid()) + ".log"))
                   .string())
    {
        std::remove(path.c_str());
    }

    ~TempFile() { std::remove(path.c_str()); }

    std::string
    read() const
    {
        std::ifstream in(path, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in), {});
    }

    void
    write(const std::string &bytes) const
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << bytes;
    }
};

TEST(JournalTest, EscapingRoundTripsControlCharacters)
{
    const std::string nasty = "a\\b\nc\td\re\\n";
    std::string escaped = escapeLine(nasty);
    EXPECT_EQ(escaped.find('\n'), std::string::npos);
    EXPECT_EQ(escaped.find('\t'), std::string::npos);
    EXPECT_EQ(escaped.find('\r'), std::string::npos);
    std::string back;
    ASSERT_TRUE(unescapeLine(escaped, back));
    EXPECT_EQ(back, nasty);

    std::string out;
    EXPECT_FALSE(unescapeLine("dangling\\", out)) << "truncated escape";
    EXPECT_FALSE(unescapeLine("bad\\q", out)) << "unknown escape";
}

TEST(JournalTest, WriteThenLoadReturnsEveryRecord)
{
    TempFile file("roundtrip");
    {
        JournalWriter writer(file.path, "test-kind");
        writer.append("first");
        writer.append("second with\nnewline");
        writer.append("");
    }
    JournalLoad load = loadJournal(file.path, "test-kind");
    ASSERT_TRUE(load.ok) << load.error;
    ASSERT_EQ(load.records.size(), 3u);
    EXPECT_EQ(load.records[0], "first");
    EXPECT_EQ(load.records[1], "second with\nnewline");
    EXPECT_EQ(load.records[2], "");
    EXPECT_EQ(load.truncatedRecords, 0u);
}

TEST(JournalTest, MissingFileIsAFreshJournal)
{
    JournalLoad load = loadJournal("/nonexistent/keq-journal", "kind");
    EXPECT_TRUE(load.ok);
    EXPECT_TRUE(load.records.empty());
}

TEST(JournalTest, WrongKindIsRejected)
{
    TempFile file("kind");
    {
        JournalWriter writer(file.path, "alpha");
        writer.append("record");
    }
    JournalLoad load = loadJournal(file.path, "beta");
    EXPECT_FALSE(load.ok);
    EXPECT_NE(load.error.find("alpha"), std::string::npos);
}

TEST(JournalTest, TornTailDropsOnlyTheDamagedSuffix)
{
    TempFile file("torn");
    {
        JournalWriter writer(file.path, "test-kind");
        writer.append("intact-1");
        writer.append("intact-2");
        writer.append("doomed");
    }
    // Simulate SIGKILL mid-append: cut the file inside the last record.
    std::string bytes = file.read();
    file.write(bytes.substr(0, bytes.size() - 4));

    JournalLoad load = loadJournal(file.path, "test-kind");
    ASSERT_TRUE(load.ok) << load.error;
    ASSERT_EQ(load.records.size(), 2u);
    EXPECT_EQ(load.records[0], "intact-1");
    EXPECT_EQ(load.records[1], "intact-2");
    EXPECT_EQ(load.truncatedRecords, 1u);
}

TEST(JournalTest, ChecksumCorruptionTerminatesTheScan)
{
    TempFile file("corrupt");
    {
        JournalWriter writer(file.path, "test-kind");
        writer.append("good");
        writer.append("flipped");
        writer.append("after");
    }
    std::string bytes = file.read();
    // Flip one payload byte of the middle record; its checksum no
    // longer matches, so it and everything after it are dropped.
    size_t at = bytes.find("flipped");
    ASSERT_NE(at, std::string::npos);
    bytes[at] = 'F';
    file.write(bytes);

    JournalLoad load = loadJournal(file.path, "test-kind");
    ASSERT_TRUE(load.ok) << load.error;
    ASSERT_EQ(load.records.size(), 1u);
    EXPECT_EQ(load.records[0], "good");
    EXPECT_EQ(load.truncatedRecords, 2u);
}

TEST(JournalTest, FsyncPolicyNamesRoundTrip)
{
    const FsyncPolicy kAll[] = {FsyncPolicy::Record, FsyncPolicy::Batch,
                                FsyncPolicy::Off};
    for (FsyncPolicy policy : kAll) {
        FsyncPolicy back = FsyncPolicy::Record;
        ASSERT_TRUE(fsyncPolicyFromName(fsyncPolicyName(policy), back))
            << fsyncPolicyName(policy);
        EXPECT_EQ(back, policy);
    }
    FsyncPolicy out = FsyncPolicy::Batch;
    EXPECT_FALSE(fsyncPolicyFromName("always", out));
    EXPECT_FALSE(fsyncPolicyFromName("", out));
    EXPECT_EQ(out, FsyncPolicy::Batch) << "failed parse must not write";
}

/**
 * The durability contract of each policy, observed through the
 * unsynced-record accounting: Record never leaves a record unsynced,
 * Batch holds at most batchInterval - 1, Off never syncs on its own but
 * sync() always drains. (A true power-loss test needs fault injection
 * below the filesystem; the counter is the testable proxy for the
 * torn-tail bound each policy guarantees.)
 */
TEST(JournalTest, FsyncPolicyBoundsUnsyncedRecords)
{
    TempFile record_file("fsync-record");
    JournalWriter record(record_file.path, "test-kind",
                         FsyncPolicy::Record);
    for (int i = 0; i < 5; ++i) {
        record.append("r" + std::to_string(i));
        EXPECT_EQ(record.unsyncedRecords(), 0u);
    }

    TempFile batch_file("fsync-batch");
    constexpr unsigned kInterval = 4;
    JournalWriter batch(batch_file.path, "test-kind", FsyncPolicy::Batch,
                        kInterval);
    for (unsigned i = 1; i <= 3 * kInterval; ++i) {
        batch.append("b" + std::to_string(i));
        EXPECT_LT(batch.unsyncedRecords(), kInterval)
            << "after record " << i;
        EXPECT_EQ(batch.unsyncedRecords(), i % kInterval);
    }

    TempFile off_file("fsync-off");
    JournalWriter off(off_file.path, "test-kind", FsyncPolicy::Off);
    for (int i = 0; i < 7; ++i)
        off.append("o" + std::to_string(i));
    EXPECT_EQ(off.unsyncedRecords(), 7u);
    off.sync();
    EXPECT_EQ(off.unsyncedRecords(), 0u);

    // Whatever the policy, every record is durable in the file itself
    // (the fd is O_APPEND and written synchronously; fsync only moves
    // the kernel-crash boundary).
    JournalLoad load = loadJournal(off_file.path, "test-kind");
    ASSERT_TRUE(load.ok) << load.error;
    EXPECT_EQ(load.records.size(), 7u);
}

TEST(JournalTest, AppendingToALoadedJournalContinuesIt)
{
    TempFile file("resume");
    {
        JournalWriter writer(file.path, "test-kind");
        writer.append("one");
    }
    {
        JournalWriter writer(file.path, "test-kind");
        writer.append("two");
    }
    JournalLoad load = loadJournal(file.path, "test-kind");
    ASSERT_TRUE(load.ok) << load.error;
    ASSERT_EQ(load.records.size(), 2u);
    EXPECT_EQ(load.records[1], "two");
}

} // namespace
} // namespace keq::support
