/** @file Unit tests for the string utilities. */

#include <gtest/gtest.h>

#include "src/support/strings.h"

namespace keq::support {
namespace {

TEST(StringsTest, Trim)
{
    EXPECT_EQ(trim("  hello  "), "hello");
    EXPECT_EQ(trim("hello"), "hello");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(StringsTest, Split)
{
    EXPECT_EQ(split("a,b,c", ','),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("a,,c", ','),
              (std::vector<std::string>{"a", "", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, SplitWhitespace)
{
    EXPECT_EQ(splitWhitespace("  a  b\tc \n"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_TRUE(splitWhitespace("   ").empty());
    EXPECT_EQ(splitWhitespace("one"),
              (std::vector<std::string>{"one"}));
}

TEST(StringsTest, Affixes)
{
    EXPECT_TRUE(startsWith("%vr3_32", "%vr"));
    EXPECT_FALSE(startsWith("vr", "%vr"));
    EXPECT_TRUE(endsWith("file.cc", ".cc"));
    EXPECT_FALSE(endsWith("cc", "file.cc"));
}

TEST(StringsTest, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ", "), "");
    EXPECT_EQ(join({"solo"}, ", "), "solo");
}

} // namespace
} // namespace keq::support
