/** @file Unit and property tests for support::ApInt. */

#include <gtest/gtest.h>

#include "src/support/apint.h"
#include "src/support/diagnostics.h"
#include "src/support/rng.h"

namespace keq::support {
namespace {

TEST(ApIntTest, ConstructionMasksToWidth)
{
    EXPECT_EQ(ApInt(8, 0x1ff).zext(), 0xffu);
    EXPECT_EQ(ApInt(1, 3).zext(), 1u);
    EXPECT_EQ(ApInt(64, ~uint64_t{0}).zext(), ~uint64_t{0});
    EXPECT_EQ(ApInt(16, 0x12345).zext(), 0x2345u);
}

TEST(ApIntTest, SignExtension)
{
    EXPECT_EQ(ApInt(8, 0xff).sext(), -1);
    EXPECT_EQ(ApInt(8, 0x7f).sext(), 127);
    EXPECT_EQ(ApInt(8, 0x80).sext(), -128);
    EXPECT_EQ(ApInt(1, 1).sext(), -1);
    EXPECT_EQ(ApInt(64, ~uint64_t{0}).sext(), -1);
    EXPECT_EQ(ApInt(32, 0x80000000u).sext(), -2147483648ll);
}

TEST(ApIntTest, NamedConstants)
{
    EXPECT_TRUE(ApInt::allOnes(8).isAllOnes());
    EXPECT_EQ(ApInt::signedMin(8).sext(), -128);
    EXPECT_EQ(ApInt::signedMax(8).sext(), 127);
    EXPECT_EQ(ApInt::signedMin(64).sext(), INT64_MIN);
    EXPECT_EQ(ApInt::signedMax(64).sext(), INT64_MAX);
}

TEST(ApIntTest, WrappingArithmetic)
{
    EXPECT_EQ(ApInt(8, 200).add(ApInt(8, 100)).zext(), 44u);
    EXPECT_EQ(ApInt(8, 10).sub(ApInt(8, 20)).zext(), 246u);
    EXPECT_EQ(ApInt(8, 16).mul(ApInt(8, 16)).zext(), 0u);
    EXPECT_EQ(ApInt(16, 1000).mul(ApInt(16, 1000)).zext(),
              (1000u * 1000u) & 0xffffu);
}

TEST(ApIntTest, Division)
{
    EXPECT_EQ(ApInt(32, 17).udiv(ApInt(32, 5)).zext(), 3u);
    EXPECT_EQ(ApInt(32, 17).urem(ApInt(32, 5)).zext(), 2u);
    // Signed: truncation toward zero, remainder keeps dividend sign.
    ApInt neg17(32, static_cast<uint64_t>(-17));
    EXPECT_EQ(neg17.sdiv(ApInt(32, 5)).sext(), -3);
    EXPECT_EQ(neg17.srem(ApInt(32, 5)).sext(), -2);
    EXPECT_EQ(ApInt(32, 17).sdiv(ApInt(32, static_cast<uint64_t>(-5)))
                  .sext(),
              -3);
    // INT_MIN / -1 wraps rather than trapping at this layer.
    EXPECT_EQ(ApInt::signedMin(32).sdiv(ApInt::allOnes(32)),
              ApInt::signedMin(32));
    EXPECT_EQ(ApInt::signedMin(32).srem(ApInt::allOnes(32)).zext(), 0u);
}

TEST(ApIntTest, DivisionByZeroAsserts)
{
    EXPECT_THROW(ApInt(8, 1).udiv(ApInt(8, 0)), InternalError);
    EXPECT_THROW(ApInt(8, 1).srem(ApInt(8, 0)), InternalError);
}

TEST(ApIntTest, WidthMismatchAsserts)
{
    EXPECT_THROW(ApInt(8, 1).add(ApInt(16, 1)), InternalError);
}

TEST(ApIntTest, Shifts)
{
    EXPECT_EQ(ApInt(8, 1).shl(ApInt(8, 3)).zext(), 8u);
    EXPECT_EQ(ApInt(8, 0x80).lshr(ApInt(8, 7)).zext(), 1u);
    EXPECT_EQ(ApInt(8, 0x80).ashr(ApInt(8, 7)).zext(), 0xffu);
    // Oversize shift counts saturate.
    EXPECT_EQ(ApInt(8, 0xff).shl(ApInt(8, 8)).zext(), 0u);
    EXPECT_EQ(ApInt(8, 0xff).lshr(ApInt(8, 200)).zext(), 0u);
    EXPECT_EQ(ApInt(8, 0x80).ashr(ApInt(8, 8)).zext(), 0xffu);
    EXPECT_EQ(ApInt(8, 0x40).ashr(ApInt(8, 8)).zext(), 0u);
}

TEST(ApIntTest, Comparisons)
{
    ApInt small(8, 1), big(8, 0xff);
    EXPECT_TRUE(small.ult(big));
    EXPECT_TRUE(big.slt(small)); // 0xff is -1 signed
    EXPECT_TRUE(small.sgt(big));
    EXPECT_TRUE(big.uge(small));
    EXPECT_TRUE(small.eq(ApInt(8, 1)));
    EXPECT_TRUE(small.ne(big));
}

TEST(ApIntTest, WidthChanges)
{
    EXPECT_EQ(ApInt(8, 0xff).zextTo(16).zext(), 0xffu);
    EXPECT_EQ(ApInt(8, 0xff).sextTo(16).zext(), 0xffffu);
    EXPECT_EQ(ApInt(16, 0x1234).truncTo(8).zext(), 0x34u);
    EXPECT_EQ(ApInt(1, 1).sextTo(32).sext(), -1);
}

TEST(ApIntTest, ByteExtraction)
{
    ApInt value(32, 0x11223344);
    EXPECT_EQ(value.byte(0), 0x44);
    EXPECT_EQ(value.byte(1), 0x33);
    EXPECT_EQ(value.byte(2), 0x22);
    EXPECT_EQ(value.byte(3), 0x11);
}

TEST(ApIntTest, OverflowPredicates)
{
    EXPECT_TRUE(ApInt::signedMax(8).addOverflowSigned(ApInt(8, 1)));
    EXPECT_FALSE(ApInt(8, 100).addOverflowSigned(ApInt(8, 27)));
    EXPECT_TRUE(ApInt(8, 255).addOverflowUnsigned(ApInt(8, 1)));
    EXPECT_TRUE(ApInt::signedMin(8).subOverflowSigned(ApInt(8, 1)));
    EXPECT_TRUE(ApInt(8, 0).subOverflowUnsigned(ApInt(8, 1)));
    EXPECT_TRUE(ApInt(8, 16).mulOverflowSigned(ApInt(8, 16)));
    EXPECT_FALSE(ApInt(8, 3).mulOverflowSigned(ApInt(8, 5)));
    EXPECT_TRUE(ApInt(64, uint64_t{1} << 33)
                    .mulOverflowUnsigned(ApInt(64, uint64_t{1} << 33)));
}

TEST(ApIntTest, Strings)
{
    EXPECT_EQ(ApInt(8, 0xff).toString(), "255");
    EXPECT_EQ(ApInt(8, 0xff).toSignedString(), "-1");
    EXPECT_EQ(ApInt(8, 0xff).toHexString(), "0xff");
}

/** Property sweep: ApInt arithmetic at width 64 agrees with native
 *  uint64_t, and at narrower widths with masked native arithmetic. */
class ApIntPropertyTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(ApIntPropertyTest, AgreesWithNativeArithmetic)
{
    unsigned width = GetParam();
    support::Rng rng(0xABCDEF ^ width);
    uint64_t mask = width == 64 ? ~uint64_t{0}
                                : (uint64_t{1} << width) - 1;
    for (int i = 0; i < 500; ++i) {
        uint64_t a = rng.next() & mask;
        uint64_t b = rng.next() & mask;
        ApInt pa(width, a), pb(width, b);
        EXPECT_EQ(pa.add(pb).zext(), (a + b) & mask);
        EXPECT_EQ(pa.sub(pb).zext(), (a - b) & mask);
        EXPECT_EQ(pa.mul(pb).zext(), (a * b) & mask);
        EXPECT_EQ(pa.and_(pb).zext(), a & b);
        EXPECT_EQ(pa.or_(pb).zext(), a | b);
        EXPECT_EQ(pa.xor_(pb).zext(), a ^ b);
        EXPECT_EQ(pa.not_().zext(), ~a & mask);
        EXPECT_EQ(pa.neg().zext(), (~a + 1) & mask);
        EXPECT_EQ(pa.ult(pb), a < b);
        EXPECT_EQ(pa.eq(pb), a == b);
        EXPECT_EQ(pa.slt(pb), pa.sext() < pb.sext());
        if (b != 0) {
            EXPECT_EQ(pa.udiv(pb).zext(), a / b);
            EXPECT_EQ(pa.urem(pb).zext(), a % b);
        }
        // Round trips.
        EXPECT_EQ(pa.zextTo(64).truncTo(width), pa);
        EXPECT_EQ(pa.sextTo(64).truncTo(width), pa);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, ApIntPropertyTest,
                         ::testing::Values(1u, 8u, 16u, 32u, 64u));

} // namespace
} // namespace keq::support
