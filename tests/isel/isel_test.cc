/** @file Structural tests for the Instruction Selection lowering. */

#include <gtest/gtest.h>

#include "src/isel/isel.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/support/diagnostics.h"

namespace keq::isel {
namespace {

struct Lowered
{
    llvmir::Module module;
    vx86::MFunction mfn;
    FunctionHints hints;
};

Lowered
lower(const char *source, IselOptions options = {})
{
    Lowered result{llvmir::parseModule(source), {}, {}};
    llvmir::verifyModuleOrThrow(result.module);
    result.mfn = lowerFunction(result.module,
                               result.module.functions.back(), options,
                               result.hints);
    return result;
}

size_t
countOpcode(const vx86::MFunction &fn, vx86::MOpcode op)
{
    size_t count = 0;
    for (const vx86::MBasicBlock &block : fn.blocks) {
        for (const vx86::MInst &inst : block.insts) {
            if (inst.op == op)
                ++count;
        }
    }
    return count;
}

TEST(IselTest, EntryCopiesFollowCallingConvention)
{
    Lowered low = lower(R"(
define i32 @f(i32 %a, i32 %b, i32 %c) {
entry:
  ret i32 %a
}
)");
    const vx86::MBasicBlock &entry = low.mfn.blocks.front();
    ASSERT_GE(entry.insts.size(), 3u);
    // Copies from edi, esi, edx in order.
    EXPECT_EQ(entry.insts[0].toString(), "%vr0_32 = COPY edi");
    EXPECT_EQ(entry.insts[1].toString(), "%vr1_32 = COPY esi");
    EXPECT_EQ(entry.insts[2].toString(), "%vr2_32 = COPY edx");
    // Hints map parameters to those registers.
    EXPECT_EQ(low.hints.regMap.at("%a"), "%vr0_32");
    EXPECT_EQ(low.hints.regMap.at("%c"), "%vr2_32");
}

TEST(IselTest, BlockMapCoversEveryBlock)
{
    Lowered low = lower(R"(
define i32 @f(i32 %a) {
entry:
  br label %next
next:
  ret i32 %a
}
)");
    EXPECT_EQ(low.hints.blockMap.at("entry"), ".LBB0");
    EXPECT_EQ(low.hints.blockMap.at("next"), ".LBB1");
    EXPECT_EQ(low.mfn.blocks.size(), 2u);
}

TEST(IselTest, FoldedCompareBranches)
{
    Lowered low = lower(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp ult i32 %a, %b
  br i1 %c, label %t, label %e
t:
  ret i32 1
e:
  ret i32 0
}
)");
    // Single-use icmp folds into CMP + Jb; no SETcc materialized.
    EXPECT_EQ(countOpcode(low.mfn, vx86::MOpcode::CMPrr), 1u);
    EXPECT_EQ(countOpcode(low.mfn, vx86::MOpcode::SETcc), 0u);
    EXPECT_EQ(countOpcode(low.mfn, vx86::MOpcode::JCC), 1u);
    // The folded value gets no register hint (it never crosses blocks).
    EXPECT_EQ(low.hints.regMap.count("%c"), 0u);
}

TEST(IselTest, MultiUseCompareMaterializesSetcc)
{
    Lowered low = lower(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp eq i32 %a, %b
  %z = zext i1 %c to i32
  br i1 %c, label %t, label %e
t:
  ret i32 %z
e:
  ret i32 0
}
)");
    EXPECT_EQ(countOpcode(low.mfn, vx86::MOpcode::SETcc), 1u);
    // Branch on the materialized value uses TEST.
    EXPECT_EQ(countOpcode(low.mfn, vx86::MOpcode::TESTrr), 1u);
}

TEST(IselTest, PhiConstantsMaterializeInPredecessors)
{
    Lowered low = lower(R"(
define i32 @f(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 1, %entry ], [ %inc, %head.b ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %head.b, label %done
head.b:
  %inc = add i32 %i, 1
  br label %head
done:
  ret i32 %i
}
)");
    // The constant 1 must be materialized in .LBB0 (entry), before the
    // JMP, and recorded in the constant-register hints (Figure 3's
    // "1 = %vr9_32" constraint depends on it).
    const vx86::MBasicBlock &entry = low.mfn.blocks.front();
    bool found_mov = false;
    std::string const_reg;
    for (const vx86::MInst &inst : entry.insts) {
        if (inst.op == vx86::MOpcode::MOVri &&
            inst.ops[0].kind == vx86::MOperand::Kind::VirtReg) {
            found_mov = true;
            const_reg = inst.ops[0].reg;
        }
        if (inst.op == vx86::MOpcode::JMP)
            break;
    }
    ASSERT_TRUE(found_mov);
    ASSERT_TRUE(low.hints.constRegs.count(const_reg));
    EXPECT_EQ(low.hints.constRegs.at(const_reg).zext(), 1u);
}

TEST(IselTest, DivisionUsesRdxRaxProtocol)
{
    Lowered low = lower(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %q = sdiv i32 %a, %b
  %r = urem i32 %q, %b
  ret i32 %r
}
)");
    EXPECT_EQ(countOpcode(low.mfn, vx86::MOpcode::CDQ), 1u);
    EXPECT_EQ(countOpcode(low.mfn, vx86::MOpcode::IDIV), 1u);
    EXPECT_EQ(countOpcode(low.mfn, vx86::MOpcode::DIV), 1u);
}

TEST(IselTest, SixtyFourBitDivisionUnsupported)
{
    EXPECT_THROW(lower(R"(
define i64 @f(i64 %a, i64 %b) {
entry:
  %q = udiv i64 %a, %b
  ret i64 %q
}
)"),
                 support::Error);
}

TEST(IselTest, SextFromI1Unsupported)
{
    EXPECT_THROW(lower(R"(
define i32 @f(i32 %a) {
entry:
  %c = icmp eq i32 %a, 0
  %s = sext i1 %c to i32
  ret i32 %s
}
)"),
                 support::Error);
}

TEST(IselTest, AllocaBecomesFrameObject)
{
    Lowered low = lower(R"(
define i32 @f(i32 %v) {
entry:
  %slot = alloca i32
  store i32 %v, i32* %slot
  %r = load i32, i32* %slot
  ret i32 %r
}
)");
    ASSERT_EQ(low.mfn.frame.size(), 1u);
    EXPECT_EQ(low.mfn.frame[0].slotName, "@f/%slot");
    EXPECT_EQ(low.mfn.frame[0].size, 4u);
    EXPECT_EQ(countOpcode(low.mfn, vx86::MOpcode::LEA), 1u);
}

TEST(IselTest, GepWithConstantIndicesFoldsToDisplacement)
{
    Lowered low = lower(R"(
@g = external global [8 x i32]
define i32 @f() {
entry:
  %p = getelementptr [8 x i32], [8 x i32]* @g, i64 0, i64 3
  %v = load i32, i32* %p
  ret i32 %v
}
)");
    bool found = false;
    for (const vx86::MInst &inst : low.mfn.blocks[0].insts) {
        if (inst.op == vx86::MOpcode::LEA &&
            inst.addr.baseKind == vx86::MAddress::BaseKind::Global) {
            EXPECT_EQ(inst.addr.global, "@g");
            EXPECT_EQ(inst.addr.disp, 12);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(IselTest, GepWithDynamicIndexScales)
{
    Lowered low = lower(R"(
@g = external global [8 x i32]
define i32 @f(i32 %i) {
entry:
  %w = sext i32 %i to i64
  %p = getelementptr [8 x i32], [8 x i32]* @g, i64 0, i64 %w
  %v = load i32, i32* %p
  ret i32 %v
}
)");
    EXPECT_GE(countOpcode(low.mfn, vx86::MOpcode::IMULri), 1u);
    EXPECT_GE(countOpcode(low.mfn, vx86::MOpcode::ADDrr), 1u);
}

TEST(IselTest, CallSetsUpArgumentRegisters)
{
    Lowered low = lower(R"(
declare i32 @ext(i32, i32)
define i32 @f(i32 %a) {
entry:
  %r = call i32 @ext(i32 %a, i32 7)
  ret i32 %r
}
)");
    const vx86::MInst *call = nullptr;
    for (const vx86::MInst &inst : low.mfn.blocks[0].insts) {
        if (inst.op == vx86::MOpcode::CALL)
            call = &inst;
    }
    ASSERT_NE(call, nullptr);
    EXPECT_EQ(call->target, "@ext");
    EXPECT_EQ(call->callSiteId, "cs0");
    EXPECT_EQ(call->retWidth, 32u);
    ASSERT_EQ(call->callArgs.size(), 2u);
    EXPECT_EQ(call->callArgs[0].reg, "rdi");
    EXPECT_EQ(call->callArgs[1].reg, "rsi");
}

TEST(IselTest, ReturnGoesThroughEax)
{
    Lowered low = lower(R"(
define i32 @f(i32 %a) {
entry:
  ret i32 %a
}
)");
    const vx86::MBasicBlock &block = low.mfn.blocks[0];
    ASSERT_GE(block.insts.size(), 3u);
    const vx86::MInst &copy = block.insts[block.insts.size() - 2];
    EXPECT_EQ(copy.op, vx86::MOpcode::COPY);
    EXPECT_EQ(copy.ops[0].reg, "rax");
    EXPECT_EQ(block.insts.back().op, vx86::MOpcode::RET);
}

TEST(IselTest, UnreachableLowersToUd2)
{
    Lowered low = lower(
        "define i32 @f() {\nentry:\n  unreachable\n}\n");
    EXPECT_EQ(countOpcode(low.mfn, vx86::MOpcode::UD2), 1u);
}

TEST(IselTest, SelectLowersBranchless)
{
    Lowered low = lower(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp ult i32 %a, %b
  %s = select i1 %c, i32 %a, i32 %b
  ret i32 %s
}
)");
    // NEG/NOT/AND/AND/OR mask computation; single block, no branches.
    EXPECT_EQ(low.mfn.blocks.size(), 1u);
    EXPECT_EQ(countOpcode(low.mfn, vx86::MOpcode::NEGr), 1u);
    EXPECT_EQ(countOpcode(low.mfn, vx86::MOpcode::ORrr), 1u);
    EXPECT_EQ(countOpcode(low.mfn, vx86::MOpcode::JCC), 0u);
}

TEST(IselTest, EveryValueGetsARegisterHint)
{
    Lowered low = lower(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %1 = add i32 %a, %b
  %2 = xor i32 %1, 255
  %3 = shl i32 %2, 2
  ret i32 %3
}
)");
    for (const char *name : {"%a", "%b", "%1", "%2", "%3"})
        EXPECT_TRUE(low.hints.regMap.count(name)) << name;
}

TEST(IselTest, ModuleLoweringSkipsDeclarations)
{
    llvmir::Module module = llvmir::parseModule(R"(
declare i32 @ext(i32)
define i32 @f(i32 %a) {
entry:
  ret i32 %a
}
)");
    ModuleHints hints;
    vx86::MModule mmodule = lowerModule(module, {}, hints);
    EXPECT_EQ(mmodule.functions.size(), 1u);
    EXPECT_EQ(mmodule.functions[0].name, "@f");
    EXPECT_EQ(hints.count("@f"), 1u);
}

} // namespace
} // namespace keq::isel
