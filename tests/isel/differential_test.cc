/** @file Differential testing of ISel: for corpus functions, the LLVM
 *  interpreter and the Virtual x86 interpreter must agree on outcome,
 *  return value, memory effects, and external-call traces. */

#include <gtest/gtest.h>

#include "src/driver/corpus.h"
#include "src/isel/isel.h"
#include "src/llvmir/interpreter.h"
#include "src/llvmir/layout_builder.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/support/rng.h"
#include "src/vx86/interpreter.h"

namespace keq::isel {
namespace {

using support::ApInt;
using support::Rng;

/** Maps an LLVM outcome/error onto the x86 observables. */
bool
outcomesAgree(const llvmir::ExecResult &a, const vx86::MExecResult &b)
{
    if (a.outcome == llvmir::ExecOutcome::StepLimit ||
        b.outcome == vx86::MExecOutcome::StepLimit) {
        return true; // budget races are not divergences
    }
    if (a.outcome == llvmir::ExecOutcome::Trapped) {
        // Any input trap licenses any output behaviour (refinement), but
        // matching traps are the common case; accept both.
        return true;
    }
    if (b.outcome == vx86::MExecOutcome::Trapped)
        return false; // output traps where input did not: miscompile
    return a.value.zextTo(64) == b.value.zextTo(64);
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(DifferentialTest, CorpusFunctionsBehaveIdentically)
{
    driver::CorpusOptions copts;
    copts.seed = GetParam();
    copts.functionCount = 12;
    copts.nswPercent = 0; // keep UB out of the differential runs
    std::string source = driver::generateCorpusSource(copts);

    llvmir::Module module = llvmir::parseModule(source);
    llvmir::verifyModuleOrThrow(module);
    ModuleHints hints;
    vx86::MModule mmodule = lowerModule(module, {}, hints);

    mem::MemoryLayout layout;
    llvmir::populateLayout(module, layout);

    Rng rng(GetParam() * 31337);
    for (const llvmir::Function &fn : module.functions) {
        if (fn.isDeclaration())
            continue;
        const vx86::MFunction *mfn = mmodule.findFunction(fn.name);
        ASSERT_NE(mfn, nullptr);
        for (int trial = 0; trial < 4; ++trial) {
            std::vector<ApInt> args;
            for (const llvmir::Parameter &param : fn.params) {
                // Mix small values (loop bounds) and full-range bits.
                uint64_t bits = trial % 2 == 0 ? rng.below(40)
                                               : rng.next();
                args.push_back(ApInt(param.type->valueBits(), bits));
            }
            // Identical initial memories and external handlers.
            mem::ConcreteMemory mem_a(layout);
            mem::ConcreteMemory mem_b(layout);
            for (const mem::MemoryObject &object : layout.objects()) {
                Rng fill(object.base);
                for (uint64_t i = 0; i < object.size; ++i) {
                    uint8_t byte = static_cast<uint8_t>(fill.next());
                    mem_a.poke(object.base + i, byte);
                    mem_b.poke(object.base + i, byte);
                }
            }
            auto handler = [](const std::string &callee,
                              const std::vector<ApInt> &call_args) {
                uint64_t h = 0x9e3779b97f4a7c15ull;
                for (char c : callee)
                    h = (h ^ static_cast<uint64_t>(c)) * 31;
                for (const ApInt &arg : call_args)
                    h = (h ^ arg.zext()) * 0x100000001b3ull;
                return ApInt(64, h & 0xffff);
            };

            llvmir::Interpreter interp_a(module, mem_a);
            interp_a.setExternalHandler(handler);
            llvmir::ExecResult res_a = interp_a.run(fn, args, 50000);

            vx86::Interpreter interp_b(mmodule, mem_b);
            interp_b.setExternalHandler(handler);
            std::vector<ApInt> margs;
            for (const ApInt &arg : args)
                margs.push_back(arg.zextTo(64));
            vx86::MExecResult res_b = interp_b.run(*mfn, margs, 100000);

            EXPECT_TRUE(outcomesAgree(res_a, res_b))
                << fn.name << " diverged: llvm outcome "
                << static_cast<int>(res_a.outcome) << " value "
                << res_a.value.toString() << " vs x86 outcome "
                << static_cast<int>(res_b.outcome) << " value "
                << res_b.value.toString();

            if (res_a.outcome == llvmir::ExecOutcome::Returned &&
                res_b.outcome == vx86::MExecOutcome::Returned) {
                // External call traces must match exactly.
                EXPECT_EQ(res_a.callTrace, res_b.callTrace)
                    << fn.name << ": call traces diverged";
                // Memory effects must match byte for byte.
                for (const mem::MemoryObject &object :
                     layout.objects()) {
                    for (uint64_t i = 0; i < object.size; ++i) {
                        ASSERT_EQ(mem_a.peek(object.base + i),
                                  mem_b.peek(object.base + i))
                            << fn.name << ": memory diverged at "
                            << object.name << "+" << i;
                    }
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range(uint64_t{100}, uint64_t{110}));

TEST(DifferentialBugTest, WawBugChangesMemory)
{
    // The PR25154 scenario: with the bug, the concrete memories diverge.
    const char *source = R"(
@b = external global [8 x i8]
define void @foo() {
entry:
  %p2 = getelementptr inbounds [8 x i8], [8 x i8]* @b, i64 0, i64 2
  %p2w = bitcast i8* %p2 to i16*
  store i16 0, i16* %p2w
  %p3 = getelementptr inbounds [8 x i8], [8 x i8]* @b, i64 0, i64 3
  %p3w = bitcast i8* %p3 to i16*
  store i16 2, i16* %p3w
  %p0 = getelementptr inbounds [8 x i8], [8 x i8]* @b, i64 0, i64 0
  %p0w = bitcast i8* %p0 to i16*
  store i16 1, i16* %p0w
  ret void
}
)";
    llvmir::Module module = llvmir::parseModule(source);
    mem::MemoryLayout layout;
    llvmir::populateLayout(module, layout);
    uint64_t base = layout.find("@b")->base;

    auto run_x86 = [&](Bug bug) {
        IselOptions options;
        options.mergeStores = true;
        options.bug = bug;
        FunctionHints hints;
        vx86::MModule mmodule;
        mmodule.functions.push_back(lowerFunction(
            module, module.functions[0], options, hints));
        mem::ConcreteMemory memory(layout);
        vx86::Interpreter interp(mmodule, memory);
        interp.run(mmodule.functions[0], {});
        std::vector<uint8_t> bytes;
        for (uint64_t i = 0; i < 8; ++i)
            bytes.push_back(memory.peek(base + i));
        return bytes;
    };

    // Reference: the LLVM interpreter.
    mem::ConcreteMemory mem_ref(layout);
    llvmir::Interpreter interp(module, mem_ref);
    interp.run(module.functions[0], {});
    std::vector<uint8_t> reference;
    for (uint64_t i = 0; i < 8; ++i)
        reference.push_back(mem_ref.peek(base + i));

    EXPECT_EQ(run_x86(Bug::None), reference)
        << "correct merge must preserve memory effects";
    EXPECT_NE(run_x86(Bug::StoreMergeWAW), reference)
        << "the WAW bug must corrupt the byte at offset 3";
}

TEST(DifferentialBugTest, LoadWideningTrapsConcretely)
{
    const char *source = R"(
@a = external global [12 x i8]
@b = external global i64
define void @narrow() {
entry:
  %p = getelementptr inbounds [12 x i8], [12 x i8]* @a, i64 0, i64 8
  %pw = bitcast i8* %p to i32*
  %v = load i32, i32* %pw
  %w = zext i32 %v to i64
  store i64 %w, i64* @b
  ret void
}
)";
    llvmir::Module module = llvmir::parseModule(source);
    mem::MemoryLayout layout;
    llvmir::populateLayout(module, layout);

    auto run_x86 = [&](Bug bug) {
        IselOptions options;
        options.foldExtLoad = true;
        options.bug = bug;
        FunctionHints hints;
        vx86::MModule mmodule;
        mmodule.functions.push_back(lowerFunction(
            module, module.functions[0], options, hints));
        mem::ConcreteMemory memory(layout);
        vx86::Interpreter interp(mmodule, memory);
        return interp.run(mmodule.functions[0], {});
    };

    EXPECT_EQ(run_x86(Bug::None).outcome, vx86::MExecOutcome::Returned);
    vx86::MExecResult buggy = run_x86(Bug::LoadWidening);
    EXPECT_EQ(buggy.outcome, vx86::MExecOutcome::Trapped);
    EXPECT_EQ(buggy.error, sem::ErrorKind::OutOfBounds);
}

} // namespace
} // namespace keq::isel
