/** @file Peephole pass tests: store merging and zext(load) folding, in
 *  both correct and deliberately buggy variants (Section 5.2). */

#include <gtest/gtest.h>

#include "src/isel/isel.h"
#include "src/llvmir/parser.h"

namespace keq::isel {
namespace {

vx86::MFunction
lowerWith(const char *source, IselOptions options)
{
    llvmir::Module module = llvmir::parseModule(source);
    FunctionHints hints;
    return lowerFunction(module, module.functions.back(), options,
                         hints);
}

size_t
countOpcode(const vx86::MFunction &fn, vx86::MOpcode op,
            unsigned width = 0)
{
    size_t count = 0;
    for (const vx86::MBasicBlock &block : fn.blocks) {
        for (const vx86::MInst &inst : block.insts) {
            if (inst.op == op && (width == 0 || inst.width == width))
                ++count;
        }
    }
    return count;
}

const char *const kAdjacentStores = R"(
@g = external global [8 x i8]
define void @f() {
entry:
  %p0 = getelementptr [8 x i8], [8 x i8]* @g, i64 0, i64 0
  %p0w = bitcast i8* %p0 to i16*
  store i16 1, i16* %p0w
  %p2 = getelementptr [8 x i8], [8 x i8]* @g, i64 0, i64 2
  %p2w = bitcast i8* %p2 to i16*
  store i16 2, i16* %p2w
  ret void
}
)";

TEST(StoreMergeTest, MergesAdjacentNonOverlappingStores)
{
    IselOptions options;
    options.mergeStores = true;
    vx86::MFunction fn = lowerWith(kAdjacentStores, options);
    // Two 16-bit stores became one 32-bit store.
    EXPECT_EQ(countOpcode(fn, vx86::MOpcode::MOVmi, 32), 1u);
    EXPECT_EQ(countOpcode(fn, vx86::MOpcode::MOVmi, 16), 0u);
    // Merged little-endian: low halfword 1, high halfword 2.
    for (const vx86::MInst &inst : fn.blocks[0].insts) {
        if (inst.op == vx86::MOpcode::MOVmi) {
            EXPECT_EQ(inst.ops[0].imm.zext(), 0x00020001u);
        }
    }
}

TEST(StoreMergeTest, DisabledByDefault)
{
    vx86::MFunction fn = lowerWith(kAdjacentStores, {});
    EXPECT_EQ(countOpcode(fn, vx86::MOpcode::MOVmi, 16), 2u);
}

const char *const kOverlappingStores = R"(
@g = external global [8 x i8]
define void @f() {
entry:
  %p2 = getelementptr [8 x i8], [8 x i8]* @g, i64 0, i64 2
  %p2w = bitcast i8* %p2 to i16*
  store i16 0, i16* %p2w
  %p3 = getelementptr [8 x i8], [8 x i8]* @g, i64 0, i64 3
  %p3w = bitcast i8* %p3 to i16*
  store i16 2, i16* %p3w
  %p0 = getelementptr [8 x i8], [8 x i8]* @g, i64 0, i64 0
  %p0w = bitcast i8* %p0 to i16*
  store i16 1, i16* %p0w
  ret void
}
)";

TEST(StoreMergeTest, CorrectVariantRefusesReordering)
{
    // The store at offset 3 overlaps the (0,2) merge candidates, so the
    // correct pass must not merge across it.
    IselOptions options;
    options.mergeStores = true;
    vx86::MFunction fn = lowerWith(kOverlappingStores, options);
    EXPECT_EQ(countOpcode(fn, vx86::MOpcode::MOVmi, 16), 3u);
    EXPECT_EQ(countOpcode(fn, vx86::MOpcode::MOVmi, 32), 0u);
}

TEST(StoreMergeTest, BuggyVariantMergesAndSinks)
{
    IselOptions options;
    options.mergeStores = true;
    options.bug = Bug::StoreMergeWAW;
    vx86::MFunction fn = lowerWith(kOverlappingStores, options);
    EXPECT_EQ(countOpcode(fn, vx86::MOpcode::MOVmi, 32), 1u);
    EXPECT_EQ(countOpcode(fn, vx86::MOpcode::MOVmi, 16), 1u);
    // The buggy merge sits at the position of the *later* store: it must
    // appear after the remaining 16-bit store in program order.
    int pos16 = -1, pos32 = -1;
    const auto &insts = fn.blocks[0].insts;
    for (size_t i = 0; i < insts.size(); ++i) {
        if (insts[i].op == vx86::MOpcode::MOVmi) {
            if (insts[i].width == 16)
                pos16 = static_cast<int>(i);
            else
                pos32 = static_cast<int>(i);
        }
    }
    ASSERT_GE(pos16, 0);
    ASSERT_GE(pos32, 0);
    EXPECT_LT(pos16, pos32) << "merged store must sink past the "
                               "overlapping one (that is the bug)";
}

const char *const kZextLoad = R"(
@g = external global i32
define i64 @f() {
entry:
  %v = load i32, i32* @g
  %w = zext i32 %v to i64
  ret i64 %w
}
)";

TEST(ExtLoadFoldTest, CorrectFoldKeepsAccessWidth)
{
    IselOptions options;
    options.foldExtLoad = true;
    vx86::MFunction fn = lowerWith(kZextLoad, options);
    // MOVZX64rm32: a 32-bit access zero-extended into 64 bits.
    EXPECT_EQ(countOpcode(fn, vx86::MOpcode::MOVZXrm, 32), 1u);
    EXPECT_EQ(countOpcode(fn, vx86::MOpcode::MOVrm), 0u);
    EXPECT_EQ(countOpcode(fn, vx86::MOpcode::MOVZXrr), 0u);
}

TEST(ExtLoadFoldTest, BuggyFoldWidensTheAccess)
{
    IselOptions options;
    options.foldExtLoad = true;
    options.bug = Bug::LoadWidening;
    vx86::MFunction fn = lowerWith(kZextLoad, options);
    // MOV64rm: an 8-byte access — the PR4737 miscompilation.
    EXPECT_EQ(countOpcode(fn, vx86::MOpcode::MOVrm, 64), 1u);
    EXPECT_EQ(countOpcode(fn, vx86::MOpcode::MOVZXrm), 0u);
}

TEST(ExtLoadFoldTest, MultiUseLoadIsNotFolded)
{
    const char *source = R"(
@g = external global i32
define i64 @f() {
entry:
  %v = load i32, i32* @g
  %w = zext i32 %v to i64
  %x = add i32 %v, 1
  store i32 %x, i32* @g
  ret i64 %w
}
)";
    IselOptions options;
    options.foldExtLoad = true;
    vx86::MFunction fn = lowerWith(source, options);
    // %v has two uses, so the plain load must survive.
    EXPECT_EQ(countOpcode(fn, vx86::MOpcode::MOVrm, 32), 1u);
    EXPECT_EQ(countOpcode(fn, vx86::MOpcode::MOVZXrm), 0u);
}

TEST(StoreMergeTest, DifferentGlobalsNotMerged)
{
    const char *source = R"(
@g = external global [4 x i8]
@h = external global [4 x i8]
define void @f() {
entry:
  %pg = getelementptr [4 x i8], [4 x i8]* @g, i64 0, i64 0
  %pgw = bitcast i8* %pg to i16*
  store i16 1, i16* %pgw
  %ph = getelementptr [4 x i8], [4 x i8]* @h, i64 0, i64 2
  %phw = bitcast i8* %ph to i16*
  store i16 2, i16* %phw
  ret void
}
)";
    IselOptions options;
    options.mergeStores = true;
    vx86::MFunction fn = lowerWith(source, options);
    EXPECT_EQ(countOpcode(fn, vx86::MOpcode::MOVmi, 16), 2u);
}

} // namespace
} // namespace keq::isel
