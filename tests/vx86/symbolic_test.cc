/** @file Symbolic Virtual x86 semantics tests. */

#include <gtest/gtest.h>

#include "src/vx86/parser.h"
#include "src/sem/sync_point.h"
#include "src/vx86/symbolic_semantics.h"

namespace keq::vx86 {
namespace {

using sem::Status;
using sem::SymbolicState;
using smt::Term;

class Vx86SymbolicFixture
{
  public:
    explicit Vx86SymbolicFixture(const char *source,
                                 std::function<void(mem::MemoryLayout &)>
                                     layout_setup = {})
        : module_(parseMModule(source))
    {
        if (layout_setup)
            layout_setup(layout_);
        sem_ = std::make_unique<SymbolicSemantics>(module_, tf_, layout_);
    }

    SymbolicState
    entryState(const std::string &fn)
    {
        return sem_->makeState({fn, "", "", ""}, {},
                               tf_.var("mem", smt::Sort::memArray()),
                               tf_.trueTerm());
    }

    std::vector<SymbolicState>
    runToEnd(SymbolicState seed, size_t max_steps = 2000)
    {
        std::vector<SymbolicState> work{std::move(seed)};
        std::vector<SymbolicState> done;
        size_t steps = 0;
        while (!work.empty()) {
            if (++steps > max_steps) {
                ADD_FAILURE() << "step budget exceeded";
                break;
            }
            SymbolicState state = std::move(work.back());
            work.pop_back();
            if (state.status != Status::Running) {
                done.push_back(std::move(state));
                continue;
            }
            for (SymbolicState &succ : sem_->step(state))
                work.push_back(std::move(succ));
        }
        return done;
    }

    MModule module_;
    smt::TermFactory tf_;
    mem::MemoryLayout layout_;
    std::unique_ptr<SymbolicSemantics> sem_;
};

TEST(Vx86SymbolicTest, CopyChainProducesInputTerm)
{
    Vx86SymbolicFixture fx(R"(function @f ret i32 {
.LBB0:
  %vr0_32 = COPY edi
  %vr1_32 = ADD32ri %vr0_32, $1
  eax = COPY %vr1_32
  RET
}
)");
    SymbolicState seed = fx.entryState("@f");
    fx.sem_->bindRegister(seed, "@f", "edi",
                          fx.tf_.var("a", smt::Sort::bitVec(32)));
    std::vector<SymbolicState> finals = fx.runToEnd(std::move(seed));
    ASSERT_EQ(finals.size(), 1u);
    EXPECT_EQ(finals[0].status, Status::Exited);
    EXPECT_EQ(finals[0].result,
              fx.tf_.bvAdd(fx.tf_.var("a", smt::Sort::bitVec(32)),
                           fx.tf_.bvConst(32, 1)));
}

TEST(Vx86SymbolicTest, ThirtyTwoBitWriteZeroExtendsInRegisterFile)
{
    Vx86SymbolicFixture fx(R"(function @f ret i64 {
.LBB0:
  rax = MOV64ri $-1
  eax = MOV32ri $7
  RET
}
)");
    std::vector<SymbolicState> finals = fx.runToEnd(fx.entryState("@f"));
    ASSERT_EQ(finals.size(), 1u);
    EXPECT_EQ(finals[0].result, fx.tf_.bvConst(64, 7));
}

TEST(Vx86SymbolicTest, NarrowWriteMergesSymbolically)
{
    Vx86SymbolicFixture fx(R"(function @f ret i64 {
.LBB0:
  al = COPY dil
  RET
}
)");
    SymbolicState seed = fx.entryState("@f");
    fx.sem_->bindRegister(seed, "@f", "rax",
                          fx.tf_.bvConst(64, 0xAABBCCDD11223300ull));
    fx.sem_->bindRegister(seed, "@f", "rdi", fx.tf_.bvConst(64, 0x42));
    std::vector<SymbolicState> finals = fx.runToEnd(std::move(seed));
    ASSERT_EQ(finals.size(), 1u);
    EXPECT_EQ(finals[0].result,
              fx.tf_.bvConst(64, 0xAABBCCDD11223342ull));
}

TEST(Vx86SymbolicTest, CmpJccSplitsOnComparison)
{
    Vx86SymbolicFixture fx(R"(function @f ret i32 {
.LBB0:
  %vr0_32 = COPY edi
  %vr1_32 = COPY esi
  CMP32rr %vr0_32, %vr1_32
  Jb .LBB1
  JMP .LBB2
.LBB1:
  eax = MOV32ri $1
  RET
.LBB2:
  eax = MOV32ri $0
  RET
}
)");
    SymbolicState seed = fx.entryState("@f");
    Term a = fx.tf_.var("a", smt::Sort::bitVec(32));
    Term b = fx.tf_.var("b", smt::Sort::bitVec(32));
    fx.sem_->bindRegister(seed, "@f", "edi", a);
    fx.sem_->bindRegister(seed, "@f", "esi", b);
    std::vector<SymbolicState> finals = fx.runToEnd(std::move(seed));
    ASSERT_EQ(finals.size(), 2u);
    // The carry-flag encoding folds back to a plain bvult predicate —
    // the exact term the LLVM side would produce.
    Term expected = fx.tf_.bvUlt(a, b);
    bool found_taken = false;
    for (const SymbolicState &state : finals) {
        if (state.pathCond == expected)
            found_taken = true;
    }
    EXPECT_TRUE(found_taken)
        << "taken-path condition did not normalize to bvult";
}

TEST(Vx86SymbolicTest, SignedConditionFoldsToSlt)
{
    Vx86SymbolicFixture fx(R"(function @f ret i32 {
.LBB0:
  %vr0_32 = COPY edi
  %vr1_32 = COPY esi
  CMP32rr %vr0_32, %vr1_32
  Jl .LBB1
  JMP .LBB2
.LBB1:
  eax = MOV32ri $1
  RET
.LBB2:
  eax = MOV32ri $0
  RET
}
)");
    SymbolicState seed = fx.entryState("@f");
    Term a = fx.tf_.var("a", smt::Sort::bitVec(32));
    Term b = fx.tf_.var("b", smt::Sort::bitVec(32));
    fx.sem_->bindRegister(seed, "@f", "edi", a);
    fx.sem_->bindRegister(seed, "@f", "esi", b);
    std::vector<SymbolicState> finals = fx.runToEnd(std::move(seed));
    ASSERT_EQ(finals.size(), 2u);
    // Jl reads sf != of; on concrete-free symbolic operands this is a
    // genuine formula — check it is at least sat-equivalent by
    // structure: one branch condition must be the negation of the other.
    EXPECT_EQ(finals[0].pathCond, fx.tf_.mkNot(finals[1].pathCond));
}

TEST(Vx86SymbolicTest, FrameAndGlobalAddressing)
{
    Vx86SymbolicFixture fx(
        R"(function @mem ret i32 {
  frame @mem/%slot 4
.LBB0:
  %vr0_32 = COPY edi
  MOV32mr [fi0], %vr0_32
  %vr1_32 = MOV32rm [fi0]
  eax = COPY %vr1_32
  RET
}
)",
        [](mem::MemoryLayout &layout) {
            layout.addStackSlot("@mem", "%slot", 4);
        });
    SymbolicState seed = fx.entryState("@mem");
    Term v = fx.tf_.var("v", smt::Sort::bitVec(32));
    fx.sem_->bindRegister(seed, "@mem", "edi", v);
    std::vector<SymbolicState> finals = fx.runToEnd(std::move(seed));
    ASSERT_EQ(finals.size(), 1u);
    // Store-to-load forwarding through the concrete frame address.
    EXPECT_EQ(finals[0].result, v);
}

TEST(Vx86SymbolicTest, OobSplitsIntoErrorState)
{
    Vx86SymbolicFixture fx(
        R"(function @bad ret i32 {
.LBB0:
  %vr0_64 = COPY rdi
  %vr1_32 = MOV32rm [%vr0_64]
  eax = COPY %vr1_32
  RET
}
)",
        [](mem::MemoryLayout &layout) { layout.addGlobal("@g", 8); });
    SymbolicState seed = fx.entryState("@bad");
    fx.sem_->bindRegister(seed, "@bad", "rdi",
                          fx.tf_.var("p", smt::Sort::bitVec(64)));
    std::vector<SymbolicState> finals = fx.runToEnd(std::move(seed));
    ASSERT_EQ(finals.size(), 2u);
    int errors = 0;
    for (const SymbolicState &state : finals) {
        if (state.status == Status::Error) {
            ++errors;
            EXPECT_EQ(state.errorKind, sem::ErrorKind::OutOfBounds);
        }
    }
    EXPECT_EQ(errors, 1);
}

TEST(Vx86SymbolicTest, DivisionEmitsFaultBranch)
{
    Vx86SymbolicFixture fx(R"(function @d ret i32 {
.LBB0:
  %vr0_32 = COPY edi
  %vr1_32 = COPY esi
  eax = COPY %vr0_32
  CDQ
  IDIV32 %vr1_32
  %vr2_32 = COPY eax
  eax = COPY %vr2_32
  RET
}
)");
    SymbolicState seed = fx.entryState("@d");
    fx.sem_->bindRegister(seed, "@d", "edi",
                          fx.tf_.var("a", smt::Sort::bitVec(32)));
    fx.sem_->bindRegister(seed, "@d", "esi",
                          fx.tf_.var("b", smt::Sort::bitVec(32)));
    std::vector<SymbolicState> finals = fx.runToEnd(fx.entryState("@d"));
    // Fault branch plus normal exit.
    ASSERT_EQ(finals.size(), 2u);
    int errors = 0;
    for (const SymbolicState &state : finals) {
        if (state.status == Status::Error) {
            ++errors;
            EXPECT_EQ(state.errorKind, sem::ErrorKind::DivByZero);
        }
    }
    EXPECT_EQ(errors, 1);
}

TEST(Vx86SymbolicTest, CallBoundaryCapturesArguments)
{
    Vx86SymbolicFixture fx(R"(function @c ret i32 {
.LBB0:
  %vr0_32 = COPY edi
  edi = COPY %vr0_32
  esi = MOV32ri $9
  eax = CALL @ext(edi, esi) site=cs0
  %vr1_32 = COPY eax
  eax = COPY %vr1_32
  RET
}
)");
    SymbolicState seed = fx.entryState("@c");
    Term a = fx.tf_.var("a", smt::Sort::bitVec(32));
    fx.sem_->bindRegister(seed, "@c", "edi", a);
    std::vector<SymbolicState> finals = fx.runToEnd(std::move(seed));
    ASSERT_EQ(finals.size(), 1u);
    const SymbolicState &at_call = finals[0];
    EXPECT_EQ(at_call.status, Status::AtCall);
    EXPECT_EQ(at_call.callee, "@ext");
    ASSERT_EQ(at_call.callArgs.size(), 2u);
    EXPECT_EQ(at_call.callArgs[0], a);
    EXPECT_EQ(at_call.callArgs[1], fx.tf_.bvConst(32, 9));
}

TEST(Vx86SymbolicTest, RegisterWidthsAndBinding)
{
    Vx86SymbolicFixture fx(R"(function @f ret i32 {
.LBB0:
  %vr0_32 = COPY edi
  eax = COPY %vr0_32
  RET
}
)");
    EXPECT_EQ(fx.sem_->registerWidth("@f", "%vr0_32"), 32u);
    EXPECT_EQ(fx.sem_->registerWidth("@f", "eax"), 32u);
    EXPECT_EQ(fx.sem_->registerWidth("@f", "rax"), 64u);
    EXPECT_EQ(fx.sem_->registerWidth("@f", "dil"), 8u);
    EXPECT_EQ(fx.sem_->registerWidth("@f", "zf"), 1u);
    EXPECT_EQ(fx.sem_->registerWidth("@f", sem::kReturnValueName), 32u);
}

} // namespace
} // namespace keq::vx86
