/** @file Virtual x86 representation tests: register decoding, printing,
 *  and parser round-trips. */

#include <gtest/gtest.h>

#include "src/support/diagnostics.h"
#include "src/vx86/mir.h"
#include "src/vx86/parser.h"

namespace keq::vx86 {
namespace {

TEST(PhysRegTest, DecodeSpellings)
{
    std::string canonical;
    unsigned width = 0;
    ASSERT_TRUE(decodePhysReg("eax", canonical, width));
    EXPECT_EQ(canonical, "rax");
    EXPECT_EQ(width, 32u);
    ASSERT_TRUE(decodePhysReg("dil", canonical, width));
    EXPECT_EQ(canonical, "rdi");
    EXPECT_EQ(width, 8u);
    ASSERT_TRUE(decodePhysReg("r8d", canonical, width));
    EXPECT_EQ(canonical, "r8");
    EXPECT_EQ(width, 32u);
    ASSERT_TRUE(decodePhysReg("r15", canonical, width));
    EXPECT_EQ(width, 64u);
    ASSERT_TRUE(decodePhysReg("r10b", canonical, width));
    EXPECT_EQ(width, 8u);
    EXPECT_FALSE(decodePhysReg("r16", canonical, width));
    EXPECT_FALSE(decodePhysReg("xmm0", canonical, width));
}

TEST(PhysRegTest, SpellingsRoundTrip)
{
    EXPECT_EQ(physRegSpelling("rax", 32), "eax");
    EXPECT_EQ(physRegSpelling("rax", 8), "al");
    EXPECT_EQ(physRegSpelling("r9", 16), "r9w");
    EXPECT_EQ(physRegSpelling("rdi", 64), "rdi");
    for (const std::string &reg : kPhysRegs) {
        for (unsigned width : {64u, 32u}) {
            std::string canonical;
            unsigned decoded = 0;
            ASSERT_TRUE(decodePhysReg(physRegSpelling(reg, width),
                                      canonical, decoded));
            EXPECT_EQ(canonical, reg);
            EXPECT_EQ(decoded, width);
        }
    }
}

TEST(CondCodeTest, NamesRoundTrip)
{
    for (CondCode cc :
         {CondCode::E, CondCode::NE, CondCode::B, CondCode::BE,
          CondCode::A, CondCode::AE, CondCode::L, CondCode::LE,
          CondCode::G, CondCode::GE, CondCode::S, CondCode::NS,
          CondCode::O, CondCode::NO}) {
        EXPECT_EQ(parseCondCode(condCodeName(cc)), cc);
    }
}

TEST(MirPrintTest, InstructionForms)
{
    MInst copy;
    copy.op = MOpcode::COPY;
    copy.width = 32;
    copy.ops = {MOperand::virtReg(3, 32), MOperand::physReg("rdi", 32)};
    EXPECT_EQ(copy.toString(), "%vr3_32 = COPY edi");

    MInst add;
    add.op = MOpcode::ADDri;
    add.width = 32;
    add.ops = {MOperand::virtReg(0, 32), MOperand::virtReg(1, 32),
               MOperand::immediate(support::ApInt(32, 5))};
    EXPECT_EQ(add.toString(), "%vr0_32 = ADD32ri %vr1_32, $5");

    MInst load;
    load.op = MOpcode::MOVrm;
    load.width = 32;
    load.ops = {MOperand::virtReg(2, 32)};
    load.addr.baseKind = MAddress::BaseKind::Global;
    load.addr.global = "@g";
    load.addr.disp = 8;
    EXPECT_EQ(load.toString(), "%vr2_32 = MOV32rm [@g + 8]");

    MInst jcc;
    jcc.op = MOpcode::JCC;
    jcc.cc = CondCode::AE;
    jcc.target = ".LBB4";
    EXPECT_EQ(jcc.toString(), "Jae .LBB4");
}

/** Builds a small function, prints it, parses the text, re-prints, and
 *  expects identical output (round-trip property). */
TEST(MirRoundTripTest, PrintParsePrint)
{
    const char *source = R"(function @demo ret i32 {
  frame @demo/%p 4
.LBB0:
  %vr0_32 = COPY edi
  %vr1_64 = LEA64 [fi0]
  MOV32mr [%vr1_64], %vr0_32
  %vr2_32 = MOV32rm [%vr1_64 + 4]
  %vr3_32 = ADD32rr %vr2_32, %vr0_32
  %vr4_32 = MOV32ri $-7
  CMP32rr %vr3_32, %vr4_32
  Jb .LBB1
  JMP .LBB2
.LBB1:
  %vr5_8 = SETe
  %vr6_32 = MOVZX32rr8 %vr5_8
  eax = COPY %vr6_32
  RET
.LBB2:
  %vr7_32 = PHI %vr3_32, .LBB0
  TEST32rr %vr7_32, %vr7_32
  Jne .LBB1
  JMP .LBB1
}
)";
    MModule parsed = parseMModule(source);
    ASSERT_EQ(parsed.functions.size(), 1u);
    std::string printed = parsed.functions[0].toString();
    MModule reparsed = parseMModule(printed);
    EXPECT_EQ(printed, reparsed.functions[0].toString());
    // Structure checks.
    const MFunction &fn = parsed.functions[0];
    EXPECT_EQ(fn.retWidth, 32u);
    ASSERT_EQ(fn.frame.size(), 1u);
    EXPECT_EQ(fn.frame[0].slotName, "@demo/%p");
    EXPECT_EQ(fn.blocks.size(), 3u);
    EXPECT_EQ(fn.blocks[0].successors(),
              (std::vector<std::string>{".LBB1", ".LBB2"}));
}

TEST(MirRoundTripTest, CallsAndDivision)
{
    const char *source = R"(function @c ret i32 {
.LBB0:
  %vr0_32 = COPY edi
  eax = COPY %vr0_32
  CDQ
  IDIV32 %vr0_32
  %vr1_32 = COPY eax
  edi = COPY %vr1_32
  eax = CALL @ext(edi) site=cs0
  %vr2_32 = COPY eax
  eax = COPY %vr2_32
  RET
}
)";
    MModule parsed = parseMModule(source);
    const MFunction &fn = parsed.functions[0];
    std::string printed = fn.toString();
    EXPECT_EQ(printed, parseMModule(printed).functions[0].toString());
    // CALL metadata survived.
    const MInst *call = nullptr;
    for (const MInst &inst : fn.blocks[0].insts) {
        if (inst.op == MOpcode::CALL)
            call = &inst;
    }
    ASSERT_NE(call, nullptr);
    EXPECT_EQ(call->target, "@ext");
    EXPECT_EQ(call->callSiteId, "cs0");
    EXPECT_EQ(call->retWidth, 32u);
    ASSERT_EQ(call->callArgs.size(), 1u);
    EXPECT_EQ(call->callArgs[0].reg, "rdi");
}

TEST(MirTest, BlockSuccessors)
{
    MBasicBlock block;
    MInst jcc;
    jcc.op = MOpcode::JCC;
    jcc.target = ".LBB1";
    MInst jmp;
    jmp.op = MOpcode::JMP;
    jmp.target = ".LBB2";
    block.insts = {jcc, jmp};
    EXPECT_EQ(block.successors(),
              (std::vector<std::string>{".LBB1", ".LBB2"}));
}

TEST(MirParseTest, RejectsMalformedInput)
{
    EXPECT_THROW(parseMModule("JMP nowhere\n"), support::Error);
    EXPECT_THROW(parseMModule("function @f ret i32 {\n  FROB32rr a, b\n}"),
                 support::Error);
    EXPECT_THROW(
        parseMModule("function @f ret i32 {\n.LBB0:\n"
                     "  %vr0_32 = MOV32rm [oops\n}"),
        support::Error);
}

} // namespace
} // namespace keq::vx86
