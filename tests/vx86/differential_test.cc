/** @file Differential testing of the symbolic Virtual x86 semantics
 *  against the concrete Virtual x86 interpreter, on ISel-lowered corpus
 *  functions: for random inputs, exactly one symbolic path condition
 *  holds, and that path's result/trap/memory must match the concrete
 *  execution. The x86 twin of tests/llvmir/differential_test.cc. */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/driver/corpus.h"
#include "src/isel/isel.h"
#include "src/llvmir/layout_builder.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/smt/evaluator.h"
#include "src/support/rng.h"
#include "src/vx86/interpreter.h"
#include "src/vx86/symbolic_semantics.h"

namespace keq::vx86 {
namespace {

using sem::Status;
using sem::SymbolicState;
using smt::Term;
using support::ApInt;
using support::Rng;

/** Lowers an LLVM module and owns the vx86 symbolic machinery. */
class Vx86DifferentialFixture
{
  public:
    explicit Vx86DifferentialFixture(std::string llvm_source)
        : module_(llvmir::parseModule(llvm_source))
    {
        llvmir::verifyModuleOrThrow(module_);
        llvmir::populateLayout(module_, layout_);
        isel::ModuleHints hints;
        mmodule_ = isel::lowerModule(module_, {}, hints);
        sem_ = std::make_unique<SymbolicSemantics>(mmodule_, tf_,
                                                   layout_);
    }

    /** Seeds entry with one fresh 64-bit var per argument register. */
    SymbolicState
    entryState(const std::string &fn, size_t arg_count)
    {
        SymbolicState state = sem_->makeState(
            {fn, "", "", ""}, {},
            tf_.var("mem", smt::Sort::memArray()), tf_.trueTerm());
        for (size_t i = 0; i < arg_count; ++i) {
            sem_->bindRegister(state, fn, kArgRegs[i],
                               tf_.var("arg" + std::to_string(i),
                                       smt::Sort::bitVec(64)));
        }
        return state;
    }

    std::vector<SymbolicState>
    runToEnd(SymbolicState seed, size_t max_steps = 20000)
    {
        std::vector<SymbolicState> work{std::move(seed)};
        std::vector<SymbolicState> done;
        size_t steps = 0;
        while (!work.empty()) {
            if (++steps > max_steps) {
                ADD_FAILURE() << "step budget exceeded";
                break;
            }
            SymbolicState state = std::move(work.back());
            work.pop_back();
            if (state.status != Status::Running) {
                done.push_back(std::move(state));
                continue;
            }
            for (SymbolicState &succ : sem_->step(state))
                work.push_back(std::move(succ));
        }
        return done;
    }

    llvmir::Module module_;
    MModule mmodule_;
    smt::TermFactory tf_;
    mem::MemoryLayout layout_;
    std::unique_ptr<SymbolicSemantics> sem_;
};

void
checkAgreement(Vx86DifferentialFixture &fx, const MFunction &mfn,
               const std::vector<ApInt> &args)
{
    // Concrete run against per-object deterministic noise.
    mem::ConcreteMemory memory(fx.layout_);
    smt::Assignment env;
    for (const mem::MemoryObject &object : fx.layout_.objects()) {
        Rng fill(object.base);
        for (uint64_t i = 0; i < object.size; ++i) {
            uint8_t byte = static_cast<uint8_t>(fill.next());
            memory.poke(object.base + i, byte);
            env.setArrayByte("mem", object.base + i, byte);
        }
    }
    Interpreter interp(fx.mmodule_, memory);
    MExecResult concrete = interp.run(mfn, args, 100000);
    if (concrete.outcome == MExecOutcome::StepLimit)
        return;

    for (size_t i = 0; i < args.size(); ++i)
        env.setBv("arg" + std::to_string(i), args[i].zextTo(64));
    std::vector<SymbolicState> finals =
        fx.runToEnd(fx.entryState(mfn.name, args.size()));
    ASSERT_FALSE(finals.empty());

    smt::Evaluator ev(env);
    const SymbolicState *chosen = nullptr;
    size_t true_paths = 0;
    for (const SymbolicState &final_state : finals) {
        if (ev.evalBool(final_state.pathCond)) {
            ++true_paths;
            chosen = &final_state;
        }
    }
    ASSERT_EQ(true_paths, 1u)
        << mfn.name << ": path conditions must partition the inputs";

    if (concrete.outcome == MExecOutcome::Trapped) {
        EXPECT_EQ(chosen->status, Status::Error)
            << mfn.name << ": interpreter trapped ("
            << sem::errorKindName(concrete.error)
            << ") but the symbolic path did not";
        if (chosen->status == Status::Error) {
            EXPECT_EQ(chosen->errorKind, concrete.error) << mfn.name;
        }
        return;
    }

    ASSERT_EQ(chosen->status, Status::Exited)
        << mfn.name << ": interpreter returned but the symbolic path "
        << sem::statusName(chosen->status);
    if (chosen->result) {
        EXPECT_EQ(ev.evalBv(chosen->result).zextTo(64).zext(),
                  concrete.value.zextTo(64).zext())
            << mfn.name << ": return values diverged";
    }

    for (const mem::MemoryObject &object : fx.layout_.objects()) {
        for (uint64_t i = 0; i < object.size; ++i) {
            uint64_t addr = object.base + i;
            ApInt byte = ev.evalBv(fx.tf_.select(
                chosen->memory, fx.tf_.bvConst(64, addr)));
            ASSERT_EQ(byte.zext(), uint64_t{memory.peek(addr)})
                << mfn.name << ": memory diverged at " << object.name
                << "+" << i;
        }
    }
}

class Vx86DifferentialTest : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(Vx86DifferentialTest, SymbolicAgreesWithInterpreterOnCorpus)
{
    driver::CorpusOptions copts;
    copts.seed = GetParam();
    copts.functionCount = 8;
    copts.includeLoops = false; // symbolic execution enumerates paths
    copts.includeCalls = false;
    copts.nswPercent = 0; // nsw is LLVM-level UB; lowering erases it
    Vx86DifferentialFixture fx(driver::generateCorpusSource(copts));

    Rng rng(GetParam() * 52711);
    for (const llvmir::Function &fn : fx.module_.functions) {
        if (fn.isDeclaration())
            continue;
        const MFunction *mfn = fx.mmodule_.findFunction(fn.name);
        ASSERT_NE(mfn, nullptr);
        for (int trial = 0; trial < 3; ++trial) {
            std::vector<ApInt> args;
            for (const llvmir::Parameter &param : fn.params) {
                uint64_t bits =
                    trial % 2 == 0 ? rng.below(64) : rng.next();
                args.push_back(
                    ApInt(param.type->valueBits(), bits).zextTo(64));
            }
            checkAgreement(fx, *mfn, args);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Vx86DifferentialTest,
                         ::testing::Range(uint64_t{8000},
                                          uint64_t{8006}));

TEST(Vx86DifferentialTest, LoweredBranchSelectsTheConcretePath)
{
    Vx86DifferentialFixture fx(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp ult i32 %a, %b
  br i1 %c, label %then, label %else
then:
  %s = add i32 %a, %b
  ret i32 %s
else:
  %d = sub i32 %a, %b
  ret i32 %d
}
)");
    const MFunction *mfn = fx.mmodule_.findFunction("@f");
    ASSERT_NE(mfn, nullptr);
    checkAgreement(fx, *mfn, {ApInt(64, 3), ApInt(64, 10)});
    checkAgreement(fx, *mfn, {ApInt(64, 10), ApInt(64, 3)});
    checkAgreement(fx, *mfn, {ApInt(64, 7), ApInt(64, 7)});
}

TEST(Vx86DifferentialTest, LoweredGlobalStoresMatchByteForByte)
{
    Vx86DifferentialFixture fx(R"(
@g = external global [16 x i8]
define i32 @f(i32 %a) {
entry:
  %p = getelementptr inbounds [16 x i8], [16 x i8]* @g, i64 0, i64 4
  %pw = bitcast i8* %p to i32*
  %old = load i32, i32* %pw
  store i32 %a, i32* %pw
  %r = add i32 %old, %a
  ret i32 %r
}
)");
    const MFunction *mfn = fx.mmodule_.findFunction("@f");
    ASSERT_NE(mfn, nullptr);
    checkAgreement(fx, *mfn, {ApInt(64, 0xdeadbeefull)});
    checkAgreement(fx, *mfn, {ApInt(64, 0)});
}

TEST(Vx86DifferentialTest, LoweredDivisionTrapsOnZero)
{
    Vx86DifferentialFixture fx(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %q = udiv i32 %a, %b
  ret i32 %q
}
)");
    const MFunction *mfn = fx.mmodule_.findFunction("@f");
    ASSERT_NE(mfn, nullptr);
    checkAgreement(fx, *mfn, {ApInt(64, 100), ApInt(64, 7)});
    checkAgreement(fx, *mfn, {ApInt(64, 100), ApInt(64, 0)});
}

} // namespace
} // namespace keq::vx86
