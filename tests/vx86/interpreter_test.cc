/** @file Concrete Virtual x86 interpreter tests, including the x86-64
 *  sub-register write semantics and flag behaviour. */

#include <gtest/gtest.h>

#include "src/vx86/interpreter.h"
#include "src/vx86/parser.h"

namespace keq::vx86 {
namespace {

using support::ApInt;

MExecResult
runText(const char *source, const std::string &fn,
        std::vector<ApInt> args, mem::MemoryLayout &layout,
        std::function<void(mem::ConcreteMemory &)> setup = {})
{
    MModule module = parseMModule(source);
    mem::ConcreteMemory memory(layout);
    if (setup)
        setup(memory);
    Interpreter interp(module, memory);
    return interp.run(*module.findFunction(fn), args);
}

TEST(Vx86InterpreterTest, CopyAndArithmetic)
{
    const char *source = R"(function @f ret i32 {
.LBB0:
  %vr0_32 = COPY edi
  %vr1_32 = COPY esi
  %vr2_32 = ADD32rr %vr0_32, %vr1_32
  %vr3_32 = SUB32ri %vr2_32, $5
  eax = COPY %vr3_32
  RET
}
)";
    mem::MemoryLayout layout;
    MExecResult result = runText(source, "@f",
                                 {ApInt(32, 40), ApInt(32, 7)}, layout);
    ASSERT_EQ(result.outcome, MExecOutcome::Returned);
    EXPECT_EQ(result.value.zext(), 42u);
}

TEST(Vx86InterpreterTest, ThirtyTwoBitWritesZeroUpperHalf)
{
    const char *source = R"(function @f ret i64 {
.LBB0:
  rax = MOV64ri $-1
  eax = MOV32ri $5
  RET
}
)";
    mem::MemoryLayout layout;
    MExecResult result = runText(source, "@f", {}, layout);
    ASSERT_EQ(result.outcome, MExecOutcome::Returned);
    // x86-64: writing eax zeroes the upper 32 bits of rax.
    EXPECT_EQ(result.value.zext(), 5u);
}

TEST(Vx86InterpreterTest, EightBitWritesPreserveUpperBits)
{
    const char *source = R"(function @f ret i64 {
.LBB0:
  rax = MOV64ri $511
  al = MOV8ri $0
  RET
}
)";
    mem::MemoryLayout layout;
    MExecResult result = runText(source, "@f", {}, layout);
    ASSERT_EQ(result.outcome, MExecOutcome::Returned);
    // 0x1ff with the low byte cleared is 0x100.
    EXPECT_EQ(result.value.zext(), 0x100u);
}

TEST(Vx86InterpreterTest, CompareAndBranch)
{
    const char *source = R"(function @min ret i32 {
.LBB0:
  %vr0_32 = COPY edi
  %vr1_32 = COPY esi
  CMP32rr %vr0_32, %vr1_32
  Jb .LBB1
  JMP .LBB2
.LBB1:
  eax = COPY %vr0_32
  RET
.LBB2:
  eax = COPY %vr1_32
  RET
}
)";
    mem::MemoryLayout layout;
    MExecResult lo = runText(source, "@min",
                             {ApInt(32, 3), ApInt(32, 9)}, layout);
    EXPECT_EQ(lo.value.zext(), 3u);
    MExecResult hi = runText(source, "@min",
                             {ApInt(32, 9), ApInt(32, 3)}, layout);
    EXPECT_EQ(hi.value.zext(), 3u);
}

TEST(Vx86InterpreterTest, SignedConditionsUseOverflowFlag)
{
    const char *source = R"(function @sgn ret i32 {
.LBB0:
  %vr0_32 = COPY edi
  CMP32ri %vr0_32, $0
  Jl .LBB1
  JMP .LBB2
.LBB1:
  eax = MOV32ri $1
  RET
.LBB2:
  eax = MOV32ri $0
  RET
}
)";
    mem::MemoryLayout layout;
    EXPECT_EQ(runText(source, "@sgn",
                      {ApInt(32, static_cast<uint64_t>(-5))}, layout)
                  .value.zext(),
              1u);
    EXPECT_EQ(runText(source, "@sgn", {ApInt(32, 5)}, layout)
                  .value.zext(),
              0u);
    // INT_MIN - 0 keeps sf=1, of=0, so Jl still fires; check
    // INT_MIN vs positive where the subtraction overflows.
    EXPECT_EQ(runText(source, "@sgn", {ApInt::signedMin(32)}, layout)
                  .value.zext(),
              1u);
}

TEST(Vx86InterpreterTest, PhiFollowsCameFrom)
{
    const char *source = R"(function @loop ret i32 {
.LBB0:
  %vr0_32 = COPY edi
  %vr1_32 = MOV32ri $0
  JMP .LBB1
.LBB1:
  %vr2_32 = PHI %vr1_32, .LBB0, %vr3_32, .LBB2
  %vr4_32 = PHI %vr0_32, .LBB0, %vr5_32, .LBB2
  CMP32ri %vr4_32, $0
  Jne .LBB2
  JMP .LBB3
.LBB2:
  %vr3_32 = ADD32rr %vr2_32, %vr4_32
  %vr5_32 = SUB32ri %vr4_32, $1
  JMP .LBB1
.LBB3:
  eax = COPY %vr2_32
  RET
}
)";
    mem::MemoryLayout layout;
    // Sums n + (n-1) + ... + 1.
    MExecResult result = runText(source, "@loop", {ApInt(32, 5)},
                                 layout);
    ASSERT_EQ(result.outcome, MExecOutcome::Returned);
    EXPECT_EQ(result.value.zext(), 15u);
}

TEST(Vx86InterpreterTest, MemoryThroughFrameAndGlobal)
{
    const char *source = R"(function @mem ret i32 {
  frame @mem/%slot 4
.LBB0:
  %vr0_32 = COPY edi
  MOV32mr [fi0], %vr0_32
  %vr1_32 = MOV32rm [fi0]
  %vr2_32 = MOV32rm [@g + 4]
  %vr3_32 = ADD32rr %vr1_32, %vr2_32
  eax = COPY %vr3_32
  RET
}
)";
    mem::MemoryLayout layout;
    layout.addGlobal("@g", 8);
    layout.addStackSlot("@mem", "%slot", 4);
    uint64_t gbase = layout.find("@g")->base;
    MExecResult result = runText(
        source, "@mem", {ApInt(32, 30)}, layout,
        [&](mem::ConcreteMemory &memory) {
            memory.write(gbase + 4, ApInt(32, 12));
        });
    ASSERT_EQ(result.outcome, MExecOutcome::Returned);
    EXPECT_EQ(result.value.zext(), 42u);
}

TEST(Vx86InterpreterTest, OutOfBoundsTraps)
{
    const char *source = R"(function @bad ret i32 {
.LBB0:
  %vr0_32 = MOV32rm [@g + 6]
  eax = COPY %vr0_32
  RET
}
)";
    mem::MemoryLayout layout;
    layout.addGlobal("@g", 8);
    MExecResult result = runText(source, "@bad", {}, layout);
    EXPECT_EQ(result.outcome, MExecOutcome::Trapped);
    EXPECT_EQ(result.error, sem::ErrorKind::OutOfBounds);
}

TEST(Vx86InterpreterTest, DivisionViaRdxRax)
{
    const char *source = R"(function @div ret i32 {
.LBB0:
  %vr0_32 = COPY edi
  %vr1_32 = COPY esi
  eax = COPY %vr0_32
  CDQ
  IDIV32 %vr1_32
  %vr2_32 = COPY eax
  eax = COPY %vr2_32
  RET
}
)";
    mem::MemoryLayout layout;
    MExecResult result = runText(
        source, "@div",
        {ApInt(32, static_cast<uint64_t>(-40)), ApInt(32, 8)}, layout);
    ASSERT_EQ(result.outcome, MExecOutcome::Returned);
    EXPECT_EQ(result.value.sext(), -5);
    // Divide fault on zero.
    MExecResult fault = runText(source, "@div",
                                {ApInt(32, 1), ApInt(32, 0)}, layout);
    EXPECT_EQ(fault.outcome, MExecOutcome::Trapped);
    EXPECT_EQ(fault.error, sem::ErrorKind::DivByZero);
    // Divide fault on quotient overflow (INT_MIN / -1).
    MExecResult ovf =
        runText(source, "@div",
                {ApInt::signedMin(32), ApInt::allOnes(32)}, layout);
    EXPECT_EQ(ovf.outcome, MExecOutcome::Trapped);
}

TEST(Vx86InterpreterTest, UnsignedDivisionZeroExtends)
{
    const char *source = R"(function @udiv ret i32 {
.LBB0:
  %vr0_32 = COPY edi
  %vr1_32 = COPY esi
  eax = COPY %vr0_32
  edx = MOV32ri $0
  DIV32 %vr1_32
  %vr2_32 = COPY edx
  eax = COPY %vr2_32
  RET
}
)";
    mem::MemoryLayout layout;
    // 0xfffffff0 % 7 treating operands as unsigned.
    MExecResult result = runText(
        source, "@udiv",
        {ApInt(32, 0xfffffff0u), ApInt(32, 7)}, layout);
    ASSERT_EQ(result.outcome, MExecOutcome::Returned);
    EXPECT_EQ(result.value.zext(), 0xfffffff0u % 7u);
}

TEST(Vx86InterpreterTest, SetccMaterializesCondition)
{
    const char *source = R"(function @isz ret i32 {
.LBB0:
  %vr0_32 = COPY edi
  TEST32rr %vr0_32, %vr0_32
  %vr1_8 = SETe
  %vr2_32 = MOVZX32rr8 %vr1_8
  eax = COPY %vr2_32
  RET
}
)";
    mem::MemoryLayout layout;
    EXPECT_EQ(runText(source, "@isz", {ApInt(32, 0)}, layout)
                  .value.zext(),
              1u);
    EXPECT_EQ(runText(source, "@isz", {ApInt(32, 9)}, layout)
                  .value.zext(),
              0u);
}

TEST(Vx86InterpreterTest, Ud2Traps)
{
    const char *source = "function @t ret i32 {\n.LBB0:\n  UD2\n}\n";
    mem::MemoryLayout layout;
    MExecResult result = runText(source, "@t", {}, layout);
    EXPECT_EQ(result.outcome, MExecOutcome::Trapped);
    EXPECT_EQ(result.error, sem::ErrorKind::Unreachable);
}

TEST(Vx86InterpreterTest, ExternalCallTrace)
{
    const char *source = R"(function @c ret i32 {
.LBB0:
  %vr0_32 = COPY edi
  edi = COPY %vr0_32
  eax = CALL @ext(edi) site=cs0
  %vr1_32 = COPY eax
  eax = COPY %vr1_32
  RET
}
)";
    mem::MemoryLayout layout;
    MModule module = parseMModule(source);
    mem::ConcreteMemory memory(layout);
    Interpreter interp(module, memory);
    interp.setExternalHandler(
        [](const std::string &, const std::vector<ApInt> &args) {
            return ApInt(64, args[0].zext() + 1);
        });
    MExecResult result =
        interp.run(*module.findFunction("@c"), {ApInt(32, 41)});
    ASSERT_EQ(result.outcome, MExecOutcome::Returned);
    EXPECT_EQ(result.value.zext(), 42u);
    ASSERT_EQ(result.callTrace.size(), 1u);
    EXPECT_EQ(result.callTrace[0], "@ext(41)=42");
}

} // namespace
} // namespace keq::vx86
