/** @file Property tests tying Algorithm 1 to the reference greatest-
 *  fixpoint cut-bisimulation procedure on random finite systems. */

#include <gtest/gtest.h>

#include "src/core/reference.h"
#include "src/support/rng.h"

namespace keq::core {
namespace {

using support::Rng;

/**
 * Generates a random cut transition system with a valid cut: every state
 * gets a label from a small alphabet; we then add cut states densely
 * enough and repair violations by promoting states into the cut.
 */
ExplicitTransitionSystem
randomSystem(Rng &rng, size_t num_states, unsigned alphabet)
{
    ExplicitTransitionSystem ts;
    for (size_t i = 0; i < num_states; ++i) {
        std::string label(1, static_cast<char>(
                                 'a' + rng.below(alphabet)));
        ts.addState(label, rng.chancePercent(60));
    }
    for (size_t i = 0; i < num_states; ++i) {
        unsigned out_degree = static_cast<unsigned>(rng.below(3));
        for (unsigned e = 0; e < out_degree; ++e) {
            ts.addTransition(static_cast<StateId>(i),
                             static_cast<StateId>(
                                 rng.below(num_states)));
        }
    }
    ts.setInitial(0);
    ts.setCut(0, true);
    // Repair until the cut is valid: promote random states.
    for (int attempts = 0; attempts < 200; ++attempts) {
        if (ts.validateCut().valid)
            break;
        ts.setCut(static_cast<StateId>(rng.below(num_states)), true);
    }
    return ts;
}

class ReferenceProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ReferenceProperty, LargestRelationPassesAlgorithm1)
{
    Rng rng(GetParam());
    ExplicitTransitionSystem t1 = randomSystem(rng, 8, 2);
    ExplicitTransitionSystem t2 = randomSystem(rng, 8, 2);
    if (!t1.validateCut().valid || !t2.validateCut().valid)
        GTEST_SKIP() << "could not repair a random cut";

    PairRelation largest =
        largestCutBisimulation(t1, t2, labelEquality);
    // The greatest fixpoint is itself a cut-bisimulation, so the
    // verbatim Algorithm 1 must accept it.
    CheckOutcome outcome = checkCutBisimulation(t1, t2, largest);
    EXPECT_TRUE(outcome.holds);
}

TEST_P(ReferenceProperty, AcceptedRelationsAreContainedInLargest)
{
    Rng rng(GetParam() * 7919);
    ExplicitTransitionSystem t1 = randomSystem(rng, 7, 2);
    ExplicitTransitionSystem t2 = randomSystem(rng, 7, 2);
    if (!t1.validateCut().valid || !t2.validateCut().valid)
        GTEST_SKIP() << "could not repair a random cut";

    // Random candidate sub-relations of the acceptable pairs.
    PairRelation largest =
        largestCutBisimulation(t1, t2, labelEquality);
    for (int trial = 0; trial < 10; ++trial) {
        PairRelation candidate;
        for (StateId s1 : t1.cutStates()) {
            for (StateId s2 : t2.cutStates()) {
                if (labelEquality(t1, s1, t2, s2) &&
                    rng.chancePercent(50)) {
                    candidate.add(s1, s2);
                }
            }
        }
        if (checkCutBisimulation(t1, t2, candidate).holds) {
            // Soundness: any accepted relation is a cut-bisimulation,
            // hence contained in the largest one.
            for (const auto &[s1, s2] : candidate.pairs()) {
                EXPECT_TRUE(largest.contains(s1, s2))
                    << "accepted pair (" << s1 << "," << s2
                    << ") outside the largest cut-bisimulation";
            }
        }
    }
}

TEST_P(ReferenceProperty, SelfBisimilarity)
{
    Rng rng(GetParam() * 104729);
    ExplicitTransitionSystem ts = randomSystem(rng, 9, 3);
    if (!ts.validateCut().valid)
        GTEST_SKIP() << "could not repair a random cut";
    // Any system is cut-bisimilar to itself under label equality
    // (identity is a witness).
    EXPECT_TRUE(cutBisimilar(ts, ts, labelEquality));
    // And the identity relation on cut states passes Algorithm 1.
    PairRelation identity;
    for (StateId s : ts.cutStates())
        identity.add(s, s);
    EXPECT_TRUE(checkCutBisimulation(ts, ts, identity).holds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

TEST(ReferenceTest, SimulationWeakerThanBisimulation)
{
    // T2 nondeterministically does more than T1.
    ExplicitTransitionSystem t1, t2;
    StateId a1 = t1.addState("a", true);
    StateId b1 = t1.addState("b", true);
    t1.addTransition(a1, b1);
    t1.setInitial(a1);

    StateId a2 = t2.addState("a", true);
    StateId b2 = t2.addState("b", true);
    StateId c2 = t2.addState("c", true);
    t2.addTransition(a2, b2);
    t2.addTransition(a2, c2);
    t2.setInitial(a2);

    EXPECT_FALSE(cutBisimilar(t1, t2, labelEquality,
                              CheckMode::Bisimulation));
    EXPECT_TRUE(cutBisimilar(t1, t2, labelEquality,
                             CheckMode::Simulation));
}

TEST(ReferenceTest, LabelMismatchNeverBisimilar)
{
    ExplicitTransitionSystem t1, t2;
    t1.addState("x", true);
    t1.setInitial(0);
    t2.addState("y", true);
    t2.setInitial(0);
    EXPECT_FALSE(cutBisimilar(t1, t2, labelEquality));
}

} // namespace
} // namespace keq::core
