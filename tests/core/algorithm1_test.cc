/** @file Tests for the concrete Algorithm 1, including the paper's
 *  Figure 4 partial-redundancy-elimination example. */

#include <gtest/gtest.h>

#include "src/core/algorithm1.h"
#include "src/core/reference.h"

namespace keq::core {
namespace {

/** Two lock-step counters: 0 -> 1 -> 2 (all states cut, labels equal). */
struct LockStepPair
{
    ExplicitTransitionSystem t1, t2;
    PairRelation relation;

    LockStepPair()
    {
        for (int i = 0; i < 3; ++i) {
            t1.addState(std::to_string(i), true);
            t2.addState(std::to_string(i), true);
        }
        t1.addTransition(0, 1);
        t1.addTransition(1, 2);
        t2.addTransition(0, 1);
        t2.addTransition(1, 2);
        t1.setInitial(0);
        t2.setInitial(0);
        for (StateId s = 0; s < 3; ++s)
            relation.add(s, s);
    }
};

TEST(Algorithm1Test, AcceptsLockStepIdentity)
{
    LockStepPair pair;
    CheckOutcome outcome =
        checkCutBisimulation(pair.t1, pair.t2, pair.relation);
    EXPECT_TRUE(outcome.holds);
    EXPECT_FALSE(outcome.failure.has_value());
}

TEST(Algorithm1Test, RejectsMissingPair)
{
    LockStepPair pair;
    PairRelation partial;
    partial.add(0, 0);
    partial.add(1, 1); // missing (2, 2): successors of (1,1) uncovered
    CheckOutcome outcome =
        checkCutBisimulation(pair.t1, pair.t2, partial);
    EXPECT_FALSE(outcome.holds);
    ASSERT_TRUE(outcome.failure.has_value());
    EXPECT_EQ(outcome.failure->p1, 1u);
    EXPECT_EQ(outcome.failure->p2, 1u);
    ASSERT_EQ(outcome.failure->unmatched1.size(), 1u);
    EXPECT_EQ(outcome.failure->unmatched1[0], 2u);
}

/**
 * The paper's Figure 4: x=0;y=x+1 vs y=1;x=0 under nondeterministic
 * branching, with intermediate states excluded from the cut. The
 * synchronization relation alone (black dotted lines) is a
 * cut-bisimulation.
 */
struct Figure4
{
    ExplicitTransitionSystem t1, t2;

    // T1: P0 --x=0--> P1 --y=x+1--> P2; P1 --y=2--> P3 (branch)
    // T2: Q0 --y=1--> Q1 --x=0--> Q2;  Q0' branch to Q3 via y=2
    // We model the if(*) with two successors on both sides.
    StateId p0, p1, p2, p3, q0, q1, q2, q3;

    Figure4()
    {
        p0 = t1.addState("start", true);
        p1 = t1.addState("mid1"); // not in the cut
        p2 = t1.addState("x0y1", true);
        p3 = t1.addState("x0y2", true);
        t1.addTransition(p0, p1);
        t1.addTransition(p1, p2);
        t1.addTransition(p1, p3);
        t1.setInitial(p0);

        q0 = t2.addState("start", true);
        q1 = t2.addState("mid2"); // not in the cut
        q2 = t2.addState("x0y1", true);
        q3 = t2.addState("x0y2", true);
        t2.addTransition(q0, q1);
        t2.addTransition(q1, q2);
        t2.addTransition(q0, q3); // the other branch bypasses q1
        t2.setInitial(q0);
    }
};

TEST(Algorithm1Test, Figure4SyncPointsFormCutBisimulation)
{
    Figure4 fig;
    PairRelation sync;
    sync.add(fig.p0, fig.q0);
    sync.add(fig.p2, fig.q2);
    sync.add(fig.p3, fig.q3);
    CheckOutcome outcome = checkCutBisimulation(fig.t1, fig.t2, sync);
    EXPECT_TRUE(outcome.holds);
}

TEST(Algorithm1Test, Figure4MissingBranchTargetFails)
{
    Figure4 fig;
    PairRelation sync;
    sync.add(fig.p0, fig.q0);
    sync.add(fig.p2, fig.q2); // (p3, q3) missing
    CheckOutcome outcome = checkCutBisimulation(fig.t1, fig.t2, sync);
    EXPECT_FALSE(outcome.holds);
}

TEST(Algorithm1Test, SimulationModeIgnoresExtraOutputBehaviour)
{
    // T2 has an extra branch T1 lacks: bisimulation fails, simulation
    // (T1 refines T2... i.e. T2 cut-simulates T1) succeeds.
    ExplicitTransitionSystem t1, t2;
    StateId a1 = t1.addState("a", true);
    StateId b1 = t1.addState("b", true);
    t1.addTransition(a1, b1);
    t1.setInitial(a1);

    StateId a2 = t2.addState("a", true);
    StateId b2 = t2.addState("b", true);
    StateId c2 = t2.addState("c", true);
    t2.addTransition(a2, b2);
    t2.addTransition(a2, c2);
    t2.setInitial(a2);

    PairRelation relation;
    relation.add(a1, a2);
    relation.add(b1, b2);

    EXPECT_FALSE(
        checkCutBisimulation(t1, t2, relation, CheckMode::Bisimulation)
            .holds);
    EXPECT_TRUE(
        checkCutBisimulation(t1, t2, relation, CheckMode::Simulation)
            .holds);
}

TEST(Algorithm1Test, StutteringSpeedDifferenceAccepted)
{
    // T1 takes 1 step between cut states; T2 takes 3. Cut-bisimulation
    // admits the speed difference (the classic weak-bisimulation
    // motivation from Section 2).
    ExplicitTransitionSystem t1, t2;
    StateId a1 = t1.addState("a", true);
    StateId b1 = t1.addState("b", true);
    t1.addTransition(a1, b1);
    t1.setInitial(a1);

    StateId a2 = t2.addState("a", true);
    StateId m1 = t2.addState();
    StateId m2 = t2.addState();
    StateId b2 = t2.addState("b", true);
    t2.addTransition(a2, m1);
    t2.addTransition(m1, m2);
    t2.addTransition(m2, b2);
    t2.setInitial(a2);

    PairRelation relation;
    relation.add(a1, a2);
    relation.add(b1, b2);
    EXPECT_TRUE(checkCutBisimulation(t1, t2, relation).holds);
}

TEST(Algorithm1Test, InfiniteLoopsWithMatchingCutsAccepted)
{
    // Two infinite loops whose headers are cut states: valid
    // cut-bisimulation (each visit re-synchronizes).
    ExplicitTransitionSystem t1, t2;
    StateId h1 = t1.addState("h", true);
    StateId body1 = t1.addState();
    t1.addTransition(h1, body1);
    t1.addTransition(body1, h1);
    t1.setInitial(h1);

    StateId h2 = t2.addState("h", true);
    StateId x2 = t2.addState();
    StateId y2 = t2.addState();
    t2.addTransition(h2, x2);
    t2.addTransition(x2, y2);
    t2.addTransition(y2, h2);
    t2.setInitial(h2);

    PairRelation relation;
    relation.add(h1, h2);
    EXPECT_TRUE(checkCutBisimulation(t1, t2, relation).holds);
}

TEST(Algorithm1Test, TerminatingVsDivergingRejected)
{
    // T1 terminates; T2 loops forever through a cut state. The relation
    // relating their initial states cannot be a cut-bisimulation: T2's
    // successor has no T1 counterpart.
    ExplicitTransitionSystem t1, t2;
    StateId a1 = t1.addState("a", true); // terminal
    t1.setInitial(a1);

    StateId a2 = t2.addState("a", true);
    t2.addTransition(a2, a2);
    t2.setInitial(a2);

    PairRelation relation;
    relation.add(a1, a2);
    EXPECT_FALSE(checkCutBisimulation(t1, t2, relation).holds);
    // But T1 refines T2? Refinement requires T1's behaviours within T2's;
    // T1 has no transition, so simulation holds trivially.
    EXPECT_TRUE(
        checkCutBisimulation(t1, t2, relation, CheckMode::Simulation)
            .holds);
}

TEST(Algorithm1Test, CutViolationSurfacesInFailure)
{
    ExplicitTransitionSystem t1, t2;
    StateId a1 = t1.addState("a", true);
    StateId x1 = t1.addState();
    t1.addTransition(a1, x1);
    t1.addTransition(x1, x1); // non-cut cycle below a1
    t1.setInitial(a1);

    StateId a2 = t2.addState("a", true);
    t2.setInitial(a2);

    PairRelation relation;
    relation.add(a1, a2);
    CheckOutcome outcome = checkCutBisimulation(t1, t2, relation);
    EXPECT_FALSE(outcome.holds);
    ASSERT_TRUE(outcome.failure.has_value());
    EXPECT_TRUE(outcome.failure->cutViolation);
}

TEST(PairRelationTest, Deduplicates)
{
    PairRelation relation;
    relation.add(1, 2);
    relation.add(1, 2);
    EXPECT_EQ(relation.size(), 1u);
    EXPECT_TRUE(relation.contains(1, 2));
    EXPECT_FALSE(relation.contains(2, 1));
}

} // namespace
} // namespace keq::core
