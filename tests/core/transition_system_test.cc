/** @file Tests for cut transition systems and cut-successor computation
 *  (Definitions 7.1 and 7.3 of the paper). */

#include <gtest/gtest.h>

#include "src/core/transition_system.h"

namespace keq::core {
namespace {

TEST(TransitionSystemTest, BasicConstruction)
{
    ExplicitTransitionSystem ts;
    StateId a = ts.addState("a", true);
    StateId b = ts.addState("b");
    ts.addTransition(a, b);
    ts.setInitial(a);
    EXPECT_EQ(ts.numStates(), 2u);
    EXPECT_EQ(ts.numTransitions(), 1u);
    EXPECT_TRUE(ts.isCut(a));
    EXPECT_FALSE(ts.isCut(b));
    EXPECT_EQ(ts.label(a), "a");
    EXPECT_EQ(ts.successors(a), std::vector<StateId>{b});
}

TEST(TransitionSystemTest, ParallelEdgesDeduplicate)
{
    ExplicitTransitionSystem ts;
    StateId a = ts.addState("", true);
    StateId b = ts.addState("", true);
    ts.addTransition(a, b);
    ts.addTransition(a, b);
    EXPECT_EQ(ts.numTransitions(), 1u);
}

TEST(CutSuccessorTest, DirectSuccessor)
{
    ExplicitTransitionSystem ts;
    StateId a = ts.addState("", true);
    StateId b = ts.addState("", true);
    ts.addTransition(a, b);
    CutSuccessorResult result = cutSuccessors(ts, a);
    EXPECT_FALSE(result.cutViolation);
    EXPECT_EQ(result.successors, std::vector<StateId>{b});
}

TEST(CutSuccessorTest, SkipsNonCutStates)
{
    // a -> x -> y -> b with x, y outside the cut.
    ExplicitTransitionSystem ts;
    StateId a = ts.addState("", true);
    StateId x = ts.addState();
    StateId y = ts.addState();
    StateId b = ts.addState("", true);
    ts.addTransition(a, x);
    ts.addTransition(x, y);
    ts.addTransition(y, b);
    CutSuccessorResult result = cutSuccessors(ts, a);
    EXPECT_FALSE(result.cutViolation);
    EXPECT_EQ(result.successors, std::vector<StateId>{b});
}

TEST(CutSuccessorTest, SelfLoopThroughNonCut)
{
    // A loop header reaching itself through the loop body.
    ExplicitTransitionSystem ts;
    StateId head = ts.addState("", true);
    StateId body = ts.addState();
    ts.addTransition(head, body);
    ts.addTransition(body, head);
    CutSuccessorResult result = cutSuccessors(ts, head);
    EXPECT_FALSE(result.cutViolation);
    EXPECT_EQ(result.successors, std::vector<StateId>{head});
}

TEST(CutSuccessorTest, NonCutDiamondIsNotACycle)
{
    // a -> {x, y} -> z -> b: z is visited twice via a diamond of non-cut
    // states, which must NOT be reported as a cut violation.
    ExplicitTransitionSystem ts;
    StateId a = ts.addState("", true);
    StateId x = ts.addState();
    StateId y = ts.addState();
    StateId z = ts.addState();
    StateId b = ts.addState("", true);
    ts.addTransition(a, x);
    ts.addTransition(a, y);
    ts.addTransition(x, z);
    ts.addTransition(y, z);
    ts.addTransition(z, b);
    CutSuccessorResult result = cutSuccessors(ts, a);
    EXPECT_FALSE(result.cutViolation);
    EXPECT_EQ(result.successors, std::vector<StateId>{b});
}

TEST(CutSuccessorTest, DetectsNonCutCycle)
{
    // a -> x <-> y: an infinite execution avoiding the cut.
    ExplicitTransitionSystem ts;
    StateId a = ts.addState("", true);
    StateId x = ts.addState();
    StateId y = ts.addState();
    ts.addTransition(a, x);
    ts.addTransition(x, y);
    ts.addTransition(y, x);
    CutSuccessorResult result = cutSuccessors(ts, a);
    EXPECT_TRUE(result.cutViolation);
}

TEST(CutSuccessorTest, DetectsTerminalNonCutState)
{
    // a -> x with x terminal and not in the cut: a complete trace ends
    // outside the cut (Definition 2.1(b) violated).
    ExplicitTransitionSystem ts;
    StateId a = ts.addState("", true);
    StateId x = ts.addState();
    ts.addTransition(a, x);
    CutSuccessorResult result = cutSuccessors(ts, a);
    EXPECT_TRUE(result.cutViolation);
}

TEST(CutSuccessorTest, MultipleSuccessors)
{
    ExplicitTransitionSystem ts;
    StateId a = ts.addState("", true);
    StateId x = ts.addState();
    StateId b = ts.addState("", true);
    StateId c = ts.addState("", true);
    ts.addTransition(a, x);
    ts.addTransition(x, b);
    ts.addTransition(x, c);
    CutSuccessorResult result = cutSuccessors(ts, a);
    EXPECT_FALSE(result.cutViolation);
    EXPECT_EQ(result.successors.size(), 2u);
}

TEST(ValidateCutTest, AcceptsWellFormedCut)
{
    ExplicitTransitionSystem ts;
    StateId entry = ts.addState("", true);
    StateId head = ts.addState("", true);
    StateId body = ts.addState();
    StateId exit = ts.addState("", true);
    ts.addTransition(entry, head);
    ts.addTransition(head, body);
    ts.addTransition(body, head);
    ts.addTransition(head, exit);
    ts.setInitial(entry);
    EXPECT_TRUE(ts.validateCut().valid);
}

TEST(ValidateCutTest, RejectsNonCutInitialState)
{
    ExplicitTransitionSystem ts;
    StateId a = ts.addState();
    ts.setInitial(a);
    ExplicitTransitionSystem::CutValidation validation = ts.validateCut();
    EXPECT_FALSE(validation.valid);
    EXPECT_NE(validation.reason.find("initial"), std::string::npos);
}

TEST(ValidateCutTest, RejectsUncutLoop)
{
    // entry -> x <-> y with no cut state in the cycle.
    ExplicitTransitionSystem ts;
    StateId entry = ts.addState("", true);
    StateId x = ts.addState();
    StateId y = ts.addState();
    ts.addTransition(entry, x);
    ts.addTransition(x, y);
    ts.addTransition(y, x);
    ts.setInitial(entry);
    EXPECT_FALSE(ts.validateCut().valid);
}

TEST(ValidateCutTest, FinalCutStateIsFine)
{
    // A terminal state in the cut satisfies the convention vacuously.
    ExplicitTransitionSystem ts;
    StateId entry = ts.addState("", true);
    StateId final_state = ts.addState("", true);
    ts.addTransition(entry, final_state);
    ts.setInitial(entry);
    EXPECT_TRUE(ts.validateCut().valid);
}

TEST(ValidateCutTest, RejectsEmptySystem)
{
    ExplicitTransitionSystem ts;
    EXPECT_FALSE(ts.validateCut().valid);
}

} // namespace
} // namespace keq::core
