/** @file VC generator tests: sync point placement and constraints
 *  (Section 4.5, Figure 3). */

#include <gtest/gtest.h>

#include "src/isel/isel.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/vcgen/vcgen.h"

namespace keq::vcgen {
namespace {

using sem::SyncConstraint;
using sem::SyncKind;
using sem::SyncPoint;

struct Generated
{
    llvmir::Module module;
    vx86::MFunction mfn;
    isel::FunctionHints hints;
    VcResult vc;
};

Generated
generate(const char *source, VcOptions options = {})
{
    Generated g{llvmir::parseModule(source), {}, {}, {}};
    llvmir::verifyModuleOrThrow(g.module);
    g.mfn = isel::lowerFunction(g.module, g.module.functions.back(), {},
                                g.hints);
    g.vc = generateSyncPoints(g.module.functions.back(), g.mfn, g.hints,
                              options);
    return g;
}

const SyncPoint *
findKind(const Generated &g, SyncKind kind)
{
    for (const SyncPoint &point : g.vc.points.points) {
        if (point.kind == kind)
            return &point;
    }
    return nullptr;
}

const char *const kArithmSeqSum = R"(
define i32 @arithm_seq_sum(i32 %a0, i32 %d, i32 %n) {
entry:
  br label %for.cond
for.cond:
  %s.0 = phi i32 [ %a0, %entry ], [ %add1, %for.inc ]
  %a.0 = phi i32 [ %a0, %entry ], [ %add, %for.inc ]
  %i.0 = phi i32 [ 1, %entry ], [ %inc, %for.inc ]
  %cmp = icmp ult i32 %i.0, %n
  br i1 %cmp, label %for.body, label %for.end
for.body:
  %add = add i32 %a.0, %d
  %add1 = add i32 %s.0, %add
  br label %for.inc
for.inc:
  %inc = add i32 %i.0, 1
  br label %for.cond
for.end:
  ret i32 %s.0
}
)";

TEST(VcGenTest, RunningExampleProducesFigure3Shape)
{
    Generated g = generate(kArithmSeqSum);
    EXPECT_TRUE(g.vc.adequate);
    // p0 entry, two loop points (from entry and from for.inc), exit.
    ASSERT_EQ(g.vc.points.points.size(), 4u);
    EXPECT_EQ(g.vc.points.points[0].kind, SyncKind::Entry);
    EXPECT_EQ(g.vc.points.points[1].kind, SyncKind::BlockEntry);
    EXPECT_EQ(g.vc.points.points[2].kind, SyncKind::BlockEntry);
    EXPECT_EQ(g.vc.points.points[3].kind, SyncKind::Exit);

    // Entry constraints follow the calling convention (Figure 3 p0).
    const SyncPoint &entry = g.vc.points.points[0];
    ASSERT_EQ(entry.constraints.size(), 3u);
    EXPECT_EQ(entry.constraints[0].regA, "%a0");
    EXPECT_EQ(entry.constraints[0].regB, "edi");
    EXPECT_EQ(entry.constraints[1].regB, "esi");
    EXPECT_EQ(entry.constraints[2].regB, "edx");

    // Loop points qualified by predecessor on both sides.
    const SyncPoint &p1 = g.vc.points.points[1];
    EXPECT_EQ(p1.a.block, "for.cond");
    EXPECT_EQ(p1.a.cameFrom, "entry");
    EXPECT_EQ(p1.b.block, ".LBB1");
    EXPECT_EQ(p1.b.cameFrom, ".LBB0");
    // The constant-1 phi input shows up as a BEqConst constraint (the
    // paper's "1 = %vr9_32").
    bool has_const_constraint = false;
    for (const SyncConstraint &constraint : p1.constraints) {
        if (constraint.kind == SyncConstraint::Kind::BEqConst &&
            constraint.value.zext() == 1) {
            has_const_constraint = true;
        }
    }
    EXPECT_TRUE(has_const_constraint);

    // p2 (around the back edge) constrains the phi inputs from for.inc.
    const SyncPoint &p2 = g.vc.points.points[2];
    EXPECT_EQ(p2.a.cameFrom, "for.inc");
    std::set<std::string> constrained;
    for (const SyncConstraint &constraint : p2.constraints)
        constrained.insert(constraint.regA);
    EXPECT_TRUE(constrained.count("%add"));
    EXPECT_TRUE(constrained.count("%add1"));
    EXPECT_TRUE(constrained.count("%inc"));
    EXPECT_TRUE(constrained.count("%n"));
    EXPECT_TRUE(constrained.count("%d"));

    // Exit relates the return values.
    const SyncPoint &exit = g.vc.points.points[3];
    ASSERT_EQ(exit.constraints.size(), 1u);
    EXPECT_EQ(exit.constraints[0].regA, sem::kReturnValueName);
}

TEST(VcGenTest, StraightLineGetsOnlyEntryAndExit)
{
    Generated g = generate(R"(
define i32 @f(i32 %a) {
entry:
  %1 = add i32 %a, 1
  ret i32 %1
}
)");
    ASSERT_EQ(g.vc.points.points.size(), 2u);
    EXPECT_EQ(g.vc.points.points[0].kind, SyncKind::Entry);
    EXPECT_EQ(g.vc.points.points[1].kind, SyncKind::Exit);
}

TEST(VcGenTest, VoidFunctionExitHasNoRetConstraint)
{
    Generated g = generate(R"(
define void @f() {
entry:
  ret void
}
)");
    const SyncPoint *exit = findKind(g, SyncKind::Exit);
    ASSERT_NE(exit, nullptr);
    EXPECT_TRUE(exit->constraints.empty());
}

TEST(VcGenTest, CallSitesGetBeforeAndAfterPoints)
{
    Generated g = generate(R"(
declare i32 @ext(i32)
define i32 @f(i32 %a, i32 %b) {
entry:
  %r = call i32 @ext(i32 %a)
  %s = add i32 %r, %b
  ret i32 %s
}
)");
    const SyncPoint *before = findKind(g, SyncKind::BeforeCall);
    const SyncPoint *after = findKind(g, SyncKind::AfterCall);
    ASSERT_NE(before, nullptr);
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(before->a.callSiteId, "cs0");
    EXPECT_EQ(after->b.callSiteId, "cs0");

    // The after point binds the call result to rax's 32-bit view and
    // constrains the surviving value %b.
    bool binds_result = false, constrains_b = false;
    for (const SyncConstraint &constraint : after->constraints) {
        if (constraint.regA == "%r" && constraint.regB == "eax")
            binds_result = true;
        if (constraint.regA == "%b")
            constrains_b = true;
    }
    EXPECT_TRUE(binds_result);
    EXPECT_TRUE(constrains_b);

    // The before point checks the survivor too (soundness across the
    // call), but not the not-yet-existing result.
    bool before_mentions_result = false;
    for (const SyncConstraint &constraint : before->constraints) {
        if (constraint.regA == "%r")
            before_mentions_result = true;
    }
    EXPECT_FALSE(before_mentions_result);
}

TEST(VcGenTest, CrudeLivenessDropsPassThroughConstraints)
{
    // %keep passes through the loop untouched; full liveness constrains
    // it at the loop head, block-local liveness misses it.
    const char *source = R"(
define i32 @f(i32 %keep, i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %inc = add i32 %i, 1
  br label %head
done:
  %r = add i32 %keep, %i
  ret i32 %r
}
)";
    Generated full = generate(source);
    VcOptions crude_options;
    crude_options.precision = LivenessPrecision::BlockLocal;
    Generated crude = generate(source, crude_options);

    auto loop_constrains_keep = [](const Generated &g) {
        for (const SyncPoint &point : g.vc.points.points) {
            if (point.kind != SyncKind::BlockEntry)
                continue;
            for (const SyncConstraint &constraint : point.constraints) {
                if (constraint.regA == "%keep")
                    return true;
            }
        }
        return false;
    };
    EXPECT_TRUE(loop_constrains_keep(full));
    EXPECT_FALSE(loop_constrains_keep(crude));
}

TEST(VcGenTest, RenderedSpecMentionsEveryPoint)
{
    Generated g = generate(kArithmSeqSum);
    std::string text = g.vc.points.render();
    for (const SyncPoint &point : g.vc.points.points)
        EXPECT_NE(text.find(point.id), std::string::npos);
    EXPECT_GT(g.vc.points.specTextSize(), 100u);
}

TEST(VcGenTest, NestedLoopsGetPointsPerHeaderPredecessor)
{
    Generated g = generate(R"(
define i32 @f(i32 %n) {
entry:
  br label %outer
outer:
  %i = phi i32 [ 0, %entry ], [ %inext, %outer.latch ]
  %ci = icmp ult i32 %i, %n
  br i1 %ci, label %inner, label %done
inner:
  %j = phi i32 [ 0, %outer ], [ %jnext, %inner ]
  %jnext = add i32 %j, 1
  %cj = icmp ult i32 %jnext, %n
  br i1 %cj, label %inner, label %outer.latch
outer.latch:
  %inext = add i32 %i, 1
  br label %outer
done:
  ret i32 %i
}
)");
    size_t block_points = 0;
    for (const SyncPoint &point : g.vc.points.points) {
        if (point.kind == SyncKind::BlockEntry)
            ++block_points;
    }
    // outer has preds {entry, outer.latch}; inner has preds
    // {outer, inner}: four loop points.
    EXPECT_EQ(block_points, 4u);
    EXPECT_TRUE(g.vc.adequate);
}

} // namespace
} // namespace keq::vcgen
