/** @file KEQ validating register allocation (the paper's Section 1
 *  "ongoing work" experiment): same checker, vx86 on both sides. */

#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/isel/isel.h"
#include "src/llvmir/layout_builder.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/keq/checker.h"
#include "src/regalloc/regalloc.h"
#include "src/smt/z3_solver.h"
#include "src/vcgen/regalloc_vcgen.h"
#include "src/vx86/symbolic_semantics.h"

namespace keq::regalloc {
namespace {

driver::FunctionReport
validateRA(const char *source)
{
    llvmir::Module module = llvmir::parseModule(source);
    llvmir::verifyModuleOrThrow(module);
    return driver::validateRegAlloc(module, module.functions.back(), {});
}

TEST(RegAllocValidationTest, StraightLine)
{
    driver::FunctionReport report = validateRA(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %1 = add i32 %a, %b
  %2 = xor i32 %1, %a
  ret i32 %2
}
)");
    EXPECT_EQ(report.verdict.kind, checker::VerdictKind::Equivalent)
        << report.detail;
}

TEST(RegAllocValidationTest, LoopWithSwappingPhis)
{
    // The classic parallel-copy hazard: phi destinations exchange
    // values every iteration; a naive sequential copy lowering would
    // corrupt one of them and KEQ would catch it.
    driver::FunctionReport report = validateRA(R"(
define i32 @swapsum(i32 %n) {
entry:
  br label %head
head:
  %x = phi i32 [ 1, %entry ], [ %y, %body ]
  %y = phi i32 [ 2, %entry ], [ %x, %body ]
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %inc = add i32 %i, 1
  br label %head
done:
  %r = add i32 %x, %y
  ret i32 %r
}
)");
    EXPECT_EQ(report.verdict.kind, checker::VerdictKind::Equivalent)
        << report.detail;
}

TEST(RegAllocValidationTest, MemoryTraffic)
{
    driver::FunctionReport report = validateRA(R"(
@g = external global i32
define i32 @f(i32 %v) {
entry:
  %slot = alloca i32
  store i32 %v, i32* %slot
  %w = load i32, i32* @g
  %x = load i32, i32* %slot
  %y = add i32 %w, %x
  store i32 %y, i32* @g
  ret i32 %y
}
)");
    EXPECT_EQ(report.verdict.kind, checker::VerdictKind::Equivalent)
        << report.detail;
}

TEST(RegAllocValidationTest, CallBoundaries)
{
    driver::FunctionReport report = validateRA(R"(
declare i32 @ext(i32)
define i32 @f(i32 %a, i32 %b) {
entry:
  %r = call i32 @ext(i32 %a)
  %s = add i32 %r, %b
  ret i32 %s
}
)");
    EXPECT_EQ(report.verdict.kind, checker::VerdictKind::Equivalent)
        << report.detail;
}

TEST(RegAllocValidationTest, PressureOverflowIsUnsupported)
{
    std::string source = "define i32 @fat(i32 %a) {\nentry:\n";
    for (int i = 0; i < 20; ++i) {
        source += "  %v" + std::to_string(i) + " = add i32 %a, " +
                  std::to_string(i) + "\n";
    }
    source += "  %acc0 = add i32 %v0, %v1\n";
    for (int i = 2; i < 20; ++i) {
        source += "  %acc" + std::to_string(i - 1) + " = add i32 %acc" +
                  std::to_string(i - 2) + ", %v" + std::to_string(i) +
                  "\n";
    }
    source += "  ret i32 %acc18\n}\n";
    driver::FunctionReport report = validateRA(source.c_str());
    EXPECT_EQ(report.outcome, driver::Outcome::Unsupported);
}

/** A deliberately broken "allocator" must be rejected: swap the
 *  registers of two interfering values behind the VC generator's back. */
TEST(RegAllocValidationTest, CorruptedAllocationRejected)
{
    const char *source = R"(
define i32 @sum(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %s = phi i32 [ 0, %entry ], [ %snext, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %snext = add i32 %s, %i
  %inc = add i32 %i, 1
  br label %head
done:
  ret i32 %s
}
)";
    llvmir::Module module = llvmir::parseModule(source);
    llvmir::verifyModuleOrThrow(module);
    isel::FunctionHints hints;
    vx86::MFunction pre =
        isel::lowerFunction(module, module.functions[0], {}, hints);
    AllocationResult allocation = allocateRegisters(pre);

    // Miscompile: in the allocated code, redirect every use of the phi
    // destinations' two registers to a single one (clobbering one
    // value), while keeping the hints claiming the original assignment.
    std::vector<std::string> phi_regs;
    for (const vx86::MInst &inst : pre.blocks[1].insts) {
        if (inst.op == vx86::MOpcode::PHI) {
            phi_regs.push_back(
                allocation.assignment.at(inst.ops[0].reg));
        }
    }
    ASSERT_GE(phi_regs.size(), 2u);
    for (vx86::MBasicBlock &block : allocation.fn.blocks) {
        for (vx86::MInst &inst : block.insts) {
            for (vx86::MOperand &op : inst.ops) {
                if (op.kind == vx86::MOperand::Kind::PhysReg &&
                    op.reg == phi_regs[1]) {
                    op.reg = phi_regs[0];
                }
            }
        }
    }

    vcgen::VcResult vc = vcgen::generateRegAllocSyncPoints(pre,
                                                           allocation);
    smt::TermFactory factory;
    mem::MemoryLayout layout;
    llvmir::populateLayout(module, layout);
    vx86::MModule pre_module, post_module;
    pre_module.functions.push_back(std::move(pre));
    post_module.functions.push_back(std::move(allocation.fn));
    vx86::SymbolicSemantics sem_a(pre_module, factory, layout);
    vx86::SymbolicSemantics sem_b(post_module, factory, layout);
    smt::Z3Solver solver(factory);
    sem::IselAcceptability acceptability;
    checker::Checker keq_checker(sem_a, sem_b, acceptability, solver,
                                 {});
    checker::Verdict verdict =
        keq_checker.check("@sum", "@sum", vc.points);
    EXPECT_EQ(verdict.kind, checker::VerdictKind::NotValidated);
}

TEST(RegAllocValidationTest, CorpusSample)
{
    // A slice of corpus functions whose pressure fits the register file
    // must all validate (same-language pair, same unchanged checker).
    const char *source = R"(
define i32 @a(i32 %p0, i32 %p1, i32 %p2) {
entry:
  %1 = add i32 %p0, %p1
  %c = icmp slt i32 %1, %p2
  br i1 %c, label %t, label %e
t:
  br label %j
e:
  br label %j
j:
  %m = phi i32 [ %1, %t ], [ %p2, %e ]
  ret i32 %m
}
define i32 @b(i32 %p0) {
entry:
  %q = udiv i32 %p0, 3
  %r = urem i32 %q, 7
  ret i32 %r
}
)";
    llvmir::Module module = llvmir::parseModule(source);
    llvmir::verifyModuleOrThrow(module);
    for (const llvmir::Function &fn : module.functions) {
        driver::FunctionReport report =
            driver::validateRegAlloc(module, fn, {});
        EXPECT_EQ(report.outcome, driver::Outcome::Succeeded)
            << fn.name << ": " << report.detail;
    }
}

} // namespace
} // namespace keq::regalloc
