/** @file Register allocator tests: phi elimination, interference,
 *  coloring, and differential execution pre/post allocation. */

#include <gtest/gtest.h>

#include "src/isel/isel.h"
#include "src/llvmir/interpreter.h"
#include "src/llvmir/layout_builder.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/regalloc/regalloc.h"
#include "src/support/diagnostics.h"
#include "src/support/rng.h"
#include "src/vx86/interpreter.h"

namespace keq::regalloc {
namespace {

using support::ApInt;

struct Lowered
{
    llvmir::Module module;
    vx86::MFunction pre;
    AllocationResult allocation;
};

Lowered
lowerAndAllocate(const char *source)
{
    Lowered out{llvmir::parseModule(source), {}, {}};
    llvmir::verifyModuleOrThrow(out.module);
    isel::FunctionHints hints;
    out.pre = isel::lowerFunction(out.module, out.module.functions.back(),
                                  {}, hints);
    out.allocation = allocateRegisters(out.pre);
    return out;
}

const char *const kLoop = R"(
define i32 @sum(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %s = phi i32 [ 0, %entry ], [ %snext, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %snext = add i32 %s, %i
  %inc = add i32 %i, 1
  br label %head
done:
  ret i32 %s
}
)";

TEST(RegAllocTest, EliminatesAllPhisAndVirtRegs)
{
    Lowered low = lowerAndAllocate(kLoop);
    for (const vx86::MBasicBlock &block : low.allocation.fn.blocks) {
        for (const vx86::MInst &inst : block.insts) {
            EXPECT_NE(inst.op, vx86::MOpcode::PHI);
            for (const vx86::MOperand &op : inst.ops) {
                EXPECT_NE(op.kind, vx86::MOperand::Kind::VirtReg)
                    << inst.toString();
            }
        }
    }
    // Every pre-RA vreg got an assignment.
    EXPECT_FALSE(low.allocation.assignment.empty());
    for (const auto &[vreg, phys] : low.allocation.assignment)
        EXPECT_TRUE(vx86::isPhysReg(phys)) << vreg << " -> " << phys;
}

TEST(RegAllocTest, InterferingValuesGetDistinctRegisters)
{
    Lowered low = lowerAndAllocate(kLoop);
    // The loop counter and accumulator are simultaneously live; they
    // must land in different registers. Find their vregs via execution
    // structure: both are PHI destinations in the pre-RA head block.
    std::vector<std::string> phi_dests;
    for (const vx86::MInst &inst : low.pre.blocks[1].insts) {
        if (inst.op == vx86::MOpcode::PHI)
            phi_dests.push_back(inst.ops[0].reg);
    }
    ASSERT_GE(phi_dests.size(), 2u);
    EXPECT_NE(low.allocation.assignment.at(phi_dests[0]),
              low.allocation.assignment.at(phi_dests[1]));
}

TEST(RegAllocTest, ValuesLiveAcrossCallsGetCalleeSavedRegisters)
{
    Lowered low = lowerAndAllocate(R"(
declare i32 @ext(i32)
define i32 @f(i32 %a, i32 %b) {
entry:
  %r = call i32 @ext(i32 %a)
  %s = add i32 %r, %b
  ret i32 %s
}
)");
    // %b survives the call; its register must be callee-saved.
    static const std::set<std::string> kCalleeSaved = {"rbx", "r12",
                                                       "r13", "r14",
                                                       "r15"};
    // Find %b's vreg via the ISel convention: second entry COPY.
    const vx86::MInst &copy_b = low.pre.blocks[0].insts[1];
    ASSERT_EQ(copy_b.op, vx86::MOpcode::COPY);
    std::string breg = copy_b.ops[0].reg;
    EXPECT_TRUE(
        kCalleeSaved.count(low.allocation.assignment.at(breg)))
        << "%b allocated to " << low.allocation.assignment.at(breg);
}

TEST(RegAllocTest, PressureOverflowRejected)
{
    // 20 simultaneously-live values cannot fit 14 registers.
    std::string source = "define i32 @fat(i32 %a) {\nentry:\n";
    for (int i = 0; i < 20; ++i) {
        source += "  %v" + std::to_string(i) + " = add i32 %a, " +
                  std::to_string(i) + "\n";
    }
    source += "  %acc0 = add i32 %v0, %v1\n";
    for (int i = 2; i < 20; ++i) {
        source += "  %acc" + std::to_string(i - 1) + " = add i32 %acc" +
                  std::to_string(i - 2) + ", %v" + std::to_string(i) +
                  "\n";
    }
    source += "  ret i32 %acc18\n}\n";
    llvmir::Module module = llvmir::parseModule(source);
    isel::FunctionHints hints;
    vx86::MFunction pre =
        isel::lowerFunction(module, module.functions[0], {}, hints);
    EXPECT_THROW(allocateRegisters(pre), support::Error);
}

/** Differential property: pre- and post-allocation code behave
 *  identically on concrete inputs (including the swap-hazard phis). */
class RegAllocDifferential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RegAllocDifferential, PrePostAgreeOnConcreteInputs)
{
    const char *source = R"(
define i32 @swapsum(i32 %n) {
entry:
  br label %head
head:
  %x = phi i32 [ 1, %entry ], [ %y, %body ]
  %y = phi i32 [ 2, %entry ], [ %x, %body ]
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %inc = add i32 %i, 1
  br label %head
done:
  %r = add i32 %x, %y
  %rr = mul i32 %r, %x
  ret i32 %rr
}
)";
    Lowered low = lowerAndAllocate(source);
    mem::MemoryLayout layout;
    llvmir::populateLayout(low.module, layout);

    support::Rng rng(GetParam());
    for (int trial = 0; trial < 8; ++trial) {
        ApInt n(32, rng.below(10));
        vx86::MModule pre_module;
        pre_module.functions.push_back(low.pre);
        mem::ConcreteMemory mem_pre(layout);
        vx86::Interpreter interp_pre(pre_module, mem_pre);
        vx86::MExecResult pre_result =
            interp_pre.run(pre_module.functions[0], {n.zextTo(64)});

        vx86::MModule post_module;
        post_module.functions.push_back(low.allocation.fn);
        mem::ConcreteMemory mem_post(layout);
        vx86::Interpreter interp_post(post_module, mem_post);
        vx86::MExecResult post_result =
            interp_post.run(post_module.functions[0], {n.zextTo(64)});

        ASSERT_EQ(pre_result.outcome, vx86::MExecOutcome::Returned);
        ASSERT_EQ(post_result.outcome, vx86::MExecOutcome::Returned);
        EXPECT_EQ(pre_result.value.zext(), post_result.value.zext())
            << "n = " << n.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegAllocDifferential,
                         ::testing::Range(uint64_t{0}, uint64_t{6}));

} // namespace
} // namespace keq::regalloc
