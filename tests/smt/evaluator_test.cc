/** @file Concrete evaluation tests, including a random property sweep
 *  cross-checking evaluation against the factory's constant folding. */

#include <gtest/gtest.h>

#include "src/smt/evaluator.h"
#include "src/smt/term_factory.h"
#include "src/support/rng.h"

namespace keq::smt {
namespace {

using support::ApInt;
using support::Rng;

TEST(EvaluatorTest, Leaves)
{
    TermFactory tf;
    Assignment env;
    env.setBv("x", ApInt(32, 42));
    env.setBool("p", true);
    Evaluator ev(env);
    EXPECT_EQ(ev.evalBv(tf.bvConst(32, 7)).zext(), 7u);
    EXPECT_EQ(ev.evalBv(tf.var("x", Sort::bitVec(32))).zext(), 42u);
    EXPECT_TRUE(ev.evalBool(tf.var("p", Sort::boolSort())));
    EXPECT_FALSE(ev.evalBool(tf.falseTerm()));
}

TEST(EvaluatorTest, ArithmeticAndPredicates)
{
    TermFactory tf;
    Assignment env;
    env.setBv("a", ApInt(32, 100));
    env.setBv("b", ApInt(32, 7));
    Evaluator ev(env);
    Term a = tf.var("a", Sort::bitVec(32));
    Term b = tf.var("b", Sort::bitVec(32));
    EXPECT_EQ(ev.evalBv(tf.bvAdd(a, b)).zext(), 107u);
    EXPECT_EQ(ev.evalBv(tf.bvUDiv(a, b)).zext(), 14u);
    EXPECT_TRUE(ev.evalBool(tf.bvUlt(b, a)));
    EXPECT_TRUE(ev.evalBool(tf.mkEq(a, tf.bvConst(32, 100))));
}

TEST(EvaluatorTest, MemorySelectStore)
{
    TermFactory tf;
    Assignment env;
    env.setArrayByte("m", 0x10, 0xAB);
    Evaluator ev(env);
    Term mem = tf.var("m", Sort::memArray());
    Term idx_reg = tf.var("i", Sort::bitVec(64));
    env.setBv("i", ApInt(64, 0x10));
    EXPECT_EQ(ev.evalBv(tf.select(mem, idx_reg)).zext(), 0xABu);
    // Unset bytes read as zero.
    EXPECT_EQ(ev.evalBv(tf.select(mem, tf.bvConst(64, 0x99))).zext(), 0u);
    // Stored bytes shadow the assignment.
    Term stored = tf.store(mem, idx_reg, tf.bvConst(8, 0xCD));
    EXPECT_EQ(ev.evalBv(tf.select(stored, idx_reg)).zext(), 0xCDu);
}

TEST(EvaluatorTest, SmtLibDivisionByZeroConventions)
{
    TermFactory tf;
    Assignment env;
    env.setBv("a", ApInt(8, 5));
    env.setBv("z", ApInt(8, 0));
    Evaluator ev(env);
    Term a = tf.var("a", Sort::bitVec(8));
    Term z = tf.var("z", Sort::bitVec(8));
    EXPECT_EQ(ev.evalBv(tf.bvUDiv(a, z)).zext(), 0xffu);
    EXPECT_EQ(ev.evalBv(tf.bvURem(a, z)).zext(), 5u);
}

/**
 * Property sweep: build random term DAGs over concrete leaves two ways —
 * (1) with variables then evaluate, (2) with the corresponding constants
 * so the factory folds — and check both agree.
 */
class EvalFoldingProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(EvalFoldingProperty, EvaluationMatchesFolding)
{
    Rng rng(GetParam());
    TermFactory tf;
    Assignment env;
    const unsigned width = 32;

    std::vector<std::pair<Term, Term>> nodes; // (symbolic, constant)
    for (int i = 0; i < 4; ++i) {
        ApInt value(width, rng.next());
        std::string name = "v" + std::to_string(i);
        env.setBv(name, value);
        nodes.emplace_back(tf.var(name, Sort::bitVec(width)),
                           tf.bvConst(value));
    }

    for (int i = 0; i < 120; ++i) {
        auto [sa, ca] = nodes[rng.below(nodes.size())];
        auto [sb, cb] = nodes[rng.below(nodes.size())];
        static const Kind kOps[] = {
            Kind::BvAdd,  Kind::BvSub,  Kind::BvMul, Kind::BvAnd,
            Kind::BvOr,   Kind::BvXor,  Kind::BvShl, Kind::BvLShr,
            Kind::BvAShr, Kind::BvUDiv, Kind::BvURem,
        };
        Kind op = kOps[rng.below(sizeof(kOps) / sizeof(kOps[0]))];
        Term sym = tf.bvBinOp(op, sa, sb);
        Term folded = tf.bvBinOp(op, ca, cb);
        Evaluator ev(env);
        if (folded.isBvConst()) { // division by zero stays symbolic
            EXPECT_EQ(ev.evalBv(sym), folded.bvValue())
                << kindName(op) << " mismatch";
        }
        nodes.emplace_back(sym, folded);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalFoldingProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

/**
 * Deep property sweep covering the normalization folds: random term DAGs
 * mixing arithmetic, comparisons, boolean connectives, ite, negation,
 * width changes and concats — built twice (symbolic and constant) and
 * cross-checked. Any unsound fold (comparison flips, ite distribution,
 * sign-replication concat, ...) shows up as a mismatch here.
 */
class DeepFoldingProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(DeepFoldingProperty, RichTermsEvaluateConsistently)
{
    Rng rng(GetParam() * 0x9E3779B9u + 7);
    TermFactory tf;
    Assignment env;

    std::vector<std::pair<Term, Term>> bvs;  // (symbolic, constant)
    std::vector<std::pair<Term, Term>> bools;
    for (int i = 0; i < 4; ++i) {
        ApInt value(32, rng.next());
        std::string name = "w" + std::to_string(i);
        env.setBv(name, value);
        bvs.emplace_back(tf.var(name, Sort::bitVec(32)),
                         tf.bvConst(value));
    }
    bools.emplace_back(tf.trueTerm(), tf.trueTerm());

    auto pick_bv = [&]() { return bvs[rng.below(bvs.size())]; };
    auto pick_bool = [&]() { return bools[rng.below(bools.size())]; };

    Evaluator ev(env);
    for (int step = 0; step < 200; ++step) {
        switch (rng.below(7)) {
          case 0: { // binary arithmetic
            auto [sa, ca] = pick_bv();
            auto [sb, cb] = pick_bv();
            static const Kind kOps[] = {Kind::BvAdd, Kind::BvSub,
                                        Kind::BvMul, Kind::BvAnd,
                                        Kind::BvOr,  Kind::BvXor};
            Kind op = kOps[rng.below(6)];
            bvs.emplace_back(tf.bvBinOp(op, sa, sb),
                             tf.bvBinOp(op, ca, cb));
            break;
          }
          case 1: { // comparison
            auto [sa, ca] = pick_bv();
            auto [sb, cb] = pick_bv();
            static const Kind kPreds[] = {Kind::BvUlt, Kind::BvUle,
                                          Kind::BvSlt, Kind::BvSle,
                                          Kind::Eq};
            Kind pred = kPreds[rng.below(5)];
            bools.emplace_back(tf.bvPredicate(pred, sa, sb),
                               tf.bvPredicate(pred, ca, cb));
            break;
          }
          case 2: { // boolean connective / negation
            auto [sa, ca] = pick_bool();
            auto [sb, cb] = pick_bool();
            switch (rng.below(3)) {
              case 0:
                bools.emplace_back(tf.mkAnd(sa, sb), tf.mkAnd(ca, cb));
                break;
              case 1:
                bools.emplace_back(tf.mkOr(sa, sb), tf.mkOr(ca, cb));
                break;
              default:
                bools.emplace_back(tf.mkNot(sa), tf.mkNot(ca));
                break;
            }
            break;
          }
          case 3: { // ite
            auto [sc, cc] = pick_bool();
            auto [sa, ca] = pick_bv();
            auto [sb, cb] = pick_bv();
            bvs.emplace_back(tf.mkIte(sc, sa, sb),
                             tf.mkIte(cc, ca, cb));
            break;
          }
          case 4: { // unary
            auto [sa, ca] = pick_bv();
            if (rng.chancePercent(50))
                bvs.emplace_back(tf.bvNot(sa), tf.bvNot(ca));
            else
                bvs.emplace_back(tf.bvNeg(sa), tf.bvNeg(ca));
            break;
          }
          case 5: { // width games: trunc to 8, extend back
            auto [sa, ca] = pick_bv();
            Term s8 = tf.trunc(sa, 8);
            Term c8 = tf.trunc(ca, 8);
            bool sign = rng.chancePercent(50);
            bvs.emplace_back(sign ? tf.sext(s8, 32) : tf.zext(s8, 32),
                             sign ? tf.sext(c8, 32) : tf.zext(c8, 32));
            break;
          }
          default: { // concat halves of two values
            auto [sa, ca] = pick_bv();
            auto [sb, cb] = pick_bv();
            bvs.emplace_back(tf.concat(tf.extract(sa, 15, 0),
                                       tf.extract(sb, 15, 0)),
                             tf.concat(tf.extract(ca, 15, 0),
                                       tf.extract(cb, 15, 0)));
            break;
          }
        }
        // Cross-check the newest nodes.
        auto [sym_bv, const_bv] = bvs.back();
        if (const_bv.isBvConst()) {
            EXPECT_EQ(ev.evalBv(sym_bv), const_bv.bvValue())
                << sym_bv.toString();
        }
        auto [sym_b, const_b] = bools.back();
        if (const_b.isBoolConst()) {
            EXPECT_EQ(ev.evalBool(sym_b), const_b.boolValue())
                << sym_b.toString();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepFoldingProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{16}));

} // namespace
} // namespace keq::smt
