/** @file Z3 backend tests: satisfiability, implications, arrays, stats. */

#include <gtest/gtest.h>

#include "src/smt/term_factory.h"
#include "src/smt/z3_solver.h"

namespace keq::smt {
namespace {

class SolverTest : public ::testing::Test
{
  protected:
    TermFactory tf;
    Z3Solver solver{tf};
    Term x = tf.var("x", Sort::bitVec(32));
    Term y = tf.var("y", Sort::bitVec(32));
};

TEST_F(SolverTest, SimpleSat)
{
    EXPECT_EQ(solver.checkSat({tf.mkEq(x, tf.bvConst(32, 5))}),
              SatResult::Sat);
}

TEST_F(SolverTest, SimpleUnsat)
{
    EXPECT_EQ(solver.checkSat({tf.mkEq(x, tf.bvConst(32, 5)),
                               tf.mkEq(x, tf.bvConst(32, 6))}),
              SatResult::Unsat);
}

TEST_F(SolverTest, BitvectorWraparound)
{
    // x + 1 == 0 is satisfiable (x == 0xffffffff).
    EXPECT_EQ(solver.checkSat({tf.mkEq(
                  tf.bvAdd(x, tf.bvConst(32, 1)), tf.bvConst(32, 0))}),
              SatResult::Sat);
}

TEST_F(SolverTest, ProveImplicationValid)
{
    // x == 5 implies x < 10 (unsigned).
    EXPECT_TRUE(solver.proveImplication(
        tf.mkEq(x, tf.bvConst(32, 5)),
        tf.bvUlt(x, tf.bvConst(32, 10))));
}

TEST_F(SolverTest, ProveImplicationInvalid)
{
    EXPECT_FALSE(solver.proveImplication(
        tf.bvUlt(x, tf.bvConst(32, 10)),
        tf.mkEq(x, tf.bvConst(32, 5))));
}

TEST_F(SolverTest, FoldingFastPathSkipsSolver)
{
    uint64_t before = solver.stats().queries;
    // Structurally identical hypothesis/conclusion folds to true.
    EXPECT_TRUE(solver.proveImplication(tf.bvUlt(x, y), tf.bvUlt(x, y)));
    EXPECT_EQ(solver.stats().queries, before);
}

TEST_F(SolverTest, SignedVsUnsignedComparison)
{
    // x <s 0 and x >u 100 is satisfiable (negative values are large
    // unsigned).
    EXPECT_EQ(
        solver.checkSat({tf.bvSlt(x, tf.bvConst(32, 0)),
                         tf.bvUgt(x, tf.bvConst(32, 100))}),
        SatResult::Sat);
}

TEST_F(SolverTest, ArrayEqualityExtensional)
{
    Term m1 = tf.var("m1", Sort::memArray());
    Term addr = tf.bvConst(64, 0x10);
    Term v = tf.var("v", Sort::bitVec(8));
    // store(m, a, v) == m is satisfiable (when m[a] already is v) ...
    EXPECT_EQ(solver.checkSat({tf.mkEq(tf.store(m1, addr, v), m1)}),
              SatResult::Sat);
    // ... but store(m, a, 1) == store(m, a, 2) is not.
    EXPECT_EQ(solver.checkSat({tf.mkEq(
                  tf.store(m1, addr, tf.bvConst(8, 1)),
                  tf.store(m1, addr, tf.bvConst(8, 2)))}),
              SatResult::Unsat);
}

TEST_F(SolverTest, MemoryRoundTripProvable)
{
    Term m = tf.var("m", Sort::memArray());
    Term base = tf.var("base", Sort::bitVec(64));
    Term value = tf.var("w", Sort::bitVec(32));
    Term written = tf.writeBytes(m, base, value, 4);
    Term read = tf.readBytes(written, base, 4);
    EXPECT_TRUE(solver.proveImplication(tf.trueTerm(),
                                        tf.mkEq(read, value)));
}

TEST_F(SolverTest, PathConditionEquivalenceAcrossEncodings)
{
    // The LLVM side encodes i < n directly; the x86 side via the carry
    // flag of CMP (i - n): cf == (i <u n). Prove the encodings equal.
    Term i = tf.var("i", Sort::bitVec(32));
    Term n = tf.var("n", Sort::bitVec(32));
    Term llvm_cond = tf.bvUlt(i, n);
    // Build the flag formula without the folding shortcut kicking in:
    // cf = extract borrow via comparison of subtraction.
    Term diff = tf.bvSub(i, n);
    Term x86_cond = tf.mkAnd(
        tf.mkOr(tf.bvUlt(i, n), tf.falseTerm()),
        tf.mkOr(tf.mkEq(diff, diff), tf.falseTerm()));
    EXPECT_TRUE(solver.proveImplication(llvm_cond, x86_cond));
    EXPECT_TRUE(solver.proveImplication(x86_cond, llvm_cond));
}

TEST_F(SolverTest, StatsAccumulate)
{
    SolverStats before = solver.stats();
    solver.checkSat({tf.mkEq(x, tf.bvConst(32, 1))});
    solver.checkSat({tf.mkEq(x, tf.bvConst(32, 1)),
                     tf.mkEq(x, tf.bvConst(32, 2))});
    const SolverStats &after = solver.stats();
    EXPECT_EQ(after.queries, before.queries + 2);
    EXPECT_EQ(after.sat, before.sat + 1);
    EXPECT_EQ(after.unsat, before.unsat + 1);
    EXPECT_GE(after.totalSeconds, before.totalSeconds);
}

TEST_F(SolverTest, ZextSextLowering)
{
    Term b = tf.var("b", Sort::bitVec(8));
    // sext(b) == zext(b) iff the sign bit of b is clear.
    Term hypothesis = tf.bvUlt(b, tf.bvConst(8, 0x80));
    Term conclusion = tf.mkEq(tf.sext(b, 32), tf.zext(b, 32));
    EXPECT_TRUE(solver.proveImplication(hypothesis, conclusion));
    EXPECT_FALSE(solver.proveImplication(tf.trueTerm(), conclusion));
}

} // namespace
} // namespace keq::smt
