/** @file Property tests for the memoizing solver cache: key
 *  normalization, the never-cache-Unknown contract, model reuse, and
 *  counter bookkeeping. */

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/smt/caching_solver.h"
#include "src/smt/term_factory.h"
#include "src/smt/z3_solver.h"
#include "src/support/diagnostics.h"

namespace keq::smt {
namespace {

/**
 * Backend with a scripted answer sequence. Counts every call, so tests
 * can assert exactly which queries reached the backend and which were
 * answered by the cache layers in front of it.
 */
class ScriptedSolver : public Solver
{
  public:
    explicit ScriptedSolver(TermFactory &factory) : factory_(factory) {}

    std::deque<SatResult> script;
    SatResult fallback = SatResult::Unsat;
    size_t calls = 0;

    SatResult
    checkSat(const std::vector<Term> &) override
    {
        ++calls;
        SatResult result = fallback;
        if (!script.empty()) {
            result = script.front();
            script.pop_front();
        }
        ++stats_.queries;
        switch (result) {
        case SatResult::Sat: ++stats_.sat; break;
        case SatResult::Unsat: ++stats_.unsat; break;
        case SatResult::Unknown: ++stats_.unknown; break;
        }
        return result;
    }

    void setTimeoutMs(unsigned) override {}
    const SolverStats &stats() const override { return stats_; }

  protected:
    TermFactory &factory() override { return factory_; }

  private:
    TermFactory &factory_;
    SolverStats stats_;
};

Term
var32(TermFactory &tf, const char *name)
{
    return tf.var(name, Sort::bitVec(32));
}

/**
 * Preprocessing disabled: the tests below assert exact backend-call and
 * hit/miss counts of the *cache layers*, which requires queries to reach
 * them instead of being resolved by the rewrite engine or the slicer.
 * The optimization-stack stages have their own tests (simplifier_test,
 * slicer_test) plus stack-level ones at the bottom of this file.
 */
// Not constexpr: the audit hooks added to Options are std::functions.
const CachingSolver::Options kCacheOnly{/*simplify=*/false,
                                        /*slice=*/false};

/**
 * x == a && x == b with a != b: unsatisfiable, so neither pooled models
 * nor random probes can ever answer it — every key miss must reach the
 * backend. The workhorse for backend-call-count assertions.
 */
std::vector<Term>
contradiction(TermFactory &tf, const char *name, uint64_t a, uint64_t b)
{
    Term x = var32(tf, name);
    return {tf.mkEq(x, tf.bvConst(32, a)),
            tf.mkEq(x, tf.bvConst(32, b))};
}

TEST(NormalizedKeyTest, OrderAndDuplicatesDoNotChangeTheKey)
{
    TermFactory tf;
    Term p = tf.bvUlt(var32(tf, "a"), var32(tf, "b"));
    Term q = tf.bvUlt(var32(tf, "b"), var32(tf, "c"));

    std::string key = CachingSolver::normalizedKey({p, q});
    EXPECT_EQ(CachingSolver::normalizedKey({q, p}), key);
    EXPECT_EQ(CachingSolver::normalizedKey({p, q, p}), key);
    EXPECT_EQ(CachingSolver::normalizedKey({q, q, p, q}), key);
}

TEST(NormalizedKeyTest, DistinctQueriesGetDistinctKeys)
{
    TermFactory tf;
    Term p = tf.bvUlt(var32(tf, "a"), var32(tf, "b"));
    Term q = tf.bvUlt(var32(tf, "b"), var32(tf, "c"));

    EXPECT_NE(CachingSolver::normalizedKey({p}),
              CachingSolver::normalizedKey({q, p}));
    // a < b and its converse are alpha-equivalent one assertion at a
    // time, but the *set* {a<b, b<a} must not collapse to {a<b}: shared
    // variable numbering across the whole set keeps them apart.
    Term converse = tf.bvUlt(var32(tf, "b"), var32(tf, "a"));
    EXPECT_NE(CachingSolver::normalizedKey({p, converse}),
              CachingSolver::normalizedKey({p}));
    EXPECT_NE(CachingSolver::normalizedKey({p}),
              CachingSolver::normalizedKey(
                  {tf.bvUlt(var32(tf, "a"), tf.bvConst(32, 7))}));
}

TEST(NormalizedKeyTest, AlphaRenamingDoesNotChangeTheKey)
{
    TermFactory tf;
    // Same query shape over disjoint variable names: alpha-equivalent,
    // hence equisatisfiable, hence safe (and profitable) to share a key.
    Term p1 = tf.bvUlt(tf.bvAdd(var32(tf, "x"), tf.bvConst(32, 3)),
                       var32(tf, "y"));
    Term p2 = tf.bvUlt(tf.bvAdd(var32(tf, "u"), tf.bvConst(32, 3)),
                       var32(tf, "v"));
    EXPECT_EQ(CachingSolver::normalizedKey({p1}),
              CachingSolver::normalizedKey({p2}));
}

TEST(NormalizedKeyTest, KeysAreFactoryIndependent)
{
    // The cache is shared across workers that each own a private
    // hash-consing factory; equal queries built in different factories
    // must map to the same key.
    TermFactory tf1;
    TermFactory tf2;
    auto build = [](TermFactory &tf) {
        return std::vector<Term>{
            tf.bvUlt(var32(tf, "a"), var32(tf, "b")),
            tf.mkEq(tf.bvAdd(var32(tf, "a"), tf.bvConst(32, 1)),
                    var32(tf, "c"))};
    };
    EXPECT_EQ(CachingSolver::normalizedKey(build(tf1)),
              CachingSolver::normalizedKey(build(tf2)));
}

TEST(CachingSolverTest, UnknownIsNeverCached)
{
    TermFactory tf;
    ScriptedSolver backend(tf);
    CachingSolver solver(tf, backend, std::make_shared<QueryCache>(),
                         kCacheOnly);
    std::vector<Term> query = contradiction(tf, "x", 1, 2);

    backend.script = {SatResult::Unknown, SatResult::Unknown,
                      SatResult::Unsat};
    EXPECT_EQ(solver.checkSat(query), SatResult::Unknown);
    EXPECT_EQ(solver.checkSat(query), SatResult::Unknown);
    EXPECT_EQ(backend.calls, 2u)
        << "an Unknown verdict must not be served from the cache";

    // A definitive answer is cached; the backend is not asked again.
    EXPECT_EQ(solver.checkSat(query), SatResult::Unsat);
    EXPECT_EQ(solver.checkSat(query), SatResult::Unsat);
    EXPECT_EQ(backend.calls, 3u);
}

TEST(CachingSolverTest, DeterministicProbingAnswersSatWithoutBackend)
{
    TermFactory tf;
    ScriptedSolver backend(tf);
    // The backend would (wrongly) say Unsat — it must never be asked,
    // because probe evaluation *proves* Sat for x == 1.
    backend.fallback = SatResult::Unsat;
    auto cache = std::make_shared<QueryCache>();
    CachingSolver solver(tf, backend, cache, kCacheOnly);

    std::vector<Term> query{
        tf.mkEq(var32(tf, "x"), tf.bvConst(32, 1))};
    EXPECT_EQ(solver.checkSat(query), SatResult::Sat);
    EXPECT_EQ(backend.calls, 0u);
    EXPECT_EQ(solver.stats().cacheHits, 1u);
    EXPECT_EQ(cache->stats().modelHits, 1u);

    // The Sat verdict was inserted under its key: a repeat is a key hit.
    EXPECT_EQ(solver.checkSat(query), SatResult::Sat);
    EXPECT_EQ(backend.calls, 0u);
    EXPECT_EQ(cache->stats().hits, 1u);
}

TEST(CachingSolverTest, CountersAddUp)
{
    TermFactory tf;
    ScriptedSolver backend(tf);
    auto cache = std::make_shared<QueryCache>();
    CachingSolver solver(tf, backend, cache, kCacheOnly);

    backend.script = {SatResult::Unsat, SatResult::Unknown,
                      SatResult::Unsat};
    std::vector<Term> q1 = contradiction(tf, "x", 1, 2);
    std::vector<Term> q2 = contradiction(tf, "x", 3, 4);
    solver.checkSat(q1);                      // miss -> backend Unsat
    solver.checkSat(q1);                      // key hit
    solver.checkSat(q2);                      // miss -> backend Unknown
    solver.checkSat(q2);                      // miss again -> Unsat
    solver.checkSat({tf.mkEq(var32(tf, "y"), // probe-provable Sat
                             tf.bvConst(32, 0))});

    const SolverStats &stats = solver.stats();
    EXPECT_EQ(stats.queries, 5u);
    EXPECT_EQ(stats.cacheHits + stats.cacheMisses, stats.queries)
        << "every query is either a hit or a miss";
    EXPECT_EQ(stats.sat + stats.unsat + stats.unknown, stats.queries)
        << "cached answers must still be counted as verdicts";
    EXPECT_EQ(stats.cacheHits, 2u);  // one key hit + one model hit
    EXPECT_EQ(stats.cacheMisses, 3u);
    EXPECT_EQ(stats.cacheMisses, backend.calls);

    CacheStats cstats = cache->stats();
    EXPECT_EQ(cstats.hits + cstats.misses, stats.queries);
    EXPECT_LE(cstats.modelHits, cstats.misses);
    EXPECT_EQ(cstats.backendCalls(), backend.calls);
    EXPECT_DOUBLE_EQ(cstats.hitRate(), 2.0 / 5.0);
}

TEST(CachingSolverTest, ModelFromBackendIsReusedAcrossQueries)
{
    TermFactory tf;
    Z3Solver backend(tf);
    auto cache = std::make_shared<QueryCache>();
    CachingSolver solver(tf, backend, cache, kCacheOnly);

    // Query A forces the backend to produce a model with x = 77 (no
    // probe can guess 77: the fixed probes are 0, ~0 and 1, and the 45
    // seeded random draws have a ~2^-26 chance of hitting it).
    Term x = var32(tf, "x");
    EXPECT_EQ(solver.checkSat({tf.mkEq(x, tf.bvConst(32, 77))}),
              SatResult::Sat);
    EXPECT_EQ(cache->stats().misses, 1u);
    ASSERT_EQ(cache->models().size(), 1u)
        << "a Sat answer must pool the backend's model";

    // Query B has a different key but is satisfied by the pooled model
    // (x + 1 == 78), so evaluation answers it without the backend.
    uint64_t backend_before = backend.stats().queries;
    EXPECT_EQ(solver.checkSat({tf.mkEq(tf.bvAdd(x, tf.bvConst(32, 1)),
                                       tf.bvConst(32, 78))}),
              SatResult::Sat);
    EXPECT_EQ(backend.stats().queries, backend_before);
    EXPECT_EQ(cache->stats().modelHits, 1u);
}

TEST(CachingSolverTest, RewriteEngineResolvesTrivialQueriesBeforeCache)
{
    TermFactory tf;
    ScriptedSolver backend(tf);
    auto cache = std::make_shared<QueryCache>();
    CachingSolver solver(tf, backend, cache); // full stack (defaults)

    // x == 1 && x == 2: equality propagation substitutes 1 for x and
    // folds 1 == 2 to false — Unsat with no backend, no cache lookup.
    EXPECT_EQ(solver.checkSat(contradiction(tf, "x", 1, 2)),
              SatResult::Unsat);
    // x == 7 alone: the definitional equality rewrites away entirely.
    EXPECT_EQ(solver.checkSat(
                  {tf.mkEq(var32(tf, "x"), tf.bvConst(32, 7))}),
              SatResult::Sat);
    EXPECT_EQ(backend.calls, 0u);
    EXPECT_EQ(cache->stats().hits + cache->stats().misses, 0u)
        << "rewrite-resolved queries must not touch the cache";

    const SolverStats &stats = solver.stats();
    EXPECT_EQ(stats.rewriteResolved, 2u);
    EXPECT_GT(stats.rewriteApplications, 0u);
    EXPECT_EQ(stats.queries, 2u);
    EXPECT_EQ(stats.sat, 1u);
    EXPECT_EQ(stats.unsat, 1u);
}

TEST(CachingSolverTest, StackInvariantEveryQueryResolvedByOneStage)
{
    TermFactory tf;
    Z3Solver backend(tf);
    auto cache = std::make_shared<QueryCache>();
    CachingSolver solver(tf, backend, cache); // full stack (defaults)

    Term x = var32(tf, "x");
    Term y = var32(tf, "y");
    std::vector<std::vector<Term>> queries = {
        {tf.mkEq(x, tf.bvConst(32, 1))},             // rewrite: Sat
        contradiction(tf, "x", 1, 2),                // rewrite: Unsat
        {tf.bvUlt(x, y)},                            // probe/backend
        {tf.bvUlt(x, y)},                            // repeat
        {tf.bvUlt(tf.bvMul(x, x), tf.bvConst(32, 9)),
         tf.bvUlt(y, tf.bvAdd(y, tf.bvConst(32, 1)))}, // two cones
    };
    for (const std::vector<Term> &query : queries)
        EXPECT_NE(solver.checkSat(query), SatResult::Unknown);

    const SolverStats &stats = solver.stats();
    EXPECT_EQ(stats.queries, queries.size());
    EXPECT_EQ(stats.rewriteResolved + stats.sliceResolved +
                  stats.cacheHits + stats.cacheMisses,
              stats.queries);
    EXPECT_EQ(stats.sat + stats.unsat + stats.unknown, stats.queries);
    EXPECT_GE(stats.rewriteResolved, 2u);
}

TEST(QueryCacheTest, RejectsUnknownAndReturnsStoredVerdicts)
{
    QueryCache cache;
    EXPECT_FALSE(cache.lookup("k1").has_value());
    cache.insert("k1", SatResult::Sat);
    cache.insert("k2", SatResult::Unsat);
    EXPECT_THROW(cache.insert("k3", SatResult::Unknown),
                 support::InternalError);
    EXPECT_EQ(cache.lookup("k1"), SatResult::Sat);
    EXPECT_EQ(cache.lookup("k2"), SatResult::Unsat);
    EXPECT_FALSE(cache.lookup("k3").has_value());
    EXPECT_EQ(cache.stats().entries, 2u);

    cache.clear();
    EXPECT_FALSE(cache.lookup("k1").has_value());
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(QueryCacheTest, EvictionKeepsShardsBounded)
{
    QueryCache cache(/*max_entries_per_shard=*/2);
    for (int i = 0; i < 256; ++i)
        cache.insert("key-" + std::to_string(i), SatResult::Unsat);
    CacheStats stats = cache.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LE(stats.entries, 16u * 2u) << "16 shards x 2 entries max";
    EXPECT_EQ(stats.entries + stats.evictions, 256u);
}

TEST(QueryCacheTest, EvictionIsLeastRecentlyUsed)
{
    // A key that is touched before every insert is always the
    // most-recently-used entry of its shard, so LRU eviction can never
    // pick it no matter how hard the shard churns. (The old policy
    // evicted an arbitrary bucket and would drop it eventually.)
    QueryCache cache(/*max_entries_per_shard=*/4, /*max_bytes=*/0);
    cache.insert("pinned", SatResult::Sat);
    for (int i = 0; i < 512; ++i) {
        ASSERT_TRUE(cache.lookup("pinned").has_value()) << "i=" << i;
        cache.insert("filler-" + std::to_string(i), SatResult::Unsat);
    }
    EXPECT_EQ(cache.lookup("pinned"), SatResult::Sat);
    EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(QueryCacheTest, ByteBudgetBoundsResidency)
{
    constexpr size_t kBudget = 64 << 10; // 64 KiB across 16 shards
    QueryCache cache(/*max_entries_per_shard=*/0, kBudget);
    const std::string padding(100, 'x');
    for (int i = 0; i < 1000; ++i)
        cache.insert(padding + std::to_string(i), SatResult::Unsat);
    CacheStats stats = cache.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LT(stats.entries, 1000u);
    // Accounted bytes respect the budget (the never-evict-the-newest
    // rule can overshoot by at most one entry per shard).
    EXPECT_LE(stats.bytes,
              kBudget + 16 * (padding.size() + 8 +
                              QueryCache::kEntryOverheadBytes));
    EXPECT_EQ(stats.entries + stats.evictions, 1000u);
}

// ---- Trust-but-verify auditing of preloaded (journal-warm) hits ----

/**
 * Builds cache-only options that audit every unaudited hit, with a
 * scripted pristine solver whose answers and call count the test
 * controls via shared state.
 */
CachingSolver::Options
auditEverything(std::shared_ptr<std::deque<SatResult>> script,
                std::shared_ptr<size_t> calls,
                SatResult fallback = SatResult::Unsat)
{
    CachingSolver::Options options{/*simplify=*/false, /*slice=*/false};
    options.auditRate = 1.0;
    options.auditSolverFactory =
        [script, calls, fallback](TermFactory &tf)
        -> std::unique_ptr<Solver> {
        auto pristine = std::make_unique<ScriptedSolver>(tf);
        ++*calls;
        pristine->fallback = fallback;
        if (!script->empty()) {
            pristine->script.push_back(script->front());
            script->pop_front();
        }
        return pristine;
    };
    return options;
}

TEST(CachingSolverAuditTest, PassingAuditMarksEntryAndAuditsOnce)
{
    TermFactory tf;
    ScriptedSolver backend(tf);
    auto cache = std::make_shared<QueryCache>();
    auto script = std::make_shared<std::deque<SatResult>>();
    auto pristineCalls = std::make_shared<size_t>(0);
    CachingSolver solver(tf, backend, cache,
                         auditEverything(script, pristineCalls));

    std::vector<Term> query = contradiction(tf, "x", 1, 2);
    cache->insertPreloaded(CachingSolver::normalizedKey(query),
                           SatResult::Unsat);
    EXPECT_EQ(cache->stats().preloaded, 1u);

    // First warm hit: the pristine recheck confirms Unsat, the entry is
    // marked audited, the stored verdict is served, the backend is
    // never consulted.
    EXPECT_EQ(solver.checkSat(query), SatResult::Unsat);
    EXPECT_EQ(*pristineCalls, 1u);
    EXPECT_EQ(backend.calls, 0u);
    EXPECT_EQ(cache->stats().auditPasses, 1u);

    // Later hits skip the audit: it is trust-but-verify, not
    // verify-every-time.
    EXPECT_EQ(solver.checkSat(query), SatResult::Unsat);
    EXPECT_EQ(*pristineCalls, 1u);
    EXPECT_EQ(solver.stats().cacheHits, 2u);
}

TEST(CachingSolverAuditTest, MismatchQuarantinesAndResolvesFresh)
{
    TermFactory tf;
    ScriptedSolver backend(tf);
    backend.fallback = SatResult::Unsat;
    auto cache = std::make_shared<QueryCache>();
    auto script = std::make_shared<std::deque<SatResult>>();
    auto pristineCalls = std::make_shared<size_t>(0);
    CachingSolver::Options options =
        auditEverything(script, pristineCalls);
    std::vector<std::string> mismatchKeys;
    SatResult mismatchStored{};
    SatResult mismatchRecheck{};
    options.onAuditMismatch = [&](const std::string &key,
                                  SatResult stored, SatResult recheck) {
        mismatchKeys.push_back(key);
        mismatchStored = stored;
        mismatchRecheck = recheck;
    };
    CachingSolver solver(tf, backend, cache, options);

    // Seed a rotten journal claim: the contradiction is Unsat, but the
    // preloaded record says Sat. Model replay cannot confirm it (no
    // model satisfies a contradiction), the pristine recheck says
    // Unsat, and the entry must be quarantined — never served.
    std::vector<Term> query = contradiction(tf, "x", 5, 6);
    std::string key = CachingSolver::normalizedKey(query);
    cache->insertPreloaded(key, SatResult::Sat);

    EXPECT_EQ(solver.checkSat(query), SatResult::Unsat)
        << "the served verdict must come from the fresh solve, "
           "byte-identical to a daemonless run";
    ASSERT_EQ(mismatchKeys.size(), 1u);
    EXPECT_EQ(mismatchKeys[0], key);
    EXPECT_EQ(mismatchStored, SatResult::Sat);
    EXPECT_EQ(mismatchRecheck, SatResult::Unsat);
    EXPECT_EQ(backend.calls, 1u)
        << "after quarantine the query falls through to the normal "
           "miss path";
    CacheStats stats = cache->stats();
    EXPECT_EQ(stats.auditMismatches, 1u);
    EXPECT_EQ(stats.quarantined, 1u);

    // The fresh verdict replaced the rotten one and is fully trusted:
    // a repeat is a plain hit, no audit, no backend.
    EXPECT_EQ(solver.checkSat(query), SatResult::Unsat);
    EXPECT_EQ(backend.calls, 1u);
    EXPECT_EQ(cache->stats().auditMismatches, 1u);
}

TEST(CachingSolverAuditTest, UnknownRecheckIsInconclusive)
{
    TermFactory tf;
    ScriptedSolver backend(tf);
    auto cache = std::make_shared<QueryCache>();
    auto script = std::make_shared<std::deque<SatResult>>(
        std::deque<SatResult>{SatResult::Unknown, SatResult::Unsat});
    auto pristineCalls = std::make_shared<size_t>(0);
    CachingSolver solver(tf, backend, cache,
                         auditEverything(script, pristineCalls));

    std::vector<Term> query = contradiction(tf, "x", 7, 8);
    cache->insertPreloaded(CachingSolver::normalizedKey(query),
                           SatResult::Unsat);

    // Recheck #1 times out (Unknown): the stored verdict is served but
    // the entry stays unaudited, so the next hit gets a fresh audit.
    EXPECT_EQ(solver.checkSat(query), SatResult::Unsat);
    EXPECT_EQ(*pristineCalls, 1u);
    EXPECT_EQ(cache->stats().auditPasses, 0u);

    // Recheck #2 confirms; now the entry is audited for good.
    EXPECT_EQ(solver.checkSat(query), SatResult::Unsat);
    EXPECT_EQ(*pristineCalls, 2u);
    EXPECT_EQ(cache->stats().auditPasses, 1u);
    EXPECT_EQ(solver.checkSat(query), SatResult::Unsat);
    EXPECT_EQ(*pristineCalls, 2u);
    EXPECT_EQ(backend.calls, 0u);
}

TEST(CachingSolverAuditTest, StoredSatConfirmedByModelReplayProof)
{
    TermFactory tf;
    ScriptedSolver backend(tf);
    auto cache = std::make_shared<QueryCache>();
    auto script = std::make_shared<std::deque<SatResult>>();
    auto pristineCalls = std::make_shared<size_t>(0);
    CachingSolver solver(tf, backend, cache,
                         auditEverything(script, pristineCalls));

    // x == 1 is probe-provable: the audit confirms the stored Sat by
    // concrete evaluation alone — no pristine solver, no backend.
    std::vector<Term> query{
        tf.mkEq(var32(tf, "x"), tf.bvConst(32, 1))};
    cache->insertPreloaded(CachingSolver::normalizedKey(query),
                           SatResult::Sat);

    EXPECT_EQ(solver.checkSat(query), SatResult::Sat);
    EXPECT_EQ(*pristineCalls, 0u);
    EXPECT_EQ(backend.calls, 0u);
    EXPECT_EQ(cache->stats().auditPasses, 1u);
}

TEST(CachingSolverAuditTest, FreshInsertsAreNeverAudited)
{
    TermFactory tf;
    ScriptedSolver backend(tf);
    backend.fallback = SatResult::Unsat;
    auto cache = std::make_shared<QueryCache>();
    auto script = std::make_shared<std::deque<SatResult>>();
    auto pristineCalls = std::make_shared<size_t>(0);
    CachingSolver solver(tf, backend, cache,
                         auditEverything(script, pristineCalls));

    // A verdict this run earned from the backend is not a month-old
    // claim; hitting it later must not spend audit rechecks.
    std::vector<Term> query = contradiction(tf, "y", 1, 2);
    EXPECT_EQ(solver.checkSat(query), SatResult::Unsat);
    EXPECT_EQ(solver.checkSat(query), SatResult::Unsat);
    EXPECT_EQ(backend.calls, 1u);
    EXPECT_EQ(*pristineCalls, 0u);
}

TEST(QueryCacheTest, PreloadedInsertNeverFiresListenerOrClobbers)
{
    QueryCache cache;
    size_t listenerCalls = 0;
    cache.setInsertListener(
        [&](const std::string &, SatResult) { ++listenerCalls; });

    cache.insertPreloaded("warm", SatResult::Unsat);
    EXPECT_EQ(listenerCalls, 0u)
        << "preloads come FROM the journal; re-journaling them would "
           "double every record per restart";
    bool unaudited = false;
    EXPECT_EQ(cache.lookup("warm", &unaudited), SatResult::Unsat);
    EXPECT_TRUE(unaudited);

    // A fresh insert fires the listener and is born trusted.
    cache.insert("earned", SatResult::Sat);
    EXPECT_EQ(listenerCalls, 1u);
    EXPECT_EQ(cache.lookup("earned", &unaudited), SatResult::Sat);
    EXPECT_FALSE(unaudited);

    // Preloading over a resident trusted entry must not resurrect the
    // unaudited flag.
    cache.insertPreloaded("earned", SatResult::Sat);
    EXPECT_EQ(cache.lookup("earned", &unaudited), SatResult::Sat);
    EXPECT_FALSE(unaudited);

    // markAudited clears the flag; quarantine removes the entry.
    cache.markAudited("warm");
    EXPECT_EQ(cache.lookup("warm", &unaudited), SatResult::Unsat);
    EXPECT_FALSE(unaudited);
    EXPECT_TRUE(cache.quarantine("warm"));
    EXPECT_FALSE(cache.lookup("warm").has_value());
    EXPECT_FALSE(cache.quarantine("warm"));
    EXPECT_EQ(cache.stats().quarantined, 1u);
}

TEST(QueryCacheTest, BytesTrackInsertionsAndClear)
{
    QueryCache cache;
    EXPECT_EQ(cache.stats().bytes, 0u);
    cache.insert("abc", SatResult::Sat);
    EXPECT_EQ(cache.stats().bytes,
              3 + QueryCache::kEntryOverheadBytes);
    cache.insert("defgh", SatResult::Unsat);
    EXPECT_EQ(cache.stats().bytes,
              3 + 5 + 2 * QueryCache::kEntryOverheadBytes);
    // Re-inserting an existing key must not double-charge.
    cache.insert("abc", SatResult::Sat);
    EXPECT_EQ(cache.stats().bytes,
              3 + 5 + 2 * QueryCache::kEntryOverheadBytes);
    cache.clear();
    EXPECT_EQ(cache.stats().bytes, 0u);
}

} // namespace
} // namespace keq::smt
