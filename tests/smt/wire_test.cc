/** @file Wire protocol: term round-trips are byte-identical across
 *  fresh factories (the sandbox's cache-fingerprint contract), every
 *  typed frame survives encode/decode, and corrupted or hostile bytes
 *  decode-fail instead of reaching a TermFactory precondition. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/smt/caching_solver.h"
#include "src/smt/term_factory.h"
#include "src/smt/wire.h"
#include "src/support/rng.h"

namespace keq::smt::wire {
namespace {

std::string
encodedBytes(const std::vector<Term> &terms)
{
    Encoder enc;
    encodeTerms(enc, terms);
    return enc.take();
}

/** encode -> decode into a fresh factory -> re-encode; asserts success. */
std::vector<Term>
roundTrip(const std::vector<Term> &terms, TermFactory &into)
{
    std::string bytes = encodedBytes(terms); // Decoder borrows the buffer
    Decoder dec(bytes);
    std::vector<Term> out;
    EXPECT_TRUE(decodeTerms(dec, into, nullptr, out)) << dec.error();
    EXPECT_TRUE(dec.atEnd());
    return out;
}

/** A structurally rich assertion set over shared subterms. */
std::vector<Term>
exampleAssertions(TermFactory &f)
{
    Term x = f.var("x", Sort::bitVec(32));
    Term y = f.var("y", Sort::bitVec(32));
    Term p = f.var("p", Sort::boolSort());
    Term mem = f.var("mem", Sort::memArray());
    Term addr = f.var("addr", Sort::bitVec(64));

    Term sum = f.bvAdd(x, f.bvMul(y, f.bvConst(32, 3)));
    Term wide = f.concat(f.extract(sum, 31, 16), f.extract(sum, 15, 0));
    Term loaded = f.select(f.store(mem, addr, f.extract(x, 7, 0)), addr);
    return {
        f.mkImplies(p, f.bvUlt(sum, f.bvConst(32, 1u << 20))),
        f.mkEq(wide, sum),
        f.mkEq(f.zext(loaded, 32), f.bvAnd(x, f.bvConst(32, 0xff))),
        f.mkIte(p, f.mkEq(x, y), f.bvSlt(x, f.bvConst(32, 0))),
    };
}

TEST(WireTermCodec, RoundTripIsByteIdenticalAcrossFreshFactories)
{
    TermFactory source;
    std::vector<Term> terms = exampleAssertions(source);
    std::string bytes = encodedBytes(terms);

    TermFactory replay;
    std::vector<Term> rebuilt = roundTrip(terms, replay);
    ASSERT_EQ(rebuilt.size(), terms.size());

    // The codec's core guarantee: re-encoding the rebuilt DAG from the
    // fresh factory reproduces the original bytes exactly, so
    // structural fingerprints agree across the process boundary.
    EXPECT_EQ(encodedBytes(rebuilt), bytes);
}

TEST(WireTermCodec, CacheFingerprintsAgreeAcrossTheBoundary)
{
    TermFactory source;
    std::vector<Term> terms = exampleAssertions(source);
    TermFactory replay;
    std::vector<Term> rebuilt = roundTrip(terms, replay);

    // The parent-side CachingSolver and the worker-side one key their
    // caches with the same normalized fingerprint.
    EXPECT_EQ(CachingSolver::normalizedKey(terms),
              CachingSolver::normalizedKey(rebuilt));
}

TEST(WireTermCodec, SharedSubtermsStaySharedAfterReplay)
{
    TermFactory source;
    Term x = source.var("x", Sort::bitVec(16));
    Term shared = source.bvAdd(x, source.bvConst(16, 1));
    std::vector<Term> terms = {
        source.bvUlt(shared, source.bvConst(16, 100)),
        source.mkEq(shared, source.bvConst(16, 7)),
    };

    TermFactory replay;
    size_t before = replay.nodeCount();
    std::vector<Term> rebuilt = roundTrip(terms, replay);
    // Hash-consing must merge the shared `x + 1` node: the replayed
    // factory grows by exactly the source DAG's reachable node count.
    EXPECT_EQ(replay.nodeCount() - before, 7u)
        << "x, 1, x+1, 100, x+1<100, 7, x+1==7 -- x+1 built once";
    EXPECT_EQ(encodedBytes(rebuilt), encodedBytes(terms));
}

TEST(WireTermCodec, DuplicateRootsAreLegal)
{
    TermFactory source;
    Term t = source.mkEq(source.var("a", Sort::bitVec(8)),
                         source.bvConst(8, 1));
    TermFactory replay;
    std::vector<Term> rebuilt = roundTrip({t, t, t}, replay);
    ASSERT_EQ(rebuilt.size(), 3u);
    EXPECT_EQ(rebuilt[0].id(), rebuilt[1].id());
    EXPECT_EQ(rebuilt[1].id(), rebuilt[2].id());
}

TEST(WireTermCodec, RandomizedRoundTrips)
{
    support::Rng rng(0x313373);
    for (int iteration = 0; iteration < 50; ++iteration) {
        TermFactory f;
        std::vector<Term> pool;
        pool.push_back(f.var("a", Sort::bitVec(32)));
        pool.push_back(f.var("b", Sort::bitVec(32)));
        pool.push_back(f.bvConst(32, rng.next()));
        for (int step = 0; step < 30; ++step) {
            Term x = pool[rng.below(pool.size())];
            Term y = pool[rng.below(pool.size())];
            switch (rng.below(5)) {
              case 0: pool.push_back(f.bvAdd(x, y)); break;
              case 1: pool.push_back(f.bvXor(x, y)); break;
              case 2: pool.push_back(f.bvMul(x, y)); break;
              case 3:
                pool.push_back(
                    f.mkIte(f.bvUlt(x, y), x, y));
                break;
              default:
                pool.push_back(f.bvNot(x));
                break;
            }
        }
        std::vector<Term> roots = {
            f.mkEq(pool.back(), pool[pool.size() - 2]),
            f.bvUle(pool[pool.size() - 3], pool.back()),
        };
        TermFactory replay;
        std::vector<Term> rebuilt = roundTrip(roots, replay);
        ASSERT_EQ(encodedBytes(rebuilt), encodedBytes(roots))
            << "iteration " << iteration;
    }
}

TEST(WireTermCodec, TruncatedBytesFailCleanly)
{
    TermFactory source;
    std::string bytes = encodedBytes(exampleAssertions(source));
    // Every proper prefix must decode-fail without aborting.
    for (size_t cut = 0; cut < bytes.size(); cut += 3) {
        std::string torn = bytes.substr(0, cut);
        Decoder dec(torn);
        TermFactory replay;
        std::vector<Term> out;
        EXPECT_FALSE(decodeTerms(dec, replay, nullptr, out))
            << "prefix of " << cut << " bytes decoded";
    }
}

TEST(WireTermCodec, BitFlippedBytesNeverReachAFactoryAssert)
{
    TermFactory source;
    std::string bytes = encodedBytes(exampleAssertions(source));
    // Flip every byte through a handful of masks. Decode may succeed
    // (some flips produce a different-but-valid DAG) but must never
    // abort; when it fails it must report a reason.
    for (size_t at = 0; at < bytes.size(); ++at) {
        for (uint8_t mask : {0x01, 0x80, 0xff}) {
            std::string mutated = bytes;
            mutated[at] = static_cast<char>(mutated[at] ^ mask);
            Decoder dec(mutated);
            TermFactory replay;
            std::vector<Term> out;
            if (!decodeTerms(dec, replay, nullptr, out)) {
                EXPECT_FALSE(dec.error().empty());
            }
        }
    }
}

TEST(WireTermCodec, VarSortContextRejectsCrossQueryCollisions)
{
    TermFactory source;
    Term as_bv = source.var("v", Sort::bitVec(32));
    std::string first = encodedBytes(
        {source.mkEq(as_bv, source.bvConst(32, 1))});

    TermFactory other;
    Term as_bool = other.var("v", Sort::boolSort());
    std::string second = encodedBytes({other.mkNot(as_bool)});

    // One worker session: same factory, same persistent context.
    TermFactory session;
    VarSortContext vars;
    {
        Decoder dec(first);
        std::vector<Term> out;
        ASSERT_TRUE(decodeTerms(dec, session, &vars, out))
            << dec.error();
    }
    {
        Decoder dec(second);
        std::vector<Term> out;
        EXPECT_FALSE(decodeTerms(dec, session, &vars, out))
            << "redeclaring v at a different sort must fail";
        EXPECT_FALSE(dec.error().empty());
    }
}

TEST(WireStatsCodec, AllFieldsRoundTrip)
{
    SolverStats stats;
    uint64_t seed = 1;
    // Stamp every counter with a distinct value so a field ordering bug
    // cannot cancel out.
    for (uint64_t *field :
         {&stats.queries, &stats.sat, &stats.unsat, &stats.unknown,
          &stats.cacheHits, &stats.cacheMisses, &stats.cacheEvictions,
          &stats.rewriteResolved, &stats.rewriteApplications,
          &stats.sliceResolved, &stats.slicedAssertions,
          &stats.incrementalReused, &stats.incrementalSolves,
          &stats.incrementalFallbacks, &stats.coldSolves,
          &stats.watchdogInterrupts, &stats.guardedRetries,
          &stats.guardedEscalations, &stats.escalatedResolved,
          &stats.solverCrashes, &stats.faultsInjected,
          &stats.workerCrashes, &stats.workerRestarts,
          &stats.heartbeatTimeouts, &stats.wireBytesSent,
          &stats.wireBytesReceived, &stats.batchedQueries,
          &stats.portfolioWins[0], &stats.portfolioWins[1],
          &stats.portfolioWins[2], &stats.portfolioWins[3],
          &stats.portfolioCancellations,
          &stats.crossLaneDisagreements}) {
        *field = seed++;
    }
    stats.totalSeconds = 1.25;

    Encoder enc;
    encodeStats(enc, stats);
    std::string bytes = enc.take();
    Decoder dec(bytes);
    SolverStats back;
    ASSERT_TRUE(decodeStats(dec, back)) << dec.error();
    EXPECT_TRUE(dec.atEnd());

    seed = 1;
    for (uint64_t value :
         {back.queries, back.sat, back.unsat, back.unknown,
          back.cacheHits, back.cacheMisses, back.cacheEvictions,
          back.rewriteResolved, back.rewriteApplications,
          back.sliceResolved, back.slicedAssertions,
          back.incrementalReused, back.incrementalSolves,
          back.incrementalFallbacks, back.coldSolves,
          back.watchdogInterrupts, back.guardedRetries,
          back.guardedEscalations, back.escalatedResolved,
          back.solverCrashes, back.faultsInjected, back.workerCrashes,
          back.workerRestarts, back.heartbeatTimeouts,
          back.wireBytesSent, back.wireBytesReceived,
          back.batchedQueries, back.portfolioWins[0],
          back.portfolioWins[1], back.portfolioWins[2],
          back.portfolioWins[3], back.portfolioCancellations,
          back.crossLaneDisagreements}) {
        EXPECT_EQ(value, seed++);
    }
    EXPECT_DOUBLE_EQ(back.totalSeconds, 1.25);
}

TEST(WireFrames, TypedFramesRoundTrip)
{
    std::string error;

    ReadyFrame ready{kProtocolVersion, 4242};
    std::string payload = encodeReady(ready);
    FrameType type;
    std::string body;
    // encode* returns the full length-prefixed frame; strip the u32
    // prefix the way the transport does before splitting.
    ASSERT_GT(payload.size(), 4u);
    ASSERT_TRUE(splitFrame(payload.substr(4), type, body));
    EXPECT_EQ(type, FrameType::Ready);
    ReadyFrame ready_back;
    ASSERT_TRUE(decodeReady(body, ready_back, error)) << error;
    EXPECT_EQ(ready_back.protocolVersion, kProtocolVersion);
    EXPECT_EQ(ready_back.pid, 4242u);

    HeartbeatFrame beat{7, 123456};
    ASSERT_TRUE(splitFrame(encodeHeartbeat(beat).substr(4), type, body));
    EXPECT_EQ(type, FrameType::Heartbeat);
    HeartbeatFrame beat_back;
    ASSERT_TRUE(decodeHeartbeat(body, beat_back, error)) << error;
    EXPECT_EQ(beat_back.querySeq, 7u);
    EXPECT_EQ(beat_back.rssKb, 123456u);

    ResetFrame reset{2500, 256, 1, 0, "int2bv:random_seed=7"};
    ASSERT_TRUE(splitFrame(encodeReset(reset).substr(4), type, body));
    EXPECT_EQ(type, FrameType::Reset);
    ResetFrame reset_back;
    ASSERT_TRUE(decodeReset(body, reset_back, error)) << error;
    EXPECT_EQ(reset_back.timeoutMs, 2500u);
    EXPECT_EQ(reset_back.memoryBudgetMb, 256u);
    EXPECT_EQ(reset_back.useCache, 1);
    EXPECT_EQ(reset_back.useGuard, 0);
    EXPECT_EQ(reset_back.strategy, "int2bv:random_seed=7");

    CancelFrame cancel{77};
    ASSERT_TRUE(splitFrame(encodeCancel(cancel).substr(4), type, body));
    EXPECT_EQ(type, FrameType::Cancel);
    CancelFrame cancel_back;
    ASSERT_TRUE(decodeCancel(body, cancel_back, error)) << error;
    EXPECT_EQ(cancel_back.seq, 77u);

    TermFactory f;
    QueryFrame query;
    query.seq = 99;
    query.timeoutMs = 1000;
    query.assertions = exampleAssertions(f);
    ASSERT_TRUE(splitFrame(encodeQuery(query).substr(4), type, body));
    EXPECT_EQ(type, FrameType::Query);
    TermFactory replay;
    QueryFrame query_back;
    ASSERT_TRUE(decodeQuery(body, replay, nullptr, query_back, error))
        << error;
    EXPECT_EQ(query_back.seq, 99u);
    EXPECT_EQ(query_back.timeoutMs, 1000u);
    ASSERT_EQ(query_back.assertions.size(), query.assertions.size());

    ResultFrame result;
    result.seq = 99;
    result.result = SatResult::Unsat;
    result.failureKind = FailureKind::None;
    result.unknownReason = "";
    result.stats.queries = 1;
    result.stats.unsat = 1;
    ASSERT_TRUE(splitFrame(encodeResult(result).substr(4), type, body));
    EXPECT_EQ(type, FrameType::Result);
    ResultFrame result_back;
    ASSERT_TRUE(decodeResult(body, result_back, error)) << error;
    EXPECT_EQ(result_back.seq, 99u);
    EXPECT_EQ(result_back.result, SatResult::Unsat);
    EXPECT_EQ(result_back.stats.unsat, 1u);

    ASSERT_TRUE(
        splitFrame(encodeError("boom\twith\nbytes").substr(4), type,
                   body));
    EXPECT_EQ(type, FrameType::Error);
    std::string message;
    ASSERT_TRUE(decodeError(body, message));
    EXPECT_EQ(message, "boom\twith\nbytes");

    ASSERT_TRUE(splitFrame(encodeShutdown().substr(4), type, body));
    EXPECT_EQ(type, FrameType::Shutdown);
}

TEST(WireFrames, ResetStrategyDefaultsToTheV1Stack)
{
    // An empty strategy string is the v1-equivalent session: the
    // worker builds the same default incremental stack it always did.
    ResetFrame reset{1000, 0, 1, 1};
    EXPECT_TRUE(reset.strategy.empty());

    FrameType type;
    std::string body, error;
    ASSERT_TRUE(splitFrame(encodeReset(reset).substr(4), type, body));
    ResetFrame back;
    ASSERT_TRUE(decodeReset(body, back, error)) << error;
    EXPECT_TRUE(back.strategy.empty());
}

TEST(WireFrames, PortfolioFailureKindSurvivesTheResultFrame)
{
    // A cross-lane disagreement travels the wire as a first-class
    // failure kind; the discriminant bound admits it and nothing past.
    ResultFrame result;
    result.seq = 5;
    result.result = SatResult::Unknown;
    result.failureKind = FailureKind::PortfolioDisagreement;
    result.unknownReason = "portfolio disagreement: default=sat, cold=unsat";
    result.stats.crossLaneDisagreements = 1;

    FrameType type;
    std::string body, error;
    ASSERT_TRUE(splitFrame(encodeResult(result).substr(4), type, body));
    ResultFrame back;
    ASSERT_TRUE(decodeResult(body, back, error)) << error;
    EXPECT_EQ(back.failureKind, FailureKind::PortfolioDisagreement);
    EXPECT_EQ(back.stats.crossLaneDisagreements, 1u);
    EXPECT_EQ(back.unknownReason, result.unknownReason);
}

TEST(WireFrames, TruncatedCancelFailsCleanly)
{
    std::string payload = encodeCancel({42}).substr(4);
    FrameType type;
    std::string body;
    ASSERT_TRUE(splitFrame(payload, type, body));
    std::string error;
    CancelFrame out;
    for (size_t cut = 0; cut < body.size(); ++cut) {
        EXPECT_FALSE(decodeCancel(body.substr(0, cut), out, error))
            << "prefix of " << cut << " bytes decoded";
    }
}

TEST(WireFrames, HostileResultDiscriminantsAreRejected)
{
    ResultFrame result;
    result.seq = 1;
    result.result = SatResult::Sat;
    std::string payload = encodeResult(result).substr(4);
    FrameType type;
    std::string body;
    ASSERT_TRUE(splitFrame(payload, type, body));

    // Corrupt the SatResult and FailureKind discriminants (first two
    // bytes after the seq varuint) to out-of-range values.
    std::string error;
    for (size_t at = 0; at < body.size(); ++at) {
        std::string mutated = body;
        mutated[at] = static_cast<char>(0xee);
        ResultFrame out;
        if (!decodeResult(mutated, out, error)) {
            EXPECT_FALSE(error.empty());
        }
    }
}

TEST(WireFrames, SplitFrameRejectsGarbage)
{
    FrameType type;
    std::string body;
    EXPECT_FALSE(splitFrame("", type, body));
    EXPECT_FALSE(splitFrame(std::string(1, '\x00'), type, body));
    EXPECT_FALSE(splitFrame(std::string(1, '\x63'), type, body));
}

} // namespace
} // namespace keq::smt::wire
