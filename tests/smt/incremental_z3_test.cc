/** @file IncrementalZ3Solver tests: verdict identity with the cold-start
 *  Z3Solver on interleaved query sequences, prefix-reuse accounting, and
 *  guard-free model capture. */

#include <gtest/gtest.h>

#include <vector>

#include "src/smt/evaluator.h"
#include "src/smt/incremental_z3_solver.h"
#include "src/smt/term_factory.h"
#include "src/smt/z3_solver.h"
#include "src/support/rng.h"

namespace keq::smt {
namespace {

using support::ApInt;
using support::Rng;

Term
var32(TermFactory &tf, const char *name)
{
    return tf.var(name, Sort::bitVec(32));
}

TEST(IncrementalZ3Test, PrefixReuseAcrossGrowingQueries)
{
    TermFactory tf;
    IncrementalZ3Solver solver(tf);
    Term x = var32(tf, "x");
    Term y = var32(tf, "y");

    Term p1 = tf.bvUlt(x, tf.bvConst(32, 100));
    Term p2 = tf.bvUlt(tf.bvConst(32, 10), x);
    Term p3 = tf.mkEq(y, tf.bvAdd(x, tf.bvConst(32, 1)));

    // Growing chain: each query extends the previous one, so after the
    // cold first check every solve reuses the full prior prefix.
    EXPECT_EQ(solver.checkSat({p1}), SatResult::Sat);
    EXPECT_EQ(solver.checkSat({p1, p2}), SatResult::Sat);
    EXPECT_EQ(solver.checkSat({p1, p2, p3}), SatResult::Sat);
    // Contradictory tail on the same prefix.
    EXPECT_EQ(solver.checkSat(
                  {p1, p2, tf.bvUlt(x, tf.bvConst(32, 5))}),
              SatResult::Unsat);

    const SolverStats &stats = solver.stats();
    EXPECT_EQ(stats.queries, 4u);
    EXPECT_EQ(stats.sat, 3u);
    EXPECT_EQ(stats.unsat, 1u);
    EXPECT_EQ(stats.coldSolves, 1u);
    EXPECT_EQ(stats.incrementalSolves, 3u);
    // Reused assertions: 1 (query 2) + 2 (query 3) + 2 (query 4).
    EXPECT_EQ(stats.incrementalReused, 5u);
}

TEST(IncrementalZ3Test, DivergentPrefixTriggersColdSolve)
{
    TermFactory tf;
    IncrementalZ3Solver solver(tf);
    Term x = var32(tf, "x");

    Term a = tf.bvUlt(x, tf.bvConst(32, 100));
    Term b = tf.bvUlt(tf.bvConst(32, 50), x);
    EXPECT_EQ(solver.checkSat({a, b}), SatResult::Sat);
    // First assertion differs: no common prefix, full rebuild.
    EXPECT_EQ(solver.checkSat({b, a}), SatResult::Sat);
    EXPECT_EQ(solver.stats().coldSolves, 2u);
    EXPECT_EQ(solver.stats().incrementalReused, 0u);

    // Back to a query sharing the second stream's prefix: warm again.
    EXPECT_EQ(solver.checkSat({b}), SatResult::Sat);
    EXPECT_EQ(solver.stats().incrementalSolves, 1u);
    EXPECT_EQ(solver.stats().incrementalReused, 1u);
}

TEST(IncrementalZ3Test, ModelCaptureSkipsGuardLiterals)
{
    TermFactory tf;
    IncrementalZ3Solver solver(tf);
    solver.enableModelCapture(true);
    Term x = var32(tf, "x");
    Term p = tf.var("p", Sort::boolSort());

    std::vector<Term> query = {
        tf.mkEq(tf.bvAnd(x, tf.bvConst(32, 0xff)), tf.bvConst(32, 0x2a)),
        p};
    ASSERT_EQ(solver.checkSat(query), SatResult::Sat);

    Assignment model;
    ASSERT_TRUE(solver.lastModel(&model));
    // The internal assumption literals must never leak into models.
    EXPECT_FALSE(model.hasBool("keq!guard!0"));
    EXPECT_FALSE(model.hasBool("keq!guard!1"));
    // The captured model actually satisfies the query.
    Evaluator eval(model);
    for (Term assertion : query)
        EXPECT_TRUE(eval.evalBool(assertion));

    // Unsat queries leave no model behind.
    EXPECT_EQ(solver.checkSat({tf.mkEq(x, tf.bvConst(32, 1)),
                               tf.mkEq(x, tf.bvConst(32, 2))}),
              SatResult::Unsat);
    EXPECT_FALSE(solver.lastModel(&model));
}

/**
 * Differential sweep: an IncrementalZ3Solver fed an arbitrary interleaved
 * sequence of queries must return exactly what a cold Z3Solver returns
 * for each query in isolation. Sequences are built to exercise prefix
 * extension, truncation, and divergence in random order.
 */
class IncrementalIdentityProperty
    : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(IncrementalIdentityProperty, VerdictsMatchColdSolver)
{
    Rng rng(GetParam() * 0xBF58476D1CE4E5B9ull + 11);
    TermFactory tf;
    IncrementalZ3Solver incremental(tf);
    Z3Solver cold(tf);

    std::vector<Term> vars = {var32(tf, "a"), var32(tf, "b"),
                              var32(tf, "c")};
    // A small atom pool makes shared prefixes common.
    std::vector<Term> atoms;
    for (Term v : vars) {
        atoms.push_back(tf.bvUlt(v, tf.bvConst(32, 8)));
        atoms.push_back(tf.bvUlt(tf.bvConst(32, 3), v));
        atoms.push_back(tf.mkEq(v, tf.bvConst(32, 5)));
        atoms.push_back(
            tf.mkEq(tf.bvAnd(v, tf.bvConst(32, 1)), tf.bvConst(32, 0)));
    }

    std::vector<Term> current;
    for (int round = 0; round < 40; ++round) {
        // Mutate the running query: extend, truncate, or replace the
        // tail — the shapes the checker's obligation stream produces.
        switch (rng.below(4)) {
          case 0:
            current.push_back(atoms[rng.below(atoms.size())]);
            break;
          case 1:
            if (!current.empty())
                current.pop_back();
            current.push_back(atoms[rng.below(atoms.size())]);
            break;
          case 2:
            if (current.size() > 1)
                current.resize(1 + rng.below(current.size() - 1));
            break;
          default:
            current.assign({atoms[rng.below(atoms.size())],
                            atoms[rng.below(atoms.size())]});
            break;
        }
        SatResult expected = cold.checkSat(current);
        EXPECT_EQ(incremental.checkSat(current), expected)
            << "round " << round;
    }

    const SolverStats &stats = incremental.stats();
    EXPECT_EQ(stats.queries, 40u);
    EXPECT_EQ(stats.sat + stats.unsat + stats.unknown, stats.queries);
    EXPECT_EQ(stats.incrementalSolves + stats.coldSolves, stats.queries);
    EXPECT_GT(stats.incrementalReused, 0u)
        << "shared prefixes must be reused";
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalIdentityProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

} // namespace
} // namespace keq::smt
