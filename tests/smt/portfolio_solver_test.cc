/** @file In-process portfolio racing: lane roster parsing, verdict
 *  parity with the single-lane backend (fixed variants plus a random
 *  term-DAG property sweep), the one-logical-query stats contract, and
 *  the losing-lane guarantee — a reaped loser never surfaces as a
 *  user-visible Cancelled classification. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/smt/portfolio_solver.h"
#include "src/smt/term_factory.h"
#include "src/smt/z3_solver.h"
#include "src/support/rng.h"

namespace keq::smt {
namespace {

TEST(PortfolioLanes, BuiltInNamesResolve)
{
    LaneConfig config;
    std::string error;

    ASSERT_TRUE(laneConfigFromName("default", config, error));
    EXPECT_TRUE(config.incremental);
    EXPECT_TRUE(config.tuning.empty());

    ASSERT_TRUE(laneConfigFromName("cold", config, error));
    EXPECT_FALSE(config.incremental);

    ASSERT_TRUE(laneConfigFromName("int2bv", config, error));
    EXPECT_TRUE(config.incremental);
    EXPECT_FALSE(config.tuning.empty());

    ASSERT_TRUE(laneConfigFromName("seed42", config, error));
    EXPECT_EQ(config.tuning.front().second, "42");

    EXPECT_FALSE(laneConfigFromName("warp", config, error));
    EXPECT_NE(error.find("warp"), std::string::npos);
    EXPECT_FALSE(laneConfigFromName("seed", config, error));
    EXPECT_FALSE(laneConfigFromName("seedX", config, error));
}

TEST(PortfolioLanes, DefaultRosterScalesAndClamps)
{
    EXPECT_EQ(defaultPortfolioLanes(1).size(), 1u);
    EXPECT_EQ(defaultPortfolioLanes(1).front().name, "default");

    std::vector<LaneConfig> two = defaultPortfolioLanes(2);
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0].name, "default");
    EXPECT_EQ(two[1].name, "cold");

    std::vector<LaneConfig> three = defaultPortfolioLanes(3);
    ASSERT_EQ(three.size(), 3u);
    EXPECT_EQ(three[1].name, "int2bv");

    // Clamped at both ends.
    EXPECT_EQ(defaultPortfolioLanes(0).size(), 1u);
    EXPECT_EQ(defaultPortfolioLanes(99).size(),
              SolverStats::kPortfolioMaxLanes);
}

TEST(PortfolioLanes, SpecParsingAcceptsTuningAndRejectsGarbage)
{
    std::vector<LaneConfig> lanes;
    std::string error;

    ASSERT_TRUE(parsePortfolioLanes("default,int2bv,cold:random_seed=3",
                                    lanes, error))
        << error;
    ASSERT_EQ(lanes.size(), 3u);
    EXPECT_EQ(lanes[2].name, "cold");
    ASSERT_FALSE(lanes[2].tuning.empty());
    EXPECT_EQ(lanes[2].tuning.back().first, "random_seed");
    EXPECT_EQ(lanes[2].tuning.back().second, "3");

    EXPECT_FALSE(parsePortfolioLanes("", lanes, error));
    EXPECT_FALSE(parsePortfolioLanes("default,,cold", lanes, error));
    EXPECT_FALSE(parsePortfolioLanes("bogus", lanes, error));
    EXPECT_FALSE(parsePortfolioLanes("default:notkeyvalue", lanes, error));
    EXPECT_FALSE(parsePortfolioLanes("default:=x", lanes, error));
    EXPECT_FALSE(
        parsePortfolioLanes("default,cold,int2bv,seed1,seed2", lanes,
                            error))
        << "more lanes than kPortfolioMaxLanes must be rejected";
}

TEST(PortfolioSolver, VerdictsMatchTheSingleLaneBackend)
{
    for (int variant = 0; variant < 4; ++variant) {
        TermFactory single_f;
        TermFactory raced_f;
        auto build = [variant](TermFactory &f) -> std::vector<Term> {
            Sort bv32 = Sort::bitVec(32);
            Term x = f.var("x", bv32);
            Term y = f.var("y", bv32);
            switch (variant) {
              case 0: // sat: a satisfiable interval
                return {f.bvUlt(x, f.bvConst(32, 10)),
                        f.bvUgt(x, f.bvConst(32, 5))};
              case 1: // unsat: an empty interval
                return {f.bvUlt(x, f.bvConst(32, 5)),
                        f.bvUgt(x, f.bvConst(32, 10))};
              case 2: // unsat: xor commutes
                return {f.mkNot(f.mkEq(f.bvXor(x, y), f.bvXor(y, x)))};
              default: // sat: memory round-trip
              {
                Term mem = f.var("mem", Sort::memArray());
                Term addr = f.var("addr", Sort::bitVec(64));
                Term byte = f.var("byte", Sort::bitVec(8));
                return {f.mkEq(
                    f.select(f.store(mem, addr, byte), addr), byte)};
              }
            }
        };

        Z3Solver reference(single_f);
        SatResult expected = reference.checkSat(build(single_f));

        PortfolioSolver raced(raced_f, defaultPortfolioLanes(3));
        SatResult actual = raced.checkSat(build(raced_f));

        EXPECT_EQ(actual, expected) << "variant " << variant;
        EXPECT_EQ(raced.lastFailureKind(), FailureKind::None);
    }
}

/**
 * Random term-DAG property sweep: build layered bitvector/bool DAGs
 * from a seeded stream and check that the 3-lane portfolio returns the
 * exact verdict of the plain single-lane solver. The generator favors
 * shared subterms (true DAGs, not trees) so hash-consing and the lane
 * threads' concurrent DAG reads are genuinely exercised.
 */
std::vector<Term>
randomDagAssertions(TermFactory &f, support::Rng &rng)
{
    Sort bv32 = Sort::bitVec(32);
    std::vector<Term> pool;
    for (int i = 0; i < 3; ++i)
        pool.push_back(
            f.var("v" + std::to_string(i), bv32));
    pool.push_back(f.bvConst(32, rng.below(64)));
    pool.push_back(f.bvConst(32, rng.next()));

    size_t layers = 4 + rng.below(10);
    for (size_t i = 0; i < layers; ++i) {
        Term a = pool[rng.below(pool.size())];
        Term b = pool[rng.below(pool.size())];
        switch (rng.below(6)) {
        case 0: pool.push_back(f.bvAdd(a, b)); break;
        case 1: pool.push_back(f.bvMul(a, b)); break;
        case 2: pool.push_back(f.bvXor(a, b)); break;
        case 3: pool.push_back(f.bvAnd(a, b)); break;
        case 4: pool.push_back(f.bvSub(a, b)); break;
        default: pool.push_back(f.bvOr(a, b)); break;
        }
    }

    std::vector<Term> assertions;
    size_t count = 1 + rng.below(4);
    for (size_t i = 0; i < count; ++i) {
        Term a = pool[rng.below(pool.size())];
        Term b = pool[rng.below(pool.size())];
        switch (rng.below(3)) {
        case 0: assertions.push_back(f.mkEq(a, b)); break;
        case 1: assertions.push_back(f.bvUlt(a, b)); break;
        default:
            assertions.push_back(f.mkNot(f.mkEq(a, b)));
            break;
        }
    }
    return assertions;
}

TEST(PortfolioSolver, RandomDagParityWithSingleLane)
{
    TermFactory single_f;
    TermFactory raced_f;
    Z3Solver reference(single_f);
    reference.setTimeoutMs(5000);
    PortfolioSolver raced(raced_f, defaultPortfolioLanes(3));
    raced.setTimeoutMs(5000);

    int definite = 0;
    for (uint64_t round = 0; round < 40; ++round) {
        support::Rng rng_a = support::Rng::stream(0x90f0110, round);
        support::Rng rng_b = support::Rng::stream(0x90f0110, round);
        SatResult expected =
            reference.checkSat(randomDagAssertions(single_f, rng_a));
        SatResult actual =
            raced.checkSat(randomDagAssertions(raced_f, rng_b));
        if (expected == SatResult::Unknown)
            continue; // honest timeout: no parity claim
        ++definite;
        EXPECT_EQ(actual, expected) << "round " << round;
    }
    EXPECT_GT(definite, 20) << "sweep decided too few queries to mean "
                               "anything";
    EXPECT_EQ(raced.stats().crossLaneDisagreements, 0u);
}

TEST(PortfolioSolver, OneCheckSatIsOneLogicalQuery)
{
    TermFactory f;
    PortfolioSolver solver(f, defaultPortfolioLanes(3));
    Term x = f.var("x", Sort::bitVec(16));
    solver.checkSat({f.bvUlt(x, f.bvConst(16, 3))});
    solver.checkSat({f.bvUlt(x, f.bvConst(16, 3)),
                     f.bvUgt(x, f.bvConst(16, 7))});

    const SolverStats &stats = solver.stats();
    EXPECT_EQ(stats.queries, 2u);
    EXPECT_EQ(stats.sat, 1u);
    EXPECT_EQ(stats.unsat, 1u);
    EXPECT_EQ(stats.unknown, 0u);
    uint64_t wins = 0;
    for (uint64_t lane_wins : stats.portfolioWins)
        wins += lane_wins;
    EXPECT_EQ(wins, 2u) << "every definite race has exactly one winner";
}

/**
 * The losing-lane regression (the Figure 6 taxonomy guarantee): racing
 * a query that takes real solver work means the slower lanes are
 * interrupted once the winner answers — and none of that reaping may
 * leak into the user-visible result, the unknown counter, or the
 * failure classification.
 */
TEST(PortfolioSolver, ReapedLosersNeverSurfaceAsCancelled)
{
    TermFactory f;
    // seed lanes decorrelate wall time on the same engine, so the race
    // has genuine losers; int2bv moves the multiplication to a
    // different theory engine entirely.
    std::vector<LaneConfig> lanes;
    std::string error;
    ASSERT_TRUE(parsePortfolioLanes("default,int2bv,seed11", lanes,
                                    error))
        << error;
    PortfolioSolver solver(f, std::move(lanes));

    // A 24-bit semiprime factoring instance: enough work that lanes
    // finish at measurably different times, small enough to stay sat
    // and fast in absolute terms (factors 3851 * 2999 = 11549149).
    Sort bv32 = Sort::bitVec(32);
    Term x = f.var("fx", bv32);
    Term y = f.var("fy", bv32);
    Term one = f.bvConst(32, 1);
    Term cap = f.bvConst(32, 1 << 16);
    std::vector<Term> assertions = {
        f.mkEq(f.bvMul(x, y), f.bvConst(32, 11549149)),
        f.bvUgt(x, one), f.bvUgt(y, one),
        f.bvUlt(x, cap), f.bvUlt(y, cap),
    };

    SatResult result = solver.checkSat(assertions);
    ASSERT_EQ(result, SatResult::Sat);

    const SolverStats &stats = solver.stats();
    EXPECT_EQ(solver.lastFailureKind(), FailureKind::None)
        << "a reaped loser must never be classified Cancelled";
    EXPECT_EQ(stats.queries, 1u);
    EXPECT_EQ(stats.sat, 1u);
    EXPECT_EQ(stats.unknown, 0u)
        << "losers' interrupt-induced Unknowns must not be counted";
    uint64_t wins = 0;
    for (uint64_t lane_wins : stats.portfolioWins)
        wins += lane_wins;
    EXPECT_EQ(wins, 1u);
    // Cancellations are the losers actually reaped mid-solve; the count
    // is timing-dependent but can never exceed lanes-1 per query.
    EXPECT_LE(stats.portfolioCancellations, 2u);
}

TEST(PortfolioSolver, ModelCaptureComesFromTheWinningLane)
{
    TermFactory f;
    PortfolioSolver solver(f, defaultPortfolioLanes(2));
    solver.enableModelCapture(true);

    Term x = f.var("x", Sort::bitVec(8));
    ASSERT_EQ(solver.checkSat({f.mkEq(x, f.bvConst(8, 42))}),
              SatResult::Sat);
    Assignment model;
    ASSERT_TRUE(solver.lastModel(&model));
    // Unsat leaves no stale model behind.
    ASSERT_EQ(solver.checkSat({f.mkEq(x, f.bvConst(8, 1)),
                               f.mkEq(x, f.bvConst(8, 2))}),
              SatResult::Unsat);
    EXPECT_FALSE(solver.lastModel(&model));
}

TEST(PortfolioSolver, LaneIntrospectionNamesTheRoster)
{
    TermFactory f;
    PortfolioSolver solver(f, defaultPortfolioLanes(3));
    ASSERT_EQ(solver.laneCount(), 3u);
    EXPECT_EQ(solver.laneName(0), "default");
    EXPECT_EQ(solver.laneName(1), "int2bv");
    EXPECT_EQ(solver.laneName(2), "cold");
}

} // namespace
} // namespace keq::smt
